(* The experiment harness: one function per paper figure / theorem (the
   experiment index of DESIGN.md §4).  Each experiment prints a
   paper-shaped table; `Bench_main` runs them all and the output is the
   repository's reproduction record (EXPERIMENTS.md quotes it). *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core
open Setagree_runner

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

let ok_str v = if Check.verdict_ok v then "OK" else "FAIL"

(* Seed sweeps go through the campaign engine: jobs run on
   [Runner.default_jobs] domains (override with BENCH_JOBS), rows print
   in canonical job order regardless of interleaving, and every
   campaign lands in _results/BENCH_<exp>.json.  Failing jobs are
   collected by [Bench_main] into _results/failures.json. *)
let campaign ?header ~exp jobs =
  let c = Runner.run ~exp jobs in
  (match header with Some h -> print_endline h | None -> ());
  List.iter print_endline (Runner.rows c);
  let path = Runner.write_artifact c in
  Printf.printf "[%s] %d jobs on %d domain(s): %d failed, %.2fs wall, %.1f jobs/s -> %s\n"
    exp
    (Array.length c.Runner.c_results)
    c.Runner.c_workers
    (List.length (Runner.failures c))
    c.Runner.c_wall_s c.Runner.c_throughput path;
  c

let fdkit_replay fmt = Printf.ksprintf (fun s -> "dune exec bin/fdkit.exe -- " ^ s) fmt

(* Common knobs: n = 8, t = 3 gives a 4-row grid and room for interesting
   (x, y) sweeps while keeping ring sizes small. *)
let n = 8
let t = 3
let gst = 40.0

let setup ?(horizon = 400.0) ?(crashes = 0) ~seed () =
  let sim = Sim.create ~horizon ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 20.0) }) ~n ~t rng);
  sim

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1, positive half: every class of row z yields z-set
   agreement, through the paper's own reductions.                      *)
(* ------------------------------------------------------------------ *)

type e1_row = {
  z : int;
  source : string;
  verdict : string;
  rounds : int;
  msgs : int;
}

let e1_run_cell ~z ~source ~seed =
  let crashes = min 2 t in
  let sim = setup ~horizon:2000.0 ~crashes ~seed () in
  let behavior = Behavior.stormy ~gst in
  let omega =
    match source with
    | `Es ->
        let x = t - z + 2 in
        let suspector, _ = Oracle.es_x sim ~x ~behavior () in
        Wheels.omega (Reduce.omega_from_es sim ~suspector ~x ())
    | `Phi ->
        let y = t - z + 1 in
        let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
        Wheels.omega (Reduce.omega_from_phi sim ~querier ~y ())
    | `Psi ->
        let y = t - z + 1 in
        let querier, _ = Oracle.psi_y sim ~y ~behavior () in
        Psi_to_omega.omega (Reduce.omega_from_psi sim ~querier ~y)
    | `Oracle ->
        let omega, _ = Oracle.omega_z sim ~z ~behavior () in
        omega
  in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Reduce.solve_kset sim ~omega ~proposals () in
  let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  let v = Check.k_set_agreement sim ~k:z ~proposals ~decisions:(Kset.decisions h) in
  let name =
    match source with
    | `Es -> Printf.sprintf "◇S_%d (wheels y=0)" (t - z + 2)
    | `Phi -> Printf.sprintf "◇φ_%d (wheels x=1)" (t - z + 1)
    | `Psi -> Printf.sprintf "Ψ_%d (Fig 8 chain)" (t - z + 1)
    | `Oracle -> Printf.sprintf "Ω_%d (oracle)" z
  in
  { z; source = name; verdict = ok_str v; rounds = Kset.max_round h; msgs = Kset.messages_sent h }

let e1 () =
  section "E1  Figure 1 grid, positive half: row z solves z-set agreement (n=8, t=3)";
  let jobs =
    List.concat_map
      (fun z ->
        List.map
          (fun source ->
            let seed = 1000 + z in
            let sname =
              match source with
              | `Oracle -> "oracle"
              | `Es -> "es"
              | `Phi -> "phi"
              | `Psi -> "psi"
            in
            Runner.job ~exp:"e1" ~seed
              ~label:(Printf.sprintf "z=%d source=%s" z sname)
              ~params:[ ("z", Json.Int z); ("source", Json.String sname) ]
              ~replay:
                (fdkit_replay "kset -n %d -t %d -z %d -k %d --crashes %d --seed %d" n t
                   z z (min 2 t) seed)
              (fun () ->
                let r = e1_run_cell ~z ~source ~seed in
                Runner.body
                  ~metrics:
                    [ ("rounds", float_of_int r.rounds); ("msgs", float_of_int r.msgs) ]
                  ~row:
                    (Printf.sprintf "%-3d  %-22s  %-8s  %-6d  %-8d" r.z r.source r.verdict
                       r.rounds r.msgs)
                  (r.verdict = "OK")))
          [ `Oracle; `Es; `Phi; `Psi ])
      (List.init (t + 1) (fun i -> i + 1))
  in
  ignore
    (campaign ~exp:"e1"
       ~header:
         (Printf.sprintf "%-3s  %-22s  %-8s  %-6s  %-8s" "z" "omega source" "z-set" "rounds"
            "msgs")
       jobs)

(* ------------------------------------------------------------------ *)
(* E2 — Figure 1, weakest of each row (Theorem 5 tightness): Ω_z fails
   (z-1)-set agreement, succeeds at z.                                 *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2  Theorem 5 tightness: Omega_z vs k-set agreement (n=7, t=2)";
  let seeds = List.init 25 (fun i -> i + 1) in
  Printf.printf "%-4s %-4s  %-12s  %s\n" "z" "k" "prediction" "outcome";
  List.iter
    (fun (z, k) ->
      let r = Indist.kset_violation_search ~n:7 ~t:2 ~z ~k ~seeds in
      Printf.printf "%-4d %-4d  %-12s  %s\n" z k
        (if k < z then "violable" else "safe")
        (String.concat " | " ((if r.ok then "as predicted" else "UNEXPECTED") :: r.details)))
    [ (2, 1); (3, 2); (3, 1); (1, 1); (2, 2); (3, 3) ]

(* ------------------------------------------------------------------ *)
(* E3 — Figure 2 / Theorem 8 sufficiency: the full (x, y) sweep.       *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3  Additivity sweep (Fig 2): ◇S_x + ◇φ_y -> Omega_{t+2-x-y} (n=8, t=3)";
  let jobs =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y ->
            if not (Bounds.wheels_admissible ~n ~t ~x ~y) then None
            else
              let seed = 2000 + (x * 10) + y in
              Some
                (Runner.job ~exp:"e3" ~seed
                   ~label:(Printf.sprintf "x=%d y=%d" x y)
                   ~params:
                     [
                       ("x", Json.Int x);
                       ("y", Json.Int y);
                       ("z", Json.Int (Bounds.z_of_addition ~t ~x ~y));
                     ]
                   ~replay:
                     (fdkit_replay "wheels -n %d -t %d -x %d -y %d --crashes 2 --seed %d"
                        n t x y seed)
                   (fun () ->
                     let horizon = 400.0 in
                     let sim = setup ~horizon ~crashes:2 ~seed () in
                     let behavior = Behavior.stormy ~gst in
                     let suspector, _ = Oracle.es_x sim ~x ~behavior () in
                     let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
                     let w = Wheels.install sim ~suspector ~querier ~x ~y () in
                     let omega = Wheels.omega w in
                     let mon =
                       Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) ()
                     in
                     let _ = Sim.run sim in
                     let v = Check.omega_z sim ~z:(Wheels.z w) ~deadline:(horizon -. 80.0) mon in
                     Runner.body
                       ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
                       ~metrics:
                         [
                           ("stab", Wheels.stabilized_since w);
                           ( "x_moves",
                             float_of_int (Wheels_lower.moves_broadcast (Wheels.lower w)) );
                           ( "l_moves",
                             float_of_int (Wheels_upper.moves_broadcast (Wheels.upper w)) );
                           ("msgs", float_of_int (Wheels.total_messages w));
                         ]
                       ~row:
                         (Printf.sprintf "%-3d %-3d %-3d  %-10s  %-9.1f  %-8d %-8d %-9d" x y
                            (Wheels.z w) (ok_str v) (Wheels.stabilized_since w)
                            (Wheels_lower.moves_broadcast (Wheels.lower w))
                            (Wheels_upper.moves_broadcast (Wheels.upper w))
                            (Wheels.total_messages w))
                       (Check.verdict_ok v))))
          (List.init (t + 1) (fun y -> y)))
      (List.init (t + 1) (fun i -> i + 1))
  in
  ignore
    (campaign ~exp:"e3"
       ~header:
         (Printf.sprintf "%-3s %-3s %-3s  %-10s  %-9s  %-8s %-8s %-9s" "x" "y" "z" "Omega_z?"
            "stab@" "x_moves" "l_moves" "msgs")
       jobs);
  Printf.printf
    "\nheadline: x=%d (=t), y=1 gives z=1 — the addition solves consensus while\n\
     ◇S_t alone only reaches 2-set agreement and ◇φ_1 alone only t-set.\n"
    t

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 8 necessity: at x + y + z = t + 1 the construction
   cannot exist; concretely, the wheels' output fails the Omega_{z-1}
   certificate, and a legal Omega_z history breaks (z-1)-set agreement. *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4  Theorem 8 necessity: x + y + z >= t + 2 is required";
  let x = 2 and y = 1 in
  let z = Bounds.z_of_addition ~t ~x ~y in
  let horizon = 400.0 in
  let sim = setup ~horizon ~crashes:1 ~seed:3001 () in
  let behavior = Behavior.stormy ~gst in
  let suspector, _ = Oracle.es_x sim ~x ~behavior () in
  let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
  let w = Wheels.install sim ~suspector ~querier ~x ~y () in
  let omega = Wheels.omega w in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
  let _ = Sim.run sim in
  let v_z = Check.omega_z sim ~z ~deadline:(horizon -. 80.0) mon in
  let v_zm1 = Check.omega_z sim ~z:(z - 1) ~deadline:(horizon -. 80.0) mon in
  Printf.printf "x=%d y=%d: construction delivers Omega_%d: %s\n" x y z (ok_str v_z);
  Printf.printf "same history checked as Omega_%d: %s (as the theorem demands)\n" (z - 1)
    (ok_str v_zm1);
  Printf.printf "semantic gap (legal Omega_%d cannot do %d-set): see E2 row (z=%d,k=%d)\n" z
    (z - 1) z (z - 1);
  Printf.printf "bounds: addition_possible x=%d y=%d z=%d -> %b; z-1 -> %b\n" x y z
    (Bounds.addition_possible ~t ~x ~y ~z)
    (Bounds.addition_possible ~t ~x ~y ~z:(z - 1));
  (* And the constructed detector is not secretly stronger: driving k-set
     agreement with k = z-1 over the wheels' own output admits agreement
     violations (legal tie-breaks, perfect-from-start class inputs). *)
  let violated = ref None in
  let seeds = List.init 20 (fun i -> i + 1) in
  List.iter
    (fun seed ->
      if !violated = None then begin
        let sim = Sim.create ~horizon:600.0 ~n ~t ~seed () in
        let suspector, _ = Oracle.es_x sim ~x ~behavior:Behavior.perfect () in
        let querier, _ = Oracle.ephi_y sim ~y ~behavior:Behavior.perfect () in
        let w = Wheels.install sim ~suspector ~querier ~x ~y () in
        let proposals = Array.init n (fun i -> 100 + i) in
        let h =
          Kset.install sim ~omega:(Wheels.omega w) ~proposals ~tie_break:Kset.By_pid ()
        in
        let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
        let d = Indist.distinct_decisions (Kset.decisions h) in
        if d > z - 1 then violated := Some (seed, d)
      end)
    seeds;
  (match !violated with
  | Some (seed, d) ->
      Printf.printf
        "wheels-built Omega_%d driving %d-set agreement: %d distinct decisions at seed %d \
         (> k, as the lower bound demands)\n"
        z (z - 1) d seed
  | None ->
      Printf.printf
        "wheels-built Omega_%d: no %d-set violation in %d seeds (violations are \
         schedule-dependent; the oracle-based search in E2 is the canonical witness)\n"
        z (z - 1) (List.length seeds))

(* ------------------------------------------------------------------ *)
(* E5 — Figure 3 performance: rounds / messages / latency.             *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  Figure 3 algorithm performance (n=8, t=3)";
  let jobs =
    List.concat_map
      (fun k ->
        List.concat_map
          (fun crashes ->
            [ (k, crashes, "perfect"); (k, crashes, "stormy gst=40") ])
          [ 0; t ])
      [ 1; 2; 3 ]
    |> List.map (fun (k, crashes, bname) ->
           let seed = 4000 + k + crashes in
           Runner.job ~exp:"e5" ~seed
             ~label:(Printf.sprintf "k=%d crashes=%d %s" k crashes bname)
             ~params:
               [
                 ("k", Json.Int k);
                 ("crashes", Json.Int crashes);
                 ("oracle", Json.String bname);
               ]
             ~replay:
               (fdkit_replay "kset -n %d -t %d -z %d -k %d --crashes %d --gst %g --seed %d"
                  n t k k crashes
                  (if bname = "perfect" then 0.0 else gst)
                  seed)
             (fun () ->
               let p =
                 {
                   Protocol.default with
                   Protocol.n;
                   t;
                   seed;
                   z = k;
                   k;
                   gst = (if bname = "perfect" then 0.0 else gst);
                   horizon = 3000.0;
                   crashes = Crash.Exactly { crashes; window = (0.0, 20.0) };
                 }
               in
               let r = Protocol.run (Option.get (Protocol.find "kset")) p in
               let v = r.Protocol.rp_verdict in
               let metric name =
                 Option.value ~default:0.0 (List.assoc_opt name r.Protocol.rp_metrics)
               in
               Runner.body
                 ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
                 ~metrics:r.Protocol.rp_metrics
                 ~row:
                   (Printf.sprintf "%-4d %-8d %-18s  %-7d %-8d %-10.1f %-6s" k crashes bname
                      (int_of_float (metric "rounds"))
                      (int_of_float (metric "msgs"))
                      (metric "latency") (ok_str v))
                 (Check.verdict_ok v)))
  in
  ignore
    (campaign ~exp:"e5"
       ~header:
         (Printf.sprintf "%-4s %-8s %-18s  %-7s %-8s %-10s %-6s" "k" "crashes" "oracle"
            "rounds" "msgs" "latency" "k-set")
       jobs)

(* E5b — oracle efficiency and zero degradation *)

let e5b () =
  subsection "E5b  oracle-efficiency / zero-degradation (perfect oracle => 1 round)";
  Printf.printf "%-26s %-7s\n" "scenario" "rounds";
  List.iter
    (fun (name, crashes) ->
      let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed:4100 () in
      Sim.install_crashes sim crashes;
      let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:Behavior.perfect () in
      let proposals = Array.init n (fun i -> 100 + i) in
      let h = Kset.install sim ~omega ~proposals () in
      let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
      Printf.printf "%-26s %-7d\n" name (Kset.max_round h))
    [
      ("no crash", []);
      ("1 initial crash", [ (7, 0.0) ]);
      ("t initial crashes", [ (5, 0.0); (6, 0.0); (7, 0.0) ]);
    ]

(* E5c — decision latency and round statistics over many seeds. *)

let e5c () =
  subsection "E5c  statistics over 30 seeds (k = 1, stormy gst = 40)";
  let jobs =
    List.concat_map
      (fun crashes ->
        List.init 30 (fun i ->
            let seed = 4200 + i + 1 in
            Runner.job ~exp:"e5c" ~seed
              ~label:(Printf.sprintf "crashes=%d seed=%d" crashes seed)
              ~params:[ ("crashes", Json.Int crashes) ]
              ~replay:
                (fdkit_replay "kset -n %d -t %d -z 1 -k 1 --crashes %d --seed %d" n t
                   crashes seed)
              (fun () ->
                let sim = setup ~horizon:3000.0 ~crashes ~seed () in
                let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst) () in
                let proposals = Array.init n (fun i -> 100 + i) in
                let h = Kset.install sim ~omega ~proposals () in
                let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
                let v =
                  Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h)
                in
                Runner.body
                  ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
                  ~metrics:
                    [ ("latency", o.end_time); ("rounds", float_of_int (Kset.max_round h)) ]
                  (Check.verdict_ok v))))
      [ 0; t ]
  in
  let c = campaign ~exp:"e5c" jobs in
  Printf.printf "%-10s %-50s\n" "metric" "distribution";
  let samples name crashes =
    Array.to_list c.Runner.c_results
    |> List.filter (fun r ->
           List.assoc_opt "crashes" r.Runner.r_params = Some (Json.Int crashes))
    |> List.filter_map (fun r -> List.assoc_opt name r.Runner.r_metrics)
  in
  List.iter
    (fun crashes ->
      List.iter
        (fun name ->
          (* summarize_opt: a sweep whose jobs all raised has no samples,
             and the report must still come out. *)
          match Stats.summarize_opt (samples name crashes) with
          | Some s ->
              Printf.printf "%-10s %-50s\n"
                (Printf.sprintf "%s/%d" name crashes)
                (Format.asprintf "%a" Stats.pp_summary s)
          | None -> Printf.printf "%-10s no samples\n" (Printf.sprintf "%s/%d" name crashes))
        [ "latency"; "rounds" ])
    [ 0; t ];
  Printf.printf "(metric/c = with c crashes; latency in virtual time units)\n"

(* ------------------------------------------------------------------ *)
(* E6 — Figures 5-6: wheels convergence vs n, x, y, crash pattern.     *)
(* ------------------------------------------------------------------ *)

let e6_render ~label ~n:nn ~x ~y w =
  Printf.sprintf "%-22s %-3d %-3d %-3d %-3d  %-9.1f %-8d %-8d %-9d" label nn x y
    (Wheels.z w) (Wheels.stabilized_since w)
    (Wheels_lower.moves_broadcast (Wheels.lower w))
    (Wheels_upper.moves_broadcast (Wheels.upper w))
    (Wheels.total_messages w)

let e6_metrics w =
  [
    ("stab", Wheels.stabilized_since w);
    ("x_moves", float_of_int (Wheels_lower.moves_broadcast (Wheels.lower w)));
    ("l_moves", float_of_int (Wheels_upper.moves_broadcast (Wheels.upper w)));
    ("msgs", float_of_int (Wheels.total_messages w));
  ]

let e6_job ~n:nn ~t:tt ~x ~y ~crashes ~label ~seed =
  Runner.job ~exp:"e6" ~seed
    ~label:(Printf.sprintf "%s n=%d x=%d y=%d" label nn x y)
    ~params:
      [
        ("scenario", Json.String label);
        ("n", Json.Int nn);
        ("t", Json.Int tt);
        ("x", Json.Int x);
        ("y", Json.Int y);
        ("crashes", Json.Int crashes);
      ]
    ~replay:
      (fdkit_replay "wheels -n %d -t %d -x %d -y %d --crashes %d --seed %d" nn tt x y
         crashes seed)
    (fun () ->
      let horizon = 400.0 in
      let sim = Sim.create ~horizon ~n:nn ~t:tt ~seed () in
      let rng = Rng.split_named (Sim.rng sim) "crash" in
      Sim.install_crashes sim
        (Crash.generate (Crash.Exactly { crashes; window = (0.0, 20.0) }) ~n:nn ~t:tt rng);
      let behavior = Behavior.stormy ~gst in
      let suspector, _ = Oracle.es_x sim ~x ~behavior () in
      let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
      let w = Wheels.install sim ~suspector ~querier ~x ~y () in
      let _ = Sim.run sim in
      (* Quiescence is the claim under test: the rings must stop moving
         well before the horizon. *)
      let quiesced = Wheels.stabilized_since w < horizon -. 80.0 in
      Runner.body
        ~notes:(if quiesced then [] else [ "rings still moving near the horizon" ])
        ~metrics:(e6_metrics w)
        ~row:(e6_render ~label ~n:nn ~x ~y w)
        quiesced)

let e6 () =
  section "E6  Wheels convergence (Figs 5-6): stabilization and quiescence";
  let jobs =
    List.concat
      [
        List.mapi
          (fun i nn -> e6_job ~n:nn ~t:2 ~x:2 ~y:1 ~crashes:1 ~label:"n sweep" ~seed:(5000 + i))
          [ 5; 6; 7; 8 ];
        List.mapi
          (fun i x ->
            e6_job ~n:8 ~t:3 ~x ~y:0 ~crashes:2 ~label:"x sweep (y=0)" ~seed:(5100 + i))
          [ 1; 2; 3; 4 ];
        List.mapi
          (fun i y ->
            e6_job ~n:8 ~t:3 ~x:1 ~y ~crashes:2 ~label:"y sweep (x=1)" ~seed:(5200 + i))
          [ 0; 1; 2; 3 ];
        (* The degenerate whole-X-dead case: crash the ring's first X = {p0,p1}. *)
        [
          Runner.job ~exp:"e6" ~seed:5300 ~label:"initial X all dead"
            ~params:
              [
                ("scenario", Json.String "initial X all dead");
                ("n", Json.Int 6);
                ("t", Json.Int 2);
                ("x", Json.Int 2);
                ("y", Json.Int 0);
              ]
            ~replay:(fdkit_replay "wheels -n 6 -t 2 -x 2 -y 0 --crashes 2 --seed 5300")
            (fun () ->
              let sim = Sim.create ~horizon:400.0 ~n:6 ~t:2 ~seed:5300 () in
              Sim.install_crashes sim [ (0, 0.0); (1, 0.0) ];
              let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.calm ~gst) () in
              let querier, _ = Oracle.ephi_y sim ~y:0 ~behavior:(Behavior.calm ~gst) () in
              let w = Wheels.install sim ~suspector ~querier ~x:2 ~y:0 () in
              let _ = Sim.run sim in
              let quiesced = Wheels.stabilized_since w < 400.0 -. 80.0 in
              Runner.body
                ~notes:(if quiesced then [] else [ "rings still moving near the horizon" ])
                ~metrics:(e6_metrics w)
                ~row:(e6_render ~label:"initial X all dead" ~n:6 ~x:2 ~y:0 w)
                quiesced);
        ];
      ]
  in
  ignore
    (campaign ~exp:"e6"
       ~header:
         (Printf.sprintf "%-22s %-3s %-3s %-3s %-3s  %-9s %-8s %-8s %-9s" "scenario" "n" "x"
            "y" "z" "stab@" "x_moves" "l_moves" "msgs")
       jobs)

(* E6b — ablation: the wheels' scan period (the paper's implicit "a
   process keeps taking steps" rate).  Finer steps buy faster ring
   convergence at a linear message cost. *)

let e6b () =
  subsection "E6b  ablation: wheels scan period (n=6, t=2, x=2, y=1, 1 crash)";
  Printf.printf "%-7s  %-9s %-8s %-8s %-9s\n" "step" "stab@" "x_moves" "l_moves" "msgs";
  List.iter
    (fun step ->
      let sim = Sim.create ~horizon:400.0 ~n:6 ~t:2 ~seed:5400 () in
      let rng = Rng.split_named (Sim.rng sim) "crash" in
      Sim.install_crashes sim
        (Crash.generate (Crash.Exactly { crashes = 1; window = (0.0, 20.0) }) ~n:6 ~t:2 rng);
      let behavior = Behavior.stormy ~gst in
      let suspector, _ = Oracle.es_x sim ~x:2 ~behavior () in
      let querier, _ = Oracle.ephi_y sim ~y:1 ~behavior () in
      let w = Wheels.install sim ~suspector ~querier ~x:2 ~y:1 ~step () in
      let _ = Sim.run sim in
      Printf.printf "%-7.2f  %-9.1f %-8d %-8d %-9d\n" step (Wheels.stabilized_since w)
        (Wheels_lower.moves_broadcast (Wheels.lower w))
        (Wheels_upper.moves_broadcast (Wheels.upper w))
        (Wheels.total_messages w))
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* E7 — Figure 8: the Ψ chain vs the wheels, same target.              *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  Psi_y -> Omega_{t+1-y} (Fig 8) vs the generic wheels route";
  Printf.printf "%-3s %-3s  %-14s %-14s  %-12s %-14s\n" "y" "z" "psi certified"
    "wheels certified" "psi msgs" "wheels msgs";
  List.iter
    (fun y ->
      let z = t + 1 - y in
      let horizon = 400.0 in
      (* Psi route *)
      let sim1 = setup ~horizon ~crashes:2 ~seed:(6000 + y) () in
      let q1, _ = Oracle.psi_y sim1 ~y ~behavior:(Behavior.stormy ~gst) () in
      let p = Reduce.omega_from_psi sim1 ~querier:q1 ~y in
      let om1 = Psi_to_omega.omega p in
      let mon1 = Monitor.watch sim1 ~every:0.5 ~read:(fun i -> om1.Iface.trusted i) () in
      Sim.ticker sim1 ~every:1.0;
      let _ = Sim.run sim1 in
      let v1 = Check.omega_z sim1 ~z ~deadline:(horizon -. 80.0) mon1 in
      (* Wheels route *)
      let sim2 = setup ~horizon ~crashes:2 ~seed:(6000 + y) () in
      let q2, _ = Oracle.ephi_y sim2 ~y ~behavior:(Behavior.stormy ~gst) () in
      let w = Reduce.omega_from_phi sim2 ~querier:q2 ~y () in
      let om2 = Wheels.omega w in
      let mon2 = Monitor.watch sim2 ~every:0.5 ~read:(fun i -> om2.Iface.trusted i) () in
      let _ = Sim.run sim2 in
      let v2 = Check.omega_z sim2 ~z ~deadline:(horizon -. 80.0) mon2 in
      Printf.printf "%-3d %-3d  %-14s %-14s  %-12d %-14d\n" y z (ok_str v1) (ok_str v2) 0
        (Wheels.total_messages w))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* E8 — Figure 9: strengthening to full scope, both substrates.        *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Strengthening (Fig 9): S_x + phi_y -> S / ◇-variants, x+y >= t+1 (n=8, t=3)";
  Printf.printf "%-4s %-3s %-3s %-10s %-10s  %-8s %-10s\n" "sub" "x" "y" "perpetual"
    "◇S cert" "refresh" "msgs";
  List.iter
    (fun (sub, x, y, eventual, seed) ->
      let horizon = 300.0 in
      let sim = setup ~horizon ~crashes:2 ~seed () in
      let behavior = Behavior.stormy ~gst:35.0 in
      let suspector, _ =
        if eventual then Oracle.es_x sim ~x ~behavior () else Oracle.s_x sim ~x ~behavior ()
      in
      let querier, _ =
        if eventual then Oracle.ephi_y sim ~y ~behavior ()
        else Oracle.phi_y sim ~y ~behavior ()
      in
      let st =
        match sub with
        | `Shm -> Strengthen.install_shm sim ~suspector ~querier ()
        | `Mp -> Strengthen.install_mp sim ~suspector ~querier ()
      in
      let out = Strengthen.output st in
      let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> out.Iface.suspected i) () in
      let _ = Sim.run sim in
      let v = Check.es_x sim ~x:n ~deadline:(horizon -. 80.0) mon in
      let msgs = Trace.counter (Sim.trace sim) "strengthen.hb.sent" in
      let refresh =
        Pidset.fold (fun i acc -> max acc (Strengthen.refreshes st i)) (Sim.correct_set sim) 0
      in
      Printf.printf "%-4s %-3d %-3d %-10s %-10s  %-8d %-10d\n"
        (match sub with `Shm -> "shm" | `Mp -> "mp")
        x y
        (if eventual then "no (◇)" else "yes")
        (ok_str v) refresh msgs)
    [
      (`Shm, 2, 2, true, 7001);
      (`Shm, 3, 1, true, 7002);
      (`Shm, 2, 2, false, 7003);
      (`Mp, 2, 2, true, 7004);
      (`Mp, 1, 3, true, 7005);
      (`Mp, 2, 2, false, 7006);
    ]

(* ------------------------------------------------------------------ *)
(* E9 — Theorems 10-12: the information-cap / indistinguishability
   scenarios.                                                          *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9  Irreducibility scenarios (Thms 10-12, Observation O1)";
  let show r = Format.printf "%a@.@." Indist.pp_report r in
  show (Indist.phi_blind_to_victims ~n ~t ~y:1 ~crashes:2 ~seed:8001);
  show (Indist.phi_blind_to_victims ~n ~t ~y:2 ~crashes:1 ~seed:8002);
  show (Indist.omega_blind_to_crashes ~n ~t ~z:1 ~seed:8003);
  show (Indist.omega_blind_to_crashes ~n ~t ~z:2 ~seed:8004);
  show (Indist.thm10_pair ~n ~t ~x:4 ~y:1 ~seed:8005 ());
  show (Indist.thm10_pair ~n ~t ~x:8 ~y:2 ~seed:8006 ());
  show (Indist.thm12_pair ~n ~t ~z:1 ~y:1 ~seed:8007);
  show (Indist.thm12_pair ~n ~t ~z:2 ~y:2 ~seed:8008)

(* ------------------------------------------------------------------ *)
(* E10 — §3.2 zero-degradation ablation: repeated instances after
   accumulated failures.                                               *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10  Zero-degradation ablation: consecutive instances, growing initial crashes";
  Printf.printf "%-9s %-16s %-7s\n" "instance" "initial crashes" "rounds";
  let crashed = ref [] in
  List.iteri
    (fun i _ ->
      let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed:(9000 + i) () in
      Sim.install_crashes sim (List.map (fun p -> (p, 0.0)) !crashed);
      let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:Behavior.perfect () in
      let proposals = Array.init n (fun j -> 100 + j) in
      let h = Kset.install sim ~omega ~proposals () in
      let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
      Printf.printf "%-9d %-16d %-7d\n" (i + 1) (List.length !crashed) (Kset.max_round h);
      (* One more process fails before the next instance, up to t. *)
      if List.length !crashed < t then crashed := (n - 1 - List.length !crashed) :: !crashed)
    [ (); (); (); () ]

(* ------------------------------------------------------------------ *)
(* E11 — the implemented stack: heartbeats + adaptive timeouts under
   partial synchrony give ◇P / Ω_z / ◇φ_y with no oracle; the paper's
   algorithms run on top unchanged.                                     *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11  Implemented detectors (heartbeats + adaptive timeouts, partial synchrony)";
  let horizon = 300.0 in
  let deadline = horizon -. 80.0 in
  Printf.printf "%-28s %-14s  %-10s %-10s\n" "detector" "crashes" "certified" "hb msgs";
  let crash_patterns =
    [ ("none", []); ("early p8", [ (7, 5.0) ]); ("3 staggered", [ (5, 5.0); (6, 35.0); (7, 60.0) ]) ]
  in
  List.iter
    (fun (cname, crashes) ->
      (* ◇P *)
      let sim = Sim.create ~horizon ~n ~t ~seed:9100 () in
      Sim.install_crashes sim crashes;
      let hb = Impl.install sim () in
      let susp = Impl.suspector hb in
      let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> susp.Iface.suspected i) () in
      let _ = Sim.run sim in
      Printf.printf "%-28s %-14s  %-10s %-10d\n" "suspector (◇P)" cname
        (ok_str (Check.es_x sim ~x:n ~deadline mon))
        (Impl.heartbeats_sent hb);
      (* Ω_1 *)
      let sim = Sim.create ~horizon ~n ~t ~seed:9200 () in
      Sim.install_crashes sim crashes;
      let hb = Impl.install sim () in
      let om = Impl.omega hb ~z:1 in
      let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> om.Iface.trusted i) () in
      let _ = Sim.run sim in
      Printf.printf "%-28s %-14s  %-10s %-10d\n" "leader (Omega_1)" cname
        (ok_str (Check.omega_z sim ~z:1 ~deadline mon))
        (Impl.heartbeats_sent hb);
      (* ◇φ_2 *)
      let sim = Sim.create ~horizon ~n ~t ~seed:9300 () in
      Sim.install_crashes sim crashes;
      let hb = Impl.install sim () in
      let q, qlog = Impl.querier hb ~y:2 in
      Sim.spawn sim ~pid:0 (fun () ->
          while true do
            ignore (q.Iface.query 0 (Pidset.of_list [ 5; 6 ]));
            ignore (q.Iface.query 0 (Pidset.of_list [ 0; 1 ]));
            Sim.sleep 2.0
          done);
      let _ = Sim.run sim in
      Printf.printf "%-28s %-14s  %-10s %-10d\n" "querier (◇φ_2)" cname
        (ok_str (Check.phi_y sim ~y:2 ~eventual:true ~deadline qlog))
        (Impl.heartbeats_sent hb))
    crash_patterns;
  subsection "full implemented pipeline: heartbeats -> Omega_1 -> consensus";
  let sim = Sim.create ~horizon:600.0 ~n ~t ~seed:9400 () in
  Sim.install_crashes sim [ (6, 7.0); (7, 22.0) ];
  let hb = Impl.install sim () in
  let om = Impl.omega hb ~z:1 in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Kset.install sim ~omega:om ~proposals () in
  let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  Printf.printf "consensus: %s, rounds=%d, latency=%.1f (no oracle anywhere)\n"
    (ok_str (Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h)))
    (Kset.max_round h) o.end_time

(* ------------------------------------------------------------------ *)
(* E12 — baseline comparison: Omega-based consensus (Fig 3, k = 1) vs
   the rotating-coordinator ◇S route the paper builds upon.            *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12  Consensus routes: Omega-based (Fig 3, k=1) vs rotating-coordinator ◇S";
  Printf.printf "%-10s %-8s %-22s %-22s\n" "crashes" "seed" "Omega route (r, msgs)"
    "◇S route (r, msgs)";
  List.iter
    (fun (crashes, seed) ->
      let run_omega () =
        let sim = setup ~horizon:3000.0 ~crashes ~seed () in
        let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst) () in
        let proposals = Array.init n (fun i -> 100 + i) in
        let h = Kset.install sim ~omega ~proposals () in
        let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
        let v = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h) in
        (Kset.max_round h, Kset.messages_sent h, Check.verdict_ok v)
      in
      let run_s () =
        let sim = setup ~horizon:3000.0 ~crashes ~seed () in
        let suspector, _ = Oracle.es_x sim ~x:n ~behavior:(Behavior.stormy ~gst) () in
        let proposals = Array.init n (fun i -> 100 + i) in
        let h = Consensus_s.install sim ~suspector ~proposals () in
        let _ = Sim.run ~stop_when:(fun () -> Consensus_s.all_correct_decided h) sim in
        let v =
          Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Consensus_s.decisions h)
        in
        (Consensus_s.max_round h, Consensus_s.messages_sent h, Check.verdict_ok v)
      in
      let ro, mo, vo = run_omega () in
      let rs, ms, vs = run_s () in
      Printf.printf "%-10d %-8d %-22s %-22s\n" crashes seed
        (Printf.sprintf "%d, %d%s" ro mo (if vo then "" else " FAIL"))
        (Printf.sprintf "%d, %d%s" rs ms (if vs then "" else " FAIL")))
    [ (0, 1); (0, 2); (2, 3); (2, 4); (3, 5); (3, 6) ];
  Printf.printf
    "\nBoth routes decide one value.  Their pre-stabilization behaviour differs:\n\
     the Omega route cannot commit while the churning oracle keeps renaming\n\
     leaders, whereas the coordinator route decides as soon as one coordinator's\n\
     estimate outruns the (noisy) suspicions — but it can also burn a round per\n\
     suspected coordinator (seeds 4 and 5).  After stabilization both decide\n\
     within a constant number of rounds.\n"

(* ------------------------------------------------------------------ *)
(* E13 — scalability: the Figure 3 algorithm as n grows (the paper's
   keywords list scalability; the oracle path is n-independent, message
   cost is O(n^2) per round).                                           *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13  Scalability of the Figure 3 algorithm (z = k = 1, 2 crashes, gst = 40)";
  let jobs =
    List.map
      (fun nn ->
        let tt = (nn - 1) / 2 in
        let seed = 9500 + nn in
        Runner.job ~exp:"e13" ~seed
          ~label:(Printf.sprintf "n=%d" nn)
          ~params:[ ("n", Json.Int nn); ("t", Json.Int tt) ]
          ~replay:
            (fdkit_replay "kset -n %d -t %d -z 1 -k 1 --crashes %d --seed %d" nn tt
               (min 2 tt) seed)
          (fun () ->
            let p =
              {
                Protocol.default with
                Protocol.n = nn;
                t = tt;
                seed;
                z = 1;
                k = 1;
                gst;
                horizon = 3000.0;
                crashes = Crash.Exactly { crashes = min 2 tt; window = (0.0, 20.0) };
              }
            in
            let r = Protocol.run (Option.get (Protocol.find "kset")) p in
            let v = r.Protocol.rp_verdict in
            let metric name =
              Option.value ~default:0.0 (List.assoc_opt name r.Protocol.rp_metrics)
            in
            let rounds = int_of_float (metric "rounds") in
            let msgs = int_of_float (metric "msgs") in
            Runner.body
              ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
              ~metrics:
                (r.Protocol.rp_metrics
                @ [ ("msg_per_round", float_of_int (msgs / max 1 rounds)) ])
              ~row:
                (Printf.sprintf "%-5d %-5d  %-7d %-9d %-9.1f %-10d %-6s" nn tt rounds msgs
                   (metric "latency")
                   (msgs / max 1 rounds)
                   (ok_str v))
              (Check.verdict_ok v)))
      [ 5; 9; 15; 21; 31; 41 ]
  in
  ignore
    (campaign ~exp:"e13"
       ~header:
         (Printf.sprintf "%-5s %-5s  %-7s %-9s %-9s %-10s %-6s" "n" "t" "rounds" "msgs"
            "latency" "msg/round" "k-set")
       jobs)

(* ------------------------------------------------------------------ *)
(* E14 — the reliable-channel assumption, implemented: consensus over
   fair-lossy links via the stubborn transport.                        *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14  Consensus over fair-lossy links (stubborn transport restores §2.1)";
  Printf.printf "%-8s  %-7s %-10s %-12s %-6s\n" "loss" "rounds" "latency" "link msgs" "k-set";
  List.iter
    (fun loss ->
      let sim = setup ~horizon:3000.0 ~crashes:2 ~seed:9600 () in
      let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst) () in
      let proposals = Array.init n (fun i -> 100 + i) in
      let h =
        if loss = 0.0 then Kset.install sim ~omega ~proposals ()
        else Kset.install sim ~omega ~proposals ~loss ()
      in
      let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
      let v = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h) in
      let link =
        Trace.counter (Sim.trace sim) "kset.l.link.sent"
        + Trace.counter (Sim.trace sim) "kset.dec.l.link.sent"
      in
      Printf.printf "%-8.1f  %-7d %-10.1f %-12s %-6s\n" loss (Kset.max_round h) o.end_time
        (if loss = 0.0 then string_of_int (Kset.messages_sent h) else string_of_int link)
        (ok_str v))
    [ 0.0; 0.1; 0.3; 0.5 ]

(* ------------------------------------------------------------------ *)
(* SCHED — engine scaling sweep: the arena/condition engine vs the     *)
(* legacy re-poll scheduler and the legacy closure-per-event queue on  *)
(* growing kset systems, n = 8 .. 1024.  All engines produce identical *)
(* executions (test/test_sched.ml pins the differentials); this        *)
(* experiment records what the hot-path overhaul buys and gates the    *)
(* allocation profile: bounded minor words per event on protocol runs, *)
(* zero promoted words per event on steady-state timer probes.         *)
(* ------------------------------------------------------------------ *)

(* Allocation gates (words per event).  Kset runs allocate envelopes,
   pidsets and round state — bounded, not zero; the bound trips if a
   regression reintroduces per-event closures or queue records.  The
   steady-state probe (pure ticker churn through the arena) must promote
   nothing at all once warmed up. *)
(* The protocol bound scales with n: one event's predicate wakeups and
   phase processing touch O(n)-sized quorum state (pidsets, tallies), so
   words-per-event grows roughly linearly (measured ~80 at n=128, ~10k at
   n=1024).  16n keeps honest headroom while still tripping on any
   per-event regression that is more than a small constant factor. *)
let sched_minor_words_bound nn = Float.max 1024.0 (16.0 *. float_of_int nn)
let sched_probe_minor_bound = 16.0

let sched () =
  section "SCHED  Engine scaling sweep: arena/cond vs legacy poll vs legacy queue";
  (* BENCH_SCHED_SMOKE: trimmed sweep for CI (small n, one seed); the
     steady-state GC probes run in both modes, so CI fails on an
     allocation regression, not just on a crash. *)
  let smoke = Sys.getenv_opt "BENCH_SCHED_SMOKE" <> None in
  let sizes = if smoke then [ 8; 16; 32 ] else [ 8; 16; 32; 64; 128; 256; 512; 1024 ] in
  (* The legacy engines exist as differential baselines; measuring them
     past n = 128 only burns time (the poll scheduler is quadratic in
     waiters), so the big sizes run the production engine alone. *)
  let mode_cap = 128 in
  let seeds_for nn = if smoke || nn > mode_cap then [ 1 ] else [ 1; 2; 3 ] in
  let modes_for nn =
    if nn <= mode_cap then
      [ ("cond", false, false); ("legacy_poll", true, false); ("legacy_queue", false, true) ]
    else [ ("cond", false, false) ]
  in
  (* Storm (pre-gst) rounds are pure churn at large n — n^2 messages per
     round that decide nothing.  Stabilize the oracle early for the big
     sizes so the n = 1024 job spends its wall clock on useful rounds. *)
  let gst_for nn = if nn > mode_cap then 10.0 else gst in
  let jobs =
    List.concat_map
      (fun nn ->
        let tb = (nn / 2) - 1 in
        List.concat_map
          (fun (mode, legacy_poll, legacy_queue) ->
            List.map
              (fun seed ->
                Runner.job ~exp:"sched" ~seed
                  ~label:(Printf.sprintf "n=%d mode=%s seed=%d" nn mode seed)
                  ~params:
                    [
                      ("n", Json.Int nn);
                      ("t", Json.Int tb);
                      ("mode", Json.String mode);
                    ]
                  ~replay:
                    (fdkit_replay "kset -n %d -t %d -z 2 -k 2 --crashes 2 --gst %g --seed %d%s%s"
                       nn tb (gst_for nn) seed
                       (if legacy_poll then " --legacy-poll" else "")
                       (if legacy_queue then " --legacy-queue" else ""))
                  (fun () ->
                    let sim =
                      Sim.create ~horizon:3000.0 ~max_events:200_000_000 ~legacy_poll
                        ~legacy_queue ~n:nn ~t:tb ~seed ()
                    in
                    let rng = Rng.split_named (Sim.rng sim) "crash" in
                    Sim.install_crashes sim
                      (Crash.generate
                         (Crash.Exactly { crashes = 2; window = (0.0, 20.0) })
                         ~n:nn ~t:tb rng);
                    let omega, _ =
                      Oracle.omega_z sim ~z:2 ~behavior:(Behavior.stormy ~gst:(gst_for nn)) ()
                    in
                    let proposals = Array.init nn (fun i -> 100 + i) in
                    let h = Kset.install sim ~omega ~proposals () in
                    let g0 = Gc.quick_stat () in
                    let t0 = Unix.gettimeofday () in
                    let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
                    let wall = Unix.gettimeofday () -. t0 in
                    let g1 = Gc.quick_stat () in
                    let ev = float_of_int (max o.events 1) in
                    let minor_pe = (g1.Gc.minor_words -. g0.Gc.minor_words) /. ev in
                    let promoted_pe = (g1.Gc.promoted_words -. g0.Gc.promoted_words) /. ev in
                    let v =
                      Check.k_set_agreement sim ~k:2 ~proposals
                        ~decisions:(Kset.decisions h)
                    in
                    if minor_pe > sched_minor_words_bound nn then
                      failwith
                        (Printf.sprintf "GC gate: %.0f minor words/event (bound %.0f)"
                           minor_pe (sched_minor_words_bound nn));
                    let pe = Sim.pred_evals sim in
                    Runner.body
                      ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
                      ~metrics:
                        [
                          ("rounds", float_of_int (Kset.max_round h));
                          ("events", float_of_int o.events);
                          ("pred_evals", float_of_int pe);
                          ("signals", float_of_int (Sim.cond_signals sim));
                          ("wakeups", float_of_int (Sim.wakeups sim));
                          ("wall_s", wall);
                          ("events_per_s", float_of_int o.events /. Float.max wall 1e-9);
                          ("minor_words_per_event", minor_pe);
                          ("promoted_words_per_event", promoted_pe);
                        ]
                      ~row:
                        (Printf.sprintf
                           "%-5d %-12s %-5d  %-5s %-7d %-9d %-11d %-9.3f %-12.0f %-9.1f"
                           nn mode seed (ok_str v) (Kset.max_round h) o.events pe wall
                           (float_of_int o.events /. Float.max wall 1e-9)
                           minor_pe)
                      (Check.verdict_ok v)))
              (seeds_for nn))
          (modes_for nn))
      sizes
  in
  (* Steady-state probes: a warmed-up simulator running nothing but its
     self-re-arming ticker.  This is the allocation-free steady state the
     arena engine promises — after warmup the event loop must not promote
     a single word, and minor allocation per event must be (near) zero. *)
  let probe_sizes = if smoke then [ 32 ] else [ 128; 1024 ] in
  let probes =
    List.map
      (fun nn ->
        Runner.job ~exp:"sched" ~seed:1
          ~label:(Printf.sprintf "n=%d mode=probe seed=1" nn)
          ~params:
            [ ("n", Json.Int nn); ("t", Json.Int ((nn / 2) - 1)); ("mode", Json.String "probe") ]
          (fun () ->
            let horizon = 20_000.0 in
            let sim = Sim.create ~horizon ~n:nn ~t:((nn / 2) - 1) ~seed:1 () in
            Sim.ticker sim ~every:1.0;
            (* Warm up: size the arena, then settle the heap. *)
            let warm = ref 0 in
            let _ = Sim.run ~stop_when:(fun () -> incr warm; !warm >= 1000) sim in
            Gc.full_major ();
            let g0 = Gc.quick_stat () in
            let t0 = Unix.gettimeofday () in
            let o = Sim.run sim in
            let wall = Unix.gettimeofday () -. t0 in
            let g1 = Gc.quick_stat () in
            let ev = float_of_int (max o.events 1) in
            let minor_pe = (g1.Gc.minor_words -. g0.Gc.minor_words) /. ev in
            let promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words in
            if promoted <> 0.0 then
              failwith
                (Printf.sprintf "GC gate: %.0f promoted words in steady state (must be 0)"
                   promoted);
            if minor_pe > sched_probe_minor_bound then
              failwith
                (Printf.sprintf "GC gate: %.2f minor words/event in steady state (bound %.0f)"
                   minor_pe sched_probe_minor_bound);
            Runner.body
              ~metrics:
                [
                  ("events", float_of_int o.events);
                  ("wall_s", wall);
                  ("events_per_s", float_of_int o.events /. Float.max wall 1e-9);
                  ("minor_words_per_event", minor_pe);
                  ("promoted_words", promoted);
                ]
              ~row:
                (Printf.sprintf
                   "%-5d %-12s %-5d  %-5s %-7s %-9d %-11s %-9.3f %-12.0f %-9.3f" nn
                   "probe" 1 "OK" "-" o.events "-" wall
                   (float_of_int o.events /. Float.max wall 1e-9)
                   minor_pe)
              true))
      probe_sizes
  in
  let c =
    campaign ~exp:"sched"
      ~header:
        (Printf.sprintf "%-5s %-12s %-5s  %-5s %-7s %-9s %-11s %-9s %-12s %-9s" "n" "mode"
           "seed" "ok" "rounds" "events" "pred_evals" "wall_s" "events/s" "minW/ev")
      (jobs @ probes)
  in
  (* Per-size comparison plus the gate summary merged into the artifact. *)
  let results = Array.to_list c.Runner.c_results in
  let mean mode nn name =
    let samples =
      List.filter_map
        (fun r ->
          if
            List.assoc_opt "n" r.Runner.r_params = Some (Json.Int nn)
            && List.assoc_opt "mode" r.Runner.r_params = Some (Json.String mode)
          then List.assoc_opt name r.Runner.r_metrics
          else None)
        results
    in
    match samples with
    | [] -> nan
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  subsection "arena/cond engine vs legacy baselines (means across seeds)";
  Printf.printf "%-5s  %-18s  %-16s  %-16s\n" "n" "pred-evals ratio" "vs legacy_poll"
    "vs legacy_queue";
  List.iter
    (fun nn ->
      if nn <= mode_cap then
        Printf.printf "%-5d  %-18.1f  %-16.2f  %-16.2f\n" nn
          (mean "legacy_poll" nn "pred_evals" /. mean "cond" nn "pred_evals")
          (mean "legacy_poll" nn "wall_s" /. mean "cond" nn "wall_s")
          (mean "legacy_queue" nn "wall_s" /. mean "cond" nn "wall_s"))
    sizes;
  (* The recorded pre-overhaul baseline (ROADMAP item 2): the engine this
     PR replaced sustained ~118k events/s on the n = 128 cond
     configuration.  The artifact records today's throughput against it. *)
  let baseline_n128 = 118_000.0 in
  let n128 = mean "cond" 128 "events_per_s" in
  let gate_json =
    Json.Obj
      [
        ( "minor_words_bound",
          Json.Obj
            (List.map
               (fun nn ->
                 (string_of_int nn, Json.Float (sched_minor_words_bound nn)))
               sizes) );
        ("probe_minor_words_bound", Json.Float sched_probe_minor_bound);
        ("probe_promoted_words_required", Json.Float 0.0);
        ( "probes",
          Json.Obj
            (List.map
               (fun nn ->
                 ( string_of_int nn,
                   Json.Obj
                     [
                       ("events_per_s", Json.Float (mean "probe" nn "events_per_s"));
                       ( "minor_words_per_event",
                         Json.Float (mean "probe" nn "minor_words_per_event") );
                       ("promoted_words", Json.Float (mean "probe" nn "promoted_words"));
                     ] ))
               probe_sizes) );
        ( "throughput",
          Json.Obj
            (List.map
               (fun nn ->
                 ( string_of_int nn,
                   Json.Obj
                     [
                       ("events_per_s_cond", Json.Float (mean "cond" nn "events_per_s"));
                       ( "minor_words_per_event_cond",
                         Json.Float (mean "cond" nn "minor_words_per_event") );
                     ] ))
               sizes) );
        ("baseline_n128_events_per_s", Json.Float baseline_n128);
        ( "speedup_vs_recorded_baseline_n128",
          if Float.is_nan n128 then Json.Null else Json.Float (n128 /. baseline_n128) );
      ]
  in
  (match Runner.campaign_json c with
  | Json.Obj fields ->
      Json.write_file
        (Filename.concat "_results" "BENCH_sched.json")
        (Json.Obj (fields @ [ ("gate", gate_json) ]))
  | _ -> ());
  if not (Float.is_nan n128) then
    Printf.printf "n=128 cond: %.0f events/s = %.1fx the recorded pre-overhaul baseline (%.0f)\n"
      n128 (n128 /. baseline_n128) baseline_n128

(* ------------------------------------------------------------------ *)
(* OBS — tracing overhead: the observability layer must be close to    *)
(* free at its default level.  kset sweep at trace off/default/full;   *)
(* the artifact additionally records per-(n, level) wall means and the *)
(* overhead percentage vs off (acceptance: default < 5% at n = 64).    *)
(* ------------------------------------------------------------------ *)

let obs () =
  section "OBS  Tracing overhead: kset at trace level off / default / full";
  (* BENCH_OBS_SMOKE: trimmed sweep for CI (small n, one seed, one rep). *)
  let smoke = Sys.getenv_opt "BENCH_OBS_SMOKE" <> None in
  (* Smoke keeps n = 64: the 5%-overhead budget is an n = 64 acceptance
     number (at toy sizes the fixed cost of tracing dominates the tiny
     wall), and the hard gate below must test the real criterion even
     in CI. *)
  let sizes = if smoke then [ 8; 16; 64 ] else [ 8; 16; 32; 64 ] in
  let seeds = if smoke then [ 1 ] else [ 1; 2; 3 ] in
  (* Multiple reps even in smoke: the overhead gate below uses
     min-of-reps, so a lone noisy rep must not be able to fail CI.  The
     full run takes 5 because the < 5% gate sits close to one loaded
     container's scheduler jitter at 3. *)
  let reps = if smoke then 3 else 5 in
  let levels = [ "off"; "default"; "full" ] in
  let pk = Option.get (Protocol.find "kset") in
  let mk_params nn level seed =
    {
      Protocol.default with
      Protocol.n = nn;
      t = (nn / 2) - 1;
      z = 2;
      k = 2;
      seed;
      horizon = 3000.0;
      crashes = Crash.Exactly { crashes = 2; window = (0.0, 20.0) };
      trace = level;
    }
  in
  let jobs =
    List.concat_map
      (fun nn ->
        List.concat_map
          (fun level ->
            List.map
              (fun seed ->
                Runner.job ~exp:"obs" ~seed
                  ~label:(Printf.sprintf "n=%d trace=%s seed=%d" nn level seed)
                  ~params:
                    [
                      ("n", Json.Int nn);
                      ("level", Json.String level);
                    ]
                  ~replay:
                    (fdkit_replay "kset -n %d -t %d -z 2 -k 2 --crashes 2 --seed %d --trace %s"
                       nn ((nn / 2) - 1) seed level)
                  (fun () ->
                    let p = mk_params nn level seed in
                    (* min-of-reps wall: same params → same execution, so
                       repeats only shave scheduler noise off the timing. *)
                    let best = ref infinity and last = ref None in
                    for _ = 1 to reps do
                      let t0 = Unix.gettimeofday () in
                      let r = Protocol.run pk p in
                      let wall = Unix.gettimeofday () -. t0 in
                      if wall < !best then best := wall;
                      last := Some r
                    done;
                    let r = Option.get !last in
                    let tr = Sim.trace r.Protocol.rp_sim in
                    let obs_metrics =
                      List.filter
                        (fun (name, _) -> String.starts_with ~prefix:"obs." name)
                        r.Protocol.rp_metrics
                    in
                    let get name =
                      Option.value ~default:0.0
                        (List.assoc_opt name r.Protocol.rp_metrics)
                    in
                    let ok = Check.verdict_ok r.Protocol.rp_verdict in
                    Runner.body
                      ~notes:(if ok then [] else r.Protocol.rp_verdict.Check.notes)
                      ~metrics:
                        ([
                           ("wall_s", !best);
                           ("entries", float_of_int (Trace.length tr));
                           ("rounds", get "rounds");
                         ]
                        @ obs_metrics)
                      ~row:
                        (Printf.sprintf "%-5d %-8s %-5d  %-5s %-7.0f %-9d %-9.3f" nn level
                           seed
                           (if ok then "OK" else "FAIL")
                           (get "rounds") (Trace.length tr) !best)
                      ok))
              seeds)
          levels)
      sizes
  in
  let c =
    campaign ~exp:"obs"
      ~header:
        (Printf.sprintf "%-5s %-8s %-5s  %-5s %-7s %-9s %-9s" "n" "trace" "seed" "ok"
           "rounds" "entries" "wall_s")
      jobs
  in
  (* Per-(n, level) means of the per-seed min walls, and the overhead of
     each tracing level over off. *)
  let results = Array.to_list c.Runner.c_results in
  let mean nn level name =
    let samples =
      List.filter_map
        (fun r ->
          if
            List.assoc_opt "n" r.Runner.r_params = Some (Json.Int nn)
            && List.assoc_opt "level" r.Runner.r_params = Some (Json.String level)
          then List.assoc_opt name r.Runner.r_metrics
          else None)
        results
    in
    match samples with
    | [] -> nan
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let walls nn level =
    List.filter_map
      (fun r ->
        if
          List.assoc_opt "n" r.Runner.r_params = Some (Json.Int nn)
          && List.assoc_opt "level" r.Runner.r_params = Some (Json.String level)
        then List.assoc_opt "wall_s" r.Runner.r_metrics
        else None)
      results
  in
  let overhead_pct nn level =
    (* Ratios are paired per seed — the same seed is the same execution
       at every level, and the deterministic job order lists seeds
       identically for each level — then the median across seeds is
       taken, so one scheduler-noise-inflated seed cannot move the
       acceptance number the way a ratio of means lets it. *)
    let ratios =
      List.map2
        (fun lv off -> ((lv /. off) -. 1.0) *. 100.0)
        (walls nn level) (walls nn "off")
    in
    match List.sort compare ratios with
    | [] -> nan
    | l -> List.nth l (List.length l / 2)
  in
  subsection "tracing overhead vs off (median of per-seed min-wall ratios)";
  Printf.printf "%-5s %-12s %-14s %-12s %-14s\n" "n" "off wall_s" "default vs off"
    "full wall_s" "full vs off";
  let pct v = Printf.sprintf "%+.1f%%" v in
  List.iter
    (fun nn ->
      Printf.printf "%-5d %-12.4f %-14s %-12.4f %-14s\n" nn (mean nn "off" "wall_s")
        (pct (overhead_pct nn "default"))
        (mean nn "full" "wall_s")
        (pct (overhead_pct nn "full")))
    sizes;
  (* Merge the overhead table into the artifact the campaign already
     wrote, so _results/BENCH_obs.json carries the acceptance numbers. *)
  let overhead_json =
    Json.Obj
      (List.map
         (fun nn ->
           ( Printf.sprintf "n%d" nn,
             Json.Obj
               (List.map
                  (fun level ->
                    ( level,
                      Json.Obj
                        ([ ("wall_s_mean", Json.Float (mean nn level "wall_s")) ]
                        @
                        if level = "off" then []
                        else [ ("overhead_pct_vs_off", Json.Float (overhead_pct nn level)) ])
                    ))
                  levels) ))
         sizes)
  in
  (* Live-stream export check: replay a real trace entry-by-entry into
     a fresh trace, flushing the streaming JSONL exporter at arbitrary
     points; the concatenated frames must be byte-identical to the
     post-hoc export of the final trace.  (The qcheck in test_obs.ml
     covers random interleavings; this pins the property on a
     protocol-sized trace and gates the bench on it.) *)
  subsection "streamed JSONL vs post-hoc export";
  let stream_identical =
    let p = mk_params (List.hd sizes) "full" 1 in
    let r = Protocol.run pk p in
    let src = Sim.trace r.Protocol.rp_sim in
    let tr = Trace.create ~level:(Trace.level src) () in
    let stream = Export.Stream.create tr in
    let frames = Buffer.create 4096 in
    let i = ref 0 in
    Trace.iter
      (fun { Trace.time; entry } ->
        Trace.record tr ~time entry;
        incr i;
        if !i mod 97 = 0 then Buffer.add_string frames (Export.Stream.flush stream))
      src;
    List.iter (fun (name, v) -> Trace.add_to tr name v) (Trace.counters src);
    Buffer.add_string frames (Export.Stream.close stream);
    Buffer.contents frames = Export.to_jsonl tr
  in
  Printf.printf "concatenated stream == post-hoc export: %s\n"
    (if stream_identical then "yes" else "NO");
  (* The acceptance measurement: default vs off at the largest size, as
     paired back-to-back runs in alternating order.  The campaign table
     above times each level in its own job, seconds apart — on a loaded
     host a sustained slow window then lands entirely on one level and
     fabricates (or hides) tens of percent.  Pairing cancels
     slow-varying load inside each ratio, alternation cancels order
     bias, and the gate reads the smallest ratio: a {e real} regression
     inflates every pair, while load noise only inflates the pairs it
     happens to land on, so the floor of the distribution is the
     intrinsic cost. *)
  let nmax = List.fold_left max 0 sizes in
  let d =
    let time level =
      let t0 = Unix.gettimeofday () in
      ignore (Protocol.run pk (mk_params nmax level 1));
      Unix.gettimeofday () -. t0
    in
    ignore (time "off");
    (* warm-up *)
    let pairs = 7 in
    let ratios =
      List.init pairs (fun i ->
          let off, dflt =
            if i mod 2 = 0 then
              let off = time "off" in
              (off, time "default")
            else
              let dflt = time "default" in
              (time "off", dflt)
          in
          ((dflt /. off) -. 1.0) *. 100.0)
    in
    List.fold_left Float.min infinity ratios
  in
  Printf.printf "default-level overhead at n=%d: %+.1f%% (budget: < 5%%)\n" nmax d;
  (match Runner.campaign_json c with
  | Json.Obj fields ->
      Json.write_file
        (Filename.concat "_results" "BENCH_obs.json")
        (Json.Obj
           (fields
           @ [
               ("overhead", overhead_json);
               ("stream_byte_identical", Json.Bool stream_identical);
               ("default_overhead_pct_paired", Json.Float d);
               ("gate_default_overhead_pct", Json.Float 5.0);
             ]))
  | _ -> ());
  (* Hard gates (nonzero bench exit): the telemetry plane rides on the
     default trace level, so its cost cap is part of the observability
     acceptance, as is the stream/post-hoc byte identity. *)
  if not stream_identical then
    failwith "OBS: concatenated streamed JSONL differs from post-hoc export";
  if Float.is_nan d || d >= 5.0 then
    failwith
      (Printf.sprintf "OBS: default-level tracing overhead %+.1f%% >= 5%% at n=%d"
         d nmax)

(* ------------------------------------------------------------------ *)
(* EXPLORE — adversarial schedule exploration as a benchmark: search   *)
(* throughput on the E2 misuse configuration (Omega_z with z > k must  *)
(* yield a minimized counterexample) and on the safe z <= k            *)
(* configuration (Lemma 2: no schedule violates, the explorer must     *)
(* come up dry).                                                       *)
(* ------------------------------------------------------------------ *)

let explore () =
  section "EXPLORE  Schedule explorer: misuse finds + minimizes, safe comes up dry";
  let bounds =
    {
      Explorer.default_bounds with
      Explorer.depth = 12;
      delays = 1;
      walks = 20;
      max_runs_per_job = 200;
    }
  in
  let params z =
    {
      Protocol.default with
      Protocol.n = 7;
      t = 2;
      seed = 1;
      z;
      k = 1;
      adversarial = true;
      horizon = 300.0;
      crashes = Crash.No_crashes;
    }
  in
  let stat c name =
    Array.to_list c.Runner.c_results
    |> List.filter_map (fun r -> List.assoc_opt ("explore." ^ name) r.Runner.r_metrics)
    |> List.fold_left ( +. ) 0.0
  in
  Printf.printf "%-22s %-8s %-8s %-8s %-8s %-8s %-8s %-6s\n" "config" "runs" "points"
    "prunes" "viols" "shrinks" "viol/s" "ces";
  let cell ?(artifact = false) name z =
    let o = Explorer.explore ~protocol:"kset" (params z) bounds in
    let c = o.Explorer.o_campaign in
    Printf.printf "%-22s %-8.0f %-8.0f %-8.0f %-8.0f %-8.0f %-8.1f %-6d\n" name
      (stat c "runs") (stat c "points") (stat c "prunes") (stat c "violations")
      (stat c "shrink_runs")
      (stat c "violations" /. Float.max c.Runner.c_wall_s 1e-9)
      (List.length o.Explorer.o_ces);
    if artifact then
      Printf.printf "  -> %s\n" (Runner.write_artifact c);
    o.Explorer.o_ces
  in
  let misuse = cell ~artifact:true "misuse z=2 > k=1" 2 in
  let safe = cell "safe   z=1 <= k=1" 1 in
  if misuse = [] then failwith "EXPLORE: misuse config (z > k) found no counterexample";
  if safe <> [] then failwith "EXPLORE: safe config (z <= k) found a spurious violation";
  Printf.printf
    "misuse: %d minimized counterexample(s) (shortest: %d choice(s)); safe: none — as \
     Lemma 2 demands\n"
    (List.length misuse)
    (List.fold_left
       (fun acc (s : Schedule.t) -> min acc (List.length s.Schedule.choices))
       max_int misuse)

(* ------------------------------------------------------------------ *)
(* CHAOS — the fault-injection campaign as a benchmark: every fault    *)
(* mix x seed x protocol run must preserve safety (0 violations, the   *)
(* hard acceptance bar) and decide once its faults heal; the artifact  *)
(* records the decision-latency inflation each mix causes vs the       *)
(* fault-free control, and the deliberately illegal specs must be      *)
(* caught by Faults.legal and minimized to replayable counterexamples. *)
(* ------------------------------------------------------------------ *)

let chaos () =
  section "CHAOS  Fault injection: safety under every mix, liveness after heal";
  (* BENCH_CHAOS_SMOKE: one seed per (protocol, mix) cell for CI. *)
  let smoke = Sys.getenv_opt "BENCH_CHAOS_SMOKE" <> None in
  let seeds = if smoke then 1 else 8 in
  let o = Chaos.run ~seeds () in
  let c = o.Chaos.o_campaign in
  Printf.printf
    "[chaos] %d runs (%d protocols x %d mixes x %d seeds) on %d domain(s), %.2fs wall\n"
    o.Chaos.o_runs
    (List.length Chaos.default_protocols)
    (List.length Chaos.mixes)
    seeds c.Runner.c_workers c.Runner.c_wall_s;
  Printf.printf "safety violations: %d (budget: 0)\nliveness failures: %d (budget: 0)\n"
    o.Chaos.o_safety o.Chaos.o_liveness;
  List.iter
    (fun (f : Chaos.failure) ->
      Printf.printf "  FAIL %s/%s seed=%d %s: %s\n" f.Chaos.f_protocol f.Chaos.f_mix
        f.Chaos.f_params.Protocol.seed
        (Chaos.kind_to_string f.Chaos.f_kind)
        (String.concat "; " f.Chaos.f_notes))
    o.Chaos.o_failures;
  (* Decision-latency inflation per mix, against the fault-free control
     of the same protocol: the price of graceful degradation. *)
  let results = Array.to_list c.Runner.c_results in
  let cut r =
    match String.split_on_char '/' r.Runner.r_label with
    | proto :: mix :: _ -> (proto, mix)
    | _ -> ("?", "?")
  in
  let mean_latency proto mix =
    let samples =
      List.filter_map
        (fun r ->
          if r.Runner.r_ok && cut r = (proto, mix) then
            List.assoc_opt "latency" r.Runner.r_metrics
          else None)
        results
    in
    match samples with
    | [] -> nan
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  subsection "decision-latency inflation vs the fault-free mix (mean over ok runs)";
  Printf.printf "%-12s" "mix";
  List.iter (fun p -> Printf.printf " %-22s" p) Chaos.default_protocols;
  print_newline ();
  let inflation proto mix = mean_latency proto mix /. mean_latency proto "none" in
  List.iter
    (fun mix ->
      Printf.printf "%-12s" mix;
      List.iter
        (fun proto ->
          Printf.printf " %-22s"
            (Printf.sprintf "%7.1f (x%.2f)" (mean_latency proto mix)
               (inflation proto mix)))
        Chaos.default_protocols;
      print_newline ())
    Chaos.mix_names;
  (* Illegal-spec probes: never run, caught by Faults.legal, minimized
     by ddmin to the offending atoms, recorded as replayable records. *)
  subsection "illegal-spec probes (caught, minimized, replayable)";
  let n = Protocol.default.Protocol.n and t = Protocol.default.Protocol.t in
  let probe name spec =
    match Chaos.minimize_illegal ~n ~t spec with
    | None -> failwith (Printf.sprintf "CHAOS: illegal probe %S was not caught" name)
    | Some s ->
        let errs = match Faults.legal ~n ~t s with Error e -> e | Ok () -> [] in
        Printf.printf "  %-14s caught (%d atoms -> %d): %s\n" name
          (List.length (Faults.elements spec))
          (List.length (Faults.elements s))
          (String.concat "; " errs);
        {
          Chaos.f_protocol = "kset";
          f_mix = name;
          f_kind = Chaos.Illegal;
          f_notes = errs;
          f_params = { Protocol.default with Protocol.faults = s };
        }
  in
  let over_budget =
    {
      Faults.none with
      Faults.crashes =
        Crash.Explicit (List.init (t + 1) (fun i -> (i, 5.0 +. float_of_int i)));
      stalls = [ Faults.stall ~pid:0 ~from:1.0 ~until:2.0 ];
    }
  in
  let never_omega =
    {
      Faults.none with
      Faults.adversary = "never";
      links = [ Faults.link ~drop:0.5 ~from:0.0 ~until:10.0 () ];
    }
  in
  let p1 = probe "t+1-crashes" over_budget in
  let p2 = probe "never-omega" never_omega in
  let probes = [ p1; p2 ] in
  let fpath = Chaos.write_failures (o.Chaos.o_failures @ probes) in
  Printf.printf "chaos failures artifact: %s (%d record(s), %d probe(s))\n" fpath
    (List.length o.Chaos.o_failures + List.length probes)
    (List.length probes);
  (* The campaign artifact, with the inflation table merged in. *)
  let inflation_json =
    Json.Obj
      (List.map
         (fun proto ->
           ( proto,
             Json.Obj
               (List.map
                  (fun mix ->
                    ( mix,
                      Json.Obj
                        ([ ("latency_mean", Json.Float (mean_latency proto mix)) ]
                        @
                        if mix = "none" then []
                        else [ ("inflation_vs_none", Json.Float (inflation proto mix)) ])
                    ))
                  Chaos.mix_names) ))
         Chaos.default_protocols)
  in
  (match Runner.campaign_json c with
  | Json.Obj fields ->
      Json.write_file
        (Filename.concat "_results" "BENCH_chaos.json")
        (Json.Obj (fields @ [ ("latency_inflation", inflation_json) ]))
  | _ -> ());
  if o.Chaos.o_safety > 0 then
    failwith
      (Printf.sprintf "CHAOS: %d safety violation(s) under fault injection"
         o.Chaos.o_safety);
  if o.Chaos.o_liveness > 0 then
    failwith
      (Printf.sprintf "CHAOS: %d healed run(s) failed to decide" o.Chaos.o_liveness)

(* ------------------------------------------------------------------ *)
(* SERVE — the content-addressed result cache under the unified job    *)
(* API (DESIGN.md §11): a cold fill of the full chaos campaign, a warm *)
(* replay that must execute nothing and reproduce the summary          *)
(* byte-for-byte, and a one-protocol fingerprint bump that must        *)
(* invalidate exactly that protocol's entries.                         *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let serve () =
  section "SERVE  Result cache: warm replay is free, invalidation is per-protocol";
  (* BENCH_SERVE_SMOKE: one seed per (protocol, mix) cell for CI. *)
  let smoke = Sys.getenv_opt "BENCH_SERVE_SMOKE" <> None in
  let seeds = if smoke then 1 else 8 in
  let spec = Job.of_flags ~kind:`Chaos ~seeds ~protocol:"" Protocol.default in
  let protocols, mixes =
    match spec with
    | Job.Chaos { protocols; mixes; _ } -> (protocols, mixes)
    | _ -> assert false
  in
  let total = List.length protocols * List.length mixes * seeds in
  let dir = Filename.concat "_results" "bench_cache" in
  rm_rf dir;
  let pass ?fingerprint tag =
    (* One Cache.t per pass so hit/miss counters are per-pass. *)
    let cache = Runner.Cache.create ~dir () in
    let o = Job.execute ~cache ?fingerprint spec in
    let c = o.Job.o_campaign in
    Printf.printf "  %-24s %4d jobs: %4d cached, %4d executed, %6.2fs wall\n" tag
      (Array.length c.Runner.c_results)
      c.Runner.c_cache_hits c.Runner.c_executed c.Runner.c_wall_s;
    (c, Digest.to_hex (Digest.string (Runner.signature c)))
  in
  let gate name cond =
    if not cond then failwith (Printf.sprintf "SERVE: %s" name)
  in
  let c_cold, sig_cold = pass "cold fill" in
  gate "cold pass resolved jobs from an empty cache"
    (c_cold.Runner.c_cache_hits = 0 && c_cold.Runner.c_executed = total);
  let c_warm, sig_warm = pass "warm replay" in
  gate "warm replay executed jobs" (c_warm.Runner.c_executed = 0);
  gate "warm replay missed the cache" (c_warm.Runner.c_cache_hits = total);
  gate "warm summary is not byte-identical to cold" (sig_warm = sig_cold);
  (* A one-line change to the kset protocol changes only kset's code
     fingerprint; every kset entry must miss and every other entry must
     still hit. *)
  let bumped name =
    let fp = Fingerprint.protocol name in
    if name = "kset" then Digest.to_hex (Digest.string (fp ^ "+one-line-patch"))
    else fp
  in
  let kset_share = List.length mixes * seeds in
  let c_bump, sig_bump = pass ~fingerprint:bumped "kset fingerprint bump" in
  Printf.printf
    "  invalidation: %d/%d entries re-executed (kset's share), %d still hit\n"
    c_bump.Runner.c_executed total c_bump.Runner.c_cache_hits;
  gate
    (Printf.sprintf "fingerprint bump re-executed %d jobs, expected exactly %d"
       c_bump.Runner.c_executed kset_share)
    (c_bump.Runner.c_executed = kset_share);
  gate "fingerprint bump missed non-kset entries"
    (c_bump.Runner.c_cache_hits = total - kset_share);
  gate "re-executed jobs changed the summary" (sig_bump = sig_cold);
  (* Telemetry plane: a subscribed campaign must deliver snapshots and
     stay observationally inert — the signature with a telemetry
     consumer attached is byte-identical to the plain run's.  A small
     uncached kset campaign keeps this pass cheap. *)
  subsection "live telemetry (snapshots attached vs not)";
  let tele_spec =
    Job.of_flags ~kind:`Campaign ~seeds:(if smoke then 8 else 16)
      ~protocol:"kset" Protocol.default
  in
  let frames = ref [] in
  let t0 = Unix.gettimeofday () in
  let c_tele =
    (Job.execute ~on_telemetry:(fun te -> frames := te :: !frames)
       ~telemetry_every_s:0.05 tele_spec)
      .Job.o_campaign
  in
  let wall_tele = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let c_plain = (Job.execute tele_spec).Job.o_campaign in
  let wall_plain = Unix.gettimeofday () -. t0 in
  let n_frames = List.length !frames in
  let sig_tele = Digest.to_hex (Digest.string (Runner.signature c_tele)) in
  let sig_plain = Digest.to_hex (Digest.string (Runner.signature c_plain)) in
  let tele_overhead_pct = ((wall_tele /. wall_plain) -. 1.0) *. 100.0 in
  Printf.printf
    "  %d telemetry frame(s), overhead %+.1f%%, signature %s\n" n_frames
    tele_overhead_pct
    (if sig_tele = sig_plain then "identical" else "DIFFERS");
  gate "telemetried campaign emitted no snapshot" (n_frames >= 1);
  gate "telemetry perturbed the campaign signature" (sig_tele = sig_plain);
  (List.iter
     (fun (te : Runner.telemetry) ->
       gate "telemetry snapshot done exceeds total"
         (te.Runner.te_done <= te.Runner.te_total))
     !frames);
  let last = List.hd !frames in
  gate "final telemetry snapshot is not complete"
    (last.Runner.te_done = last.Runner.te_total);
  (* Crash recovery: fill the cache to ~50%, fabricate the journal a
     kill -9 leaves behind (accepted + running, no terminal entry), and
     restart a real daemon on it.  The resumed campaign must re-execute
     only the missing tail — zero duplicate executions — and land on the
     cold pass's signature byte-for-byte.  (The CI smoke kills a live
     daemon with SIGKILL; this pass measures the same recovery path
     in-process, where executed/hit counts are observable.) *)
  subsection "crash recovery (kill at ~50%, restart, resume)";
  let rdir = Filename.concat "_results" "bench_recovery" in
  rm_rf rdir;
  let rcache_dir = Filename.concat rdir "cache" in
  let half = total / 2 in
  let completed = ref 0 in
  let cache1 = Runner.Cache.create ~dir:rcache_dir () in
  let c_interrupted =
    (Job.execute ~cache:cache1
       ~on_progress:(fun _ -> incr completed)
       ~stop:(fun () -> !completed >= half)
       spec)
      .Job.o_campaign
  in
  let executed1 = c_interrupted.Runner.c_executed in
  Printf.printf "  interrupted at %d/%d jobs (%d executed, %d stored)\n"
    !completed total executed1 (Runner.Cache.stores cache1);
  gate "interrupted pass ran to completion (cannot exercise recovery)"
    (executed1 < total);
  let socket = Filename.concat rdir "fdkit.sock" in
  let j = Journal.append_open (Serve.journal_path rdir) in
  Journal.append j (Serve.Recovery.accepted_entry ~id:1 spec);
  Journal.append j (Serve.Recovery.state_entry ~id:1 "running");
  Journal.close j;
  let t0 = Unix.gettimeofday () in
  let daemon =
    Domain.spawn (fun () ->
        Serve.serve
          ~config:
            {
              Serve.default_config with
              Serve.socket_path = socket;
              cache_dir = Some rcache_dir;
              out_dir = rdir;
              log = ignore;
            }
          ())
  in
  let conn =
    match Serve.Client.connect_retry ~attempts:10 ~backoff_s:0.05 socket with
    | Ok c -> c
    | Error e -> failwith ("SERVE: recovery daemon unreachable: " ^ e)
  in
  let rec wait_done n =
    if n = 0 then failwith "SERVE: resumed job never finished";
    let record =
      match Serve.Client.status conn with
      | Ok v -> (
          match Json.member "jobs" v with
          | Some (Json.List [ r ])
            when Json.member "state" r = Some (Json.String "done") ->
              Some r
          | _ -> None)
      | Error _ -> None
    in
    match record with
    | Some r -> r
    | None ->
        Unix.sleepf 0.05;
        wait_done (n - 1)
  in
  let r = wait_done 2400 in
  let recovery_wall_s = Unix.gettimeofday () -. t0 in
  ignore (Serve.Client.shutdown conn);
  Serve.Client.close conn;
  Domain.join daemon;
  let int_of k = match Json.member k r with Some (Json.Int i) -> i | _ -> -1 in
  let hits2 = int_of "cache_hits" and executed2 = int_of "executed" in
  let sig_resumed =
    match Json.member "signature" r with Some (Json.String s) -> s | _ -> "?"
  in
  let duplicates = max 0 (executed1 + executed2 - total) in
  Printf.printf
    "  resumed: %d cached + %d executed in %.2fs, %d duplicate execution(s), signature %s\n"
    hits2 executed2 recovery_wall_s duplicates
    (if sig_resumed = sig_cold then "identical" else "DIFFERS");
  gate "recovery re-executed already-completed jobs" (duplicates = 0);
  gate "recovery left jobs unaccounted" (hits2 + executed2 = total);
  gate "resumed signature differs from the cold signature"
    (sig_resumed = sig_cold);
  let side tag (c : Runner.campaign) sg =
    ( tag,
      Json.Obj
        [
          ("jobs", Json.Int (Array.length c.Runner.c_results));
          ("cache_hits", Json.Int c.Runner.c_cache_hits);
          ("executed", Json.Int c.Runner.c_executed);
          ("wall_s", Json.Float c.Runner.c_wall_s);
          ("signature", Json.String sg);
        ] )
  in
  Json.write_file
    (Filename.concat "_results" "BENCH_serve.json")
    (Json.Obj
       (Stamp.fields ()
       @ [
           ("experiment", Json.String "serve");
           ("smoke", Json.Bool smoke);
           ("seeds", Json.Int seeds);
           ("protocols", Json.List (List.map (fun p -> Json.String p) protocols));
           ("mixes", Json.Int (List.length mixes));
           ("cache_dir", Json.String dir);
           side "cold" c_cold sig_cold;
           side "warm" c_warm sig_warm;
           side "fingerprint_bump" c_bump sig_bump;
           ("warm_byte_identical", Json.Bool (sig_warm = sig_cold));
           ("bump_invalidated_exactly", Json.Int c_bump.Runner.c_executed);
           ( "telemetry",
             Json.Obj
               [
                 ("frames", Json.Int n_frames);
                 ("overhead_pct", Json.Float tele_overhead_pct);
                 ("signature_identical", Json.Bool (sig_tele = sig_plain));
                 ("cache_skipped_cold", Json.Int c_cold.Runner.c_cache_skipped);
               ] );
           ( "recovery",
             Json.Obj
               [
                 ("interrupted_executed", Json.Int executed1);
                 ("resumed_cache_hits", Json.Int hits2);
                 ("resumed_executed", Json.Int executed2);
                 ("duplicate_executions", Json.Int duplicates);
                 ("recovery_wall_s", Json.Float recovery_wall_s);
                 ("signature_identical", Json.Bool (sig_resumed = sig_cold));
               ] );
         ]));
  Printf.printf "artifact: %s\n" (Filename.concat "_results" "BENCH_serve.json")

(* ------------------------------------------------------------------ *)
(* RT — the real-runtime backend (lib/rt): accrual-detector QoS vs     *)
(* heartbeat period on real domains over loopback, and the sim-vs-rt   *)
(* decision-latency comparison for the kset protocol.  Jobs spawn      *)
(* their own domains, so the campaign runs them on one worker.         *)
(* ------------------------------------------------------------------ *)

let rt () =
  section "RT  Real-runtime backend: accrual QoS vs heartbeat period, sim-vs-rt latency";
  (* BENCH_RT_SMOKE: trimmed sweep for CI (fewer periods, n = 4 only,
     in-process channel transport — no sockets on the CI runner). *)
  let smoke = Sys.getenv_opt "BENCH_RT_SMOKE" <> None in
  let transport = if smoke then `Chan else `Udp in
  let module R = Setagree_rt.Run in
  let module Q = Setagree_rt.Qos in
  let hb_periods = if smoke then [ 0.02; 0.05 ] else [ 0.01; 0.02; 0.05; 0.1 ] in
  let probe_n = if smoke then 4 else 6 in
  let probe_jobs =
    List.mapi
      (fun i hb ->
        Runner.job ~exp:"rt"
          ~seed:(9900 + i)
          ~label:(Printf.sprintf "fd_probe hb=%gms" (hb *. 1000.0))
          ~params:
            [
              ("kind", Json.String "fd_probe");
              ("hb_ms", Json.Float (hb *. 1000.0));
              ("n", Json.Int probe_n);
            ]
          (fun () ->
            let cfg =
              {
                R.default_cfg with
                R.transport;
                hb_period_s = hb;
                (* warmup + crash + detection must fit the horizon even
                   at the slowest heartbeat period *)
                horizon_s = Float.max 2.0 (40.0 *. hb);
                crash_at_s = Float.max 0.3 (10.0 *. hb);
              }
            in
            let report, metrics = R.fd_probe ~n:probe_n ~crashes:1 ~seed:(9900 + i) ~cfg () in
            let detect = Option.value ~default:nan report.Q.detection_time_s in
            let mdur = Option.value ~default:0.0 report.Q.mistake_duration_s in
            Runner.body
              ~notes:
                (if report.Q.undetected = 0 then []
                 else [ Printf.sprintf "%d undetected crash pair(s)" report.Q.undetected ])
              ~metrics:(metrics @ [ ("hb_ms", hb *. 1000.0) ])
              ~row:
                (Printf.sprintf "%-8.0f %-10.4f %-6d  %-10.4f %-10.4f %-9.3f %-8d" (hb *. 1000.0)
                   detect report.Q.undetected report.Q.mistake_rate_hz mdur
                   report.Q.query_accuracy report.Q.samples)
              (report.Q.undetected = 0)))
      hb_periods
  in
  (* sim-vs-rt: the same kset configuration on both substrates.  The
     simulator's virtual decision latency is mapped to wall seconds
     through the runtime's timescale, so the two columns share units. *)
  let sizes = if smoke then [ 4 ] else [ 4; 8; 16 ] in
  let pk = Option.get (Protocol.find "kset") in
  let latency_jobs =
    List.map
      (fun nn ->
        let tt = max 1 (nn / 4) in
        let seed = 9950 + nn in
        Runner.job ~exp:"rt" ~seed
          ~label:(Printf.sprintf "kset sim-vs-rt n=%d" nn)
          ~params:[ ("kind", Json.String "kset_latency"); ("n", Json.Int nn) ]
          ~replay:
            (fdkit_replay "kset --backend rt -n %d -t %d -z 1 -k 1 --crashes 1 --seed %d" nn
               tt seed)
          (fun () ->
            let p =
              {
                Protocol.default with
                Protocol.n = nn;
                t = tt;
                seed;
                z = 1;
                k = 1;
                gst = 0.0;
                horizon = 3000.0;
                crashes = Crash.Exactly { crashes = 1; window = (0.0, 20.0) };
              }
            in
            let sim_r = Protocol.run pk p in
            let sim_ok = Check.verdict_ok sim_r.Protocol.rp_verdict in
            let sim_latency_vt =
              Option.value ~default:sim_r.Protocol.rp_outcome.Sim.end_time
                (List.assoc_opt "latency" sim_r.Protocol.rp_metrics)
            in
            (* Bigger systems contend for cores: slow the heartbeat and
               raise the accrual threshold (suspect only beyond every
               observed gap) so scheduler hiccups don't flap the leader. *)
            let cfg =
              {
                R.default_cfg with
                R.transport;
                hb_period_s = (if nn >= 16 then 0.04 else 0.02);
                accrual_threshold = 3.0;
                detect_slack_s = 1.2;
              }
            in
            let sim_latency_s = sim_latency_vt /. cfg.R.timescale in
            let rt_r = R.run_protocol pk { p with Protocol.backend = "rt" } ~cfg () in
            let rt_latency_s =
              List.fold_left (fun acc (_, _, _, tm) -> Float.max acc tm) 0.0
                rt_r.R.o_decisions
            in
            (* The cell under test is decision latency with safety held
               on both substrates.  Ω-stability of the extracted detector
               is reported but not gated here: with more domains than
               cores every node is CPU-starved and real heartbeat gaps
               flap the leader — fd_probe and the CI smoke certify the
               detector at sane occupancy. *)
            let ok = sim_ok && rt_r.R.o_safety.Check.ok in
            Runner.body
              ~notes:
                ((if ok then []
                  else
                    sim_r.Protocol.rp_verdict.Check.notes @ rt_r.R.o_safety.Check.notes)
                @ (if rt_r.R.o_fd.Check.ok then [] else rt_r.R.o_fd.Check.notes))
              ~metrics:
                ([
                   ("sim_latency_s", sim_latency_s);
                   ("rt_latency_s", rt_latency_s);
                   ("rt_wall_s", rt_r.R.o_wall_s);
                 ]
                @ rt_r.R.o_metrics)
              ~row:
                (Printf.sprintf "%-5d %-5d  %-14.4f %-14.4f %-8.2f %-6s %-8s" nn tt
                   sim_latency_s rt_latency_s
                   (rt_latency_s /. Float.max sim_latency_s 1e-9)
                   (if ok then "OK" else "FAIL")
                   (if rt_r.R.o_fd.Check.ok then "OK" else "flapped"))
              ok))
      sizes
  in
  (* One campaign (hence one BENCH_rt.json artifact) over both sweeps;
     rows print per subsection in canonical job order. *)
  let c = Runner.run ~jobs:1 ~exp:"rt" (probe_jobs @ latency_jobs) in
  let n_probe = List.length probe_jobs in
  let all_rows = Array.to_list (Array.map (fun r -> r.Runner.r_row) c.Runner.c_results) in
  let probe_rows = List.filteri (fun i _ -> i < n_probe) all_rows in
  let latency_rows = List.filteri (fun i _ -> i >= n_probe) all_rows in
  subsection
    (Printf.sprintf "accrual QoS vs heartbeat period (n=%d, 1 crash, %s)" probe_n
       (match transport with `Udp -> "udp loopback" | `Chan -> "chan"));
  Printf.printf "%-8s %-10s %-6s  %-10s %-10s %-9s %-8s\n" "hb_ms" "detect_s" "undet"
    "mist/s" "mdur_s" "accuracy" "samples";
  List.iter print_endline probe_rows;
  subsection "kset decision latency: simulator (wall-equivalent) vs real domains";
  Printf.printf "%-5s %-5s  %-14s %-14s %-8s %-6s %-8s\n" "n" "t" "sim_latency_s"
    "rt_latency_s" "ratio" "ok" "fd";
  List.iter print_endline latency_rows;
  let path = Runner.write_artifact c in
  Printf.printf "[rt] %d jobs: %d failed, %.2fs wall -> %s\n"
    (Array.length c.Runner.c_results)
    (List.length (Runner.failures c))
    c.Runner.c_wall_s path

let all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e5b ();
  e5c ();
  e6 ();
  e6b ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  sched ();
  obs ();
  explore ();
  chaos ()
