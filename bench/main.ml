(* Bench entry point: regenerates every figure/table of the paper (the
   experiment index in DESIGN.md §4) and then runs the Bechamel
   micro-benchmarks.  `dune exec bench/main.exe` with no argument runs
   everything; pass experiment ids (e1 e2 ... e10 micro) to run a
   subset. *)

let registry =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e5b", Experiments.e5b);
    ("e5c", Experiments.e5c);
    ("e6", Experiments.e6);
    ("e6b", Experiments.e6b);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("sched", Experiments.sched);
    ("obs", Experiments.obs);
    ("explore", Experiments.explore);
    ("chaos", Experiments.chaos);
    ("serve", Experiments.serve);
    ("rt", Experiments.rt);
    ("micro", Microbench.run);
  ]

(* Stamp artifacts and key the result cache off the built code. *)
let () = Setagree_core.Fingerprint.install ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match args with
    | [] -> registry
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt (String.lowercase_ascii name) registry with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" name
                  (String.concat " " (List.map fst registry));
                exit 2)
          names
  in
  print_endline "setagree benchmark harness — reproduction of Mostéfaoui et al.,";
  print_endline "\"Irreducibility and Additivity of Set Agreement-oriented Failure";
  print_endline "Detector Classes\" (PODC'06 / IRISA PI-1758).";
  Printf.printf "(campaign engine: %d domain(s); override with BENCH_JOBS)\n"
    (Setagree_runner.Runner.default_jobs ());
  let raised = ref [] in
  let t_all = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      (try f ()
       with e ->
         raised := name :: !raised;
         Printf.printf "\n!! %s raised: %s\n" name (Printexc.to_string e));
      Printf.printf "[%s: %.2fs]\n" name (Unix.gettimeofday () -. t0))
    to_run;
  Printf.printf "\ntotal: %.2fs across %d experiment(s)\n"
    (Unix.gettimeofday () -. t_all)
    (List.length to_run);
  let failing = Setagree_runner.Runner.flush_failures () in
  if failing > 0 then
    Printf.printf "%d failing job(s) — triage records in _results/failures.json\n" failing;
  (match List.rev !raised with
  | [] -> ()
  | l -> Printf.printf "experiments raised: %s\n" (String.concat " " l));
  if !raised <> [] || failing > 0 then exit 1
