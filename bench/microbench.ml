(* Bechamel micro-benchmarks of the computational kernels (B1-B6 in
   DESIGN.md §4): ring arithmetic, subset unranking, event-queue churn,
   pidset algebra, one reliable broadcast, and one full consensus instance
   on the simulator. *)

open Bechamel
open Toolkit
open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core

let b_ring_next =
  let ring = Ring.Lower.create ~n:10 ~x:4 in
  Test.make ~name:"ring.lower next+decode"
    (Staged.stage (fun () ->
         let p = ref (Ring.Lower.start ring) in
         for _ = 1 to 100 do
           p := Ring.Lower.next ring !p;
           ignore (Ring.Lower.decode ring !p)
         done))

let b_combi_unrank =
  Test.make ~name:"combi.unrank C(20,10)"
    (Staged.stage (fun () ->
         for r = 0 to 99 do
           ignore (Combi.unrank ~n:20 ~size:10 (r * 1847))
         done))

let b_pqueue =
  Test.make ~name:"pqueue push/pop x100"
    (Staged.stage (fun () ->
         let q = Pqueue.create ~cmp:Int.compare in
         for i = 0 to 99 do
           Pqueue.push q ((i * 7919) mod 100)
         done;
         while not (Pqueue.is_empty q) do
           ignore (Pqueue.pop q)
         done))

let b_earena =
  Test.make ~name:"earena add/pop x100 (steady state)"
    (Staged.stage
       (let a = Earena.create ~initial:128 () in
        fun () ->
          for i = 0 to 99 do
            ignore (Earena.add a ~time:(float_of_int ((i * 7919) mod 100)) ~kind:0 ~arg:i)
          done;
          while not (Earena.is_empty a) do
            ignore (Earena.pop a)
          done))

let b_pidset =
  Test.make ~name:"pidset algebra x100"
    (Staged.stage (fun () ->
         let a = Pidset.of_list [ 0; 2; 4; 6; 8 ] in
         let b = Pidset.of_list [ 1; 2; 3; 4 ] in
         for _ = 1 to 100 do
           ignore (Pidset.cardinal (Pidset.diff (Pidset.union a b) (Pidset.inter a b)))
         done))

let b_rbcast =
  Test.make ~name:"rbcast broadcast (n=8, full run)"
    (Staged.stage (fun () ->
         let sim = Sim.create ~n:8 ~t:3 ~seed:1 () in
         let rb : int Rbcast.t = Rbcast.create sim () in
         Rbcast.broadcast rb ~src:0 42;
         ignore (Sim.run sim)))

let b_consensus =
  Test.make ~name:"consensus instance (n=8, perfect oracle)"
    (Staged.stage (fun () ->
         let sim = Sim.create ~horizon:100.0 ~n:8 ~t:3 ~seed:1 () in
         let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:Behavior.perfect () in
         let proposals = Array.init 8 (fun i -> i) in
         let h = Kset.install sim ~omega ~proposals () in
         ignore (Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim)))

let tests =
  Test.make_grouped ~name:"micro"
    [ b_ring_next; b_combi_unrank; b_pqueue; b_earena; b_pidset; b_rbcast; b_consensus ]

let run () =
  print_newline ();
  print_endline "Microbenchmarks (Bechamel, monotonic clock)";
  print_endline "===========================================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  Hashtbl.iter
    (fun measure tbl ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-45s %12.1f %s/run\n" name est measure
          | _ -> Printf.printf "%-45s %12s\n" name "n/a")
        rows)
    results
