(* fdkit: command-line driver for the setagree library.

   Every experiment of the bench harness, runnable one at a time with
   custom parameters:

     fdkit kset        -n 9 -t 4 -z 2 -k 2 --crashes 3 --seed 7
     fdkit wheels      -x 2 -y 1 --crashes 2
     fdkit psi         -y 2 --crashes 3
     fdkit strengthen  -x 2 -y 2 --substrate mp
     fdkit violation   -z 2 -k 1 --tries 25
     fdkit irreducibility

   plus the multicore campaign engine: a seed sweep of any of the
   kset / wheels / psi families, sharded across domains, with JSON
   artifacts and failing-seed triage:

     fdkit campaign --exp kset --jobs 4 --seeds 64 --out _results
*)

open Cmdliner
open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core
open Setagree_runner

(* ---- shared options ---- *)

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")
let t_arg = Arg.(value & opt int 3 & info [ "t" ] ~docv:"T" ~doc:"Max crashes (resilience).")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.")

let crashes_arg =
  Arg.(value & opt int 2 & info [ "crashes" ] ~docv:"C" ~doc:"Number of crashes to inject.")

let gst_arg =
  Arg.(
    value & opt float 40.0
    & info [ "gst" ] ~docv:"TIME" ~doc:"Oracle stabilization time (0 = perfect).")

let horizon_arg =
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"TIME" ~doc:"Virtual-time budget.")

let behavior_of ~gst =
  if gst <= 0.0 then Behavior.perfect else Behavior.stormy ~gst

let legacy_poll_arg =
  Arg.(
    value & flag
    & info [ "legacy-poll" ]
        ~doc:
          "Use the legacy scheduler that re-evaluates every blocked predicate after \
           every event (differential baseline; same executions, more work).")

let setup ?(legacy_poll = false) ~n ~t ~seed ~crashes ~horizon () =
  let sim = Sim.create ~horizon ~legacy_poll ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate
       (Crash.Exactly { crashes = min crashes t; window = (0.0, 20.0) })
       ~n ~t rng);
  sim

(* ---- kset ---- *)

let kset_cmd =
  let run n t seed crashes gst z k legacy_poll =
    let sim = setup ~legacy_poll ~n ~t ~seed ~crashes ~horizon:5000.0 () in
    let omega, _ = Oracle.omega_z sim ~z ~behavior:(behavior_of ~gst) () in
    let proposals = Array.init n (fun i -> 100 + i) in
    let h = Kset.install sim ~omega ~proposals () in
    let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
    List.iter
      (fun (pid, v, r, tm) ->
        Printf.printf "%s decided %d (round %d, t=%.1f)\n" (Pid.to_string pid) v r tm)
      (Kset.decisions h);
    let v = Check.k_set_agreement sim ~k ~proposals ~decisions:(Kset.decisions h) in
    Printf.printf "k-set(%d) check: %s\nrounds=%d msgs=%d latency=%.1f\n" k
      (Format.asprintf "%a" Check.pp_verdict v)
      (Kset.max_round h) (Kset.messages_sent h) o.end_time;
    Printf.printf "sched: events=%d pred_evals=%d signals=%d wakeups=%d%s\n" o.events
      (Sim.pred_evals sim) (Sim.cond_signals sim) (Sim.wakeups sim)
      (if legacy_poll then " (legacy poll)" else "");
    if Check.verdict_ok v then 0 else 1
  in
  let z_arg = Arg.(value & opt int 2 & info [ "z" ] ~doc:"Oracle class Omega_z.") in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement degree checked.") in
  Cmd.v
    (Cmd.info "kset" ~doc:"Run the Omega_k-based k-set agreement algorithm (Figure 3).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg $ gst_arg $ z_arg $ k_arg
      $ legacy_poll_arg)

(* ---- wheels ---- *)

let wheels_cmd =
  let run n t seed crashes gst horizon x y =
    let sim = setup ~n ~t ~seed ~crashes ~horizon () in
    let behavior = behavior_of ~gst in
    let suspector, info = Oracle.es_x sim ~x ~behavior () in
    let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
    let w = Wheels.install sim ~suspector ~querier ~x ~y () in
    let omega = Wheels.omega w in
    let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
    let _ = Sim.run sim in
    let v = Check.omega_z sim ~z:(Wheels.z w) ~deadline:(horizon -. 80.0) mon in
    Printf.printf
      "◇S_%d + ◇φ_%d -> Omega_%d: %s\nscope=%s protected=%s\nstab@%.1f x_moves=%d \
       l_moves=%d msgs=%d\n\ntrusted-set timeline:\n%s"
      x y (Wheels.z w)
      (Format.asprintf "%a" Check.pp_verdict v)
      (Pidset.to_string info.Oracle.scope)
      (Pid.to_string info.Oracle.protected)
      (Wheels.stabilized_since w)
      (Wheels_lower.moves_broadcast (Wheels.lower w))
      (Wheels_upper.moves_broadcast (Wheels.upper w))
      (Wheels.total_messages w)
      (Viz.timeline sim mon ());
    if Check.verdict_ok v then 0 else 1
  in
  let x_arg = Arg.(value & opt int 2 & info [ "x" ] ~doc:"◇S_x scope.") in
  let y_arg = Arg.(value & opt int 1 & info [ "y" ] ~doc:"◇φ_y strength.") in
  Cmd.v
    (Cmd.info "wheels"
       ~doc:"Run the two-wheels transformation ◇S_x + ◇φ_y -> Omega_z (Figures 5-6).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg $ gst_arg $ horizon_arg $ x_arg
      $ y_arg)

(* ---- psi ---- *)

let psi_cmd =
  let run n t seed crashes gst horizon y =
    let sim = setup ~n ~t ~seed ~crashes ~horizon () in
    let querier, _ = Oracle.psi_y sim ~y ~behavior:(behavior_of ~gst) () in
    let p = Psi_to_omega.create sim ~querier ~y in
    let omega = Psi_to_omega.omega p in
    let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
    Sim.ticker sim ~every:1.0;
    let _ = Sim.run sim in
    let v = Check.omega_z sim ~z:(Psi_to_omega.z p) ~deadline:(horizon -. 80.0) mon in
    Printf.printf "Ψ_%d -> Omega_%d (Fig 8): %s\nchain length %d, zero messages\n" y
      (Psi_to_omega.z p)
      (Format.asprintf "%a" Check.pp_verdict v)
      (Psi_to_omega.queries_per_read p);
    if Check.verdict_ok v then 0 else 1
  in
  let y_arg = Arg.(value & opt int 2 & info [ "y" ] ~doc:"Ψ_y strength.") in
  Cmd.v
    (Cmd.info "psi" ~doc:"Run the Ψ_y -> Omega_{t+1-y} chain transformation (Figure 8).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg $ gst_arg $ horizon_arg $ y_arg)

(* ---- strengthen ---- *)

let strengthen_cmd =
  let run n t seed crashes gst horizon x y substrate =
    let sim = setup ~n ~t ~seed ~crashes ~horizon () in
    let behavior = behavior_of ~gst in
    let suspector, _ = Oracle.es_x sim ~x ~behavior () in
    let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
    let st =
      match substrate with
      | `Shm -> Strengthen.install_shm sim ~suspector ~querier ()
      | `Mp -> Strengthen.install_mp sim ~suspector ~querier ()
    in
    let out = Strengthen.output st in
    let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> out.Iface.suspected i) () in
    let _ = Sim.run sim in
    let v = Check.es_x sim ~x:n ~deadline:(horizon -. 80.0) mon in
    Printf.printf "◇S_%d + ◇φ_%d -> ◇S (Fig 9, %s): %s\n" x y
      (match substrate with `Shm -> "shared memory" | `Mp -> "message passing")
      (Format.asprintf "%a" Check.pp_verdict v);
    if Check.verdict_ok v then 0 else 1
  in
  let x_arg = Arg.(value & opt int 2 & info [ "x" ] ~doc:"◇S_x scope.") in
  let y_arg = Arg.(value & opt int 2 & info [ "y" ] ~doc:"◇φ_y strength.") in
  let substrate_arg =
    Arg.(
      value
      & opt (enum [ ("shm", `Shm); ("mp", `Mp) ]) `Shm
      & info [ "substrate" ] ~docv:"shm|mp" ~doc:"Shared memory or message passing.")
  in
  Cmd.v
    (Cmd.info "strengthen"
       ~doc:"Run the Appendix-B strengthening S_x + φ_y -> S (Figure 9).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg $ gst_arg $ horizon_arg $ x_arg
      $ y_arg $ substrate_arg)

(* ---- implemented detectors ---- *)

let impl_cmd =
  let run n t seed crashes gst horizon z =
    let sim = setup ~n ~t ~seed ~crashes ~horizon () in
    let delay = Delay.Psync { gst; bound = 2.0; pre_spread = gst -. 5.0 } in
    let hb = Impl.install sim ~delay () in
    let susp = Impl.suspector hb in
    let om = Impl.omega hb ~z in
    let mon_s = Monitor.watch sim ~every:0.5 ~read:(fun i -> susp.Iface.suspected i) () in
    let mon_o = Monitor.watch sim ~every:0.5 ~read:(fun i -> om.Iface.trusted i) () in
    let proposals = Array.init n (fun i -> 100 + i) in
    let h = Kset.install sim ~omega:om ~proposals () in
    let _ = Sim.run sim in
    let deadline = horizon -. 80.0 in
    let v_s = Check.es_x sim ~x:n ~deadline mon_s in
    let v_o = Check.omega_z sim ~z ~deadline mon_o in
    let v_k = Check.k_set_agreement sim ~k:z ~proposals ~decisions:(Kset.decisions h) in
    Printf.printf
      "heartbeat detectors under partial synchrony (network gst=%.0f)\n\
       suspector as ◇P: %s\nleader as Omega_%d: %s\n%d-set agreement on top: %s\n\
       heartbeats=%d\n"
      gst
      (Format.asprintf "%a" Check.pp_verdict v_s)
      z
      (Format.asprintf "%a" Check.pp_verdict v_o)
      z
      (Format.asprintf "%a" Check.pp_verdict v_k)
      (Impl.heartbeats_sent hb);
    if Check.verdict_ok v_s && Check.verdict_ok v_o && Check.verdict_ok v_k then 0 else 1
  in
  let z_arg = Arg.(value & opt int 1 & info [ "z" ] ~doc:"Leader width.") in
  Cmd.v
    (Cmd.info "impl"
       ~doc:
         "Run the fully implemented stack: heartbeats + adaptive timeouts -> ◇P / \
          Omega_z -> set agreement; no oracle reads ground truth.")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg
      $ Arg.(value & opt float 30.0 & info [ "gst" ] ~doc:"Network stabilization time.")
      $ horizon_arg $ z_arg)

(* ---- violation search ---- *)

let violation_cmd =
  let run n t z k tries =
    let r = Indist.kset_violation_search ~n ~t ~z ~k ~seeds:(List.init tries (fun i -> i + 1)) in
    Format.printf "%a@." Indist.pp_report r;
    if r.ok then 0 else 1
  in
  let z_arg = Arg.(value & opt int 2 & info [ "z" ] ~doc:"Omega_z oracle.") in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Agreement degree demanded.") in
  let tries_arg = Arg.(value & opt int 25 & info [ "tries" ] ~doc:"Seeds to try.") in
  Cmd.v
    (Cmd.info "violation"
       ~doc:
         "Search for agreement violations when running k-set agreement with an Omega_z \
          oracle (Theorem 5 tightness).")
    Term.(const run $ Arg.(value & opt int 7 & info [ "n" ] ~doc:"Processes.") $ Arg.(value & opt int 2 & info [ "t" ] ~doc:"Resilience.") $ z_arg $ k_arg $ tries_arg)

(* ---- irreducibility ---- *)

let irreducibility_cmd =
  let run n t seed =
    let show r = Format.printf "%a@.@." Indist.pp_report r in
    show (Indist.phi_blind_to_victims ~n ~t ~y:1 ~crashes:(min 2 (t - 1)) ~seed);
    show (Indist.omega_blind_to_crashes ~n ~t ~z:1 ~seed);
    show (Indist.thm10_pair ~n ~t ~x:(n / 2) ~y:1 ~seed ());
    0
  in
  Cmd.v
    (Cmd.info "irreducibility"
       ~doc:"Run the executable impossibility scenarios (Theorems 10-12, O1).")
    Term.(const run $ n_arg $ t_arg $ seed_arg)

(* ---- campaign ---- *)

let campaign_cmd =
  let run n t crashes gst horizon exp jobs seeds out compare x y z k legacy_poll =
    let crashes = min crashes t in
    (* One job per seed; each builds its own Sim from the seed, so jobs
       are safe to run on any domain in any order. *)
    let mk_kset seed =
      Runner.job ~exp:"kset" ~seed
        ~params:
          [
            ("n", Json.Int n);
            ("t", Json.Int t);
            ("z", Json.Int z);
            ("k", Json.Int k);
            ("crashes", Json.Int crashes);
            ("gst", Json.Float gst);
            ("legacy_poll", Json.Bool legacy_poll);
          ]
        ~replay:
          (Printf.sprintf
             "dune exec bin/fdkit.exe -- kset -n %d -t %d -z %d -k %d --crashes %d \
              --gst %g --seed %d%s"
             n t z k crashes gst seed
             (if legacy_poll then " --legacy-poll" else ""))
        (fun () ->
          let sim = setup ~legacy_poll ~n ~t ~seed ~crashes ~horizon:5000.0 () in
          let omega, _ = Oracle.omega_z sim ~z ~behavior:(behavior_of ~gst) () in
          let proposals = Array.init n (fun i -> 100 + i) in
          let h = Kset.install sim ~omega ~proposals () in
          let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
          let v = Check.k_set_agreement sim ~k ~proposals ~decisions:(Kset.decisions h) in
          Runner.body
            ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
            ~metrics:
              [
                ("rounds", float_of_int (Kset.max_round h));
                ("msgs", float_of_int (Kset.messages_sent h));
                ("latency", o.end_time);
                ("sched.events", float_of_int o.events);
                ("sched.pred_evals", float_of_int (Sim.pred_evals sim));
                ("sched.signals", float_of_int (Sim.cond_signals sim));
                ("sched.wakeups", float_of_int (Sim.wakeups sim));
              ]
            (Check.verdict_ok v))
    in
    let mk_wheels seed =
      Runner.job ~exp:"wheels" ~seed
        ~params:
          [
            ("n", Json.Int n);
            ("t", Json.Int t);
            ("x", Json.Int x);
            ("y", Json.Int y);
            ("crashes", Json.Int crashes);
            ("gst", Json.Float gst);
            ("horizon", Json.Float horizon);
          ]
        ~replay:
          (Printf.sprintf
             "dune exec bin/fdkit.exe -- wheels -n %d -t %d -x %d -y %d --crashes %d \
              --gst %g --horizon %g --seed %d"
             n t x y crashes gst horizon seed)
        (fun () ->
          let sim = setup ~n ~t ~seed ~crashes ~horizon () in
          let behavior = behavior_of ~gst in
          let suspector, _ = Oracle.es_x sim ~x ~behavior () in
          let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
          let w = Wheels.install sim ~suspector ~querier ~x ~y () in
          let omega = Wheels.omega w in
          let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
          let _ = Sim.run sim in
          let v = Check.omega_z sim ~z:(Wheels.z w) ~deadline:(horizon -. 80.0) mon in
          Runner.body
            ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
            ~metrics:
              [
                ("stab", Wheels.stabilized_since w);
                ("msgs", float_of_int (Wheels.total_messages w));
              ]
            (Check.verdict_ok v))
    in
    let mk_psi seed =
      Runner.job ~exp:"psi" ~seed
        ~params:
          [
            ("n", Json.Int n);
            ("t", Json.Int t);
            ("y", Json.Int y);
            ("crashes", Json.Int crashes);
            ("gst", Json.Float gst);
            ("horizon", Json.Float horizon);
          ]
        ~replay:
          (Printf.sprintf
             "dune exec bin/fdkit.exe -- psi -n %d -t %d -y %d --crashes %d --gst %g \
              --horizon %g --seed %d"
             n t y crashes gst horizon seed)
        (fun () ->
          let sim = setup ~n ~t ~seed ~crashes ~horizon () in
          let querier, _ = Oracle.psi_y sim ~y ~behavior:(behavior_of ~gst) () in
          let p = Psi_to_omega.create sim ~querier ~y in
          let omega = Psi_to_omega.omega p in
          let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
          Sim.ticker sim ~every:1.0;
          let _ = Sim.run sim in
          let v = Check.omega_z sim ~z:(Psi_to_omega.z p) ~deadline:(horizon -. 80.0) mon in
          Runner.body
            ~notes:(if Check.verdict_ok v then [] else v.Check.notes)
            ~metrics:[ ("queries_per_read", float_of_int (Psi_to_omega.queries_per_read p)) ]
            (Check.verdict_ok v))
    in
    let mk = match exp with `Kset -> mk_kset | `Wheels -> mk_wheels | `Psi -> mk_psi in
    let family = match exp with `Kset -> "kset" | `Wheels -> "wheels" | `Psi -> "psi" in
    let joblist = List.init seeds (fun i -> mk (i + 1)) in
    let describe tag c =
      Printf.printf "%s: %d jobs on %d domain(s), %d failed, %.2fs wall, %.1f jobs/s\n" tag
        (Array.length c.Runner.c_results)
        c.Runner.c_workers
        (List.length (Runner.failures c))
        c.Runner.c_wall_s c.Runner.c_throughput
    in
    let c = Runner.run ~jobs ~exp:family joblist in
    describe (Printf.sprintf "campaign %s -j %d" family jobs) c;
    let path = Runner.write_artifact ~dir:out c in
    Printf.printf "artifact: %s\n" path;
    List.iter
      (fun (name, s) ->
        Printf.printf "  %-18s %s\n" name (Format.asprintf "%a" Stats.pp_summary s))
      (Runner.metric_summaries c);
    let seq =
      if not compare then None
      else begin
        let c1 = Runner.run ~jobs:1 ~exp:family joblist in
        describe (Printf.sprintf "baseline %s -j 1" family) c1;
        Printf.printf "speedup: %.2fx; deterministic merge: %s\n"
          (c.Runner.c_throughput /. Float.max c1.Runner.c_throughput 1e-9)
          (if Runner.signature c = Runner.signature c1 then "yes" else "NO — BUG");
        Some c1
      end
    in
    let side tag c =
      ( tag,
        Json.Obj
          [
            ("workers", Json.Int c.Runner.c_workers);
            ("wall_s", Json.Float c.Runner.c_wall_s);
            ("throughput_jobs_per_s", Json.Float c.Runner.c_throughput);
          ] )
    in
    Json.write_file
      (Filename.concat out "campaign_summary.json")
      (Json.Obj
         ([
            ("experiment", Json.String family);
            ("seeds", Json.Int seeds);
            ("failed", Json.Int (List.length (Runner.failures c)));
            side "parallel" c;
          ]
         @ (match seq with
           | None -> []
           | Some c1 ->
               [
                 side "sequential" c1;
                 ( "speedup",
                   Json.Float (c.Runner.c_throughput /. Float.max c1.Runner.c_throughput 1e-9)
                 );
                 ("deterministic", Json.Bool (Runner.signature c = Runner.signature c1));
               ])));
    let nfail = Runner.flush_failures ~dir:out () in
    (match seq with
    | Some c1 when Runner.signature c <> Runner.signature c1 ->
        prerr_endline "determinism violation: -j 1 and -j N merged outputs differ"
    | _ -> ());
    if nfail > 0 then begin
      Printf.printf "%d failing seed(s) — triage records (with replay commands) in %s\n" nfail
        (Filename.concat out "failures.json");
      List.iter
        (fun r ->
          Printf.printf "  seed %d: %s\n    replay: %s\n" r.Runner.r_seed
            (String.concat "; " r.Runner.r_notes)
            (Option.value ~default:"-" r.Runner.r_replay))
        (Runner.failures c)
    end;
    match seq with
    | Some c1 when Runner.signature c <> Runner.signature c1 -> 2
    | _ -> if nfail > 0 then 1 else 0
  in
  let exp_arg =
    Arg.(
      value
      & opt (enum [ ("kset", `Kset); ("wheels", `Wheels); ("psi", `Psi) ]) `Kset
      & info [ "exp" ] ~docv:"kset|wheels|psi" ~doc:"Experiment family to sweep.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Runner.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (default: BENCH_JOBS or cores).")
  in
  let seeds_arg =
    Arg.(value & opt int 32 & info [ "seeds" ] ~docv:"S" ~doc:"Run seeds 1..S.")
  in
  let out_arg =
    Arg.(
      value & opt string "_results"
      & info [ "out" ] ~docv:"DIR" ~doc:"Artifact directory (created if missing).")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Also run the sweep on 1 domain: report speedup and verify the merged outputs \
             are identical (exit 2 if not).")
  in
  let x_arg = Arg.(value & opt int 2 & info [ "x" ] ~doc:"◇S_x scope (wheels family).") in
  let y_arg =
    Arg.(value & opt int 1 & info [ "y" ] ~doc:"◇φ_y / Ψ_y strength (wheels, psi).")
  in
  let z_arg = Arg.(value & opt int 1 & info [ "z" ] ~doc:"Oracle class Ω_z (kset family).") in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Agreement degree (kset family).") in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Shard a seed sweep of an experiment family across domains; write \
          BENCH_<family>.json, campaign_summary.json and failures.json (with replay \
          commands for every failing seed); exit nonzero if any seed fails.")
    Term.(
      const run $ n_arg $ t_arg $ crashes_arg $ gst_arg $ horizon_arg $ exp_arg $ jobs_arg
      $ seeds_arg $ out_arg $ compare_arg $ x_arg $ y_arg $ z_arg $ k_arg
      $ legacy_poll_arg)

(* ---- grid ---- *)

let grid_cmd =
  let run n t matrix =
    Printf.printf "Figure 1 grid for t = %d (row z: classes solving z-set agreement)\n\n" t;
    Printf.printf "%-4s %-8s %-8s %-8s %-8s %-8s\n" "z" "S_x" "◇S_x" "Ω_z" "φ_y" "◇φ_y";
    List.iter
      (fun (row : Bounds.row) ->
        Printf.printf "%-4d %-8s %-8s %-8s %-8s %-8s\n" row.z
          (Printf.sprintf "S_%d" row.sx)
          (Printf.sprintf "◇S_%d" row.sx)
          (Printf.sprintf "Ω_%d" row.z)
          (Printf.sprintf "φ_%d" row.phiy)
          (Printf.sprintf "◇φ_%d" row.phiy))
      (Bounds.grid ~t);
    if matrix then begin
      Printf.printf
        "\nfull reducibility matrix (Y = yes, n = impossible, ? = open):\n\n";
      Format.printf "%a@." (Grid.pp_matrix ~n ~t) (Grid.row_representatives ~n ~t)
    end;
    0
  in
  let matrix_arg =
    Arg.(value & flag & info [ "matrix" ] ~doc:"Also print the pairwise reducibility matrix.")
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Print the class grid of Figure 1 for a given t.")
    Term.(const run $ n_arg $ t_arg $ matrix_arg)

(* ---- reducibility queries ---- *)

let reducible_cmd =
  let run n t from_s into_s =
    match (Grid.parse_cls from_s, Grid.parse_cls into_s) with
    | Some from, Some into ->
        let v = Grid.reducible ~n ~t ~from ~into in
        let verdict, why, code =
          match v with
          | Grid.Yes why -> ("YES", why, 0)
          | Grid.No why -> ("NO", why, 1)
          | Grid.Unknown why -> ("UNKNOWN", why, 2)
        in
        Format.printf "%a -> %a in AS(n=%d, t=%d): %s@.  %s@." Grid.pp_cls from
          Grid.pp_cls into n t verdict why;
        (match (Grid.kset_power ~n ~t from, Grid.kset_power ~n ~t into) with
        | Some ka, Some kb ->
            Format.printf "  k-set power: %a solves %d-set, %a solves %d-set@."
              Grid.pp_cls from ka Grid.pp_cls into kb
        | _ -> ());
        code
    | _ ->
        prerr_endline
          "cannot parse class; use S3, ES2, Omega1, Phi2, EPhi0, Psi1, P, EP";
        3
  in
  let from_arg =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"CLS" ~doc:"Source class.")
  in
  let into_arg =
    Arg.(required & opt (some string) None & info [ "to" ] ~docv:"CLS" ~doc:"Target class.")
  in
  Cmd.v
    (Cmd.info "reducible"
       ~doc:
         "Query the paper's reducibility lattice: can the target class be built from \
          the source class in AS(n,t)?")
    Term.(const run $ n_arg $ t_arg $ from_arg $ into_arg)

let () =
  let doc = "Set-agreement-oriented failure detector classes: simulation toolkit." in
  let info = Cmd.info "fdkit" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            kset_cmd;
            wheels_cmd;
            psi_cmd;
            strengthen_cmd;
            impl_cmd;
            campaign_cmd;
            violation_cmd;
            irreducibility_cmd;
            grid_cmd;
            reducible_cmd;
          ]))
