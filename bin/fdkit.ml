(* fdkit: command-line driver for the setagree library.

   Every experiment of the bench harness, runnable one at a time with
   custom parameters:

     fdkit kset        -n 9 -t 4 -z 2 -k 2 --crashes 3 --seed 7
     fdkit wheels      -x 2 -y 1 --crashes 2
     fdkit psi         -y 2 --crashes 3
     fdkit strengthen  -x 2 -y 2 --substrate mp
     fdkit violation   -z 2 -k 1 --tries 25
     fdkit irreducibility

   plus the multicore campaign engine: a seed sweep of any of the
   kset / wheels / psi families, sharded across domains, with JSON
   artifacts and failing-seed triage:

     fdkit campaign --exp kset --jobs 4 --seeds 64 --out _results
*)

open Cmdliner
open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core
open Setagree_runner
module Rt_run = Setagree_rt.Run

(* ---- shared options ---- *)

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")
let t_arg = Arg.(value & opt int 3 & info [ "t" ] ~docv:"T" ~doc:"Max crashes (resilience).")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.")

let crashes_arg =
  Arg.(value & opt int 2 & info [ "crashes" ] ~docv:"C" ~doc:"Number of crashes to inject.")

let gst_arg =
  Arg.(
    value & opt float 40.0
    & info [ "gst" ] ~docv:"TIME" ~doc:"Oracle stabilization time (0 = perfect).")

let horizon_arg =
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"TIME" ~doc:"Virtual-time budget.")

let behavior_of ~gst =
  if gst <= 0.0 then Behavior.perfect else Behavior.stormy ~gst

let legacy_poll_arg =
  Arg.(
    value & flag
    & info [ "legacy-poll" ]
        ~doc:
          "Use the legacy scheduler that re-evaluates every blocked predicate after \
           every event (differential baseline; same executions, more work).")

let legacy_queue_arg =
  Arg.(
    value & flag
    & info [ "legacy-queue" ]
        ~doc:
          "Use the legacy closure-per-event queue instead of the flat event arena \
           (differential baseline; same executions, more allocation).")

let setup ?(legacy_poll = false) ~n ~t ~seed ~crashes ~horizon () =
  let sim = Sim.create ~horizon ~legacy_poll ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate
       (Crash.Exactly { crashes = min crashes t; window = (0.0, 20.0) })
       ~n ~t rng);
  sim

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ---- shared Protocol.params term ---- *)

let faults_arg =
  let parse path =
    try
      match Json.of_string (read_file path) with
      | Error e -> Error (`Msg (Printf.sprintf "%s: not JSON: %s" path e))
      | Ok j -> (
          match Faults.of_json j with
          | Ok f -> Ok f
          | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e)))
    with Sys_error e -> Error (`Msg e)
  in
  let print ppf f = Format.fprintf ppf "%s" (Faults.summary f) in
  Arg.(
    value
    & opt (conv (parse, print)) Faults.none
    & info [ "faults" ] ~docv:"FILE"
        ~doc:
          "JSON fault specification: link drop/duplicate/reorder/inflation \
           windows, partitions with heal times, process stalls, extra crashes \
           and an oracle adversary strategy (see Dsys.Faults).")

let adversarial_arg =
  Arg.(
    value & flag
    & info [ "adversarial" ]
        ~doc:
          "kset mis-use configuration (Theorem 5 tightness): constant Omega_z trusted \
           set and the By_pid tie-break.  With z > k the explorer finds agreement \
           violations.")

let variant_arg =
  Arg.(
    value & opt string "es"
    & info [ "variant" ] ~docv:"es|phi|psi" ~doc:"Source class of the reduce protocol.")

let trace_arg =
  Arg.(
    value
    & opt (enum [ ("off", "off"); ("default", "default"); ("full", "full") ]) "default"
    & info [ "trace" ] ~docv:"off|default|full"
        ~doc:
          "Trace level: $(b,off) records nothing, $(b,default) protocol-level \
           spans and events, $(b,full) adds per-message and scheduler-wakeup \
           records.  Pure observability — never changes the execution.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("sim", "sim"); ("rt", "rt"); ("rt-chan", "rt-chan") ]) "sim"
    & info [ "backend" ] ~docv:"sim|rt|rt-chan"
        ~doc:
          "Execution substrate: $(b,sim) runs the deterministic simulator; \
           $(b,rt) runs one OCaml domain per process over real UDP loopback \
           datagrams with timeout-extracted (accrual) failure detectors; \
           $(b,rt-chan) is the same runtime over loss-free in-process \
           channels (CI fallback, no sockets).")

let is_rt backend = String.length backend >= 2 && String.sub backend 0 2 = "rt"

(* All artifacts are stamped with the code fingerprint, and cache keys
   embed the per-protocol one. *)
let () = Fingerprint.install ()

(* Runtime tuning: params.horizon is a virtual-time budget, so the rt
   backend keeps its own wall-clock knobs (env-overridable for CI). *)
let rt_cfg_of (p : Protocol.params) =
  let fenv name dflt =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v when v > 0.0 -> v
    | _ -> dflt
  in
  let base = Rt_run.default_cfg in
  {
    base with
    Rt_run.transport = (if p.Protocol.backend = "rt-chan" then `Chan else `Udp);
    hb_period_s = fenv "FDKIT_RT_HB" base.Rt_run.hb_period_s;
    horizon_s = fenv "FDKIT_RT_HORIZON" base.Rt_run.horizon_s;
    timescale = fenv "FDKIT_RT_TIMESCALE" base.Rt_run.timescale;
  }

(* Core's Job module executes rt-backend jobs through this hook
   (Setagree_rt sits above core, so core can't call it directly). *)
let () =
  Job.rt_runner :=
    Some
      (fun pk (p : Protocol.params) ->
        let r = Rt_run.run_protocol pk p ~cfg:(rt_cfg_of p) () in
        Runner.body
          ~notes:
            (if Rt_run.ok r then []
             else r.Rt_run.o_safety.Check.notes @ r.Rt_run.o_fd.Check.notes)
          ~metrics:r.Rt_run.o_metrics (Rt_run.ok r))

let mk_params n t seed crashes gst horizon z k x y legacy_poll legacy_queue
    adversarial variant trace faults backend =
  {
    Protocol.n;
    t;
    seed;
    z;
    k;
    x;
    y;
    gst;
    horizon;
    crashes =
      (if crashes <= 0 then Crash.No_crashes
       else Crash.Exactly { crashes = min crashes t; window = (0.0, 20.0) });
    faults;
    legacy_poll;
    legacy_queue;
    adversarial;
    variant;
    trace;
    backend;
  }

let params_term ?(default_z = 1) ?(default_k = 1) ?(default_x = 2) ?(default_y = 1)
    ?(default_crashes = 2) () =
  let z_arg =
    Arg.(value & opt int default_z & info [ "z" ] ~doc:"Oracle class Omega_z (kset).")
  in
  let k_arg =
    Arg.(value & opt int default_k & info [ "k" ] ~doc:"Agreement degree checked (kset).")
  in
  let x_arg =
    Arg.(value & opt int default_x & info [ "x" ] ~doc:"◇S_x scope (wheels, reduce).")
  in
  let y_arg =
    Arg.(
      value & opt int default_y
      & info [ "y" ] ~doc:"◇φ_y / Ψ_y strength (wheels, psi, reduce).")
  in
  let crashes_arg =
    Arg.(
      value & opt int default_crashes
      & info [ "crashes" ] ~docv:"C" ~doc:"Number of crashes to inject (0 = none).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 0.0
      & info [ "horizon" ] ~docv:"TIME" ~doc:"Virtual-time budget (0 = protocol default).")
  in
  Term.(
    const mk_params $ n_arg $ t_arg $ seed_arg $ crashes_arg $ gst_arg $ horizon_arg
    $ z_arg $ k_arg $ x_arg $ y_arg $ legacy_poll_arg $ legacy_queue_arg
    $ adversarial_arg $ variant_arg
    $ trace_arg $ faults_arg $ backend_arg)

let registry_doc () =
  Printf.sprintf "Protocols: %s." (String.concat ", " (Protocol.names ()))

(* Flag elaboration and validation live in Job (the run subcommands are
   sugar over Job.of_flags); the single-run printing path stays direct
   so the CLI output is unchanged. *)
let exec_run protocol (p : Protocol.params) =
  let spec = Job.of_flags ~kind:`Run ~protocol p in
  match Job.validate spec with
  | Error errs ->
      (match Protocol.find protocol with
      | None -> Printf.eprintf "unknown protocol %S; %s\n" protocol (registry_doc ())
      | Some _ -> ());
      let fault_errs =
        List.filter (String.starts_with ~prefix:"illegal fault spec") errs
      in
      if fault_errs <> [] then begin
        Printf.eprintf "illegal fault spec (refusing to run):\n";
        List.iter
          (fun e -> Printf.eprintf "  - %s\n" e)
          (match Faults.legal ~n:p.Protocol.n ~t:p.Protocol.t p.Protocol.faults with
          | Error es -> es
          | Ok () -> []);
        match Chaos.minimize_illegal ~n:p.Protocol.n ~t:p.Protocol.t p.Protocol.faults with
        | Some s -> Printf.eprintf "minimized to: %s\n" (Faults.summary s)
        | None -> ()
      end;
      3
  | Ok () -> (
      match Protocol.find protocol with
      | None -> assert false (* validate checked the registry *)
      | Some pk when is_rt p.Protocol.backend ->
          let r = Rt_run.run_protocol pk p ~cfg:(rt_cfg_of p) () in
          Format.printf "%a@." Rt_run.pp_result r;
          List.iter (fun (key, v) -> Printf.printf "  %-22s %g\n" key v) r.Rt_run.o_metrics;
          if Rt_run.ok r then 0 else 1
      | Some pk ->
          let r = Protocol.run pk p in
          Printf.printf "%s seed=%d: %s\n" protocol p.Protocol.seed
            (Format.asprintf "%a" Check.pp_verdict r.Protocol.rp_verdict);
          List.iter
            (fun (key, v) -> Printf.printf "  %-18s %g\n" key v)
            r.Protocol.rp_metrics;
          if Check.verdict_ok r.Protocol.rp_verdict then 0 else 1)

let protocol_arg =
  Arg.(
    value & opt string "kset"
    & info [ "protocol"; "p" ] ~docv:"NAME" ~doc:"Protocol from the registry.")

(* ---- run (generic) + per-protocol aliases ---- *)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:("Run any registered protocol once. " ^ registry_doc ()))
    Term.(const exec_run $ protocol_arg $ params_term ())

let kset_cmd =
  Cmd.v
    (Cmd.info "kset" ~doc:"Run the Omega_k-based k-set agreement algorithm (Figure 3).")
    Term.(const (exec_run "kset") $ params_term ~default_z:2 ~default_k:2 ())

let wheels_cmd =
  Cmd.v
    (Cmd.info "wheels"
       ~doc:"Run the two-wheels transformation ◇S_x + ◇φ_y -> Omega_z (Figures 5-6).")
    Term.(const (exec_run "wheels") $ params_term ())

let psi_cmd =
  Cmd.v
    (Cmd.info "psi" ~doc:"Run the Ψ_y -> Omega_{t+1-y} chain transformation (Figure 8).")
    Term.(const (exec_run "psi") $ params_term ~default_y:2 ())

(* ---- strengthen ---- *)

let strengthen_cmd =
  let run n t seed crashes gst horizon x y substrate =
    let sim = setup ~n ~t ~seed ~crashes ~horizon () in
    let behavior = behavior_of ~gst in
    let suspector, _ = Oracle.es_x sim ~x ~behavior () in
    let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
    let st =
      match substrate with
      | `Shm -> Strengthen.install_shm sim ~suspector ~querier ()
      | `Mp -> Strengthen.install_mp sim ~suspector ~querier ()
    in
    let out = Strengthen.output st in
    let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> out.Iface.suspected i) () in
    let _ = Sim.run sim in
    let v = Check.es_x sim ~x:n ~deadline:(horizon -. 80.0) mon in
    Printf.printf "◇S_%d + ◇φ_%d -> ◇S (Fig 9, %s): %s\n" x y
      (match substrate with `Shm -> "shared memory" | `Mp -> "message passing")
      (Format.asprintf "%a" Check.pp_verdict v);
    if Check.verdict_ok v then 0 else 1
  in
  let x_arg = Arg.(value & opt int 2 & info [ "x" ] ~doc:"◇S_x scope.") in
  let y_arg = Arg.(value & opt int 2 & info [ "y" ] ~doc:"◇φ_y strength.") in
  let substrate_arg =
    Arg.(
      value
      & opt (enum [ ("shm", `Shm); ("mp", `Mp) ]) `Shm
      & info [ "substrate" ] ~docv:"shm|mp" ~doc:"Shared memory or message passing.")
  in
  Cmd.v
    (Cmd.info "strengthen"
       ~doc:"Run the Appendix-B strengthening S_x + φ_y -> S (Figure 9).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg $ gst_arg $ horizon_arg $ x_arg
      $ y_arg $ substrate_arg)

(* ---- implemented detectors ---- *)

let impl_cmd =
  let run n t seed crashes gst horizon z =
    let sim = setup ~n ~t ~seed ~crashes ~horizon () in
    let delay = Delay.Psync { gst; bound = 2.0; pre_spread = gst -. 5.0 } in
    let hb = Impl.install sim ~delay () in
    let susp = Impl.suspector hb in
    let om = Impl.omega hb ~z in
    let mon_s = Monitor.watch sim ~every:0.5 ~read:(fun i -> susp.Iface.suspected i) () in
    let mon_o = Monitor.watch sim ~every:0.5 ~read:(fun i -> om.Iface.trusted i) () in
    let proposals = Array.init n (fun i -> 100 + i) in
    let h = Kset.install sim ~omega:om ~proposals () in
    let _ = Sim.run sim in
    let deadline = horizon -. 80.0 in
    let v_s = Check.es_x sim ~x:n ~deadline mon_s in
    let v_o = Check.omega_z sim ~z ~deadline mon_o in
    let v_k = Check.k_set_agreement sim ~k:z ~proposals ~decisions:(Kset.decisions h) in
    Printf.printf
      "heartbeat detectors under partial synchrony (network gst=%.0f)\n\
       suspector as ◇P: %s\nleader as Omega_%d: %s\n%d-set agreement on top: %s\n\
       heartbeats=%d\n"
      gst
      (Format.asprintf "%a" Check.pp_verdict v_s)
      z
      (Format.asprintf "%a" Check.pp_verdict v_o)
      z
      (Format.asprintf "%a" Check.pp_verdict v_k)
      (Impl.heartbeats_sent hb);
    if Check.verdict_ok v_s && Check.verdict_ok v_o && Check.verdict_ok v_k then 0 else 1
  in
  let z_arg = Arg.(value & opt int 1 & info [ "z" ] ~doc:"Leader width.") in
  Cmd.v
    (Cmd.info "impl"
       ~doc:
         "Run the fully implemented stack: heartbeats + adaptive timeouts -> ◇P / \
          Omega_z -> set agreement; no oracle reads ground truth.")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ crashes_arg
      $ Arg.(value & opt float 30.0 & info [ "gst" ] ~doc:"Network stabilization time.")
      $ horizon_arg $ z_arg)

(* ---- violation search ---- *)

let violation_cmd =
  let run n t z k tries =
    let r = Indist.kset_violation_search ~n ~t ~z ~k ~seeds:(List.init tries (fun i -> i + 1)) in
    Format.printf "%a@." Indist.pp_report r;
    if r.ok then 0 else 1
  in
  let z_arg = Arg.(value & opt int 2 & info [ "z" ] ~doc:"Omega_z oracle.") in
  let k_arg = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Agreement degree demanded.") in
  let tries_arg = Arg.(value & opt int 25 & info [ "tries" ] ~doc:"Seeds to try.") in
  Cmd.v
    (Cmd.info "violation"
       ~doc:
         "Search for agreement violations when running k-set agreement with an Omega_z \
          oracle (Theorem 5 tightness).")
    Term.(const run $ Arg.(value & opt int 7 & info [ "n" ] ~doc:"Processes.") $ Arg.(value & opt int 2 & info [ "t" ] ~doc:"Resilience.") $ z_arg $ k_arg $ tries_arg)

(* ---- irreducibility ---- *)

let irreducibility_cmd =
  let run n t seed =
    let show r = Format.printf "%a@.@." Indist.pp_report r in
    show (Indist.phi_blind_to_victims ~n ~t ~y:1 ~crashes:(min 2 (t - 1)) ~seed);
    show (Indist.omega_blind_to_crashes ~n ~t ~z:1 ~seed);
    show (Indist.thm10_pair ~n ~t ~x:(n / 2) ~y:1 ~seed ());
    0
  in
  Cmd.v
    (Cmd.info "irreducibility"
       ~doc:"Run the executable impossibility scenarios (Theorems 10-12, O1).")
    Term.(const run $ n_arg $ t_arg $ seed_arg)

(* ---- campaign ---- *)

(* Fault/runtime counter totals for the summary tables.  [Protocol.run]
   omits zero-valued fault counters from job metrics and
   [Runner.metric_summaries] drops metrics nobody sampled, so a clean
   campaign printed no fault row at all — "zero retransmits" was
   indistinguishable from "retransmits not measured".  Sum the
   counter-like metrics ([fault.*], [net.*], [rt.*]) across all jobs and
   always print the headline ones, zeros included. *)
let counter_headline =
  [
    "fault.parked";
    "fault.dup";
    "fault.reorder";
    "fault.inflated";
    "fault.deferred";
    "fault.stalls";
    "net.retransmits";
    "net.backoff_resets";
  ]

let counter_totals (c : Runner.campaign) =
  let prefixes = [ "fault."; "net."; "rt." ] in
  let tbl = Hashtbl.create 16 in
  List.iter (fun key -> Hashtbl.replace tbl key 0.0) counter_headline;
  Array.iter
    (fun (r : Runner.result) ->
      List.iter
        (fun (key, v) ->
          if List.exists (fun prefix -> String.starts_with ~prefix key) prefixes then
            Hashtbl.replace tbl key
              (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key)))
        r.Runner.r_metrics)
    c.Runner.c_results;
  List.sort compare (Hashtbl.fold (fun key v acc -> (key, v) :: acc) tbl [])

let print_counter_totals c =
  print_endline "  counter totals (all jobs):";
  List.iter (fun (key, v) -> Printf.printf "    %-22s %g\n" key v) (counter_totals c);
  (* Not job metrics — campaign-level cache robustness counters (jobs
     that bypassed the cache, corrupt entries detected and healed,
     failed stores); always printed so "0" is distinguishable from "not
     measured". *)
  Printf.printf "    %-22s %d\n" "cache.skipped" c.Runner.c_cache_skipped;
  Printf.printf "    %-22s %d\n" "cache.corrupt" c.Runner.c_cache_corrupt;
  Printf.printf "    %-22s %d\n" "cache.write_failed" c.Runner.c_cache_write_failed

let cache_flag_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Resolve jobs from the content-addressed result cache \
           ($(b,<out>/cache)) and store fresh results into it.  Cached \
           replays are byte-identical to cold runs (same signature).")

let mk_cache ~out use_cache =
  if use_cache then Some (Runner.Cache.create ~dir:(Filename.concat out "cache") ())
  else None

let print_cache_line c =
  if
    c.Runner.c_cache_hits > 0 || c.Runner.c_cache_skipped > 0
    || c.Runner.c_executed < Array.length c.Runner.c_results
  then
    Printf.printf "  cache: %d hit(s), %d executed, %d skipped\n"
      c.Runner.c_cache_hits c.Runner.c_executed c.Runner.c_cache_skipped

let campaign_cmd =
  let run family jobs seeds out compare use_cache (base : Protocol.params) =
    (* The flags are sugar over the unified job API: elaborate into a
       Job.spec and execute — same path as `fdkit submit` / the daemon. *)
    let spec = Job.of_flags ~kind:`Campaign ~seeds ~protocol:family base in
    match Job.validate spec with
    | Error errs ->
        List.iter (fun e -> Printf.eprintf "%s\n" e) errs;
        3
    | Ok () ->
    let cache = mk_cache ~out use_cache in
    let describe tag c =
      Printf.printf "%s: %d jobs on %d domain(s), %d failed, %.2fs wall, %.1f jobs/s\n" tag
        (Array.length c.Runner.c_results)
        c.Runner.c_workers
        (List.length (Runner.failures c))
        c.Runner.c_wall_s c.Runner.c_throughput
    in
    let c = (Job.execute ~jobs ?cache spec).Job.o_campaign in
    describe (Printf.sprintf "campaign %s -j %d" family jobs) c;
    print_cache_line c;
    let path = Runner.write_artifact ~dir:out c in
    Printf.printf "artifact: %s\n" path;
    List.iter
      (fun (name, s) ->
        Printf.printf "  %-18s %s\n" name (Format.asprintf "%a" Stats.pp_summary s))
      (Runner.metric_summaries c);
    print_counter_totals c;
    let seq =
      if not compare then None
      else begin
        let c1 = (Job.execute ~jobs:1 ?cache spec).Job.o_campaign in
        describe (Printf.sprintf "baseline %s -j 1" family) c1;
        Printf.printf "speedup: %.2fx; deterministic merge: %s\n"
          (c.Runner.c_throughput /. Float.max c1.Runner.c_throughput 1e-9)
          (if Runner.signature c = Runner.signature c1 then "yes" else "NO — BUG");
        Some c1
      end
    in
    let side tag c =
      ( tag,
        Json.Obj
          [
            ("workers", Json.Int c.Runner.c_workers);
            ("wall_s", Json.Float c.Runner.c_wall_s);
            ("throughput_jobs_per_s", Json.Float c.Runner.c_throughput);
          ] )
    in
    Json.write_file
      (Filename.concat out "campaign_summary.json")
      (Json.Obj
         ([
            ("experiment", Json.String family);
            ("seeds", Json.Int seeds);
            ("failed", Json.Int (List.length (Runner.failures c)));
            side "parallel" c;
          ]
         @ (match seq with
           | None -> []
           | Some c1 ->
               [
                 side "sequential" c1;
                 ( "speedup",
                   Json.Float (c.Runner.c_throughput /. Float.max c1.Runner.c_throughput 1e-9)
                 );
                 ("deterministic", Json.Bool (Runner.signature c = Runner.signature c1));
               ])));
    let nfail = Runner.flush_failures ~dir:out () in
    (match seq with
    | Some c1 when Runner.signature c <> Runner.signature c1 ->
        prerr_endline "determinism violation: -j 1 and -j N merged outputs differ"
    | _ -> ());
    if nfail > 0 then begin
      Printf.printf "%d failing seed(s) — triage records (with replay commands) in %s\n" nfail
        (Filename.concat out "failures.json");
      List.iter
        (fun r ->
          Printf.printf "  seed %d: %s\n    replay: %s\n" r.Runner.r_seed
            (String.concat "; " r.Runner.r_notes)
            (Option.value ~default:"-" r.Runner.r_replay))
        (Runner.failures c)
    end;
    match seq with
    | Some c1 when Runner.signature c <> Runner.signature c1 -> 2
    | _ -> if nfail > 0 then 1 else 0
  in
  let exp_arg =
    Arg.(
      value & opt string "kset"
      & info [ "exp" ] ~docv:"NAME" ~doc:("Protocol family to sweep. " ^ registry_doc ()))
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Runner.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (default: BENCH_JOBS or cores).")
  in
  let seeds_arg =
    Arg.(value & opt int 32 & info [ "seeds" ] ~docv:"S" ~doc:"Run seeds 1..S.")
  in
  let out_arg =
    Arg.(
      value & opt string "_results"
      & info [ "out" ] ~docv:"DIR" ~doc:"Artifact directory (created if missing).")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Also run the sweep on 1 domain: report speedup and verify the merged outputs \
             are identical (exit 2 if not).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Shard a seed sweep of a protocol family across domains; write \
          BENCH_<family>.json, campaign_summary.json and failures.json (with replay \
          commands for every failing seed); exit nonzero if any seed fails.  \
          Note: these flags are sugar for the unified job API — prefer \
          $(b,fdkit submit) against a running $(b,fdkit serve) daemon for cached, \
          streaming campaigns.")
    Term.(
      const run $ exp_arg $ jobs_arg $ seeds_arg $ out_arg $ compare_arg
      $ cache_flag_arg $ params_term ())

(* ---- explore ---- *)

let explore_cmd =
  let run protocol jobs out compare expect honest depth delays walks max_runs
      shrink_budget use_cache (base : Protocol.params) =
    let bounds =
      {
        Explorer.default_bounds with
        depth;
        delays;
        walks;
        max_runs_per_job = max_runs;
        shrink_budget;
      }
    in
    (* Exploration defaults (adversarial wiring unless --honest, short
       horizon) are applied by Job.of_flags — shared with the daemon. *)
    let spec = Job.of_flags ~kind:`Explore ~honest ~bounds ~protocol base in
    match Job.validate spec with
    | Error errs ->
        List.iter (fun e -> Printf.eprintf "%s\n" e) errs;
        3
    | Ok () ->
        let cache = mk_cache ~out use_cache in
        let { Job.o_campaign = c; o_ces = ces; _ } =
          Job.execute ~jobs ?cache spec
        in
        let sum name =
          Array.fold_left
            (fun acc r ->
              acc
              +. Option.value ~default:0.0 (List.assoc_opt name r.Runner.r_metrics))
            0.0 c.Runner.c_results
        in
        let runs = sum "explore.runs" in
        let violations = sum "explore.violations" in
        Printf.printf "explore %s: %d jobs on %d domain(s), %.2fs wall\n" protocol
          (Array.length c.Runner.c_results)
          c.Runner.c_workers c.Runner.c_wall_s;
        print_cache_line c;
        Printf.printf
          "  executions=%.0f points=%.0f prunes=%.0f shrink_runs=%.0f violations=%.0f\n"
          runs (sum "explore.points") (sum "explore.prunes") (sum "explore.shrink_runs")
          violations;
        Printf.printf "  rate: %.1f runs/s, %.2f violations/s\n"
          (runs /. Float.max c.Runner.c_wall_s 1e-9)
          (violations /. Float.max c.Runner.c_wall_s 1e-9);
        Printf.printf "  counterexamples: %d (minimized, deduplicated)\n" (List.length ces);
        List.iteri
          (fun i (s : Schedule.t) ->
            if i < 5 then
              Printf.printf "    [%d] %s  -- %s\n" i
                (Format.asprintf "%a" Schedule.pp_choices s.Schedule.choices)
                (String.concat "; " s.Schedule.violation))
          ces;
        let art = Runner.write_artifact ~dir:out c in
        let cepath = Explorer.write_counterexamples ~dir:out ~protocol ces in
        Printf.printf "artifacts: %s, %s\n" art cepath;
        if ces <> [] then
          Printf.printf "replay: dune exec bin/fdkit.exe -- replay --schedule %s\n" cepath;
        let det_ok =
          (not compare)
          ||
          let o1 = Job.execute ~jobs:1 ?cache spec in
          let same_sig = Runner.signature c = Runner.signature o1.Job.o_campaign in
          let same_ces =
            List.length ces = List.length o1.Job.o_ces
            && List.for_all2
                 (fun a b -> Json.equal (Schedule.to_json a) (Schedule.to_json b))
                 ces o1.Job.o_ces
          in
          Printf.printf "determinism (-j %d vs -j 1): signatures %s, counterexamples %s\n"
            jobs
            (if same_sig then "match" else "DIFFER")
            (if same_ces then "match" else "DIFFER");
          same_sig && same_ces
        in
        if not det_ok then 2
        else begin
          match expect with
          | `Any -> 0
          | `Violation ->
              if ces <> [] then 0
              else begin
                prerr_endline "expected a violation, found none";
                1
              end
          | `None ->
              if ces = [] then 0
              else begin
                prerr_endline "expected no violation, found some";
                1
              end
        end
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Runner.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let out_arg =
    Arg.(
      value & opt string "_results"
      & info [ "out" ] ~docv:"DIR" ~doc:"Artifact directory (created if missing).")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Also explore on 1 domain and verify signatures and counterexamples are \
             identical (exit 2 if not).")
  in
  let expect_arg =
    Arg.(
      value
      & opt (enum [ ("violation", `Violation); ("none", `None); ("any", `Any) ]) `Any
      & info [ "expect" ] ~docv:"violation|none|any"
          ~doc:"Exit 1 unless the exploration outcome matches (CI assertions).")
  in
  let honest_arg =
    Arg.(
      value & flag
      & info [ "honest" ]
          ~doc:
            "Disable the default adversarial (mis-use) wiring; explore the protocol as \
             normally configured.")
  in
  let depth_arg =
    Arg.(
      value & opt int Explorer.default_bounds.Explorer.depth
      & info [ "depth" ] ~docv:"D" ~doc:"Choice points eligible for branching per run.")
  in
  let delays_arg =
    Arg.(
      value & opt int Explorer.default_bounds.Explorer.delays
      & info [ "delays" ] ~docv:"B" ~doc:"Max deviations from FIFO per execution.")
  in
  let walks_arg =
    Arg.(
      value & opt int 0
      & info [ "walks" ] ~docv:"W" ~doc:"Guided random walks on top of the DFS.")
  in
  let max_runs_arg =
    Arg.(
      value & opt int Explorer.default_bounds.Explorer.max_runs_per_job
      & info [ "max-runs" ] ~docv:"R" ~doc:"DFS execution budget per point job.")
  in
  let shrink_arg =
    Arg.(
      value & opt int Explorer.default_bounds.Explorer.shrink_budget
      & info [ "shrink-budget" ] ~docv:"R"
          ~doc:"Delta-debugging trial runs per counterexample.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore message delivery orders and crash injections \
          (delay-bounded DFS with commutativity pruning, plus optional random walks), \
          sharded across domains; minimize every violating schedule and write replayable \
          counterexamples.json.  Note: these flags are sugar for the unified job API \
          (fdkit submit / serve).")
    Term.(
      const run $ protocol_arg $ jobs_arg $ out_arg $ compare_arg $ expect_arg
      $ honest_arg $ depth_arg $ delays_arg $ walks_arg $ max_runs_arg $ shrink_arg
      $ cache_flag_arg
      $ params_term ~default_z:2 ~default_k:1 ~default_crashes:0 ())

(* ---- chaos ---- *)

let chaos_cmd =
  let run jobs seeds protocols mix_filter out use_cache (base : Protocol.params) =
    (* Elaborate into the unified job spec (defaults for empty protocol
       and mix lists live in Job.of_flags, shared with the daemon). *)
    let spec =
      Job.of_flags ~kind:`Chaos ~seeds ~protocols ~mixes:mix_filter ~protocol:""
        base
    in
    match Job.validate spec with
    | Error errs ->
        List.iter (fun e -> Printf.eprintf "%s\n" e) errs;
        3
    | Ok () ->
      let protocols, mixes =
        match spec with
        | Job.Chaos { protocols; mixes; _ } -> (protocols, mixes)
        | _ -> (Chaos.default_protocols, Chaos.mix_names)
      in
      let cache = mk_cache ~out use_cache in
      let outcome = Job.execute ~jobs ?cache spec in
      let o = Option.get outcome.Job.o_chaos in
      let c = o.Chaos.o_campaign in
      Printf.printf
        "chaos: %d runs (%s x %s x %d seeds) on %d domain(s), %.2fs wall\n"
        o.Chaos.o_runs
        (String.concat "," protocols)
        (String.concat "," mixes)
        seeds c.Runner.c_workers c.Runner.c_wall_s;
      print_cache_line c;
      Printf.printf "  safety violations:  %d\n  liveness failures:  %d\n"
        o.Chaos.o_safety o.Chaos.o_liveness;
      let art = Runner.write_artifact ~dir:out c in
      let fpath = Chaos.write_failures ~dir:out o.Chaos.o_failures in
      Printf.printf "artifacts: %s, %s\n" art fpath;
      List.iter
        (fun (name, s) ->
          Printf.printf "  %-22s %s\n" name (Format.asprintf "%a" Stats.pp_summary s))
        (Runner.metric_summaries c);
      print_counter_totals c;
      List.iteri
        (fun i (f : Chaos.failure) ->
          Printf.printf "  [%d] %s/%s seed=%d %s: %s\n      minimized: %s\n      \
                         replay: dune exec bin/fdkit.exe -- replay --faults %s --index %d\n"
            i f.Chaos.f_protocol f.Chaos.f_mix f.Chaos.f_params.Protocol.seed
            (Chaos.kind_to_string f.Chaos.f_kind)
            (String.concat "; " f.Chaos.f_notes)
            (Faults.summary f.Chaos.f_params.Protocol.faults)
            fpath i)
        o.Chaos.o_failures;
      (* Safety violations are the hard failure; liveness failures on
         healed runs also fail the job (exit 1) but are reported apart. *)
      if o.Chaos.o_safety > 0 then 2
      else if o.Chaos.o_failures <> [] then 1
      else 0
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Runner.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let seeds_arg =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"S" ~doc:"Run seeds 1..S per cell.")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "protocols" ] ~docv:"P1,P2"
          ~doc:"Protocols to sweep (default kset,consensus_s,wheels).")
  in
  let mixes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "mixes" ] ~docv:"M1,M2"
          ~doc:"Fault mixes to sweep (default: all built-in mixes).")
  in
  let out_arg =
    Arg.(
      value & opt string "_results"
      & info [ "out" ] ~docv:"DIR" ~doc:"Artifact directory (created if missing).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos campaign: sweep fault mixes (drop/dup/reorder/inflate links, \
          partitions with heals, stalls, adversary oracles, combos) x seeds over \
          registered protocols; assert safety on every run and liveness after heal; \
          minimize failures into replayable chaos_failures.json (exit 2 on any \
          safety violation, 1 on liveness failures).  Note: these flags are sugar \
          for the unified job API (fdkit submit / serve).")
    Term.(
      const run $ jobs_arg $ seeds_arg $ protocols_arg $ mixes_arg $ out_arg
      $ cache_flag_arg $ params_term ())

(* ---- replay ---- *)

let replay_faults path index =
  match Chaos.load_failures path with
  | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      3
  | Ok [] ->
      Printf.eprintf "%s: no chaos failures recorded\n" path;
      3
  | Ok l -> (
      match List.nth_opt l index with
      | None ->
          Printf.eprintf "--index %d out of range (%d failure(s))\n" index
            (List.length l);
          3
      | Some f -> (
          Printf.printf "replaying chaos failure %s/%s seed=%d kind=%s\n  spec: %s\n"
            f.Chaos.f_protocol f.Chaos.f_mix f.Chaos.f_params.Protocol.seed
            (Chaos.kind_to_string f.Chaos.f_kind)
            (Faults.summary f.Chaos.f_params.Protocol.faults);
          match Chaos.reproduce f with
          | None ->
              Printf.eprintf "unknown protocol %S\n" f.Chaos.f_protocol;
              3
          | Some (reproduced, notes) ->
              Printf.printf "recorded: %s\nreplayed: %s\n%s\n"
                (String.concat "; " f.Chaos.f_notes)
                (String.concat "; " notes)
                (if reproduced then "reproduced" else "NOT reproduced");
              if reproduced then 0 else 1))

let replay_schedule schedule index =
  match Explorer.load_counterexamples schedule with
  | Error e ->
      Printf.eprintf "cannot load %s: %s\n" schedule e;
      3
  | Ok [] ->
      Printf.eprintf "%s: no counterexamples recorded\n" schedule;
      3
  | Ok l -> (
      match List.nth_opt l index with
      | None ->
          Printf.eprintf "--index %d out of range (%d counterexample(s))\n" index
            (List.length l);
          3
      | Some s -> (
          Printf.printf "replaying %s schedule %s\n" s.Schedule.protocol
            (Format.asprintf "%a" Schedule.pp_choices s.Schedule.choices);
          match Explorer.replay s with
          | Error e ->
              prerr_endline e;
              3
          | Ok (e, reproduced) ->
              Printf.printf "recorded violation: %s\nreplayed violation: %s\n"
                (String.concat "; " s.Schedule.violation)
                (String.concat "; " e.Explore.ex_violation);
              Printf.printf "%s\n"
                (if reproduced then "reproduced" else "NOT reproduced");
              if reproduced then 0 else 1))

let replay_cmd =
  let run schedule faults index =
    let dispatch source path =
      match Job.validate (Job.Replay { source; path; index }) with
      | Error errs ->
          List.iter prerr_endline errs;
          3
      | Ok () -> (
          match source with
          | Job.Faults_file -> replay_faults path index
          | Job.Schedule_file -> replay_schedule path index)
    in
    match (schedule, faults) with
    | None, None ->
        prerr_endline "replay needs --schedule FILE or --faults FILE";
        3
    | Some _, Some _ ->
        prerr_endline "--schedule and --faults are mutually exclusive";
        3
    | None, Some path -> dispatch Job.Faults_file path
    | Some path, None -> dispatch Job.Schedule_file path
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"A counterexamples.json artifact or a bare schedule file.")
  in
  let faults_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"FILE"
          ~doc:"A chaos_failures.json artifact: re-run the recorded configuration \
                (params + minimized fault spec) and verify the failure reproduces.")
  in
  let index_arg =
    Arg.(
      value & opt int 0
      & info [ "index" ] ~docv:"I" ~doc:"Which counterexample to replay.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded counterexample — an explorer schedule \
          choice-for-choice (--schedule) or a chaos failure byte-for-byte from its \
          seed and fault spec (--faults) — and verify it exhibits the recorded \
          violation (exit 0 iff reproduced).  Note: these flags are sugar for the \
          unified job API (fdkit submit / serve).")
    Term.(const run $ schedule_arg $ faults_file_arg $ index_arg)

(* ---- grid ---- *)

let grid_cmd =
  let run n t matrix =
    Printf.printf "Figure 1 grid for t = %d (row z: classes solving z-set agreement)\n\n" t;
    Printf.printf "%-4s %-8s %-8s %-8s %-8s %-8s\n" "z" "S_x" "◇S_x" "Ω_z" "φ_y" "◇φ_y";
    List.iter
      (fun (row : Bounds.row) ->
        Printf.printf "%-4d %-8s %-8s %-8s %-8s %-8s\n" row.z
          (Printf.sprintf "S_%d" row.sx)
          (Printf.sprintf "◇S_%d" row.sx)
          (Printf.sprintf "Ω_%d" row.z)
          (Printf.sprintf "φ_%d" row.phiy)
          (Printf.sprintf "◇φ_%d" row.phiy))
      (Bounds.grid ~t);
    if matrix then begin
      Printf.printf
        "\nfull reducibility matrix (Y = yes, n = impossible, ? = open):\n\n";
      Format.printf "%a@." (Grid.pp_matrix ~n ~t) (Grid.row_representatives ~n ~t)
    end;
    0
  in
  let matrix_arg =
    Arg.(value & flag & info [ "matrix" ] ~doc:"Also print the pairwise reducibility matrix.")
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Print the class grid of Figure 1 for a given t.")
    Term.(const run $ n_arg $ t_arg $ matrix_arg)

(* ---- trace export ---- *)

let trace_cmd =
  let ensure_dir dir =
    if not (Sys.file_exists dir) then
      try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  in
  let read_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  (* Stale-artifact detection: warn (never fail) when the file was
     stamped by a different schema or build than the one checking it. *)
  let warn_stamp path j =
    let short fp = if String.length fp > 12 then String.sub fp 0 12 else fp in
    (match Json.member "schema_version" j with
    | Some (Json.Int v) when v <> Stamp.schema_version ->
        Printf.eprintf "check: warning: %s has schema version %d, this build writes %d\n"
          path v Stamp.schema_version
    | _ -> ());
    match Json.member "code_fingerprint" j with
    | Some (Json.String fp) when fp <> Stamp.fingerprint () ->
        Printf.eprintf
          "check: warning: %s was written by a different build (fingerprint %s, \
           running %s) — re-export before comparing\n"
          path (short fp)
          (short (Stamp.fingerprint ()))
    | _ -> ()
  in
  (* Re-parse the written file and demand >= 1 complete span: the CI
     smoke contract. *)
  let check_chrome path =
    match Json.of_string (read_file path) with
    | Error e ->
        Printf.eprintf "check: %s does not parse as JSON: %s\n" path e;
        1
    | Ok j -> (
        warn_stamp path j;
        match Json.member "traceEvents" j with
        | Some (Json.List evs) ->
            let count ph =
              List.length
                (List.filter
                   (fun e -> Json.member "ph" e = Some (Json.String ph))
                   evs)
            in
            (* Spans interrupted by a crash legitimately stay open (a B
               with no E), so require >= 1 completed span, not balance. *)
            let b = count "B" and e = count "E" in
            if e >= 1 && b >= e then begin
              Printf.printf "check: ok (%d events, %d complete spans)\n"
                (List.length evs) e;
              0
            end
            else begin
              Printf.eprintf
                "check: expected >= 1 complete span, got %d B / %d E events\n" b e;
              1
            end
        | _ ->
            Printf.eprintf "check: %s has no traceEvents array\n" path;
            1)
  in
  let check_jsonl path =
    let ok = ref true and lines = ref 0 in
    String.split_on_char '\n' (read_file path)
    |> List.iter (fun line ->
           if line <> "" then begin
             incr lines;
             match Json.of_string line with
             | Ok j -> if !lines = 1 then warn_stamp path j
             | Error e ->
                 ok := false;
                 Printf.eprintf "check: bad JSONL line %d: %s\n" !lines e
           end);
    if !ok && !lines > 0 then begin
      Printf.printf "check: ok (%d JSONL lines)\n" !lines;
      0
    end
    else 1
  in
  let run protocol format out check (p : Protocol.params) =
    match Protocol.find protocol with
    | None ->
        Printf.eprintf "unknown protocol %S; %s\n" protocol (registry_doc ());
        3
    | Some pk ->
        let r = Protocol.run pk p in
        let tr = Sim.trace r.Protocol.rp_sim in
        let n_spans = List.length (Trace.spans tr) in
        (match format with
        | `Summary ->
            Format.printf "%a@." Trace.pp_summary tr;
            Printf.printf "spans: %d complete, %d open; nesting: %s\n" n_spans
              (List.length (Trace.open_spans tr))
              (if Trace.nesting_ok tr then "ok" else "VIOLATED");
            List.iter
              (fun (key, v) -> Printf.printf "  %-22s %g\n" key v)
              r.Protocol.rp_metrics;
            0
        | (`Jsonl | `Chrome) as fmt ->
            ensure_dir out;
            let ext = match fmt with `Jsonl -> "jsonl" | `Chrome -> "chrome.json" in
            let path =
              Filename.concat out
                (Printf.sprintf "trace_%s_seed%d.%s" protocol p.Protocol.seed ext)
            in
            (match fmt with
            | `Jsonl -> Export.write_jsonl path tr
            | `Chrome -> Export.write_chrome path tr);
            Printf.printf "trace: %s (%d entries, %d complete spans, level %s)\n"
              path (Trace.length tr) n_spans
              (Trace.level_to_string (Trace.level tr));
            if check then
              match fmt with
              | `Chrome -> check_chrome path
              | `Jsonl -> check_jsonl path
            else 0)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome); ("summary", `Summary) ]) `Summary
      & info [ "format" ] ~docv:"jsonl|chrome|summary"
          ~doc:
            "Output format: $(b,jsonl) one event per line, $(b,chrome) a \
             chrome://tracing / Perfetto trace_event file, $(b,summary) a textual \
             digest on stdout.")
  in
  let out_arg =
    Arg.(
      value & opt string "_results"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory (created if missing).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After writing, re-parse the file and verify it is well-formed (chrome: \
             >= 1 complete span); exit nonzero otherwise.  Also warns when the \
             file's schema version or code fingerprint differs from this build's.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         ("Run one execution and dump/convert its trace (spans, events, counters). "
        ^ registry_doc ()))
    Term.(const run $ protocol_arg $ format_arg $ out_arg $ check_arg $ params_term ())

(* ---- reducibility queries ---- *)

let reducible_cmd =
  let run n t from_s into_s =
    match (Grid.parse_cls from_s, Grid.parse_cls into_s) with
    | Some from, Some into ->
        let v = Grid.reducible ~n ~t ~from ~into in
        let verdict, why, code =
          match v with
          | Grid.Yes why -> ("YES", why, 0)
          | Grid.No why -> ("NO", why, 1)
          | Grid.Unknown why -> ("UNKNOWN", why, 2)
        in
        Format.printf "%a -> %a in AS(n=%d, t=%d): %s@.  %s@." Grid.pp_cls from
          Grid.pp_cls into n t verdict why;
        (match (Grid.kset_power ~n ~t from, Grid.kset_power ~n ~t into) with
        | Some ka, Some kb ->
            Format.printf "  k-set power: %a solves %d-set, %a solves %d-set@."
              Grid.pp_cls from ka Grid.pp_cls into kb
        | _ -> ());
        code
    | _ ->
        prerr_endline
          "cannot parse class; use S3, ES2, Omega1, Phi2, EPhi0, Psi1, P, EP";
        3
  in
  let from_arg =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"CLS" ~doc:"Source class.")
  in
  let into_arg =
    Arg.(required & opt (some string) None & info [ "to" ] ~docv:"CLS" ~doc:"Target class.")
  in
  Cmd.v
    (Cmd.info "reducible"
       ~doc:
         "Query the paper's reducibility lattice: can the target class be built from \
          the source class in AS(n,t)?")
    Term.(const run $ n_arg $ t_arg $ from_arg $ into_arg)

(* ---- serve: the campaign daemon and its client commands ---- *)

let socket_arg =
  Arg.(
    value
    & opt string Serve.default_config.Serve.socket_path
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket the fdkit serve daemon listens on.")

let serve_cmd =
  let run socket cache_dir no_cache jobs out verbose queue_depth
      default_deadline_s retry_budget retry_backoff_s no_resume =
    let log =
      if verbose then fun s -> Printf.eprintf "[serve] %s\n%!" s else ignore
    in
    let config =
      {
        Serve.socket_path = socket;
        cache_dir = (if no_cache then None else Some cache_dir);
        jobs = (if jobs > 0 then Some jobs else None);
        out_dir = out;
        log;
        queue_depth;
        default_deadline_s;
        retry_budget;
        retry_backoff_s;
        resume = not no_resume;
      }
    in
    Printf.printf "fdkit serve: listening on %s (cache: %s, journal: %s)\n%!"
      socket
      (if no_cache then "off" else cache_dir)
      (Serve.journal_path out);
    (* A live daemon already on the socket is a refusal (the stale-file
       case is handled inside serve by probe + unlink). *)
    match Serve.serve ~config () with
    | () -> 0
    | exception Failure e ->
        prerr_endline e;
        2
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Runner.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Content-addressed result cache directory.")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains (0 = auto).")
  in
  let out_arg =
    Arg.(
      value & opt string "_results"
      & info [ "out" ] ~docv:"DIR" ~doc:"Artifact directory for campaign outputs.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log submissions to stderr.")
  in
  let queue_depth_arg =
    Arg.(
      value
      & opt int Serve.default_config.Serve.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Bounded FIFO: max jobs waiting (the running job not counted); \
             submits beyond it are shed with a 'rejected: queue full' ack.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 0.0
      & info [ "default-deadline-s" ] ~docv:"SECS"
          ~doc:
            "Per-attempt wall-clock budget for jobs whose submit frame \
             carries no deadline_s; 0 disables the watchdog.")
  in
  let retry_budget_arg =
    Arg.(
      value
      & opt int Serve.default_config.Serve.retry_budget
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:
            "Retries (with capped exponential backoff) for a timed-out or \
             crashed job before it is quarantined as poison.")
  in
  let retry_backoff_arg =
    Arg.(
      value
      & opt float Serve.default_config.Serve.retry_backoff_s
      & info [ "retry-backoff-s" ] ~docv:"SECS"
          ~doc:"Base of the capped exponential retry backoff.")
  in
  let no_resume_arg =
    Arg.(
      value & flag
      & info [ "no-resume" ]
          ~doc:
            "Do not re-enqueue journal-recovered interrupted jobs on start; \
             close them out as cancelled instead (completed history is \
             replayed either way).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-safe campaign daemon: accept Job specs over a Unix \
          socket (newline-delimited JSON), queue them on a bounded FIFO, \
          execute them on the multicore campaign engine, stream progress \
          frames live, and resolve warm jobs from the content-addressed \
          result cache.  Every accepted spec and state transition is \
          journaled (append + fsync) to $(b,<out>/serve_journal.jsonl); on \
          start the journal is replayed, so a kill -9 mid-campaign loses \
          nothing — interrupted jobs are re-enqueued and their finished \
          prefix resolves from the cache.  Timed-out or crashed jobs retry \
          with capped exponential backoff up to --retry-budget, then are \
          quarantined as poison (exit 6) with a ready-to-paste resubmit \
          command in the journal.  Clients that send \
          {\"op\":\"subscribe\"} additionally receive periodic \
          $(b,telemetry) frames (metrics snapshots and deltas of the \
          in-flight campaign — see $(b,fdkit submit --help) for the frame \
          schema); {\"op\":\"unsubscribe\"} turns them off again, both \
          honoured mid-run.  Telemetry is read-only: campaign signatures \
          are byte-identical with or without a subscriber.  Pair with \
          $(b,fdkit submit/status/top/cancel/shutdown).")
    Term.(
      const run $ socket_arg $ cache_dir_arg $ no_cache_arg $ jobs_arg $ out_arg
      $ verbose_arg $ queue_depth_arg $ deadline_arg $ retry_budget_arg
      $ retry_backoff_arg $ no_resume_arg)

let json_int ?(default = 0) key v =
  match Json.member key v with Some (Json.Int i) -> i | _ -> default

let json_str ?(default = "?") key v =
  match Json.member key v with Some (Json.String s) -> s | _ -> default

let json_float ?(default = 0.0) key v =
  match Json.member key v with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> default

(* One rendered line per telemetry frame under --follow. *)
let print_telemetry v =
  let cached = json_int "cached" v in
  let label = json_str ~default:"" "label" v in
  Printf.printf "  ~ #%d t=%.1fs %d/%d%s  %.1f jobs/s  %.0f ev/s  gc=%.2e mw%s\n%!"
    (json_int "seq" v) (json_float "wall_s" v) (json_int "done" v)
    (json_int "total" v)
    (if cached > 0 then Printf.sprintf " (%d cached)" cached else "")
    (json_float "rate_jobs_per_s" v)
    (json_float "events_per_s" v)
    (json_float "gc_minor_words" v)
    (if label = "" then "" else "  " ^ label)

let submit_cmd =
  let run socket spec_file kind protocol seeds protocols mixes honest
      expect_cached follow stream retry deadline_s (base : Protocol.params) =
    let spec =
      match spec_file with
      | Some path -> (
          try
            match Json.of_string (read_file path) with
            | Error e -> Error (Printf.sprintf "%s: not JSON: %s" path e)
            | Ok j -> (
                match Job.of_json j with
                | Ok s -> Ok s
                | Error e -> Error (Printf.sprintf "%s: %s" path e))
          with Sys_error e -> Error e)
      | None ->
          (* Same elaboration as the run/campaign/chaos/explore commands. *)
          let seeds =
            if seeds > 0 then seeds
            else match kind with `Chaos -> 8 | _ -> 32
          in
          Ok (Job.of_flags ~seeds ~protocols ~mixes ~honest ~kind ~protocol base)
    in
    match spec with
    | Error e ->
        prerr_endline e;
        3
    | Ok spec -> (
        match
          (* --retry rides out a daemon mid-restart (journal replay,
             socket not yet rebound) with capped-exponential reconnect. *)
          if retry > 0 then Serve.Client.connect_retry ~attempts:(retry + 1) socket
          else Serve.Client.connect socket
        with
        | Error e ->
            prerr_endline e;
            Printf.eprintf "hint: is `fdkit serve` running? socket checked: %s\n"
              socket;
            7
        | Ok conn ->
            let stream_oc = Option.map open_out stream in
            (* Subscribe before submitting so the campaign's first
               telemetry frame is never missed. *)
            if follow || stream_oc <> None then Serve.Client.subscribe conn;
            let on_event v =
              (match stream_oc with
              | Some oc ->
                  output_string oc (Json.to_string ~minify:true v);
                  output_char oc '\n';
                  flush oc
              | None -> ());
              match Json.member "type" v with
              | Some (Json.String "ack")
                when Json.member "accepted" v = Some (Json.Bool true) ->
                  if Json.member "attached" v = Some (Json.Bool true) then
                    Printf.printf "attached to job #%d (already %s): %s\n%!"
                      (json_int "id" v) (json_str "state" v) (Job.summary spec)
                  else Printf.printf "submitted: %s\n%!" (Job.summary spec)
              | Some (Json.String "retry") ->
                  Printf.printf "  retry %d: %s — backoff %gs\n%!"
                    (json_int "attempt" v)
                    (json_str ~default:"attempt failed" "reason" v)
                    (json_float "backoff_s" v)
              | Some (Json.String "progress") ->
                  Printf.printf "  [%d/%d] %s%s%s\n%!" (json_int "done" v)
                    (json_int "total" v) (json_str "label" v)
                    (if Json.member "cached" v = Some (Json.Bool true) then
                       " (cached)"
                     else "")
                    (if Json.member "ok" v = Some (Json.Bool true) then ""
                     else " FAILED")
              | Some (Json.String "telemetry") when follow -> print_telemetry v
              | _ -> ()
            in
            let r =
              Serve.Client.submit
                ?deadline_s:(if deadline_s > 0. then Some deadline_s else None)
                ~on_event conn spec
            in
            Serve.Client.close conn;
            Option.iter close_out stream_oc;
            (match r with
            | Error e ->
                prerr_endline e;
                3
            | Ok v -> (
                match Json.member "type" v with
                | Some (Json.String "done") ->
                    let executed = json_int "executed" v in
                    Printf.printf
                      "done: state=%s exit=%d jobs=%d failed=%d cache_hits=%d \
                       executed=%d cache_skipped=%d\n"
                      (json_str "state" v) (json_int "exit" v) (json_int "jobs" v)
                      (json_int "failed" v)
                      (json_int "cache_hits" v)
                      executed
                      (json_int "cache_skipped" v);
                    Printf.printf "signature=%s\n" (json_str "signature" v);
                    if expect_cached && executed > 0 then begin
                      Printf.eprintf
                        "expected a fully cached run, but %d job(s) executed\n"
                        executed;
                      1
                    end
                    else json_int "exit" v
                | Some (Json.String "ack") ->
                    prerr_endline "rejected:";
                    (match Json.member "errors" v with
                    | Some (Json.List errs) ->
                        List.iter
                          (function
                            | Json.String e -> Printf.eprintf "  - %s\n" e
                            | _ -> ())
                          errs
                    | _ -> ());
                    3
                | _ ->
                    Printf.eprintf "daemon error: %s\n"
                      (json_str ~default:"unknown" "message" v);
                    3)))
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Submit a Job spec read from a JSON file (the canonical encoding, \
             see DESIGN.md §11) instead of elaborating the flags below.")
  in
  let kind_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("run", `Run);
               ("campaign", `Campaign);
               ("chaos", `Chaos);
               ("explore", `Explore);
             ])
          `Campaign
      & info [ "kind" ] ~docv:"run|campaign|chaos|explore"
          ~doc:"Job kind to elaborate from the flags.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 0
      & info [ "seeds" ] ~docv:"S"
          ~doc:"Run seeds 1..S (0 = kind default: 32, chaos 8).")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "protocols" ] ~docv:"P1,P2"
          ~doc:"Chaos: protocols to sweep (default: the built-in list).")
  in
  let mixes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "mixes" ] ~docv:"M1,M2"
          ~doc:"Chaos: fault mixes to sweep (default: all).")
  in
  let honest_arg =
    Arg.(
      value & flag
      & info [ "honest" ] ~doc:"Explore: disable the adversarial wiring.")
  in
  let expect_cached_arg =
    Arg.(
      value & flag
      & info [ "expect-cached" ]
          ~doc:
            "Exit nonzero unless the job resolved entirely from the result \
             cache (0 executed) — CI warm-cache assertion.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Subscribe to live telemetry frames and render one line per \
             periodic snapshot (sequence number, wall clock, done/total, \
             jobs/s, events/s, GC minor words, last completed label).")
  in
  let stream_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stream" ] ~docv:"FILE"
          ~doc:
            "Save every frame the daemon sends (ack, progress, telemetry, \
             done) to $(docv) as newline-delimited JSON; implies the \
             telemetry subscription.")
  in
  let retry_arg =
    Arg.(
      value & opt int 0
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Retry the initial connect up to $(docv) times with capped \
             exponential backoff — rides out a daemon mid-restart.")
  in
  let deadline_s_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline-s" ] ~docv:"SECS"
          ~doc:
            "Per-attempt wall-clock budget for this job (overrides the \
             daemon's --default-deadline-s); a timed-out job retries with \
             backoff and is eventually poisoned (exit 6).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a job to a running fdkit serve daemon, stream its progress, \
          and exit with the job's exit code.  The flag set mirrors \
          run/campaign/chaos/explore; --spec FILE submits a serialized \
          Job spec directly.  Daemon frames (one JSON object per line): \
          $(b,ack) {id,accepted,summary|errors}; $(b,progress) \
          {id,done,total,cached,label,ok}; $(b,telemetry) (with --follow or \
          --stream) {id,seq,wall_s,done,total,cached,cache_skipped,label,\
          rate_jobs_per_s,events_per_s,gc_minor_words,gc_promoted_words,\
          counters,delta}; $(b,done) {id,state,exit,jobs,failed,cache_hits,\
          executed,cache_skipped,cancelled,wall_s,signature}.")
    Term.(
      const run $ socket_arg $ spec_arg $ kind_arg $ protocol_arg $ seeds_arg
      $ protocols_arg $ mixes_arg $ honest_arg $ expect_cached_arg
      $ follow_arg $ stream_arg $ retry_arg $ deadline_s_arg $ params_term ())

(* Exit 7 is reserved for "daemon unreachable" so scripts can tell a
   dead daemon (restart it) from a failing job (fix the job). *)
let unreachable_exit = 7

let unreachable_hint socket e =
  prerr_endline e;
  Printf.eprintf "hint: is `fdkit serve` running? socket checked: %s\n%!" socket

let with_daemon socket f =
  match Serve.Client.connect socket with
  | Error e ->
      unreachable_hint socket e;
      unreachable_exit
  | Ok conn ->
      let code = f conn in
      Serve.Client.close conn;
      code

(* "-" until the first snapshot of a running job; then its age. *)
let telemetry_age j =
  match Json.member "telemetry_age_s" j with
  | Some (Json.Float f) -> Printf.sprintf "%.1fs" f
  | Some (Json.Int i) -> Printf.sprintf "%d.0s" i
  | _ -> "-"

let status_cmd =
  let run socket =
    with_daemon socket (fun conn ->
        match Serve.Client.status conn with
        | Error e ->
            prerr_endline e;
            3
        | Ok v ->
            (match Json.member "jobs" v with
            | Some (Json.List []) | None -> print_endline "no jobs submitted"
            | Some (Json.List jobs) ->
                Printf.printf "%d job(s), queue depth %d:\n" (List.length jobs)
                  (json_int "queue_depth" v);
                List.iter
                  (fun j ->
                    Printf.printf
                      "  #%d %-8s %-9s phase=%s exit=%d hits=%d executed=%d \
                       skipped=%d telemetry=%s %s\n"
                      (json_int "id" j) (json_str "kind" j) (json_str "state" j)
                      (json_str "phase" j) (json_int "exit" j)
                      (json_int "cache_hits" j)
                      (json_int "executed" j)
                      (json_int "cache_skipped" j)
                      (telemetry_age j) (json_str "summary" j))
                  jobs
            | Some _ -> ());
            (match Json.member "counters" v with
            | Some (Json.Obj _ as counters) ->
                let retried = json_int "jobs_retried" counters in
                let poisoned = json_int "jobs_poisoned" counters in
                if retried > 0 || poisoned > 0 then
                  Printf.printf "watchdog: %d retried, %d poisoned\n" retried
                    poisoned
            | _ -> ());
            (match Json.member "cache" v with
            | Some (Json.Obj _ as cache) ->
                Printf.printf
                  "cache: %s — %d hit(s), %d miss(es), %d store(s), %d \
                   corrupt, %d write-failed\n"
                  (json_str "dir" cache) (json_int "hits" cache)
                  (json_int "misses" cache) (json_int "stores" cache)
                  (json_int "corrupt" cache)
                  (json_int "write_failed" cache)
            | _ -> print_endline "cache: off");
            0)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Print a running daemon's queue depth, job history (state, phase, \
          cache hit/executed/skipped counts, age of the last telemetry \
          snapshot) and cache counters.")
    Term.(const run $ socket_arg)

(* ---- top: live refresh of the daemon's status ---- *)

let top_cmd =
  let run socket interval once =
    (* Reconnect per tick: the daemon handles one connection at a time,
       so a persistent watcher would starve submitters.  A throwaway
       connect → status → close per refresh keeps the socket free
       between ticks. *)
    let render () =
      match Serve.Client.connect socket with
      | Error e ->
          unreachable_hint socket e;
          Error unreachable_exit
      | Ok conn -> (
          let r = Serve.Client.status conn in
          Serve.Client.close conn;
          match r with
          | Error e ->
              unreachable_hint socket e;
              Error unreachable_exit
          | Ok v ->
              if not once then print_string "\027[2J\027[H";
              Printf.printf "fdkit top — %s  queue=%d\n" socket
                (json_int "queue_depth" v);
              (match Json.member "jobs" v with
              | Some (Json.List (_ :: _ as jobs)) ->
                  Printf.printf "  %-4s %-9s %-9s %-18s %-9s %s\n" "id" "kind"
                    "state" "phase" "telem" "summary";
                  List.iter
                    (fun j ->
                      Printf.printf "  %-4d %-9s %-9s %-18s %-9s %s\n"
                        (json_int "id" j) (json_str "kind" j)
                        (json_str "state" j) (json_str "phase" j)
                        (telemetry_age j) (json_str "summary" j))
                    jobs
              | _ -> print_endline "  no jobs submitted");
              (match Json.member "cache" v with
              | Some (Json.Obj _ as cache) ->
                  Printf.printf
                    "  cache: %s — %d hit(s), %d miss(es), %d store(s), %d \
                     corrupt, %d write-failed\n%!"
                    (json_str "dir" cache) (json_int "hits" cache)
                    (json_int "misses" cache) (json_int "stores" cache)
                    (json_int "corrupt" cache)
                    (json_int "write_failed" cache)
              | _ -> print_endline "  cache: off");
              Ok ())
    in
    (* Loop mode survives a daemon restart: each tick is its own
       connect, so an unreachable tick reports and keeps ticking — the
       next tick finds the restarted daemon.  --once propagates the
       distinct exit code for scripting. *)
    let rec loop () =
      match render () with
      | Error code when once -> code
      | Error _ | Ok () ->
          if once then 0
          else begin
            Unix.sleepf interval;
            loop ()
          end
    in
    loop ()
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh period.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame and exit (no screen clearing) — \
                scripting/CI mode.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running fdkit serve daemon: queue depth and per-job \
          state/phase/telemetry-freshness, refreshed every --interval \
          seconds.  Each refresh is its own connect → status → close \
          exchange, so the watcher rides out daemon restarts: an \
          unreachable tick prints a hint and keeps ticking (--once instead \
          exits 7 for scripting).")
    Term.(const run $ socket_arg $ interval_arg $ once_arg)

let cancel_cmd =
  let run socket =
    with_daemon socket (fun conn ->
        (* A fresh connection has no submission of its own and is no
           watcher, so a bare cancel frame would be refused — resolve
           the running job's id via status and cancel it by name. *)
        match Serve.Client.status conn with
        | Error e ->
            Printf.eprintf "fdkit cancel: %s\n%!" e;
            1
        | Ok v -> (
            match Json.member "running" v with
            | Some (Json.Int id) ->
                Serve.Client.cancel ~id conn;
                Printf.printf "cancel sent (job %d)\n" id;
                0
            | _ ->
                print_endline "no job is running";
                1))
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Ask the daemon to cancel the running job (queued jobs are \
          cancelled immediately; a running campaign stops at the next job \
          boundary — in-flight jobs finish; completed work is kept and \
          cached).  Exits 1 when nothing is running.")
    Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    with_daemon socket (fun conn ->
        match Serve.Client.shutdown conn with
        | Ok _ ->
            print_endline "daemon shut down";
            0
        | Error e ->
            prerr_endline e;
            3)
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop a running fdkit serve daemon.")
    Term.(const run $ socket_arg)

let () =
  let doc = "Set-agreement-oriented failure detector classes: simulation toolkit." in
  let info = Cmd.info "fdkit" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd;
            kset_cmd;
            wheels_cmd;
            psi_cmd;
            strengthen_cmd;
            impl_cmd;
            campaign_cmd;
            chaos_cmd;
            trace_cmd;
            explore_cmd;
            replay_cmd;
            violation_cmd;
            irreducibility_cmd;
            grid_cmd;
            reducible_cmd;
            serve_cmd;
            submit_cmd;
            status_cmd;
            top_cmd;
            cancel_cmd;
            shutdown_cmd;
          ]))
