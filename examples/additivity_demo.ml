(* The paper's headline example (its Figure 2, instantiated).

   Fix t = 3.  Then:
   - ◇S_t = ◇S_3 alone can solve 2-set agreement but NOT consensus
     (it only yields Ω_2);
   - ◇φ_1 alone can solve t-set = 3-set agreement but NOT 2-set
     (it only yields Ω_3);
   - added together through the two-wheels transformation they yield
     Ω_1 = Ω (x + y + z = 3 + 1 + 1 >= t + 2), which solves consensus.

   This demo runs all three constructions in separate simulations with the
   same crash pattern and reports what each achieves.

   Run with:  dune exec examples/additivity_demo.exe *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let n = 8
let t = 3
let gst = 35.0
let horizon = 400.0

let fresh_sim ~seed =
  let sim = Sim.create ~horizon ~n ~t ~seed () in
  Sim.install_crashes sim [ (6, 5.0); (7, 12.0) ];
  sim

let certify sim omega ~z =
  let mon =
    Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) ()
  in
  let _ = Sim.run sim in
  Check.omega_z sim ~z ~deadline:(horizon -. 80.0) mon

let () =
  Printf.printf "n = %d processes, t = %d, crashes: p7@5 p8@12, oracles stabilize at %.0f\n\n"
    n t gst;

  (* 1. ◇S_3 alone (wheels with y = 0): reaches Ω_2, certified; and the
     same history is NOT an Ω_1. *)
  let sim1 = fresh_sim ~seed:1 in
  let suspector, _ = Oracle.es_x sim1 ~x:t ~behavior:(Behavior.stormy ~gst) () in
  let w1 = Reduce.omega_from_es sim1 ~suspector ~x:t () in
  let omega1 = Wheels.omega w1 in
  let mon1 = Monitor.watch sim1 ~every:0.5 ~read:(fun i -> omega1.Iface.trusted i) () in
  let _ = Sim.run sim1 in
  let v_z2 = Check.omega_z sim1 ~z:2 ~deadline:(horizon -. 80.0) mon1 in
  let v_z1 = Check.omega_z sim1 ~z:1 ~deadline:(horizon -. 80.0) mon1 in
  Printf.printf "◇S_%d alone      -> Omega_2: %s   (as Omega_1: %s)\n" t
    (Format.asprintf "%a" Check.pp_verdict v_z2)
    (if Check.verdict_ok v_z1 then "unexpectedly OK" else "FAIL, as the theory says");

  (* 2. ◇φ_1 alone (wheels with x = 1): reaches Ω_3 only. *)
  let sim2 = fresh_sim ~seed:2 in
  let querier, _ = Oracle.ephi_y sim2 ~y:1 ~behavior:(Behavior.stormy ~gst) () in
  let w2 = Reduce.omega_from_phi sim2 ~querier ~y:1 () in
  let v2 = certify sim2 (Wheels.omega w2) ~z:3 in
  Printf.printf "◇φ_1 alone      -> Omega_3: %s\n" (Format.asprintf "%a" Check.pp_verdict v2);

  (* 3. The addition: ◇S_3 + ◇φ_1 -> Ω_1, then consensus on top. *)
  let sim3 = fresh_sim ~seed:3 in
  let behavior = Behavior.stormy ~gst in
  let suspector3, _ = Oracle.es_x sim3 ~x:t ~behavior () in
  let querier3, _ = Oracle.ephi_y sim3 ~y:1 ~behavior () in
  let w3 = Wheels.install sim3 ~suspector:suspector3 ~querier:querier3 ~x:t ~y:1 () in
  Printf.printf "\n◇S_%d + ◇φ_1    -> claims Omega_%d (z = t + 2 - x - y = %d)\n" t
    (Wheels.z w3) (Wheels.z w3);
  let proposals = Array.init n (fun i -> 500 + i) in
  let c = Consensus.install sim3 ~omega:(Wheels.omega w3) ~proposals () in
  let _ = Sim.run ~stop_when:(fun () -> Consensus.all_correct_decided c) sim3 in
  List.iter
    (fun (pid, value, round, time) ->
      Printf.printf "  %s decided %d (round %d, t=%.1f)\n" (Pid.to_string pid) value round
        time)
    (Consensus.decisions c);
  Printf.printf "agreement on a single value: %b\n" (Consensus.agreement_holds c);
  Printf.printf
    "\nSo two detector classes, each individually too weak for consensus,\n\
     add up to exactly the consensus power — the paper's additivity result.\n"
