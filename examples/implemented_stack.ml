(* No oracle anywhere: the full stack from heartbeats to agreement.

   The library's oracles read the simulator's ground truth; this example
   uses none of that.  Processes exchange heartbeats over a partially
   synchronous network (delays bounded only after an unknown GST), adaptive
   timeouts build a ◇P suspector, the first-unsuspected rule derives an
   eventual leader (Ω), and the paper's agreement algorithm (Figure 3,
   k = 1) decides on top.  Crashes are discovered purely through silence.

   Run with:  dune exec examples/implemented_stack.exe *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core

let () =
  let n = 7 and t = 3 in
  let horizon = 300.0 in
  let sim = Sim.create ~horizon ~n ~t ~seed:11 () in
  (* p1 is dead on arrival: the naive "trust the smallest process" view is
     wrong from the first instant and only silence can reveal it. *)
  Sim.install_crashes sim [ (0, 0.0); (6, 45.0) ];

  (* The network: arbitrary delays before t=30, bounded by 2.0 after. *)
  let delay = Delay.Psync { gst = 30.0; bound = 2.0; pre_spread = 25.0 } in
  let hb = Impl.install sim ~period:1.0 ~initial_timeout:3.0 ~delay () in
  let suspector = Impl.suspector hb in
  let omega = Impl.omega hb ~z:1 in

  (* Sample what p2 believes every 20 time units. *)
  let rec sample time =
    if time <= 120.0 then
      Sim.at sim ~time (fun () ->
          if not (Sim.is_crashed sim 1) then
            Printf.printf "t=%-5.0f p2 suspects %-18s trusts %s\n" time
              (Pidset.to_string (suspector.Iface.suspected 1))
              (Pidset.to_string (omega.Iface.trusted 1));
          sample (time +. 20.0))
  in
  sample 0.0;

  let proposals = Array.init n (fun i -> 700 + i) in
  let h = Kset.install sim ~omega ~proposals () in
  let _ = Sim.run ~stop_when:(fun () -> Sim.now sim > 150.0 && Kset.all_correct_decided h) sim in

  print_newline ();
  List.iter
    (fun (pid, v, r, tm) ->
      Printf.printf "%s decided %d (round %d, t=%.1f)\n" (Pid.to_string pid) v r tm)
    (Kset.decisions h);
  let verdict = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h) in
  Printf.printf "\nconsensus: %s — %d heartbeats, adaptive timeout p2->p4 ended at %.2f\n"
    (Format.asprintf "%a" Check.pp_verdict verdict)
    (Impl.heartbeats_sent hb) (Impl.timeout_of hb 1 3);
  Printf.printf
    "p1 (dead on arrival) and p7 (crashed at 45) were detected by silence alone;\n\
     decisions waited for the timeouts to unmask p1, then followed the new leader.\n"
