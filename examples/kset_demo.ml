(* k-set agreement under crash storms.

   A sweep over the agreement degree k and the number of crashes, with a
   hostile Ω_k oracle (noisy until its stabilization time, slander after).
   Shows the shape of Figure 3's behaviour: decisions come right after
   oracle stabilization whatever the crash pressure, never more than k
   distinct values are decided, and the fast path (perfect oracle) decides
   in one round.

   Run with:  dune exec examples/kset_demo.exe *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let n = 9
let t = 4

let run ~k ~crashes ~gst ~seed =
  let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, gst) }) ~n ~t rng);
  let behavior =
    if gst = 0.0 then Behavior.perfect else Behavior.make ~noise:0.4 ~slander:0.3 ~gst ()
  in
  let omega, _ = Oracle.omega_z sim ~z:k ~behavior () in
  let proposals = Array.init n (fun i -> 1000 + i) in
  let h = Kset.install sim ~omega ~proposals () in
  let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  let distinct =
    List.length
      (List.sort_uniq Int.compare (List.map (fun (_, v, _, _) -> v) (Kset.decisions h)))
  in
  let verdict = Check.k_set_agreement sim ~k ~proposals ~decisions:(Kset.decisions h) in
  Printf.printf "%-3d %-8d %-6.0f  %-7d %-9d %-9.1f %-9d %-6s\n" k crashes gst
    (Kset.max_round h) distinct o.end_time (Kset.messages_sent h)
    (if Check.verdict_ok verdict then "OK" else "FAIL")

let () =
  Printf.printf "k-set agreement under crash storms (n=%d, t=%d)\n\n" n t;
  Printf.printf "%-3s %-8s %-6s  %-7s %-9s %-9s %-9s %-6s\n" "k" "crashes" "gst" "rounds"
    "distinct" "latency" "msgs" "k-set";
  List.iter
    (fun k ->
      List.iter
        (fun crashes ->
          run ~k ~crashes ~gst:50.0 ~seed:((k * 100) + crashes);
          run ~k ~crashes ~gst:0.0 ~seed:((k * 100) + crashes + 7))
        [ 0; 2; t ])
    [ 1; 2; 4 ];
  print_newline ();
  Printf.printf
    "Reading the shape: with a perfect oracle (gst=0) one round suffices even\n\
     under t crashes (zero degradation); with a hostile oracle, decisions land\n\
     just after stabilization, and 'distinct' never exceeds k.\n"
