(* A tour of the paper's reducibility lattice (Figure 1 plus the
   irreducibility theorems), queried through Core.Grid.

   Prints, for a chosen resilience t, the full matrix of "can the column
   class be built from the row class?" answers over one representative of
   each family per grid row, with the k-set agreement power of each class
   in the margin.

   Run with:  dune exec examples/lattice_tour.exe *)

open Setagree_core
open Grid

let n = 8
let t = 3

let () =
  let name c = Format.asprintf "%a" pp_cls c in
  Printf.printf
    "Reducibility over AS(n=%d, t=%d): row class -> column class\n\
     (Y = construction exists, n = impossible, ? = open; diagonal = identity)\n\n"
    n t;
  Format.printf "%a@." (pp_matrix ~n ~t) (row_representatives ~n ~t);
  (* A few cells narrated in full. *)
  List.iter
    (fun (from, into) ->
      match reducible ~n ~t ~from ~into with
      | Yes why | No why | Unknown why ->
          Printf.printf "%s -> %s: %s\n" (name from) (name into) why)
    [
      (ES t, Omega 2);
      (EPhi 1, Omega t);
      (Omega 1, ES n);
      (Omega 2, Phi 1);
      (Phi t, Perfect);
      (S 2, EPhi 1);
    ]
