(* Quickstart: consensus over a simulated asynchronous system.

   Five processes propose values; one crashes mid-run; an eventual-leader
   failure detector (Ω = Ω_1) stabilizes at virtual time 20; the paper's
   round-based algorithm (Figure 3 with k = 1) decides a single value.

   Run with:  dune exec examples/quickstart.exe *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let () =
  (* A system of n = 5 processes, at most t = 2 crashes, fully seeded:
     rerunning reproduces the exact same run. *)
  let sim = Sim.create ~horizon:1000.0 ~n:5 ~t:2 ~seed:2026 () in

  (* The adversary: p5 crashes at time 7. *)
  Sim.install_crashes sim [ (4, 7.0) ];

  (* The oracle: an Ω_1 (eventual leader) failure detector that behaves
     arbitrarily until time 20 and stabilizes afterwards. *)
  let omega, eventual_leader =
    Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst:20.0) ()
  in

  (* Everyone proposes a different value. *)
  let proposals = [| 101; 102; 103; 104; 105 |] in
  let h = Kset.install sim ~omega ~proposals () in

  Printf.printf "proposals: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int proposals)));
  Printf.printf "crash schedule: p5 at t=7; leader stabilizes at t=20 on %s\n\n"
    (Pidset.to_string eventual_leader);

  (* Run until every correct process has decided. *)
  let outcome = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in

  List.iter
    (fun (pid, value, round, time) ->
      Printf.printf "%s decided %d in round %d at t=%.1f\n" (Pid.to_string pid) value round
        time)
    (Kset.decisions h);

  let verdict =
    Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h)
  in
  Printf.printf "\nconsensus check: %s\n" (Format.asprintf "%a" Check.pp_verdict verdict);
  Printf.printf "run: %d events, ended at t=%.1f, %d point-to-point messages\n"
    outcome.events outcome.end_time (Kset.messages_sent h)
