(* Watching the two wheels turn.

   The two-wheels transformation (paper §4) builds Ω_z from ◇S_x + ◇φ_y.
   This demo samples the internal state every 10 time units: the lower
   wheel's (lx, X) pair and representatives, the upper wheel's (L, Y) pair,
   and the resulting trusted sets — so you can watch both rings advance
   under pre-stabilization noise and then lock onto the configuration of
   the paper's Figure 7 (X ⊆ Y, L ∩ X = {lx}).

   Run with:  dune exec examples/wheels_demo.exe *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let () =
  let n = 6 and t = 2 in
  let x = 2 and y = 1 in
  let gst = 30.0 in
  let horizon = 120.0 in
  let sim = Sim.create ~horizon ~n ~t ~seed:7 () in
  Sim.install_crashes sim [ (5, 8.0) ];
  let behavior = Behavior.stormy ~gst in
  let suspector, info = Oracle.es_x sim ~x ~behavior () in
  let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
  let w = Wheels.install sim ~suspector ~querier ~x ~y () in
  let omega = Wheels.omega w in

  Printf.printf
    "n=%d t=%d, ◇S_%d + ◇φ_%d -> Omega_%d; p6 crashes at 8; oracle gst=%.0f\n" n t x y
    (Wheels.z w) gst;
  Printf.printf "◇S scope Q=%s protects %s\n\n" (Pidset.to_string info.Oracle.scope)
    (Pid.to_string info.Oracle.protected);
  Printf.printf "%-6s  %-16s %-20s %-22s %s\n" "time" "lower (lx, X)" "repr (p1..p6)"
    "upper (L, Y)" "trusted p1";

  let sample () =
    let now = Sim.now sim in
    let lx, xs = Wheels_lower.current_pair (Wheels.lower w) 0 in
    let l, ys = Wheels_upper.current_pair (Wheels.upper w) 0 in
    let reprs =
      String.concat " "
        (List.init n (fun i ->
             if Sim.is_crashed sim i then "--" else Pid.to_string (Wheels_lower.repr (Wheels.lower w) i)))
    in
    Printf.printf "%-6.1f  (%s, %s)%s %-20s (%s, %s)%s %s\n" now (Pid.to_string lx)
      (Pidset.to_string xs)
      (String.make (max 0 (16 - 4 - String.length (Pidset.to_string xs))) ' ')
      reprs (Pidset.to_string l) (Pidset.to_string ys)
      (String.make (max 0 (22 - 6 - String.length (Pidset.to_string l) - String.length (Pidset.to_string ys))) ' ')
      (Pidset.to_string (omega.Iface.trusted 0))
  in
  let rec arm time =
    if time <= horizon then
      Sim.at sim ~time (fun () ->
          sample ();
          arm (time +. 10.0))
  in
  arm 0.0;
  let _ = Sim.run sim in
  Printf.printf
    "\nfinal: x_moves=%d l_moves=%d, last ring movement at t=%.1f, %d messages total\n"
    (Wheels_lower.moves_broadcast (Wheels.lower w))
    (Wheels_upper.moves_broadcast (Wheels.upper w))
    (Wheels.stabilized_since w) (Wheels.total_messages w);
  Printf.printf
    "the stabilized configuration matches Figure 7: X inside Y, L picks lx from X\n\
     plus all of Y \\ X, and trusted = L holds a correct process.\n"
