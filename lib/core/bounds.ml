let valid_x ~n ~x = 1 <= x && x <= n
let valid_y ~t ~y = 0 <= y && y <= t
let valid_z ~n ~z = 1 <= z && z <= n
let addition_possible ~t ~x ~y ~z = x + y + z >= t + 2
let z_of_addition ~t ~x ~y = max 1 (t + 2 - x - y)

let wheels_admissible ~n ~t ~x ~y =
  valid_x ~n ~x && valid_y ~t ~y && x + y <= t + 1 && t - y + 1 >= 1
  && t - y + 1 <= n

let upper_y_size ~t ~y = t - y + 1
let es_to_omega_possible ~t ~x ~z = addition_possible ~t ~x ~y:0 ~z
let phi_to_omega_possible ~t ~y ~z = addition_possible ~t ~x:1 ~y ~z
let omega_from_es ~t ~x = max 1 (t + 2 - x)
let omega_from_phi ~t ~y = max 1 (t + 1 - y)
let kset_with_omega ~n ~t ~z ~k = 2 * t < n && z <= k
let kset_from_es ~t ~x = max 1 (t - x + 2)
let kset_from_phi ~t ~y = max 1 (t - y + 1)

type row = { z : int; sx : int; phiy : int }

let grid_row ~t ~z = { z; sx = t - z + 2; phiy = t - z + 1 }
let grid ~t = List.init (t + 1) (fun i -> grid_row ~t ~z:(i + 1))
let strengthen_possible ~t ~x ~y = x + y >= t + 1
let psi_chain_length ~n ~z = n - z + 1
