(** The arithmetic of the paper: every parameter constraint, reduction
    formula and grid relation in one pure, heavily-tested module.

    Conventions: [n] processes, at most [t] crashes ([0 <= t < n]);
    scope [1 <= x <= n] for S_x / ◇S_x; query strength [0 <= y <= t] for
    φ_y / ◇φ_y / Ψ_y; leadership width [1 <= z <= n] for Ω_z;
    agreement degree [k >= 1].

    The OCR of the source report loses most formulas; the constraints here
    are re-derived from the prose and figures (see DESIGN.md §3). *)

(** {1 Parameter validity} *)

val valid_x : n:int -> x:int -> bool
val valid_y : t:int -> y:int -> bool
val valid_z : n:int -> z:int -> bool

(** {1 Additivity (Theorem 8 and Figure 2)} *)

val addition_possible : t:int -> x:int -> y:int -> z:int -> bool
(** ◇S_x + ◇φ_y → Ω_z is possible iff [x + y + z >= t + 2]. *)

val z_of_addition : t:int -> x:int -> y:int -> int
(** The strongest (smallest) z the two-wheels construction achieves:
    [z = t + 2 - x - y].  Meaningful when >= 1, i.e. [x + y <= t + 1]. *)

val wheels_admissible : n:int -> t:int -> x:int -> y:int -> bool
(** The two-wheels algorithm's own preconditions: valid x and y,
    [x + y <= t + 1] (so z >= 1), and [t - y + 1 >= 1] (upper ring sets
    non-empty). *)

val upper_y_size : t:int -> y:int -> int
(** |Y| in the upper wheel: [t - y + 1] — the smallest size in ◇φ_y's
    meaningful window. *)

(** {1 Single-class reductions (Corollaries 6 and 7)} *)

val es_to_omega_possible : t:int -> x:int -> z:int -> bool
(** ◇S_x → Ω_z iff [x + z >= t + 2] (y = 0 in Theorem 8). *)

val phi_to_omega_possible : t:int -> y:int -> z:int -> bool
(** ◇φ_y → Ω_z iff [y + z >= t + 1] (x = 1 in Theorem 8). *)

val omega_from_es : t:int -> x:int -> int
(** Best z from ◇S_x alone: [t + 2 - x] (clamped to >= 1). *)

val omega_from_phi : t:int -> y:int -> int
(** Best z from ◇φ_y alone: [t + 1 - y] (clamped to >= 1). *)

(** {1 k-set agreement solvability} *)

val kset_with_omega : n:int -> t:int -> z:int -> k:int -> bool
(** Theorem 5: k-set agreement solvable in AS_{n,t}[Ω_z] iff
    [t < n/2] and [z <= k]. *)

val kset_from_es : t:int -> x:int -> int
(** Weakest k solvable with ◇S_x (Herlihy–Penso): [k = t - x + 2], clamped
    to >= 1 (x = t + 1 or more already allows consensus). *)

val kset_from_phi : t:int -> y:int -> int
(** Weakest k solvable with ◇φ_y / Ψ_y: [k = t - y + 1], clamped. *)

(** {1 The grid (Figure 1)} *)

type row = { z : int; sx : int; phiy : int }
(** Row [z] of the grid: classes S_sx, ◇S_sx, Ω_z, φ_phiy, ◇φ_phiy all
    solve z-set agreement; [sx = t - z + 2], [phiy = t - z + 1]. *)

val grid_row : t:int -> z:int -> row
val grid : t:int -> row list
(** Rows z = 1 .. t + 1. *)

(** {1 Strengthening (Appendix B / Figure 9)} *)

val strengthen_possible : t:int -> x:int -> y:int -> bool
(** S_x + φ_y → S (and ◇ variants) iff [x + y >= t + 1] (the z = 1 boundary
    of Theorem 8 for the ◇ case). *)

(** {1 Fig. 8 (Appendix A)} *)

val psi_chain_length : n:int -> z:int -> int
(** Number of sets in the nested sequence Y[1..]: [n - z + 1]. *)
