open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_runner

(* ---- fault mixes ---- *)

let half n = List.init (n / 2) Fun.id

let mixes : (string * (n:int -> t:int -> Faults.t)) list =
  [
    ("none", fun ~n:_ ~t:_ -> Faults.none);
    ( "drop",
      fun ~n:_ ~t:_ ->
        {
          Faults.none with
          Faults.links = [ Faults.link ~drop:0.7 ~from:5.0 ~until:35.0 () ];
        } );
    ( "dup_reorder",
      fun ~n:_ ~t:_ ->
        {
          Faults.none with
          Faults.links =
            [ Faults.link ~dup:0.4 ~reorder:0.5 ~spread:4.0 ~from:0.0 ~until:40.0 () ];
        } );
    ( "inflate",
      fun ~n:_ ~t:_ ->
        {
          Faults.none with
          Faults.links = [ Faults.link ~inflate:4.0 ~from:0.0 ~until:40.0 () ];
        } );
    ( "partition",
      fun ~n ~t:_ ->
        {
          Faults.none with
          Faults.partitions =
            [ Faults.partition ~name:"halves" ~groups:[ half n ] ~from:5.0 ~heal:45.0 () ];
        } );
    ( "stalls",
      fun ~n ~t:_ ->
        {
          Faults.none with
          Faults.stalls =
            [
              Faults.stall ~pid:0 ~from:10.0 ~until:30.0;
              Faults.stall ~pid:(min 1 (n - 1)) ~from:15.0 ~until:40.0;
            ];
        } );
    ("rotating", fun ~n:_ ~t:_ -> { Faults.none with Faults.adversary = "rotating" });
    ("slander", fun ~n:_ ~t:_ -> { Faults.none with Faults.adversary = "slander" });
    ( "combo",
      fun ~n ~t ->
        {
          Faults.links = [ Faults.link ~drop:0.3 ~dup:0.2 ~from:0.0 ~until:30.0 () ];
          partitions =
            [ Faults.partition ~name:"late-split" ~groups:[ half n ] ~from:30.0 ~heal:50.0 () ];
          stalls = [ Faults.stall ~pid:(n - 1) ~from:10.0 ~until:25.0 ];
          crashes =
            (if t >= 1 then Crash.Exactly { crashes = 1; window = (0.0, 20.0) }
             else Crash.No_crashes);
          adversary = "late";
        } );
  ]

let mix_names = List.map fst mixes
let find_mix name = List.assoc_opt name mixes
let default_protocols = [ "kset"; "consensus_s"; "wheels" ]

(* ---- failures ---- *)

type kind = Safety | Liveness | Illegal

let kind_to_string = function
  | Safety -> "safety"
  | Liveness -> "liveness"
  | Illegal -> "illegal"

type failure = {
  f_protocol : string;
  f_mix : string;
  f_kind : kind;
  f_notes : string list;
  f_params : Protocol.params;
}

let minimize_failure pk (p : Protocol.params) ~kind =
  let fails spec =
    match Faults.legal ~n:p.Protocol.n ~t:p.Protocol.t spec with
    | Error _ -> false
    | Ok () -> (
        let r = Protocol.run pk { p with Protocol.faults = spec } in
        match kind with
        | Safety -> r.Protocol.rp_violations <> []
        | Liveness -> not (Check.verdict_ok r.Protocol.rp_verdict)
        | Illegal -> false)
  in
  let kept =
    Explore.ddmin
      ~test:(fun els -> fails (Faults.of_elements els))
      ~budget:40
      (Faults.elements p.Protocol.faults)
  in
  Faults.of_elements kept

let minimize_illegal ~n ~t spec =
  let illegal s = Result.is_error (Faults.legal ~n ~t s) in
  if not (illegal spec) then None
  else
    Some
      (Faults.of_elements
         (Explore.ddmin
            ~test:(fun els -> illegal (Faults.of_elements els))
            (Faults.elements spec)))

let reproduce f =
  let p = f.f_params in
  match f.f_kind with
  | Illegal -> (
      match Faults.legal ~n:p.Protocol.n ~t:p.Protocol.t p.Protocol.faults with
      | Error errs -> Some (true, errs)
      | Ok () -> Some (false, [ "spec is legal" ]))
  | (Safety | Liveness) as k -> (
      match Protocol.find f.f_protocol with
      | None -> None
      | Some pk ->
          let r = Protocol.run pk p in
          if k = Safety then
            Some (r.Protocol.rp_violations <> [], r.Protocol.rp_violations)
          else
            Some
              ( not (Check.verdict_ok r.Protocol.rp_verdict),
                r.Protocol.rp_verdict.Check.notes ))

(* ---- JSON ---- *)

let failure_core_json f =
  Json.Obj
    [
      ("protocol", Json.String f.f_protocol);
      ("mix", Json.String f.f_mix);
      ("seed", Json.Int f.f_params.Protocol.seed);
      ("kind", Json.String (kind_to_string f.f_kind));
      ("notes", Json.List (List.map (fun s -> Json.String s) f.f_notes));
      ("params", Json.Obj (Protocol.params_to_json f.f_params));
    ]

let failure_of_json = function
  | Json.Obj fields ->
      let str name d =
        match List.assoc_opt name fields with
        | Some (Json.String s) -> s
        | _ -> d
      in
      let notes =
        match List.assoc_opt "notes" fields with
        | Some (Json.List l) ->
            List.filter_map (function Json.String s -> Some s | _ -> None) l
        | _ -> []
      in
      let params =
        match List.assoc_opt "params" fields with
        | Some (Json.Obj p) -> Protocol.params_of_json p
        | _ -> Protocol.default
      in
      let kind =
        match str "kind" "safety" with
        | "liveness" -> Liveness
        | "illegal" -> Illegal
        | _ -> Safety
      in
      Some
        {
          f_protocol = str "protocol" "";
          f_mix = str "mix" "";
          f_kind = kind;
          f_notes = notes;
          f_params = params;
        }
  | _ -> None

let artifact = Filename.concat "_results" "chaos_failures.json"

let failure_to_json ~index f =
  match failure_core_json f with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "replay",
              Json.String
                (Printf.sprintf "dune exec bin/fdkit.exe -- replay --faults %s --index %d"
                   artifact index) );
          ])
  | j -> j

let write_failures ?(dir = "_results") fails =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ when Sys.file_exists dir -> ());
  let path = Filename.concat dir "chaos_failures.json" in
  Json.write_file path
    (Json.Obj
       (Stamp.fields ()
       @ [
           ( "failures",
             Json.List (List.mapi (fun i f -> failure_to_json ~index:i f) fails) );
         ]));
  path

let load_failures path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Json.of_string s with
    | Error e -> Error e
    | Ok j ->
        let l =
          match j with
          | Json.Obj fields -> (
              match List.assoc_opt "failures" fields with
              | Some (Json.List l) -> l
              | _ -> [])
          | Json.List l -> l
          | _ -> []
        in
        Ok (List.filter_map failure_of_json l)
  with Sys_error e -> Error e

(* ---- campaigns ---- *)

type outcome = {
  o_campaign : Runner.campaign;
  o_runs : int;
  o_safety : int;
  o_liveness : int;
  o_failures : failure list;
}

(* Widen the horizon so every built-in mix both heals and (for the
   adversary strategies) stabilizes well before the end of the run —
   liveness-after-heal is then assertable on every job. *)
let job_horizon (base : Protocol.params) faults =
  let heal = Faults.heal_time faults in
  let adv_gst =
    if faults.Faults.adversary = "" then base.Protocol.gst
    else
      let g =
        (Behavior.of_adversary faults.Faults.adversary ~gst:base.Protocol.gst)
          .Behavior.gst
      in
      if Float.is_finite g then g else 0.0
  in
  let b = if base.Protocol.horizon > 0.0 then base.Protocol.horizon else 400.0 in
  Float.max b (Float.max heal adv_gst +. 300.0)

(* Cache key for one chaos cell: everything the outcome depends on —
   the per-protocol code fingerprint, the job kind, and the fully
   instantiated params (the mix is baked into [p.faults], but the mix
   name is part of the label and params, so renames invalidate too). *)
let job_key ~fingerprint pname label (params : (string * Json.t) list) =
  Option.map
    (fun fp ->
      Runner.Cache.key
        ~parts:
          [
            string_of_int Stamp.schema_version;
            fp pname;
            "chaos";
            label;
            Json.to_string ~minify:true (Json.Obj params);
          ])
    fingerprint

let mk_job ?fingerprint pk pname mixname mk (base : Protocol.params) seed =
  let faults = mk ~n:base.Protocol.n ~t:base.Protocol.t in
  let p =
    { base with Protocol.seed; faults; horizon = job_horizon base faults }
  in
  let label = Printf.sprintf "%s/%s/seed=%d" pname mixname seed in
  let params = ("mix", Json.String mixname) :: Protocol.params_to_json p in
  Runner.job ~exp:"chaos" ~label ~params
    ?key:(job_key ~fingerprint pname label params)
    ~seed
    (fun () ->
      match Faults.legal ~n:p.Protocol.n ~t:p.Protocol.t faults with
      | Error errs ->
          (* An illegal spec never runs: catch it, shrink it to the
             offending atoms, and record it like any other failure. *)
          let spec =
            match minimize_illegal ~n:p.Protocol.n ~t:p.Protocol.t faults with
            | Some s -> s
            | None -> faults
          in
          let fail =
            {
              f_protocol = pname;
              f_mix = mixname;
              f_kind = Illegal;
              f_notes = errs;
              f_params = { p with Protocol.faults = spec };
            }
          in
          Runner.body ~notes:("illegal spec" :: errs)
            ~extra:(failure_core_json fail) false
      | Ok () ->
          let r = Protocol.run pk p in
          let safety_ok = r.Protocol.rp_violations = [] in
          let healed = Faults.heal_time faults +. 100.0 <= p.Protocol.horizon in
          let live_ok = Check.verdict_ok r.Protocol.rp_verdict in
          if safety_ok && ((not healed) || live_ok) then
            Runner.body ~metrics:r.Protocol.rp_metrics true
          else begin
            let kind = if not safety_ok then Safety else Liveness in
            let notes =
              if not safety_ok then r.Protocol.rp_violations
              else r.Protocol.rp_verdict.Check.notes
            in
            let spec = minimize_failure pk p ~kind in
            let fail =
              {
                f_protocol = pname;
                f_mix = mixname;
                f_kind = kind;
                f_notes = notes;
                f_params = { p with Protocol.faults = spec };
              }
            in
            Runner.body
              ~notes:(kind_to_string kind :: notes)
              ~metrics:r.Protocol.rp_metrics
              ~extra:(failure_core_json fail) false
          end)

let run ?jobs ?cache ?fingerprint ?on_progress ?on_telemetry
    ?telemetry_every_s ?stop
    ?(protocols = default_protocols) ?mix_filter ?(seeds = 8) ?base () =
  let base = match base with Some b -> b | None -> Protocol.default in
  let chosen =
    match mix_filter with
    | None -> mixes
    | Some names -> List.filter (fun (nm, _) -> List.mem nm names) mixes
  in
  let joblist =
    List.concat_map
      (fun pname ->
        match Protocol.find pname with
        | None -> []
        | Some pk ->
            List.concat_map
              (fun (mixname, mk) ->
                List.init seeds (fun i ->
                    mk_job ?fingerprint pk pname mixname mk base (i + 1)))
              chosen)
      protocols
  in
  let c = Runner.run ?jobs ?cache ?on_progress ?on_telemetry ?telemetry_every_s ?stop
      ~exp:"chaos" joblist in
  let fails =
    Array.to_list c.Runner.c_results
    |> List.filter_map (fun r -> failure_of_json r.Runner.r_extra)
  in
  {
    o_campaign = c;
    o_runs = Array.length c.Runner.c_results;
    o_safety = List.length (List.filter (fun f -> f.f_kind = Safety) fails);
    o_liveness = List.length (List.filter (fun f -> f.f_kind = Liveness) fails);
    o_failures = fails;
  }
