(** Chaos campaigns: sweep fault mixes × seeds over registered
    protocols, asserting safety on {e every} run and liveness on every
    run whose faults heal before the horizon.

    Each job of the sweep builds a {!Protocol.params} from a named
    {e fault mix} (a [Faults.t] template instantiated for the system
    size), runs the protocol, and checks two things:

    - {b safety always}: [rp_violations = []] no matter what the faults
      did — dropping, partitioning, stalling and adversarial oracles may
      delay decisions but must never produce contradictory ones;
    - {b liveness after heal}: when the spec's fault windows close
      before the virtual-time horizon (all built-in mixes do, and the
      campaign widens the horizon past {!Setagree_dsys.Faults.heal_time}),
      the full verdict — including termination — must hold.

    A failing run is minimized on the spot: {!Setagree_dsys.Explore.ddmin}
    drops fault atoms ({!Setagree_dsys.Faults.elements}) while the
    failure persists, and the shrunken spec is recorded as a replayable
    counterexample ([_results/chaos_failures.json], one [fdkit replay
    --faults ... --index i] command per record).  Deliberately illegal
    specs never run at all: {!Setagree_dsys.Faults.legal} rejects them
    and {!minimize_illegal} shrinks them to the offending atoms — same
    artifact, [kind = "illegal"]. *)

open Setagree_util
open Setagree_dsys
open Setagree_runner

(** {1 Fault mixes} *)

val mixes : (string * (n:int -> t:int -> Faults.t)) list
(** The built-in sweep dimensions: ["none"] (fault-free control),
    ["drop"], ["dup_reorder"], ["inflate"] (link faults), ["partition"]
    (half/half split with a heal), ["stalls"] (two frozen-then-resumed
    processes), ["rotating"] / ["slander"] (legal adversary oracles),
    and ["combo"] (link faults + partition + stall + a crash + the
    late-stabilizing adversary).  Every mix is legal and heals. *)

val mix_names : string list
val find_mix : string -> (n:int -> t:int -> Faults.t) option
val default_protocols : string list
(** [["kset"; "consensus_s"; "wheels"]]. *)

(** {1 Failures} *)

type kind = Safety | Liveness | Illegal

val kind_to_string : kind -> string

type failure = {
  f_protocol : string;
  f_mix : string;
  f_kind : kind;
  f_notes : string list;
  f_params : Protocol.params;
      (** the failing configuration; [f_params.faults] is already the
          ddmin-minimized spec *)
}

val minimize_failure : Protocol.packed -> Protocol.params -> kind:kind -> Faults.t
(** Shrink [params.faults] by re-running the protocol on sub-specs
    (atoms dropped) while the failure of the given kind persists.
    Candidates that stop being legal are never accepted. *)

val minimize_illegal : n:int -> t:int -> Faults.t -> Faults.t option
(** [Some shrunk] when the spec is illegal: the smallest atom subset
    {!Setagree_dsys.Faults.legal} still rejects.  [None] if the spec is
    legal (nothing to catch). *)

val reproduce : failure -> (bool * string list) option
(** Deterministically re-run a recorded failure: [Some (reproduced,
    notes)], or [None] when the protocol name is unknown.  [Illegal]
    records re-check legality instead of running. *)

(** {1 Campaigns} *)

type outcome = {
  o_campaign : Runner.campaign;
  o_runs : int;
  o_safety : int;  (** runs with safety violations (must be 0) *)
  o_liveness : int;  (** healed runs that failed to decide *)
  o_failures : failure list;  (** minimized, canonical job order *)
}

val run :
  ?jobs:int ->
  ?cache:Runner.Cache.t ->
  ?fingerprint:(string -> string) ->
  ?on_progress:(Runner.progress -> unit) ->
  ?on_telemetry:(Runner.telemetry -> unit) ->
  ?telemetry_every_s:float ->
  ?stop:(unit -> bool) ->
  ?protocols:string list ->
  ?mix_filter:string list ->
  ?seeds:int ->
  ?base:Protocol.params ->
  unit ->
  outcome
(** Sweep [protocols × mixes × seeds 1..seeds] ([seeds] default 8)
    through {!Runner.run}.  [base] (default {!Protocol.default}, i.e.
    two base crashes) supplies n, t, gst and sizing; each job overrides
    [seed], [faults] and widens [horizon] beyond the mix's heal time.
    Minimization happens inside the failing job, so the outcome is
    deterministic in [(protocols, mixes, seeds, base)] regardless of
    [jobs].

    With [fingerprint] (protocol name → code fingerprint, normally
    [Fingerprint.protocol]) every job gets a content-address, so
    [cache] can replay warm cells without executing; [on_progress] and
    [stop] pass through to {!Runner.run}. *)

(** {1 Artifacts} *)

val failure_to_json : index:int -> failure -> Json.t
(** Includes the ready-to-paste
    [fdkit replay --faults _results/chaos_failures.json --index i]
    command. *)

val write_failures : ?dir:string -> failure list -> string
(** Write [<dir>/chaos_failures.json] (always, even when empty — a
    previous run's counterexamples never linger) and return the path. *)

val load_failures : string -> (failure list, string) result
