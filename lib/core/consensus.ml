open Setagree_net
open Setagree_fd

type t = Kset.t

let install sim ~(omega : Iface.leader) ~proposals ?(delay = Delay.default)
    ?(step = 0.05) () =
  Kset.install sim ~omega ~proposals ~delay ~step ()

let decided = Kset.decided
let all_correct_decided = Kset.all_correct_decided
let decisions = Kset.decisions
let max_round = Kset.max_round

let agreement_holds t =
  let values =
    List.sort_uniq Int.compare (List.map (fun (_, v, _, _) -> v) (Kset.decisions t))
  in
  List.length values <= 1

let kset t = t
