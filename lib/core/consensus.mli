(** Consensus as the k = 1 specialization of the paper's algorithm.

    Ω_1 = Ω (the weakest failure detector for consensus with a correct
    majority), and Figure 3 with an Ω_1 input is exactly the Ω-based
    consensus algorithm the paper adapts (its reference [20]).  The
    headline of the paper's additivity result reads, at t >= 2:
    ◇S_t solves 2-set agreement but not consensus, ◇φ_1 solves t-set
    agreement but not (t-1)-set agreement — yet ◇S_t + ◇φ_1 → Ω_1 solves
    consensus ({!Setagree_core.Wheels} + this module; see
    examples/additivity_demo.ml). *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

val install :
  Sim.t ->
  omega:Iface.leader ->
  proposals:int array ->
  ?delay:Delay.t ->
  ?step:float ->
  unit ->
  t
(** The Ω source must belong to Ω_1 for the single-value guarantee. *)

val decided : t -> Pid.t -> (int * int) option
val all_correct_decided : t -> bool
val decisions : t -> (Pid.t * int * int * float) list
val max_round : t -> int

val agreement_holds : t -> bool
(** True iff at most one distinct value has been decided so far. *)

val kset : t -> Kset.t
(** The underlying engine. *)
