open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type msg =
  | Est of { r : int; v : int } (* coordinator's proposal for round r *)
  | Aux of { r : int; aux : int option }

type t = {
  sim : Sim.t;
  net : msg Net.t;
  rb : int Rbcast.t;
  decided_at : (int * int * float) option array;
  mutable decided_set : Pidset.t; (* pids with [decided_at <> None] *)
  round_of : int array;
  mutable max_round : int;
}

let decided t pid = Option.map (fun (v, r, _) -> (v, r)) t.decided_at.(pid)

(* Per-event stop condition: word-wise subset over shared pidsets. *)
let all_correct_decided t =
  Pidset.subset (Sim.correct_set t.sim) t.decided_set

let decisions t =
  let ds = ref [] in
  Array.iteri
    (fun pid -> function Some (v, r, tm) -> ds := (pid, v, r, tm) :: !ds | None -> ())
    t.decided_at;
  List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare a b) !ds

let max_round t = t.max_round
let messages_sent t = Net.sent_count t.net + Rbcast.underlying_sent t.rb

let install sim ~(suspector : Iface.suspector) ~proposals ?(delay = Delay.default) () =
  let n = Sim.n sim in
  let tb = Sim.t_bound sim in
  if 2 * tb >= n then invalid_arg "Consensus_s.install: requires t < n/2";
  if Array.length proposals <> n then invalid_arg "Consensus_s.install: bad proposals";
  let key_est r = 2 * r and key_aux r = (2 * r) + 1 in
  let classify = function
    | Est { r; _ } -> key_est r
    | Aux { r; _ } -> key_aux r
  in
  let net = Net.create sim ~tag:"cons_s" ~delay ~retain:false ~classify () in
  let rb = Rbcast.create sim ~tag:"cons_s.dec" ~delay () in
  let t =
    {
      sim;
      net;
      rb;
      decided_at = Array.make n None;
      decided_set = Pidset.empty;
      round_of = Array.make n 0;
      max_round = 0;
    }
  in
  Rbcast.on_deliver rb (fun pid (d : int Rbcast.delivery) ->
      if t.decided_at.(pid) = None then begin
        let round = t.round_of.(pid) in
        t.decided_at.(pid) <- Some (d.body, round, Sim.now sim);
        t.decided_set <- Pidset.add pid t.decided_set;
        Trace.record (Sim.trace sim) ~time:(Sim.now sim)
          (Trace.Decide { pid; value = d.body; round })
      end);
  let tr = Sim.trace sim in
  let body i () =
    let est = ref proposals.(i) in
    let r = ref 0 in
    let prev_s = ref None in
    (* Match form: this runs in every blocked-predicate evaluation, where
       [<> None] would be a polymorphic-compare call. *)
    let decided_i () =
      match t.decided_at.(i) with None -> false | Some _ -> true
    in
    while not (decided_i ()) do
      incr r;
      let round = !r in
      t.round_of.(i) <- round;
      if round > t.max_round then t.max_round <- round;
      if Trace.records_entries tr then begin
        Trace.begin_span tr ~time:(Sim.now sim) (Trace.Round { pid = i; round });
        (* Suspector outputs are pure functions of virtual time, so this
           extra read is a pure trace write — it cannot perturb the run. *)
        let s_i = suspector.Iface.suspected i in
        if not (match !prev_s with Some p -> Pidset.equal p s_i | None -> false)
        then
          Trace.record tr ~time:(Sim.now sim)
            (Trace.Fd_change
               { pid = i; kind = "es"; value = Pidset.to_string s_i });
        prev_s := Some s_i
      end;
      let coord = (round - 1) mod n in
      (* Phase 1: the coordinator pushes its estimate; everyone adopts it
         as aux unless the coordinator becomes suspect first. *)
      if i = coord then Net.broadcast net ~src:i (Est { r = round; v = !est });
      (* Re-evaluated per event while polling: fold the stored envelope
         list in place (no [keyed_envs] copy; the coordinator broadcasts
         at most one Est per round, so order is irrelevant). *)
      let est_from_coord () =
        Net.keyed_fold net i (key_est round) ~init:None
          ~f:(fun acc (e : msg Net.envelope) ->
            match acc with
            | Some _ -> acc
            | None -> (
                match e.payload with
                | Est { v; _ } when e.src = coord -> Some v
                | Est _ | Aux _ -> None))
      in
      (* Reads the suspector's output (clock-derived): poll cadence. *)
      Sim.Cond.await
        [ Sim.Cond.poll sim ]
        (fun () ->
          decided_i ()
          || Option.is_some (est_from_coord ())
          || Pidset.mem coord (suspector.Iface.suspected i));
      if not (decided_i ()) then begin
        let aux = est_from_coord () in
        (* Phase 2: quorum exchange of aux values.  Any two (n-t)-quorums
           intersect (t < n/2), which is what makes a decision in this
           round sticky in all later rounds. *)
        Net.broadcast net ~src:i (Aux { r = round; aux });
        (* Quorum wait: woken only at the AUX threshold crossing or by the
           R-delivery that decides i. *)
        Sim.Cond.await
          [ Net.quorum_cond net i ~key:(key_aux round) ~q:(n - tb); Rbcast.cond rb i ]
          (fun () ->
            decided_i ()
            || Net.keyed_nsenders net i (key_aux round) >= n - tb);
        if not (decided_i ()) then begin
          let saw_bot = ref false in
          let raw =
            Net.keyed_fold net i (key_aux round) ~init:[]
              ~f:(fun acc (e : msg Net.envelope) ->
                match e.payload with
                | Aux { aux = Some v; _ } -> v :: acc
                | Aux { aux = None; _ } ->
                    saw_bot := true;
                    acc
                | Est _ -> assert false)
          in
          let vals = List.sort_uniq Int.compare raw in
          match (vals, !saw_bot) with
          | [ v ], false -> Rbcast.broadcast rb ~src:i v
          | v :: _, _ -> est := v
          | [], _ -> ()
        end
      end;
      (* Round r's aggregates are dead once the loop advances: retire them
         so the live heap stays bounded by the round window. *)
      Net.keyed_drop net i (key_est round);
      Net.keyed_drop net i (key_aux round);
      if Trace.records_entries tr then
        Trace.end_span tr ~time:(Sim.now sim) (Trace.Round { pid = i; round })
    done
  in
  for i = 0 to n - 1 do
    Sim.spawn sim ~pid:i (body i)
  done;
  Sim.ticker sim ~every:1.0;
  t
