(** ◇S-based consensus with a rotating coordinator — the classic algorithm
    family the paper builds on (its references [18] Mostéfaoui-Raynal and
    [24] Schiper; same round skeleton as Chandra-Toueg), included as the
    baseline the Ω-based route is compared against (experiment E12).

    Round r (coordinator c = (r-1) mod n):
    + the coordinator broadcasts its estimate; every process waits until
      it receives it {e or} its ◇S module suspects c, and sets [aux] to
      the value or ⊥;
    + everyone exchanges [aux]; on n-t replies: a process seeing a single
      value v and no ⊥ reliably broadcasts DECIDE(v); a process seeing v
      and ⊥ adopts v; a process seeing only ⊥ keeps its estimate.

    Quorum intersection (t < n/2) makes a round-r decision sticky in
    every later round; eventual weak accuracy makes the round of the
    never-suspected correct coordinator decide.

    Contrast with {!Kset} at k = 1 (the Ω-based route): this algorithm
    needs full-scope ◇S = ◇S_n, decides in the round where the rotation
    reaches a stable leader (up to n rounds after stabilization), while
    the Ω-based algorithm lets the detector itself name the leader. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

val install :
  Sim.t ->
  suspector:Iface.suspector ->
  proposals:int array ->
  ?delay:Delay.t ->
  unit ->
  t
(** The suspector must belong to ◇S (= ◇S_n); requires t < n/2. *)

val decided : t -> Pid.t -> (int * int) option
val all_correct_decided : t -> bool
val decisions : t -> (Pid.t * int * int * float) list
val max_round : t -> int
val messages_sent : t -> int
