open Setagree_util
open Setagree_dsys
open Setagree_runner

type bounds = {
  depth : int;
  delays : int;
  walks : int;
  p_deviate : float;
  p_crash : float;
  max_runs_per_job : int;
  walk_batch : int;
  shrink_budget : int;
}

let default_bounds =
  {
    depth = 24;
    delays = 2;
    walks = 0;
    p_deviate = 0.25;
    p_crash = 0.05;
    max_runs_per_job = 400;
    walk_batch = 8;
    shrink_budget = 200;
  }

let bounds_to_json b =
  [
    ("depth", Json.Int b.depth);
    ("delays", Json.Int b.delays);
    ("walks", Json.Int b.walks);
    ("p_deviate", Json.Float b.p_deviate);
    ("p_crash", Json.Float b.p_crash);
    ("max_runs_per_job", Json.Int b.max_runs_per_job);
    ("walk_batch", Json.Int b.walk_batch);
    ("shrink_budget", Json.Int b.shrink_budget);
  ]

let bounds_of_json fields =
  let geti name d =
    match List.assoc_opt name fields with Some (Json.Int i) -> i | _ -> d
  in
  let getf name d =
    match Option.bind (List.assoc_opt name fields) Json.to_float_opt with
    | Some f -> f
    | None -> d
  in
  let d = default_bounds in
  {
    depth = geti "depth" d.depth;
    delays = geti "delays" d.delays;
    walks = geti "walks" d.walks;
    p_deviate = getf "p_deviate" d.p_deviate;
    p_crash = getf "p_crash" d.p_crash;
    max_runs_per_job = geti "max_runs_per_job" d.max_runs_per_job;
    walk_batch = geti "walk_batch" d.walk_batch;
    shrink_budget = geti "shrink_budget" d.shrink_budget;
  }

let schedule_of ~protocol ~(p : Protocol.params) (choices, notes) =
  {
    Schedule.protocol;
    params = Protocol.params_to_json p;
    crashes = p.crashes;
    choices;
    violation = notes;
  }

let jobs ?fingerprint ~protocol (p : Protocol.params) bounds =
  let pk =
    match Protocol.find protocol with
    | Some pk -> pk
    | None -> invalid_arg ("Explorer.jobs: unknown protocol " ^ protocol)
  in
  let make = Protocol.explore_make pk p in
  (* One content-address per subtree job: protocol fingerprint + params
     + bounds + the job's own label (which pins the subtree). *)
  let job_key label =
    Option.map
      (fun fp ->
        Runner.Cache.key
          ~parts:
            [
              string_of_int Stamp.schema_version;
              fp protocol;
              "explore";
              label;
              Json.to_string ~minify:true (Json.Obj (Protocol.params_to_json p));
              Json.to_string ~minify:true (Json.Obj (bounds_to_json bounds));
            ])
      fingerprint
  in
  (* Sequential probe: one default run to learn which of the first
     [depth] choice points have (unpruned) alternatives.  Each point with
     alternatives becomes one job owning the subtree of executions whose
     FIRST deviation is at that point — subtrees are disjoint, and the
     canonical job order (base, then points ascending, then walk batches)
     makes the merged output independent of the domain count. *)
  let probe_stats = Explore.new_stats () in
  let base = Explore.default_exec ~make ~stats:probe_stats ~depth:bounds.depth in
  let npoints = Array.length base.Explore.ex_options in
  let mk_job label body =
    Runner.job ~exp:"explore" ~label ~seed:p.Protocol.seed
      ~params:(Protocol.params_to_json p) ?key:(job_key label)
      (fun () ->
        let stats = Explore.new_stats () in
        let found = body stats in
        let ces =
          List.map
            (fun fv ->
              schedule_of ~protocol ~p
                (Explore.shrink ~make ~stats ~budget:bounds.shrink_budget fv))
            found
        in
        Runner.body
          ~notes:
            (List.sort_uniq compare
               (List.concat_map (fun (s : Schedule.t) -> s.Schedule.violation) ces))
          ~metrics:(Explore.stats_metrics stats)
          ~extra:(Json.List (List.map Schedule.to_json ces))
          true)
  in
  let base_job =
    mk_job (protocol ^ "/base") (fun stats ->
        let e = Explore.default_exec ~make ~stats ~depth:0 in
        if e.Explore.ex_violation <> [] then begin
          stats.Explore.violations <- stats.Explore.violations + 1;
          [ ([], e.Explore.ex_violation) ]
        end
        else [])
  in
  let point_jobs =
    List.init npoints Fun.id
    |> List.filter_map (fun q ->
           if Explore.alternatives_at probe_stats base q = [] then None
           else
             Some
               (mk_job
                  (Printf.sprintf "%s/point=%d" protocol q)
                  (fun stats ->
                    (* Self-contained: re-derive the base execution so the
                       job is re-runnable on any domain in any order. *)
                    let b = Explore.default_exec ~make ~stats ~depth:bounds.depth in
                    let roots = Explore.alternatives_at stats b q in
                    Explore.dfs ~make ~stats ~depth:bounds.depth
                      ~delays:bounds.delays ~max_runs:bounds.max_runs_per_job
                      roots)))
  in
  let nbatches = (bounds.walks + bounds.walk_batch - 1) / bounds.walk_batch in
  let walk_jobs =
    List.init nbatches (fun b ->
        let lo = (b * bounds.walk_batch) + 1 in
        let hi = min bounds.walks ((b + 1) * bounds.walk_batch) in
        mk_job
          (Printf.sprintf "%s/walks=%d-%d" protocol lo hi)
          (fun stats ->
            List.concat
              (List.init
                 (hi - lo + 1)
                 (fun i ->
                   let e =
                     Explore.random_walk ~make ~seed:(lo + i)
                       ~p_deviate:bounds.p_deviate ~p_crash:bounds.p_crash ()
                   in
                   stats.Explore.runs <- stats.Explore.runs + 1;
                   stats.Explore.points <- stats.Explore.points + e.Explore.ex_points;
                   if e.Explore.ex_violation <> [] then begin
                     stats.Explore.violations <- stats.Explore.violations + 1;
                     [ (e.Explore.ex_choices, e.Explore.ex_violation) ]
                   end
                   else []))))
  in
  base_job :: (point_jobs @ walk_jobs)

let counterexamples c =
  let seen = Hashtbl.create 16 in
  Array.to_list c.Runner.c_results
  |> List.concat_map (fun r ->
         match r.Runner.r_extra with Json.List l -> l | _ -> [])
  |> List.filter_map (fun j ->
         let key = Json.to_string ~minify:true j in
         if Hashtbl.mem seen key then None
         else begin
           Hashtbl.add seen key ();
           match Schedule.of_json j with Ok s -> Some s | Error _ -> None
         end)

type outcome = { o_campaign : Runner.campaign; o_ces : Schedule.t list }

let explore ?jobs:j ?cache ?fingerprint ?on_progress ?on_telemetry
    ?telemetry_every_s ?stop ~protocol p bounds =
  let jl = jobs ?fingerprint ~protocol p bounds in
  let c =
    Runner.run ?jobs:j ?cache ?on_progress ?on_telemetry ?telemetry_every_s
      ?stop ~exp:"explore" jl
  in
  { o_campaign = c; o_ces = counterexamples c }

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()

(* No timing fields: this artifact must be byte-identical across -j N. *)
let write_counterexamples ?(dir = "_results") ~protocol ces =
  ensure_dir dir;
  let path = Filename.concat dir "counterexamples.json" in
  Json.write_file path
    (Json.Obj
       (Stamp.fields ()
       @ [
           ("protocol", Json.String protocol);
           ("count", Json.Int (List.length ces));
           ("counterexamples", Json.List (List.map Schedule.to_json ces));
         ]));
  path

let load_counterexamples path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | Error msg -> Error msg
      | Ok j -> (
          match Json.member "counterexamples" j with
          | Some (Json.List l) ->
              Ok
                (List.filter_map
                   (fun cj ->
                     match Schedule.of_json cj with Ok s -> Some s | Error _ -> None)
                   l)
          | Some _ -> Error "counterexamples: expected a list"
          | None -> (
              (* Also accept a bare schedule file. *)
              match Schedule.of_json j with Ok s -> Ok [ s ] | Error e -> Error e)))

let replay (s : Schedule.t) =
  match Protocol.find s.Schedule.protocol with
  | None -> Error ("replay: unknown protocol " ^ s.Schedule.protocol)
  | Some pk ->
      let p =
        { (Protocol.params_of_json s.Schedule.params) with crashes = s.Schedule.crashes }
      in
      let make = Protocol.explore_make pk p in
      let e = Explore.run_schedule ~make s.Schedule.choices in
      Ok (e, e.Explore.ex_violation = s.Schedule.violation)
