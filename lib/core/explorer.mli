(** Campaign-shaped schedule exploration.

    Wraps {!Explore} (the protocol-blind search kernel) and {!Protocol}
    (the registry) into {!Setagree_runner.Runner} jobs so an exploration
    shards across domains with the engine's determinism contract:

    - the search frontier is split by {e first-deviation point} — one job
      per choice point of the default execution that has unpruned
      alternatives, plus one job for the all-defaults run and one per
      batch of random walks.  Subtrees are disjoint and each job is
      self-contained (it re-derives its roots from a fresh instance), so
      jobs run on any domain in any order;
    - jobs are submitted in canonical order (base, points ascending, walk
      batches) and results merge in that order, so [-j 1] and [-j N]
      produce identical signatures and identical counterexample lists;
    - every violating execution is shrunk in-job (delta debugging) and
      shipped as a serialized {!Schedule.t} in the result's [extra]
      payload — no timing, interleaving-independent. *)

open Setagree_dsys
open Setagree_runner

type bounds = {
  depth : int;  (** choice points eligible for branching per run *)
  delays : int;  (** max deviations from FIFO per execution *)
  walks : int;  (** random walks (0 = DFS only) *)
  p_deviate : float;  (** per-point reorder probability (walks) *)
  p_crash : float;  (** per-point crash probability (walks) *)
  max_runs_per_job : int;  (** DFS execution budget per point job *)
  walk_batch : int;  (** walks per job *)
  shrink_budget : int;  (** shrink trial runs per counterexample *)
}

val default_bounds : bounds

val bounds_to_json : bounds -> (string * Setagree_util.Json.t) list
(** Fixed field order — the canonical form feeds exploration cache
    keys and [Job] specs. *)

val bounds_of_json : (string * Setagree_util.Json.t) list -> bounds
(** Tolerant inverse: missing/ill-typed fields fall back to
    {!default_bounds}. *)

val schedule_of :
  protocol:string ->
  p:Protocol.params ->
  Schedule.choice list * string list ->
  Schedule.t

val jobs :
  ?fingerprint:(string -> string) ->
  protocol:string ->
  Protocol.params ->
  bounds ->
  Runner.job list
(** The canonical job list (see above).  Runs one sequential probe
    execution to discover branchable points.  Raises [Invalid_argument]
    on an unknown protocol name.  With [fingerprint] (normally
    [Fingerprint.protocol]) each job gets a result-cache key covering
    the protocol fingerprint, params, bounds and subtree label. *)

val counterexamples : Runner.campaign -> Schedule.t list
(** All counterexamples of the campaign, in canonical result order,
    deduplicated by serialized content. *)

type outcome = { o_campaign : Runner.campaign; o_ces : Schedule.t list }

val explore :
  ?jobs:int ->
  ?cache:Runner.Cache.t ->
  ?fingerprint:(string -> string) ->
  ?on_progress:(Runner.progress -> unit) ->
  ?on_telemetry:(Runner.telemetry -> unit) ->
  ?telemetry_every_s:float ->
  ?stop:(unit -> bool) ->
  protocol:string ->
  Protocol.params ->
  bounds ->
  outcome
(** [jobs ∘ Runner.run ∘ counterexamples].  The campaign is recorded in
    the runner's triage sink under experiment name ["explore"]; cache,
    progress and cancellation options pass through to {!Runner.run}. *)

val write_counterexamples :
  ?dir:string -> protocol:string -> Schedule.t list -> string
(** Write [<dir>/counterexamples.json] (default [_results]) and return
    the path.  The artifact carries no timing, so it is byte-identical
    across worker counts. *)

val load_counterexamples : string -> (Schedule.t list, string) result
(** Read a [counterexamples.json] artifact {e or} a bare schedule file
    (a single [Schedule.to_json] object). *)

val replay : Schedule.t -> (Explore.exec * bool, string) result
(** Re-execute a schedule: protocol from the registry, params from the
    schedule (its crash spec wins), choices replayed verbatim.  The
    boolean is [true] iff the replay exhibits exactly the recorded
    violation notes. *)
