(* Code fingerprints for artifact stamping and cache keys.

   Two granularities:

   - [whole ()]  — one digest over every library source file; installed
     into Util.Stamp at startup so all artifacts record which build of
     the code produced them.

   - [protocol p] — digest over the shared substrate (sim, net, fd,
     runner, checker, fault machinery) plus the source files specific
     to protocol [p].  The result cache keys on this, so editing
     kset.ml invalidates kset entries but leaves wheels/consensus_s
     entries warm, while editing sim.ml invalidates everything.

   Source files are found by walking up from the executable (and then
   the cwd) to the nearest dune-project.  Under dune this lands in
   _build/default, where sources are copied, so fingerprints work from
   installed test/bench binaries too.  If no source tree is found we
   fall back to digesting the executable itself — coarser (every
   rebuild invalidates) but never wrong. *)

let dune_project = "dune-project"

let find_root_from start =
  let rec up dir n =
    if n > 12 then None
    else if Sys.file_exists (Filename.concat dir dune_project) then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up start 0

let root_cache = ref None

let root () =
  match !root_cache with
  | Some r -> r
  | None ->
      let exe_dir =
        try Filename.dirname (Unix.realpath Sys.executable_name)
        with Unix.Unix_error _ | Sys_error _ ->
          Filename.dirname Sys.executable_name
      in
      let r =
        match find_root_from exe_dir with
        | Some _ as r -> r
        | None -> find_root_from (Sys.getcwd ())
      in
      root_cache := Some r;
      r

(* Protocol-specific sources, relative to the repo root.  Everything
   else under lib/ (except lib/rt, whose wall-clock backend is never
   cached) is shared substrate. *)
let protocol_files =
  [
    ("kset", [ "lib/core/kset.ml" ]);
    ( "consensus_s",
      [ "lib/core/consensus_s.ml"; "lib/core/consensus.ml"; "lib/core/strengthen.ml" ] );
    ( "wheels",
      [ "lib/core/wheels.ml"; "lib/core/wheels_upper.ml"; "lib/core/wheels_lower.ml" ] );
    ("psi", [ "lib/core/psi_to_omega.ml" ]);
    ("reduce", [ "lib/core/reduce.ml" ]);
  ]

let all_protocol_files = List.concat_map snd protocol_files

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec walk root rel acc =
  let dir = if rel = "" then root else Filename.concat root rel in
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc name ->
          let rel' = if rel = "" then name else Filename.concat rel name in
          let path = Filename.concat root rel' in
          if Sys.is_directory path then
            if rel = "" && name = "rt" then acc else walk root rel' acc
          else if is_source name then rel' :: acc
          else acc)
        acc entries

let lib_sources root =
  walk (Filename.concat root "lib") "" [] |> List.map (fun rel -> "lib/" ^ rel)
  |> List.sort String.compare

let digest_files root rels =
  let parts =
    List.filter_map
      (fun rel ->
        let path = Filename.concat root rel in
        match Digest.file path with
        | d -> Some (rel ^ "=" ^ Digest.to_hex d)
        | exception Sys_error _ -> None)
      rels
  in
  Digest.to_hex (Digest.string (String.concat "\n" parts))

let fallback () =
  match Digest.file Sys.executable_name with
  | d -> "exe:" ^ Digest.to_hex d
  | exception Sys_error _ -> "unstamped"

let memo : (string, string) Hashtbl.t = Hashtbl.create 8

let memoized name compute =
  match Hashtbl.find_opt memo name with
  | Some v -> v
  | None ->
      let v = compute () in
      Hashtbl.add memo name v;
      v

let whole () =
  memoized "//whole" (fun () ->
      match root () with
      | None -> fallback ()
      | Some root -> digest_files root (lib_sources root))

let shared_sources root =
  List.filter (fun rel -> not (List.mem rel all_protocol_files)) (lib_sources root)

let protocol name =
  memoized name (fun () ->
      match root () with
      | None -> fallback ()
      | Some root ->
          let own =
            match List.assoc_opt name protocol_files with
            | Some files -> files
            | None -> []
          in
          digest_files root (shared_sources root @ own))

let install () = Setagree_util.Stamp.set_fingerprint (whole ())
