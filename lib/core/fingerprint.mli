(** Code fingerprints for artifact stamping and result-cache keys.

    Digests are MD5 over the (path, content-digest) pairs of library
    source files, located by walking up from the executable to the
    nearest [dune-project] (which under dune is [_build/default], where
    sources are copied).  When no source tree is reachable, falls back
    to a digest of the executable itself — coarser, never wrong. *)

val whole : unit -> string
(** One digest over every [lib/] source file (except [lib/rt], whose
    wall-clock backend is never cached).  Memoized. *)

val protocol : string -> string
(** Digest over the shared substrate plus the named protocol's own
    source files ([kset] → kset.ml; [consensus_s] → consensus_s.ml,
    consensus.ml, strengthen.ml; [wheels] → wheels{,_upper,_lower}.ml;
    [psi] → psi_to_omega.ml; [reduce] → reduce.ml) — so editing one
    protocol invalidates exactly its cache entries.  Unknown names
    digest the shared substrate alone.  Memoized per name. *)

val install : unit -> unit
(** [Stamp.set_fingerprint (whole ())] — call once at process start
    (fdkit main, bench main) so artifacts are stamped. *)
