type cls =
  | S of int
  | ES of int
  | Omega of int
  | Phi of int
  | EPhi of int
  | Psi of int
  | Perfect
  | EPerfect

type verdict = Yes of string | No of string | Unknown of string

let pp_cls fmt = function
  | S x -> Format.fprintf fmt "S_%d" x
  | ES x -> Format.fprintf fmt "◇S_%d" x
  | Omega z -> Format.fprintf fmt "Ω_%d" z
  | Phi y -> Format.fprintf fmt "φ_%d" y
  | EPhi y -> Format.fprintf fmt "◇φ_%d" y
  | Psi y -> Format.fprintf fmt "Ψ_%d" y
  | Perfect -> Format.fprintf fmt "P"
  | EPerfect -> Format.fprintf fmt "◇P"

let parse_cls s =
  let s = String.lowercase_ascii (String.trim s) in
  let num prefix =
    let l = String.length prefix in
    if String.length s > l && String.sub s 0 l = prefix then
      int_of_string_opt (String.sub s l (String.length s - l))
    else None
  in
  match s with
  | "p" -> Some Perfect
  | "ep" -> Some EPerfect
  | _ -> (
      (* Longest prefixes first: "ephi" before "es", "psi" before "p". *)
      match num "ephi" with
      | Some y -> Some (EPhi y)
      | None -> (
          match num "psi" with
          | Some y -> Some (Psi y)
          | None -> (
              match num "phi" with
              | Some y -> Some (Phi y)
              | None -> (
                  match num "es" with
                  | Some x -> Some (ES x)
                  | None -> (
                      match num "omega" with
                      | Some z -> Some (Omega z)
                      | None -> (
                          match num "s" with Some x -> Some (S x) | None -> None))))))

let valid ~n ~t = function
  | S x | ES x -> 1 <= x && x <= n
  | Omega z -> 1 <= z && z <= n
  | Phi y | EPhi y | Psi y -> 0 <= y && y <= t
  | Perfect | EPerfect -> true

(* The degenerate corners of the grid: classes a process can implement with
   no information at all (suspect everyone else / trust the first t+1
   processes / answer queries by size alone). *)
let free ~n:_ ~t = function
  | S 1 | ES 1 -> true
  | Phi 0 | EPhi 0 | Psi 0 -> true
  | Omega z -> z >= t + 1
  | S _ | ES _ | Phi _ | EPhi _ | Psi _ | Perfect | EPerfect -> false

let reducible ~n ~t ~from ~into =
  if not (valid ~n ~t from) then invalid_arg "Grid.reducible: invalid source class";
  if not (valid ~n ~t into) then invalid_arg "Grid.reducible: invalid target class";
  if free ~n ~t into then Yes "target is information-free (degenerate grid corner)"
  else
    match (from, into) with
    (* --- identity / within-family inclusions --- *)
    | Perfect, Perfect | EPerfect, EPerfect -> Yes "identity"
    | Perfect, EPerfect -> Yes "inclusion: perpetual implies eventual"
    | EPerfect, Perfect -> No "a perpetual class cannot be built from an eventual one"
    | S x, S x' ->
        if x' <= x then Yes "inclusion: smaller scope is weaker"
        else if x >= t + 1 then
          Unknown
            "scope >= t+1 widens to ◇S_n through Omega_1, but whether the perpetual \
             accuracy survives is not settled"
        else No "Herlihy-Penso: widening the scope would beat the k-set lower bound"
    | S x, ES x' | ES x, ES x' ->
        if x' <= x then Yes "inclusion: smaller scope is weaker"
        else if x >= t + 1 then
          Yes "scope >= t+1 already solves consensus: route through Omega_1 ≃ ◇S_n"
        else No "Herlihy-Penso: widening the scope would beat the k-set lower bound"
    | ES _, S _ -> No "a perpetual class cannot be built from an eventual one"
    | Phi y, Phi y' | Phi y, EPhi y' | EPhi y, EPhi y' | Phi y, Psi y' | Psi y, Psi y' ->
        if y' <= y then Yes "inclusion: wider triviality band is weaker (Reduce.weaken_phi)"
        else No "query strength cannot be increased within the phi family alone"
    | EPhi _, Phi _ | EPhi _, Psi _ ->
        No "a perpetual class cannot be built from an eventual one"
    | Psi _, Phi _ | Psi _, EPhi _ ->
        Unknown
          "the paper does not settle whether nested-query power yields unrestricted \
           queries"
    (* --- to Omega --- *)
    | S x, Omega z | ES x, Omega z ->
        if x + z >= t + 2 then
          Yes "two wheels with y = 0 (Corollary 7; Theorem 8 sufficiency)"
        else No "Theorem 8 necessity: requires x + 0 + z >= t + 2"
    | Phi y, Omega z | EPhi y, Omega z | Psi y, Omega z ->
        if y + z >= t + 1 then
          Yes "two wheels with x = 1, or the Figure-8 chain for Psi (Corollary 6)"
        else No "Theorem 8 necessity at x = 1: requires 1 + y + z >= t + 2"
    | Perfect, Omega _ | EPerfect, Omega _ ->
        Yes "trust the smallest unsuspected process"
    (* --- from Omega --- *)
    | Omega z, Omega z' ->
        if z' >= z then Yes "inclusion: wider leadership is weaker"
        else
          No
            "Omega_z solves no better than z-set agreement (Theorem 5), Omega_{z'} \
             would"
    | Omega 1, ES _ -> Yes "suspect everybody but the leader (Reduce.es_from_omega)"
    | Omega _, ES _ ->
        No
          "an Omega_z history (z >= 2) is compatible with every crash pattern \
           (Theorem 12): strong completeness is unobtainable"
    | Omega _, S _ -> No "a perpetual class cannot be built from an eventual one"
    | Omega _, (Phi _ | EPhi _ | Psi _) ->
        No
          "Omega_z reveals nothing about which processes crashed (Theorem 12): \
           region-death queries are unanswerable"
    | Omega _, (Perfect | EPerfect) ->
        No "Omega_z reveals nothing about which processes crashed (Theorem 12)"
    (* --- suspectors to the phi family and P --- *)
    | (S _ | ES _), (Phi _ | EPhi _ | Psi _) ->
        No
          "Theorem 10: a region can be silent-but-alive with unchanged suspector \
           output, so query safety or liveness must fail"
    | (S _ | ES _), (Perfect | EPerfect) ->
        No
          "suspectors admit histories with permanent false suspicions of correct \
           processes; P and ◇P forbid them"
    (* --- phi family to suspectors and P --- *)
    | Phi y, S x | Phi y, ES x ->
        if y = t then Yes "phi_t ≃ P (query singletons; Reduce.p_from_phi_t)"
        else if x = 1 then Yes "scope-1 accuracy is free"
        else No "Theorem 11: below strength t the phi family caps scope at 1"
    | EPhi _, S _ -> No "a perpetual class cannot be built from an eventual one"
    | EPhi y, ES x ->
        if y = t then Yes "◇phi_t ≃ ◇P (query singletons)"
        else if x = 1 then Yes "scope-1 accuracy is free"
        else No "Theorem 11: below strength t the phi family caps scope at 1"
    | Psi y, (S x | ES x) ->
        if x = 1 then Yes "scope-1 accuracy is free"
        else if y = t then
          Unknown
            "Psi_t cannot query incomparable singletons, so the phi_t ≃ P route is \
             unavailable; the paper leaves this cell open"
        else No "Theorem 11: below strength t the phi family caps scope at 1"
    | Phi y, Perfect ->
        if y = t then Yes "phi_t ≃ P" else No "would give S_n, contradicting Theorem 11"
    | Phi y, EPerfect ->
        if y = t then Yes "phi_t ≃ P ⊆ ◇P"
        else No "would give ◇S_n, contradicting Theorem 11"
    | EPhi _, Perfect -> No "a perpetual class cannot be built from an eventual one"
    | EPhi y, EPerfect ->
        if y = t then Yes "◇phi_t ≃ ◇P"
        else No "would give ◇S_n, contradicting Theorem 11"
    | Psi _, (Perfect | EPerfect) ->
        Unknown "the nested-query discipline blocks the singleton equivalence"
    (* --- P to everything --- *)
    | Perfect, (S _ | ES _) -> Yes "P suspects exactly the crashed: every scope holds"
    | Perfect, (Phi _ | EPhi _ | Psi _) ->
        Yes "answer the meaningful window with X ⊆ suspected (Reduce.phi_t_from_p)"
    | EPerfect, ES _ -> Yes "◇P suspects exactly the crashed eventually"
    | EPerfect, S _ -> No "a perpetual class cannot be built from an eventual one"
    | EPerfect, EPhi _ ->
        Yes "answer the meaningful window with X ⊆ suspected (eventually exact)"
    | EPerfect, (Phi _ | Psi _) ->
        No "a perpetual class cannot be built from an eventual one"

let row_representatives ~n ~t =
  ignore n;
  [ Perfect; EPerfect ]
  @ List.concat_map
      (fun (row : Bounds.row) ->
        [ S row.sx; ES row.sx; Omega row.z; Phi row.phiy; EPhi row.phiy ])
      (Bounds.grid ~t)

let kset_power ~n ~t cls =
  if (not (valid ~n ~t cls)) || 2 * t >= n then None
  else
    let k =
      match cls with
      | S x | ES x -> Bounds.kset_from_es ~t ~x
      | Phi y | EPhi y | Psi y -> Bounds.kset_from_phi ~t ~y
      | Omega z -> z
      | Perfect | EPerfect -> 1
    in
    if k >= t + 1 then None else Some k

let pp_matrix ~n ~t fmt classes =
  let name c = Format.asprintf "%a" pp_cls c in
  let power c =
    match kset_power ~n ~t c with
    | Some k -> Printf.sprintf "%d-set" k
    | None -> "free"
  in
  Format.fprintf fmt "%14s |" "";
  List.iter (fun c -> Format.fprintf fmt "%5s" (name c)) classes;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt "%s@." (String.make (16 + (5 * List.length classes)) '-');
  List.iter
    (fun from ->
      Format.fprintf fmt "%7s %6s |" (name from) ("(" ^ power from ^ ")");
      List.iter
        (fun into ->
          let mark =
            match reducible ~n ~t ~from ~into with
            | Yes _ -> "Y"
            | No _ -> "n"
            | Unknown _ -> "?"
          in
          Format.fprintf fmt "%5s" mark)
        classes;
      Format.pp_print_newline fmt ())
    classes
