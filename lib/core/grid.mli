(** The paper's reducibility lattice (Figure 1 plus Theorems 8–12), as a
    queryable relation.

    [reducible ~n ~t ~from ~into] answers: is there an algorithm that, in
    AS_{n,t} equipped with one failure detector of class [from], builds a
    failure detector of class [into]?  The encoding covers:

    - the inclusion maps down each family (larger scope / strength is
      stronger);
    - the constructive reductions: ◇S_x → Ω_{t+2-x}, ◇φ_y → Ω_{t+1-y},
      Ψ_y → Ω_{t+1-y}, the extreme equivalences φ_t ≃ P, ◇φ_t ≃ ◇P,
      Ω_1 ≃ ◇S (both directions), and the degenerate free classes
      (S_1, ◇S_1, φ_0, ◇φ_0, Ψ_0, Ω_z for z >= t+1 — all implementable
      with no information);
    - the impossibility theorems: the φ-family cannot be built from
      suspectors (Thm 10), suspectors of scope >= 2 cannot be built from
      the φ-family below strength t (Thm 11), Ω_z reveals nothing about
      crashes (Thm 12), Ω_z cannot be narrowed (Thm 5 + the grid), and no
      eventual class yields a perpetual one.

    Where the OCR-damaged source leaves a theorem's exact parameter range
    ambiguous and the answer is not forced by a construction or an
    information-cap argument we can state, the verdict is [`Unknown] — the
    module never guesses (DESIGN.md §3 discusses each such spot). *)

type cls =
  | S of int  (** S_x, perpetual limited-scope accuracy. *)
  | ES of int  (** ◇S_x. *)
  | Omega of int  (** Ω_z. *)
  | Phi of int  (** φ_y. *)
  | EPhi of int  (** ◇φ_y. *)
  | Psi of int  (** Ψ_y (φ_y under nested-query discipline). *)
  | Perfect  (** P. *)
  | EPerfect  (** ◇P. *)

type verdict = Yes of string | No of string | Unknown of string
(** The payload is the justification (construction or theorem). *)

val valid : n:int -> t:int -> cls -> bool
(** Parameter in range for the family. *)

val free : n:int -> t:int -> cls -> bool
(** Implementable with no information on failures at all (the degenerate
    grid corners). *)

val reducible : n:int -> t:int -> from:cls -> into:cls -> verdict

val pp_cls : Format.formatter -> cls -> unit

val parse_cls : string -> cls option
(** ["S3"], ["ES2"], ["Omega1"], ["Phi2"], ["EPhi0"], ["Psi1"], ["P"],
    ["EP"] (case-insensitive). *)

val kset_power : n:int -> t:int -> cls -> int option
(** The smallest k for which the class is known to solve k-set agreement
    in AS_{n,t} (requires t < n/2 for the algorithms used); [None] when the
    class gives no agreement power beyond the FD-free t+1 bound or
    parameters are invalid. *)

val row_representatives : n:int -> t:int -> cls list
(** P, ◇P, then one representative of each family per grid row — the
    classes Figure 1 draws. *)

val pp_matrix : n:int -> t:int -> Format.formatter -> cls list -> unit
(** Render the pairwise reducibility matrix of the given classes
    (Y = construction exists, n = impossible, ? = open), with each row's
    k-set power in the margin. *)
