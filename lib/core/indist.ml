open Setagree_util
open Setagree_dsys
open Setagree_fd

type report = { title : string; ok : bool; details : string list }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>[%s] %s@,%a@]"
    (if r.ok then "confirmed" else "NOT CONFIRMED")
    r.title
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun f s ->
         Format.fprintf f "  - %s" s))
    r.details

let distinct_decisions ds =
  List.length (List.sort_uniq Int.compare (List.map (fun (_, v, _, _) -> v) ds))

(* Advance a simulation to a given virtual time with nothing but heartbeat
   events (no protocol runs; we only exercise oracles). *)
let idle_run_until sim time =
  Sim.ticker sim ~every:1.0;
  ignore (Sim.run ~stop_when:(fun () -> Sim.now sim >= time) sim)

let all_subsets n = List.of_seq (Seq.concat (Seq.init (n + 1) (fun s -> Combi.enumerate ~n ~size:s)))

let phi_blind_to_victims ~n ~t ~y ~crashes ~seed =
  let title =
    Printf.sprintf
      "O1: with f = %d <= t - y = %d crashes, phi_%d answers depend on |X| only" crashes
      (t - y) y
  in
  if crashes > t - y then
    { title; ok = false; details = [ "misuse: crashes > t - y" ] }
  else begin
    let gst = 30.0 in
    let observe victims =
      let sim = Sim.create ~horizon:200.0 ~n ~t ~seed () in
      Sim.install_crashes sim (List.map (fun p -> (p, 5.0)) victims);
      let querier, _ = Oracle.phi_y sim ~y ~behavior:(Behavior.calm ~gst) () in
      idle_run_until sim (gst +. 10.0);
      (* One fixed observer queries every subset.  The observer must be
         correct in both runs: use the last process, never a victim here. *)
      let obs = n - 1 in
      List.map (fun x -> querier.Iface.query obs x) (all_subsets n)
    in
    let v1 = List.init crashes Fun.id in
    let v2 = List.init crashes (fun i -> i + crashes) in
    if List.exists (fun p -> p >= n - 1) (v1 @ v2) then
      { title; ok = false; details = [ "n too small for disjoint victim sets" ] }
    else begin
      let a1 = observe v1 and a2 = observe v2 in
      let equal = a1 = a2 in
      {
        title;
        ok = equal;
        details =
          [
            Printf.sprintf "victims run 1: {%s}"
              (String.concat "," (List.map Pid.to_string v1));
            Printf.sprintf "victims run 2: {%s}"
              (String.concat "," (List.map Pid.to_string v2));
            Printf.sprintf "%d subsets queried, answers %s" (List.length a1)
              (if equal then "identical" else "DIFFER");
          ];
      }
    end
  end

let omega_blind_to_crashes ~n ~t ~z ~seed =
  let title =
    Printf.sprintf "Omega_%d history compatible with different crash patterns" z
  in
  let gst = 20.0 in
  (* The same pure-function-of-time leader output, used in two runs with
     different crash schedules.  Legal in both runs as long as the eventual
     set contains a process correct in both: process n-1. *)
  let eventual = Pidset.add (n - 1) (if z >= 2 then Pidset.singleton 0 else Pidset.empty) in
  let observe victims =
    let sim = Sim.create ~horizon:200.0 ~n ~t ~seed () in
    Sim.install_crashes sim (List.map (fun p -> (p, 5.0)) victims);
    let trusted _i =
      if Sim.now sim >= gst then eventual else Pidset.singleton 0
    in
    idle_run_until sim (gst +. 10.0);
    List.init n (fun i -> if Sim.is_crashed sim i then None else Some (trusted i))
  in
  let v1 = [] and v2 = List.init (min t (n - 2)) (fun i -> i + 1) in
  let a1 = observe v1 and a2 = observe v2 in
  (* Compare outputs of processes alive in both runs. *)
  let equal_on_alive =
    List.for_all2
      (fun o1 o2 -> match (o1, o2) with Some s1, Some s2 -> Pidset.equal s1 s2 | _ -> true)
      a1 a2
  in
  {
    title;
    ok = equal_on_alive;
    details =
      [
        Printf.sprintf "eventual set %s; run 2 crashes %d processes"
          (Pidset.to_string eventual) (List.length v2);
        (if equal_on_alive then "trusted outputs identical on surviving processes"
         else "outputs DIFFER");
      ];
  }

type phi_candidate = {
  name : string;
  make : Sim.t -> Iface.suspector -> y:int -> Iface.querier;
}

let suspicion_candidate =
  {
    name = "query(X) := X ⊆ suspected_i";
    make =
      (fun sim suspector ~y ->
        let t = Sim.t_bound sim in
        {
          Iface.query =
            (fun i x ->
              let c = Pidset.cardinal x in
              if c <= t - y then true
              else if c > t then false
              else Pidset.subset x (suspector.Iface.suspected i));
        });
  }

let thm10_pair ~n ~t ~x ~y ?(candidate = suspicion_candidate) ~seed () =
  let title =
    Printf.sprintf
      "Thm 10: S_%d cannot be transformed into ◇φ_%d (candidate: %s)" x y
      candidate.name
  in
  let tau0 = 10.0 and tau1 = 60.0 in
  let esize = t - y + 1 in
  if esize > t || esize < 1 || esize >= n then
    { title; ok = false; details = [ "bad parameters: need 1 <= t-y+1 <= t < n" ] }
  else begin
    (* E = the last t-y+1 processes; observer p0 is correct in both runs. *)
    let e_set = Pidset.of_list (List.init esize (fun i -> n - 1 - i)) in
    (* The S_x-legal suspector used in BOTH runs: from tau0 on, everybody
       suspects exactly E.  Perpetual accuracy holds with Q = any x
       processes since p0 ∉ E is never suspected; completeness is eventual,
       hence unconstrained on the finite window. *)
    let make_suspector sim =
      {
        Iface.suspected =
          (fun _i -> if Sim.now sim >= tau0 then e_set else Pidset.empty);
      }
    in
    let observe ~crash_e =
      let sim = Sim.create ~horizon:400.0 ~n ~t ~seed () in
      if crash_e then
        Sim.install_crashes sim (Pidset.fold (fun p acc -> (p, tau0) :: acc) e_set []);
      let suspector = make_suspector sim in
      let q = candidate.make sim suspector ~y in
      idle_run_until sim tau1;
      q.Iface.query 0 e_set
    in
    let ans_r1 = observe ~crash_e:true in
    let ans_r2 = observe ~crash_e:false in
    let same = Bool.equal ans_r1 ans_r2 in
    let liveness_r1 = ans_r1 in
    let safety_r2_violated = ans_r2 in
    let verdict_ok = same && (not liveness_r1 || safety_r2_violated) in
    (* [same] must hold by determinism; then either R1 liveness already
       fails, or R2 safety is violated — both refute the candidate, which is
       what the theorem predicts. *)
    {
      title;
      ok = verdict_ok && (safety_r2_violated || not liveness_r1);
      details =
        [
          Printf.sprintf "E = %s crashes at %.0f in R1, is silent-but-alive in R2"
            (Pidset.to_string e_set) tau0;
          Printf.sprintf "query(E) at τ1=%.0f: R1 = %b, R2 = %b (identical inputs ⇒ %s)"
            tau1 ans_r1 ans_r2
            (if same then "identical, as predicted" else "DIFFER — determinism broken");
          (if liveness_r1 && safety_r2_violated then
             "candidate meets liveness in R1, hence violates eventual safety in R2"
           else if not liveness_r1 then
             "candidate already fails liveness in R1 (dead region denied)"
           else "unexpected combination");
        ];
    }
  end

let thm12_pair ~n ~t ~z ~y ~seed =
  let title =
    Printf.sprintf "Thm 12: Omega_%d cannot be transformed into ◇φ_%d" z y
  in
  ignore seed;
  let tau0 = 10.0 and tau1 = 60.0 in
  let esize = t - y + 1 in
  if esize > t || esize < 1 || esize + z > n then
    { title; ok = false; details = [ "bad parameters" ] }
  else begin
    (* The trusted set: the first z processes, correct in both runs; the
       probed region E: the last t-y+1 processes. *)
    let lset = Pidset.of_list (List.init z Fun.id) in
    let e_set = Pidset.of_list (List.init esize (fun i -> n - 1 - i)) in
    (* The candidate querier someone might build from Omega_z: trust the
       leader set, declare a region dead iff it has been disjoint from the
       trusted set "long enough".  Since trusted never changes, this is a
       pure function of the (constant) Omega output and the clock. *)
    let observe ~crash_e =
      let sim = Sim.create ~horizon:400.0 ~n ~t ~seed () in
      if crash_e then
        Sim.install_crashes sim (Pidset.fold (fun p acc -> (p, tau0) :: acc) e_set []);
      let trusted _i = lset in
      let query _i x =
        let c = Pidset.cardinal x in
        if c <= t - y then true
        else if c > t then false
        else Pidset.disjoint x (trusted 0) && Sim.now sim > tau0 +. 20.0
      in
      idle_run_until sim tau1;
      query 0 e_set
    in
    let r1 = observe ~crash_e:true in
    let r2 = observe ~crash_e:false in
    let same = Bool.equal r1 r2 in
    {
      title;
      ok = same && (r2 || not r1);
      (* Identical answers; then true in R2 = safety violation (E alive),
         false in R1 = liveness violation (E dead and repeatedly queried
         after tau1): either way the candidate is refuted, as the theorem
         demands for every candidate. *)
      details =
        [
          Printf.sprintf "constant Omega_%d output %s in both runs; E = %s" z
            (Pidset.to_string lset) (Pidset.to_string e_set);
          Printf.sprintf "query(E) at τ1: crash-run = %b, no-crash run = %b%s" r1 r2
            (if same then " (identical, as predicted)" else " (DIFFER!)");
          (if r1 && r2 then "liveness met in R1 ⇒ eventual safety violated in R2"
           else if (not r1) && not r2 then "safety met in R2 ⇒ liveness violated in R1"
           else "runs distinguished — not a pure function of the Omega output");
        ];
    }
  end

let kset_violation_search ~n ~t ~z ~k ~seeds =
  let title =
    Printf.sprintf
      "Thm 5 tightness: Omega_%d %s solve %d-set agreement (n=%d, t=%d)" z
      (if k < z then "does NOT" else "does")
      k n t
  in
  let run_one seed =
    let sim = Sim.create ~horizon:400.0 ~n ~t ~seed () in
    (* Legal, perfect-from-the-start Omega_z: z live processes, constant. *)
    let lset = Pidset.of_list (List.init z Fun.id) in
    let omega = { Iface.trusted = (fun _ -> lset) } in
    let proposals = Array.init n (fun i -> 100 + i) in
    let h = Kset.install sim ~omega ~proposals ~tie_break:Kset.By_pid () in
    let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
    distinct_decisions (Kset.decisions h)
  in
  let results = List.map (fun s -> (s, run_one s)) seeds in
  let worst = List.fold_left (fun acc (_, d) -> max acc d) 0 results in
  let witness = List.find_opt (fun (_, d) -> d > k) results in
  let ok = if k < z then witness <> None else worst <= k in
  {
    title;
    ok;
    details =
      [
        Printf.sprintf "%d seeds tried; max distinct decisions = %d" (List.length seeds)
          worst;
        (match witness with
        | Some (s, d) ->
            Printf.sprintf "seed %d decided %d > k = %d distinct values" s d k
        | None -> Printf.sprintf "no seed exceeded k = %d" k);
      ];
  }
