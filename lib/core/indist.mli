(** Executable versions of the paper's impossibility arguments (§5).

    An impossibility theorem quantifies over {e all} transformation
    algorithms, which no finite experiment can do; what {e can} be executed
    is the indistinguishability construction each proof rests on, plus the
    refutation of concrete candidate transformations.  Each scenario below
    reproduces one proof's run(s) and reports whether the prediction held:

    - {!phi_blind_to_victims} — Observation O1 (used by Theorems 8, 10,
      11): with f <= t - y crashes, every φ_y / ◇φ_y answer is determined
      by |X| alone, so two runs with different victim sets produce
      {e identical} query histories.
    - {!omega_blind_to_crashes} — the analogous information cap behind
      Theorem 12: one Ω_z history is compatible with many crash patterns.
    - {!thm10_pair} — Theorem 10's two-run construction: a region E that
      crashes in R1 and is merely silent until τ1 in R2, with identical
      failure-detector outputs; any candidate ◇φ_y-builder must answer
      query(E) identically in both, so it violates liveness in R1 or
      (eventual) safety in R2.
    - {!kset_violation_search} — Theorem 5's z <= k tightness: a legal
      Ω_z history plus legal "arbitrary" choices in Figure 3 drive k-set
      agreement with k < z to an agreement violation; for k >= z no seed
      ever violates. *)

open Setagree_util

type report = {
  title : string;
  ok : bool;  (** The theorem's prediction was confirmed on this run. *)
  details : string list;
}

val pp_report : Format.formatter -> report -> unit

val phi_blind_to_victims :
  n:int -> t:int -> y:int -> crashes:int -> seed:int -> report
(** Two runs, same seed, [crashes <= t - y] crashes each with disjoint
    victim sets; after stabilization, every subset of Π is queried in both
    runs: all answers must coincide. *)

val omega_blind_to_crashes : n:int -> t:int -> z:int -> seed:int -> report
(** Two runs whose crash patterns differ but whose Ω_z oracle is the same
    function of time (legal in both because the eventual set contains a
    process correct in both): outputs coincide, so Ω_z reveals nothing
    about which processes crashed beyond its eventual set. *)

type phi_candidate = {
  name : string;
  make :
    Setagree_dsys.Sim.t -> Setagree_fd.Iface.suspector -> y:int ->
    Setagree_fd.Iface.querier;
      (** Build a would-be ◇φ_y from a suspector (the transformation under
          refutation). *)
}

val suspicion_candidate : phi_candidate
(** The natural strawman: [query(X) = X ⊆ suspected_i].  (Theorem 10 shows
    every candidate fails; this one fails concretely here.) *)

val thm10_pair :
  n:int -> t:int -> x:int -> y:int -> ?candidate:phi_candidate -> seed:int ->
  unit -> report
(** The R1/R2 construction with E = the last [t - y + 1] processes,
    crash time τ0, observation time τ1. *)

val thm12_pair : n:int -> t:int -> z:int -> y:int -> seed:int -> report
(** Theorem 12's side of the same construction: a legal Ω_z history that
    never changes is used in two runs, one where a region E (|E| = t-y+1,
    disjoint from the trusted set) crashes and one where it does not; the
    natural candidate querier built from the Ω_z output answers query(E)
    identically in both, so it violates ◇φ_y liveness in the crashing run
    or eventual safety in the other. *)

val kset_violation_search :
  n:int -> t:int -> z:int -> k:int -> seeds:int list -> report
(** Runs Figure 3 with a perfect Ω_z whose set holds z live processes and
    the adversarial (but legal) [By_pid] tie-break.  For k < z the report
    is [ok] when some seed yields more than k distinct decisions; for
    k >= z it is [ok] when no seed yields more than k (and notes the
    count). *)

val distinct_decisions : (Pid.t * int * int * float) list -> int
