(* The unified job API: one serializable description of everything
   fdkit can execute — a single run, a seed-sweep campaign, a chaos
   campaign, a schedule exploration, or a counterexample replay.

   The CLI subcommands elaborate their flags into a [spec] (of_flags),
   the [fdkit serve] daemon receives specs as JSON over its socket, and
   both execute through the same [execute] below — so a campaign
   launched from the command line and the same campaign submitted to
   the daemon produce byte-identical artifacts and share one result
   cache.

   [canonical] renders a spec as minified JSON with a fixed field
   order; it doubles as the basis of the cache key (together with the
   per-protocol code fingerprint), so "same spec" and "same cache
   entry" are the same notion by construction. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_runner

type source = Schedule_file | Faults_file

type spec =
  | Run of { protocol : string; params : Protocol.params }
  | Campaign of { protocol : string; seeds : int; params : Protocol.params }
  | Chaos of {
      protocols : string list;
      mixes : string list;
      seeds : int;
      base : Protocol.params;
    }
  | Explore of {
      protocol : string;
      params : Protocol.params;
      bounds : Explorer.bounds;
    }
  | Replay of { source : source; path : string; index : int }

let source_to_string = function
  | Schedule_file -> "schedule"
  | Faults_file -> "faults"

let kind = function
  | Run _ -> "run"
  | Campaign _ -> "campaign"
  | Chaos _ -> "chaos"
  | Explore _ -> "explore"
  | Replay _ -> "replay"

(* ---- serialization ---- *)

let strings l = Json.List (List.map (fun s -> Json.String s) l)

let to_json spec =
  let params p = Json.Obj (Protocol.params_to_json p) in
  Json.Obj
    (("kind", Json.String (kind spec))
    ::
    (match spec with
    | Run { protocol; params = p } ->
        [ ("protocol", Json.String protocol); ("params", params p) ]
    | Campaign { protocol; seeds; params = p } ->
        [
          ("protocol", Json.String protocol);
          ("seeds", Json.Int seeds);
          ("params", params p);
        ]
    | Chaos { protocols; mixes; seeds; base } ->
        [
          ("protocols", strings protocols);
          ("mixes", strings mixes);
          ("seeds", Json.Int seeds);
          ("params", params base);
        ]
    | Explore { protocol; params = p; bounds } ->
        [
          ("protocol", Json.String protocol);
          ("params", params p);
          ("bounds", Json.Obj (Explorer.bounds_to_json bounds));
        ]
    | Replay { source; path; index } ->
        [
          ("source", Json.String (source_to_string source));
          ("path", Json.String path);
          ("index", Json.Int index);
        ]))

let of_json j =
  let str name = match Json.member name j with Some (Json.String s) -> Some s | _ -> None in
  let int name d = match Json.member name j with Some (Json.Int i) -> i | _ -> d in
  let fields name =
    match Json.member name j with Some (Json.Obj l) -> Some l | _ -> None
  in
  let params name =
    match fields name with
    | Some l -> Protocol.params_of_json l
    | None -> Protocol.default
  in
  let string_list name =
    match Json.member name j with
    | Some (Json.List l) ->
        List.filter_map (function Json.String s -> Some s | _ -> None) l
    | _ -> []
  in
  match str "kind" with
  | Some "run" -> (
      match str "protocol" with
      | Some protocol -> Ok (Run { protocol; params = params "params" })
      | None -> Error "run spec: missing \"protocol\"")
  | Some "campaign" -> (
      match str "protocol" with
      | Some protocol ->
          Ok (Campaign { protocol; seeds = int "seeds" 32; params = params "params" })
      | None -> Error "campaign spec: missing \"protocol\"")
  | Some "chaos" ->
      Ok
        (Chaos
           {
             protocols =
               (match string_list "protocols" with
               | [] -> Chaos.default_protocols
               | l -> l);
             mixes =
               (match string_list "mixes" with [] -> Chaos.mix_names | l -> l);
             seeds = int "seeds" 8;
             base = params "params";
           })
  | Some "explore" -> (
      match str "protocol" with
      | Some protocol ->
          Ok
            (Explore
               {
                 protocol;
                 params = params "params";
                 bounds =
                   Explorer.bounds_of_json
                     (Option.value ~default:[] (fields "bounds"));
               })
      | None -> Error "explore spec: missing \"protocol\"")
  | Some "replay" -> (
      match str "path" with
      | None -> Error "replay spec: missing \"path\""
      | Some path ->
          let source =
            match str "source" with
            | Some "faults" -> Faults_file
            | _ -> Schedule_file
          in
          Ok (Replay { source; path; index = int "index" 0 }))
  | Some k -> Error (Printf.sprintf "unknown job kind %S" k)
  | None -> Error "job spec: missing \"kind\""

let canonical spec = Json.to_string ~minify:true (to_json spec)
let equal a b = canonical a = canonical b

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Quarantine/handoff helper: persist a spec as a standalone JSON file
   that [fdkit submit --spec <path>] accepts verbatim.  [None] on write
   failure — callers (the daemon's poison path) degrade gracefully. *)
let write_spec ~dir ~name spec =
  try
    mkdir_p dir;
    let path = Filename.concat dir name in
    Json.write_file path (to_json spec);
    Some path
  with Sys_error _ -> None

let summary spec =
  match spec with
  | Run { protocol; params } ->
      Printf.sprintf "run %s seed=%d" protocol params.Protocol.seed
  | Campaign { protocol; seeds; _ } ->
      Printf.sprintf "campaign %s seeds=1..%d" protocol seeds
  | Chaos { protocols; mixes; seeds; _ } ->
      Printf.sprintf "chaos %s x %d mix(es) x %d seed(s)"
        (String.concat "," protocols)
        (List.length mixes) seeds
  | Explore { protocol; bounds; _ } ->
      Printf.sprintf "explore %s depth=%d walks=%d" protocol
        bounds.Explorer.depth bounds.Explorer.walks
  | Replay { source; path; index } ->
      Printf.sprintf "replay --%s %s --index %d" (source_to_string source) path
        index

(* ---- flag elaboration (the CLI subcommands are sugar over this) ---- *)

let of_flags ?(seeds = 32) ?(protocols = []) ?(mixes = []) ?(honest = false)
    ?bounds ~kind ~protocol (base : Protocol.params) =
  match kind with
  | `Run -> Run { protocol; params = base }
  | `Campaign -> Campaign { protocol; seeds; params = base }
  | `Chaos ->
      Chaos
        {
          protocols =
            (match protocols with [] -> Chaos.default_protocols | l -> l);
          mixes = (match mixes with [] -> Chaos.mix_names | l -> l);
          seeds;
          base;
        }
  | `Explore ->
      (* Exploration defaults: the adversary owns the schedule, so a
         short horizon suffices and (for kset) the mis-use wiring is on
         unless --honest is given. *)
      let params =
        {
          base with
          Protocol.adversarial = base.Protocol.adversarial || not honest;
          horizon =
            (if base.Protocol.horizon > 0.0 then base.Protocol.horizon else 300.0);
        }
      in
      Explore
        {
          protocol;
          params;
          bounds = Option.value ~default:Explorer.default_bounds bounds;
        }

(* ---- validation ---- *)

let registry_hint () =
  Printf.sprintf "protocols: %s" (String.concat ", " (Protocol.names ()))

let validate spec =
  let known_protocol name errs =
    if Protocol.find name = None then
      Printf.sprintf "unknown protocol %S; %s" name (registry_hint ()) :: errs
    else errs
  in
  let legal_faults (p : Protocol.params) errs =
    match Faults.legal ~n:p.Protocol.n ~t:p.Protocol.t p.Protocol.faults with
    | Ok () -> errs
    | Error es -> List.map (fun e -> "illegal fault spec: " ^ e) es @ errs
  in
  let errs =
    match spec with
    | Run { protocol; params } -> known_protocol protocol (legal_faults params [])
    | Campaign { protocol; params; seeds } ->
        let errs = if seeds < 1 then [ "seeds must be >= 1" ] else [] in
        known_protocol protocol (legal_faults params errs)
    | Chaos { protocols; mixes; seeds; _ } ->
        let errs = if seeds < 1 then [ "seeds must be >= 1" ] else [] in
        let errs = List.fold_right known_protocol protocols errs in
        List.fold_right
          (fun m errs ->
            if Chaos.find_mix m = None then
              Printf.sprintf "unknown mix %S; mixes: %s" m
                (String.concat ", " Chaos.mix_names)
              :: errs
            else errs)
          mixes errs
    | Explore { protocol; params; _ } ->
        known_protocol protocol (legal_faults params [])
    | Replay { path; index; _ } ->
        let errs = if index < 0 then [ "index must be >= 0" ] else [] in
        if Sys.file_exists path then errs
        else Printf.sprintf "no such file: %s" path :: errs
  in
  if errs = [] then Ok () else Error errs

(* ---- execution ---- *)

(* Real-runtime execution (backend "rt"/"rt-chan") lives above this
   library (Setagree_rt depends on core); the CLI installs its runner
   here at startup.  Jobs on an rt backend are never cached — their
   outcomes are wall-clock-dependent. *)
let rt_runner : (Protocol.packed -> Protocol.params -> Runner.body) option ref =
  ref None

let is_rt backend = String.length backend >= 2 && String.sub backend 0 2 = "rt"

let crashes_count = function
  | Crash.No_crashes -> 0
  | Crash.Exactly { crashes; _ } -> crashes
  | Crash.Random_up_to { max_crashes; _ } -> max_crashes
  | Crash.Explicit l -> List.length l
  | Crash.Initial l -> List.length l

let replay_command family (p : Protocol.params) =
  Printf.sprintf
    "dune exec bin/fdkit.exe -- run --protocol %s -n %d -t %d -z %d -k %d -x %d -y %d \
     --crashes %d --gst %g --horizon %g --variant %s --seed %d%s%s"
    family p.Protocol.n p.Protocol.t p.Protocol.z p.Protocol.k p.Protocol.x p.Protocol.y
    (crashes_count p.Protocol.crashes)
    p.Protocol.gst p.Protocol.horizon p.Protocol.variant p.Protocol.seed
    ((if p.Protocol.legacy_poll then " --legacy-poll" else "")
    ^ (if p.Protocol.legacy_queue then " --legacy-queue" else ""))
    (if p.Protocol.adversarial then " --adversarial" else "")

let sim_body pk (p : Protocol.params) =
  let r = Protocol.run pk p in
  Runner.body
    ~notes:
      (if Check.verdict_ok r.Protocol.rp_verdict then []
       else r.Protocol.rp_verdict.Check.notes)
    ~metrics:r.Protocol.rp_metrics
    (Check.verdict_ok r.Protocol.rp_verdict)

let protocol_body pk (p : Protocol.params) =
  if is_rt p.Protocol.backend then
    match !rt_runner with
    | Some rt -> rt pk p
    | None ->
        Runner.body
          ~notes:[ "rt backend not available in this process" ]
          false
  else sim_body pk p

(* One job of a single-protocol sweep (Run is a 1-seed Campaign). *)
let protocol_job ~fingerprint ~exp protocol pk (base : Protocol.params) seed =
  let p = { base with Protocol.seed } in
  let key =
    (* rt outcomes are wall-clock-dependent: never content-address them. *)
    if is_rt p.Protocol.backend then None
    else
      Some
        (Runner.Cache.key
           ~parts:
             [
               string_of_int Stamp.schema_version;
               fingerprint protocol;
               "run";
               protocol;
               Json.to_string ~minify:true (Json.Obj (Protocol.params_to_json p));
             ])
  in
  Runner.job ~exp ~seed
    ~params:(Protocol.params_to_json p)
    ~replay:(replay_command protocol p)
    ?key
    (fun () -> protocol_body pk p)

type outcome = {
  o_spec : spec;
  o_campaign : Runner.campaign;
  o_chaos : Chaos.outcome option;  (** chaos specs only *)
  o_ces : Schedule.t list;  (** explore specs only *)
  o_exit : int;  (** CLI-convention exit code, see {!execute} *)
}

let campaign_exit c =
  if c.Runner.c_cancelled then 4
  else if Runner.failures c <> [] then 1
  else 0

let replay_body source path index () =
  match source with
  | Faults_file -> (
      match Chaos.load_failures path with
      | Error e -> Runner.body ~notes:[ "cannot load " ^ path ^ ": " ^ e ] false
      | Ok l -> (
          match List.nth_opt l index with
          | None ->
              Runner.body
                ~notes:
                  [ Printf.sprintf "index %d out of range (%d failure(s))" index (List.length l) ]
                false
          | Some f -> (
              match Chaos.reproduce f with
              | None ->
                  Runner.body ~notes:[ "unknown protocol " ^ f.Chaos.f_protocol ] false
              | Some (reproduced, notes) ->
                  Runner.body
                    ~notes:(if reproduced then [] else "NOT reproduced" :: notes)
                    reproduced)))
  | Schedule_file -> (
      match Explorer.load_counterexamples path with
      | Error e -> Runner.body ~notes:[ "cannot load " ^ path ^ ": " ^ e ] false
      | Ok l -> (
          match List.nth_opt l index with
          | None ->
              Runner.body
                ~notes:
                  [
                    Printf.sprintf "index %d out of range (%d counterexample(s))"
                      index (List.length l);
                  ]
                false
          | Some s -> (
              match Explorer.replay s with
              | Error e -> Runner.body ~notes:[ e ] false
              | Ok (_, reproduced) ->
                  Runner.body
                    ~notes:(if reproduced then [] else [ "NOT reproduced" ])
                    reproduced)))

let execute ?jobs ?cache ?(fingerprint = Fingerprint.protocol) ?on_progress
    ?on_telemetry ?telemetry_every_s ?stop spec =
  match spec with
  | Run { protocol; params } | Campaign { protocol; params; seeds = _ } -> (
      let seeds = match spec with Campaign { seeds; _ } -> seeds | _ -> 1 in
      match Protocol.find protocol with
      | None ->
          invalid_arg ("Job.execute: unknown protocol " ^ protocol)
      | Some pk ->
          let mk i =
            match spec with
            | Run _ -> protocol_job ~fingerprint ~exp:protocol protocol pk params params.Protocol.seed
            | _ -> protocol_job ~fingerprint ~exp:protocol protocol pk params (i + 1)
          in
          let joblist = List.init seeds mk in
          let c =
            Runner.run ?jobs ?cache ?on_progress ?on_telemetry
              ?telemetry_every_s ?stop ~exp:protocol joblist
          in
          {
            o_spec = spec;
            o_campaign = c;
            o_chaos = None;
            o_ces = [];
            o_exit = campaign_exit c;
          })
  | Chaos { protocols; mixes; seeds; base } ->
      let o =
        Chaos.run ?jobs ?cache ~fingerprint ?on_progress ?on_telemetry
          ?telemetry_every_s ?stop ~protocols
          ~mix_filter:mixes ~seeds ~base ()
      in
      let c = o.Chaos.o_campaign in
      let exit =
        if c.Runner.c_cancelled then 4
        else if o.Chaos.o_safety > 0 then 2
        else if o.Chaos.o_failures <> [] then 1
        else 0
      in
      { o_spec = spec; o_campaign = c; o_chaos = Some o; o_ces = []; o_exit = exit }
  | Explore { protocol; params; bounds } ->
      let o =
        Explorer.explore ?jobs ?cache ~fingerprint ?on_progress ?on_telemetry
          ?telemetry_every_s ?stop ~protocol
          params bounds
      in
      let c = o.Explorer.o_campaign in
      {
        o_spec = spec;
        o_campaign = c;
        o_chaos = None;
        o_ces = o.Explorer.o_ces;
        o_exit = (if c.Runner.c_cancelled then 4 else 0);
      }
  | Replay { source; path; index } ->
      let j =
        Runner.job ~exp:"replay"
          ~label:(summary spec)
          ~seed:index
          (replay_body source path index)
      in
      let c =
        Runner.run ~jobs:1 ?on_progress ?on_telemetry ?telemetry_every_s ?stop
          ~exp:"replay" [ j ]
      in
      {
        o_spec = spec;
        o_campaign = c;
        o_chaos = None;
        o_ces = [];
        o_exit = campaign_exit c;
      }
