(** The unified job API (DESIGN.md §11).

    One serializable [spec] describes everything fdkit can execute — a
    single protocol run, a seed-sweep campaign, a chaos campaign, a
    schedule exploration, or a counterexample replay.  The CLI
    subcommands elaborate their flags into a spec ({!of_flags}), the
    [fdkit serve] daemon receives specs as JSON frames over its socket
    ({!of_json}), and both execute through {!execute} — so a campaign
    launched either way produces byte-identical artifacts and shares
    one content-addressed result cache.

    {!canonical} is the stability contract: minified JSON with a fixed
    field order, pinned by tests.  Cache keys are derived from it plus
    the per-protocol code fingerprint, so "same spec under the same
    code" and "same cache entry" coincide by construction. *)

open Setagree_util
open Setagree_dsys
open Setagree_runner

type source = Schedule_file | Faults_file

type spec =
  | Run of { protocol : string; params : Protocol.params }
  | Campaign of { protocol : string; seeds : int; params : Protocol.params }
      (** sweep seeds [1..seeds], each job overriding [params.seed] *)
  | Chaos of {
      protocols : string list;
      mixes : string list;
      seeds : int;
      base : Protocol.params;
    }
  | Explore of {
      protocol : string;
      params : Protocol.params;
      bounds : Explorer.bounds;
    }
  | Replay of { source : source; path : string; index : int }

val kind : spec -> string
(** ["run" | "campaign" | "chaos" | "explore" | "replay"]. *)

val summary : spec -> string
(** One-line human description (daemon status listings). *)

(** {1 Serialization} *)

val to_json : spec -> Json.t
(** Fixed field order; [of_json ∘ to_json] is the identity on specs
    produced by {!of_flags} (qcheck-pinned). *)

val of_json : Json.t -> (spec, string) result
(** Tolerant on params/bounds (missing fields default); strict on
    [kind] and the identifying fields (protocol, path). *)

val canonical : spec -> string
(** [to_string ~minify:true ∘ to_json] — the canonical byte encoding;
    stable across sessions (test-pinned) and the basis of cache keys. *)

val equal : spec -> spec -> bool
(** Canonical-encoding equality. *)

val write_spec : dir:string -> name:string -> spec -> string option
(** Persist a spec as [dir/name] in the JSON shape
    [fdkit submit --spec <path>] accepts; returns the path, or [None]
    if the write failed.  Used by the daemon's poison quarantine. *)

(** {1 Flag elaboration} *)

val of_flags :
  ?seeds:int ->
  ?protocols:string list ->
  ?mixes:string list ->
  ?honest:bool ->
  ?bounds:Explorer.bounds ->
  kind:[ `Run | `Campaign | `Chaos | `Explore ] ->
  protocol:string ->
  Protocol.params ->
  spec
(** Elaborate CLI flags into a spec, centralizing the defaults the
    subcommands used to apply ad hoc: campaign [seeds] default 32;
    chaos [protocols]/[mixes] default to the built-in lists and [seeds]
    to 8 (pass [~seeds]); explore turns on the adversarial (mis-use)
    wiring unless [honest] and defaults the horizon to 300.  [protocol]
    is ignored by [`Chaos] (it has [protocols]). *)

val validate : spec -> (unit, string list) result
(** Static checks before running: protocol and mix names against the
    registries, fault-spec legality, file existence for replays. *)

(** {1 Execution} *)

val rt_runner : (Protocol.packed -> Protocol.params -> Runner.body) option ref
(** Hook for the real-runtime backend ([backend = "rt"/"rt-chan"]):
    [Setagree_rt] sits above this library, so the CLI installs its
    runner here at startup.  When unset, rt jobs fail with an
    explanatory note.  rt jobs are never cached (wall-clock
    nondeterministic). *)

val replay_command : string -> Protocol.params -> string
(** The ready-to-paste [fdkit run] command reproducing one job (goes
    into triage records). *)

type outcome = {
  o_spec : spec;
  o_campaign : Runner.campaign;
  o_chaos : Chaos.outcome option;  (** chaos specs only *)
  o_ces : Schedule.t list;  (** explore specs only *)
  o_exit : int;
      (** CLI-convention exit code: 0 ok; 1 failing jobs (liveness for
          chaos); 2 chaos safety violation; 4 cancelled *)
}

val execute :
  ?jobs:int ->
  ?cache:Runner.Cache.t ->
  ?fingerprint:(string -> string) ->
  ?on_progress:(Runner.progress -> unit) ->
  ?on_telemetry:(Runner.telemetry -> unit) ->
  ?telemetry_every_s:float ->
  ?stop:(unit -> bool) ->
  spec ->
  outcome
(** Run a validated spec through the campaign engine.  [fingerprint]
    (default {!Fingerprint.protocol}) keys the cache per protocol —
    override it only to test invalidation.  [Run] executes as a 1-job
    campaign; [Replay] as a 1-job campaign whose job succeeds iff the
    recorded violation reproduces.  Raises [Invalid_argument] on an
    unknown protocol — call {!validate} first. *)
