open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type msg =
  | Phase1 of { r : int; lset : Pidset.t; est : int }
  | Phase2 of { r : int; aux : int option }

type t = {
  sim : Sim.t;
  net : msg Net.t;
  rb : int Rbcast.t;
  decided_at : (int * int * float) option array; (* value, round, time *)
  mutable decided_set : Pidset.t; (* pids with [decided_at <> None] *)
  round_of : int array;
  mutable max_round : int;
  (* Lemma 2 witness: per round, the distinct non-⊥ aux values any process
     broadcast in phase 2. *)
  aux_per_round : (int, int list) Hashtbl.t;
}

let decided t pid =
  Option.map (fun (v, r, _) -> (v, r)) t.decided_at.(pid)

(* Evaluated after every event as a stop condition: one word-wise subset
   test over two shared pidsets, no allocation, no per-process scan. *)
let all_correct_decided t =
  Pidset.subset (Sim.correct_set t.sim) t.decided_set

let decisions t =
  let ds = ref [] in
  Array.iteri
    (fun pid -> function
      | Some (v, r, tm) -> ds := (pid, v, r, tm) :: !ds
      | None -> ())
    t.decided_at;
  List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare a b) !ds

let max_round t = t.max_round
let messages_sent t = Net.sent_count t.net + Rbcast.underlying_sent t.rb

(* The empirical face of the paper's Lemma 2: at the end of phase 1 of any
   round, at most |L| <= k distinct non-⊥ values survive.  We witness it on
   the phase-2 broadcasts. *)
let max_distinct_aux t =
  Hashtbl.fold (fun _ vs acc -> max acc (List.length vs)) t.aux_per_round 0

let record_aux t ~round = function
  | None -> ()
  | Some v ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.aux_per_round round) in
      if not (List.mem v cur) then Hashtbl.replace t.aux_per_round round (v :: cur)

(* Find the leader set announced (in its PHASE1 of this round) by a strict
   majority of distinct senders, if any; at most one set can qualify.  Runs
   on every phase-1 quorum wakeup, so the tallies are mutable cells scanned
   in one pass (the distinct-lset list stays tiny: every process trusting
   the same leaders is the common case). *)
let majority_leader_set net ~i ~key ~n =
  let counts : (Pidset.t * Pidset.t ref) list ref = ref [] in
  Net.keyed_fold net i key ~init:()
    ~f:(fun () (e : msg Net.envelope) ->
      match e.payload with
      | Phase1 { lset; _ } -> (
          match
            List.find_opt (fun (l, _) -> Pidset.equal l lset) !counts
          with
          | Some (_, senders) -> senders := Pidset.add e.src !senders
          | None -> counts := (lset, ref (Pidset.singleton e.src)) :: !counts)
      | Phase2 _ -> ());
  List.find_opt (fun (_, senders) -> 2 * Pidset.cardinal !senders > n) !counts
  |> Option.map fst

type tie_break = Smallest | By_pid

(* Resolve an "arbitrary" choice among candidates (non-empty, sorted). *)
let choose tie_break ~pid = function
  | [] -> invalid_arg "Kset.choose: empty"
  | l -> (
      match tie_break with
      | Smallest -> List.hd l
      | By_pid -> List.nth l (pid mod List.length l))

let install sim ~omega ~proposals ?(delay = Delay.default) ?(step = 0.05)
    ?(tie_break = Smallest) ?decision_stagger ?loss () =
  let n = Sim.n sim in
  let tb = Sim.t_bound sim in
  if 2 * tb >= n then invalid_arg "Kset.install: requires t < n/2";
  if Array.length proposals <> n then invalid_arg "Kset.install: bad proposals";
  (* Round/phase structure as delivery-index keys: readiness checks below
     are O(1) keyed lookups, and the waits are woken only by deliveries. *)
  let key_p1 r = 2 * r and key_p2 r = (2 * r) + 1 in
  let classify = function
    | Phase1 { r; _ } -> key_p1 r
    | Phase2 { r; _ } -> key_p2 r
  in
  let net = Net.create sim ~tag:"kset" ~delay ~retain:false ~classify ?loss () in
  let rb = Rbcast.create sim ~tag:"kset.dec" ~delay ?stagger:decision_stagger ?loss () in
  let t =
    {
      sim;
      net;
      rb;
      decided_at = Array.make n None;
      decided_set = Pidset.empty;
      round_of = Array.make n 0;
      max_round = 0;
      aux_per_round = Hashtbl.create 32;
    }
  in
  (* Task T2: decide on R-delivery of a DECISION value. *)
  Rbcast.on_deliver rb (fun pid (d : int Rbcast.delivery) ->
      if t.decided_at.(pid) = None then begin
        let round = t.round_of.(pid) in
        t.decided_at.(pid) <- Some (d.body, round, Sim.now sim);
        t.decided_set <- Pidset.add pid t.decided_set;
        Trace.record (Sim.trace sim) ~time:(Sim.now sim)
          (Trace.Decide { pid; value = d.body; round })
      end);
  (* Task T1: the round loop. *)
  let tr = Sim.trace sim in
  let body i () =
    let est = ref proposals.(i) in
    let r = ref 0 in
    let prev_l = ref None in
    (* Match form: this runs in every blocked-predicate evaluation, where
       [<> None] would be a polymorphic-compare call. *)
    let decided_i () =
      match t.decided_at.(i) with None -> false | Some _ -> true
    in
    while not (decided_i ()) do
      incr r;
      let round = !r in
      t.round_of.(i) <- round;
      if round > t.max_round then t.max_round <- round;
      if Trace.records_entries tr then
        Trace.begin_span tr ~time:(Sim.now sim) (Trace.Round { pid = i; round });
      (* Phase 1 *)
      let l_i = omega.Iface.trusted i in
      (* The oracle read happens every round anyway: logging its changes is
         a pure trace write, no extra events or RNG draws. *)
      if
        Trace.records_entries tr
        && not (match !prev_l with Some p -> Pidset.equal p l_i | None -> false)
      then
        Trace.record tr ~time:(Sim.now sim)
          (Trace.Fd_change
             { pid = i; kind = "omega"; value = Pidset.to_string l_i });
      prev_l := Some l_i;
      Net.broadcast net ~src:i (Phase1 { r = round; lset = l_i; est = !est });
      (* Quorum wait: the predicate can only become true when the PHASE1
         distinct-sender count crosses n-t or an R-delivery decides i, so
         subscribe the threshold watch (woken once, at the crossing) and
         the rbcast condition — not the per-delivery net condition. *)
      Sim.Cond.await
        [ Net.quorum_cond net i ~key:(key_p1 round) ~q:(n - tb); Rbcast.cond rb i ]
        (fun () ->
          decided_i ()
          || Net.keyed_nsenders net i (key_p1 round) >= n - tb);
      (* This wait also reads the oracle's output, a function of the clock:
         no substrate signals it, so it keeps the poll cadence. *)
      Sim.Cond.await
        [ Sim.Cond.poll sim ]
        (fun () ->
          decided_i ()
          || (not (Pidset.disjoint (Net.keyed_senders net i (key_p1 round)) l_i))
          || not (Pidset.equal (omega.Iface.trusted i) l_i));
      if not (decided_i ()) then begin
        let aux =
          match majority_leader_set net ~i ~key:(key_p1 round) ~n with
          | None -> None
          | Some lset -> (
              (* Estimates announced by members of the majority leader set,
                 as a sorted value set; one fold, no intermediate pairs. *)
              let ests =
                Net.keyed_fold net i (key_p1 round) ~init:[]
                  ~f:(fun acc (e : msg Net.envelope) ->
                    match e.payload with
                    | Phase1 { est; _ } when Pidset.mem e.src lset ->
                        est :: acc
                    | _ -> acc)
              in
              match List.sort_uniq Int.compare ests with
              | [] -> None
              | vs -> Some (choose tie_break ~pid:i vs))
        in
        (* Phase 2 *)
        record_aux t ~round aux;
        Net.broadcast net ~src:i (Phase2 { r = round; aux });
        Sim.Cond.await
          [ Net.quorum_cond net i ~key:(key_p2 round) ~q:(n - tb); Rbcast.cond rb i ]
          (fun () ->
            decided_i ()
            || Net.keyed_nsenders net i (key_p2 round) >= n - tb);
        if not (decided_i ()) then begin
          let saw_bot = ref false in
          let vals =
            Net.keyed_fold net i (key_p2 round) ~init:[]
              ~f:(fun acc (e : msg Net.envelope) ->
                match e.payload with
                | Phase2 { aux = Some v; _ } -> v :: acc
                | Phase2 { aux = None; _ } ->
                    saw_bot := true;
                    acc
                | Phase1 _ -> assert false)
          in
          let non_bot = List.sort_uniq Int.compare vals in
          (match non_bot with [] -> () | vs -> est := choose tie_break ~pid:i vs);
          if not !saw_bot then begin
            Rbcast.broadcast rb ~src:i !est;
            (* The local R-delivery above has already recorded the decision;
               the loop guard ends the task. *)
          end
          else Sim.sleep step
        end
      end;
      (* Nothing reads round r's aggregates once the loop advances (each
         wait closes over its own round): retire them so the live heap
         stays bounded by the round window, not the whole run. *)
      Net.keyed_drop net i (key_p1 round);
      Net.keyed_drop net i (key_p2 round);
      if Trace.records_entries tr then
        Trace.end_span tr ~time:(Sim.now sim) (Trace.Round { pid = i; round })
    done
  in
  for i = 0 to n - 1 do
    Sim.spawn sim ~pid:i (body i)
  done;
  (* Oracle reads are time-driven; keep predicates re-evaluated even between
     message events. *)
  Sim.ticker sim ~every:1.0;
  t
