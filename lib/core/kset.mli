(** The Ω_k-based k-set agreement algorithm (paper Figure 3, §3).

    Round structure (process p_i, estimate [est_i], round [r_i]):

    + {b Phase 1} — read [trusted_i] into [L_i]; broadcast
      [PHASE1(r, L_i, est_i)]; wait for PHASE1(r) from n-t distinct
      processes {e and} (one from a member of [L_i] {e or} [trusted_i]
      changed).  If one leader set [L] was announced by a majority and an
      estimate [v] was received from a member of [L], set [aux_i := v],
      else [aux_i := ⊥].  (At most [|L| <= k] non-⊥ values survive.)
    + {b Phase 2} — broadcast [PHASE2(r, aux_i)]; wait for n-t of them;
      adopt any non-⊥ value received; if no ⊥ was received, R-broadcast
      [DECISION(est_i)] and stop.

    A parallel task decides on R-delivery of a [DECISION] (so deciders
    unblock everyone; R-broadcast's termination property is what prevents
    deadlock).

    Requires [t < n/2].  With [z <= k] (Theorem 5's condition) the
    algorithm decides at most k values; the interesting {e mis-use} —
    running it with an Ω_z oracle where z > k — is how experiment E2
    exhibits agreement violations.

    Oracle-efficiency and zero-degradation (§3.2): with a perfect oracle
    and only initial crashes, every process decides in round 1. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

type tie_break = Smallest | By_pid
(** Where the paper says "takes one arbitrarily" (several candidate
    estimates), any choice is legal.  [Smallest] is the friendly
    deterministic choice; [By_pid] spreads choices across processes — a
    legal implementation that an adversary would pick, used to exhibit the
    z > k agreement violations of experiment E2. *)

val install :
  Sim.t ->
  omega:Iface.leader ->
  proposals:int array ->
  ?delay:Delay.t ->
  ?step:float ->
  ?tie_break:tie_break ->
  ?decision_stagger:float ->
  ?loss:float ->
  unit ->
  t
(** Spawn the agreement tasks on every process.  [proposals.(i)] is p_i's
    input; [step] (default 0.05) is the local pause between busy-wait
    re-checks of oracle reads.  [decision_stagger] spaces the individual
    sends of the DECISION R-broadcast so that a decider crashing at the
    decision instant leaves a partial broadcast — the failure the echo
    relay (and the paper's task T2) masks; default atomic.  [loss] runs
    both protocol channels over the fair-lossy link transport (the whole
    algorithm then works over unreliable links).  Call before
    {!Sim.run}. *)

val decided : t -> Pid.t -> (int * int) option
(** [(value, round)] once the process has decided. *)

val all_correct_decided : t -> bool
(** Stop condition for {!Sim.run}. *)

val decisions : t -> (Pid.t * int * int * float) list
(** [(pid, value, round, time)], in decision order — feed to
    {!Check.k_set_agreement}. *)

val max_round : t -> int
(** Highest round any process entered. *)

val messages_sent : t -> int
(** Point-to-point messages consumed (both phases + decision relay). *)

val max_distinct_aux : t -> int
(** The paper's Lemma 2, witnessed: the largest number of distinct non-⊥
    estimates broadcast in any round's phase 2 — never more than z when
    the detector belongs to Ω_z. *)
