open Setagree_util
open Setagree_dsys
open Setagree_fd

type params = {
  n : int;
  t : int;
  seed : int;
  z : int;
  k : int;
  x : int;
  y : int;
  gst : float;
  horizon : float;
  crashes : Crash.spec;
  faults : Faults.t;
  legacy_poll : bool;
  legacy_queue : bool;
  adversarial : bool;
  variant : string;
  trace : string;
  backend : string;
}

let default =
  {
    n = 8;
    t = 3;
    seed = 1;
    z = 1;
    k = 1;
    x = 2;
    y = 1;
    gst = 40.0;
    horizon = 0.0;
    crashes = Crash.Exactly { crashes = 2; window = (0.0, 20.0) };
    faults = Faults.none;
    legacy_poll = false;
    legacy_queue = false;
    adversarial = false;
    variant = "es";
    trace = "default";
    backend = "sim";
  }

let params_to_json p =
  [
    ("n", Json.Int p.n);
    ("t", Json.Int p.t);
    ("seed", Json.Int p.seed);
    ("z", Json.Int p.z);
    ("k", Json.Int p.k);
    ("x", Json.Int p.x);
    ("y", Json.Int p.y);
    ("gst", Json.Float p.gst);
    ("horizon", Json.Float p.horizon);
    ("crashes", Crash.spec_to_json p.crashes);
    ("faults", Faults.to_json p.faults);
    ("legacy_poll", Json.Bool p.legacy_poll);
    ("legacy_queue", Json.Bool p.legacy_queue);
    ("adversarial", Json.Bool p.adversarial);
    ("variant", Json.String p.variant);
    ("trace", Json.String p.trace);
    ("backend", Json.String p.backend);
  ]

let params_of_json fields =
  let j = Json.Obj fields in
  let int name dflt =
    match Json.member name j with Some (Json.Int i) -> i | _ -> dflt
  in
  let flt name dflt =
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some f -> f
    | None -> dflt
  in
  let boolean name dflt =
    match Json.member name j with Some (Json.Bool b) -> b | _ -> dflt
  in
  let str name dflt =
    match Json.member name j with Some (Json.String s) -> s | _ -> dflt
  in
  let crashes =
    match Json.member "crashes" j with
    | Some cj -> (
        match Crash.spec_of_json cj with
        | Ok s -> s
        | Error _ -> default.crashes)
    | None -> default.crashes
  in
  let faults =
    match Json.member "faults" j with
    | Some fj -> (
        match Faults.of_json fj with Ok f -> f | Error _ -> default.faults)
    | None -> default.faults
  in
  {
    n = int "n" default.n;
    t = int "t" default.t;
    seed = int "seed" default.seed;
    z = int "z" default.z;
    k = int "k" default.k;
    x = int "x" default.x;
    y = int "y" default.y;
    gst = flt "gst" default.gst;
    horizon = flt "horizon" default.horizon;
    crashes;
    faults;
    legacy_poll = boolean "legacy_poll" default.legacy_poll;
    legacy_queue = boolean "legacy_queue" default.legacy_queue;
    adversarial = boolean "adversarial" default.adversarial;
    variant = str "variant" default.variant;
    trace = str "trace" default.trace;
    backend = str "backend" default.backend;
  }

module type S = sig
  type t

  val name : string
  val horizon_hint : float
  val install : Sim.t -> params -> t
  val stop : t -> unit -> bool
  val check : t -> Check.verdict
  val violation : t -> string list
  val metrics : t -> (string * float) list
end

type packed = (module S)

(* ---- shared pieces ---- *)

(* The oracle behaviour combines the nominal gst with the fault spec's
   adversary strategy; with no adversary named this reduces to the
   historical default (perfect when gst <= 0, stormy otherwise). *)
let behavior_of p = Behavior.of_adversary p.faults.Faults.adversary ~gst:p.gst

let proposals_of p = Array.init p.n (fun i -> 100 + i)

(* Safety-only k-set verdict: validity, agreement and single-decision,
   but NOT termination — meaningful on partial (explored) runs, where
   "nobody decided yet" must not read as a violation. *)
let kset_safety ~k ~proposals decisions =
  let notes = ref [] in
  let add n = notes := n :: !notes in
  let values = List.sort_uniq compare (List.map (fun (_, v, _, _) -> v) decisions) in
  if List.length values > k then
    add
      (Printf.sprintf "agreement: %d distinct values decided, k = %d"
         (List.length values) k);
  List.iter
    (fun (p, v, _, _) ->
      if not (Array.exists (Int.equal v) proposals) then
        add
          (Printf.sprintf "validity: %s decided unproposed value %d"
             (Pid.to_string p) v))
    decisions;
  let pids = List.sort compare (List.map (fun (p, _, _, _) -> p) decisions) in
  let rec dups = function
    | a :: (b :: _ as rest) ->
        if a = b then add (Printf.sprintf "double decision by %s" (Pid.to_string a));
        dups rest
    | _ -> ()
  in
  dups pids;
  List.sort_uniq compare !notes

(* ---- protocols ---- *)

module Kset_p = struct
  type t = { sim : Sim.t; k : int; proposals : int array; h : Kset.t }

  let name = "kset"
  let horizon_hint = 5000.0

  let install sim p =
    let proposals = proposals_of p in
    let omega, tie_break =
      if p.adversarial then
        (* The E2 mis-use configuration (Theorem 5 tightness): a constant
           Ω_z trusted set and the adversary-friendly tie-break.  With
           z > k this is outside the algorithm's assumptions, and the
           explorer hunts the agreement violations. *)
        ( { Iface.trusted = (fun _ -> Pidset.of_list (List.init p.z Fun.id)) },
          Kset.By_pid )
      else (fst (Oracle.omega_z sim ~z:p.z ~behavior:(behavior_of p) ()), Kset.Smallest)
    in
    let h = Kset.install sim ~omega ~proposals ~tie_break () in
    { sim; k = p.k; proposals; h }

  let stop t () = Kset.all_correct_decided t.h

  let check t =
    Check.k_set_agreement t.sim ~k:t.k ~proposals:t.proposals
      ~decisions:(Kset.decisions t.h)

  let violation t = kset_safety ~k:t.k ~proposals:t.proposals (Kset.decisions t.h)

  let metrics t =
    [
      ("rounds", float_of_int (Kset.max_round t.h));
      ("msgs", float_of_int (Kset.messages_sent t.h));
      ("decided", float_of_int (List.length (Kset.decisions t.h)));
    ]
end

module Consensus_p = struct
  type t = { sim : Sim.t; proposals : int array; h : Consensus_s.t }

  let name = "consensus_s"
  let horizon_hint = 5000.0

  let install sim p =
    let proposals = proposals_of p in
    let suspector, _ = Oracle.es_x sim ~x:p.n ~behavior:(behavior_of p) () in
    let h = Consensus_s.install sim ~suspector ~proposals () in
    { sim; proposals; h }

  let stop t () = Consensus_s.all_correct_decided t.h

  let check t =
    Check.k_set_agreement t.sim ~k:1 ~proposals:t.proposals
      ~decisions:(Consensus_s.decisions t.h)

  let violation t = kset_safety ~k:1 ~proposals:t.proposals (Consensus_s.decisions t.h)

  let metrics t =
    [
      ("rounds", float_of_int (Consensus_s.max_round t.h));
      ("msgs", float_of_int (Consensus_s.messages_sent t.h));
      ("decided", float_of_int (List.length (Consensus_s.decisions t.h)));
    ]
end

module Wheels_p = struct
  type t = { sim : Sim.t; w : Wheels.t; mon : Monitor.t }

  let name = "wheels"
  let horizon_hint = 400.0

  let install sim p =
    let behavior = behavior_of p in
    let suspector, _ = Oracle.es_x sim ~x:p.x ~behavior () in
    let querier, _ = Oracle.ephi_y sim ~y:p.y ~behavior () in
    let w = Wheels.install sim ~suspector ~querier ~x:p.x ~y:p.y () in
    let omega = Wheels.omega w in
    let mon =
      Monitor.watch sim ~every:0.5 ~kind:"omega"
        ~read:(fun i -> omega.Iface.trusted i)
        ()
    in
    { sim; w; mon }

  let stop _ () = false

  let check t =
    Check.omega_z t.sim ~z:(Wheels.z t.w)
      ~deadline:(Sim.horizon t.sim -. 80.0)
      t.mon

  (* Eventual (liveness) classes have no finite-run safety property. *)
  let violation _ = []

  let metrics t =
    [
      ("stab", Wheels.stabilized_since t.w);
      ("msgs", float_of_int (Wheels.total_messages t.w));
    ]
end

module Psi_p = struct
  type t = { sim : Sim.t; p : Psi_to_omega.t; mon : Monitor.t }

  let name = "psi"
  let horizon_hint = 400.0

  let install sim p =
    let querier, _ = Oracle.psi_y sim ~y:p.y ~behavior:(behavior_of p) () in
    let h = Psi_to_omega.create sim ~querier ~y:p.y in
    let omega = Psi_to_omega.omega h in
    let mon =
      Monitor.watch sim ~every:0.5 ~kind:"omega"
        ~read:(fun i -> omega.Iface.trusted i)
        ()
    in
    (* The chain transformation sends no messages: keep the clock moving. *)
    Sim.ticker sim ~every:1.0;
    { sim; p = h; mon }

  let stop _ () = false

  let check t =
    Check.omega_z t.sim ~z:(Psi_to_omega.z t.p)
      ~deadline:(Sim.horizon t.sim -. 80.0)
      t.mon

  let violation _ = []

  let metrics t =
    [ ("queries_per_read", float_of_int (Psi_to_omega.queries_per_read t.p)) ]
end

module Reduce_p = struct
  type t = { sim : Sim.t; z : int; proposals : int array; h : Kset.t }

  let name = "reduce"
  let horizon_hint = 5000.0

  let install sim p =
    let behavior = behavior_of p in
    let omega, z =
      match p.variant with
      | "es" ->
          let suspector, _ = Oracle.es_x sim ~x:p.x ~behavior () in
          let w = Reduce.omega_from_es sim ~suspector ~x:p.x () in
          (Wheels.omega w, Wheels.z w)
      | "phi" ->
          let querier, _ = Oracle.ephi_y sim ~y:p.y ~behavior () in
          let w = Reduce.omega_from_phi sim ~querier ~y:p.y () in
          (Wheels.omega w, Wheels.z w)
      | "psi" ->
          let querier, _ = Oracle.psi_y sim ~y:p.y ~behavior () in
          let h = Reduce.omega_from_psi sim ~querier ~y:p.y in
          (Psi_to_omega.omega h, Psi_to_omega.z h)
      | v ->
          invalid_arg
            (Printf.sprintf "Protocol.reduce: unknown variant %S (es|phi|psi)" v)
    in
    let proposals = proposals_of p in
    let h = Reduce.solve_kset sim ~omega ~proposals () in
    { sim; z; proposals; h }

  let stop t () = Kset.all_correct_decided t.h

  let check t =
    Check.k_set_agreement t.sim ~k:t.z ~proposals:t.proposals
      ~decisions:(Kset.decisions t.h)

  let violation t = kset_safety ~k:t.z ~proposals:t.proposals (Kset.decisions t.h)

  let metrics t =
    [
      ("z", float_of_int t.z);
      ("rounds", float_of_int (Kset.max_round t.h));
      ("msgs", float_of_int (Kset.messages_sent t.h));
    ]
end

(* ---- registry ---- *)

let registry : (string * packed) list =
  [
    ("kset", (module Kset_p));
    ("consensus_s", (module Consensus_p));
    ("wheels", (module Wheels_p));
    ("psi", (module Psi_p));
    ("reduce", (module Reduce_p));
  ]

let find name = List.assoc_opt name registry
let names () = List.map fst registry

(* ---- running ---- *)

let resolve_horizon (module P : S) p =
  if p.horizon > 0.0 then p.horizon else P.horizon_hint

let trace_level_of p =
  match Trace.level_of_string p.trace with Ok l -> l | Error _ -> Trace.Default

let make_sim (module P : S) p =
  let sim =
    Sim.create
      ~horizon:(resolve_horizon (module P) p)
      ~legacy_poll:p.legacy_poll ~legacy_queue:p.legacy_queue ~trace_level:(trace_level_of p) ~n:p.n ~t:p.t
      ~seed:p.seed ()
  in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  let crash_list =
    let base = Crash.generate p.crashes ~n:p.n ~t:p.t rng in
    if p.faults.Faults.crashes = Crash.No_crashes then base
    else begin
      (* The fault spec's crashes extend the base schedule (earliest time
         wins per pid); the combined list goes through one
         [install_crashes] call so the resilience bound is enforced on
         the union — an over-budget spec raises right here. *)
      let frng = Rng.split_named (Sim.rng sim) "faultcrash" in
      let extra = Crash.generate p.faults.Faults.crashes ~n:p.n ~t:p.t frng in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (pid, tm) ->
          match Hashtbl.find_opt tbl pid with
          | Some tm' when tm' <= tm -> ()
          | _ -> Hashtbl.replace tbl pid tm)
        (base @ extra);
      List.sort compare (Hashtbl.fold (fun pid tm acc -> (pid, tm) :: acc) tbl [])
    end
  in
  Sim.install_crashes sim crash_list;
  Sim.set_faults sim p.faults;
  Sim.install_stalls sim p.faults.Faults.stalls;
  sim

type report = {
  rp_sim : Sim.t;
  rp_outcome : Sim.outcome;
  rp_verdict : Check.verdict;
  rp_violations : string list;
      (** safety-only violations ([S.violation]) — unlike [rp_verdict],
          meaningful even on runs whose fault windows never healed *)
  rp_metrics : (string * float) list;
}

(* Paper-facing metrics derived from the trace in one forward pass:
   when does Ω_z stabilize (last observed change of an "omega"-kind FD
   output, and the protocol round it happened in), when does ◇S_x's
   scope converge (last "es" change), how many messages per decision,
   how many rounds to decide.  Every registered protocol gets whichever
   of these its trace supports — an empty list at [trace = off]. *)
let obs_metrics sim =
  let tr = Sim.trace sim in
  if not (Trace.records_entries tr) then []
  else begin
    let n_dec = ref 0 and max_round = ref 0 in
    let cur_round : (Pid.t, int) Hashtbl.t = Hashtbl.create 16 in
    (* kind -> (time of last change, round it happened in if known) *)
    let last_fd : (string, float * int option) Hashtbl.t = Hashtbl.create 4 in
    Trace.iter
      (fun { Trace.time; entry } ->
        match entry with
        | Trace.Begin (Trace.Round { pid; round }) ->
            Hashtbl.replace cur_round pid round
        | Trace.Decide { round; _ } ->
            incr n_dec;
            if round > !max_round then max_round := round
        | Trace.Fd_change { pid; kind; _ } ->
            Hashtbl.replace last_fd kind (time, Hashtbl.find_opt cur_round pid)
        | _ -> ())
      tr;
    let sends =
      List.fold_left
        (fun acc (name, v) ->
          let suf = ".sent" in
          let ln = String.length name and ls = String.length suf in
          if ln >= ls && String.sub name (ln - ls) ls = suf then acc + v
          else acc)
        0 (Trace.counters tr)
    in
    let decide_metrics =
      if !n_dec = 0 then []
      else
        [
          ("obs.rounds_to_decide", float_of_int !max_round);
          ("obs.msgs_per_decision", float_of_int sends /. float_of_int !n_dec);
        ]
    in
    let fd_metrics kind prefix =
      match Hashtbl.find_opt last_fd kind with
      | None -> []
      | Some (time, round) ->
          (prefix ^ "_stab_time", time)
          ::
          (match round with
          | Some r -> [ (prefix ^ "_stab_round", float_of_int r) ]
          | None -> [])
    in
    decide_metrics @ fd_metrics "omega" "obs.omega" @ fd_metrics "es" "obs.es"
  end

(* Fault-layer observability: the trace counters bumped by Net/Sim when a
   spec is active (all zero — and omitted — on fault-free runs). *)
let fault_metrics sim =
  let tr = Sim.trace sim in
  List.filter_map
    (fun name ->
      match Trace.counter tr name with
      | 0 -> None
      | v -> Some (name, float_of_int v))
    [
      "fault.parked";
      "fault.dup";
      "fault.reorder";
      "fault.inflated";
      "fault.deferred";
      "fault.stalls";
      "net.retransmits";
      "net.backoff_resets";
    ]

let run (module P : S) p =
  let sim = make_sim (module P) p in
  let h = P.install sim p in
  let outcome = Sim.run ~stop_when:(P.stop h) sim in
  let verdict = P.check h in
  let metrics =
    P.metrics h @ obs_metrics sim @ fault_metrics sim
    @ [
        ("latency", outcome.Sim.end_time);
        ("sched.events", float_of_int outcome.Sim.events);
        ("sched.pred_evals", float_of_int (Sim.pred_evals sim));
        ("sched.signals", float_of_int (Sim.cond_signals sim));
        ("sched.wakeups", float_of_int (Sim.wakeups sim));
      ]
  in
  {
    rp_sim = sim;
    rp_outcome = outcome;
    rp_verdict = verdict;
    rp_violations = P.violation h;
    rp_metrics = metrics;
  }

let explore_make (module P : S) p () =
  let sim = make_sim (module P) p in
  let h = P.install sim p in
  {
    Explore.i_sim = sim;
    i_stop = P.stop h;
    i_violation = (fun () -> P.violation h);
    i_crashable = List.init p.n Fun.id;
  }
