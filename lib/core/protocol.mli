(** Unified protocol API.

    Every runnable artifact of the reproduction — the k-set agreement
    algorithm, the ◇S-based consensus baseline, the two-wheels and Ψ-chain
    transformations, and the generic reduction pipelines — is exposed
    behind one module type {!S} and a by-name {!registry}, so the CLI
    ([fdkit run/campaign/explore/replay]) and the bench harness share a
    single wiring instead of duplicating per-protocol setup.

    A protocol takes the flat {!params} record (unused fields are simply
    ignored by a given protocol), installs itself on a fresh simulator,
    and exposes a stop condition, a full-run checker, a {e safety-only}
    violation predicate (meaningful on partial runs — what {!Explore}
    hunts), and metrics. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd

type params = {
  n : int;
  t : int;
  seed : int;
  z : int;  (** Ω_z width (kset) *)
  k : int;  (** agreement degree checked (kset) *)
  x : int;  (** ◇S_x scope (wheels, reduce/es) *)
  y : int;  (** ◇φ_y / Ψ_y strength (wheels, psi, reduce) *)
  gst : float;  (** oracle stabilization time; 0 = perfect behavior *)
  horizon : float;  (** virtual-time budget; 0 = the protocol's hint *)
  crashes : Crash.spec;
  faults : Faults.t;
      (** the unified fault spec: link faults, partitions, stalls, extra
          crashes, and the oracle adversary strategy.  [Faults.none] (the
          default) reproduces historical behaviour exactly; the adversary
          name feeds [Behavior.of_adversary] against [gst]. *)
  legacy_poll : bool;
  legacy_queue : bool;
      (** run on the legacy closure-per-event queue instead of the flat
          event arena (differential baseline; see [Sim.create]) *)
  adversarial : bool;
      (** kset: constant Ω_z trusted set + [By_pid] tie-break — the E2
          mis-use configuration the explorer attacks (z > k violates) *)
  variant : string;  (** reduce source: ["es"], ["phi"] or ["psi"] *)
  trace : string;
      (** trace level: ["off"], ["default"] or ["full"] (unknown strings
          fall back to ["default"]).  Pure observability — the level
          never changes the execution. *)
  backend : string;
      (** execution substrate: ["sim"] (the deterministic simulator —
          default) or ["rt"] (real OCaml-5 domains over loopback, see
          [Setagree_rt]).  {!run} itself always simulates; the CLI and
          bench dispatch on this field. *)
}

val default : params

val params_to_json : params -> (string * Json.t) list
val params_of_json : (string * Json.t) list -> params
(** Tolerant inverse of {!params_to_json}: missing or ill-typed fields
    fall back to {!default} — a schedule file only needs the fields its
    protocol reads. *)

module type S = sig
  type t

  val name : string

  val horizon_hint : float
  (** Default virtual-time budget when [params.horizon = 0]. *)

  val install : Sim.t -> params -> t
  (** Wire the protocol (and the oracles it consumes) onto the simulator.
      Call before [Sim.run]. *)

  val stop : t -> unit -> bool
  (** Early-stop condition for [Sim.run] (e.g. all correct decided). *)

  val check : t -> Check.verdict
  (** Full-run verdict, including liveness (termination, eventual
      leadership); evaluate after the run. *)

  val violation : t -> string list
  (** Safety-only violations exhibited so far ([[]] = none) — valid on a
      partial run, hence usable as {!Explore}'s predicate.  Liveness-only
      protocols return [[]]. *)

  val metrics : t -> (string * float) list
end

type packed = (module S)

val registry : (string * packed) list
val find : string -> packed option
val names : unit -> string list

(** {1 Running} *)

type report = {
  rp_sim : Sim.t;
  rp_outcome : Sim.outcome;
  rp_verdict : Check.verdict;
  rp_violations : string list;
      (** safety-only violations ([S.violation]) — unlike [rp_verdict],
          meaningful even on runs whose fault windows never healed, so
          the chaos campaign asserts it on {e every} run *)
  rp_metrics : (string * float) list;
      (** the protocol's metrics, plus trace-derived observability
          metrics ([obs.*], see {!run}), fault-layer counters
          ([fault.*], [net.retransmits], [net.backoff_resets]; omitted
          when zero), plus latency and scheduler counters *)
}

val run : packed -> params -> report
(** Build a simulator from [params] (seeded crash generation under the
    ["crash"] RNG split, as the CLI always did), install, run to the stop
    condition, check.

    Unless [params.trace = "off"], [rp_metrics] additionally carries
    metrics derived from the trace in a single forward pass:
    [obs.rounds_to_decide] and [obs.msgs_per_decision] (protocols that
    decide), [obs.omega_stab_time] / [obs.omega_stab_round] (last
    observed Ω output change, and the protocol round containing it when
    round spans exist), and [obs.es_stab_time] (◇S_x scope-convergence
    instant). *)

val explore_make : packed -> params -> unit -> Explore.instance
(** Instance factory for {!Explore}: every call builds a fresh simulator
    and installation, so controlled runs are independent and
    deterministic in [(params, choices)].  All [n] processes are offered
    as crashable; the explorer enforces the resilience budget. *)

val proposals_of : params -> int array
(** The canonical proposal vector every runner uses: process [i]
    proposes [100 + i] — distinct per process, so agreement degrees are
    sharp. *)

val kset_safety :
  k:int -> proposals:int array -> (Pid.t * int * int * float) list -> string list
(** The safety-only fragment of {!Check.k_set_agreement} (validity,
    agreement, single-decision — no termination), shared by the kset-like
    protocols' [violation]. *)
