open Setagree_util
open Setagree_dsys
open Setagree_fd

type t = {
  z : int;
  chain : Pidset.t array; (* chain.(0) = Y[1], ..., sizes z, z+1, ..., n *)
  querier : Iface.querier;
}

let create sim ~(querier : Iface.querier) ~y =
  let n = Sim.n sim in
  let tb = Sim.t_bound sim in
  if y < 0 || y > tb then invalid_arg "Psi_to_omega.create: bad y";
  let z = tb + 1 - y in
  let len = Bounds.psi_chain_length ~n ~z in
  let chain =
    Array.init len (fun i ->
        (* Y[i+1] = the first z+i process identities. *)
        Pidset.of_list (List.init (z + i) Fun.id))
  in
  { z; chain; querier }

let z t = t.z
let chain t = Array.to_list t.chain
let queries_per_read t = Array.length t.chain

let trusted t i =
  let len = Array.length t.chain in
  (* First k with query(Y[k]) false; Y[0] = empty set is trivially true and
     is skipped.  If everything answers true (possible only under pre-gst
     noise), fall back to the last link. *)
  let rec find k =
    if k >= len then len - 1
    else if not (t.querier.Iface.query i t.chain.(k)) then k
    else find (k + 1)
  in
  let k = find 0 in
  if k = 0 then t.chain.(0) else Pidset.diff t.chain.(k) t.chain.(k - 1)

let omega t = { Iface.trusted = (fun i -> trusted t i) }
