(** The simple Ψ_y → Ω_z transformation of the paper's Appendix A
    (Figure 8), for [y + z = t + 1].

    A nested chain Y[0] = ∅ ⊂ Y[1] ⊂ ... ⊂ Y[n-z+1] = Π is fixed in
    advance, with |Y[1]| = z and each next set adding one process.  Reading
    [trusted_i] costs a few queries and no messages: find the first k with
    [query(Y[k]) = false] and return Y[k] \ Y[k-1].

    Why it works (paper Theorem 12): let m be minimal with a correct
    process in Y[m].  Eventually query(Y[j]) is true for j < m (liveness:
    those sets are entirely dead — Y[1..m-1] sizes are in the meaningful
    window because z = t+1-y puts |Y[1]| = t-y+1) and query(Y[m]) is false
    (safety), so everyone returns Y[m] \ Y[m-1]: the full Y[1] (size z) if
    m = 1, or the single — necessarily correct — process added at step m.

    All query arguments are nested, so the containment discipline of Ψ_y is
    respected by construction. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd

type t

val create : Sim.t -> querier:Iface.querier -> y:int -> t
(** Requires [0 <= y <= t]; the achieved width is [z = t + 1 - y].
    The querier must belong to Ψ_y (or φ_y — strictly stronger than
    needed). *)

val z : t -> int

val omega : t -> Iface.leader

val chain : t -> Pidset.t list
(** The nested sequence Y[1..n-z+1] (for tests). *)

val queries_per_read : t -> int
(** Worst-case queries one [trusted] read can make (chain length). *)
