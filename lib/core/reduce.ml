open Setagree_dsys
open Setagree_net
open Setagree_fd

let omega_from_es sim ~suspector ~x ?(step = 1.0) ?(delay = Delay.default) () =
  let querier = Iface.no_query_info ~t:(Sim.t_bound sim) in
  Wheels.install sim ~suspector ~querier ~x ~y:0 ~step ~delay ()

let omega_from_phi sim ~querier ~y ?(step = 1.0) ?(delay = Delay.default) () =
  Wheels.install sim ~suspector:Iface.no_suspicion ~querier ~x:1 ~y ~step ~delay ()

let omega_from_psi sim ~querier ~y = Psi_to_omega.create sim ~querier ~y

let solve_kset sim ~omega ~proposals ?(delay = Delay.default)
    ?(tie_break = Kset.Smallest) () =
  Kset.install sim ~omega ~proposals ~delay ~tie_break ()

let omega_from_full_scope_es sim ~suspector ?(step = 1.0) ?(delay = Delay.default) () =
  let lower = Wheels_lower.install sim ~suspector ~x:(Sim.n sim) ~step ~delay () in
  (* With x = n the only candidate set is Pi itself, so every process is a
     member and repr_i is the stabilized common leader. *)
  (lower, { Setagree_fd.Iface.trusted = (fun i -> Setagree_util.Pidset.singleton (Wheels_lower.repr lower i)) })

let es_from_omega (omega : Iface.leader) ~n =
  {
    Iface.suspected =
      (fun i ->
        let open Setagree_util in
        Pidset.remove i (Pidset.diff (Pidset.full ~n) (omega.Iface.trusted i)));
  }

let p_from_phi_t (querier : Iface.querier) ~n =
  {
    Iface.suspected =
      (fun i ->
        let open Setagree_util in
        Pidset.filter
          (fun j -> j <> i && querier.Iface.query i (Pidset.singleton j))
          (Pidset.full ~n));
  }

let phi_t_from_p (suspector : Iface.suspector) ~t =
  {
    Iface.query =
      (fun i x ->
        let open Setagree_util in
        let c = Pidset.cardinal x in
        if c <= 0 then true
        else if c > t then false
        else Pidset.subset x (suspector.Iface.suspected i));
  }

let weaken_omega (omega : Iface.leader) = omega
let weaken_suspector (s : Iface.suspector) = s

let weaken_phi (querier : Iface.querier) ~t ~y' =
  {
    Iface.query =
      (fun i x ->
        let c = Setagree_util.Pidset.cardinal x in
        if c <= t - y' then true else querier.Iface.query i x);
  }
