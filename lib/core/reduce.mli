(** Reductions between failure-detector classes, by composition of the
    paper's transformations (the paper's own methodology: "use as much as
    possible reduction algorithms, striving not to reinvent the wheel").

    Positive direction of the grid (Figure 1):
    - ◇S_x → Ω_{t+2-x}: two wheels with y = 0 (φ_0 carries no
      information, so the upper wheel works on query triviality alone);
    - ◇φ_y → Ω_{t+1-y}: two wheels with x = 1 (the no-suspicion module is
      a legal degenerate lower input at x = 1: repr_i = i satisfies the
      lower wheel's contract with X = the singleton of any correct
      process);
    - Ψ_y → Ω_{t+1-y}: Appendix A's direct chain ({!Psi_to_omega}),
      exponentially cheaper than the wheels;
    - any of those → k-set agreement for k >= z, via Figure 3. *)

open Setagree_dsys
open Setagree_net
open Setagree_fd

val omega_from_es :
  Sim.t ->
  suspector:Iface.suspector ->
  x:int ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  Wheels.t
(** ◇S_x → Ω_z, z = t + 2 - x.  The suspector must belong to ◇S_x. *)

val omega_from_phi :
  Sim.t ->
  querier:Iface.querier ->
  y:int ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  Wheels.t
(** ◇φ_y → Ω_z, z = t + 1 - y.  The querier must belong to ◇φ_y. *)

val omega_from_psi : Sim.t -> querier:Iface.querier -> y:int -> Psi_to_omega.t
(** Ψ_y → Ω_{t+1-y} (no messages at all). *)

val solve_kset :
  Sim.t ->
  omega:Iface.leader ->
  proposals:int array ->
  ?delay:Delay.t ->
  ?tie_break:Kset.tie_break ->
  unit ->
  Kset.t
(** Run Figure 3 over any Ω_z source (oracle or built); solves k-set
    agreement for every k >= z when t < n/2. *)

(** {1 Classic equivalences and weakenings}

    The transformations the paper leans on from prior work (its §1 and
    §2.2): ◇S ↔ Ω (references [5, 17]), φ_t ≃ P / ◇φ_t ≃ ◇P, and the
    inclusion maps down each family. *)

val omega_from_full_scope_es :
  Sim.t ->
  suspector:Iface.suspector ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  Wheels_lower.t * Iface.leader
(** ◇S (= ◇S_n) → Ω, with the lower wheel {e alone} over the single set
    X = Π: the common representative is the eventual leader.  This is the
    quiescent reliable-broadcast-based ◇S-to-Ω transformation of the
    paper's reference [17] — and shows the lower wheel is that
    construction generalized to x < n. *)

val es_from_omega : Iface.leader -> n:int -> Iface.suspector
(** Ω (= Ω_1) → ◇S: suspect everyone but the current leader (and
    yourself).  Completeness holds because the eventual leader is correct;
    accuracy because the leader is eventually never suspected.  Only
    sound from Ω_1 — an Ω_z set with z >= 2 may retain crashed members
    forever, breaking completeness. *)

val p_from_phi_t : Iface.querier -> n:int -> Iface.suspector
(** φ_t → P (◇φ_t → ◇P): with y = t, singletons are in the meaningful
    window, so [suspected_i = { j | query({j}) }] is exact (eventually
    exact for the ◇ version).  One half of the paper's "φ_t and P are
    equivalent". *)

val phi_t_from_p : Iface.suspector -> t:int -> Iface.querier
(** P → φ_t (◇P → ◇φ_t): answer the meaningful window with
    [X ⊆ suspected_i]; the other half of the equivalence. *)

val weaken_omega : Iface.leader -> Iface.leader
(** Ω_z ⊆ Ω_{z'} for z' >= z: the identity (documented coercion). *)

val weaken_suspector : Iface.suspector -> Iface.suspector
(** S_x ⊆ S_{x'} and ◇S_x ⊆ ◇S_{x'} for x' <= x: the identity. *)

val weaken_phi : Iface.querier -> t:int -> y':int -> Iface.querier
(** φ_y → φ_{y'} for y' <= y: same answers, except that the wider
    triviality band of y' (|X| <= t - y') must answer true without
    consulting the stronger module. *)
