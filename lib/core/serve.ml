(* fdkit serve: the crash-safe campaign daemon.

   A long-running process listening on a Unix domain socket.  Frames in
   both directions are newline-delimited JSON (one value per line,
   decoded incrementally with Util.Json.Stream).  Clients submit
   Job.specs; the daemon validates, queues them on a bounded FIFO,
   executes them one at a time on the campaign engine (worker domains),
   streams progress events back live, and resolves warm jobs from the
   content-addressed result cache.

   Concurrency model: one reader domain per connection (ops — submit,
   cancel, status, subscription toggles — are handled promptly, even
   while a job runs), capped at [max_reader_domains] — OCaml 5 bounds
   live domains and the campaign engine's workers share that budget,
   so a connection burst sheds instead of crashing — plus one executor
   domain that drains the FIFO.  One job runs at a time: parallelism
   lives inside the campaign engine (worker domains), not across jobs,
   so two submissions never fight over domains or artifact files.  All
   shared state sits behind one mutex [t.m].  Outbound frames never
   block: each client has a FIFO of pending frames drained by
   non-blocking writes (at enqueue time and whenever the reader's
   select reports the socket writable), so a client that stops reading
   stalls only itself — once [max_outbound_bytes] pile up it is shed.
   Submit acks are enqueued while [t.m] is held and the executor needs
   [t.m] to dequeue, so a job's ack always precedes its progress/done
   frames in the client's outbound FIFO.

   Crash safety (DESIGN.md §13): every accepted spec and every state
   transition is appended (fsync'd) to <out_dir>/serve_journal.jsonl
   via Util.Journal.  On start the journal is replayed: completed jobs
   are reported in [status], interrupted ones are re-enqueued (cheap —
   their finished prefix is in the cache), and a stale socket left by a
   crashed daemon is probed and unlinked before bind.  Jobs that blow
   their wall-clock deadline or crash the executor are retried with
   capped exponential backoff up to a retry budget, then quarantined as
   poison with a ready-to-paste resubmission command in the journal.  *)

open Setagree_util
open Setagree_runner

type config = {
  socket_path : string;
  cache_dir : string option;  (* None = caching off *)
  jobs : int option;  (* worker domains; None = Runner.default_jobs *)
  out_dir : string;  (* artifact directory (and journal home) *)
  log : string -> unit;  (* daemon-side logging *)
  queue_depth : int;  (* max jobs waiting (running job not counted) *)
  default_deadline_s : float;  (* per-attempt wall clock; <= 0 = none *)
  retry_budget : int;  (* retries after the first attempt, then poison *)
  retry_backoff_s : float;  (* base of the capped exponential backoff *)
  resume : bool;  (* re-enqueue interrupted journal jobs on start *)
}

let default_config =
  {
    socket_path = Filename.concat "_results" "fdkit.sock";
    cache_dir = Some Runner.Cache.default_dir;
    jobs = None;
    out_dir = "_results";
    log = ignore;
    queue_depth = 16;
    default_deadline_s = 0.;
    retry_budget = 2;
    retry_backoff_s = 1.0;
    resume = true;
  }

let journal_path out_dir = Filename.concat out_dir "serve_journal.jsonl"

(* ---- job history ---- *)

type state = Queued | Running | Done | Cancelled | Rejected | Poisoned

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Rejected -> "rejected"
  | Poisoned -> "poisoned"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "cancelled" -> Some Cancelled
  | "rejected" -> Some Rejected
  | "poisoned" -> Some Poisoned
  | _ -> None

let is_terminal = function
  | Done | Cancelled | Rejected | Poisoned -> true
  | Queued | Running -> false

(* One connected client.  [subscribed] gates telemetry frames only —
   progress/ack/done always flow.  [cl_last_submit] remembers the most
   recent job this client submitted (or attached to), so a bare
   {"op":"cancel"} can be routed without an id.

   Outbound frames go through [cl_outq], written with non-blocking
   writes only — a send never blocks, so a client whose socket buffer
   is full (stopped reading) can never wedge the executor or the other
   connections' ops.  A backlog past [max_outbound_bytes] marks the
   client dead ([cl_dead]); its reader turns that into a normal
   disconnect. *)
type client = {
  cl_fd : Unix.file_descr;  (* set non-blocking by the reader *)
  cl_dec : Json.Stream.decoder;
  cl_wmutex : Mutex.t;  (* guards the outbound fields below *)
  cl_outq : string Queue.t;  (* whole frames (line included), oldest first *)
  mutable cl_out_pos : int;  (* bytes of the queue head already written *)
  mutable cl_out_bytes : int;  (* unwritten bytes across the whole queue *)
  mutable cl_dead : bool;  (* write error or slow-consumer shed *)
  mutable subscribed : bool;
  mutable cl_last_submit : int;  (* 0 = none *)
}

type record = {
  id : int;
  spec : Job.spec option;  (* None for rejected frames that never parsed *)
  canonical : string;  (* Job.canonical; "" when spec is None *)
  deadline_s : float;  (* per-attempt wall-clock budget; <= 0 = none *)
  resumed : bool;  (* re-enqueued from the journal on daemon start *)
  mutable rstate : state;
  mutable phase : string;  (* finer-grained than rstate while running *)
  mutable exit_code : int;
  mutable cache_hits : int;
  mutable executed : int;
  mutable cache_skipped : int;
  mutable signature : string;  (* MD5 of the campaign signature *)
  mutable errors : string list;
  mutable last_telemetry_s : float;  (* Unix time of last snapshot; 0. = never *)
  mutable attempt : int;  (* 0-based execution attempt *)
  mutable not_before : float;  (* backoff gate (Unix time); 0. = ready *)
  mutable cancel_req : bool;  (* consumed by the running job's stop hook *)
  mutable watchers : client list;  (* clients streaming this job *)
  mutable ever_watched : bool;  (* false only for journal-resumed jobs *)
}

(* ---- framing ---- *)

let max_outbound_bytes = 8 * 1024 * 1024
let max_reader_domains = 32

(* Call with [cl.cl_wmutex] held. *)
let clear_outbound cl =
  cl.cl_dead <- true;
  Queue.clear cl.cl_outq;
  cl.cl_out_pos <- 0;
  cl.cl_out_bytes <- 0

(* Write as much queued outbound as the socket accepts right now.
   Call with [cl.cl_wmutex] held; never blocks (the fd is
   non-blocking). *)
let rec flush_outbound cl =
  match Queue.peek_opt cl.cl_outq with
  | None -> ()
  | Some s -> (
      let remaining = String.length s - cl.cl_out_pos in
      match Unix.write_substring cl.cl_fd s cl.cl_out_pos remaining with
      | n ->
          cl.cl_out_bytes <- cl.cl_out_bytes - n;
          if n = remaining then begin
            ignore (Queue.pop cl.cl_outq);
            cl.cl_out_pos <- 0;
            flush_outbound cl
          end
          else cl.cl_out_pos <- cl.cl_out_pos + n
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
          (* Hung-up client (EPIPE et al., SIGPIPE is ignored while
             serving): the reader sees [cl_dead] and disconnects. *)
          clear_outbound cl)

let send_client cl j =
  Mutex.lock cl.cl_wmutex;
  if not cl.cl_dead then begin
    let s = Json.to_string ~minify:true j ^ "\n" in
    Queue.push s cl.cl_outq;
    cl.cl_out_bytes <- cl.cl_out_bytes + String.length s;
    flush_outbound cl;
    (* A reader that stopped draining its socket: shed it rather than
       buffer without bound. *)
    if cl.cl_out_bytes > max_outbound_bytes then clear_outbound cl
  end;
  Mutex.unlock cl.cl_wmutex

let error_frame ?id msg =
  Json.Obj
    ((match id with None -> [] | Some id -> [ ("id", Json.Int id) ])
    @ [ ("type", Json.String "error"); ("message", Json.String msg) ])

let sig_md5 c = Digest.to_hex (Digest.string (Runner.signature c))

let record_json r =
  Json.Obj
    [
      ("id", Json.Int r.id);
      ( "kind",
        Json.String (match r.spec with Some s -> Job.kind s | None -> "?") );
      ( "summary",
        Json.String (match r.spec with Some s -> Job.summary s | None -> "?") );
      ("state", Json.String (state_to_string r.rstate));
      ("phase", Json.String r.phase);
      ("exit", Json.Int r.exit_code);
      ("attempt", Json.Int r.attempt);
      ("resumed", Json.Bool r.resumed);
      ("cache_hits", Json.Int r.cache_hits);
      ("executed", Json.Int r.executed);
      ("cache_skipped", Json.Int r.cache_skipped);
      ("signature", Json.String r.signature);
      ( "telemetry_age_s",
        if r.last_telemetry_s <= 0. then Json.Null
        else Json.Float (Unix.gettimeofday () -. r.last_telemetry_s) );
      ("errors", Json.List (List.map (fun e -> Json.String e) r.errors));
    ]

let subscription_frame cl =
  Json.Obj
    [
      ("type", Json.String (if cl.subscribed then "subscribed" else "unsubscribed"));
    ]

let telemetry_frame id te =
  let fields =
    match Runner.telemetry_json te with
    | Json.Obj fields -> fields
    | j -> [ ("telemetry", j) ]
  in
  Json.Obj
    (("type", Json.String "telemetry") :: ("id", Json.Int id) :: fields)

(* ---- journal schema + recovery ---- *)

module Recovery = struct
  let accepted_entry ~id ?(deadline_s = 0.) spec =
    Json.Obj
      [
        ("type", Json.String "accepted");
        ("id", Json.Int id);
        ("deadline_s", Json.Float deadline_s);
        ("spec", Job.to_json spec);
      ]

  let state_entry ~id ?(attempt = 0) ?(extra = []) st =
    Json.Obj
      ([
         ("type", Json.String "state");
         ("id", Json.Int id);
         ("state", Json.String st);
         ("attempt", Json.Int attempt);
       ]
      @ extra)

  type pending = { p_id : int; p_spec : Job.spec; p_deadline_s : float }

  type completed = {
    f_id : int;
    f_spec : Job.spec;
    f_state : state;
    f_exit : int;
    f_signature : string;
  }

  type t = {
    completed : completed list;  (* terminal jobs, oldest first *)
    pending : pending list;  (* accepted, no terminal entry; FIFO order *)
    next_id : int;
    dropped_lines : int;
    dropped_bytes : int;
  }

  let int_member k j =
    match Json.member k j with
    | Some (Json.Int i) -> Some i
    | Some (Json.Float f) -> Some (int_of_float f)
    | _ -> None

  let float_member k j =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None

  (* Replay the journal into (completed, pending).  Tolerant by design:
     unknown entry types are skipped, an id's first terminal entry wins
     (a duplicate "done" from a half-compacted journal cannot re-run or
     double-report a job), and a truncated tail was already dropped by
     Journal.load — so the result is always a prefix-consistent view of
     what the dead daemon actually accepted and finished. *)
  let load path =
    let { Journal.entries; dropped_lines; dropped_bytes } = Journal.load path in
    let accepted : (int, pending) Hashtbl.t = Hashtbl.create 16 in
    let accept_order = ref [] in
    let finished : (int, completed) Hashtbl.t = Hashtbl.create 16 in
    let finish_order = ref [] in
    let next = ref 1 in
    List.iter
      (fun e ->
        match Json.member "type" e with
        | Some (Json.String "accepted") -> (
            match (int_member "id" e, Json.member "spec" e) with
            | Some id, Some sj when not (Hashtbl.mem accepted id) -> (
                match Job.of_json sj with
                | Ok spec ->
                    let p_deadline_s =
                      Option.value ~default:0. (float_member "deadline_s" e)
                    in
                    Hashtbl.replace accepted id { p_id = id; p_spec = spec; p_deadline_s };
                    accept_order := id :: !accept_order;
                    if id >= !next then next := id + 1
                | Error _ -> ())
            | _ -> ())
        | Some (Json.String "state") -> (
            match (int_member "id" e, Json.member "state" e) with
            | Some id, Some (Json.String st) -> (
                match state_of_string st with
                | Some s
                  when is_terminal s
                       && Hashtbl.mem accepted id
                       && not (Hashtbl.mem finished id) ->
                    let p = Hashtbl.find accepted id in
                    Hashtbl.replace finished id
                      {
                        f_id = id;
                        f_spec = p.p_spec;
                        f_state = s;
                        f_exit = Option.value ~default:0 (int_member "exit" e);
                        f_signature =
                          (match Json.member "signature" e with
                          | Some (Json.String s) -> s
                          | _ -> "");
                      };
                    finish_order := id :: !finish_order
                | _ -> ())
            | _ -> ())
        | _ -> ())
      entries;
    let completed = List.rev_map (Hashtbl.find finished) !finish_order in
    let pending =
      List.rev !accept_order
      |> List.filter (fun id -> not (Hashtbl.mem finished id))
      |> List.map (Hashtbl.find accepted)
    in
    { completed; pending; next_id = !next; dropped_lines; dropped_bytes }
end

(* ---- the daemon ---- *)

type t = {
  cfg : config;
  cache : Runner.Cache.t option;
  m : Mutex.t;  (* guards every mutable field below + record mutation *)
  journal : Journal.t;
  mutable history : record list;  (* newest first *)
  mutable queue : record list;  (* FIFO, oldest first; subset of history *)
  mutable running : record option;
  mutable next_id : int;
  mutable shutdown : bool;
  mutable jobs_retried : int;
  mutable jobs_poisoned : int;
}

(* Journal IO failures (disk full, …) must degrade durability, not
   availability: the daemon keeps serving, recovery just knows less. *)
let jlog t entry =
  try Journal.append t.journal entry
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Call with [t.m] held. *)
let fresh_record ?(deadline_s = 0.) ?(resumed = false) t spec =
  let r =
    {
      id = t.next_id;
      spec;
      canonical = (match spec with Some s -> Job.canonical s | None -> "");
      deadline_s;
      resumed;
      rstate = Queued;
      phase = "queued";
      exit_code = 0;
      cache_hits = 0;
      executed = 0;
      cache_skipped = 0;
      signature = "";
      errors = [];
      last_telemetry_s = 0.;
      attempt = 0;
      not_before = 0.;
      cancel_req = false;
      watchers = [];
      ever_watched = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.history <- r :: t.history;
  r

let queue_depth t =
  List.length t.queue + (match t.running with Some _ -> 1 | None -> 0)

let dequeue t r = t.queue <- List.filter (fun x -> x.id <> r.id) t.queue

(* Call with [t.m] held, from the concluding transition itself — the
   running slot must read empty before the job's done frame hits the
   wire, or a status sent right after [done] still counts the job. *)
let clear_running t r =
  match t.running with Some x when x == r -> t.running <- None | _ -> ()

(* Call with [t.m] held; watchers are snapshot so frames are written
   after the lock is released. *)
let watchers_of r = r.watchers

let done_frame r ~jobs ~failed ~cancelled ~wall ~extra =
  Json.Obj
    ([
       ("type", Json.String "done");
       ("id", Json.Int r.id);
       ("state", Json.String (state_to_string r.rstate));
       ("exit", Json.Int r.exit_code);
       ("jobs", Json.Int jobs);
       ("failed", Json.Int failed);
       ("cache_hits", Json.Int r.cache_hits);
       ("executed", Json.Int r.executed);
       ("cache_skipped", Json.Int r.cache_skipped);
       ("cancelled", Json.Bool cancelled);
       ("wall_s", Json.Float wall);
       ("signature", Json.String r.signature);
     ]
    @ extra)

(* Capped exponential backoff before retry [attempt] (1-based): the
   Fd.Timeout delay shape — base * 2^(attempt-1), capped — minus the
   jitter (a deterministic daemon is easier to test and to reason about
   after a crash). *)
let backoff_delay t attempt =
  Float.min 60. (t.cfg.retry_backoff_s *. (2. ** float_of_int (max 0 (attempt - 1))))

(* A failed attempt (deadline blown or executor crash): retry with
   backoff while budget remains, else quarantine as poison with a
   ready-to-paste resubmission command in the journal. *)
let conclude_failure t r note =
  Mutex.lock t.m;
  r.errors <- r.errors @ [ note ];
  if r.attempt < t.cfg.retry_budget then begin
    r.attempt <- r.attempt + 1;
    let delay = backoff_delay t r.attempt in
    r.not_before <- Unix.gettimeofday () +. delay;
    r.rstate <- Queued;
    r.phase <-
      Printf.sprintf "backoff %.3gs (retry %d/%d)" delay r.attempt
        t.cfg.retry_budget;
    r.cancel_req <- false;
    t.jobs_retried <- t.jobs_retried + 1;
    clear_running t r;
    t.queue <- t.queue @ [ r ];
    jlog t
      (Recovery.state_entry ~id:r.id ~attempt:r.attempt
         ~extra:
           [ ("backoff_s", Json.Float delay); ("reason", Json.String note) ]
         "retrying");
    let ws = watchers_of r in
    t.cfg.log
      (Printf.sprintf "job %d: %s; retry %d/%d in %.3gs" r.id note r.attempt
         t.cfg.retry_budget delay);
    Mutex.unlock t.m;
    List.iter
      (fun cl ->
        send_client cl
          (Json.Obj
             [
               ("type", Json.String "retry");
               ("id", Json.Int r.id);
               ("attempt", Json.Int r.attempt);
               ("backoff_s", Json.Float delay);
               ("reason", Json.String note);
             ]))
      ws
  end
  else begin
    r.rstate <- Poisoned;
    r.phase <- "poisoned";
    r.exit_code <- 6;
    clear_running t r;
    t.jobs_poisoned <- t.jobs_poisoned + 1;
    let replay =
      match r.spec with
      | None -> ""
      | Some spec -> (
          match
            Job.write_spec ~dir:t.cfg.out_dir
              ~name:(Printf.sprintf "poison_job_%d.json" r.id)
              spec
          with
          | Some path -> Printf.sprintf "fdkit submit --spec %s" path
          | None -> "")
    in
    jlog t
      (Recovery.state_entry ~id:r.id ~attempt:r.attempt
         ~extra:
           [
             ("exit", Json.Int r.exit_code);
             ("reason", Json.String note);
             ("replay", Json.String replay);
           ]
         "poisoned");
    let ws = watchers_of r in
    t.cfg.log
      (Printf.sprintf "job %d: poisoned after %d attempts (%s)" r.id
         (r.attempt + 1) note);
    Mutex.unlock t.m;
    List.iter
      (fun cl ->
        send_client cl
          (done_frame r ~jobs:0 ~failed:0 ~cancelled:false ~wall:0.
             ~extra:
               [
                 ("reason", Json.String note); ("replay", Json.String replay);
               ]))
      ws
  end

(* A finished attempt (the campaign ran to completion or was cancelled
   at a job boundary by a client/orphan stop). *)
let finalize t r (o : Job.outcome) final =
  let c = o.Job.o_campaign in
  r.phase <- "writing artifacts";
  (match r.spec with
  | None | Some (Job.Run _ | Job.Replay _) -> ()
  | Some ((Job.Campaign _ | Job.Chaos _ | Job.Explore _) as spec) -> (
      try
        ignore (Runner.write_artifact ~dir:t.cfg.out_dir c);
        (match o.Job.o_chaos with
        | Some co ->
            ignore (Chaos.write_failures ~dir:t.cfg.out_dir co.Chaos.o_failures)
        | None -> ());
        match (spec, o.Job.o_ces) with
        | Job.Explore { protocol; _ }, ces ->
            ignore (Explorer.write_counterexamples ~dir:t.cfg.out_dir ~protocol ces)
        | _ -> ()
      with Sys_error e -> r.errors <- r.errors @ [ "artifact write failed: " ^ e ]));
  Mutex.lock t.m;
  clear_running t r;
  r.rstate <- final;
  r.phase <- "finished";
  r.exit_code <- o.Job.o_exit;
  r.cache_hits <- c.Runner.c_cache_hits;
  r.executed <- c.Runner.c_executed;
  r.cache_skipped <- c.Runner.c_cache_skipped;
  r.signature <- sig_md5 c;
  jlog t
    (Recovery.state_entry ~id:r.id ~attempt:r.attempt
       ~extra:
         [
           ("exit", Json.Int r.exit_code);
           ("signature", Json.String r.signature);
         ]
       (state_to_string r.rstate));
  let ws = watchers_of r in
  t.cfg.log
    (Printf.sprintf "job %d: %s exit=%d hits=%d executed=%d skipped=%d" r.id
       (state_to_string r.rstate) r.exit_code r.cache_hits r.executed
       r.cache_skipped);
  Mutex.unlock t.m;
  List.iter
    (fun cl ->
      send_client cl
        (done_frame r
           ~jobs:(Array.length c.Runner.c_results)
           ~failed:(List.length (Runner.failures c))
           ~cancelled:c.Runner.c_cancelled ~wall:c.Runner.c_wall_s ~extra:[]))
    ws

(* Run one dequeued record on the executor domain.  The stop hook is
   polled by the campaign engine between job submissions: it folds in
   client cancels, orphaned jobs (every watcher hung up), the per-job
   wall-clock deadline, and daemon shutdown. *)
let execute_record t r =
  let spec = Option.get r.spec in
  t.cfg.log
    (Printf.sprintf "job %d attempt %d: %s" r.id r.attempt (Job.summary spec));
  let started = Unix.gettimeofday () in
  let deadline =
    if r.deadline_s > 0. then Some (started +. r.deadline_s) else None
  in
  let stop_reason = ref `Running in
  let stop () =
    Mutex.lock t.m;
    let reason =
      if t.shutdown then Some `Shutdown
      else if r.cancel_req then Some `Cancel
      else if r.ever_watched && (not r.resumed) && r.watchers = [] then
        Some `Orphaned
      else
        match deadline with
        | Some d when Unix.gettimeofday () > d -> Some `Deadline
        | _ -> None
    in
    Mutex.unlock t.m;
    match reason with
    | Some why ->
        stop_reason := why;
        true
    | None -> false
  in
  let snapshot_watchers () =
    Mutex.lock t.m;
    let ws = r.watchers in
    Mutex.unlock t.m;
    ws
  in
  let on_progress (p : Runner.progress) =
    let frame =
      Json.Obj
        [
          ("type", Json.String "progress");
          ("id", Json.Int r.id);
          ("done", Json.Int p.Runner.pr_done);
          ("total", Json.Int p.Runner.pr_total);
          ("cached", Json.Bool p.Runner.pr_cached);
          ("label", Json.String p.Runner.pr_result.Runner.r_label);
          ("ok", Json.Bool p.Runner.pr_result.Runner.r_ok);
        ]
    in
    List.iter (fun cl -> send_client cl frame) (snapshot_watchers ())
  in
  (* Always attached: the ticker keeps the record's freshness stamp for
     [status] even when nobody listens; the frame itself is gated on
     each watcher's subscription. *)
  let on_telemetry (te : Runner.telemetry) =
    r.last_telemetry_s <- Unix.gettimeofday ();
    let frame = lazy (telemetry_frame r.id te) in
    List.iter
      (fun cl -> if cl.subscribed then send_client cl (Lazy.force frame))
      (snapshot_watchers ())
  in
  match
    Job.execute ?jobs:t.cfg.jobs ?cache:t.cache ~on_progress ~on_telemetry
      ~stop spec
  with
  | exception exn ->
      conclude_failure t r ("raised: " ^ Printexc.to_string exn)
  | o ->
      if o.Job.o_campaign.Runner.c_cancelled then
        match !stop_reason with
        | `Deadline ->
            conclude_failure t r
              (Printf.sprintf "deadline exceeded (%.3gs)" r.deadline_s)
        | `Shutdown ->
            (* No terminal journal entry: the job stays pending, so the
               next daemon start re-enqueues it (its finished prefix is
               already in the cache). *)
            Mutex.lock t.m;
            clear_running t r;
            r.rstate <- Queued;
            r.phase <- "interrupted by shutdown";
            Mutex.unlock t.m
        | `Cancel | `Orphaned | `Running -> finalize t r o Cancelled
      else finalize t r o Done

(* The executor domain: drain the FIFO, skipping entries still inside
   their backoff window.  Polling (rather than a condvar) keeps the
   wakeup logic trivially correct across backoff releases, and 20ms of
   latency is noise next to a campaign. *)
let executor_loop t =
  let rec loop () =
    Mutex.lock t.m;
    if t.shutdown then Mutex.unlock t.m
    else begin
      let tnow = Unix.gettimeofday () in
      match List.find_opt (fun r -> r.not_before <= tnow) t.queue with
      | None ->
          Mutex.unlock t.m;
          Unix.sleepf 0.02;
          loop ()
      | Some r ->
          dequeue t r;
          t.running <- Some r;
          r.rstate <- Running;
          r.phase <- "running";
          jlog t (Recovery.state_entry ~id:r.id ~attempt:r.attempt "running");
          Mutex.unlock t.m;
          execute_record t r;
          Mutex.lock t.m;
          t.running <- None;
          Mutex.unlock t.m;
          loop ()
    end
  in
  loop ()

(* ---- ops (reader domains) ---- *)

let status_frame t =
  (* Call with [t.m] held. *)
  Json.Obj
    [
      ("type", Json.String "status");
      ("queue_depth", Json.Int (queue_depth t));
      ( "running",
        match t.running with None -> Json.Null | Some r -> Json.Int r.id );
      ("jobs", Json.List (List.rev_map record_json t.history));
      ( "counters",
        Json.Obj
          [
            ("jobs_retried", Json.Int t.jobs_retried);
            ("jobs_poisoned", Json.Int t.jobs_poisoned);
          ] );
      ( "cache",
        match t.cache with
        | None -> Json.Null
        | Some cache ->
            Json.Obj
              [
                ("dir", Json.String (Runner.Cache.dir cache));
                ("hits", Json.Int (Runner.Cache.hits cache));
                ("misses", Json.Int (Runner.Cache.misses cache));
                ("stores", Json.Int (Runner.Cache.stores cache));
                ("corrupt", Json.Int (Runner.Cache.corrupt cache));
                ("write_failed", Json.Int (Runner.Cache.write_failed cache));
              ] );
    ]

let handle_submit t cl v =
  match Json.member "spec" v with
  | None -> send_client cl (error_frame "submit: missing \"spec\"")
  | Some sj -> (
      match Job.of_json sj with
      | Error e -> send_client cl (error_frame ("submit: " ^ e))
      | Ok spec -> (
          match Job.validate spec with
          | Error errs ->
              Mutex.lock t.m;
              let r = fresh_record t (Some spec) in
              r.rstate <- Rejected;
              r.phase <- "rejected";
              r.exit_code <- 3;
              r.errors <- errs;
              let ack =
                Json.Obj
                  [
                    ("type", Json.String "ack");
                    ("id", Json.Int r.id);
                    ("accepted", Json.Bool false);
                    ("errors", Json.List (List.map (fun e -> Json.String e) errs));
                  ]
              in
              Mutex.unlock t.m;
              send_client cl ack
          | Ok () -> (
              let deadline_s =
                match Recovery.float_member "deadline_s" v with
                | Some d when d > 0. -> d
                | _ -> t.cfg.default_deadline_s
              in
              let canonical = Job.canonical spec in
              Mutex.lock t.m;
              (* Dedup: a spec already queued or running gains a watcher
                 instead of a duplicate execution. *)
              match
                List.find_opt
                  (fun r -> (not (is_terminal r.rstate)) && r.canonical = canonical)
                  t.history
              with
              | Some r ->
                  if not (List.memq cl r.watchers) then
                    r.watchers <- r.watchers @ [ cl ];
                  r.ever_watched <- true;
                  cl.cl_last_submit <- r.id;
                  (* Ack enqueued under [t.m] (never blocks): the
                     executor dequeues under the same lock, so the ack
                     precedes any done frame in this client's FIFO. *)
                  send_client cl
                    (Json.Obj
                       [
                         ("type", Json.String "ack");
                         ("id", Json.Int r.id);
                         ("accepted", Json.Bool true);
                         ("attached", Json.Bool true);
                         ("state", Json.String (state_to_string r.rstate));
                         ("summary", Json.String (Job.summary spec));
                       ]);
                  Mutex.unlock t.m
              | None ->
                  if List.length t.queue >= t.cfg.queue_depth then begin
                    (* Graceful shedding: an explicit rejection frame,
                       no record, no hang. *)
                    send_client cl
                      (Json.Obj
                         [
                           ("type", Json.String "ack");
                           ("id", Json.Int 0);
                           ("accepted", Json.Bool false);
                           ("rejected", Json.String "queue full");
                           ( "errors",
                             Json.List
                               [
                                 Json.String
                                   (Printf.sprintf
                                      "rejected: queue full (depth %d)"
                                      t.cfg.queue_depth);
                               ] );
                         ]);
                    Mutex.unlock t.m
                  end
                  else begin
                    let r = fresh_record ~deadline_s t (Some spec) in
                    r.watchers <- [ cl ];
                    r.ever_watched <- true;
                    cl.cl_last_submit <- r.id;
                    t.queue <- t.queue @ [ r ];
                    jlog t (Recovery.accepted_entry ~id:r.id ~deadline_s spec);
                    send_client cl
                      (Json.Obj
                         [
                           ("type", Json.String "ack");
                           ("id", Json.Int r.id);
                           ("accepted", Json.Bool true);
                           ("position", Json.Int (List.length t.queue));
                           ("summary", Json.String (Job.summary spec));
                         ]);
                    Mutex.unlock t.m
                  end)))

(* Cancel a queued record.  Call with [t.m] held; returns the frames to
   send after unlock. *)
let cancel_queued t r =
  dequeue t r;
  r.rstate <- Cancelled;
  r.phase <- "cancelled while queued";
  r.exit_code <- 4;
  jlog t
    (Recovery.state_entry ~id:r.id ~attempt:r.attempt
       ~extra:[ ("exit", Json.Int 4) ]
       "cancelled");
  let frame = done_frame r ~jobs:0 ~failed:0 ~cancelled:true ~wall:0. ~extra:[] in
  List.map (fun cl -> (cl, frame)) (watchers_of r)

let handle_cancel t cl v =
  Mutex.lock t.m;
  let target =
    match Recovery.int_member "id" v with
    | Some id ->
        List.find_opt (fun r -> r.id = id && not (is_terminal r.rstate)) t.history
    | None -> (
        match
          List.find_opt
            (fun r -> r.id = cl.cl_last_submit && not (is_terminal r.rstate))
            t.history
        with
        | Some r -> Some r
        | None -> (
            (* Fall back to the running job only when this connection
               watches it: a bare cancel from an unrelated client must
               not kill someone else's job. *)
            match t.running with
            | Some r when List.memq cl r.watchers -> Some r
            | _ -> None))
  in
  match target with
  | None ->
      Mutex.unlock t.m;
      send_client cl (error_frame "cancel: no cancellable job for this connection")
  | Some r when r.rstate = Queued ->
      let outbox = cancel_queued t r in
      Mutex.unlock t.m;
      List.iter (fun (cl, frame) -> send_client cl frame) outbox
  | Some r ->
      (* Running: consumed by the stop hook at the next job boundary;
         in-flight jobs finish and completed work is kept (and cached). *)
      r.cancel_req <- true;
      Mutex.unlock t.m

let handle_frame t cl v =
  match Json.member "op" v with
  | Some (Json.String "ping") ->
      send_client cl (Json.Obj [ ("type", Json.String "pong") ])
  | Some (Json.String "status") ->
      Mutex.lock t.m;
      let frame = status_frame t in
      Mutex.unlock t.m;
      send_client cl frame
  | Some (Json.String "subscribe") ->
      cl.subscribed <- true;
      send_client cl (subscription_frame cl)
  | Some (Json.String "unsubscribe") ->
      cl.subscribed <- false;
      send_client cl (subscription_frame cl)
  | Some (Json.String "shutdown") ->
      Mutex.lock t.m;
      t.shutdown <- true;
      Mutex.unlock t.m;
      send_client cl (Json.Obj [ ("type", Json.String "bye") ])
  | Some (Json.String "cancel") -> handle_cancel t cl v
  | Some (Json.String "submit") -> handle_submit t cl v
  | Some (Json.String op) -> send_client cl (error_frame ("unknown op " ^ op))
  | _ -> send_client cl (error_frame "frame has no \"op\"")

(* A client hung up: detach it everywhere; a job whose every watcher is
   gone (and that was not resumed from the journal, which starts with
   none) is orphaned — cancelled if queued, stop-hooked if running. *)
let drop_client t cl =
  Mutex.lock t.m;
  let orphaned = ref [] in
  List.iter
    (fun r ->
      if List.memq cl r.watchers then begin
        r.watchers <- List.filter (fun c -> c != cl) r.watchers;
        if
          r.watchers = [] && r.ever_watched && (not r.resumed)
          && not (is_terminal r.rstate)
        then orphaned := r :: !orphaned
      end)
    t.history;
  let outbox =
    List.concat_map
      (fun r ->
        match r.rstate with
        | Queued -> cancel_queued t r
        | Running ->
            r.cancel_req <- true;
            []
        | _ -> [])
      !orphaned
  in
  Mutex.unlock t.m;
  List.iter (fun (cl, frame) -> send_client cl frame) outbox

(* One reader domain per connection: decode frames as they arrive and
   handle ops promptly — cancel and subscription toggles work mid-run
   without waiting for a job boundary. *)
let reader t fd =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let cl =
    {
      cl_fd = fd;
      cl_dec = Json.Stream.decoder ();
      cl_wmutex = Mutex.create ();
      cl_outq = Queue.create ();
      cl_out_pos = 0;
      cl_out_bytes = 0;
      cl_dead = false;
      subscribed = false;
      cl_last_submit = 0;
    }
  in
  let buf = Bytes.create 4096 in
  let rec drain () =
    match Json.Stream.next cl.cl_dec with
    | `Value v ->
        handle_frame t cl v;
        drain ()
    | `Error e ->
        send_client cl (error_frame (Json.error_to_string e));
        drain ()
    | `Await -> ()
  in
  let outbound_state () =
    Mutex.lock cl.cl_wmutex;
    let st = if cl.cl_dead then `Dead else if cl.cl_out_bytes > 0 then `Pending else `Idle in
    Mutex.unlock cl.cl_wmutex;
    st
  in
  let flush_now () =
    Mutex.lock cl.cl_wmutex;
    flush_outbound cl;
    Mutex.unlock cl.cl_wmutex
  in
  let rec loop () =
    match outbound_state () with
    | `Dead -> ()
    | (`Pending | `Idle) as st ->
        if t.shutdown then ()
        else begin
          (* Select for read always, for write only while frames are
             pending — the executor enqueues from its own domain and
             this loop drains whatever the socket will take. *)
          match
            Unix.select [ fd ] (if st = `Pending then [ fd ] else []) [] 0.25
          with
          | exception Unix.Unix_error (EINTR, _, _) -> loop ()
          | rd, wr, _ -> (
              if wr <> [] then flush_now ();
              if rd = [] then loop ()
              else
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> ()
                | len ->
                    Json.Stream.feed cl.cl_dec (Bytes.sub_string buf 0 len);
                    drain ();
                    loop ()
                | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                    loop ()
                | exception Unix.Unix_error _ -> ())
        end
  in
  (try loop () with Sys_error _ -> ());
  (* Best-effort final drain: the [bye] frame a shutdown op just
     enqueued, or whatever the socket still accepts. *)
  flush_now ();
  drop_client t cl;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- startup: recovery, stale socket, bind ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* The daemon's exclusive per-out_dir lock, held for the whole run.
   Taken (with the socket probe) BEFORE the journal is loaded,
   compacted, or reopened: a second [fdkit serve] on the same out_dir
   must fail here — compacting first would rename-replace the live
   daemon's journal, leaving the incumbent fsync-appending to an
   unlinked inode and every subsequent entry silently lost.  An fcntl
   lock dies with the process, so kill -9 never leaves a stale one. *)
let acquire_daemon_lock out_dir =
  let path = Filename.concat out_dir "serve.lock" in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> fd
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf "fdkit serve: another daemon holds %s" path)

(* A socket file can outlive a crashed daemon (kill -9 never unlinks).
   Probe it: a live daemon answers the connect — refuse to double-bind;
   a dead one leaves ECONNREFUSED — unlink and take over. *)
let probe_stale_socket path log =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "fdkit serve: %s is in use by a live daemon" path);
    log (Printf.sprintf "removing stale socket %s" path);
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
  end

let bind_socket path =
  mkdir_p (Filename.dirname path);
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  sock

let serve ?(config = default_config) () =
  mkdir_p config.out_dir;
  (* Refuse a double start before anything under out_dir is touched:
     the lock catches a second daemon on the same out_dir, the probe a
     live daemon on the same socket.  Only then may the journal be
     loaded, compacted, and reopened. *)
  let lock_fd = acquire_daemon_lock config.out_dir in
  (try probe_stale_socket config.socket_path config.log
   with e ->
     (try Unix.close lock_fd with Unix.Unix_error _ -> ());
     raise e);
  (* Clients may hang up while the daemon streams progress; without
     this the first write to a dead socket kills the whole process. *)
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let cache = Option.map (fun dir -> Runner.Cache.create ~dir ()) config.cache_dir in
  let jpath = journal_path config.out_dir in
  let recovered = Recovery.load jpath in
  (* Compact before reopening: replayed history is rewritten as one
     accepted + one terminal entry per job (pending jobs keep just their
     accepted entry), so the journal stays proportional to the history
     rather than to the daemon's lifetime. *)
  (try
     Journal.rewrite jpath
       (List.concat_map
          (fun (f : Recovery.completed) ->
            [
              Recovery.accepted_entry ~id:f.f_id f.f_spec;
              Recovery.state_entry ~id:f.f_id
                ~extra:
                  [
                    ("exit", Json.Int f.f_exit);
                    ("signature", Json.String f.f_signature);
                  ]
                (state_to_string f.f_state);
            ])
          recovered.completed
       @ List.concat_map
           (fun (p : Recovery.pending) ->
             Recovery.accepted_entry ~id:p.p_id ~deadline_s:p.p_deadline_s
               p.p_spec
             ::
             (if config.resume then []
              else
                [
                  Recovery.state_entry ~id:p.p_id
                    ~extra:[ ("exit", Json.Int 4) ]
                    "cancelled";
                ]))
           recovered.pending)
   with Sys_error _ | Unix.Unix_error _ -> ());
  let journal = Journal.append_open jpath in
  let t =
    {
      cfg = config;
      cache;
      m = Mutex.create ();
      journal;
      history = [];
      queue = [];
      running = None;
      next_id = recovered.next_id;
      shutdown = false;
      jobs_retried = 0;
      jobs_poisoned = 0;
    }
  in
  (* Replay: completed jobs come back as history; interrupted ones are
     re-enqueued (resume) or closed out as cancelled (--no-resume). *)
  List.iter
    (fun (f : Recovery.completed) ->
      let r =
        {
          (fresh_record t (Some f.f_spec)) with
          id = f.f_id;
          rstate = f.f_state;
          phase = "finished";
          exit_code = f.f_exit;
          signature = f.f_signature;
        }
      in
      t.history <- r :: List.tl t.history)
    recovered.completed;
  List.iter
    (fun (p : Recovery.pending) ->
      let r = fresh_record ~deadline_s:p.p_deadline_s ~resumed:true t (Some p.p_spec) in
      let r = { r with id = p.p_id } in
      t.history <- r :: List.tl t.history;
      if config.resume then begin
        r.phase <- "requeued after restart";
        t.queue <- t.queue @ [ r ];
        config.log
          (Printf.sprintf "recovered job %d: %s" r.id (Job.summary p.p_spec))
      end
      else begin
        r.rstate <- Cancelled;
        r.phase <- "interrupted (restart without resume)";
        r.exit_code <- 4;
        r.errors <- [ "interrupted by daemon restart; resume disabled" ]
      end)
    recovered.pending;
  t.next_id <- recovered.next_id;
  if recovered.dropped_lines > 0 || recovered.dropped_bytes > 0 then
    config.log
      (Printf.sprintf "journal: dropped %d garbage line(s), %d tail byte(s)"
         recovered.dropped_lines recovered.dropped_bytes);
  if recovered.completed <> [] || recovered.pending <> [] then
    config.log
      (Printf.sprintf "journal: replayed %d completed, %d pending job(s)"
         (List.length recovered.completed)
         (List.length recovered.pending));
  let sock = bind_socket config.socket_path in
  config.log (Printf.sprintf "listening on %s" config.socket_path);
  let executor = Domain.spawn (fun () -> executor_loop t) in
  (* Reader domains are capped (OCaml 5 bounds live domains at ~128,
     shared with the engine's worker domains) and reaped as they
     finish, so neither a connection burst nor a long-lived daemon can
     exhaust the domain budget or grow the handle list without bound. *)
  let readers = ref [] in
  let reap () =
    readers :=
      List.filter
        (fun (dom, finished) ->
          if Atomic.get finished then begin
            Domain.join dom;
            false
          end
          else true)
        !readers
  in
  (* Over the cap, or Domain.spawn itself failed: shed this one
     connection with a best-effort error line and keep serving. *)
  let shed fd msg =
    let line = Json.to_string ~minify:true (error_frame msg) ^ "\n" in
    (try ignore (Unix.write_substring fd line 0 (String.length line))
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (* Accept with a timeout so an idle daemon notices [shutdown] set by
     a connection without requiring another client. *)
  let rec accept_loop () =
    if t.shutdown then ()
    else begin
      (match Unix.select [ sock ] [] [] 0.25 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept sock with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              reap ();
              if List.length !readers >= max_reader_domains then
                shed fd
                  (Printf.sprintf "server busy: %d connections already open"
                     max_reader_domains)
              else begin
                let finished = Atomic.make false in
                match
                  Domain.spawn (fun () ->
                      Fun.protect
                        ~finally:(fun () -> Atomic.set finished true)
                        (fun () ->
                          try reader t fd
                          with _ -> (
                            try Unix.close fd with Unix.Unix_error _ -> ())))
                with
                | dom -> readers := (dom, finished) :: !readers
                | exception _ -> shed fd "server busy: cannot spawn handler"
              end));
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  Domain.join executor;
  List.iter (fun (dom, _) -> Domain.join dom) !readers;
  Journal.close journal;
  (try Unix.unlink config.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close lock_fd with Unix.Unix_error _ -> ());
  (match previous_sigpipe with
  | Some behavior -> (
      try Sys.set_signal Sys.sigpipe behavior
      with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  config.log "shut down"

(* ---- client ---- *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    coc : out_channel;
    cdec : Json.Stream.decoder;
  }

  let connect path =
    (* Mirror the daemon: a dying daemon must surface as an [Error],
       not SIGPIPE-terminate the client. *)
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; coc = Unix.out_channel_of_descr fd; cdec = Json.Stream.decoder () }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

  (* Reconnect with the same capped-exponential shape the daemon uses
     for job retries: a daemon mid-restart (recovery replay, socket not
     yet bound) looks like a refused connect for well under a second. *)
  let connect_retry ?(attempts = 5) ?(backoff_s = 0.2) path =
    let rec go n =
      match connect path with
      | Ok c -> Ok c
      | Error e ->
          if n >= attempts then Error e
          else begin
            Unix.sleepf (Float.min 10. (backoff_s *. (2. ** float_of_int (n - 1))));
            go (n + 1)
          end
    in
    go 1

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let send_frame c j =
    output_string c.coc (Json.to_string ~minify:true j);
    output_char c.coc '\n';
    flush c.coc

  (* Blocking read of the next frame. *)
  let rec next_frame c =
    match Json.Stream.next c.cdec with
    | `Value v -> Ok v
    | `Error e -> Error (Json.error_to_string e)
    | `Await -> (
        let buf = Bytes.create 4096 in
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed"
        | len ->
            Json.Stream.feed c.cdec (Bytes.sub_string buf 0 len);
            next_frame c
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

  let request c j =
    match send_frame c j with
    | () -> next_frame c
    | exception Sys_error e -> Error e

  let op name = Json.Obj [ ("op", Json.String name) ]
  let ping c = request c (op "ping")
  let status c = request c (op "status")
  let shutdown c = request c (op "shutdown")

  let cancel ?id c =
    let frame =
      match id with
      | None -> op "cancel"
      | Some i -> Json.Obj [ ("op", Json.String "cancel"); ("id", Json.Int i) ]
    in
    try send_frame c frame with Sys_error _ -> ()

  (* Fire-and-forget like [cancel]: mid-run the next inbound frame may
     be a progress or telemetry frame, not the acknowledgement, so a
     request/response pairing would mis-attribute frames.  The daemon's
     [subscribed]/[unsubscribed] ack arrives through the normal event
     stream. *)
  let subscribe c = try send_frame c (op "subscribe") with Sys_error _ -> ()
  let unsubscribe c = try send_frame c (op "unsubscribe") with Sys_error _ -> ()

  let submit ?deadline_s ?(on_event = ignore) c spec =
    match
      send_frame c
        (Json.Obj
           ([ ("op", Json.String "submit"); ("spec", Job.to_json spec) ]
           @
           match deadline_s with
           | Some d -> [ ("deadline_s", Json.Float d) ]
           | None -> []))
    with
    | exception Sys_error e -> Error e
    | () ->
        (* With a shared daemon this connection may watch several jobs
           (dedup attach): latch the acked id and only treat that job's
           done frame as terminal.  Done frames arriving before the ack
           latches the id — an earlier watched job finishing — are
           handed to [on_event] and skipped, never mistaken for this
           submission's result. *)
        let job_id = ref None in
        let id_of v =
          match Json.member "id" v with Some (Json.Int i) -> Some i | _ -> None
        in
        let rec wait () =
          match next_frame c with
          | Error _ as e -> e
          | Ok v -> (
              on_event v;
              match Json.member "type" v with
              | Some (Json.String "error") -> Ok v
              | Some (Json.String "ack")
                when Json.member "accepted" v = Some (Json.Bool false) ->
                  Ok v
              | Some (Json.String "ack") ->
                  (if !job_id = None then
                     match id_of v with Some i -> job_id := Some i | None -> ());
                  wait ()
              | Some (Json.String "done")
                when (match (!job_id, id_of v) with
                     | Some a, Some b -> a = b
                     | _ -> false) ->
                  Ok v
              | _ -> wait ())
        in
        wait ()
end
