(* fdkit serve: the campaign daemon.

   A long-running process listening on a Unix domain socket.  Frames in
   both directions are newline-delimited JSON (one value per line,
   decoded incrementally with Util.Json.Stream).  Clients submit
   Job.specs; the daemon validates, schedules them on the campaign
   engine (worker domains), streams progress events back live, and
   resolves warm jobs from the content-addressed result cache.

   Concurrency model: connections are handled one at a time, and one
   job runs at a time — parallelism lives inside the campaign engine
   (worker domains), not across jobs, so two submissions never fight
   over domains or artifact files.  While a job runs, the daemon polls
   the client socket between job submissions (Runner's [stop] hook, on
   the producer domain): a {"op":"cancel"} frame — or the client
   hanging up — cancels the remainder of the campaign; in-flight jobs
   finish and completed work is kept (and cached).

   Progress frames are written from worker domains ([on_progress]);
   all socket writes go through one mutex so frames never interleave. *)

open Setagree_util
open Setagree_runner

type config = {
  socket_path : string;
  cache_dir : string option;  (* None = caching off *)
  jobs : int option;  (* worker domains; None = Runner.default_jobs *)
  out_dir : string;  (* artifact directory *)
  log : string -> unit;  (* daemon-side logging *)
}

let default_config =
  {
    socket_path = Filename.concat "_results" "fdkit.sock";
    cache_dir = Some Runner.Cache.default_dir;
    jobs = None;
    out_dir = "_results";
    log = ignore;
  }

(* ---- job history ---- *)

type state = Queued | Running | Done | Cancelled | Rejected

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Rejected -> "rejected"

type record = {
  id : int;
  spec : Job.spec option;  (* None for rejected frames that never parsed *)
  mutable rstate : state;
  mutable phase : string;  (* finer-grained than rstate while running *)
  mutable exit_code : int;
  mutable cache_hits : int;
  mutable executed : int;
  mutable cache_skipped : int;
  mutable signature : string;  (* MD5 of the campaign signature *)
  mutable errors : string list;
  mutable last_telemetry_s : float;  (* Unix time of last snapshot; 0. = never *)
}

(* ---- framing ---- *)

let send mutex oc j =
  Mutex.lock mutex;
  (* A hung-up client turns the write into EPIPE (SIGPIPE is ignored
     while serving): swallow it — the read side sees EOF and cancels. *)
  (try
     output_string oc (Json.to_string ~minify:true j);
     output_char oc '\n';
     flush oc
   with Sys_error _ -> ());
  Mutex.unlock mutex

let error_frame ?id msg =
  Json.Obj
    ((match id with None -> [] | Some id -> [ ("id", Json.Int id) ])
    @ [ ("type", Json.String "error"); ("message", Json.String msg) ])

let sig_md5 c = Digest.to_hex (Digest.string (Runner.signature c))

let record_json r =
  Json.Obj
    [
      ("id", Json.Int r.id);
      ( "kind",
        Json.String (match r.spec with Some s -> Job.kind s | None -> "?") );
      ( "summary",
        Json.String (match r.spec with Some s -> Job.summary s | None -> "?") );
      ("state", Json.String (state_to_string r.rstate));
      ("phase", Json.String r.phase);
      ("exit", Json.Int r.exit_code);
      ("cache_hits", Json.Int r.cache_hits);
      ("executed", Json.Int r.executed);
      ("cache_skipped", Json.Int r.cache_skipped);
      ("signature", Json.String r.signature);
      ( "telemetry_age_s",
        if r.last_telemetry_s <= 0. then Json.Null
        else Json.Float (Unix.gettimeofday () -. r.last_telemetry_s) );
      ("errors", Json.List (List.map (fun e -> Json.String e) r.errors));
    ]

(* ---- the daemon ---- *)

type t = {
  cfg : config;
  cache : Runner.Cache.t option;
  mutable history : record list;  (* newest first *)
  mutable next_id : int;
  mutable shutdown : bool;
}

let fresh_record t spec =
  let r =
    {
      id = t.next_id;
      spec;
      rstate = Queued;
      phase = "queued";
      exit_code = 0;
      cache_hits = 0;
      executed = 0;
      cache_skipped = 0;
      signature = "";
      errors = [];
      last_telemetry_s = 0.;
    }
  in
  t.next_id <- t.next_id + 1;
  t.history <- r :: t.history;
  r

let queue_depth t =
  List.length
    (List.filter (fun r -> r.rstate = Queued || r.rstate = Running) t.history)

(* Drain every complete frame currently buffered on [fd] without
   blocking; feed them to [handle].  Returns [`Eof] when the peer hung
   up. *)
let poll_frames fd dec handle =
  let buf = Bytes.create 4096 in
  let rec drain_values () =
    match Json.Stream.next dec with
    | `Value v ->
        handle v;
        drain_values ()
    | `Error _ -> drain_values () (* skip the bad line, keep decoding *)
    | `Await -> `Ok
  in
  let rec drain_socket () =
    match Unix.select [ fd ] [] [] 0.0 with
    | [], _, _ -> drain_values ()
    | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> `Eof
        | len ->
            Json.Stream.feed dec (Bytes.sub_string buf 0 len);
            drain_socket ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            drain_values ()
        | exception Unix.Unix_error _ -> `Eof)
  in
  drain_socket ()

(* One connected client.  [subscribed] gates telemetry frames only —
   progress/ack/done always flow.  Toggled by [subscribe]/[unsubscribe]
   ops, which are honoured both while idle (handle_frame) and mid-run
   (the stop-hook poller), so a client can tune in or out of a campaign
   already in flight. *)
type client = {
  cl_fd : Unix.file_descr;
  cl_oc : out_channel;
  cl_dec : Json.Stream.decoder;
  cl_wmutex : Mutex.t;
  mutable subscribed : bool;
}

let send_client cl j = send cl.cl_wmutex cl.cl_oc j

let subscription_frame cl =
  Json.Obj
    [
      ("type", Json.String (if cl.subscribed then "subscribed" else "unsubscribed"));
    ]

let set_subscription cl on =
  cl.subscribed <- on;
  send_client cl (subscription_frame cl)

let telemetry_frame id te =
  let fields =
    match Runner.telemetry_json te with
    | Json.Obj fields -> fields
    | j -> [ ("telemetry", j) ]
  in
  Json.Obj
    (("type", Json.String "telemetry") :: ("id", Json.Int id) :: fields)

let run_submission t cl (spec : Job.spec) =
  let r = fresh_record t (Some spec) in
  match Job.validate spec with
  | Error errs ->
      r.rstate <- Rejected;
      r.phase <- "rejected";
      r.exit_code <- 3;
      r.errors <- errs;
      send_client cl
        (Json.Obj
           [
             ("type", Json.String "ack");
             ("id", Json.Int r.id);
             ("accepted", Json.Bool false);
             ("errors", Json.List (List.map (fun e -> Json.String e) errs));
           ])
  | Ok () ->
      send_client cl
        (Json.Obj
           [
             ("type", Json.String "ack");
             ("id", Json.Int r.id);
             ("accepted", Json.Bool true);
             ("summary", Json.String (Job.summary spec));
           ]);
      r.rstate <- Running;
      r.phase <- "running";
      t.cfg.log (Printf.sprintf "job %d: %s" r.id (Job.summary spec));
      let cancelled = ref false in
      (* Polled by the campaign engine between job submissions: any
         buffered cancel frame — or the client hanging up — stops the
         remainder of the campaign.  Subscription toggles are honoured
         here too so [subscribe]/[unsubscribe] work mid-run. *)
      let stop () =
        if !cancelled then true
        else begin
          (match
             poll_frames cl.cl_fd cl.cl_dec (fun v ->
                 match Json.member "op" v with
                 | Some (Json.String "cancel") -> cancelled := true
                 | Some (Json.String "ping") ->
                     send_client cl (Json.Obj [ ("type", Json.String "pong") ])
                 | Some (Json.String "subscribe") -> set_subscription cl true
                 | Some (Json.String "unsubscribe") -> set_subscription cl false
                 | _ ->
                     send_client cl
                       (error_frame ~id:r.id "busy: one job at a time"))
           with
          | `Eof -> cancelled := true
          | `Ok -> ());
          !cancelled
        end
      in
      let on_progress (p : Runner.progress) =
        send_client cl
          (Json.Obj
             [
               ("type", Json.String "progress");
               ("id", Json.Int r.id);
               ("done", Json.Int p.Runner.pr_done);
               ("total", Json.Int p.Runner.pr_total);
               ("cached", Json.Bool p.Runner.pr_cached);
               ("label", Json.String p.Runner.pr_result.Runner.r_label);
               ("ok", Json.Bool p.Runner.pr_result.Runner.r_ok);
             ])
      in
      (* Always attached: the ticker keeps the record's freshness stamp
         for [status] even when nobody listens; the frame itself is
         gated on the subscription. *)
      let on_telemetry (te : Runner.telemetry) =
        r.last_telemetry_s <- Unix.gettimeofday ();
        if cl.subscribed then send_client cl (telemetry_frame r.id te)
      in
      let o =
        Job.execute ?jobs:t.cfg.jobs ?cache:t.cache ~on_progress ~on_telemetry
          ~stop spec
      in
      let c = o.Job.o_campaign in
      r.phase <- "writing artifacts";
      (match spec with
      | Job.Run _ | Job.Replay _ -> ()
      | Job.Campaign _ | Job.Chaos _ | Job.Explore _ ->
          ignore (Runner.write_artifact ~dir:t.cfg.out_dir c);
          (match o.Job.o_chaos with
          | Some co -> ignore (Chaos.write_failures ~dir:t.cfg.out_dir co.Chaos.o_failures)
          | None -> ());
          (match (spec, o.Job.o_ces) with
          | Job.Explore { protocol; _ }, ces ->
              ignore (Explorer.write_counterexamples ~dir:t.cfg.out_dir ~protocol ces)
          | _ -> ()));
      r.rstate <- (if c.Runner.c_cancelled then Cancelled else Done);
      r.phase <- "finished";
      r.exit_code <- o.Job.o_exit;
      r.cache_hits <- c.Runner.c_cache_hits;
      r.executed <- c.Runner.c_executed;
      r.cache_skipped <- c.Runner.c_cache_skipped;
      r.signature <- sig_md5 c;
      t.cfg.log
        (Printf.sprintf "job %d: %s exit=%d hits=%d executed=%d skipped=%d" r.id
           (state_to_string r.rstate) r.exit_code r.cache_hits r.executed
           r.cache_skipped);
      send_client cl
        (Json.Obj
           [
             ("type", Json.String "done");
             ("id", Json.Int r.id);
             ("state", Json.String (state_to_string r.rstate));
             ("exit", Json.Int r.exit_code);
             ("jobs", Json.Int (Array.length c.Runner.c_results));
             ("failed", Json.Int (List.length (Runner.failures c)));
             ("cache_hits", Json.Int r.cache_hits);
             ("executed", Json.Int r.executed);
             ("cache_skipped", Json.Int r.cache_skipped);
             ("cancelled", Json.Bool c.Runner.c_cancelled);
             ("wall_s", Json.Float c.Runner.c_wall_s);
             ("signature", Json.String r.signature);
           ])

let handle_frame t cl v =
  match Json.member "op" v with
  | Some (Json.String "ping") ->
      send_client cl (Json.Obj [ ("type", Json.String "pong") ])
  | Some (Json.String "status") ->
      send_client cl
        (Json.Obj
           [
             ("type", Json.String "status");
             ("queue_depth", Json.Int (queue_depth t));
             ("jobs", Json.List (List.rev_map record_json t.history));
             ( "cache",
               match t.cache with
               | None -> Json.Null
               | Some cache ->
                   Json.Obj
                     [
                       ("dir", Json.String (Runner.Cache.dir cache));
                       ("hits", Json.Int (Runner.Cache.hits cache));
                       ("misses", Json.Int (Runner.Cache.misses cache));
                       ("stores", Json.Int (Runner.Cache.stores cache));
                     ] );
           ])
  | Some (Json.String "subscribe") -> set_subscription cl true
  | Some (Json.String "unsubscribe") -> set_subscription cl false
  | Some (Json.String "shutdown") ->
      t.shutdown <- true;
      send_client cl (Json.Obj [ ("type", Json.String "bye") ])
  | Some (Json.String "cancel") ->
      (* No job is running on this path (cancel during a run is consumed
         by the stop hook); acknowledge as a no-op. *)
      send_client cl (error_frame "cancel: no job is running")
  | Some (Json.String "submit") -> (
      match Json.member "spec" v with
      | None -> send_client cl (error_frame "submit: missing \"spec\"")
      | Some sj -> (
          match Job.of_json sj with
          | Error e -> send_client cl (error_frame ("submit: " ^ e))
          | Ok spec -> run_submission t cl spec))
  | Some (Json.String op) -> send_client cl (error_frame ("unknown op " ^ op))
  | _ -> send_client cl (error_frame "frame has no \"op\"")

let handle_connection t fd =
  let cl =
    {
      cl_fd = fd;
      cl_oc = Unix.out_channel_of_descr fd;
      cl_dec = Json.Stream.decoder ();
      cl_wmutex = Mutex.create ();
      subscribed = false;
    }
  in
  let buf = Bytes.create 4096 in
  let rec loop () =
    if t.shutdown then ()
    else
      match Json.Stream.next cl.cl_dec with
      | `Value v ->
          handle_frame t cl v;
          loop ()
      | `Error e ->
          send_client cl (error_frame (Json.error_to_string e));
          loop ()
      | `Await -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | len ->
              Json.Stream.feed cl.cl_dec (Bytes.sub_string buf 0 len);
              loop ()
          | exception Unix.Unix_error _ -> ())
  in
  (try loop () with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let bind_socket path =
  mkdir_p (Filename.dirname path);
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  sock

let serve ?(config = default_config) () =
  (* Clients may hang up while the daemon streams progress; without
     this the first write to a dead socket kills the whole process. *)
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let cache = Option.map (fun dir -> Runner.Cache.create ~dir ()) config.cache_dir in
  let t = { cfg = config; cache; history = []; next_id = 1; shutdown = false } in
  let sock = bind_socket config.socket_path in
  config.log (Printf.sprintf "listening on %s" config.socket_path);
  (* Accept with a timeout so an idle daemon notices [shutdown] set by
     the previous connection without requiring another client. *)
  let rec accept_loop () =
    if t.shutdown then ()
    else
      match Unix.select [ sock ] [] [] 0.5 with
      | [], _, _ -> accept_loop ()
      | _ ->
          let fd, _ = Unix.accept sock in
          handle_connection t fd;
          accept_loop ()
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  (match previous_sigpipe with
  | Some behavior -> ( try Sys.set_signal Sys.sigpipe behavior with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  config.log "shut down"

(* ---- client ---- *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    coc : out_channel;
    cdec : Json.Stream.decoder;
  }

  let connect path =
    (* Mirror the daemon: a dying daemon must surface as an [Error],
       not SIGPIPE-terminate the client. *)
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; coc = Unix.out_channel_of_descr fd; cdec = Json.Stream.decoder () }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let send_frame c j =
    output_string c.coc (Json.to_string ~minify:true j);
    output_char c.coc '\n';
    flush c.coc

  (* Blocking read of the next frame. *)
  let rec next_frame c =
    match Json.Stream.next c.cdec with
    | `Value v -> Ok v
    | `Error e -> Error (Json.error_to_string e)
    | `Await -> (
        let buf = Bytes.create 4096 in
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed"
        | len ->
            Json.Stream.feed c.cdec (Bytes.sub_string buf 0 len);
            next_frame c
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

  let request c j =
    match send_frame c j with
    | () -> next_frame c
    | exception Sys_error e -> Error e

  let op name = Json.Obj [ ("op", Json.String name) ]
  let ping c = request c (op "ping")
  let status c = request c (op "status")
  let shutdown c = request c (op "shutdown")
  let cancel c = try send_frame c (op "cancel") with Sys_error _ -> ()

  (* Fire-and-forget like [cancel]: mid-run the next inbound frame may
     be a progress or telemetry frame, not the acknowledgement, so a
     request/response pairing would mis-attribute frames.  The daemon's
     [subscribed]/[unsubscribed] ack arrives through the normal event
     stream. *)
  let subscribe c = try send_frame c (op "subscribe") with Sys_error _ -> ()
  let unsubscribe c = try send_frame c (op "unsubscribe") with Sys_error _ -> ()

  let submit ?(on_event = ignore) c spec =
    match
      send_frame c
        (Json.Obj [ ("op", Json.String "submit"); ("spec", Job.to_json spec) ])
    with
    | exception Sys_error e -> Error e
    | () ->
    let rec wait () =
      match next_frame c with
      | Error _ as e -> e
      | Ok v -> (
          on_event v;
          match Json.member "type" v with
          | Some (Json.String ("done" | "error")) -> Ok v
          | Some (Json.String "ack")
            when Json.member "accepted" v = Some (Json.Bool false) ->
              Ok v
          | _ -> wait ())
    in
    wait ()
end
