(** [fdkit serve]: the campaign daemon and its client (DESIGN.md §11).

    A long-running process on a Unix domain socket speaking
    newline-delimited JSON (one frame per line, {!Setagree_util.Json.Stream}).
    Clients submit {!Job.spec}s; the daemon validates, executes on the
    campaign engine, streams progress frames live, and resolves warm
    jobs from the content-addressed result cache.

    Wire protocol (client → daemon ops, daemon → client frame types):
    - [{"op":"submit","spec":{...}}] → [ack] (accepted or rejected with
      errors), then [progress] per completed job
      ([done]/[total]/[cached]/[label]/[ok]), then [done] with the exit
      code, cache hit/executed/skipped counts and the campaign
      signature (MD5);
    - [{"op":"subscribe"}] / [{"op":"unsubscribe"}] → [subscribed] /
      [unsubscribed], and while subscribed the daemon interleaves
      [telemetry] frames with progress: periodic campaign snapshots
      ([seq]/[wall_s]/[done]/[total]/[cached]/[cache_skipped]/[label]/
      [rate_jobs_per_s]/[events_per_s]/[gc_minor_words]/
      [gc_promoted_words] plus cumulative [counters] and per-interval
      [delta] metric registries — see
      {!Setagree_runner.Runner.telemetry_json}).  The toggle works both
      while idle and mid-run; telemetry is read-only, so campaign
      signatures are byte-identical subscribed or not;
    - [{"op":"cancel"}] (sent while a job runs) → the daemon stops
      scheduling further jobs; in-flight jobs finish, completed work is
      kept and cached, and the [done] frame reports
      [state = "cancelled"];
    - [{"op":"status"}] → [status] with the queue depth, the job
      history (each record carrying its phase and the age of its last
      telemetry snapshot) and cache counters; [{"op":"ping"}] → [pong];
      [{"op":"shutdown"}] → [bye] and the daemon exits.

    Connections are handled one at a time and one job runs at a time —
    parallelism lives inside the campaign engine (worker domains), so
    submissions never fight over domains or artifact files.  A client
    hanging up mid-run cancels the remainder of its campaign. *)

open Setagree_util

type config = {
  socket_path : string;  (** default [_results/fdkit.sock] *)
  cache_dir : string option;  (** [None] disables the result cache *)
  jobs : int option;
      (** worker domains; [None] = [Setagree_runner.Runner.default_jobs] *)
  out_dir : string;  (** artifact directory for campaign outputs *)
  log : string -> unit;  (** daemon-side logging hook *)
}

val default_config : config

val serve : ?config:config -> unit -> unit
(** Bind the socket (replacing a stale file) and serve until a
    [shutdown] op; removes the socket file on exit.  Campaign-shaped
    jobs also write their usual artifacts ([BENCH_<exp>.json],
    [chaos_failures.json], [counterexamples.json]) into [out_dir]. *)

(** Blocking client for the wire protocol above ([fdkit
    submit/status/cancel] and the tests). *)
module Client : sig
  type conn

  val connect : string -> (conn, string) result
  val close : conn -> unit

  val submit :
    ?on_event:(Json.t -> unit) -> conn -> Job.spec -> (Json.t, string) result
  (** Submit and stream: [on_event] sees every frame (ack, progress,
      ...); returns the terminal frame — [done], [error], or a
      rejecting [ack]. *)

  val status : conn -> (Json.t, string) result
  val ping : conn -> (Json.t, string) result

  val cancel : conn -> unit
  (** Fire-and-forget: the daemon consumes it between job submissions;
      the eventual [done] frame reports [state = "cancelled"]. *)

  val subscribe : conn -> unit
  val unsubscribe : conn -> unit
  (** Fire-and-forget toggles for [telemetry] frames (the
      [subscribed]/[unsubscribed] ack arrives through the normal event
      stream, since mid-run the next inbound frame may be progress or
      telemetry).  Subscribe {e before} {!submit} to catch a campaign's
      first snapshot. *)

  val shutdown : conn -> (Json.t, string) result

  val request : conn -> Json.t -> (Json.t, string) result
  (** Raw frame exchange (send one, read one). *)

  val next_frame : conn -> (Json.t, string) result
end
