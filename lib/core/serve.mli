(** [fdkit serve]: the crash-safe campaign daemon and its client
    (DESIGN.md §11, failure handling §13).

    A long-running process on a Unix domain socket speaking
    newline-delimited JSON (one frame per line, {!Setagree_util.Json.Stream}).
    Clients submit {!Job.spec}s; the daemon validates, queues them on a
    bounded FIFO, executes on the campaign engine, streams progress
    frames live, and resolves warm jobs from the content-addressed
    result cache.

    Wire protocol (client → daemon ops, daemon → client frame types):
    - [{"op":"submit","spec":{...},"deadline_s":30.0?}] → [ack].  An
      accepted fresh spec carries [id] and its queue [position]; a spec
      whose canonical encoding is already queued or running acks with
      [attached = true] and the existing [id] (the client becomes a
      watcher of that job instead of duplicating work); a spec failing
      validation acks [accepted = false] with [errors]; and when the
      FIFO is at [queue_depth] the ack is [accepted = false] with
      [rejected = "queue full"] — graceful shedding, not a hang.  Then
      per completed job a [progress] frame
      ([done]/[total]/[cached]/[label]/[ok]), possibly [retry] frames
      (see below), and finally [done] with the exit code, cache
      hit/executed/skipped counts and the campaign signature (MD5);
    - [{"op":"subscribe"}] / [{"op":"unsubscribe"}] → [subscribed] /
      [unsubscribed], and while subscribed the daemon interleaves
      [telemetry] frames with progress (see
      {!Setagree_runner.Runner.telemetry_json}).  The toggle works both
      while idle and mid-run; telemetry is read-only, so campaign
      signatures are byte-identical subscribed or not;
    - [{"op":"cancel","id":3?}] → cancels job [id], defaulting to the
      client's most recent submission, else the running job when this
      connection is one of its watchers (a bare cancel from an
      unrelated connection cannot kill someone else's job).  A queued
      job is cancelled immediately ([done] with [state = "cancelled"]);
      a running one stops at the next job boundary — in-flight jobs
      finish, completed work is kept (and cached);
    - [{"op":"status"}] → [status] with the queue depth, the running
      job id, the job history (each record carrying its state, phase,
      attempt and the age of its last telemetry snapshot), retry/poison
      counters and cache counters (hits/misses/stores/corrupt/
      write_failed); [{"op":"ping"}] → [pong]; [{"op":"shutdown"}] →
      [bye] and the daemon exits (queued and in-flight jobs stay
      pending in the journal and are resumed on the next start).

    {2 Crash safety}

    Every accepted spec and every state transition is appended — one
    fsync'd JSONL line each, schema-stamped via {!Setagree_util.Stamp}
    — to [<out_dir>/serve_journal.jsonl] ({!Setagree_util.Journal}).
    On start the journal is replayed: completed jobs are reported in
    [status], interrupted [queued]/[running] jobs are re-enqueued when
    [resume] is set (cheap — their finished prefix is already in the
    cache) or closed out as cancelled otherwise, and the journal is
    compacted.  A stale socket file left by a crashed daemon is probed
    (connect) and unlinked before bind; a live daemon on the socket
    makes {!serve} raise [Failure].

    Each job attempt gets a wall-clock deadline (the submit frame's
    [deadline_s] or [default_deadline_s]; [<= 0] disables) enforced by
    the campaign engine's stop hook at job boundaries.  A timed-out or
    crashed attempt is retried with capped exponential backoff
    ([retry_backoff_s * 2^(attempt-1)], capped — the [Fd.Timeout] delay
    shape) up to [retry_budget] retries, each announced to watchers
    with a [retry] frame; after that the job is quarantined as poison:
    [state = "poisoned"], exit code 6, the spec written to
    [<out_dir>/poison_job_<id>.json] and a ready-to-paste resubmission
    command recorded in the journal.

    One reader domain per connection handles ops promptly (cancel and
    subscription toggles work mid-run); one executor domain drains the
    FIFO, so one job runs at a time — parallelism lives inside the
    campaign engine (worker domains) and submissions never fight over
    domains or artifact files.  Reader domains are capped (OCaml 5
    bounds live domains; connections past the cap are refused with an
    [error] frame instead of crashing the daemon), and outbound frames
    are queued per client and written non-blocking — a client that
    stops reading stalls only itself and is dropped once its backlog
    tops out, never wedging the executor or other connections.  A
    client hanging up orphans its jobs: a queued one is cancelled, a
    running one stops at the next job boundary (journal-resumed jobs
    have no watchers and are exempt). *)

open Setagree_util

type config = {
  socket_path : string;  (** default [_results/fdkit.sock] *)
  cache_dir : string option;  (** [None] disables the result cache *)
  jobs : int option;
      (** worker domains; [None] = [Setagree_runner.Runner.default_jobs] *)
  out_dir : string;  (** artifact directory (and the journal's home) *)
  log : string -> unit;  (** daemon-side logging hook *)
  queue_depth : int;
      (** max jobs waiting in the FIFO (the running job is not
          counted); submits beyond it are shed with a
          [rejected: queue full] ack.  Default 16. *)
  default_deadline_s : float;
      (** per-attempt wall-clock budget for jobs whose submit frame has
          no [deadline_s]; [<= 0] (the default) disables the watchdog *)
  retry_budget : int;
      (** retries after the first attempt before a job is poisoned;
          default 2 *)
  retry_backoff_s : float;
      (** base of the capped exponential retry backoff; default 1.0 *)
  resume : bool;
      (** re-enqueue journal-recovered interrupted jobs on start
          (default); when false they are closed out as cancelled *)
}

val default_config : config

val journal_path : string -> string
(** [journal_path out_dir] = [out_dir/serve_journal.jsonl]. *)

type state = Queued | Running | Done | Cancelled | Rejected | Poisoned

val state_to_string : state -> string

val serve : ?config:config -> unit -> unit
(** Take the exclusive [out_dir/serve.lock], probe-and-unlink a stale
    socket, then replay the journal, bind, and serve until a
    [shutdown] op; removes the socket file on exit.  Both refusals —
    the lock held by another daemon on the same [out_dir], or a live
    daemon answering on [socket_path] — raise [Failure] {e before} the
    journal is read, compacted, or reopened, so a mistaken second
    start can never clobber the incumbent's journal.  Campaign-shaped
    jobs also write their usual artifacts ([BENCH_<exp>.json],
    [chaos_failures.json], [counterexamples.json]) into [out_dir]. *)

(** The journal schema and its replay — exposed so tests and the bench
    harness can fabricate crash scenarios and assert the recovery
    invariants (prefix consistency, no duplicated terminal entries). *)
module Recovery : sig
  val accepted_entry : id:int -> ?deadline_s:float -> Job.spec -> Json.t
  (** The journal line written when a spec is accepted. *)

  val state_entry :
    id:int -> ?attempt:int -> ?extra:(string * Json.t) list -> string -> Json.t
  (** A state-transition line ([running], [retrying], [done],
      [cancelled], [poisoned], …) with optional extra fields
      ([exit], [signature], [reason], [replay], [backoff_s]). *)

  type pending = { p_id : int; p_spec : Job.spec; p_deadline_s : float }

  type completed = {
    f_id : int;
    f_spec : Job.spec;
    f_state : state;
    f_exit : int;
    f_signature : string;
  }

  type t = {
    completed : completed list;  (** terminal jobs, oldest first *)
    pending : pending list;
        (** accepted jobs with no terminal entry, FIFO order — the jobs
            a restart re-enqueues *)
    next_id : int;  (** 1 + the highest accepted id *)
    dropped_lines : int;  (** garbage lines skipped by the loader *)
    dropped_bytes : int;  (** truncated-tail bytes dropped *)
  }

  val load : string -> t
  (** Replay a journal (missing file = empty).  Tolerant: unknown entry
      types are skipped and only an id's {e first} terminal entry
      counts, so a recovered view is always a prefix-consistent subset
      of what the dead daemon accepted and finished — never a duplicate
      execution, never an exception. *)
end

(** Blocking client for the wire protocol above ([fdkit
    submit/status/cancel] and the tests). *)
module Client : sig
  type conn

  val connect : string -> (conn, string) result

  val connect_retry :
    ?attempts:int -> ?backoff_s:float -> string -> (conn, string) result
  (** {!connect} with capped-exponential retry (default 5 attempts,
      base 0.2s): rides out a daemon mid-restart whose socket is not
      yet bound — the client half of the recovery story. *)

  val close : conn -> unit

  val submit :
    ?deadline_s:float ->
    ?on_event:(Json.t -> unit) ->
    conn ->
    Job.spec ->
    (Json.t, string) result
  (** Submit and stream: [on_event] sees every frame (ack, progress,
      retry, ...); returns the terminal frame — the acked job's [done],
      an [error], or a rejecting [ack].  [deadline_s] sets the
      per-attempt wall-clock budget for this job. *)

  val status : conn -> (Json.t, string) result
  val ping : conn -> (Json.t, string) result

  val cancel : ?id:int -> conn -> unit
  (** Fire-and-forget: cancels job [id] when given, else this client's
      most recent submission, else the running job when this
      connection watches it (an unrelated connection must name the id
      explicitly — see the [fdkit cancel] CLI, which resolves it via
      {!status}).  Queued jobs are cancelled immediately; running ones
      at the next job boundary — the eventual [done] frame reports
      [state = "cancelled"]. *)

  val subscribe : conn -> unit
  val unsubscribe : conn -> unit
  (** Fire-and-forget toggles for [telemetry] frames (the
      [subscribed]/[unsubscribed] ack arrives through the normal event
      stream, since mid-run the next inbound frame may be progress or
      telemetry).  Subscribe {e before} {!submit} to catch a campaign's
      first snapshot. *)

  val shutdown : conn -> (Json.t, string) result

  val request : conn -> Json.t -> (Json.t, string) result
  (** Raw frame exchange (send one, read one). *)

  val next_frame : conn -> (Json.t, string) result
end
