open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_shm
open Setagree_fd

type t = {
  outputs : Pidset.t array;
  refreshes : int array;
}

let output t =
  { Iface.suspected = (fun i -> t.outputs.(i)) }

let refreshes t i = t.refreshes.(i)

(* The outer/inner loop of task T2 (Figure 9), abstracted over how the
   heartbeat counters and suspicion sets are read.  [read_counters] fills an
   array with the current counters (taking virtual time as the substrate
   dictates); [read_suspect j] reads p_j's published suspicion set. *)
let t2_loop sim ~t ~i ~(querier : Iface.querier) ~read_counters ~read_suspect
    ~pause () =
  let n = Sim.n sim in
  let prev = Array.make n 0 in
  let neu = Array.make n 0 in
  while true do
    (* Inner loop: snapshot until the stale region is query-certified. *)
    let rec snapshot () =
      read_counters neu;
      let live = ref Pidset.empty in
      for j = 0 to n - 1 do
        if neu.(j) > prev.(j) then live := Pidset.add j !live
      done;
      let x = Pidset.diff (Pidset.full ~n) !live in
      if querier.Iface.query i x then !live
      else begin
        pause ();
        snapshot ()
      end
    in
    let live = snapshot () in
    Array.blit neu 0 prev 0 n;
    let inter =
      Pidset.fold
        (fun j acc -> Pidset.inter acc (read_suspect j))
        live
        (Pidset.full ~n)
    in
    t.outputs.(i) <- Pidset.diff inter live;
    t.refreshes.(i) <- t.refreshes.(i) + 1;
    pause ()
  done

let install_shm sim ~(suspector : Iface.suspector) ~querier ?(step = 1.0)
    ?(access_time = 0.05) () =
  let n = Sim.n sim in
  let alive = Array.init n (fun i -> Register.create sim ~writer:i ~access_time 0) in
  let suspect =
    Array.init n (fun i -> Register.create sim ~writer:i ~access_time Pidset.empty)
  in
  let t = { outputs = Array.make n Pidset.empty; refreshes = Array.make n 0 } in
  for i = 0 to n - 1 do
    (* Task T1: publish the heartbeat and the raw suspicions. *)
    Sim.spawn sim ~pid:i (fun () ->
        let count = ref 0 in
        while true do
          incr count;
          Register.write alive.(i) ~by:i !count;
          Register.write suspect.(i) ~by:i (suspector.Iface.suspected i);
          Sim.sleep step
        done);
    (* Task T2. *)
    Sim.spawn sim ~pid:i (fun () ->
        let read_counters dst =
          for j = 0 to n - 1 do
            dst.(j) <- Register.read alive.(j) ~by:i
          done
        in
        let read_suspect j = Register.read suspect.(j) ~by:i in
        t2_loop sim ~t ~i ~querier ~read_counters ~read_suspect
          ~pause:(fun () -> Sim.sleep step)
          ())
  done;
  t

type hb = { count : int; suspicions : Pidset.t }

let install_mp sim ~(suspector : Iface.suspector) ~querier ?(step = 1.0)
    ?(delay = Delay.default) () =
  let n = Sim.n sim in
  let net : hb Net.t = Net.create sim ~tag:"strengthen.hb" ~delay ~retain:false () in
  (* latest.(i).(j): the freshest heartbeat p_i received from p_j. *)
  let latest = Array.init n (fun _ -> Array.make n { count = 0; suspicions = Pidset.empty }) in
  Net.on_deliver net (fun (e : hb Net.envelope) ->
      if e.payload.count > latest.(e.dst).(e.src).count then
        latest.(e.dst).(e.src) <- e.payload);
  let t = { outputs = Array.make n Pidset.empty; refreshes = Array.make n 0 } in
  for i = 0 to n - 1 do
    Sim.spawn sim ~pid:i (fun () ->
        let count = ref 0 in
        while true do
          incr count;
          Net.broadcast net ~src:i
            { count = !count; suspicions = suspector.Iface.suspected i };
          Sim.sleep step
        done);
    Sim.spawn sim ~pid:i (fun () ->
        let read_counters dst =
          for j = 0 to n - 1 do
            dst.(j) <- latest.(i).(j).count
          done
        in
        let read_suspect j = latest.(i).(j).suspicions in
        t2_loop sim ~t ~i ~querier ~read_counters ~read_suspect
          ~pause:(fun () -> Sim.sleep step)
          ())
  done;
  t
