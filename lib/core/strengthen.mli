(** The strengthening addition of the paper's Appendix B (Figure 9):

    S_x + φ_y → S   and   ◇S_x + ◇φ_y → ◇S,   for x + y >= t + 1

    (the z = 1 boundary of Theorem 8 on the suspector side: S = S_n).

    Each process p_i keeps publishing a heartbeat counter [alive_i] and its
    raw suspicion set [suspect_i].  To refresh its strengthened output
    [SUSPECTED_i], it snapshots the counters until the set X of processes
    that made no progress since the previous snapshot satisfies
    [query(X)] — i.e. either X is small enough that triviality answers
    (|X| <= t-y) or the oracle certifies the whole region crashed.  It then
    outputs the intersection of the suspicion sets of the live processes,
    minus the live processes themselves.

    Why accuracy widens from scope x to scope n: when the inner loop exits,
    either |X| <= t-y, and since x >= t+1-y > t-y the scope set Q (x
    processes) cannot fit inside X, so some member of Q is in [live] and its
    suspicion set — which never contains the protected process — enters the
    intersection; or query certified X entirely crashed, in which case
    [live] contains every live process, the protected one included, and the
    final set difference removes it.  (Paper Theorem 13.)

    The paper presents the algorithm in shared memory; {!install_shm} is
    that version over the {!Setagree_shm} substrate, and {!install_mp} the
    straightforward message-passing translation (heartbeat broadcasts
    replacing register reads), which the paper notes requires no extra
    assumption on t. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

val install_shm :
  Sim.t ->
  suspector:Iface.suspector ->
  querier:Iface.querier ->
  ?step:float ->
  ?access_time:float ->
  unit ->
  t
(** Figure 9 verbatim: [alive] and [suspect] are SWMR register arrays. *)

val install_mp :
  Sim.t ->
  suspector:Iface.suspector ->
  querier:Iface.querier ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  t
(** Message-passing translation: heartbeats carry (counter, suspicions). *)

val output : t -> Iface.suspector
(** The strengthened SUSPECTED sets — a member of S (resp ◇S) when the
    inputs are S_x + φ_y (resp ◇S_x + ◇φ_y) with x + y >= t + 1. *)

val refreshes : t -> Pid.t -> int
(** Completed outer-loop iterations (output refresh count). *)
