open Setagree_dsys
open Setagree_net
open Setagree_fd

type t = {
  sim : Sim.t;
  x : int;
  y : int;
  z : int;
  lower : Wheels_lower.t;
  upper : Wheels_upper.t;
}

let install sim ~(suspector : Iface.suspector) ~(querier : Iface.querier) ~x ~y
    ?(step = 1.0) ?(delay = Delay.default) () =
  let n = Sim.n sim in
  let tb = Sim.t_bound sim in
  if not (Bounds.wheels_admissible ~n ~t:tb ~x ~y) then
    invalid_arg "Wheels.install: inadmissible (x, y) for this (n, t)";
  let z = Bounds.z_of_addition ~t:tb ~x ~y in
  let lower = Wheels_lower.install sim ~suspector ~x ~step ~delay () in
  let upper =
    Wheels_upper.install sim ~querier ~lower
      ~ysize:(Bounds.upper_y_size ~t:tb ~y)
      ~lsize:z ~step ~delay ()
  in
  { sim; x; y; z; lower; upper }

let z t = t.z
let omega t = Wheels_upper.omega t.upper
let lower t = t.lower
let upper t = t.upper

let total_messages t =
  Wheels_lower.underlying_sent t.lower + Wheels_upper.underlying_sent t.upper

let stabilized_since t =
  Float.max (Wheels_lower.last_pos_change t.lower) (Wheels_upper.last_pos_change t.upper)
