(** The assembled two-wheels transformation (paper §4):

    ◇S_x + ◇φ_y  →  Ω_z   with   z = t + 2 - x - y,

    optimal by Theorem 8 (no construction exists when x + y + z < t + 2).

    Special cases (paper §4.4 and Corollaries 6-7):
    - [y = 0] (querier = the no-information φ_0): ◇S_x → Ω_{t+2-x};
    - [x = 1] (suspector = the no-information ◇S_1): ◇φ_y → Ω_{t+1-y}.

    Both are obtained by passing the corresponding no-information module —
    the code path is uniform; see {!Reduce} for these compositions. *)

open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

val install :
  Sim.t ->
  suspector:Iface.suspector ->
  querier:Iface.querier ->
  x:int ->
  y:int ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  t
(** Requires {!Bounds.wheels_admissible}; raises [Invalid_argument]
    otherwise.  The suspector must belong to ◇S_x and the querier to ◇φ_y
    for the output to belong to Ω_z. *)

val z : t -> int
(** The achieved leadership width [t + 2 - x - y]. *)

val omega : t -> Iface.leader
(** The constructed Ω_z module. *)

val lower : t -> Wheels_lower.t
val upper : t -> Wheels_upper.t

val total_messages : t -> int
(** Point-to-point cost of both wheels so far. *)

val stabilized_since : t -> float
(** Latest ring movement in either wheel — the transformation has converged
    if this is well before the end of the run. *)
