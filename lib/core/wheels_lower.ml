open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

(* The lower wheel (paper Figure 5).  Processes scan the ring of all
   (element, x-subset) pairs (Figure 4) and stop on a pair (lx, X) such that
   no live member of X suspects lx.  An x_move message names the ring
   position it objects to; every process R-delivers the same multiset of
   x_moves and consumes them greedily in ring order, so all correct
   processes traverse the ring identically (greedy consumption is confluent:
   the reached position depends on the consumed multiset only, not on
   arrival order). *)

type t = {
  sim : Sim.t;
  ring : Ring.Lower.t;
  rb : int Rbcast.t; (* x_move(position) *)
  pos : int array;
  repr : Pid.t array;
  pending : (int, int) Hashtbl.t array;
  mutable moves_broadcast : int;
  mutable last_pos_change : float;
}

let rec consume t i =
  let p = t.pos.(i) in
  match Hashtbl.find_opt t.pending.(i) p with
  | Some c when c > 0 ->
      if c = 1 then Hashtbl.remove t.pending.(i) p
      else Hashtbl.replace t.pending.(i) p (c - 1);
      let next = Ring.Lower.next t.ring p in
      t.pos.(i) <- next;
      t.last_pos_change <- Sim.now t.sim;
      let tr = Sim.trace t.sim in
      if Trace.records_entries tr then begin
        let now = Sim.now t.sim in
        Trace.end_span tr ~time:now
          (Trace.Wheel_phase { pid = i; wheel = "lower"; pos = p });
        Trace.begin_span tr ~time:now
          (Trace.Wheel_phase { pid = i; wheel = "lower"; pos = next })
      end;
      consume t i
  | _ -> ()

let install sim ~(suspector : Iface.suspector) ~x ?(step = 1.0)
    ?(delay = Delay.default) () =
  let n = Sim.n sim in
  let ring = Ring.Lower.create ~n ~x in
  let rb = Rbcast.create sim ~tag:"wheel.x_move" ~delay () in
  let t =
    {
      sim;
      ring;
      rb;
      pos = Array.make n (Ring.Lower.start ring);
      repr = Array.init n (fun i -> i);
      pending = Array.init n (fun _ -> Hashtbl.create 32);
      moves_broadcast = 0;
      last_pos_change = 0.0;
    }
  in
  (* Task T2: buffer each x_move until the local pair matches, then advance. *)
  Rbcast.on_deliver rb (fun i (d : int Rbcast.delivery) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt t.pending.(i) d.body) in
      Hashtbl.replace t.pending.(i) d.body (c + 1);
      consume t i);
  (* Task T1: maintain repr and object to suspected candidates. *)
  let tr = Sim.trace sim in
  let prev_s = Array.make n None in
  let body i () =
    while true do
      let lx, xset = Ring.Lower.decode ring t.pos.(i) in
      t.repr.(i) <- (if Pidset.mem i xset then lx else i);
      (* Suspector outputs are pure functions of virtual time: an extra
         read for the trace cannot perturb the run. *)
      if Trace.records_entries tr then begin
        let s_i = suspector.Iface.suspected i in
        if
          not
            (match prev_s.(i) with
            | Some p -> Pidset.equal p s_i
            | None -> false)
        then
          Trace.record tr ~time:(Sim.now sim)
            (Trace.Fd_change
               { pid = i; kind = "es"; value = Pidset.to_string s_i });
        prev_s.(i) <- Some s_i
      end;
      if Pidset.mem i xset && Pidset.mem lx (suspector.Iface.suspected i) then begin
        t.moves_broadcast <- t.moves_broadcast + 1;
        Rbcast.broadcast rb ~src:i t.pos.(i)
      end;
      Sim.sleep step
    done
  in
  for i = 0 to n - 1 do
    if Trace.records_entries tr then
      Trace.begin_span tr ~time:(Sim.now sim)
        (Trace.Wheel_phase { pid = i; wheel = "lower"; pos = t.pos.(i) });
    Sim.spawn sim ~pid:i (body i)
  done;
  t

let repr t i = t.repr.(i)
let position t i = t.pos.(i)
let current_pair t i = Ring.Lower.decode t.ring t.pos.(i)
let moves_broadcast t = t.moves_broadcast
let last_pos_change t = t.last_pos_change
let underlying_sent t = Rbcast.underlying_sent t.rb
