(** The lower wheel (paper Figure 5): from a ◇S_x suspector, eventually
    provide every process p_i with a representative [repr i] such that there
    is a set X of x processes with either (a) all of X crashed and every
    correct process has [repr i = i], or (b) every live member of X has
    [repr i = lx] for one common {e correct} process lx ∈ X, and every
    process outside X has [repr i = i]  (paper Theorem 7).

    The component is quiescent: only finitely many x_move messages are ever
    broadcast (paper Corollary 1) — {!moves_broadcast} stabilizes. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

val install :
  Sim.t ->
  suspector:Iface.suspector ->
  x:int ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  t
(** Spawn tasks T1/T2 on every process.  [step] (default 1.0) is the period
    of the T1 scan loop. *)

val repr : t -> Pid.t -> Pid.t
(** Current representative of process [i] (read by the upper wheel's
    responder task). *)

val position : t -> Pid.t -> int
(** Current ring position (testing / experiments). *)

val current_pair : t -> Pid.t -> Pid.t * Pidset.t
(** Decoded [(lx_i, X_i)]. *)

val moves_broadcast : t -> int
(** Number of x_move R-broadcasts so far (quiescence measure). *)

val last_pos_change : t -> float
(** Virtual time of the last ring advance at any process. *)

val underlying_sent : t -> int
(** Point-to-point message cost of the component. *)
