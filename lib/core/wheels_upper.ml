open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

(* The upper wheel (paper Figure 6).  Processes scan the ring of all (L, Y)
   pairs — Y of size t-y+1 (the smallest size in ◇φ_y's meaningful window),
   L a z-subset of Y — and stop on a pair such that responses from Y's live
   members keep carrying representatives that belong to L.  The stabilizing
   configuration (paper Figure 7) is Y ⊇ X, L = {lx} ∪ (Y \ X) where (lx, X)
   is the lower wheel's limit: |Y \ X| = (t-y+1) - x = z - 1, so such an L
   exists in the ring exactly when z = t+2-x-y. *)

type ir = Inquiry of int | Response of { seq : int; repr : Pid.t }

type t = {
  sim : Sim.t;
  ring : Ring.Upper.t;
  net : ir Net.t;
  rb : int Rbcast.t; (* l_move(position) *)
  querier : Iface.querier;
  pos : int array;
  pending : (int, int) Hashtbl.t array;
  (* Per process: inquiry seq -> (responder, announced repr) list.  Indexed
     so that wait predicates need not rescan the whole mailbox. *)
  responses : (int, (Pid.t * Pid.t) list) Hashtbl.t array;
  mutable moves_broadcast : int;
  mutable last_pos_change : float;
}

let rec consume t i =
  let p = t.pos.(i) in
  match Hashtbl.find_opt t.pending.(i) p with
  | Some c when c > 0 ->
      if c = 1 then Hashtbl.remove t.pending.(i) p
      else Hashtbl.replace t.pending.(i) p (c - 1);
      let next = Ring.Upper.next t.ring p in
      t.pos.(i) <- next;
      t.last_pos_change <- Sim.now t.sim;
      let tr = Sim.trace t.sim in
      if Trace.records_entries tr then begin
        let now = Sim.now t.sim in
        Trace.end_span tr ~time:now
          (Trace.Wheel_phase { pid = i; wheel = "upper"; pos = p });
        Trace.begin_span tr ~time:now
          (Trace.Wheel_phase { pid = i; wheel = "upper"; pos = next })
      end;
      consume t i
  | _ -> ()

let install sim ~(querier : Iface.querier) ~lower ~ysize ~lsize ?(step = 1.0)
    ?(delay = Delay.default) () =
  let n = Sim.n sim in
  let ring = Ring.Upper.create ~n ~ysize ~lsize in
  let net = Net.create sim ~tag:"wheel.ir" ~delay ~retain:false () in
  let rb = Rbcast.create sim ~tag:"wheel.l_move" ~delay () in
  let t =
    {
      sim;
      ring;
      net;
      rb;
      querier;
      pos = Array.make n (Ring.Upper.start ring);
      pending = Array.init n (fun _ -> Hashtbl.create 32);
      responses = Array.init n (fun _ -> Hashtbl.create 32);
      moves_broadcast = 0;
      last_pos_change = 0.0;
    }
  in
  (* Task T4: buffered consumption of l_moves, same scheme as the lower
     wheel. *)
  Rbcast.on_deliver rb (fun i (d : int Rbcast.delivery) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt t.pending.(i) d.body) in
      Hashtbl.replace t.pending.(i) d.body (c + 1);
      consume t i);
  (* Task T5: answer inquiries with the lower wheel's current repr. *)
  Net.on_deliver net (fun (e : ir Net.envelope) ->
      match e.payload with
      | Inquiry seq ->
          Net.send net ~src:e.dst ~dst:e.src
            (Response { seq; repr = Wheels_lower.repr lower e.dst })
      | Response { seq; repr } ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt t.responses.(e.dst) seq) in
          Hashtbl.replace t.responses.(e.dst) seq ((e.src, repr) :: cur));
  (* Task T3: the inquiry loop. *)
  let tr = Sim.trace sim in
  let body i () =
    let seq = ref 0 in
    while true do
      incr seq;
      let s = !seq in
      (* Responses to inquiries before the previous one can never be read
         again. *)
      Hashtbl.remove t.responses.(i) (s - 2);
      if Trace.records_entries tr then
        Trace.begin_span tr ~time:(Sim.now sim)
          (Trace.Query_epoch { pid = i; seq = s });
      Net.broadcast net ~src:i (Inquiry s);
      let response_y () =
        (* Representatives announced for this inquiry by members of the
           current Y_i. *)
        let _, y = Ring.Upper.decode ring t.pos.(i) in
        List.filter_map
          (fun (src, repr) -> if Pidset.mem src y then Some repr else None)
          (Option.value ~default:[] (Hashtbl.find_opt t.responses.(i) s))
      in
      let y_dead () =
        let _, y = Ring.Upper.decode ring t.pos.(i) in
        t.querier.Iface.query i y
      in
      (* [y_dead] reads the querier (clock-derived), so this wait keeps the
         poll cadence; responses arrive as deliveries to i. *)
      Sim.Cond.await
        [ Sim.Cond.poll sim ]
        (fun () -> response_y () <> [] || y_dead ());
      if Trace.records_entries tr then
        Trace.end_span tr ~time:(Sim.now sim)
          (Trace.Query_epoch { pid = i; seq = s });
      if not (y_dead ()) then begin
        let l, _y = Ring.Upper.decode ring t.pos.(i) in
        let rec_from = response_y () in
        if rec_from <> [] && not (List.exists (fun r -> Pidset.mem r l) rec_from)
        then begin
          t.moves_broadcast <- t.moves_broadcast + 1;
          Rbcast.broadcast rb ~src:i t.pos.(i)
        end
      end;
      Sim.sleep step
    done
  in
  for i = 0 to n - 1 do
    if Trace.records_entries tr then
      Trace.begin_span tr ~time:(Sim.now sim)
        (Trace.Wheel_phase { pid = i; wheel = "upper"; pos = t.pos.(i) });
    Sim.spawn sim ~pid:i (body i)
  done;
  t

(* Reading trusted_i (the paper's task T6 / line 10-11): if the whole
   current Y_i has crashed, name the smallest process outside Y_i whose
   region is not entirely dead; otherwise trust L_i. *)
let trusted t i =
  let n = Sim.n t.sim in
  let l, y = Ring.Upper.decode t.ring t.pos.(i) in
  if t.querier.Iface.query i y then begin
    let rec find j =
      if j >= n then
        (* No witness (possible only under pre-gst noise): fall back to the
           smallest process outside Y. *)
        (match Pidset.min_elt_opt (Pidset.diff (Pidset.full ~n) y) with
        | Some p -> Pidset.singleton p
        | None -> Pidset.singleton 0)
      else if (not (Pidset.mem j y)) && not (t.querier.Iface.query i (Pidset.add j y))
      then Pidset.singleton j
      else find (j + 1)
    in
    find 0
  end
  else l

let omega t = { Iface.trusted = (fun i -> trusted t i) }
let position t i = t.pos.(i)
let current_pair t i = Ring.Upper.decode t.ring t.pos.(i)
let moves_broadcast t = t.moves_broadcast
let last_pos_change t = t.last_pos_change
let underlying_sent t = Net.sent_count t.net + Rbcast.underlying_sent t.rb
