(** The upper wheel (paper Figure 6): from a ◇φ_y querier plus the lower
    wheel's representatives, stabilize every correct process on the same
    pair (L, Y) — |Y| = t-y+1, |L| = z — whose L contains a correct process,
    and output it as [trusted_i].  Together with the lower wheel this
    implements ◇S_x + ◇φ_y → Ω_z for z = t+2-x-y (paper Theorem 8,
    sufficiency).

    Unlike the lower wheel this component is not quiescent (inquiry /
    response traffic never stops — paper's Remark in §4.2.2), but l_move
    messages are finite. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd

type t

val install :
  Sim.t ->
  querier:Iface.querier ->
  lower:Wheels_lower.t ->
  ysize:int ->
  lsize:int ->
  ?step:float ->
  ?delay:Delay.t ->
  unit ->
  t
(** Spawn tasks T3/T4/T5 on every process.  [ysize] must be [t - y + 1] and
    [lsize] the target z (see {!Bounds.upper_y_size}). *)

val trusted : t -> Pid.t -> Pidset.t
(** Read [trusted_i] (paper line 10-11): the current L_i, or — when the
    whole Y_i has crashed — the singleton of the smallest process outside
    Y_i whose extension is not entirely dead. *)

val omega : t -> Iface.leader
(** {!trusted} packaged as an Ω_z interface. *)

val position : t -> Pid.t -> int
val current_pair : t -> Pid.t -> Pidset.t * Pidset.t
(** Decoded [(L_i, Y_i)]. *)

val moves_broadcast : t -> int
(** l_move R-broadcasts so far (finite on every run — Corollary 2). *)

val last_pos_change : t -> float
val underlying_sent : t -> int
