open Setagree_util

type spec =
  | No_crashes
  | Explicit of (Pid.t * float) list
  | Initial of Pid.t list
  | Random_up_to of { max_crashes : int; window : float * float }
  | Exactly of { crashes : int; window : float * float }

let check ~t crashes =
  if List.length crashes > t then
    invalid_arg "Crash.generate: schedule exceeds the resilience bound t";
  crashes

let random_times rng ~n ~t ~count ~window:(lo, hi) =
  let count = min count t in
  let victims = Pidset.random rng ~n ~size:count in
  Pidset.fold (fun p acc -> (p, Rng.uniform_in rng lo hi) :: acc) victims []
  |> List.rev

let generate spec ~n ~t rng =
  match spec with
  | No_crashes -> []
  | Explicit l -> check ~t l
  | Initial pids -> check ~t (List.map (fun p -> (p, 0.0)) pids)
  | Random_up_to { max_crashes; window } ->
      let count = Rng.int rng (min max_crashes t + 1) in
      random_times rng ~n ~t ~count ~window
  | Exactly { crashes; window } -> random_times rng ~n ~t ~count:crashes ~window

let victims l = Pidset.of_list (List.map fst l)

let pp fmt l =
  Format.fprintf fmt "[%s]"
    (String.concat "; "
       (List.map (fun (p, tm) -> Printf.sprintf "%s@%.2f" (Pid.to_string p) tm) l))
