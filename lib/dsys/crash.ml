open Setagree_util

type spec =
  | No_crashes
  | Explicit of (Pid.t * float) list
  | Initial of Pid.t list
  | Random_up_to of { max_crashes : int; window : float * float }
  | Exactly of { crashes : int; window : float * float }

let check ~t crashes =
  if List.length crashes > t then
    invalid_arg "Crash.generate: schedule exceeds the resilience bound t";
  crashes

let random_times rng ~n ~t ~count ~window:(lo, hi) =
  let count = min count t in
  let victims = Pidset.random rng ~n ~size:count in
  Pidset.fold (fun p acc -> (p, Rng.uniform_in rng lo hi) :: acc) victims []
  |> List.rev

let generate spec ~n ~t rng =
  match spec with
  | No_crashes -> []
  | Explicit l -> check ~t l
  | Initial pids -> check ~t (List.map (fun p -> (p, 0.0)) pids)
  | Random_up_to { max_crashes; window } ->
      let count = Rng.int rng (min max_crashes t + 1) in
      random_times rng ~n ~t ~count ~window
  | Exactly { crashes; window } -> random_times rng ~n ~t ~count:crashes ~window

let victims l = Pidset.of_list (List.map fst l)

(* ---- JSON (schedule files, triage records) ---- *)

let window_json (lo, hi) = Json.List [ Json.Float lo; Json.Float hi ]

let spec_to_json = function
  | No_crashes -> Json.Obj [ ("kind", Json.String "none") ]
  | Explicit l ->
      Json.Obj
        [
          ("kind", Json.String "explicit");
          ( "crashes",
            Json.List
              (List.map
                 (fun (p, tm) ->
                   Json.Obj [ ("pid", Json.Int p); ("time", Json.Float tm) ])
                 l) );
        ]
  | Initial pids ->
      Json.Obj
        [
          ("kind", Json.String "initial");
          ("pids", Json.List (List.map (fun p -> Json.Int p) pids));
        ]
  | Random_up_to { max_crashes; window } ->
      Json.Obj
        [
          ("kind", Json.String "random_up_to");
          ("max_crashes", Json.Int max_crashes);
          ("window", window_json window);
        ]
  | Exactly { crashes; window } ->
      Json.Obj
        [
          ("kind", Json.String "exactly");
          ("crashes", Json.Int crashes);
          ("window", window_json window);
        ]

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Crash.spec_of_json: missing field %S" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "Crash.spec_of_json: %S must be an int" name)

let as_float name j =
  match Json.to_float_opt j with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "Crash.spec_of_json: %S must be a number" name)

let as_window name = function
  | Json.List [ lo; hi ] ->
      let* lo = as_float name lo in
      let* hi = as_float name hi in
      Ok (lo, hi)
  | _ -> Error (Printf.sprintf "Crash.spec_of_json: %S must be [lo, hi]" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let spec_of_json j =
  let* kind = field "kind" j in
  match kind with
  | Json.String "none" -> Ok No_crashes
  | Json.String "explicit" ->
      let* l = field "crashes" j in
      let* items =
        match l with
        | Json.List items ->
            map_result
              (fun item ->
                let* pid = field "pid" item in
                let* pid = as_int "pid" pid in
                let* tm = field "time" item in
                let* tm = as_float "time" tm in
                Ok (pid, tm))
              items
        | _ -> Error "Crash.spec_of_json: \"crashes\" must be a list"
      in
      Ok (Explicit items)
  | Json.String "initial" ->
      let* l = field "pids" j in
      let* pids =
        match l with
        | Json.List items -> map_result (as_int "pids") items
        | _ -> Error "Crash.spec_of_json: \"pids\" must be a list"
      in
      Ok (Initial pids)
  | Json.String "random_up_to" ->
      let* m = field "max_crashes" j in
      let* max_crashes = as_int "max_crashes" m in
      let* w = field "window" j in
      let* window = as_window "window" w in
      Ok (Random_up_to { max_crashes; window })
  | Json.String "exactly" ->
      let* c = field "crashes" j in
      let* crashes = as_int "crashes" c in
      let* w = field "window" j in
      let* window = as_window "window" w in
      Ok (Exactly { crashes; window })
  | Json.String k -> Error (Printf.sprintf "Crash.spec_of_json: unknown kind %S" k)
  | _ -> Error "Crash.spec_of_json: \"kind\" must be a string"

let pp fmt l =
  Format.fprintf fmt "[%s]"
    (String.concat "; "
       (List.map (fun (p, tm) -> Printf.sprintf "%s@%.2f" (Pid.to_string p) tm) l))
