(** Crash-schedule generation.

    A schedule fixes, before the run starts, which processes crash and when.
    This is the adversary's failure pattern; the simulator's ground truth and
    every oracle derive from it. *)

open Setagree_util

type spec =
  | No_crashes
  | Explicit of (Pid.t * float) list
      (** Exactly these crashes at these times. *)
  | Initial of Pid.t list
      (** Crashes at time 0 — the "initial crashes" of the paper's
          zero-degradation discussion (§3.2). *)
  | Random_up_to of { max_crashes : int; window : float * float }
      (** A uniform number of crashes in [0 .. max_crashes], distinct uniform
          victims, times uniform in the window. *)
  | Exactly of { crashes : int; window : float * float }
      (** Exactly [crashes] distinct victims, times uniform in the window. *)

val generate : spec -> n:int -> t:int -> Rng.t -> (Pid.t * float) list
(** Instantiate the spec.  The result never exceeds [t] crashes; generation
    respecting the bound is the caller's contract for [Explicit]/[Initial]
    (checked, [Invalid_argument] otherwise). *)

val victims : (Pid.t * float) list -> Pidset.t

val pp : Format.formatter -> (Pid.t * float) list -> unit

(** {1 JSON}

    Round-trippable encoding, used by [Explore]'s schedule files and the
    campaign triage records ([_results/failures.json]): a spec plus the run
    seed reproduces the exact failure pattern. *)

val spec_to_json : spec -> Json.t

val spec_of_json : Json.t -> (spec, string) result
(** Inverse of {!spec_to_json}: [spec_of_json (spec_to_json s) = Ok s]
    (pinned by a qcheck round-trip test). *)
