open Setagree_util

type instance = {
  i_sim : Sim.t;
  i_stop : unit -> bool;
  i_violation : unit -> string list;
  i_crashable : Pid.t list;
}

type options = {
  o_deliveries : (Pid.t * Pid.t) array;
  o_crashes : Pid.t list;
}

type exec = {
  ex_choices : Schedule.choice list;
  ex_options : options array;
  ex_points : int;
  ex_violation : string list;
  ex_outcome : Sim.outcome;
}

type stats = {
  mutable runs : int;
  mutable points : int;
  mutable prunes : int;
  mutable violations : int;
  mutable shrink_runs : int;
}

let new_stats () = { runs = 0; points = 0; prunes = 0; violations = 0; shrink_runs = 0 }

let stats_metrics st =
  [
    ("explore.runs", float_of_int st.runs);
    ("explore.points", float_of_int st.points);
    ("explore.prunes", float_of_int st.prunes);
    ("explore.violations", float_of_int st.violations);
    ("explore.shrink_runs", float_of_int st.shrink_runs);
  ]

(* Crash victims the adversary may still pick: declared crashable, not yet
   scheduled to crash, and within the resilience budget t. *)
let crash_candidates inst =
  let sim = inst.i_sim in
  let correct = Sim.correct_set sim in
  let budget = Sim.t_bound sim - (Sim.n sim - Pidset.cardinal correct) in
  if budget <= 0 then []
  else List.filter (fun p -> Pidset.mem p correct) inst.i_crashable

(* One controlled run.  [next] is consulted at every choice point (an
   event boundary with at least one pending delivery) and its choice is
   normalized (clamped index, ineligible crash degraded to the default),
   so the recorded [ex_choices] always replays identically.  Options are
   recorded for the first [depth] points only. *)
let controlled_run ~make ~depth ~next =
  let inst = make () in
  let sim = inst.i_sim in
  let points = ref 0 in
  let executed = ref [] in
  let recorded = ref [] in
  Sim.set_chooser sim (fun _sim arr ->
      let m = Array.length arr in
      if m = 0 then Sim.Pass
      else begin
        let point = !points in
        incr points;
        let crashables = crash_candidates inst in
        if point < depth then
          recorded :=
            {
              o_deliveries =
                Array.map (fun (p : Sim.pending) -> (p.Sim.pd_src, p.Sim.pd_dst)) arr;
              o_crashes = crashables;
            }
            :: !recorded;
        match next ~point ~deliveries:m ~crashables with
        | Schedule.Deliver i ->
            let i = if i < 0 then 0 else if i >= m then m - 1 else i in
            executed := Schedule.Deliver i :: !executed;
            Sim.Deliver i
        | Schedule.Crash p when List.mem p crashables ->
            executed := Schedule.Crash p :: !executed;
            Sim.Inject_crash p
        | Schedule.Crash _ ->
            executed := Schedule.Deliver 0 :: !executed;
            Sim.Deliver 0
      end);
  let outcome = Sim.run ~stop_when:inst.i_stop sim in
  Sim.clear_chooser sim;
  {
    ex_choices = List.rev !executed;
    ex_options = Array.of_list (List.rev !recorded);
    ex_points = !points;
    ex_violation = inst.i_violation ();
    ex_outcome = outcome;
  }

let run_schedule ~make ?(depth = 0) choices =
  let rem = ref choices in
  controlled_run ~make ~depth ~next:(fun ~point:_ ~deliveries:_ ~crashables:_ ->
      match !rem with
      | [] -> Schedule.Deliver 0
      | c :: rest ->
          rem := rest;
          c)

let random_walk ~make ~seed ?(depth = 10_000) ?(p_deviate = 0.25) ?(p_crash = 0.05) () =
  let rng = Rng.create seed in
  controlled_run ~make ~depth:0 ~next:(fun ~point ~deliveries:m ~crashables ->
      if point >= depth then Schedule.Deliver 0
      else if crashables <> [] && Rng.float rng 1.0 < p_crash then
        Schedule.Crash (List.nth crashables (Rng.int rng (List.length crashables)))
      else if m > 1 && Rng.float rng 1.0 < p_deviate then
        Schedule.Deliver (1 + Rng.int rng (m - 1))
      else Schedule.Deliver 0)

let firstn k l = List.filteri (fun i _ -> i < k) l

let deviations prefix =
  List.length
    (List.filter (function Schedule.Deliver 0 -> false | _ -> true) prefix)

let alternatives_at stats e q =
  if q >= Array.length e.ex_options || q >= List.length e.ex_choices then []
  else begin
    let opts = e.ex_options.(q) in
    let pre = firstn q e.ex_choices in
    let m = Array.length opts.o_deliveries in
    (* Delivering the j-th pending message ahead of messages 0..j-1 only
       matters if it overtakes a delivery to the *same* destination:
       adjacent deliveries to different destinations commute (they touch
       disjoint mailboxes), so those branches are pruned — the
       sleep-set-style reduction. *)
    let deliver_alts =
      List.concat
        (List.init (m - 1) (fun jm1 ->
             let j = jm1 + 1 in
             let _, dj = opts.o_deliveries.(j) in
             let overtakes_same_dst = ref false in
             for i = 0 to j - 1 do
               let _, di = opts.o_deliveries.(i) in
               if di = dj then overtakes_same_dst := true
             done;
             if !overtakes_same_dst then [ pre @ [ Schedule.Deliver j ] ]
             else begin
               stats.prunes <- stats.prunes + 1;
               []
             end))
    in
    (* Crash branches: initial crashes (at the very first point), or a
       crash of a process participating in the default next delivery —
       the only placements that can change what this boundary does. *)
    let s0, d0 = opts.o_deliveries.(0) in
    let crash_alts =
      List.filter_map
        (fun p ->
          if q = 0 || p = s0 || p = d0 then Some (pre @ [ Schedule.Crash p ])
          else None)
        opts.o_crashes
    in
    deliver_alts @ crash_alts
  end

let bump_run stats e =
  stats.runs <- stats.runs + 1;
  stats.points <- stats.points + e.ex_points

let default_exec ~make ~stats ~depth =
  let e = run_schedule ~make ~depth [] in
  bump_run stats e;
  e

let dfs ~make ~stats ?(depth = 64) ?(delays = 2) ?(max_runs = 1000) roots =
  let found = ref [] in
  let stack = ref roots in
  while !stack <> [] && stats.runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        let e = run_schedule ~make ~depth prefix in
        bump_run stats e;
        if e.ex_violation <> [] then begin
          stats.violations <- stats.violations + 1;
          (* Don't expand below a violation: shrinking handles minimality. *)
          found := (prefix, e.ex_violation) :: !found
        end
        else if deviations prefix < delays then begin
          let plen = List.length prefix in
          let kids = ref [] in
          for q = Array.length e.ex_options - 1 downto plen do
            kids := alternatives_at stats e q @ !kids
          done;
          stack := !kids @ !stack
        end
  done;
  List.rev !found

(* Generic greedy delta debugging over a list of atoms: repeatedly drop
   chunks of halving sizes while [test] keeps holding on the candidate.
   [test] must hold on the full input for the result to be meaningful
   (callers establish that before minimizing).  Used by the schedule
   shrinker below and by the chaos campaign to minimize failing fault
   specifications ([Faults.elements]). *)
let ddmin ~test ?(budget = max_int) items =
  let left = ref budget in
  let check cand =
    if !left <= 0 then false
    else begin
      decr left;
      test cand
    end
  in
  let remove_range l start len =
    List.filteri (fun i _ -> i < start || i >= start + len) l
  in
  let rec chunk_pass cur size =
    if size < 1 then cur
    else begin
      let rec at start cur =
        if start >= List.length cur then cur
        else
          let cand = remove_range cur start size in
          if check cand then at start cand else at (start + size) cur
      in
      chunk_pass (at 0 cur) (size / 2)
    end
  in
  if items = [] then []
  else if check [] then []
  else chunk_pass items (max 1 (List.length items / 2))

let shrink ~make ~stats ?(budget = 400) (choices, notes) =
  let left = ref budget in
  let try_run cs =
    if !left <= 0 then None
    else begin
      decr left;
      stats.shrink_runs <- stats.shrink_runs + 1;
      let e = run_schedule ~make cs in
      bump_run stats e;
      Some e
    end
  in
  let viol cs =
    match try_run cs with Some e -> e.ex_violation <> [] | None -> false
  in
  let remove_range l start len =
    List.filteri (fun i _ -> i < start || i >= start + len) l
  in
  (* Greedy delta debugging: drop chunks of halving sizes while the
     violation survives, then normalize surviving non-default choices
     (crashes and reorderings) back to the default one at a time. *)
  let rec chunk_pass cur size =
    if size < 1 then cur
    else begin
      let rec at start cur =
        if start >= List.length cur then cur
        else
          let cand = remove_range cur start size in
          if viol cand then at start cand else at (start + size) cur
      in
      chunk_pass (at 0 cur) (size / 2)
    end
  in
  let normalize cur =
    List.fold_left
      (fun acc idx ->
        match List.nth acc idx with
        | Schedule.Deliver 0 -> acc
        | _ ->
            let cand =
              List.mapi (fun i c -> if i = idx then Schedule.Deliver 0 else c) acc
            in
            if viol cand then cand else acc)
      cur
      (List.init (List.length cur) Fun.id)
  in
  let minimized =
    if viol [] then []
    else
      let cur = chunk_pass choices (max 1 (List.length choices / 2)) in
      let cur = normalize cur in
      chunk_pass cur 1
  in
  (* Confirming run (not budget-gated): the minimized schedule's own
     violation notes, which may differ from the original's. *)
  stats.shrink_runs <- stats.shrink_runs + 1;
  let e = run_schedule ~make minimized in
  bump_run stats e;
  if e.ex_violation <> [] then (minimized, e.ex_violation) else (choices, notes)
