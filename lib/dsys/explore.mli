(** Adversarial schedule exploration.

    The explorer drives a {!Sim} chooser over a protocol-blind
    {!instance}: at every event boundary with pending deliveries (a
    {e choice point}) the adversary picks which message to deliver next
    or injects a crash.  An execution is then fully determined by the
    instance's construction parameters plus the {!Schedule.choice} list,
    so any violating run replays exactly and can be minimized by
    delta debugging.

    Two search modes:
    - {!dfs} — depth- and delay-bounded systematic search with a
      sleep-set-style reduction: a pending delivery is only reordered
      ahead of earlier ones when it overtakes a delivery to the {e same}
      destination (cross-destination deliveries commute), and crashes are
      only branched where they can change the next step.
    - {!random_walk} — seeded guided random walks for instances too large
      to enumerate; every walk records its choices and is replayable.

    All functions rebuild the instance from scratch via [make], so runs
    are independent and a fixed [(make, choices)] pair is deterministic. *)

open Setagree_util

type instance = {
  i_sim : Sim.t;
  i_stop : unit -> bool;  (** stop the run early (e.g. all decided) *)
  i_violation : unit -> string list;
      (** safety-only verdict on the (possibly partial) run; [[]] = none *)
  i_crashable : Pid.t list;  (** processes the adversary may crash *)
}

type options = {
  o_deliveries : (Pid.t * Pid.t) array;
      (** (src, dst) of each pending delivery, canonical order *)
  o_crashes : Pid.t list;  (** crash candidates still within budget *)
}

type exec = {
  ex_choices : Schedule.choice list;
      (** normalized choice made at every point — replays identically *)
  ex_options : options array;  (** options seen at the first [depth] points *)
  ex_points : int;
  ex_violation : string list;
  ex_outcome : Sim.outcome;
}

type stats = {
  mutable runs : int;
  mutable points : int;
  mutable prunes : int;  (** commuting delivery branches skipped *)
  mutable violations : int;
  mutable shrink_runs : int;
}

val new_stats : unit -> stats
val stats_metrics : stats -> (string * float) list

val run_schedule :
  make:(unit -> instance) -> ?depth:int -> Schedule.choice list -> exec
(** Run one controlled execution.  Choices are consumed one per choice
    point; when the list is exhausted the run continues under the default
    FIFO policy ([Deliver 0]).  Out-of-range delivery indices are clamped
    and ineligible crashes degrade to the default, so every choice list
    is valid.  [depth] (default 0) bounds how many points record their
    {!options} for branching. *)

val random_walk :
  make:(unit -> instance) ->
  seed:int ->
  ?depth:int ->
  ?p_deviate:float ->
  ?p_crash:float ->
  unit ->
  exec
(** One seeded random walk: at each point, crash a random candidate with
    probability [p_crash], otherwise deviate from FIFO with probability
    [p_deviate].  Deterministic in [(make, seed)]; the recorded
    [ex_choices] replay it exactly. *)

val deviations : Schedule.choice list -> int
(** Number of non-default choices (reorderings and crashes). *)

val alternatives_at : stats -> exec -> int -> Schedule.choice list list
(** Branch prefixes deviating from [exec] first at point [q]: each is
    [exec]'s executed choices before [q] followed by one alternative
    (non-commuting delivery or eligible crash).  Commuting deliveries are
    counted in [stats.prunes] and skipped.  Empty if [q] is beyond the
    recorded depth. *)

val dfs :
  make:(unit -> instance) ->
  stats:stats ->
  ?depth:int ->
  ?delays:int ->
  ?max_runs:int ->
  Schedule.choice list list ->
  (Schedule.choice list * string list) list
(** Systematic search from the given root prefixes.  Expands each
    non-violating run at points at or after its prefix (first-deviation
    discipline, so distinct roots explore disjoint subtrees), up to
    [delays] total deviations per run and [depth] points per run, and
    never expands below a violating run.  Returns (prefix, violation)
    pairs in discovery order; stops after [max_runs] executions. *)

val ddmin : test:('a list -> bool) -> ?budget:int -> 'a list -> 'a list
(** Generic greedy delta debugging over a list of atoms: drop chunks of
    halving sizes (down to single atoms) while [test] keeps holding on
    the candidate, calling [test] at most [budget] times (default
    unbounded).  [test] must hold on the full input; the result is a
    sublist on which it still holds (the empty list if it holds there).
    This is the chunk-removal core of {!shrink}, exposed for minimizing
    other atom lists — the chaos campaign uses it over
    [Faults.elements] to minimize failing fault specifications. *)

val shrink :
  make:(unit -> instance) ->
  stats:stats ->
  ?budget:int ->
  Schedule.choice list * string list ->
  Schedule.choice list * string list
(** Greedy delta debugging of a violating choice list: chunk-removal
    passes with halving chunk sizes, then per-choice normalization back
    to the default, then a final single-choice pass — re-running the
    schedule after each candidate edit and keeping it only if the
    violation survives.  At most [budget] trial runs, plus one confirming
    run of the result.  The returned pair always violates. *)

val default_exec : make:(unit -> instance) -> stats:stats -> depth:int -> exec
(** The all-defaults (FIFO, no injected crashes) controlled run, with
    options recorded to [depth] — the root of a {!dfs}. *)
