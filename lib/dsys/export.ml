open Setagree_util

let pid_json = function None -> Json.Null | Some p -> Json.Int p

let span_fields sp =
  let open Trace in
  [
    ("cat", Json.String (span_cat sp));
    ("name", Json.String (span_name sp));
    ("pid", pid_json (span_pid sp));
    ("track", Json.Int (span_track sp));
  ]
  @
  match sp with
  | Round { round; _ } -> [ ("round", Json.Int round) ]
  | Wheel_phase { pos; _ } -> [ ("pos", Json.Int pos) ]
  | Query_epoch { seq; _ } -> [ ("seq", Json.Int seq) ]
  | Wakeup _ | Span _ -> []

let entry_json time entry =
  let t = ("t", Json.Float time) in
  let open Trace in
  match entry with
  | Crash p -> Json.Obj [ t; ("ev", Json.String "crash"); ("pid", Json.Int p) ]
  | Send { src; dst; tag } ->
      Json.Obj
        [
          t;
          ("ev", Json.String "send");
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("tag", Json.String tag);
        ]
  | Deliver { src; dst; tag } ->
      Json.Obj
        [
          t;
          ("ev", Json.String "deliver");
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("tag", Json.String tag);
        ]
  | Decide { pid; value; round } ->
      Json.Obj
        [
          t;
          ("ev", Json.String "decide");
          ("pid", Json.Int pid);
          ("value", Json.Int value);
          ("round", Json.Int round);
        ]
  | Fd_change { pid; kind; value } ->
      Json.Obj
        [
          t;
          ("ev", Json.String "fd");
          ("pid", Json.Int pid);
          ("kind", Json.String kind);
          ("value", Json.String value);
        ]
  | Note { pid; text } ->
      Json.Obj
        [ t; ("ev", Json.String "note"); ("pid", pid_json pid);
          ("text", Json.String text) ]
  | Begin sp -> Json.Obj ((t :: [ ("ev", Json.String "begin") ]) @ span_fields sp)
  | End sp -> Json.Obj ((t :: [ ("ev", Json.String "end") ]) @ span_fields sp)

(* The JSONL format is built from four line constructors shared by the
   post-hoc exporter and the streaming one (below), so "concatenated
   stream frames == post-hoc file" holds by construction.  Counts that
   are only known once the run is over (entry/counter totals) live in a
   trailing "end" line, not the meta header — a live stream must be
   able to emit the header before the run finishes.  (Format version 2;
   version 1 carried the entry count in the header.) *)

let meta_line tr =
  Json.to_string ~minify:true
    (Json.Obj
       ([
          ("type", Json.String "meta");
          ("format", Json.String "setagree-trace");
          ("version", Json.Int 2);
        ]
       @ Stamp.fields ()
       @ [ ("level", Json.String (Trace.level_to_string (Trace.level tr))) ]))

let entry_line time entry = Json.to_string ~minify:true (entry_json time entry)

let counter_lines tr =
  List.map
    (fun (name, v) ->
      Json.to_string ~minify:true
        (Json.Obj
           [
             ("ev", Json.String "counter");
             ("name", Json.String name);
             ("value", Json.Int v);
           ]))
    (Trace.counters tr)

let end_line tr =
  Json.to_string ~minify:true
    (Json.Obj
       [
         ("type", Json.String "end");
         ("entries", Json.Int (Trace.length tr));
         ("counters", Json.Int (List.length (Trace.counters tr)));
       ])

let jsonl_lines tr =
  let lines = ref [] in
  Trace.iter
    (fun { Trace.time; entry } -> lines := entry_line time entry :: !lines)
    tr;
  (meta_line tr :: List.rev !lines) @ counter_lines tr @ [ end_line tr ]

let to_jsonl tr = String.concat "\n" (jsonl_lines tr) ^ "\n"

(* -- streaming JSONL -------------------------------------------------- *)

module Stream = struct
  type t = {
    tr : Trace.t;
    cur : Trace.cursor;
    mutable headered : bool; (* meta line already emitted *)
    mutable closed : bool;
  }

  let create tr = { tr; cur = Trace.cursor (); headered = false; closed = false }

  let frame_of_lines = function
    | [] -> ""
    | lines -> String.concat "\n" lines ^ "\n"

  let pending_lines t =
    let entries =
      List.map
        (fun { Trace.time; entry } -> entry_line time entry)
        (Trace.tail t.tr t.cur)
    in
    if t.headered then entries
    else begin
      t.headered <- true;
      meta_line t.tr :: entries
    end

  let flush t =
    if t.closed then invalid_arg "Export.Stream.flush: stream is closed";
    (* An untouched stream emits nothing until there is something to
       say; the header rides with the first non-empty frame (or close). *)
    if (not t.headered) && Trace.pending t.tr t.cur = 0 then ""
    else frame_of_lines (pending_lines t)

  let close t =
    if t.closed then invalid_arg "Export.Stream.close: stream is closed";
    t.closed <- true;
    frame_of_lines (pending_lines t @ counter_lines t.tr @ [ end_line t.tr ])
end

(* -- Chrome trace_event ---------------------------------------------- *)

(* Sim-time unit renders as 1 ms in the viewer. *)
let ts time = ("ts", Json.Float (time *. 1000.))

let instant_tid pid =
  match pid with None -> 6 | Some p -> ((p + 1) * 8) + 6

let instant time ~name ~tid =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "event");
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ts time;
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
    ]

let span_event ph time sp =
  let open Trace in
  let base =
    [
      ("name", Json.String (span_name sp));
      ("cat", Json.String (span_cat sp));
      ("ph", Json.String ph);
      ts time;
      ("pid", Json.Int 0);
      ("tid", Json.Int (span_track sp));
    ]
  in
  let args =
    match sp with
    | Round { round; _ } when ph = "B" ->
        [ ("args", Json.Obj [ ("round", Json.Int round) ]) ]
    | Wheel_phase { pos; _ } when ph = "B" ->
        [ ("args", Json.Obj [ ("pos", Json.Int pos) ]) ]
    | Query_epoch { seq; _ } when ph = "B" ->
        [ ("args", Json.Obj [ ("seq", Json.Int seq) ]) ]
    | _ -> []
  in
  Json.Obj (base @ args)

let chrome_json tr =
  let events = ref [] in
  let push e = events := e :: !events in
  let t_end = ref 0. in
  Trace.iter
    (fun { Trace.time; entry } ->
      if time > !t_end then t_end := time;
      let open Trace in
      match entry with
      | Begin sp -> push (span_event "B" time sp)
      | End sp -> push (span_event "E" time sp)
      | Crash p -> push (instant time ~name:"crash" ~tid:(instant_tid (Some p)))
      | Decide { pid; value; round } ->
          push
            (instant time
               ~name:(Printf.sprintf "decide v=%d r=%d" value round)
               ~tid:(instant_tid (Some pid)))
      | Fd_change { pid; kind; value } ->
          push
            (instant time
               ~name:(Printf.sprintf "%s:%s" kind value)
               ~tid:(instant_tid (Some pid)))
      | Send { src; tag; _ } ->
          push
            (instant time
               ~name:(Printf.sprintf "send %s" tag)
               ~tid:(instant_tid (Some src)))
      | Deliver { dst; tag; _ } ->
          push
            (instant time ~name:(Printf.sprintf "recv %s" tag)
               ~tid:(instant_tid (Some dst)))
      | Note { pid; text } ->
          push (instant time ~name:text ~tid:(instant_tid pid)))
    tr;
  let counter_events =
    List.map
      (fun (name, v) ->
        Json.Obj
          [
            ("name", Json.String name);
            ("ph", Json.String "C");
            ts !t_end;
            ("pid", Json.Int 0);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("value", Json.Int v) ]);
          ])
      (Trace.counters tr)
  in
  Json.Obj
    (Stamp.fields ()
    @ [
        ("traceEvents", Json.List (List.rev !events @ counter_events));
        ("displayTimeUnit", Json.String "ms");
      ])

let to_chrome tr = Json.to_string ~minify:true (chrome_json tr)

let write_out path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let write_jsonl path tr = write_out path (to_jsonl tr)

let write_chrome path tr =
  write_out path (to_chrome tr ^ "\n")
