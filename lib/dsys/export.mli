(** Trace exporters: JSONL event dumps and Chrome [trace_event] JSON.

    Both formats are byte-stable functions of the trace alone — all
    timestamps are sim-time (Chrome [ts] is sim-time scaled by 1000 so a
    sim-time unit reads as 1 ms in the viewer), and counters/entries are
    emitted in deterministic order.  Two runs of the same (protocol,
    seed, level) therefore produce byte-identical exports, which the
    test suite checks.

    Chrome traces load in [chrome://tracing] or [https://ui.perfetto.dev]:
    spans become duration events ([ph:"B"/"E"]) on one [tid] per trace
    track, point entries become instant events ([ph:"i"]), and trace
    counters become a final [ph:"C"] sample. *)

val jsonl_lines : Trace.t -> string list
(** One minified JSON object per line: first a [{"type":"meta",...}]
    header (carrying the [Util.Stamp] schema-version and
    code-fingerprint fields, like every artifact), then every entry in
    log order, then the counters (sorted by name), then a
    [{"type":"end","entries":N,"counters":M}] footer.  The totals live
    in the footer — not the header — so the identical format can be
    emitted live, before the run knows how long it will be (format
    version 2). *)

val to_jsonl : Trace.t -> string
(** [jsonl_lines] joined with ["\n"], trailing newline included. *)

(** Incremental JSONL export over a {!Trace.cursor}: [flush] returns the
    bytes for everything recorded since the previous call (the meta
    header rides with the first non-empty frame), [close] appends the
    counters and the ["end"] footer.  The concatenation of every frame
    is byte-identical to {!to_jsonl} of the final trace — both sides are
    built from the same line constructors, and the property is pinned by
    a qcheck test ([test/test_obs.ml]) over random record/flush
    interleavings.  Reading the trace cannot perturb the run. *)
module Stream : sig
  type t

  val create : Trace.t -> t
  (** Attach to a (possibly still-running) trace; nothing is emitted
      until the first {!flush} or {!close}. *)

  val flush : t -> string
  (** Bytes for all entries recorded since the last flush; [""] when
      nothing happened and the header is already out (or nothing was
      ever recorded).
      @raise Invalid_argument after {!close}. *)

  val close : t -> string
  (** Remaining entries plus the counter lines and the ["end"] footer.
      The stream is unusable afterwards.
      @raise Invalid_argument on a second close. *)
end

val chrome_json : Trace.t -> Setagree_util.Json.t
(** The [{"traceEvents": [...]}] object, stamped with the schema
    version and code fingerprint ([fdkit trace --check] warns when a
    file's fingerprint differs from the running build's). *)

val to_chrome : Trace.t -> string
(** [chrome_json] rendered minified (byte-stable). *)

val write_jsonl : string -> Trace.t -> unit
val write_chrome : string -> Trace.t -> unit
(** Write to the given path, truncating. *)
