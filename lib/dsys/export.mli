(** Trace exporters: JSONL event dumps and Chrome [trace_event] JSON.

    Both formats are byte-stable functions of the trace alone — all
    timestamps are sim-time (Chrome [ts] is sim-time scaled by 1000 so a
    sim-time unit reads as 1 ms in the viewer), and counters/entries are
    emitted in deterministic order.  Two runs of the same (protocol,
    seed, level) therefore produce byte-identical exports, which the
    test suite checks.

    Chrome traces load in [chrome://tracing] or [https://ui.perfetto.dev]:
    spans become duration events ([ph:"B"/"E"]) on one [tid] per trace
    track, point entries become instant events ([ph:"i"]), and trace
    counters become a final [ph:"C"] sample. *)

val jsonl_lines : Trace.t -> string list
(** One minified JSON object per line: first a [{"type":"meta",...}]
    header (carrying the [Util.Stamp] schema-version and
    code-fingerprint fields, like every artifact), then every entry in
    log order, then the counters (sorted by name). *)

val to_jsonl : Trace.t -> string
(** [jsonl_lines] joined with ["\n"], trailing newline included. *)

val chrome_json : Trace.t -> Setagree_util.Json.t
(** The [{"traceEvents": [...]}] object, stamped with the schema
    version and code fingerprint ([fdkit trace --check] warns when a
    file's fingerprint differs from the running build's). *)

val to_chrome : Trace.t -> string
(** [chrome_json] rendered minified (byte-stable). *)

val write_jsonl : string -> Trace.t -> unit
val write_chrome : string -> Trace.t -> unit
(** Write to the given path, truncating. *)
