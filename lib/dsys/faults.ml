(* Declarative fault specification: the unified fault-injection layer.

   A [t] value describes everything the environment is allowed to do to a
   run beyond the asynchrony already modelled by [Delay]: windowed link
   faults (drop, duplicate, reorder, delay inflation), named partitions
   with scheduled heal times, process stalls (freeze without crashing),
   a crash schedule ([Crash.spec] embedded), and a named failure-detector
   adversary strategy interpreted by [Fd.Behavior].

   Specs are pure data: JSON round-trippable (chaos counterexamples are
   replayed from files), decomposable into [element]s for delta-debugging
   minimization, and evaluated deterministically — all draws come from an
   [Rng.t] the caller dedicates to fault decisions, so enabling a spec
   never perturbs the delay/crash streams of the underlying run.

   Semantics note (matches DESIGN §8): a "dropped" message is parked
   until the end of its fault window rather than destroyed.  The paper's
   model (§2.1) assumes reliable channels, so true loss would change the
   computational model; parking preserves "every message is eventually
   delivered" while making the link useless for the duration of the
   fault — observationally a drop for any protocol whose decisions fall
   inside the window.  True, unbounded loss remains available through
   [Lossy], which pairs it with a retransmitting transport. *)

open Setagree_util

type link = {
  l_src : Pid.t list;  (* sources affected; [] means every source *)
  l_dst : Pid.t list;  (* destinations affected; [] means every destination *)
  l_from : float;
  l_until : float;
  l_drop : float;     (* P(park this copy until the window closes) *)
  l_dup : float;      (* P(inject one extra copy) *)
  l_reorder : float;  (* P(add extra delay drawn from [0, l_spread)) *)
  l_spread : float;
  l_inflate : float;  (* multiplier on the sampled link delay *)
}

type partition = {
  p_name : string;
  p_groups : Pid.t list list;  (* disjoint blocks; unlisted pids form one extra block *)
  p_from : float;
  p_heal : float;
}

type stall = { s_pid : Pid.t; s_from : float; s_until : float }

type t = {
  links : link list;
  partitions : partition list;
  stalls : stall list;
  crashes : Crash.spec;
  adversary : string;  (* "" = derive from params; see [adversaries] *)
}

let none =
  {
    links = [];
    partitions = [];
    stalls = [];
    crashes = Crash.No_crashes;
    adversary = "";
  }

let is_none t =
  (match t.links with [] -> true | _ :: _ -> false)
  && (match t.partitions with [] -> true | _ :: _ -> false)
  && (match t.stalls with [] -> true | _ :: _ -> false)
  && (match t.crashes with Crash.No_crashes -> true | _ -> false)
  && String.equal t.adversary ""

let link ?(src = []) ?(dst = []) ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(spread = 2.0) ?(inflate = 1.0) ~from ~until () =
  {
    l_src = src;
    l_dst = dst;
    l_from = from;
    l_until = until;
    l_drop = drop;
    l_dup = dup;
    l_reorder = reorder;
    l_spread = spread;
    l_inflate = inflate;
  }

let partition ?(name = "partition") ~groups ~from ~heal () =
  { p_name = name; p_groups = groups; p_from = from; p_heal = heal }

let stall ~pid ~from ~until = { s_pid = pid; s_from = from; s_until = until }

let adversaries = [ "calm"; "stormy"; "rotating"; "slander"; "late"; "never" ]

(* ---- windows ---- *)

let active ~from ~until now = from <= now && now < until

let heal_time t =
  let m = ref 0.0 in
  let bump x = if x > !m then m := x in
  List.iter (fun l -> bump l.l_until) t.links;
  List.iter (fun p -> bump p.p_heal) t.partitions;
  List.iter (fun s -> bump s.s_until) t.stalls;
  !m

(* ---- send-path evaluation ---- *)

type plan = {
  park : float option;  (* absolute time before which delivery may not happen *)
  copies : int;         (* total copies to deliver (>= 1) *)
  inflate : float;      (* multiplier on each sampled delay *)
  extra : float;        (* additive extra delay (reordering) *)
}

let pass = { park = None; copies = 1; inflate = 1.0; extra = 0.0 }

let link_matches l ~src ~dst =
  (l.l_src = [] || List.mem src l.l_src)
  && (l.l_dst = [] || List.mem dst l.l_dst)

(* Block index of [pid] under a partition: index of the first group listing
   it, or -1 — so all unlisted processes stay mutually connected. *)
let block_of groups pid =
  let rec go i = function
    | [] -> -1
    | g :: rest -> if List.mem pid g then i else go (i + 1) rest
  in
  go 0 groups

let separates p ~src ~dst =
  block_of p.p_groups src <> block_of p.p_groups dst

let send_plan t rng ~src ~dst ~now =
  if is_none t then pass
  else begin
    let park = ref None in
    let bump_park tm =
      match !park with
      | Some cur when cur >= tm -> ()
      | _ -> park := Some tm
    in
    List.iter
      (fun p ->
        if active ~from:p.p_from ~until:p.p_heal now && separates p ~src ~dst
        then bump_park p.p_heal)
      t.partitions;
    let copies = ref 1 and inflate = ref 1.0 and extra = ref 0.0 in
    List.iter
      (fun l ->
        if active ~from:l.l_from ~until:l.l_until now && link_matches l ~src ~dst
        then begin
          if l.l_drop > 0.0 && Rng.bernoulli rng l.l_drop then
            bump_park l.l_until;
          if l.l_dup > 0.0 && Rng.bernoulli rng l.l_dup then incr copies;
          if l.l_reorder > 0.0 && Rng.bernoulli rng l.l_reorder then
            extra := !extra +. Rng.uniform_in rng 0.0 l.l_spread;
          if l.l_inflate <> 1.0 then inflate := !inflate *. l.l_inflate
        end)
      t.links;
    { park = !park; copies = !copies; inflate = !inflate; extra = !extra }
  end

(* ---- legality ---- *)

let legal ~n ~t:resilience spec =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let check_pid what p =
    if p < 0 || p >= n then err "%s: pid %d outside 0..%d" what p (n - 1)
  in
  let check_window what from until =
    if not (Float.is_finite from && Float.is_finite until) then
      err "%s: window bounds must be finite" what
    else if from < 0.0 then err "%s: window starts before 0" what
    else if until <= from then err "%s: empty window [%g, %g)" what from until
  in
  let check_prob what p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      err "%s: probability %g outside [0, 1]" what p
  in
  List.iteri
    (fun i l ->
      let what = Printf.sprintf "links[%d]" i in
      check_window what l.l_from l.l_until;
      check_prob (what ^ ".drop") l.l_drop;
      check_prob (what ^ ".dup") l.l_dup;
      check_prob (what ^ ".reorder") l.l_reorder;
      if l.l_spread < 0.0 then err "%s: negative spread" what;
      if not (l.l_inflate > 0.0) then err "%s: inflate must be > 0" what;
      List.iter (check_pid (what ^ ".src")) l.l_src;
      List.iter (check_pid (what ^ ".dst")) l.l_dst)
    spec.links;
  List.iteri
    (fun i p ->
      let what = Printf.sprintf "partitions[%d] (%s)" i p.p_name in
      check_window what p.p_from p.p_heal;
      List.iter (fun g -> List.iter (check_pid what) g) p.p_groups;
      let all = List.concat p.p_groups in
      let sorted = List.sort_uniq compare all in
      if List.length sorted < List.length all then
        err "%s: groups overlap" what)
    spec.partitions;
  List.iteri
    (fun i s ->
      let what = Printf.sprintf "stalls[%d]" i in
      check_window what s.s_from s.s_until;
      check_pid what s.s_pid)
    spec.stalls;
  (match spec.crashes with
  | Crash.Explicit l when List.length l > resilience ->
      err "crashes: %d explicit crashes exceed the resilience bound t=%d"
        (List.length l) resilience
  | Crash.Initial pids when List.length pids > resilience ->
      err "crashes: %d initial crashes exceed the resilience bound t=%d"
        (List.length pids) resilience
  | _ -> ());
  (if spec.adversary <> "" && not (List.mem spec.adversary adversaries) then
     err "adversary: unknown strategy %S (known: %s)" spec.adversary
       (String.concat ", " adversaries));
  (if spec.adversary = "never" then
     err
       "adversary: \"never\" has no stabilization time — no eventual \
        failure-detector class admits it");
  match !errs with [] -> Ok () | l -> Error (List.rev l)

(* ---- element decomposition (for delta-debugging minimization) ---- *)

type element =
  | E_link of link
  | E_partition of partition
  | E_stall of stall
  | E_crash of Pid.t * float
  | E_crash_spec of Crash.spec
  | E_adversary of string

let elements t =
  List.map (fun l -> E_link l) t.links
  @ List.map (fun p -> E_partition p) t.partitions
  @ List.map (fun s -> E_stall s) t.stalls
  @ (match t.crashes with
    | Crash.No_crashes -> []
    | Crash.Explicit l -> List.map (fun (p, tm) -> E_crash (p, tm)) l
    | s -> [ E_crash_spec s ])
  @ (if t.adversary = "" then [] else [ E_adversary t.adversary ])

let of_elements els =
  let crashes = ref [] and spec = ref None and adv = ref "" in
  let t =
    List.fold_left
      (fun acc e ->
        match e with
        | E_link l -> { acc with links = acc.links @ [ l ] }
        | E_partition p -> { acc with partitions = acc.partitions @ [ p ] }
        | E_stall s -> { acc with stalls = acc.stalls @ [ s ] }
        | E_crash (p, tm) ->
            crashes := !crashes @ [ (p, tm) ];
            acc
        | E_crash_spec s ->
            spec := Some s;
            acc
        | E_adversary a ->
            adv := a;
            acc)
      none els
  in
  let crashes =
    match (!spec, !crashes) with
    | Some s, _ -> s
    | None, [] -> Crash.No_crashes
    | None, l -> Crash.Explicit l
  in
  { t with crashes; adversary = !adv }

(* ---- JSON ---- *)

let pids_json l = Json.List (List.map (fun p -> Json.Int p) l)

let link_json l =
  Json.Obj
    [
      ("src", pids_json l.l_src);
      ("dst", pids_json l.l_dst);
      ("from", Json.Float l.l_from);
      ("until", Json.Float l.l_until);
      ("drop", Json.Float l.l_drop);
      ("dup", Json.Float l.l_dup);
      ("reorder", Json.Float l.l_reorder);
      ("spread", Json.Float l.l_spread);
      ("inflate", Json.Float l.l_inflate);
    ]

let partition_json p =
  Json.Obj
    [
      ("name", Json.String p.p_name);
      ("groups", Json.List (List.map pids_json p.p_groups));
      ("from", Json.Float p.p_from);
      ("heal", Json.Float p.p_heal);
    ]

let stall_json s =
  Json.Obj
    [
      ("pid", Json.Int s.s_pid);
      ("from", Json.Float s.s_from);
      ("until", Json.Float s.s_until);
    ]

let to_json t =
  Json.Obj
    [
      ("links", Json.List (List.map link_json t.links));
      ("partitions", Json.List (List.map partition_json t.partitions));
      ("stalls", Json.List (List.map stall_json t.stalls));
      ("crashes", Crash.spec_to_json t.crashes);
      ("adversary", Json.String t.adversary);
    ]

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Faults.of_json: missing field %S" name)

let opt_field name ~default f j =
  match Json.member name j with Some v -> f v | None -> Ok default

let as_float name j =
  match Json.to_float_opt j with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "Faults.of_json: %S must be a number" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "Faults.of_json: %S must be an int" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let as_list name f = function
  | Json.List items -> map_result f items
  | _ -> Error (Printf.sprintf "Faults.of_json: %S must be a list" name)

let as_pids name j = as_list name (as_int name) j

let link_of_json j =
  let* l_src = opt_field "src" ~default:[] (as_pids "src") j in
  let* l_dst = opt_field "dst" ~default:[] (as_pids "dst") j in
  let* f = field "from" j in
  let* l_from = as_float "from" f in
  let* u = field "until" j in
  let* l_until = as_float "until" u in
  let* l_drop = opt_field "drop" ~default:0.0 (as_float "drop") j in
  let* l_dup = opt_field "dup" ~default:0.0 (as_float "dup") j in
  let* l_reorder = opt_field "reorder" ~default:0.0 (as_float "reorder") j in
  let* l_spread = opt_field "spread" ~default:2.0 (as_float "spread") j in
  let* l_inflate = opt_field "inflate" ~default:1.0 (as_float "inflate") j in
  Ok { l_src; l_dst; l_from; l_until; l_drop; l_dup; l_reorder; l_spread; l_inflate }

let partition_of_json j =
  let* n =
    opt_field "name" ~default:"partition"
      (function
        | Json.String s -> Ok s
        | _ -> Error "Faults.of_json: \"name\" must be a string")
      j
  in
  let* g = field "groups" j in
  let* p_groups = as_list "groups" (as_pids "groups") g in
  let* f = field "from" j in
  let* p_from = as_float "from" f in
  let* h = field "heal" j in
  let* p_heal = as_float "heal" h in
  Ok { p_name = n; p_groups; p_from; p_heal }

let stall_of_json j =
  let* p = field "pid" j in
  let* s_pid = as_int "pid" p in
  let* f = field "from" j in
  let* s_from = as_float "from" f in
  let* u = field "until" j in
  let* s_until = as_float "until" u in
  Ok { s_pid; s_from; s_until }

let of_json j =
  match j with
  | Json.Obj _ ->
      let* links = opt_field "links" ~default:[] (as_list "links" link_of_json) j in
      let* partitions =
        opt_field "partitions" ~default:[]
          (as_list "partitions" partition_of_json)
          j
      in
      let* stalls =
        opt_field "stalls" ~default:[] (as_list "stalls" stall_of_json) j
      in
      let* crashes =
        opt_field "crashes" ~default:Crash.No_crashes Crash.spec_of_json j
      in
      let* adversary =
        opt_field "adversary" ~default:""
          (function
            | Json.String s -> Ok s
            | _ -> Error "Faults.of_json: \"adversary\" must be a string")
          j
      in
      Ok { links; partitions; stalls; crashes; adversary }
  | _ -> Error "Faults.of_json: expected an object"

let equal (a : t) (b : t) = a = b

let summary t =
  if is_none t then "no-faults"
  else
    let parts = ref [] in
    let add s = parts := s :: !parts in
    if t.adversary <> "" then add (Printf.sprintf "adversary=%s" t.adversary);
    (match t.crashes with
    | Crash.No_crashes -> ()
    | Crash.Explicit l -> add (Printf.sprintf "crashes=%d" (List.length l))
    | Crash.Initial l -> add (Printf.sprintf "crashes=initial:%d" (List.length l))
    | Crash.Random_up_to { max_crashes; _ } ->
        add (Printf.sprintf "crashes<=%d" max_crashes)
    | Crash.Exactly { crashes; _ } -> add (Printf.sprintf "crashes=%d" crashes));
    if t.stalls <> [] then add (Printf.sprintf "stalls=%d" (List.length t.stalls));
    if t.partitions <> [] then
      add (Printf.sprintf "partitions=%d" (List.length t.partitions));
    if t.links <> [] then add (Printf.sprintf "links=%d" (List.length t.links));
    String.concat " " !parts

let pp fmt t = Format.pp_print_string fmt (summary t)
