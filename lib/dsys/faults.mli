(** Declarative fault specification — the unified fault-injection layer.

    A spec describes everything the environment may do to a run beyond
    plain asynchrony: windowed link faults (drop / duplicate / reorder /
    delay inflation), named partitions with scheduled heal times, process
    stalls (a process freezes without crashing — its fibers later resume,
    so heartbeat monitors falsely suspect it), an embedded crash schedule,
    and a named failure-detector adversary strategy (interpreted by
    [Fd.Behavior]; this module only validates the name).

    Specs are pure data: JSON round-trippable, decomposable into
    {!element}s for delta-debugging minimization, and evaluated with a
    caller-supplied [Rng.t] so enabling faults never perturbs the delay
    or crash streams of the underlying run.

    Drop semantics: a "dropped" message is parked until its fault window
    closes, not destroyed — the paper's model assumes reliable channels,
    and parking preserves "every message is eventually delivered" while
    making the link useless for the duration (see DESIGN §8). *)

open Setagree_util

type link = {
  l_src : Pid.t list;  (** sources affected; [[]] means every source *)
  l_dst : Pid.t list;  (** destinations affected; [[]] means every destination *)
  l_from : float;
  l_until : float;
  l_drop : float;      (** P(park this copy until the window closes) *)
  l_dup : float;       (** P(inject one extra copy) *)
  l_reorder : float;   (** P(add extra delay drawn from [0, l_spread)) *)
  l_spread : float;
  l_inflate : float;   (** multiplier on the sampled link delay *)
}

type partition = {
  p_name : string;
  p_groups : Pid.t list list;
      (** disjoint blocks; unlisted pids form one extra block *)
  p_from : float;
  p_heal : float;
}

type stall = { s_pid : Pid.t; s_from : float; s_until : float }

type t = {
  links : link list;
  partitions : partition list;
  stalls : stall list;
  crashes : Crash.spec;
  adversary : string;  (** [""] = derive from params; see {!adversaries} *)
}

val none : t
val is_none : t -> bool

val link :
  ?src:Pid.t list ->
  ?dst:Pid.t list ->
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?spread:float ->
  ?inflate:float ->
  from:float ->
  until:float ->
  unit ->
  link

val partition :
  ?name:string ->
  groups:Pid.t list list ->
  from:float ->
  heal:float ->
  unit ->
  partition

val stall : pid:Pid.t -> from:float -> until:float -> stall

val adversaries : string list
(** Known adversary strategy names: calm, stormy, rotating, slander,
    late, never.  ("never" is deliberately illegal — see {!legal}.) *)

val heal_time : t -> float
(** Supremum of all fault-window ends (links, partitions, stalls); [0.]
    when no windowed faults are present.  After this time the network
    and the processes behave nominally again — crash faults and the
    adversary's stabilization time are accounted separately. *)

(** {1 Send-path evaluation} *)

type plan = {
  park : float option;
      (** absolute time before which delivery may not happen *)
  copies : int;    (** total copies to deliver (>= 1) *)
  inflate : float; (** multiplier on each sampled delay *)
  extra : float;   (** additive extra delay (reordering) *)
}

val pass : plan
(** The no-fault plan: one copy, no parking, unit inflation. *)

val send_plan : t -> Rng.t -> src:Pid.t -> dst:Pid.t -> now:float -> plan
(** Evaluate the spec for one message.  Consumes draws from [rng] only
    when the spec is not {!none} and a probabilistic link fault is
    active, so fault-free runs are byte-identical with or without the
    layer compiled in. *)

val legal : n:int -> t:int -> t -> (unit, string list) result
(** Structural legality for an [n]-process, [t]-resilient system:
    windows are finite and non-empty, probabilities in range, pids in
    range, partition groups disjoint, explicit crash schedules within
    the resilience bound, and the adversary stabilizes (["never"] is
    rejected — no eventual failure-detector class admits it). *)

(** {1 Minimization support} *)

type element =
  | E_link of link
  | E_partition of partition
  | E_stall of stall
  | E_crash of Pid.t * float
  | E_crash_spec of Crash.spec
  | E_adversary of string

val elements : t -> element list
(** Decompose into independent atoms (one per link fault, partition,
    stall, explicit crash, plus the adversary) so [Explore.ddmin] can
    minimize a failing spec by dropping atoms. *)

val of_elements : element list -> t
(** Rebuild a spec from a subset of its atoms. *)

(** {1 JSON} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val equal : t -> t -> bool

val summary : t -> string
(** Short human-readable digest, e.g.
    ["adversary=rotating crashes=1 partitions=1"]. *)

val pp : Format.formatter -> t -> unit
