open Setagree_util

type choice = Deliver of int | Crash of Pid.t

type t = {
  protocol : string;
  params : (string * Json.t) list;
  crashes : Crash.spec;
  choices : choice list;
  violation : string list;
}

let choice_to_json = function
  | Deliver i -> Json.Obj [ ("d", Json.Int i) ]
  | Crash p -> Json.Obj [ ("c", Json.Int p) ]

let choice_of_json j =
  match (Json.member "d" j, Json.member "c" j) with
  | Some (Json.Int i), None -> Ok (Deliver i)
  | None, Some (Json.Int p) -> Ok (Crash p)
  | _ -> Error "Schedule.choice_of_json: expected {\"d\": i} or {\"c\": pid}"

let to_json s =
  Json.Obj
    [
      ("protocol", Json.String s.protocol);
      ("params", Json.Obj s.params);
      ("crashes", Crash.spec_to_json s.crashes);
      ("choices", Json.List (List.map choice_to_json s.choices));
      ("violation", Json.List (List.map (fun n -> Json.String n) s.violation));
    ]

let ( let* ) r f = Result.bind r f

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_json j =
  let* protocol =
    match Json.member "protocol" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "Schedule.of_json: missing \"protocol\""
  in
  let* params =
    match Json.member "params" j with
    | Some (Json.Obj fields) -> Ok fields
    | None -> Ok []
    | Some _ -> Error "Schedule.of_json: \"params\" must be an object"
  in
  let* crashes =
    match Json.member "crashes" j with
    | Some cj -> Crash.spec_of_json cj
    | None -> Ok Crash.No_crashes
  in
  let* choices =
    match Json.member "choices" j with
    | Some (Json.List l) -> map_result choice_of_json l
    | None -> Ok []
    | Some _ -> Error "Schedule.of_json: \"choices\" must be a list"
  in
  let violation =
    match Json.member "violation" j with
    | Some (Json.List l) ->
        List.filter_map (function Json.String s -> Some s | _ -> None) l
    | _ -> []
  in
  Ok { protocol; params; crashes; choices; violation }

let save path s = Json.write_file path (to_json s)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | Error msg -> Error msg
      | Ok j -> of_json j)

let pp_choice fmt = function
  | Deliver i -> Format.fprintf fmt "d%d" i
  | Crash p -> Format.fprintf fmt "c%s" (Pid.to_string p)

let pp_choices fmt l =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (List.map (Format.asprintf "%a" pp_choice) l))
