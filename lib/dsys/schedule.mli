(** Serializable execution schedules.

    Under a {!Sim} chooser, an execution is fully determined by the run's
    parameters and seed plus the sequence of choices made at event
    boundaries.  A schedule captures that sequence — one {!choice} per
    choice point (a boundary with at least one pending delivery), in
    order — together with the protocol name, its parameters and the base
    crash spec, so a violation found by {!Explore} replays exactly via
    [fdkit replay --schedule file.json].

    Choice lists are {e total}: a [Deliver] index is clamped into the
    pending range at replay time and a schedule shorter than the execution
    falls back to the default (FIFO) policy, so {e any} prefix or mutation
    of a valid schedule is itself a valid schedule.  This is what makes
    delta-debugging minimization safe. *)

open Setagree_util

type choice =
  | Deliver of int
      (** Deliver the i-th pending message (canonical offer order, clamped). *)
  | Crash of Pid.t  (** Crash the process at this boundary. *)

type t = {
  protocol : string;  (** registry name, e.g. ["kset"] *)
  params : (string * Json.t) list;  (** the full parameter record *)
  crashes : Crash.spec;  (** base (pre-installed) crash pattern *)
  choices : choice list;
  violation : string list;  (** what the recorded run exhibited; [[]] = none *)
}

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result

val choice_to_json : choice -> Json.t
val choice_of_json : Json.t -> (choice, string) result

val pp_choice : Format.formatter -> choice -> unit
val pp_choices : Format.formatter -> choice list -> unit
