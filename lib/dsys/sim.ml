open Setagree_util

type event = { time : float; seq : int; run : unit -> unit }

type waiter = {
  wpid : Pid.t;
  pred : unit -> bool;
  k : (unit, unit) Effect.Deep.continuation;
}

type t = {
  n : int;
  t_bound : int;
  rng : Rng.t;
  trace : Trace.t;
  horizon : float;
  max_events : int;
  events : event Pqueue.t;
  mutable now : float;
  mutable seq : int;
  crashed : bool array;
  crash_at : float option array;
  mutable waiters : waiter list;
}

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t
  | Wait_until : (unit -> bool) -> unit Effect.t

(* The fiber currently executing performs effects against this dynamically
   scoped context; [spawn] installs it. *)

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(horizon = 1e6) ?(max_events = 10_000_000) ~n ~t ~seed () =
  if n < 2 then invalid_arg "Sim.create: n must be >= 2";
  if t < 0 || t >= n then invalid_arg "Sim.create: need 0 <= t < n";
  {
    n;
    t_bound = t;
    rng = Rng.create seed;
    trace = Trace.create ();
    horizon;
    max_events;
    events = Pqueue.create ~cmp:cmp_event;
    now = 0.0;
    seq = 0;
    crashed = Array.make n false;
    crash_at = Array.make n None;
    waiters = [];
  }

let n t = t.n
let t_bound t = t.t_bound
let rng t = t.rng
let trace t = t.trace
let now t = t.now
let horizon t = t.horizon

let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.push t.events { time = t.now +. delay; seq; run }

let at t ~time run =
  if time < t.now then invalid_arg "Sim.at: time in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.push t.events { time; seq; run }

let is_crashed t pid = t.crashed.(pid)

let crashed_set t =
  let s = ref Pidset.empty in
  Array.iteri (fun i c -> if c then s := Pidset.add i !s) t.crashed;
  !s

let crash_time t pid = t.crash_at.(pid)

let correct_set t =
  let s = ref Pidset.empty in
  for i = 0 to t.n - 1 do
    if t.crash_at.(i) = None then s := Pidset.add i !s
  done;
  !s

let alive_at t time =
  let s = ref Pidset.empty in
  for i = 0 to t.n - 1 do
    match t.crash_at.(i) with
    | Some ct when ct <= time -> ()
    | _ -> s := Pidset.add i !s
  done;
  !s

let do_crash t pid =
  if not t.crashed.(pid) then begin
    t.crashed.(pid) <- true;
    Trace.record t.trace ~time:t.now (Trace.Crash pid);
    (* Abandoned forever: drop this process's blocked fibers. *)
    t.waiters <- List.filter (fun w -> w.wpid <> pid) t.waiters
  end

let crash_now t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.crash_now: bad pid";
  if not t.crashed.(pid) then begin
    let already =
      Array.fold_left (fun acc ct -> if ct <> None then acc + 1 else acc) 0 t.crash_at
    in
    let needed = if t.crash_at.(pid) = None then already + 1 else already in
    if needed > t.t_bound then
      invalid_arg "Sim.crash_now: resilience bound t exhausted";
    t.crash_at.(pid) <- Some t.now;
    do_crash t pid
  end

let install_crashes t crashes =
  if List.length crashes > t.t_bound then
    invalid_arg "Sim.install_crashes: more crashes than the bound t";
  List.iter
    (fun (pid, time) ->
      if pid < 0 || pid >= t.n then invalid_arg "Sim.install_crashes: bad pid";
      t.crash_at.(pid) <- Some time;
      at t ~time:(Float.max time t.now) (fun () -> do_crash t pid))
    crashes

let sleep d = Effect.perform (Sleep d)
let yield () = Effect.perform Yield
let wait_until pred = Effect.perform (Wait_until pred)

let spawn t ~pid body =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.spawn: bad pid";
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  schedule t ~delay:d (fun () ->
                      if not t.crashed.(pid) then Effect.Deep.continue k ()))
          | Yield ->
              Some
                (fun k ->
                  schedule t ~delay:0.0 (fun () ->
                      if not t.crashed.(pid) then Effect.Deep.continue k ()))
          | Wait_until pred ->
              Some
                (fun k ->
                  if pred () then Effect.Deep.continue k ()
                  else t.waiters <- { wpid = pid; pred; k } :: t.waiters)
          | _ -> None);
    }
  in
  schedule t ~delay:0.0 (fun () ->
      if not t.crashed.(pid) then Effect.Deep.match_with body () handler)

let ticker t ~every =
  if every <= 0.0 then invalid_arg "Sim.ticker";
  let rec arm time =
    if time <= t.horizon then at t ~time (fun () -> arm (time +. every))
  in
  arm (t.now +. every)

type stop_reason = Quiescent | Horizon | Budget | Stopped
type outcome = { reason : stop_reason; events : int; end_time : float }

let pp_stop_reason fmt = function
  | Quiescent -> Format.pp_print_string fmt "quiescent"
  | Horizon -> Format.pp_print_string fmt "horizon"
  | Budget -> Format.pp_print_string fmt "budget"
  | Stopped -> Format.pp_print_string fmt "stopped"

(* After each event, wake every blocked fiber whose predicate turned true.
   Waking a fiber can enable others (zero-time causality chains), so iterate
   to a fixpoint; the bound catches accidental zero-time livelocks. *)
let recheck_waiters t =
  let rounds = ref 0 in
  let progress = ref true in
  while !progress do
    incr rounds;
    if !rounds > 100_000 then failwith "Sim: zero-time livelock among waiters";
    progress := false;
    let ws = t.waiters in
    let still = ref [] in
    let fired = ref [] in
    List.iter
      (fun w ->
        if t.crashed.(w.wpid) then () (* drop *)
        else if w.pred () then fired := w :: !fired
        else still := w :: !still)
      ws;
    (* Keep the not-yet-ready waiters; fired ones resume now and may add new
       waiters to [t.waiters]. *)
    t.waiters <- !still;
    match !fired with
    | [] -> ()
    | fs ->
        progress := true;
        (* Resume in registration order (oldest first) for determinism. *)
        List.iter
          (fun w -> if not t.crashed.(w.wpid) then Effect.Deep.continue w.k ())
          (List.rev fs)
  done

let run ?(stop_when = fun () -> false) (t : t) =
  let events = ref 0 in
  let reason = ref Quiescent in
  (try
     let continue_loop = ref true in
     while !continue_loop do
       match Pqueue.pop t.events with
       | None ->
           reason := Quiescent;
           continue_loop := false
       | Some ev ->
           if ev.time > t.horizon then begin
             reason := Horizon;
             t.now <- t.horizon;
             continue_loop := false
           end
           else begin
             t.now <- Float.max t.now ev.time;
             ev.run ();
             incr events;
             recheck_waiters t;
             if stop_when () then begin
               reason := Stopped;
               continue_loop := false
             end
             else if !events >= t.max_events then begin
               reason := Budget;
               continue_loop := false
             end
           end
     done
   with e -> raise e);
  { reason = !reason; events = !events; end_time = t.now }
