open Setagree_util

type event = { time : float; seq : int; run : unit -> unit }

(* A condition is a wakeup channel: substrates signal it when state a
   blocked predicate reads may have changed.  The scheduler re-evaluates a
   blocked fiber's predicate only when one of its subscribed conditions was
   signalled — except "poll" waiters (awaits subscribed to [Cond.poll],
   e.g. oracle-reading waits), which are re-evaluated after every event,
   reproducing the legacy fixpoint cadence for predicates with no signal
   discipline. *)
type cond = { c_owner : t; mutable c_pending : bool }

and waiter = {
  wpid : Pid.t;
  pred : unit -> bool;
  conds : cond list;
  poll : bool;
  k : (unit, unit) Effect.Deep.continuation;
}

and t = {
  n : int;
  t_bound : int;
  rng : Rng.t;
  trace : Trace.t;
  horizon : float;
  max_events : int;
  legacy_poll : bool;
  (* Real-runtime mode: the simulator models one process of a distributed
     deployment.  [spawn] silently discards fibers of other pids (they run
     in their own domains, each with its own local simulator), [router]
     carries remote-bound sends off-simulator, and [inlets] dispatch
     incoming serialized messages to the substrate (keyed by net tag) that
     knows how to decode and deliver them. *)
  local : Pid.t option;
  mutable router :
    (tag:string -> src:Pid.t -> dst:Pid.t -> Bytes.t -> unit) option;
  inlets : (string, src:Pid.t -> bytes:Bytes.t -> unit) Hashtbl.t;
  events : event Pqueue.t;
  mutable now : float;
  mutable seq : int;
  crashed : bool array;
  crash_at : float option array;
  (* Stall windows: [stalled_until.(p) > now] means process [p] is frozen —
     its fibers are not resumed (sleep expiries, yields and wakeups are
     deferred to the stall end) but it is *not* crashed: oracles still
     treat it as correct, and it catches up once the window closes. *)
  stalled_until : float array;
  (* The active fault specification (pure data; evaluated by Net on its
     own rng stream).  [Faults.none] unless [set_faults] was called. *)
  mutable faults : Faults.t;
  (* Registration order (oldest first): resumption order is canonical and
     identical under the legacy-poll and condition-driven schedulers. *)
  mutable waiters : waiter list;
  mutable pending_conds : cond list;
  mutable poll_waiters : int;
  mutable poll_cond : cond option;
  (* Choice-point control (schedule exploration).  When a chooser is
     installed, substrates route deliveries through [offer] instead of
     sampling delays; the run loop consults the chooser at every event
     boundary (no event left at the current instant). *)
  mutable chooser : (t -> pending array -> decision) option;
  mutable pool : pending list; (* newest-first; canonical order is by pd_id *)
  mutable next_pd : int;
  (* Scheduler observability (flushed into [trace] at the end of [run]). *)
  mutable n_pred_evals : int;
  mutable n_signals : int;
  mutable n_wakeups : int;
  mutable fl_pred_evals : int;
  mutable fl_signals : int;
  mutable fl_wakeups : int;
  mutable fl_events : int;
}

and pending = {
  pd_id : int;
  pd_src : Pid.t;
  pd_dst : Pid.t;
  pd_fire : unit -> unit;
}

and decision = Deliver of int | Inject_crash of Pid.t | Pass

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t
  | Await : cond list * (unit -> bool) -> unit Effect.t

(* The fiber currently executing performs effects against this dynamically
   scoped context; [spawn] installs it. *)

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(horizon = 1e6) ?(max_events = 10_000_000) ?(legacy_poll = false)
    ?(trace_level = Trace.Default) ?local ~n ~t ~seed () =
  if n < 2 then invalid_arg "Sim.create: n must be >= 2";
  if t < 0 || t >= n then invalid_arg "Sim.create: need 0 <= t < n";
  (match local with
  | Some p when p < 0 || p >= n -> invalid_arg "Sim.create: bad local pid"
  | _ -> ());
  let sim =
    {
      n;
      t_bound = t;
      rng = Rng.create seed;
      trace = Trace.create ~level:trace_level ();
      horizon;
      max_events;
      legacy_poll;
      local;
      router = None;
      inlets = Hashtbl.create 8;
      events = Pqueue.create ~cmp:cmp_event;
      now = 0.0;
      seq = 0;
      crashed = Array.make n false;
      crash_at = Array.make n None;
      stalled_until = Array.make n 0.0;
      faults = Faults.none;
      waiters = [];
      pending_conds = [];
      poll_waiters = 0;
      poll_cond = None;
      chooser = None;
      pool = [];
      next_pd = 0;
      n_pred_evals = 0;
      n_signals = 0;
      n_wakeups = 0;
      fl_pred_evals = 0;
      fl_signals = 0;
      fl_wakeups = 0;
      fl_events = 0;
    }
  in
  sim.poll_cond <- Some { c_owner = sim; c_pending = false };
  sim

let n t = t.n
let t_bound t = t.t_bound
let rng t = t.rng
let local t = t.local
let set_router t r = t.router <- Some r
let router t = t.router

let register_inlet t ~tag inlet =
  if Hashtbl.mem t.inlets tag then
    invalid_arg (Printf.sprintf "Sim.register_inlet: duplicate tag %S" tag);
  Hashtbl.replace t.inlets tag inlet

let inlet t ~tag = Hashtbl.find_opt t.inlets tag
let trace t = t.trace
let now t = t.now
let horizon t = t.horizon
let legacy_poll t = t.legacy_poll
let pred_evals t = t.n_pred_evals
let cond_signals t = t.n_signals
let wakeups t = t.n_wakeups

let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.push t.events { time = t.now +. delay; seq; run }

let at t ~time run =
  if time < t.now then invalid_arg "Sim.at: time in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.push t.events { time; seq; run }

let is_crashed t pid = t.crashed.(pid)
let faults t = t.faults
let set_faults t f = t.faults <- f
let is_stalled t pid = t.now < t.stalled_until.(pid)

let stall_end t pid =
  if t.now < t.stalled_until.(pid) then Some t.stalled_until.(pid) else None

let crashed_set t =
  let s = ref Pidset.empty in
  Array.iteri (fun i c -> if c then s := Pidset.add i !s) t.crashed;
  !s

let crash_time t pid = t.crash_at.(pid)

let correct_set t =
  let s = ref Pidset.empty in
  for i = 0 to t.n - 1 do
    if t.crash_at.(i) = None then s := Pidset.add i !s
  done;
  !s

let alive_at t time =
  let s = ref Pidset.empty in
  for i = 0 to t.n - 1 do
    match t.crash_at.(i) with
    | Some ct when ct <= time -> ()
    | _ -> s := Pidset.add i !s
  done;
  !s

let drop_waiter_counts t dropped =
  List.iter (fun w -> if w.poll then t.poll_waiters <- t.poll_waiters - 1) dropped

let do_crash t pid =
  if not t.crashed.(pid) then begin
    t.crashed.(pid) <- true;
    Trace.record t.trace ~time:t.now (Trace.Crash pid);
    (* Abandoned forever: drop this process's blocked fibers. *)
    let dropped, kept = List.partition (fun w -> w.wpid = pid) t.waiters in
    drop_waiter_counts t dropped;
    t.waiters <- kept;
    (* Undelivered messages to a dead process would be delivered into the
       void; drop them so the chooser never wastes a branch on them.
       In-flight messages *from* the crashed process stay. *)
    t.pool <- List.filter (fun p -> p.pd_dst <> pid) t.pool
  end

let crash_now t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.crash_now: bad pid";
  if not t.crashed.(pid) then begin
    let already =
      Array.fold_left (fun acc ct -> if ct <> None then acc + 1 else acc) 0 t.crash_at
    in
    let needed = if t.crash_at.(pid) = None then already + 1 else already in
    if needed > t.t_bound then
      invalid_arg "Sim.crash_now: resilience bound t exhausted";
    t.crash_at.(pid) <- Some t.now;
    do_crash t pid
  end

let install_crashes t crashes =
  if List.length crashes > t.t_bound then
    invalid_arg "Sim.install_crashes: more crashes than the bound t";
  List.iter
    (fun (pid, time) ->
      if pid < 0 || pid >= t.n then invalid_arg "Sim.install_crashes: bad pid";
      t.crash_at.(pid) <- Some time;
      at t ~time:(Float.max time t.now) (fun () -> do_crash t pid))
    crashes

let install_stalls t stalls =
  List.iter
    (fun { Faults.s_pid; s_from; s_until } ->
      if s_pid < 0 || s_pid >= t.n then invalid_arg "Sim.install_stalls: bad pid";
      if s_until <= s_from then invalid_arg "Sim.install_stalls: empty window";
      at t ~time:(Float.max s_from t.now) (fun () ->
          if (not t.crashed.(s_pid)) && s_until > t.stalled_until.(s_pid) then begin
            t.stalled_until.(s_pid) <- s_until;
            Trace.incr t.trace "fault.stalls";
            Trace.record t.trace ~time:t.now
              (Trace.Note
                 {
                   pid = Some s_pid;
                   text = Printf.sprintf "stall begin until=%g" s_until;
                 });
            at t ~time:s_until (fun () ->
                if not t.crashed.(s_pid) then
                  Trace.record t.trace ~time:t.now
                    (Trace.Note { pid = Some s_pid; text = "stall end" }))
          end))
    stalls

(* Resume a fiber's continuation, deferring past any active stall window.
   A stalled process is frozen, not crashed: its pending resumptions are
   parked and replayed (in scheduling order) once the window closes. *)
let rec resume_fiber t pid k =
  if not t.crashed.(pid) then begin
    if t.now < t.stalled_until.(pid) then
      at t ~time:t.stalled_until.(pid) (fun () -> resume_fiber t pid k)
    else Effect.Deep.continue k ()
  end

let sleep d = Effect.perform (Sleep d)
let yield () = Effect.perform Yield

(* ---- Choice-point control ---- *)

let set_chooser t f = t.chooser <- Some f
let clear_chooser t = t.chooser <- None
let controlled t = t.chooser <> None

let offer t ~src ~dst fire =
  if t.chooser = None then invalid_arg "Sim.offer: no chooser installed";
  let pd = { pd_id = t.next_pd; pd_src = src; pd_dst = dst; pd_fire = fire } in
  t.next_pd <- t.next_pd + 1;
  t.pool <- pd :: t.pool

let pending_deliveries t = List.length t.pool

(* One chooser step at an event boundary: [true] iff something fired (a
   delivery or a crash), which counts as an event for the run loop. *)
let consult_chooser t =
  match t.chooser with
  | None -> false
  | Some choose -> (
      let arr = Array.of_list (List.rev t.pool) in
      match choose t arr with
      | Pass -> false
      | Deliver _ when Array.length arr = 0 -> false
      | Deliver i ->
          let m = Array.length arr in
          let i = if i < 0 then 0 else if i >= m then m - 1 else i in
          let p = arr.(i) in
          t.pool <- List.filter (fun q -> q.pd_id <> p.pd_id) t.pool;
          p.pd_fire ();
          true
      | Inject_crash pid ->
          crash_now t pid;
          true)

module Cond = struct
  let create t = { c_owner = t; c_pending = false }

  let signal c =
    let t = c.c_owner in
    t.n_signals <- t.n_signals + 1;
    if not c.c_pending then begin
      c.c_pending <- true;
      t.pending_conds <- c :: t.pending_conds
    end

  let poll t = Option.get t.poll_cond
  let await conds pred = Effect.perform (Await (conds, pred))
end

let add_waiter t w =
  if w.poll then t.poll_waiters <- t.poll_waiters + 1;
  t.waiters <- t.waiters @ [ w ]

let spawn t ~pid body =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.spawn: bad pid";
  (* Real-runtime mode: remote pids take their steps in their own domains;
     discarding their fibers here mirrors the crashed-pid discard below. *)
  match t.local with
  | Some l when pid <> l -> ()
  | _ ->
  let block ~conds ~poll pred (k : (unit, unit) Effect.Deep.continuation) =
    t.n_pred_evals <- t.n_pred_evals + 1;
    if pred () then Effect.Deep.continue k ()
    else add_waiter t { wpid = pid; pred; conds; poll; k }
  in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  schedule t ~delay:d (fun () -> resume_fiber t pid k))
          | Yield ->
              Some (fun k -> schedule t ~delay:0.0 (fun () -> resume_fiber t pid k))
          | Await (conds, pred) ->
              List.iter
                (fun c ->
                  if c.c_owner != t then
                    invalid_arg "Sim.Cond.await: condition from another simulator")
                conds;
              let poll =
                match t.poll_cond with Some pc -> List.memq pc conds | None -> false
              in
              Some (block ~conds ~poll pred)
          | _ -> None);
    }
  in
  let rec start () =
    if not t.crashed.(pid) then begin
      if t.now < t.stalled_until.(pid) then at t ~time:t.stalled_until.(pid) start
      else Effect.Deep.match_with body () handler
    end
  in
  schedule t ~delay:0.0 start

let ticker t ~every =
  if every <= 0.0 then invalid_arg "Sim.ticker";
  let rec arm time =
    if time <= t.horizon then at t ~time (fun () -> arm (time +. every))
  in
  arm (t.now +. every)

type stop_reason = Quiescent | Horizon | Budget | Stopped
type outcome = { reason : stop_reason; events : int; end_time : float }

let pp_stop_reason fmt = function
  | Quiescent -> Format.pp_print_string fmt "quiescent"
  | Horizon -> Format.pp_print_string fmt "horizon"
  | Budget -> Format.pp_print_string fmt "budget"
  | Stopped -> Format.pp_print_string fmt "stopped"

(* Wake blocked fibers after an event.  Only waiters with a signalled
   condition (or poll waiters, or everyone under [legacy_poll]) have their
   predicate re-evaluated.  Waking a fiber can enable others at the same
   instant (zero-time causality chains): its signals arm the next round,
   so iterate to a fixpoint; the bound catches accidental livelocks.
   Fired fibers resume in registration order (oldest first). *)
let drain t =
  let rounds = ref 0 in
  let progress = ref true in
  while !progress do
    incr rounds;
    if !rounds > 100_000 then failwith "Sim: zero-time livelock among waiters";
    progress := false;
    let still = ref [] in
    let fired = ref [] in
    List.iter
      (fun w ->
        if t.crashed.(w.wpid) then drop_waiter_counts t [ w ] (* drop *)
        else if t.legacy_poll || w.poll || List.exists (fun c -> c.c_pending) w.conds
        then begin
          t.n_pred_evals <- t.n_pred_evals + 1;
          if w.pred () then fired := w :: !fired else still := w :: !still
        end
        else still := w :: !still)
      t.waiters;
    t.waiters <- List.rev !still;
    (* Consume this round's signals before resuming anyone: signals raised
       by the resumed fibers arm the next round. *)
    List.iter (fun c -> c.c_pending <- false) t.pending_conds;
    t.pending_conds <- [];
    match !fired with
    | [] -> ()
    | fs ->
        progress := true;
        List.iter
          (fun w ->
            drop_waiter_counts t [ w ];
            (* A stalled process earned its wakeup (the predicate fired) but
               is frozen: it reacts only once the stall window closes. *)
            let rec wake () =
              if not t.crashed.(w.wpid) then begin
                if t.now < t.stalled_until.(w.wpid) then
                  at t ~time:t.stalled_until.(w.wpid) wake
                else begin
                  t.n_wakeups <- t.n_wakeups + 1;
                  if Trace.records_full t.trace then begin
                    let sp = Trace.Wakeup { pid = w.wpid } in
                    Trace.begin_span t.trace ~time:t.now sp;
                    Effect.Deep.continue w.k ();
                    Trace.end_span t.trace ~time:t.now sp
                  end
                  else Effect.Deep.continue w.k ()
                end
              end
            in
            wake ())
          (List.rev fs)
  done

let flush_sched_counters t ~events =
  let flush name value flushed =
    if value > flushed then Trace.add_to t.trace name (value - flushed);
    value
  in
  t.fl_pred_evals <- flush "sched.pred_evals" t.n_pred_evals t.fl_pred_evals;
  t.fl_signals <- flush "sched.signals" t.n_signals t.fl_signals;
  t.fl_wakeups <- flush "sched.wakeups" t.n_wakeups t.fl_wakeups;
  t.fl_events <- flush "sched.events" (t.fl_events + events) t.fl_events

let run ?(stop_when = fun () -> false) (t : t) =
  let events = ref 0 in
  let reason = ref Quiescent in
  let continue_loop = ref true in
  let post_step () =
    incr events;
    if t.waiters <> [] && (t.legacy_poll || t.poll_waiters > 0 || t.pending_conds <> [])
    then drain t;
    if stop_when () then begin
      reason := Stopped;
      continue_loop := false
    end
    else if !events >= t.max_events then begin
      reason := Budget;
      continue_loop := false
    end
  in
  while !continue_loop do
    (* An event boundary: nothing left to run at the current instant.  A
       chooser (schedule exploration) picks what happens next — which
       pending delivery fires, or a crash — before time is allowed to
       advance; its picks execute at the current virtual time. *)
    let boundary =
      t.chooser <> None
      &&
      match Pqueue.peek t.events with None -> true | Some ev -> ev.time > t.now
    in
    if boundary && consult_chooser t then post_step ()
    else
      match Pqueue.pop t.events with
      | None ->
          reason := Quiescent;
          continue_loop := false
      | Some ev ->
          if ev.time > t.horizon then begin
            reason := Horizon;
            t.now <- t.horizon;
            continue_loop := false
          end
          else begin
            t.now <- Float.max t.now ev.time;
            ev.run ();
            post_step ()
          end
  done;
  flush_sched_counters t ~events:!events;
  { reason = !reason; events = !events; end_time = t.now }

(* Real-runtime stepping: process every event with time <= upto (never past
   the horizon), then move the clock to upto even if no event fired — the
   caller slaves virtual time to the wall clock, one call per tick.  Each
   call ends with a drain so poll-subscribed predicates (clock-derived
   oracle reads) and conditions signalled by out-of-band injections are
   re-evaluated at least once per tick, even event-free ones. *)
let advance t ~upto =
  let upto = Float.min upto t.horizon in
  let events = ref 0 in
  let maybe_drain () =
    if t.waiters <> [] && (t.legacy_poll || t.poll_waiters > 0 || t.pending_conds <> [])
    then drain t
  in
  let continue_loop = ref true in
  while !continue_loop do
    match Pqueue.peek t.events with
    | Some ev when ev.time <= upto ->
        ignore (Pqueue.pop t.events);
        t.now <- Float.max t.now ev.time;
        ev.run ();
        incr events;
        maybe_drain ()
    | _ -> continue_loop := false
  done;
  t.now <- Float.max t.now upto;
  maybe_drain ();
  flush_sched_counters t ~events:!events;
  !events
