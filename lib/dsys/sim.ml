open Setagree_util

(* ---- Event kinds -----------------------------------------------------

   The queue is a flat [Earena.t]: every event is (time, seq, kind, arg)
   with the payload looked up in a kind-specific side table.  The hot
   kinds (fiber resume, timer re-arm, crash, batched network delivery)
   carry everything in the int [arg] and allocate nothing per event; the
   generic thunk kind backs the public [schedule]/[at] API and every cold
   path.  [legacy_queue] routes resumes/timers/deliveries through thunk
   events instead — the pre-arena engine, kept as a differential
   baseline. *)

let k_thunk = 0 (* arg = thunk-table slot *)
let k_resume = 1 (* arg = resume-table slot (pid + continuation) *)
let k_timer = 2 (* arg = ticker id; re-arms itself *)
let k_crash = 3 (* arg = pid *)
let k_net = 4 (* arg = (row lsl 6) lor dispatcher id *)

(* A condition is a wakeup channel: substrates signal it when state a
   blocked predicate reads may have changed.  The scheduler re-evaluates a
   blocked fiber's predicate only when one of its subscribed conditions was
   signalled — except "poll" waiters (awaits subscribed to [Cond.poll],
   e.g. oracle-reading waits), which are re-evaluated after every event,
   reproducing the legacy fixpoint cadence for predicates with no signal
   discipline.  Each condition keeps its subscriber list so the drain
   visits only signalled waiters instead of scanning all of them. *)
type cond = {
  c_owner : t;
  mutable c_pending : bool;
  mutable c_waiters : waiter list; (* live subscribers; pruned lazily *)
}

and waiter = {
  wpid : Pid.t;
  pred : unit -> bool;
  conds : cond list;
  poll : bool;
  k : (unit, unit) Effect.Deep.continuation;
  w_id : int; (* registration order: resumption order is canonical *)
  mutable w_dead : bool; (* fired, or its process crashed *)
  mutable w_queued : bool; (* already in this drain round's candidates *)
}

and t = {
  n : int;
  t_bound : int;
  rng : Rng.t;
  trace : Trace.t;
  horizon : float;
  max_events : int;
  legacy_poll : bool;
  legacy_queue : bool;
  (* Real-runtime mode: the simulator models one process of a distributed
     deployment.  [spawn] silently discards fibers of other pids (they run
     in their own domains, each with its own local simulator), [router]
     carries remote-bound sends off-simulator, and [inlets] dispatch
     incoming serialized messages to the substrate (keyed by net tag) that
     knows how to decode and deliver them. *)
  local : Pid.t option;
  mutable router :
    (tag:string -> src:Pid.t -> dst:Pid.t -> Bytes.t -> unit) option;
  inlets : (string, src:Pid.t -> bytes:Bytes.t -> unit) Hashtbl.t;
  arena : Earena.t;
  (* Thunk table (generic events). *)
  mutable th : (unit -> unit) array;
  mutable th_len : int;
  mutable th_free : int array;
  mutable th_free_len : int;
  (* Resume table (sleeping/yielding fibers; continuations stored untyped
     to avoid a per-event option box). *)
  mutable rs_pid : int array;
  mutable rs_k : Obj.t array;
  mutable rs_free : int array;
  mutable rs_free_len : int;
  mutable rs_len : int;
  (* Ticker periods (tickers live until the horizon; never freed). *)
  mutable tk_every : float array;
  mutable tk_len : int;
  (* Batched-delivery dispatchers, registered by substrates (Net). *)
  mutable disps : (int -> unit) array;
  mutable disp_len : int;
  mutable now : float;
  crashed : bool array;
  mutable crashed_pidset : Pidset.t; (* incremental mirror of [crashed] *)
  (* Incremental mirror of [crash_at = None]: the processes correct in this
     run.  Shared (never rebuilt), so the per-event stop conditions that
     read it are allocation-free. *)
  mutable correct_pidset : Pidset.t;
  crash_at : float option array;
  (* Stall windows: [stalled_until.(p) > now] means process [p] is frozen —
     its fibers are not resumed (sleep expiries, yields and wakeups are
     deferred to the stall end) but it is *not* crashed: oracles still
     treat it as correct, and it catches up once the window closes. *)
  stalled_until : float array;
  (* The active fault specification (pure data; evaluated by Net on its
     own rng stream).  [Faults.none] unless [set_faults] was called. *)
  mutable faults : Faults.t;
  (* Mirror of [Faults.is_none faults], kept in sync by [set_faults]: read
     once per send, so it must not cost the structural compares. *)
  mutable faults_none : bool;
  (* All current waiters in registration order (live + not-yet-compacted
     dead); the poll subset keeps its own ordered array. *)
  mutable wall : waiter array;
  mutable wall_len : int;
  mutable wall_dead : int;
  mutable parr : waiter array;
  mutable parr_len : int;
  mutable parr_dead : int;
  mutable live_waiters : int;
  mutable next_wid : int;
  mutable pending_conds : cond list;
  mutable poll_waiters : int;
  mutable poll_cond : cond option;
  (* Drain scratch (reused across events; entries overwritten each use). *)
  mutable cand : waiter array;
  mutable cand_len : int;
  mutable fired : waiter array;
  mutable fired_len : int;
  (* Choice-point control (schedule exploration).  When a chooser is
     installed, substrates route deliveries through [offer] instead of
     sampling delays; the run loop consults the chooser at every event
     boundary (no event left at the current instant). *)
  mutable chooser : (t -> pending array -> decision) option;
  mutable pool : pending list; (* newest-first; canonical order is by pd_id *)
  mutable next_pd : int;
  (* Scheduler observability (flushed into [trace] at the end of [run]). *)
  mutable n_pred_evals : int;
  mutable n_signals : int;
  mutable n_wakeups : int;
  mutable fl_pred_evals : int;
  mutable fl_signals : int;
  mutable fl_wakeups : int;
  mutable fl_events : int;
}

and pending = {
  pd_id : int;
  pd_src : Pid.t;
  pd_dst : Pid.t;
  pd_fire : unit -> unit;
}

and decision = Deliver of int | Inject_crash of Pid.t | Pass

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t
  | Await : cond list * (unit -> bool) -> unit Effect.t

let nop () = ()

let create ?(horizon = 1e6) ?(max_events = 10_000_000) ?(legacy_poll = false)
    ?(legacy_queue = false) ?(trace_level = Trace.Default) ?local ~n ~t ~seed () =
  if n < 2 then invalid_arg "Sim.create: n must be >= 2";
  if t < 0 || t >= n then invalid_arg "Sim.create: need 0 <= t < n";
  (match local with
  | Some p when p < 0 || p >= n -> invalid_arg "Sim.create: bad local pid"
  | _ -> ());
  let sim =
    {
      n;
      t_bound = t;
      rng = Rng.create seed;
      trace = Trace.create ~level:trace_level ();
      horizon;
      max_events;
      legacy_poll;
      legacy_queue;
      local;
      router = None;
      inlets = Hashtbl.create 8;
      arena = Earena.create ();
      th = Array.make 16 nop;
      th_len = 0;
      th_free = Array.make 16 0;
      th_free_len = 0;
      rs_pid = Array.make 16 0;
      rs_k = Array.make 16 (Obj.repr 0);
      rs_free = Array.make 16 0;
      rs_free_len = 0;
      rs_len = 0;
      tk_every = Array.make 4 0.0;
      tk_len = 0;
      disps = Array.make 8 (fun _ -> ());
      disp_len = 0;
      now = 0.0;
      crashed = Array.make n false;
      crashed_pidset = Pidset.empty;
      correct_pidset = Pidset.full ~n;
      crash_at = Array.make n None;
      stalled_until = Array.make n 0.0;
      faults = Faults.none;
      faults_none = true;
      wall = [||];
      wall_len = 0;
      wall_dead = 0;
      parr = [||];
      parr_len = 0;
      parr_dead = 0;
      live_waiters = 0;
      next_wid = 0;
      pending_conds = [];
      poll_waiters = 0;
      poll_cond = None;
      cand = [||];
      cand_len = 0;
      fired = [||];
      fired_len = 0;
      chooser = None;
      pool = [];
      next_pd = 0;
      n_pred_evals = 0;
      n_signals = 0;
      n_wakeups = 0;
      fl_pred_evals = 0;
      fl_signals = 0;
      fl_wakeups = 0;
      fl_events = 0;
    }
  in
  sim.poll_cond <- Some { c_owner = sim; c_pending = false; c_waiters = [] };
  sim

let n t = t.n
let t_bound t = t.t_bound
let rng t = t.rng
let local t = t.local
let set_router t r = t.router <- Some r
let router t = t.router

let register_inlet t ~tag inlet =
  if Hashtbl.mem t.inlets tag then
    invalid_arg (Printf.sprintf "Sim.register_inlet: duplicate tag %S" tag);
  Hashtbl.replace t.inlets tag inlet

let inlet t ~tag = Hashtbl.find_opt t.inlets tag
let trace t = t.trace
let now t = t.now
let horizon t = t.horizon
let legacy_poll t = t.legacy_poll
let legacy_queue t = t.legacy_queue
let pred_evals t = t.n_pred_evals
let cond_signals t = t.n_signals
let wakeups t = t.n_wakeups

(* ---- Side tables ---- *)

let push_int_stack arr len v =
  let arr = if Array.length arr = len then begin
      let a' = Array.make (max 16 (2 * len)) 0 in
      Array.blit arr 0 a' 0 len;
      a'
    end
    else arr
  in
  arr.(len) <- v;
  arr

let th_alloc t f =
  let slot =
    if t.th_free_len > 0 then begin
      t.th_free_len <- t.th_free_len - 1;
      t.th_free.(t.th_free_len)
    end
    else begin
      let slot = t.th_len in
      if Array.length t.th = slot then begin
        let a' = Array.make (max 16 (2 * slot)) nop in
        Array.blit t.th 0 a' 0 slot;
        t.th <- a'
      end;
      t.th_len <- slot + 1;
      slot
    end
  in
  t.th.(slot) <- f;
  slot

let th_take t slot =
  let f = t.th.(slot) in
  t.th.(slot) <- nop;
  t.th_free <- push_int_stack t.th_free t.th_free_len slot;
  t.th_free_len <- t.th_free_len + 1;
  f

let rs_alloc t pid k =
  let slot =
    if t.rs_free_len > 0 then begin
      t.rs_free_len <- t.rs_free_len - 1;
      t.rs_free.(t.rs_free_len)
    end
    else begin
      let slot = t.rs_len in
      if Array.length t.rs_pid = slot then begin
        let cap = max 16 (2 * slot) in
        let p' = Array.make cap 0 and k' = Array.make cap (Obj.repr 0) in
        Array.blit t.rs_pid 0 p' 0 slot;
        Array.blit t.rs_k 0 k' 0 slot;
        t.rs_pid <- p';
        t.rs_k <- k'
      end;
      t.rs_len <- slot + 1;
      slot
    end
  in
  t.rs_pid.(slot) <- pid;
  t.rs_k.(slot) <- k;
  slot

let rs_free t slot =
  t.rs_k.(slot) <- Obj.repr 0;
  t.rs_free <- push_int_stack t.rs_free t.rs_free_len slot;
  t.rs_free_len <- t.rs_free_len + 1

let add_event t ~time ~kind ~arg = ignore (Earena.add t.arena ~time ~kind ~arg)

let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  add_event t ~time:(t.now +. delay) ~kind:k_thunk ~arg:(th_alloc t run)

let at t ~time run =
  if time < t.now then invalid_arg "Sim.at: time in the past";
  add_event t ~time ~kind:k_thunk ~arg:(th_alloc t run)

(* Substrate internals: batched deliveries (Net).  The dispatcher is
   called with the row argument it was scheduled with; the returned slot
   id lets the substrate append to a still-queued event. *)

let register_dispatcher t f =
  if t.disp_len >= 64 then
    invalid_arg "Sim.register_dispatcher: dispatcher table full";
  if Array.length t.disps = t.disp_len then begin
    let a' = Array.make (2 * t.disp_len) (fun _ -> ()) in
    Array.blit t.disps 0 a' 0 t.disp_len;
    t.disps <- a'
  end;
  t.disps.(t.disp_len) <- f;
  t.disp_len <- t.disp_len + 1;
  t.disp_len - 1

let schedule_dispatch t ~time ~disp ~row =
  if time < t.now then invalid_arg "Sim.schedule_dispatch: time in the past";
  Earena.add t.arena ~time ~kind:k_net ~arg:((row lsl 6) lor disp)

let is_crashed t pid = t.crashed.(pid)
let faults t = t.faults
let faults_none t = t.faults_none
let set_faults t f =
  t.faults <- f;
  t.faults_none <- Faults.is_none f
let is_stalled t pid = t.now < t.stalled_until.(pid)

let stall_end t pid =
  if t.now < t.stalled_until.(pid) then Some t.stalled_until.(pid) else None

let crashed_set t = t.crashed_pidset
let crash_time t pid = t.crash_at.(pid)

let correct_set t = t.correct_pidset

let alive_at t time =
  let s = ref Pidset.empty in
  for i = 0 to t.n - 1 do
    match t.crash_at.(i) with
    | Some ct when ct <= time -> ()
    | _ -> s := Pidset.add i !s
  done;
  !s

(* ---- Waiter bookkeeping ---- *)

let kill_waiter t w =
  if not w.w_dead then begin
    w.w_dead <- true;
    t.wall_dead <- t.wall_dead + 1;
    t.live_waiters <- t.live_waiters - 1;
    if w.poll then begin
      t.poll_waiters <- t.poll_waiters - 1;
      t.parr_dead <- t.parr_dead + 1
    end
  end

(* Compact as soon as a handful of dead entries accumulate: the arrays
   are rescanned on every drain (the poll array on every event), so a few
   dozen lingering dead waiters cost far more in scan time than the O(len)
   compaction pass they trigger. *)
let compact t =
  if t.wall_dead > 4 && 2 * t.wall_dead > t.wall_len then begin
    let keep = ref 0 in
    for i = 0 to t.wall_len - 1 do
      let w = t.wall.(i) in
      if not w.w_dead then begin
        t.wall.(!keep) <- w;
        incr keep
      end
    done;
    t.wall_len <- !keep;
    t.wall_dead <- 0
  end;
  if t.parr_dead > 4 && 2 * t.parr_dead > t.parr_len then begin
    let keep = ref 0 in
    for i = 0 to t.parr_len - 1 do
      let w = t.parr.(i) in
      if not w.w_dead then begin
        t.parr.(!keep) <- w;
        incr keep
      end
    done;
    t.parr_len <- !keep;
    t.parr_dead <- 0
  end

let push_waiter_arr arr len w =
  let arr =
    if Array.length arr = len then begin
      let a' = Array.make (max 8 (2 * len)) w in
      Array.blit arr 0 a' 0 len;
      a'
    end
    else arr
  in
  arr.(len) <- w;
  arr

let add_waiter t w =
  compact t;
  if w.poll then begin
    t.poll_waiters <- t.poll_waiters + 1;
    t.parr <- push_waiter_arr t.parr t.parr_len w;
    t.parr_len <- t.parr_len + 1
  end;
  t.wall <- push_waiter_arr t.wall t.wall_len w;
  t.wall_len <- t.wall_len + 1;
  t.live_waiters <- t.live_waiters + 1;
  List.iter (fun c -> c.c_waiters <- w :: c.c_waiters) w.conds

let do_crash t pid =
  if not t.crashed.(pid) then begin
    t.crashed.(pid) <- true;
    t.crashed_pidset <- Pidset.add pid t.crashed_pidset;
    Trace.record t.trace ~time:t.now (Trace.Crash pid);
    (* Abandoned forever: drop this process's blocked fibers. *)
    for i = 0 to t.wall_len - 1 do
      let w = t.wall.(i) in
      if w.wpid = pid then kill_waiter t w
    done;
    (* Undelivered messages to a dead process would be delivered into the
       void; drop them so the chooser never wastes a branch on them.
       In-flight messages *from* the crashed process stay. *)
    t.pool <- List.filter (fun p -> p.pd_dst <> pid) t.pool
  end

let crash_now t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.crash_now: bad pid";
  if not t.crashed.(pid) then begin
    let already =
      Array.fold_left (fun acc ct -> if ct <> None then acc + 1 else acc) 0 t.crash_at
    in
    let needed = if t.crash_at.(pid) = None then already + 1 else already in
    if needed > t.t_bound then
      invalid_arg "Sim.crash_now: resilience bound t exhausted";
    t.crash_at.(pid) <- Some t.now;
    t.correct_pidset <- Pidset.remove pid t.correct_pidset;
    do_crash t pid
  end

let install_crashes t crashes =
  if List.length crashes > t.t_bound then
    invalid_arg "Sim.install_crashes: more crashes than the bound t";
  List.iter
    (fun (pid, time) ->
      if pid < 0 || pid >= t.n then invalid_arg "Sim.install_crashes: bad pid";
      t.crash_at.(pid) <- Some time;
      t.correct_pidset <- Pidset.remove pid t.correct_pidset;
      add_event t ~time:(Float.max time t.now) ~kind:k_crash ~arg:pid)
    crashes

let install_stalls t stalls =
  List.iter
    (fun { Faults.s_pid; s_from; s_until } ->
      if s_pid < 0 || s_pid >= t.n then invalid_arg "Sim.install_stalls: bad pid";
      if s_until <= s_from then invalid_arg "Sim.install_stalls: empty window";
      at t ~time:(Float.max s_from t.now) (fun () ->
          if (not t.crashed.(s_pid)) && s_until > t.stalled_until.(s_pid) then begin
            t.stalled_until.(s_pid) <- s_until;
            Trace.incr t.trace "fault.stalls";
            Trace.record t.trace ~time:t.now
              (Trace.Note
                 {
                   pid = Some s_pid;
                   text = Printf.sprintf "stall begin until=%g" s_until;
                 });
            at t ~time:s_until (fun () ->
                if not t.crashed.(s_pid) then
                  Trace.record t.trace ~time:t.now
                    (Trace.Note { pid = Some s_pid; text = "stall end" }))
          end))
    stalls

(* Resume a fiber's continuation, deferring past any active stall window.
   A stalled process is frozen, not crashed: its pending resumptions are
   parked and replayed (in scheduling order) once the window closes. *)
let rec resume_fiber t pid k =
  if not t.crashed.(pid) then begin
    if t.now < t.stalled_until.(pid) then
      at t ~time:t.stalled_until.(pid) (fun () -> resume_fiber t pid k)
    else Effect.Deep.continue k ()
  end

(* Arena path: the same stall-aware resume, re-queued as another
   [k_resume] event (same slot) when the process is frozen. *)
let dispatch_resume t slot =
  let pid = t.rs_pid.(slot) in
  if t.crashed.(pid) then rs_free t slot
  else if t.now < t.stalled_until.(pid) then
    add_event t ~time:t.stalled_until.(pid) ~kind:k_resume ~arg:slot
  else begin
    let k : (unit, unit) Effect.Deep.continuation = Obj.obj t.rs_k.(slot) in
    rs_free t slot;
    Effect.Deep.continue k ()
  end

let sleep d = Effect.perform (Sleep d)
let yield () = Effect.perform Yield

(* ---- Choice-point control ---- *)

let set_chooser t f = t.chooser <- Some f
let clear_chooser t = t.chooser <- None
let controlled t = match t.chooser with None -> false | Some _ -> true

let offer t ~src ~dst fire =
  if t.chooser = None then invalid_arg "Sim.offer: no chooser installed";
  let pd = { pd_id = t.next_pd; pd_src = src; pd_dst = dst; pd_fire = fire } in
  t.next_pd <- t.next_pd + 1;
  t.pool <- pd :: t.pool

let pending_deliveries t = List.length t.pool

(* One chooser step at an event boundary: [true] iff something fired (a
   delivery or a crash), which counts as an event for the run loop. *)
let consult_chooser t =
  match t.chooser with
  | None -> false
  | Some choose -> (
      let arr = Array.of_list (List.rev t.pool) in
      match choose t arr with
      | Pass -> false
      | Deliver _ when Array.length arr = 0 -> false
      | Deliver i ->
          let m = Array.length arr in
          let i = if i < 0 then 0 else if i >= m then m - 1 else i in
          let p = arr.(i) in
          t.pool <- List.filter (fun q -> q.pd_id <> p.pd_id) t.pool;
          p.pd_fire ();
          true
      | Inject_crash pid ->
          crash_now t pid;
          true)

module Cond = struct
  let create t = { c_owner = t; c_pending = false; c_waiters = [] }

  let signal c =
    let t = c.c_owner in
    t.n_signals <- t.n_signals + 1;
    (* No subscribers, nothing to wake: skip the pending enqueue.  Safe
       because a later [await] evaluates its predicate once immediately —
       it sees every state change made before it subscribed, so a signal
       that found nobody listening carries no information for it. *)
    if (not c.c_pending) && (match c.c_waiters with [] -> false | _ -> true)
    then begin
      c.c_pending <- true;
      t.pending_conds <- c :: t.pending_conds
    end

  let poll t = Option.get t.poll_cond
  let await conds pred = Effect.perform (Await (conds, pred))
end

let spawn t ~pid body =
  if pid < 0 || pid >= t.n then invalid_arg "Sim.spawn: bad pid";
  (* Real-runtime mode: remote pids take their steps in their own domains;
     discarding their fibers here mirrors the crashed-pid discard below. *)
  match t.local with
  | Some l when pid <> l -> ()
  | _ ->
  let block ~conds ~poll pred (k : (unit, unit) Effect.Deep.continuation) =
    t.n_pred_evals <- t.n_pred_evals + 1;
    if pred () then Effect.Deep.continue k ()
    else begin
      let w =
        {
          wpid = pid;
          pred;
          conds;
          poll;
          k;
          w_id = t.next_wid;
          w_dead = false;
          w_queued = false;
        }
      in
      t.next_wid <- t.next_wid + 1;
      add_waiter t w
    end
  in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if d < 0.0 then invalid_arg "Sim.schedule: negative delay";
                  if t.legacy_queue then
                    schedule t ~delay:d (fun () -> resume_fiber t pid k)
                  else
                    add_event t ~time:(t.now +. d) ~kind:k_resume
                      ~arg:(rs_alloc t pid (Obj.repr k)))
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if t.legacy_queue then
                    schedule t ~delay:0.0 (fun () -> resume_fiber t pid k)
                  else
                    add_event t ~time:t.now ~kind:k_resume
                      ~arg:(rs_alloc t pid (Obj.repr k)))
          | Await (conds, pred) ->
              List.iter
                (fun c ->
                  if c.c_owner != t then
                    invalid_arg "Sim.Cond.await: condition from another simulator")
                conds;
              let poll =
                match t.poll_cond with Some pc -> List.memq pc conds | None -> false
              in
              Some (block ~conds ~poll pred)
          | _ -> None);
    }
  in
  let rec start () =
    if not t.crashed.(pid) then begin
      if t.now < t.stalled_until.(pid) then at t ~time:t.stalled_until.(pid) start
      else Effect.Deep.match_with body () handler
    end
  in
  schedule t ~delay:0.0 start

let ticker t ~every =
  if every <= 0.0 then invalid_arg "Sim.ticker";
  if t.legacy_queue then begin
    let rec arm time =
      if time <= t.horizon then at t ~time (fun () -> arm (time +. every))
    in
    arm (t.now +. every)
  end
  else begin
    let id = t.tk_len in
    if Array.length t.tk_every = id then begin
      let a' = Array.make (max 4 (2 * id)) 0.0 in
      Array.blit t.tk_every 0 a' 0 id;
      t.tk_every <- a'
    end;
    t.tk_every.(id) <- every;
    t.tk_len <- id + 1;
    let first = t.now +. every in
    if first <= t.horizon then add_event t ~time:first ~kind:k_timer ~arg:id
  end

type stop_reason = Quiescent | Horizon | Budget | Stopped
type outcome = { reason : stop_reason; events : int; end_time : float }

let pp_stop_reason fmt = function
  | Quiescent -> Format.pp_print_string fmt "quiescent"
  | Horizon -> Format.pp_print_string fmt "horizon"
  | Budget -> Format.pp_print_string fmt "budget"
  | Stopped -> Format.pp_print_string fmt "stopped"

(* ---- Drain ----------------------------------------------------------

   Wake blocked fibers after an event.  Only waiters with a signalled
   condition (or poll waiters, or everyone under [legacy_poll]) have their
   predicate re-evaluated; candidates are gathered from the pending
   conditions' subscriber lists plus the poll array — O(signalled + poll),
   not O(all waiters) — then evaluated in registration (w_id) order, the
   same order the historical all-waiter scan produced.  Waking a fiber can
   enable others at the same instant (zero-time causality chains): its
   signals arm the next round, so iterate to a fixpoint; the bound catches
   accidental livelocks.  Fired fibers resume in registration order
   (oldest first). *)

let push_cand t w =
  if not w.w_queued then begin
    w.w_queued <- true;
    t.cand <- push_waiter_arr t.cand t.cand_len w;
    t.cand_len <- t.cand_len + 1
  end

(* Insertion sort of the candidate prefix by w_id: candidate sets are
   small and nearly sorted (the poll array is appended in order). *)
let sort_cands t =
  for i = 1 to t.cand_len - 1 do
    let w = t.cand.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && t.cand.(!j).w_id > w.w_id do
      t.cand.(!j + 1) <- t.cand.(!j);
      decr j
    done;
    t.cand.(!j + 1) <- w
  done

let drain t =
  let rounds = ref 0 in
  let progress = ref true in
  while !progress do
    incr rounds;
    if !rounds > 100_000 then failwith "Sim: zero-time livelock among waiters";
    progress := false;
    t.cand_len <- 0;
    if t.legacy_poll then
      for i = 0 to t.wall_len - 1 do
        let w = t.wall.(i) in
        if not w.w_dead then push_cand t w
      done
    else begin
      for i = 0 to t.parr_len - 1 do
        let w = t.parr.(i) in
        if not w.w_dead then push_cand t w
      done;
      List.iter
        (fun c ->
          (* Single pass: push live subscribers, prune (rebuild) only when
             dead ones are actually present — no allocation otherwise. *)
          let dead = ref false in
          List.iter
            (fun w -> if w.w_dead then dead := true else push_cand t w)
            c.c_waiters;
          if !dead then
            c.c_waiters <- List.filter (fun w -> not w.w_dead) c.c_waiters)
        t.pending_conds;
      sort_cands t
    end;
    t.fired_len <- 0;
    for i = 0 to t.cand_len - 1 do
      let w = t.cand.(i) in
      w.w_queued <- false;
      if not w.w_dead then begin
        if t.crashed.(w.wpid) then kill_waiter t w
        else begin
          t.n_pred_evals <- t.n_pred_evals + 1;
          if w.pred () then begin
            kill_waiter t w;
            t.fired <- push_waiter_arr t.fired t.fired_len w;
            t.fired_len <- t.fired_len + 1
          end
        end
      end
    done;
    (* Consume this round's signals before resuming anyone: signals raised
       by the resumed fibers arm the next round. *)
    List.iter (fun c -> c.c_pending <- false) t.pending_conds;
    t.pending_conds <- [];
    if t.fired_len > 0 then begin
      progress := true;
      for i = 0 to t.fired_len - 1 do
        let w = t.fired.(i) in
        (* A stalled process earned its wakeup (the predicate fired) but
           is frozen: it reacts only once the stall window closes. *)
        let rec wake () =
          if not t.crashed.(w.wpid) then begin
            if t.now < t.stalled_until.(w.wpid) then
              at t ~time:t.stalled_until.(w.wpid) wake
            else begin
              t.n_wakeups <- t.n_wakeups + 1;
              if Trace.records_full t.trace then begin
                let sp = Trace.Wakeup { pid = w.wpid } in
                Trace.begin_span t.trace ~time:t.now sp;
                Effect.Deep.continue w.k ();
                Trace.end_span t.trace ~time:t.now sp
              end
              else Effect.Deep.continue w.k ()
            end
          end
        in
        wake ()
      done
    end
  done

let flush_sched_counters t ~events =
  let flush name value flushed =
    if value > flushed then Trace.add_to t.trace name (value - flushed);
    value
  in
  t.fl_pred_evals <- flush "sched.pred_evals" t.n_pred_evals t.fl_pred_evals;
  t.fl_signals <- flush "sched.signals" t.n_signals t.fl_signals;
  t.fl_wakeups <- flush "sched.wakeups" t.n_wakeups t.fl_wakeups;
  t.fl_events <- flush "sched.events" (t.fl_events + events) t.fl_events

(* Execute one popped event.  [slot] fields are read before anything can
   recycle the slot (the dispatched code may add events). *)
let exec_event t slot =
  let kind = Earena.kind_of t.arena slot in
  let arg = Earena.arg_of t.arena slot in
  if kind = k_thunk then (th_take t arg) ()
  else if kind = k_resume then dispatch_resume t arg
  else if kind = k_timer then begin
    let next = t.now +. t.tk_every.(arg) in
    if next <= t.horizon then add_event t ~time:next ~kind:k_timer ~arg
  end
  else if kind = k_crash then do_crash t arg
  else (* k_net *)
    t.disps.(arg land 63) (arg lsr 6)

let run ?(stop_when = fun () -> false) (t : t) =
  let events = ref 0 in
  let reason = ref Quiescent in
  let continue_loop = ref true in
  let post_step () =
    incr events;
    (if
       t.live_waiters > 0
       && (t.legacy_poll || t.poll_waiters > 0
          || match t.pending_conds with [] -> false | _ :: _ -> true)
     then drain t);
    if stop_when () then begin
      reason := Stopped;
      continue_loop := false
    end
    else if !events >= t.max_events then begin
      reason := Budget;
      continue_loop := false
    end
  in
  while !continue_loop do
    (* An event boundary: nothing left to run at the current instant.  A
       chooser (schedule exploration) picks what happens next — which
       pending delivery fires, or a crash — before time is allowed to
       advance; its picks execute at the current virtual time. *)
    let boundary =
      (match t.chooser with None -> false | Some _ -> true)
      && Earena.peek_time t.arena > t.now
    in
    if boundary && consult_chooser t then post_step ()
    else if Earena.is_empty t.arena then begin
      reason := Quiescent;
      continue_loop := false
    end
    else begin
      let time = Earena.peek_time t.arena in
      if time > t.horizon then begin
        reason := Horizon;
        t.now <- t.horizon;
        continue_loop := false
      end
      else begin
        let slot = Earena.pop t.arena in
        if time > t.now then t.now <- time;
        exec_event t slot;
        post_step ()
      end
    end
  done;
  flush_sched_counters t ~events:!events;
  { reason = !reason; events = !events; end_time = t.now }

(* Real-runtime stepping: process every event with time <= upto (never past
   the horizon), then move the clock to upto even if no event fired — the
   caller slaves virtual time to the wall clock, one call per tick.  Each
   call ends with a drain so poll-subscribed predicates (clock-derived
   oracle reads) and conditions signalled by out-of-band injections are
   re-evaluated at least once per tick, even event-free ones. *)
let advance t ~upto =
  let upto = Float.min upto t.horizon in
  let events = ref 0 in
  let maybe_drain () =
    if
      t.live_waiters > 0
      && (t.legacy_poll || t.poll_waiters > 0
         || match t.pending_conds with [] -> false | _ :: _ -> true)
    then drain t
  in
  let continue_loop = ref true in
  while !continue_loop do
    let time = Earena.peek_time t.arena in
    if time <= upto then begin
      let slot = Earena.pop t.arena in
      t.now <- Float.max t.now time;
      exec_event t slot;
      incr events;
      maybe_drain ()
    end
    else continue_loop := false
  done;
  t.now <- Float.max t.now upto;
  maybe_drain ();
  flush_sched_counters t ~events:!events;
  !events
