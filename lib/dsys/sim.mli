(** Deterministic discrete-event simulator of the asynchronous system
    AS_{n,t} (paper §2.1).

    A simulation owns a virtual clock, an event queue and [n] processes.
    Process code runs as OCaml-5 effect fibers: the paper's [wait until]
    statements map onto {!wait_until}, and the implicit "a process keeps
    taking steps" assumption onto {!sleep} calls inside loops.  Everything is
    driven by one seeded {!Setagree_util.Rng.t}: two runs with the same seed
    and parameters are identical.

    {b Crash semantics.}  A crash schedule is fixed before the run.  When a
    process crashes, none of its fibers is ever resumed again; events it had
    already scheduled (messages in flight) still fire.  A fiber interrupted
    between two effects never observes its own crash — exactly the "halts
    prematurely, behaves correctly until then" model. *)

open Setagree_util

type t

(** {1 Construction} *)

val create :
  ?horizon:float ->
  ?max_events:int ->
  n:int ->
  t:int ->
  seed:int ->
  unit ->
  t
(** [create ~n ~t ~seed ()] builds a system of [n] processes of which at most
    [t] may crash.  [horizon] (default [1e6]) is the virtual-time limit;
    [max_events] (default [10_000_000]) bounds the run. *)

val n : t -> int
val t_bound : t -> int
(** The resilience parameter [t] (max number of crashes). *)

val rng : t -> Rng.t
(** The root generator.  Subsystems should [Rng.split_named] it. *)

val trace : t -> Trace.t
val now : t -> float
val horizon : t -> float

(** {1 Ground truth (for oracles and checkers)} *)

val install_crashes : t -> (Pid.t * float) list -> unit
(** Schedule the given crashes.  Must be called before {!run}.  Raises
    [Invalid_argument] if more than [t] crashes are given. *)

val crash_now : t -> Pid.t -> unit
(** Reactive adversary: crash the process at the current instant (e.g.
    from a watcher fiber, the moment it takes some step).  Counts against
    the resilience bound; raises [Invalid_argument] if a [t+1]-th crash is
    attempted.  No-op on an already-crashed process. *)

val is_crashed : t -> Pid.t -> bool
(** Whether the process has crashed {e at the current virtual time}. *)

val crashed_set : t -> Pidset.t
(** Set of processes crashed at the current virtual time. *)

val crash_time : t -> Pid.t -> float option
(** The time at which the process is {e scheduled} to crash, if any — ground
    truth usable by oracles even before the crash occurs. *)

val correct_set : t -> Pidset.t
(** Processes with no scheduled crash: the correct processes of the run. *)

val alive_at : t -> float -> Pidset.t
(** Processes not crashed at the given time (per the schedule). *)

(** {1 Process code (effects)} *)

val spawn : t -> pid:Pid.t -> (unit -> unit) -> unit
(** [spawn t ~pid body] starts a fiber for process [pid].  A process may have
    several fibers (the paper's tasks T1, T2, ...).  The fiber starts at the
    current virtual time and is silently discarded if [pid] is already
    crashed. *)

val sleep : float -> unit
(** Suspend the calling fiber for the given virtual duration.  Must be
    called from fiber context. *)

val yield : unit -> unit
(** Reschedule the calling fiber at the same virtual instant (after pending
    events).  Gives the crash scheduler a chance to interleave. *)

val wait_until : (unit -> bool) -> unit
(** Suspend until the predicate holds.  The predicate is re-evaluated after
    every event; it must be monotone-friendly (cheap, side-effect free). *)

(** {1 Scheduling primitives (for substrates such as channels)} *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk after the given virtual delay.  Thunks run even if some
    process crashed meanwhile — guard inside if needed. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Run the thunk at an absolute virtual time (>= now). *)

val ticker : t -> every:float -> unit
(** Install heartbeat events up to the horizon so that [wait_until]
    predicates depending only on the clock (e.g. pull-based oracles) are
    re-evaluated regularly. *)

(** {1 Running} *)

type stop_reason = Quiescent | Horizon | Budget | Stopped

type outcome = { reason : stop_reason; events : int; end_time : float }

val run : ?stop_when:(unit -> bool) -> t -> outcome
(** Process events in (time, seq) order until the queue empties
    ([Quiescent]), the horizon or event budget is hit, or [stop_when]
    becomes true (checked after each event). *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit
