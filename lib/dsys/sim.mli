(** Deterministic discrete-event simulator of the asynchronous system
    AS_{n,t} (paper §2.1).

    A simulation owns a virtual clock, an event queue and [n] processes.
    Process code runs as OCaml-5 effect fibers: the paper's [wait until]
    statements map onto {!Cond.await}, and the implicit "a process keeps
    taking steps" assumption onto {!sleep} calls inside loops.  Everything
    is driven by one seeded {!Setagree_util.Rng.t}: two runs with the same
    seed and parameters are identical.

    {b Wakeups are event-driven.}  A blocked fiber subscribes to
    {!cond}itions; substrates (channels, broadcast layers) signal the
    conditions whose observable state they changed, and only then is the
    fiber's predicate re-evaluated.  Predicates with no signal discipline
    (waits that read oracle state derived from the clock) subscribe to the
    {!Cond.poll} condition and are
    re-evaluated after every event — the legacy cadence.  Passing
    [~legacy_poll:true] to {!create} restores the historical
    evaluate-everything-after-every-event scheduler; by design both
    schedulers produce identical executions (the differential qcheck suite
    in [test/test_sched.ml] pins this down).

    {b Crash semantics.}  A crash schedule is fixed before the run.  When a
    process crashes, none of its fibers is ever resumed again; events it had
    already scheduled (messages in flight) still fire.  A fiber interrupted
    between two effects never observes its own crash — exactly the "halts
    prematurely, behaves correctly until then" model. *)

open Setagree_util

type t

(** {1 Construction} *)

val create :
  ?horizon:float ->
  ?max_events:int ->
  ?legacy_poll:bool ->
  ?legacy_queue:bool ->
  ?trace_level:Trace.level ->
  ?local:Pid.t ->
  n:int ->
  t:int ->
  seed:int ->
  unit ->
  t
(** [create ~n ~t ~seed ()] builds a system of [n] processes of which at most
    [t] may crash.  [horizon] (default [1e6]) is the virtual-time limit;
    [max_events] (default [10_000_000]) bounds the run.  [trace_level]
    (default [Trace.Default]) gates what the run records into {!trace}:
    tracing only ever writes to the trace log, so the level cannot change
    the execution (see {!Trace.level}).  [legacy_poll]
    (default [false]) re-evaluates {e every} blocked predicate after every
    event instead of only the signalled ones — the pre-condition-variable
    scheduler.  It is a {b test-only escape hatch}: production code and the
    protocols never set it; it exists solely as the differential baseline
    that [test/test_sched.ml] compares the condition scheduler against.

    [legacy_queue] (default [false]) routes fiber resumptions, tickers
    and message deliveries through per-event closure thunks instead of
    the flat event arena's kind-tagged dispatch, and disables delivery
    batching in [Net] — the pre-arena engine.  Like [legacy_poll] it is a
    {b test-only escape hatch}, the differential baseline pinning down
    that the arena engine produces identical executions.

    [local] (default [None]) puts the simulator in {e real-runtime} mode:
    it models exactly one process of a distributed deployment.  {!spawn}
    silently discards fibers for any other pid (they take their steps in
    their own domains, each with its own local simulator), and substrates
    route remote-bound sends through the {!set_router} hook instead of
    scheduling a local delivery.  See [Setagree_rt]. *)

val n : t -> int
val t_bound : t -> int
(** The resilience parameter [t] (max number of crashes). *)

val rng : t -> Rng.t
(** The root generator.  Subsystems should [Rng.split_named] it. *)

val trace : t -> Trace.t
val now : t -> float
val horizon : t -> float

val legacy_poll : t -> bool
(** Whether this simulator runs the legacy re-poll-everything scheduler. *)

val legacy_queue : t -> bool
(** Whether this simulator runs the legacy closure-per-event queue (see
    {!create}'s [legacy_queue]). *)

(** {1 Real-runtime mode} *)

val local : t -> Pid.t option
(** [Some pid] iff the simulator models only that process (see {!create}'s
    [local]). *)

val set_router : t -> (tag:string -> src:Pid.t -> dst:Pid.t -> Bytes.t -> unit) -> unit
(** Install the outbound hook for real-runtime mode: substrates hand it
    every send whose destination is not the {!local} pid, as serialized
    bytes keyed by the substrate's tag.  The hook runs synchronously in
    the sending fiber. *)

val router : t -> (tag:string -> src:Pid.t -> dst:Pid.t -> Bytes.t -> unit) option

val register_inlet : t -> tag:string -> (src:Pid.t -> bytes:Bytes.t -> unit) -> unit
(** Register the inbound dispatch for a substrate: the runtime node calls
    the inlet matching an incoming datagram's tag, and the substrate
    decodes and delivers into its local mailboxes.  Raises
    [Invalid_argument] on a duplicate tag — tags identify the decoder, so
    two substrates of one simulator must not share one. *)

val inlet : t -> tag:string -> (src:Pid.t -> bytes:Bytes.t -> unit) option

val advance : t -> upto:float -> int
(** Real-runtime stepping: process every queued event with time <= [upto]
    (clamped to the horizon), then move the clock to [upto] even if no
    event fired, and finish with a scheduler drain so blocked predicates
    are re-evaluated at least once per call.  Returns the number of events
    processed.  The runtime node calls this once per wall-clock tick with
    [upto = elapsed_wall * timescale], slaving virtual time to the wall
    clock; {!run} and [advance] must not be mixed on one simulator. *)

(** {1 Ground truth (for oracles and checkers)} *)

val install_crashes : t -> (Pid.t * float) list -> unit
(** Schedule the given crashes.  Must be called before {!run}.  Raises
    [Invalid_argument] if more than [t] crashes are given. *)

val crash_now : t -> Pid.t -> unit
(** Reactive adversary: crash the process at the current instant (e.g.
    from a watcher fiber, the moment it takes some step).  Counts against
    the resilience bound; raises [Invalid_argument] if a [t+1]-th crash is
    attempted.  No-op on an already-crashed process. *)

val is_crashed : t -> Pid.t -> bool
(** Whether the process has crashed {e at the current virtual time}. *)

val crashed_set : t -> Pidset.t
(** Set of processes crashed at the current virtual time. *)

val crash_time : t -> Pid.t -> float option
(** The time at which the process is {e scheduled} to crash, if any — ground
    truth usable by oracles even before the crash occurs. *)

val correct_set : t -> Pidset.t
(** Processes with no scheduled crash: the correct processes of the run. *)

val alive_at : t -> float -> Pidset.t
(** Processes not crashed at the given time (per the schedule). *)

(** {1 Fault injection}

    Stall semantics: a stalled process is frozen, not crashed.  Sleep
    expiries, yields, wakeups of blocked fibers and message deliveries
    addressed to it are deferred to the end of the stall window, in
    their original scheduling order — so the process resumes exactly
    where it left off and catches up, while heartbeat-style monitors
    falsely suspect it in the meantime.  Ground truth ({!is_crashed},
    {!correct_set}, the oracles) is unaffected: a stalled process is a
    correct, slow process — legal behavior under asynchrony. *)

val install_stalls : t -> Faults.stall list -> unit
(** Schedule stall windows.  Must be called before {!run}.  Overlapping
    windows for the same process keep the latest end time. *)

val is_stalled : t -> Pid.t -> bool
(** Whether the process is inside a stall window at the current time. *)

val stall_end : t -> Pid.t -> float option
(** [Some end_time] iff the process is currently stalled — substrates
    (e.g. [Net.deliver]) use it to defer deliveries to frozen
    processes. *)

val set_faults : t -> Faults.t -> unit
(** Attach the run's fault specification.  [Sim] itself only stores it
    (and owns the stall windows via {!install_stalls}); the send-path
    effects are evaluated by [Net] against {!faults} on a dedicated rng
    stream. *)

val faults : t -> Faults.t
(** The attached specification; [Faults.none] unless {!set_faults} was
    called. *)

val faults_none : t -> bool
(** [Faults.is_none (faults t)] as a cached bool: the per-send fast-path
    check, with the structural compares paid once in {!set_faults}. *)

(** {1 Conditions} *)

type cond
(** A wakeup channel connecting state changes to blocked fibers. *)

module Cond : sig
  val create : t -> cond
  (** A fresh condition owned by the simulator. *)

  val signal : cond -> unit
  (** Mark the condition signalled.  Fibers blocked in {!await} on it have
      their predicate re-evaluated after the current event (and again after
      each round of same-instant wakeups).  Signalling is cheap and
      idempotent within an event; callers signal unconditionally whenever
      they changed state a predicate might read. *)

  val await : cond list -> (unit -> bool) -> unit
  (** [await conds pred] suspends the calling fiber until [pred ()] holds.
      The predicate is evaluated once immediately, then only when one of
      [conds] has been signalled — so it must depend exclusively on state
      whose writers signal one of [conds] (plus crash/decide state covered
      by the same conditions).  Include [Cond.poll sim] in [conds] for
      predicates that additionally read clock-derived state (oracle
      outputs): those are re-evaluated after every event.  Must be called
      from fiber context; raises [Invalid_argument] on a condition from
      another simulator. *)

  val poll : t -> cond
  (** The built-in condition that subscribes a waiter to every event —
      the legacy re-poll cadence, for predicates with no signal
      discipline. *)
end

(** {1 Process code (effects)} *)

val spawn : t -> pid:Pid.t -> (unit -> unit) -> unit
(** [spawn t ~pid body] starts a fiber for process [pid].  A process may have
    several fibers (the paper's tasks T1, T2, ...).  The fiber starts at the
    current virtual time and is silently discarded if [pid] is already
    crashed. *)

val sleep : float -> unit
(** Suspend the calling fiber for the given virtual duration.  Must be
    called from fiber context. *)

val yield : unit -> unit
(** Reschedule the calling fiber at the same virtual instant (after pending
    events).  Gives the crash scheduler a chance to interleave. *)

(** {1 Scheduling primitives (for substrates such as channels)} *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk after the given virtual delay.  Thunks run even if some
    process crashed meanwhile — guard inside if needed. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Run the thunk at an absolute virtual time (>= now). *)

val ticker : t -> every:float -> unit
(** Install heartbeat events up to the horizon so that poll-subscribed
    predicates depending only on the clock (e.g. pull-based oracles) are
    re-evaluated regularly.  On the arena engine a ticker is a single
    self-re-arming event carrying only its period id — zero allocation
    per tick. *)

(** {2 Batched dispatch (substrate internals)}

    [Net] batches all envelopes bound for one destination mailbox at one
    timestamp into a single event: it registers a dispatcher once, then
    schedules [k_net] events whose integer argument encodes the
    dispatcher id and a row index into the substrate's own flat store.
    The returned slot id identifies the queued event so the substrate can
    recognize it when it fires (and keep appending rows to its batch
    until then).  These hooks are for substrate implementations; protocol
    code never calls them. *)

val register_dispatcher : t -> (int -> unit) -> int
(** Register a dispatch function and return its id.  The function is
    called with the [row] the event was scheduled with.  At most 64
    dispatchers per simulator (the id is packed into 6 bits of the event
    argument); raises [Invalid_argument] beyond that. *)

val schedule_dispatch : t -> time:float -> disp:int -> row:int -> int
(** Queue a dispatch event at an absolute time (>= now, else
    [Invalid_argument]); returns the arena slot id of the queued event. *)

(** {1 Choice-point control (schedule exploration)}

    A {e chooser} takes over the simulator's nondeterminism: substrates
    route message deliveries through {!offer} instead of sampling a delay,
    and whenever the run loop reaches an {e event boundary} — no event left
    at the current instant — it asks the chooser what happens next.  The
    chooser either delivers one of the pending messages, injects a crash
    (quantized to the boundary: it takes effect at the current virtual
    time), or passes, letting virtual time advance to the next queued
    event.  Chosen deliveries execute immediately at the current time, so
    an execution is fully determined by [(params, seed, choice list)] —
    the basis of {!Explore}'s replayable schedules. *)

type pending = private {
  pd_id : int;  (** monotonic offer id; canonical order *)
  pd_src : Pid.t;
  pd_dst : Pid.t;
  pd_fire : unit -> unit;
}
(** A message offered for delivery, waiting for the chooser to pick it. *)

type decision =
  | Deliver of int
      (** Index into the canonical (pd_id-ordered) pending array; clamped
          into range, so any index is safe. *)
  | Inject_crash of Pid.t
      (** Crash the process now ({!crash_now} semantics: counts against
          [t], raises past the bound). *)
  | Pass  (** Let virtual time advance to the next queued event. *)

val set_chooser : t -> (t -> pending array -> decision) -> unit
(** Install the chooser.  From now on {!offer} is legal and the run loop
    consults the chooser at every event boundary with the pending
    deliveries in canonical order (possibly empty). *)

val clear_chooser : t -> unit

val controlled : t -> bool
(** Whether a chooser is installed — substrates test this to decide
    between sampling a delay and calling {!offer}. *)

val offer : t -> src:Pid.t -> dst:Pid.t -> (unit -> unit) -> unit
(** Hand a delivery thunk to the chooser instead of scheduling it.  The
    thunk fires when (and if) the chooser picks it.  Deliveries to a
    process that crashes meanwhile are dropped from the pool (a message to
    a dead process is indistinguishable from a lost one).  Raises
    [Invalid_argument] if no chooser is installed. *)

val pending_deliveries : t -> int

(** {1 Running} *)

type stop_reason = Quiescent | Horizon | Budget | Stopped

type outcome = { reason : stop_reason; events : int; end_time : float }

val run : ?stop_when:(unit -> bool) -> t -> outcome
(** Process events in (time, seq) order until the queue empties
    ([Quiescent]), the horizon or event budget is hit, or [stop_when]
    becomes true (checked after each event).  On return the scheduler
    counters are flushed into {!trace} under [sched.pred_evals],
    [sched.signals], [sched.wakeups] and [sched.events]. *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit

(** {1 Scheduler observability} *)

val pred_evals : t -> int
(** Blocked-predicate evaluations so far (including the immediate check at
    block time). *)

val cond_signals : t -> int
(** {!Cond.signal} calls so far. *)

val wakeups : t -> int
(** Fibers resumed from a blocked wait so far. *)
