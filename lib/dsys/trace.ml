open Setagree_util

type entry =
  | Crash of Pid.t
  | Send of { src : Pid.t; dst : Pid.t; tag : string }
  | Deliver of { src : Pid.t; dst : Pid.t; tag : string }
  | Decide of { pid : Pid.t; value : int; round : int }
  | Fd_change of { pid : Pid.t; kind : string; value : string }
  | Note of { pid : Pid.t option; text : string }

type timed = { time : float; entry : entry }

type t = { mutable log : timed list; counters : (string, int) Hashtbl.t }

let create () = { log = []; counters = Hashtbl.create 32 }
let record t ~time entry = t.log <- { time; entry } :: t.log

let add_to t name k =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (cur + k)

let incr t name = add_to t name 1
let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries t = List.rev t.log

let decisions t =
  List.filter_map
    (fun { time; entry } ->
      match entry with
      | Decide { pid; value; round } -> Some (pid, value, round, time)
      | _ -> None)
    (entries t)

let crashes t =
  List.filter_map
    (fun { time; entry } ->
      match entry with Crash p -> Some (p, time) | _ -> None)
    (entries t)

let find_notes t sub =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  List.filter
    (fun { entry; _ } ->
      match entry with Note { text; _ } -> contains text sub | _ -> false)
    (entries t)

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>trace: %d entries@," (List.length t.log);
  List.iter (fun (k, v) -> Format.fprintf fmt "  %s = %d@," k v) (counters t);
  Format.fprintf fmt "@]"
