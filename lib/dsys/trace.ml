open Setagree_util

type level = Off | Default | Full

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Ok Off
  | "default" -> Ok Default
  | "full" -> Ok Full
  | _ -> Error (Printf.sprintf "unknown trace level %S (off|default|full)" s)

let level_to_string = function
  | Off -> "off"
  | Default -> "default"
  | Full -> "full"

type span =
  | Round of { pid : Pid.t; round : int }
  | Wheel_phase of { pid : Pid.t; wheel : string; pos : int }
  | Query_epoch of { pid : Pid.t; seq : int }
  | Wakeup of { pid : Pid.t }
  | Span of { pid : Pid.t option; cat : string; name : string }

type entry =
  | Crash of Pid.t
  | Send of { src : Pid.t; dst : Pid.t; tag : string }
  | Deliver of { src : Pid.t; dst : Pid.t; tag : string }
  | Decide of { pid : Pid.t; value : int; round : int }
  | Fd_change of { pid : Pid.t; kind : string; value : string }
  | Note of { pid : Pid.t option; text : string }
  | Begin of span
  | End of span

type timed = { time : float; entry : entry }

type t = {
  lvl : level;
  log : timed Vec.t;
  counters : (string, int ref) Hashtbl.t;
}

let create ?(level = Default) () =
  { lvl = level; log = Vec.create (); counters = Hashtbl.create 32 }

let level t = t.lvl
let records_entries t = t.lvl <> Off
let records_full t = t.lvl = Full

let full_only = function
  | Send _ | Deliver _ | Begin (Wakeup _) | End (Wakeup _) -> true
  | _ -> false

let record t ~time entry =
  match t.lvl with
  | Off -> ()
  | Default -> if not (full_only entry) then Vec.push t.log { time; entry }
  | Full -> Vec.push t.log { time; entry }

let begin_span t ~time sp = record t ~time (Begin sp)
let end_span t ~time sp = record t ~time (End sp)

(* Counters live behind int refs so hot paths can hold a pre-resolved
   handle (one hash at registration, O(1) bumps forever after) while the
   name-keyed API keeps working on the same cells. *)

type counter = int ref

let counter_handle t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let bump (r : counter) k = r := !r + k
let add_to t name k = bump (counter_handle t name) k
let incr t name = add_to t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let length t = Vec.length t.log
let entries t = Vec.to_list t.log
let iter f t = Vec.iter f t.log

(* Incremental cursors: the log is append-only, so a cursor is just the
   index of the first unseen entry.  Tailing is read-only — it can no
   more perturb an execution than any other trace read. *)

type cursor = { mutable pos : int }

let cursor ?(from = 0) () = { pos = max 0 from }
let cursor_pos cur = cur.pos

let pending t cur = max 0 (Vec.length t.log - cur.pos)

let tail t cur =
  let fresh = Vec.list_from t.log ~cursor:cur.pos in
  cur.pos <- Vec.length t.log;
  fresh

let decisions t =
  Vec.fold_left
    (fun acc { time; entry } ->
      match entry with
      | Decide { pid; value; round } -> (pid, value, round, time) :: acc
      | _ -> acc)
    [] t.log
  |> List.rev

let crashes t =
  Vec.fold_left
    (fun acc { time; entry } ->
      match entry with Crash p -> (p, time) :: acc | _ -> acc)
    [] t.log
  |> List.rev

let find_notes t sub =
  Vec.fold_left
    (fun acc ({ entry; _ } as e) ->
      match entry with
      | Note { text; _ } when Strutil.contains text ~sub -> e :: acc
      | _ -> acc)
    [] t.log
  |> List.rev

(* -- spans ------------------------------------------------------------ *)

let span_pid = function
  | Round { pid; _ } | Wheel_phase { pid; _ } | Query_epoch { pid; _ }
  | Wakeup { pid } ->
      Some pid
  | Span { pid; _ } -> pid

let span_cat = function
  | Round _ -> "round"
  | Wheel_phase { wheel; _ } -> "wheel." ^ wheel
  | Query_epoch _ -> "query"
  | Wakeup _ -> "sched"
  | Span { cat; _ } -> cat

let span_name = function
  | Round { round; _ } -> Printf.sprintf "round %d" round
  | Wheel_phase { wheel; pos; _ } -> Printf.sprintf "%s@%d" wheel pos
  | Query_epoch { seq; _ } -> Printf.sprintf "inquiry %d" seq
  | Wakeup _ -> "wakeup"
  | Span { name; _ } -> name

(* One track per (process, lane): spans of different lanes on the same
   process may overlap freely; within a track they must nest. *)
let lane = function
  | Round _ -> 0
  | Wheel_phase { wheel; _ } -> if wheel = "upper" then 2 else 1
  | Query_epoch _ -> 3
  | Wakeup _ -> 4
  | Span _ -> 5

let span_track sp =
  let base = match span_pid sp with None -> 0 | Some p -> (p + 1) * 8 in
  base + lane sp

(* Forward pass with one LIFO stack per track. *)
let scan_spans t =
  let stacks : (int, (int * span * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let completed = ref [] in
  let ok = ref true in
  let idx = ref 0 in
  Vec.iter
    (fun { time; entry } ->
      (match entry with
      | Begin sp ->
          let track = span_track sp in
          let stack =
            match Hashtbl.find_opt stacks track with
            | Some s -> s
            | None ->
                let s = ref [] in
                Hashtbl.replace stacks track s;
                s
          in
          stack := (!idx, sp, time) :: !stack
      | End sp -> (
          let track = span_track sp in
          match Hashtbl.find_opt stacks track with
          | Some ({ contents = (i, sp', t0) :: rest } as stack) when sp' = sp
            ->
              stack := rest;
              completed := (i, sp, t0, time) :: !completed
          | _ -> ok := false)
      | _ -> ());
      idx := !idx + 1)
    t.log;
  let opened =
    Hashtbl.fold
      (fun _ stack acc ->
        List.fold_left (fun acc (i, sp, t0) -> (i, sp, t0) :: acc) acc !stack)
      stacks []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let completed =
    List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) !completed
  in
  (completed, opened, !ok)

let spans t =
  let completed, _, _ = scan_spans t in
  List.map (fun (_, sp, t0, t1) -> (sp, t0, t1)) completed

let open_spans t =
  let _, opened, _ = scan_spans t in
  List.map (fun (_, sp, t0) -> (sp, t0)) opened

let nesting_ok t =
  let _, _, ok = scan_spans t in
  ok

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>trace: %d entries, %d spans (%d open)@,"
    (Vec.length t.log)
    (List.length (spans t))
    (List.length (open_spans t));
  List.iter (fun (k, v) -> Format.fprintf fmt "  %s = %d@," k v) (counters t);
  Format.fprintf fmt "@]"
