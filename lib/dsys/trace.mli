(** Run traces: everything a checker, exporter or experiment needs to know
    about a finished simulation.

    A trace is an append-only [Util.Vec] log of timestamped entries plus a
    set of named counters (message counts per protocol tag, rounds
    executed, ...).  The failure-detector property checkers
    ({!Setagree_fd.Check}) and the agreement-invariant checkers consume
    traces, so algorithms stay free of any checking logic.

    On top of the point entries the trace records {e spans}: typed
    begin/end pairs for protocol rounds, wheels lower/upper ring phases,
    FD query epochs and scheduler wakeups.  Spans live on {e tracks}
    (one per process × span lane) and must nest per track; the exporters
    ({!Export}) turn them into JSONL or Chrome [trace_event] timelines.

    Recording is gated by a {!level}:
    - [Off]: no entries or spans at all (counters still work — they are
      load-bearing for tests and scheduler stats);
    - [Default]: protocol-level entries and spans (rounds, phases, query
      epochs, decisions, crashes, FD changes, notes);
    - [Full]: additionally per-message [Send]/[Deliver] entries and
      scheduler [Wakeup] spans.

    Instrumentation only ever {e writes} to the trace — it never creates
    simulator events or consumes RNG draws, so enabling or disabling it
    cannot perturb an execution. *)

type level = Off | Default | Full

val level_of_string : string -> (level, string) result
(** ["off" | "default" | "full"] (case-insensitive). *)

val level_to_string : level -> string

type span =
  | Round of { pid : Setagree_util.Pid.t; round : int }
      (** One protocol round (kset Phase1+Phase2, consensus_s round). *)
  | Wheel_phase of { pid : Setagree_util.Pid.t; wheel : string; pos : int }
      (** Residency at ring position [pos] of the ["lower"]/["upper"] wheel. *)
  | Query_epoch of { pid : Setagree_util.Pid.t; seq : int }
      (** One upper-wheels inquiry round-trip (◇φ_y query epoch). *)
  | Wakeup of { pid : Setagree_util.Pid.t }
      (** Scheduler resuming a fiber ([Full] level only). *)
  | Span of { pid : Setagree_util.Pid.t option; cat : string; name : string }
      (** Escape hatch for ad-hoc phases. *)

type entry =
  | Crash of Setagree_util.Pid.t
  | Send of { src : Setagree_util.Pid.t; dst : Setagree_util.Pid.t; tag : string }
  | Deliver of { src : Setagree_util.Pid.t; dst : Setagree_util.Pid.t; tag : string }
  | Decide of { pid : Setagree_util.Pid.t; value : int; round : int }
  | Fd_change of { pid : Setagree_util.Pid.t; kind : string; value : string }
  | Note of { pid : Setagree_util.Pid.t option; text : string }
  | Begin of span
  | End of span

type timed = { time : float; entry : entry }

type t

val create : ?level:level -> unit -> t
(** [level] defaults to [Default]. *)

val level : t -> level

val records_entries : t -> bool
(** [level t <> Off] — hot paths check this before building entries. *)

val records_full : t -> bool
(** [level t = Full]. *)

val record : t -> time:float -> entry -> unit
(** Append, subject to the level gate: drops everything at [Off], and
    drops [Send]/[Deliver]/[Wakeup]-span entries below [Full]. *)

val begin_span : t -> time:float -> span -> unit
val end_span : t -> time:float -> span -> unit
(** [end_span] must be passed a span equal to the matching
    [begin_span]'s (spans are identified by value, not by handle). *)

val incr : t -> string -> unit
(** Bump the named counter (level-independent). *)

val add_to : t -> string -> int -> unit

type counter
(** Pre-resolved counter handle: the name is hashed once at
    {!counter_handle} time; {!bump}s are O(1) with no string work.
    Handles alias the named counter, so {!counter}/{!counters} read the
    same cell regardless of how it was bumped. *)

val counter_handle : t -> string -> counter
(** Register (or look up) the named counter and return its handle. *)

val bump : counter -> int -> unit

val counter : t -> string -> int
(** 0 when never bumped. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val length : t -> int
(** Number of recorded entries. *)

val entries : t -> timed list
(** In chronological (recording) order. *)

val iter : (timed -> unit) -> t -> unit
(** Single forward pass, no list materialization. *)

(** {1 Incremental tailing}

    The log is append-only, so a cursor is an index into it: {!tail}
    returns everything recorded since the last call and advances.  This
    is the read side of live trace streaming ({!Export.Stream}) — pure
    reads, so tailing a running trace cannot perturb the execution. *)

type cursor

val cursor : ?from:int -> unit -> cursor
(** A fresh cursor, positioned at entry [from] (default 0 — the whole
    log is "unseen"). *)

val cursor_pos : cursor -> int
(** Index of the first unseen entry. *)

val pending : t -> cursor -> int
(** Entries recorded but not yet consumed through this cursor. *)

val tail : t -> cursor -> timed list
(** The unseen entries in recording order; advances the cursor past
    them.  Returns [[]] when nothing new was recorded. *)

val decisions : t -> (Setagree_util.Pid.t * int * int * float) list
(** [(pid, value, round, time)] for every [Decide] entry, in order. *)

val crashes : t -> (Setagree_util.Pid.t * float) list

val find_notes : t -> string -> timed list
(** Notes whose text contains the given substring (byte-level,
    {!Setagree_util.Strutil.contains}). *)

(** {1 Spans} *)

val span_pid : span -> Setagree_util.Pid.t option
val span_cat : span -> string
val span_name : span -> string

val span_track : span -> int
(** Stable integer track id ([pid] × lane); spans nest per track, and
    the Chrome exporter maps tracks to [tid]s. *)

val spans : t -> (span * float * float) list
(** Completed [(span, t_begin, t_end)] pairs, in begin order.  Ends
    without a matching begin are skipped (see {!nesting_ok}). *)

val open_spans : t -> (span * float) list
(** Begun but never ended (e.g. the process crashed mid-round). *)

val nesting_ok : t -> bool
(** True iff on every track each [End] exactly matches the most recent
    un-ended [Begin] (strict LIFO per track).  Spans still open at the
    end of the trace do not violate nesting. *)

val pp_summary : Format.formatter -> t -> unit
