(** Run traces: everything a checker or an experiment needs to know about a
    finished simulation.

    A trace is an append-only log of timestamped entries plus a set of named
    counters (message counts per protocol tag, rounds executed, ...).  The
    failure-detector property checkers ({!Setagree_fd.Check}) and the
    agreement-invariant checkers consume traces, so algorithms stay free of
    any checking logic. *)

type entry =
  | Crash of Setagree_util.Pid.t
  | Send of { src : Setagree_util.Pid.t; dst : Setagree_util.Pid.t; tag : string }
  | Deliver of { src : Setagree_util.Pid.t; dst : Setagree_util.Pid.t; tag : string }
  | Decide of { pid : Setagree_util.Pid.t; value : int; round : int }
  | Fd_change of { pid : Setagree_util.Pid.t; kind : string; value : string }
  | Note of { pid : Setagree_util.Pid.t option; text : string }

type timed = { time : float; entry : entry }

type t

val create : unit -> t

val record : t -> time:float -> entry -> unit

val incr : t -> string -> unit
(** Bump the named counter. *)

val add_to : t -> string -> int -> unit

val counter : t -> string -> int
(** 0 when never bumped. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val entries : t -> timed list
(** In chronological (recording) order. *)

val decisions : t -> (Setagree_util.Pid.t * int * int * float) list
(** [(pid, value, round, time)] for every [Decide] entry, in order. *)

val crashes : t -> (Setagree_util.Pid.t * float) list

val find_notes : t -> string -> timed list
(** Notes whose text contains the given substring. *)

val pp_summary : Format.formatter -> t -> unit
