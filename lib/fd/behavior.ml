type t = { gst : float; noise : float; slander : float; epoch : float }

let make ?(noise = 0.0) ?(slander = 0.0) ?(epoch = 1.0) ~gst () =
  { gst; noise; slander; epoch }

let calm ~gst = make ~gst ()
let stormy ~gst = make ~noise:0.3 ~slander:0.2 ~epoch:1.0 ~gst ()
let perfect = calm ~gst:0.0
