type strategy = Random | Rotating | Slander_all

type t = {
  gst : float;
  noise : float;
  slander : float;
  epoch : float;
  strategy : strategy;
}

let make ?(noise = 0.0) ?(slander = 0.0) ?(epoch = 1.0) ?(strategy = Random)
    ~gst () =
  { gst; noise; slander; epoch; strategy }

let calm ~gst = make ~gst ()
let stormy ~gst = make ~noise:0.3 ~slander:0.2 ~epoch:1.0 ~gst ()
let perfect = calm ~gst:0.0

(* Interpret a [Faults.t] adversary name.  [gst] is the nominal
   stabilization time of the run's params; strategies may stretch it
   (that is their attack) but — except for the deliberately illegal
   "never" — always keep it finite, staying inside the ◇-class
   contracts. *)
let of_adversary name ~gst =
  let g = if gst > 0.0 then gst else 50.0 in
  match name with
  | "" -> if gst <= 0.0 then perfect else stormy ~gst
  | "calm" -> calm ~gst:(if gst > 0.0 then gst else 0.0)
  | "stormy" -> stormy ~gst:g
  | "rotating" -> make ~noise:1.0 ~slander:0.2 ~strategy:Rotating ~gst:g ()
  | "slander" -> make ~noise:0.5 ~slander:1.0 ~strategy:Slander_all ~gst:g ()
  | "late" -> stormy ~gst:(3.0 *. g)
  | "never" -> make ~noise:0.5 ~slander:0.3 ~strategy:Rotating ~gst:infinity ()
  | _ -> invalid_arg (Printf.sprintf "Behavior.of_adversary: unknown %S" name)
