(** Adversarial behaviour of an oracle failure detector.

    A failure-detector class constrains histories, mostly {e eventually};
    before the (unknown to the algorithms) global stabilization time [gst]
    the oracle is free to lie, and even afterwards the classes leave slack
    (e.g. ◇S_x only protects one process within one set of x processes —
    every other correct process may be slandered forever).  The behaviour
    record programs how much of that freedom the oracle exercises.  All
    draws are deterministic functions of (seed, reader, subject, epoch), so
    runs replay exactly. *)

type strategy =
  | Random
      (** Independent lies per (reader, subject, epoch) draw — the
          historical behaviour. *)
  | Rotating
      (** Pre-[gst], trust rotates round-robin: each reader trusts exactly
          one process, a different one each epoch and a different one per
          reader — Ω readers see churning disagreeing leaders, suspectors
          suspect everyone but the rotating survivor.  Post-[gst] it
          degrades to {!Random} slander.  Legal for every ◇ class (the
          pre-[gst] output is unconstrained). *)
  | Slander_all
      (** Exercises the class's full post-[gst] slack: suspect {e every}
          correct process the class does not explicitly protect (for
          ◇S_x/S_x, everyone but the protected witness as seen from
          scope members), and pre-[gst] suspect or deny everything. *)

type t = {
  gst : float;
      (** Time after which eventual properties hold.  Perpetual properties
          hold from 0 regardless. *)
  noise : float;
      (** Pre-[gst] lie probability (per reader/subject/epoch draw;
          {!Random} strategy only). *)
  slander : float;
      (** Post-[gst] probability of (class-permitted) false suspicion of an
          unprotected correct process, redrawn each epoch. *)
  epoch : float;  (** Refresh period of the noise draws. *)
  strategy : strategy;
}

val calm : gst:float -> t
(** No noise, no slander: the friendliest member of each class. *)

val stormy : gst:float -> t
(** noise 0.3, slander 0.2, epoch 1.0 — a hostile but legal adversary. *)

val make :
  ?noise:float ->
  ?slander:float ->
  ?epoch:float ->
  ?strategy:strategy ->
  gst:float ->
  unit ->
  t

val perfect : t
(** [calm ~gst:0.] — behaves perfectly from the very beginning (the
    "perfect" oracle of the paper's §3.2 zero-degradation discussion). *)

val of_adversary : string -> gst:float -> t
(** Interpret a [Dsys.Faults] adversary name against the run's nominal
    [gst]: [""] gives the historical default ({!perfect} when [gst <= 0],
    {!stormy} otherwise); ["calm"]/["stormy"] force those; ["rotating"]
    and ["slander"] select the corresponding strategies at full noise;
    ["late"] stretches stabilization to [3 * gst]; ["never"] sets
    [gst = infinity] — deliberately illegal (no eventual class admits
    it), kept for negative testing.  @raise Invalid_argument on unknown
    names (callers validate via [Faults.legal] first). *)
