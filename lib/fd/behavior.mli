(** Adversarial behaviour of an oracle failure detector.

    A failure-detector class constrains histories, mostly {e eventually};
    before the (unknown to the algorithms) global stabilization time [gst]
    the oracle is free to lie, and even afterwards the classes leave slack
    (e.g. ◇S_x only protects one process within one set of x processes —
    every other correct process may be slandered forever).  The behaviour
    record programs how much of that freedom the oracle exercises.  All
    draws are deterministic functions of (seed, reader, subject, epoch), so
    runs replay exactly. *)

type t = {
  gst : float;
      (** Time after which eventual properties hold.  Perpetual properties
          hold from 0 regardless. *)
  noise : float;
      (** Pre-[gst] lie probability (per reader/subject/epoch draw). *)
  slander : float;
      (** Post-[gst] probability of (class-permitted) false suspicion of an
          unprotected correct process, redrawn each epoch. *)
  epoch : float;  (** Refresh period of the noise draws. *)
}

val calm : gst:float -> t
(** No noise, no slander: the friendliest member of each class. *)

val stormy : gst:float -> t
(** noise 0.3, slander 0.2, epoch 1.0 — a hostile but legal adversary. *)

val make : ?noise:float -> ?slander:float -> ?epoch:float -> gst:float -> unit -> t

val perfect : t
(** [calm ~gst:0.] — behaves perfectly from the very beginning (the
    "perfect" oracle of the paper's §3.2 zero-degradation discussion). *)
