open Setagree_util
open Setagree_dsys

type verdict = { ok : bool; notes : string list }

let verdict_ok v = v.ok
let fail fmt = Format.kasprintf (fun s -> { ok = false; notes = [ s ] }) fmt
let pass = { ok = true; notes = [] }

let pp_verdict fmt v =
  if v.ok then Format.fprintf fmt "OK"
  else Format.fprintf fmt "FAIL: %s" (String.concat "; " v.notes)

let all_of vs =
  {
    ok = List.for_all (fun v -> v.ok) vs;
    notes = List.concat_map (fun v -> v.notes) vs;
  }

let omega_z sim ~z ~deadline mon =
  let correct = Sim.correct_set sim in
  let finals =
    Pidset.fold
      (fun i acc ->
        match Monitor.final mon i with
        | None -> `Missing i :: acc
        | Some v -> `Final (i, v) :: acc)
      correct []
  in
  let missing = List.filter_map (function `Missing i -> Some i | _ -> None) finals in
  if missing <> [] then
    fail "omega_z: no recorded output for correct %s"
      (String.concat "," (List.map Pid.to_string missing))
  else begin
    let vals = List.filter_map (function `Final (i, v) -> Some (i, v) | _ -> None) finals in
    match vals with
    | [] -> fail "omega_z: no correct process"
    | (i0, v0) :: rest ->
        let unstable =
          Pidset.fold
            (fun i acc ->
              match Monitor.last_change mon i with
              | Some tm when tm > deadline -> (i, tm) :: acc
              | _ -> acc)
            correct []
        in
        if unstable <> [] then
          fail "omega_z: output still changing after deadline %.1f at %s" deadline
            (String.concat ","
               (List.map (fun (i, tm) -> Printf.sprintf "%s@%.1f" (Pid.to_string i) tm) unstable))
        else if List.exists (fun (_, v) -> not (Pidset.equal v v0)) rest then
          fail "omega_z: correct processes disagree on the final set (%s has %s)"
            (Pid.to_string i0) (Pidset.to_string v0)
        else if Pidset.cardinal v0 > z then
          fail "omega_z: final set %s has size %d > z = %d" (Pidset.to_string v0)
            (Pidset.cardinal v0) z
        else if Pidset.is_empty (Pidset.inter v0 correct) then
          fail "omega_z: final set %s contains no correct process" (Pidset.to_string v0)
        else pass
  end

let strong_completeness sim ~deadline mon =
  let correct = Sim.correct_set sim in
  let crashed_final = Pidset.diff (Pidset.full ~n:(Sim.n sim)) (Sim.alive_at sim deadline) in
  (* Every value in effect after the deadline must contain every process
     crashed by the deadline.  (Processes crashing after the deadline get no
     completeness obligation on this run.) *)
  let bad =
    Pidset.fold
      (fun i acc ->
        let vs = Monitor.values_after mon i ~from:deadline in
        if vs = [] then (i, "no samples") :: acc
        else if List.for_all (fun v -> Pidset.subset crashed_final v) vs then acc
        else (i, "missing crashed processes") :: acc)
      correct []
  in
  match bad with
  | [] -> pass
  | (i, why) :: _ ->
      fail "completeness: %s %s after deadline %.1f (crashed by then: %s)"
        (Pid.to_string i) why deadline (Pidset.to_string crashed_final)

let limited_scope_accuracy sim ~x ~from mon =
  let n = Sim.n sim in
  let correct = Sim.correct_set sim in
  (* protectors l = processes that never suspect l (while alive) from [from]
     on.  A process crashed by [from] suspects nobody afterwards ("a crashed
     process suspects no process"), so it protects unconditionally; for one
     crashing later, its recorded values are all taken while alive and
     count. *)
  let protects i l =
    match Sim.crash_time sim i with
    | Some ct when ct <= from -> true
    | _ ->
        let vs = Monitor.values_after mon i ~from in
        List.for_all (fun v -> not (Pidset.mem l v)) vs
  in
  let candidates =
    Pidset.fold
      (fun l acc ->
        let protectors = List.filter (fun i -> protects i l) (Pid.all ~n) in
        if List.mem l protectors && List.length protectors >= x then (l, protectors) :: acc
        else acc)
      correct []
  in
  match candidates with
  | (_l, _) :: _ -> pass
  | [] ->
      fail
        "limited-scope accuracy: no correct process is unsuspected from %.1f by any %d \
         processes (incl. itself)"
        from x

let es_x sim ~x ~deadline mon =
  all_of
    [ strong_completeness sim ~deadline mon; limited_scope_accuracy sim ~x ~from:deadline mon ]

let s_x sim ~x ~deadline mon =
  all_of
    [ strong_completeness sim ~deadline mon; limited_scope_accuracy sim ~x ~from:0.0 mon ]

let phi_y sim ~y ~eventual ~deadline (log : Oracle.query_log) =
  let t = Sim.t_bound sim in
  let events = List.rev !log in
  let problems = ref [] in
  let meaningful = ref 0 in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (e : Oracle.query_event) ->
      let c = Pidset.cardinal e.q_set in
      let crashed_then = Pidset.diff (Pidset.full ~n:(Sim.n sim)) (Sim.alive_at sim e.q_time) in
      if c <= t - y then begin
        if not e.q_result then
          add "triviality: |X|=%d <= t-y=%d answered false at %.1f" c (t - y) e.q_time
      end
      else if c > t then begin
        if e.q_result then add "triviality: |X|=%d > t=%d answered true at %.1f" c t e.q_time
      end
      else begin
        incr meaningful;
        let all_crashed = Pidset.subset e.q_set crashed_then in
        if e.q_result && not all_crashed && ((not eventual) || e.q_time >= deadline) then
          add "safety: query %s true at %.1f with a live member" (Pidset.to_string e.q_set)
            e.q_time;
        if (not e.q_result) && all_crashed && e.q_time >= deadline then
          add "liveness: dead region %s denied at %.1f (after deadline %.1f)"
            (Pidset.to_string e.q_set) e.q_time deadline
      end)
    events;
  if !problems <> [] then { ok = false; notes = List.rev !problems }
  else if events <> [] && !meaningful = 0 then
    { ok = true; notes = [ "phi_y: no meaningful-window query was made" ] }
  else pass

(* ---- history-based checkers (real-runtime) ----

   The simulator-coupled checkers above read ground truth from [Sim] and
   histories from [Monitor].  A runtime deployment has neither: ground
   truth is the orchestrator's crash record and histories are the sampled
   FD outputs each node brought home.  These variants take both as plain
   data, so the same class contracts judge an extracted (accrual)
   detector's recorded history. *)

type ground = {
  g_n : int;
  g_correct : Pidset.t;
  g_crashes : (Pid.t * float) list;
  g_end : float;
}

let crashed_by g time =
  List.fold_left
    (fun acc (p, tm) -> if tm <= time then Pidset.add p acc else acc)
    Pidset.empty g.g_crashes

let hist_last_change (s : (float * Pidset.t) list) =
  let rec go prev last = function
    | [] -> last
    | (tm, v) :: rest ->
        let last =
          match prev with
          | Some pv when Pidset.equal pv v -> last
          | Some _ -> Some tm
          | None -> last
        in
        go (Some v) last rest
  in
  go None None s

let hist_final s = match List.rev s with [] -> None | (_, v) :: _ -> Some v

let omega_z_history g ~z ~deadline hist =
  let obs = List.filter (fun (i, _) -> Pidset.mem i g.g_correct) hist in
  let missing =
    Pidset.filter
      (fun i ->
        match List.assoc_opt i obs with
        | None | Some [] -> true
        | Some _ -> false)
      g.g_correct
  in
  if not (Pidset.is_empty missing) then
    fail "omega_z: no recorded output for correct %s" (Pidset.to_string missing)
  else begin
    let finals =
      List.filter_map
        (fun (i, s) -> Option.map (fun v -> (i, v)) (hist_final s))
        obs
    in
    match finals with
    | [] -> fail "omega_z: no correct process"
    | (i0, v0) :: rest ->
        let unstable =
          List.filter_map
            (fun (i, s) ->
              match hist_last_change s with
              | Some tm when tm > deadline -> Some (i, tm)
              | _ -> None)
            obs
        in
        if unstable <> [] then
          fail "omega_z: output still changing after deadline %.2f at %s" deadline
            (String.concat ","
               (List.map
                  (fun (i, tm) -> Printf.sprintf "%s@%.2f" (Pid.to_string i) tm)
                  unstable))
        else if List.exists (fun (_, v) -> not (Pidset.equal v v0)) rest then
          fail "omega_z: correct processes disagree on the final set (%s has %s)"
            (Pid.to_string i0) (Pidset.to_string v0)
        else if Pidset.cardinal v0 > z then
          fail "omega_z: final set %s has size %d > z = %d" (Pidset.to_string v0)
            (Pidset.cardinal v0) z
        else if Pidset.is_empty (Pidset.inter v0 g.g_correct) then
          fail "omega_z: final set %s contains no correct process"
            (Pidset.to_string v0)
        else pass
  end

let strong_completeness_history g ~deadline hist =
  let crashed_final = crashed_by g deadline in
  let bad =
    Pidset.fold
      (fun i acc ->
        match List.assoc_opt i hist with
        | None | Some [] -> (i, "no samples") :: acc
        | Some s ->
            let after = List.filter (fun (tm, _) -> tm >= deadline) s in
            if after = [] then (i, "no samples after deadline") :: acc
            else if
              List.for_all (fun (_, v) -> Pidset.subset crashed_final v) after
            then acc
            else (i, "missing crashed processes") :: acc)
      g.g_correct []
  in
  match bad with
  | [] -> pass
  | (i, why) :: _ ->
      fail "completeness: %s %s after deadline %.2f (crashed by then: %s)"
        (Pid.to_string i) why deadline
        (Pidset.to_string crashed_final)

let k_set_agreement sim ~k ~proposals ~decisions =
  let correct = Sim.correct_set sim in
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let proposed = Array.to_list proposals in
  let decided_pids = Hashtbl.create 16 in
  let values = Hashtbl.create 16 in
  List.iter
    (fun (pid, v, _round, _time) ->
      if Hashtbl.mem decided_pids pid then add "%s decided twice" (Pid.to_string pid);
      Hashtbl.replace decided_pids pid ();
      Hashtbl.replace values v ();
      if not (List.mem v proposed) then
        add "validity: %s decided %d, which nobody proposed" (Pid.to_string pid) v)
    decisions;
  let distinct = Hashtbl.length values in
  if distinct > k then add "agreement: %d distinct values decided, k = %d" distinct k;
  Pidset.iter
    (fun i ->
      if not (Hashtbl.mem decided_pids i) then
        add "termination: correct %s never decided" (Pid.to_string i))
    correct;
  if !problems = [] then pass else { ok = false; notes = List.rev !problems }
