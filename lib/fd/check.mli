(** Finite-trace class-membership checkers.

    Each checker decides whether a recorded history satisfies a class's
    properties {e on this run}, reading "eventually" as "from [deadline]
    on", where [deadline] should leave a comfortable margin before the end
    of the run (a property that only starts holding in the last instant is
    reported as a failure — stabilization must be demonstrated, not
    vacuous).

    The checkers are exact for perpetual properties and conservative for
    eventual ones: acceptance implies the finite history is extendable to a
    member of the class; a rejection on a healthy but slow run is possible
    and should be addressed by lengthening the run, not by shrinking the
    margin. *)

open Setagree_util
open Setagree_dsys

type verdict = { ok : bool; notes : string list }

val verdict_ok : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit
val all_of : verdict list -> verdict

(** {1 Leader (Ω_z)} *)

val omega_z : Sim.t -> z:int -> deadline:float -> Monitor.t -> verdict
(** Eventual multiple leadership: from [deadline] on, all correct processes
    output the same constant set, of size <= z, containing a correct
    process. *)

(** {1 Suspectors} *)

val strong_completeness : Sim.t -> deadline:float -> Monitor.t -> verdict
(** From [deadline] on, every correct process suspects every crashed one. *)

val limited_scope_accuracy :
  Sim.t -> x:int -> from:float -> Monitor.t -> verdict
(** There is a correct process l and a set Q with l ∈ Q, |Q| = x, such that
    no member of Q suspects l at any instant >= [from] while alive.
    [from = 0.] checks the perpetual (S_x) version. *)

val es_x : Sim.t -> x:int -> deadline:float -> Monitor.t -> verdict
(** ◇S_x = completeness + accuracy from [deadline]. *)

val s_x : Sim.t -> x:int -> deadline:float -> Monitor.t -> verdict
(** S_x = completeness from [deadline] + accuracy from 0. *)

(** {1 Query classes} *)

val phi_y :
  Sim.t -> y:int -> eventual:bool -> deadline:float -> Oracle.query_log -> verdict
(** Triviality always; safety perpetual ([eventual = false]) or from
    [deadline]; liveness from [deadline] (a dead region queried after the
    deadline must be reported dead).  Vacuously true on an empty log except
    that we flag logs with no meaningful-window query. *)

(** {1 History-based checkers (real-runtime)}

    The checkers above read ground truth from the simulator and histories
    from {!Monitor}.  A runtime deployment ([Setagree_rt]) has neither:
    these variants take the run's ground truth as a plain {!ground}
    record and the FD-output histories as per-observer chronological
    [(time, value)] sample lists — so the same class contracts judge the
    history an extracted (accrual) detector actually produced. *)

type ground = {
  g_n : int;  (** universe size *)
  g_correct : Pidset.t;  (** processes that never crashed in the run *)
  g_crashes : (Pid.t * float) list;  (** (pid, crash time) ground truth *)
  g_end : float;  (** end of the observation window *)
}

val omega_z_history :
  ground ->
  z:int ->
  deadline:float ->
  (Pid.t * (float * Pidset.t) list) list ->
  verdict
(** Ω_z on recorded trusted-set histories: from [deadline] on, every
    correct observer's samples are constant, all agree, the common set
    has size <= z and contains a correct process.  Observers not in
    [g_correct] are ignored; a correct observer with no samples fails. *)

val strong_completeness_history :
  ground ->
  deadline:float ->
  (Pid.t * (float * Pidset.t) list) list ->
  verdict
(** Strong completeness on recorded suspected-set histories: every
    sample a correct observer took at or after [deadline] contains every
    process crashed by [deadline]. *)

(** {1 Agreement} *)

val k_set_agreement :
  Sim.t ->
  k:int ->
  proposals:int array ->
  decisions:(Pid.t * int * int * float) list ->
  verdict
(** Validity (every decided value was proposed), agreement (at most [k]
    distinct decided values), termination (every correct process decided),
    and single-decision (no process decides twice). *)
