open Setagree_util

type suspector = { suspected : Pid.t -> Pidset.t }
type leader = { trusted : Pid.t -> Pidset.t }
type querier = { query : Pid.t -> Pidset.t -> bool }

let no_suspicion = { suspected = (fun _ -> Pidset.empty) }
let no_query_info ~t = { query = (fun _ x -> Pidset.cardinal x <= t) }
