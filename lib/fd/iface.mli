(** Failure-detector interfaces.

    A failure detector is, operationally, just what a process can read from
    its local module (paper §2.2).  Three read shapes cover every class in
    the paper:

    - {!suspector}: a set [suspected_i] — classes S_x, ◇S_x, P, ◇P, S, ◇S;
    - {!leader}: a set [trusted_i] of at most z processes — classes Ω_z;
    - {!querier}: a primitive [query_i(X)] returning a boolean — classes
      φ_y, ◇φ_y, Ψ_y.

    Oracles ({!Oracle}) and transformation outputs ({!Setagree_core})
    implement the same interfaces, so an algorithm cannot tell whether its
    detector is primitive or built. *)

open Setagree_util

type suspector = { suspected : Pid.t -> Pidset.t }
(** [suspected i] read by process [i] at the current virtual time. *)

type leader = { trusted : Pid.t -> Pidset.t }
(** [trusted i] read by process [i]; cardinality at most z for Ω_z. *)

type querier = { query : Pid.t -> Pidset.t -> bool }
(** [query i x]: process [i] queries region [x]. *)

val no_suspicion : suspector
(** The useless suspector that never suspects anyone (what S_1 / ◇S_1 may
    degenerate to). *)

val no_query_info : t:int -> querier
(** The useless querier of φ_0.  With y = 0 the meaningful window
    [t - y < |X| <= t] is empty, so triviality answers everything:
    [query x] is [cardinal x <= t]. *)
