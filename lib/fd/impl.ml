open Setagree_util
open Setagree_dsys
open Setagree_net

type t = { sim : Sim.t; net : unit Net.t; timeouts : Timeout.t }

let suspects t i j =
  j <> i
  && (not (Sim.is_crashed t.sim i))
  && Timeout.expired t.timeouts i j ~now:(Sim.now t.sim)

let install sim ?(period = 1.0) ?(initial_timeout = 3.0) ?(backoff = 1.5)
    ?(timeout_cap = 60.0) ?(timeout_jitter = 0.1)
    ?(delay = Delay.Psync { gst = 30.0; bound = 2.0; pre_spread = 25.0 }) () =
  let n = Sim.n sim in
  let net = Net.create sim ~tag:"impl.hb" ~delay ~retain:false () in
  let t =
    {
      sim;
      net;
      timeouts =
        Timeout.create ~initial:initial_timeout ~factor:backoff
          ~cap:timeout_cap ~jitter:timeout_jitter
          ~rng:(Rng.split_named (Sim.rng sim) "impl:timeout")
          ~n ();
    }
  in
  Net.on_deliver net (fun (e : unit Net.envelope) ->
      (* [Timeout.heard] backs the threshold off when the heartbeat
         disproves a suspicion in effect — false suspicions (a stall, a
         slow pre-GST link) happen finitely often once the network's
         bound holds, so the thresholds stabilize below the cap. *)
      Timeout.heard t.timeouts e.dst e.src ~now:(Sim.now sim));
  for i = 0 to n - 1 do
    Sim.spawn sim ~pid:i (fun () ->
        while true do
          Net.broadcast net ~src:i ();
          Sim.sleep period
        done)
  done;
  t

let suspector t =
  let n = Sim.n t.sim in
  {
    Iface.suspected =
      (fun i ->
        let s = ref Pidset.empty in
        for j = 0 to n - 1 do
          if suspects t i j then s := Pidset.add j !s
        done;
        !s);
  }

let omega t ~z =
  let n = Sim.n t.sim in
  if z < 1 || z > n then invalid_arg "Impl.omega: bad z";
  {
    Iface.trusted =
      (fun i ->
        let s = ref Pidset.empty in
        let j = ref 0 in
        while Pidset.cardinal !s < z && !j < n do
          if not (suspects t i !j) then s := Pidset.add !j !s;
          incr j
        done;
        (* Degenerate corner: everyone looks suspect (possible only very
           early); fall back to self. *)
        if Pidset.is_empty !s then Pidset.singleton i else !s);
  }

let querier t ~y =
  let tb = Sim.t_bound t.sim in
  if y < 0 || y > tb then invalid_arg "Impl.querier: bad y";
  let log : Oracle.query_log = ref [] in
  let query i x =
    let c = Pidset.cardinal x in
    let result =
      if c <= tb - y then true
      else if c > tb then false
      else Pidset.for_all (fun j -> suspects t i j) x
    in
    log :=
      { Oracle.q_time = Sim.now t.sim; q_pid = i; q_set = x; q_result = result } :: !log;
    result
  in
  ({ Iface.query }, log)

let timeout_of t i j = Timeout.current t.timeouts i j
let timeouts t = t.timeouts
let heartbeats_sent t = Net.sent_count t.net
