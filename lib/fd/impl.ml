open Setagree_util
open Setagree_dsys
open Setagree_net

type t = {
  sim : Sim.t;
  net : unit Net.t;
  (* last_hb.(i).(j): when p_i last heard from p_j (own slot = +infinity,
     a process never suspects itself). *)
  last_hb : float array array;
  timeout : float array array;
  backoff : float;
}

let suspects t i j =
  j <> i
  && (not (Sim.is_crashed t.sim i))
  && Sim.now t.sim -. t.last_hb.(i).(j) > t.timeout.(i).(j)

let install sim ?(period = 1.0) ?(initial_timeout = 3.0) ?(backoff = 1.5)
    ?(delay = Delay.Psync { gst = 30.0; bound = 2.0; pre_spread = 25.0 }) () =
  let n = Sim.n sim in
  let net = Net.create sim ~tag:"impl.hb" ~delay ~retain:false () in
  let t =
    {
      sim;
      net;
      last_hb = Array.make_matrix n n 0.0;
      timeout = Array.make_matrix n n initial_timeout;
      backoff;
    }
  in
  Net.on_deliver net (fun (e : unit Net.envelope) ->
      let i = e.dst and j = e.src in
      (* A heartbeat from a currently-suspected peer means the timeout was
         too aggressive: back it off.  Each peer can be falsely suspected
         only finitely often once the network's bound holds, so the
         timeout stabilizes. *)
      let gap = Sim.now sim -. t.last_hb.(i).(j) in
      if gap > t.timeout.(i).(j) then
        t.timeout.(i).(j) <- Float.max t.timeout.(i).(j) gap *. t.backoff;
      t.last_hb.(i).(j) <- Sim.now sim);
  for i = 0 to n - 1 do
    Sim.spawn sim ~pid:i (fun () ->
        (* Own slot: a fresh local heartbeat each loop turn. *)
        while true do
          t.last_hb.(i).(i) <- Sim.now sim +. 1e12;
          Net.broadcast net ~src:i ();
          Sim.sleep period
        done)
  done;
  t

let suspector t =
  let n = Sim.n t.sim in
  {
    Iface.suspected =
      (fun i ->
        let s = ref Pidset.empty in
        for j = 0 to n - 1 do
          if suspects t i j then s := Pidset.add j !s
        done;
        !s);
  }

let omega t ~z =
  let n = Sim.n t.sim in
  if z < 1 || z > n then invalid_arg "Impl.omega: bad z";
  {
    Iface.trusted =
      (fun i ->
        let s = ref Pidset.empty in
        let j = ref 0 in
        while Pidset.cardinal !s < z && !j < n do
          if not (suspects t i !j) then s := Pidset.add !j !s;
          incr j
        done;
        (* Degenerate corner: everyone looks suspect (possible only very
           early); fall back to self. *)
        if Pidset.is_empty !s then Pidset.singleton i else !s);
  }

let querier t ~y =
  let tb = Sim.t_bound t.sim in
  if y < 0 || y > tb then invalid_arg "Impl.querier: bad y";
  let log : Oracle.query_log = ref [] in
  let query i x =
    let c = Pidset.cardinal x in
    let result =
      if c <= tb - y then true
      else if c > tb then false
      else Pidset.for_all (fun j -> suspects t i j) x
    in
    log :=
      { Oracle.q_time = Sim.now t.sim; q_pid = i; q_set = x; q_result = result } :: !log;
    result
  in
  ({ Iface.query }, log)

let timeout_of t i j = t.timeout.(i).(j)
let heartbeats_sent t = Net.sent_count t.net
