(** Failure detectors {e implemented} from heartbeats and adaptive
    timeouts, under partial synchrony.

    The oracles in {!Oracle} generate class-conforming histories from
    ground truth; this module is the other half of the story — the way a
    deployed system actually obtains such detectors.  Every process
    broadcasts a heartbeat every [period]; a per-peer timeout, increased
    multiplicatively on every false suspicion, decides who is suspected.
    Under a partially synchronous network ({!Setagree_net.Delay.Psync}:
    delays bounded by an unknown bound after an unknown GST) the classic
    argument applies: each peer's timeout is bumped finitely many times,
    so eventually suspicions are exact — the suspector is a ◇P, hence a
    ◇S_x for every x, the derived leader views are Ω_z, and the derived
    region-death queries are ◇φ_y.

    Nothing here reads the simulator's crash schedule: crashes are
    detected only through missing heartbeats.  The class checkers
    ({!Check}) certify these implemented detectors exactly as they certify
    the oracles — and the whole paper stack (wheels, agreement) runs on
    top of them unchanged (experiment E11). *)

open Setagree_util
open Setagree_dsys
open Setagree_net

type t

val install :
  Sim.t ->
  ?period:float ->
  ?initial_timeout:float ->
  ?backoff:float ->
  ?timeout_cap:float ->
  ?timeout_jitter:float ->
  ?delay:Delay.t ->
  unit ->
  t
(** Start the heartbeat tasks on every process.  [period] (default 1.0)
    is the emission interval.  Suspicion thresholds follow the adaptive
    {!Timeout} policy: starting at [initial_timeout] (default 3.0),
    backed off by [backoff] (default 1.5) per disproven suspicion up to
    [timeout_cap] (default 60.0), with ±[timeout_jitter] (default 0.1)
    deterministic jitter — so a stalled-then-resumed process is
    re-trusted on its first post-stall heartbeat, while the cap keeps
    real-crash detection latency bounded.  [delay] defaults to
    [Psync { gst = 30.; bound = 2.; pre_spread = 25. }]. *)

val suspector : t -> Iface.suspector
(** Timeout-based suspicion: a ◇P (so also ◇S_x for all x) under partial
    synchrony. *)

val omega : t -> z:int -> Iface.leader
(** The first [z] unsuspected processes (always including self as a
    candidate).  Eventually the first [z] live processes at every correct
    process: a legal Ω_z. *)

val querier : t -> y:int -> Iface.querier * Oracle.query_log
(** [query(X)]: triviality by |X|, otherwise "every member of X is
    currently suspected" — a ◇φ_y (safety only eventual: pre-GST timeouts
    lie).  Returns the query log for {!Check.phi_y}. *)

val timeout_of : t -> Pid.t -> Pid.t -> float
(** Current adaptive timeout used by the first process for the second
    (observability / tests). *)

val timeouts : t -> Timeout.t
(** The underlying adaptive-threshold state (false-suspicion counts,
    per-pair backoff bumps). *)

val heartbeats_sent : t -> int
