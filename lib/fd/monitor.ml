open Setagree_util
open Setagree_dsys

type t = {
  (* Per process, reversed list of (time, value) change-points. *)
  series : (float * Pidset.t) list array;
  mutable changes : int;
}

let watch sim ?(every = 0.5) ?until ?kind ~read () =
  let n = Sim.n sim in
  let until = Option.value until ~default:(Sim.horizon sim) in
  let t = { series = Array.make n []; changes = 0 } in
  let poll () =
    let tr = Sim.trace sim in
    Trace.incr tr "monitor.polls";
    let now = Sim.now sim in
    for i = 0 to n - 1 do
      if not (Sim.is_crashed sim i) then begin
        let v = read i in
        match t.series.(i) with
        | (_, prev) :: _ when Pidset.equal prev v -> ()
        | _ ->
            t.series.(i) <- (now, v) :: t.series.(i);
            t.changes <- t.changes + 1;
            (match kind with
            | Some kind when Trace.records_entries tr ->
                Trace.record tr ~time:now
                  (Trace.Fd_change
                     { pid = i; kind; value = Pidset.to_string v })
            | _ -> ())
      end
    done
  in
  let rec arm time =
    if time <= until then
      Sim.at sim ~time (fun () ->
          poll ();
          arm (time +. every))
  in
  arm (Sim.now sim);
  t

let series t pid = List.rev t.series.(pid)

let value_in_effect t pid ~at =
  let rec go = function
    | [] -> None
    | (tm, v) :: rest -> if tm <= at then Some v else go rest
  in
  go t.series.(pid)

let values_after t pid ~from =
  (* Reversed series: take entries after [from], plus the one in effect. *)
  let rec go acc = function
    | [] -> acc
    | (tm, v) :: rest -> if tm >= from then go (v :: acc) rest else v :: acc
  in
  go [] t.series.(pid)

let last_change t pid =
  match t.series.(pid) with [] -> None | (tm, _) :: _ -> Some tm

let final t pid = match t.series.(pid) with [] -> None | (_, v) :: _ -> Some v
let changes_total t = t.changes
