(** Failure-detector output monitors.

    The classes are defined over infinite histories; on a finite run we
    record, per process, the timeline of output values (change-points only)
    and let {!Check} decide class membership on the suffix.  A monitor polls
    a read function on a fixed grid — dense enough to catch every change of
    the epoch-driven oracles and of the (event-driven) transformation
    outputs. *)

open Setagree_util
open Setagree_dsys

type t

val watch :
  Sim.t ->
  ?every:float ->
  ?until:float ->
  ?kind:string ->
  read:(Pid.t -> Pidset.t) ->
  unit ->
  t
(** [watch sim ~read ()] installs polling events from now until [until]
    (default: the simulator's horizon), every [every] (default 0.5) time
    units.  Crashed processes are not polled (their module is dead).
    Must be called before {!Sim.run}.

    When [kind] is given (e.g. ["omega"], ["es"]), every observed
    change-point is additionally recorded into the simulator trace as a
    [Trace.Fd_change] entry — a pure trace write piggybacking on the
    polls the monitor installs anyway, so it cannot perturb the run. *)

val series : t -> Pid.t -> (float * Pidset.t) list
(** Change-points [(time, value)], chronological; the first element is the
    first sample.  Empty if the process crashed before the first poll. *)

val value_in_effect : t -> Pid.t -> at:float -> Pidset.t option
(** The last recorded value at or before [at]. *)

val values_after : t -> Pid.t -> from:float -> Pidset.t list
(** Every value in effect at some instant >= [from] (i.e. the value in
    effect at [from] plus all later change-points). *)

val last_change : t -> Pid.t -> float option
(** Time of the last recorded change (or first sample if never changed). *)

val final : t -> Pid.t -> Pidset.t option

val changes_total : t -> int
(** Total number of change-points across processes (stability measure). *)
