open Setagree_util
open Setagree_dsys

type scope_info = { scope : Pidset.t; protected : Pid.t }

type query_event = {
  q_time : float;
  q_pid : Pid.t;
  q_set : Pidset.t;
  q_result : bool;
}

type query_log = query_event list ref

exception Psi_containment_violation of Pidset.t * Pidset.t

(* Real-runtime override.  A runtime node extracts its failure detector
   from message timing (the accrual detector in [Setagree_rt]); installing
   it here makes every oracle constructor return ifaces backed by the
   extraction instead of simulator ground truth — so protocol [install]
   code runs unchanged on both substrates.  The hook is domain-local
   (Domain.DLS): each node's domain overrides only its own oracle reads,
   while the simulator-driven main domain keeps ground-truth oracles. *)
type external_source = {
  ext_suspected : Pid.t -> Pidset.t;
  ext_trusted : z:int -> Pid.t -> Pidset.t;
  ext_query : y:int -> Pid.t -> Pidset.t -> bool;
}

let ext_key : external_source option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_external src = Domain.DLS.set ext_key src
let external_source () = Domain.DLS.get ext_key

(* Deterministic boolean draw from a seed and a list of integer coordinates:
   the same (seed, coordinates) always yields the same draw, so oracle
   outputs are pure functions of virtual time and runs replay exactly. *)
let draw ~seed parts p =
  if p <= 0.0 then false
  else
    let h = List.fold_left (fun h x -> (h * 1_000_003) lxor (x + 0x9E37)) seed parts in
    Rng.bernoulli (Rng.create h) p

let draw_rng ~seed parts =
  let h = List.fold_left (fun h x -> (h * 1_000_003) lxor (x + 0x9E37)) seed parts in
  Rng.create h

let epoch_of (b : Behavior.t) now = int_of_float (now /. b.epoch)

let min_correct sim =
  match Pidset.min_elt_opt (Sim.correct_set sim) with
  | Some p -> p
  | None -> invalid_arg "Oracle: no correct process in the run"

(* Pick the scope Q: the protected leader plus x-1 other processes drawn
   deterministically (faulty ones included on purpose: the class allows it,
   and it is harder on client algorithms). *)
let pick_scope sim ~x ~seed ~protected =
  let n = Sim.n sim in
  if x < 1 || x > n then invalid_arg "Oracle: scope size x out of range";
  let rng = draw_rng ~seed [ 7; x ] in
  let others = List.filter (fun p -> p <> protected) (Pid.all ~n) in
  let chosen = List.filteri (fun i _ -> i < x - 1) (Rng.shuffle rng others) in
  Pidset.add protected (Pidset.of_list chosen)

(* Whether reader [i] suspects [j] before gst — where the classes place no
   constraint at all, so the strategy picks the most disruptive legal
   output it knows. *)
let pre_gst_suspects (b : Behavior.t) ~seed ~tag ~n ~i ~j ~e ~base =
  match b.strategy with
  | Behavior.Rotating ->
      (* Suspect everyone but one rotating survivor, a different one per
         reader and per epoch: trust keeps moving and readers disagree. *)
      j <> (e + i) mod n
  | Behavior.Slander_all -> true
  | Behavior.Random -> base <> draw ~seed [ tag; i; j; e ] b.noise

let suspector_of sim ~(behavior : Behavior.t) ~seed ~scope ~protected ~perpetual =
  let n = Sim.n sim in
  let b = behavior in
  (* The per-reader output is a pure function of (epoch, pre/post-gst,
     crashed set): all randomness is hashed from those coordinates, never
     drawn from shared RNG state.  Oracle reads are far denser than epoch
     ticks (every blocked-predicate evaluation reads the oracle), so a
     one-entry-per-reader memo removes the O(n) suspect loop from the
     scheduler's hot path without changing a single output. *)
  let memo_e = Array.make n min_int in
  let memo_pre = Array.make n false in
  let memo_c = Array.make n Pidset.empty in
  let memo_v = Array.make n Pidset.empty in
  let suspected i =
    if Sim.is_crashed sim i then Pidset.empty
    else begin
      let now = Sim.now sim in
      let crashed = Sim.crashed_set sim in
      let e = epoch_of b now in
      let pre = now < b.gst in
      if memo_e.(i) = e && memo_pre.(i) = pre && memo_c.(i) == crashed then
        memo_v.(i)
      else begin
        let s = ref Pidset.empty in
        for j = 0 to n - 1 do
          if j <> i then begin
            let base = Pidset.mem j crashed in
            let member =
              if pre then pre_gst_suspects b ~seed ~tag:1 ~n ~i ~j ~e ~base
              else
                (* Completeness: crashed stay suspected.  Slack: unprotected
                   correct processes may be slandered — [Slander_all] does so
                   always, [Random]/[Rotating] per draw. *)
                base
                || (match b.strategy with
                   | Behavior.Slander_all -> true
                   | _ -> draw ~seed [ 2; i; j; e ] b.slander)
            in
            if member then s := Pidset.add j !s
          end
        done;
        (* Limited-scope accuracy: members of Q never suspect the protected
           process — always for the perpetual class, after gst for ◇. *)
        if Pidset.mem i scope && (perpetual || not pre) then
          s := Pidset.remove protected !s;
        memo_e.(i) <- e;
        memo_pre.(i) <- pre;
        memo_c.(i) <- crashed;
        memo_v.(i) <- !s;
        !s
      end
    end
  in
  { Iface.suspected }

(* In external mode the accuracy scope is not chosen by the oracle — the
   extraction serves everyone; report the full universe with the smallest
   pid as the nominal protectee. *)
let ext_scope sim = { scope = Pidset.full ~n:(Sim.n sim); protected = 0 }

let es_x sim ~x ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  match external_source () with
  | Some e -> ({ Iface.suspected = e.ext_suspected }, ext_scope sim)
  | None ->
      let protected = min_correct sim in
      let scope = pick_scope sim ~x ~seed ~protected in
      ( suspector_of sim ~behavior ~seed ~scope ~protected ~perpetual:false,
        { scope; protected } )

let s_x sim ~x ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  match external_source () with
  | Some e -> ({ Iface.suspected = e.ext_suspected }, ext_scope sim)
  | None ->
      let protected = min_correct sim in
      let scope = pick_scope sim ~x ~seed ~protected in
      ( suspector_of sim ~behavior ~seed ~scope ~protected ~perpetual:true,
        { scope; protected } )

let perfect_p sim =
  {
    Iface.suspected =
      (fun i -> if Sim.is_crashed sim i then Pidset.empty else Sim.crashed_set sim);
  }

let eventually_p sim ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  match external_source () with
  | Some e -> { Iface.suspected = e.ext_suspected }
  | None ->
  let n = Sim.n sim in
  let b = behavior in
  (* Same per-reader (epoch, crashed-set) memo as [suspector_of]; the
     post-gst branch already returns the shared crashed set unmodified. *)
  let memo_e = Array.make n min_int in
  let memo_c = Array.make n Pidset.empty in
  let memo_v = Array.make n Pidset.empty in
  let suspected i =
    if Sim.is_crashed sim i then Pidset.empty
    else begin
      let now = Sim.now sim in
      let crashed = Sim.crashed_set sim in
      if now >= b.gst then crashed
      else begin
        let e = epoch_of b now in
        if memo_e.(i) = e && memo_c.(i) == crashed then memo_v.(i)
        else begin
          let s = ref Pidset.empty in
          for j = 0 to n - 1 do
            if j <> i then begin
              let base = Pidset.mem j crashed in
              if pre_gst_suspects b ~seed ~tag:3 ~n ~i ~j ~e ~base then
                s := Pidset.add j !s
            end
          done;
          memo_e.(i) <- e;
          memo_c.(i) <- crashed;
          memo_v.(i) <- !s;
          !s
        end
      end
    end
  in
  { Iface.suspected }

let omega_z sim ~z ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  let n = Sim.n sim in
  if z < 1 || z > n then invalid_arg "Oracle.omega_z: z out of range";
  match external_source () with
  | Some e ->
      (* The eventual set is not known in advance for an extracted
         detector; callers of the runtime path judge the recorded history
         with [Check] instead. *)
      ({ Iface.trusted = (fun i -> e.ext_trusted ~z i) }, Pidset.empty)
  | None ->
  let b = behavior in
  let leader = min_correct sim in
  let final =
    let rng = draw_rng ~seed [ 11; z ] in
    let others = List.filter (fun p -> p <> leader) (Pid.all ~n) in
    let extra = Rng.int rng z in
    let chosen = List.filteri (fun i _ -> i < extra) (Rng.shuffle rng others) in
    Pidset.add leader (Pidset.of_list chosen)
  in
  (* Pre-gst outputs depend only on (reader, epoch) — the draws are hashed
     from those coordinates, not pulled from shared RNG state — so cache
     one epoch's set per reader.  Post-gst every read returns the shared
     [final].  With reads vastly outnumbering epoch ticks this turns the
     dominant oracle cost (an Rng + Pidset.random per read) into an array
     compare, with bit-identical outputs. *)
  let memo_e = Array.make n min_int in
  let memo_v = Array.make n Pidset.empty in
  let trusted i =
    if Sim.is_crashed sim i then Pidset.empty
    else begin
      let now = Sim.now sim in
      if now >= b.gst then final
      else begin
        let e = epoch_of b now in
        if memo_e.(i) = e then memo_v.(i)
        else begin
          let v =
            match b.strategy with
            | Behavior.Rotating ->
                (* Rotating singleton leaders, disagreeing across readers:
                   the worst legal pre-gst Ω output for leader-based code. *)
                Pidset.add ((e + i) mod n) Pidset.empty
            | _ ->
                (* Churning arbitrary sets: different at each process and
                   epoch. *)
                let rng = draw_rng ~seed [ 13; i; e ] in
                let size = 1 + Rng.int rng z in
                Pidset.random rng ~n ~size
          in
          memo_e.(i) <- e;
          memo_v.(i) <- v;
          v
        end
      end
    end
  in
  ({ Iface.trusted }, final)

let querier_of sim ~y ~(behavior : Behavior.t) ~seed ~perpetual =
  let t = Sim.t_bound sim in
  if y < 0 || y > t then invalid_arg "Oracle: phi parameter y out of range";
  match external_source () with
  | Some e ->
      ignore perpetual;
      let log : query_log = ref [] in
      let query i x =
        let result = e.ext_query ~y i x in
        log :=
          { q_time = Sim.now sim; q_pid = i; q_set = x; q_result = result }
          :: !log;
        result
      in
      ({ Iface.query }, log)
  | None ->
  let b = behavior in
  let log : query_log = ref [] in
  let query i x =
    let now = Sim.now sim in
    let c = Pidset.cardinal x in
    let result =
      if c <= t - y then true
      else if c > t then false
      else begin
        let all_crashed = Pidset.subset x (Sim.crashed_set sim) in
        let e = epoch_of b now in
        if now >= b.gst then all_crashed
        else if perpetual then
          (* Safety is perpetual: never claim a live region dead.  Liveness
             may be delayed: a dead region can still be denied pre-gst —
             the non-Random strategies deny every query until gst. *)
          all_crashed
          && (match b.strategy with
             | Behavior.Random ->
                 not (draw ~seed [ 4; i; Pidset.hash x; e ] b.noise)
             | _ -> false)
        else begin
          (* Eventual φ: pre-gst answers are unconstrained — the non-Random
             strategies always answer maximally wrong. *)
          match b.strategy with
          | Behavior.Random ->
              if draw ~seed [ 5; i; Pidset.hash x; e ] b.noise then
                not all_crashed
              else all_crashed
          | _ -> not all_crashed
        end
      end
    in
    log := { q_time = now; q_pid = i; q_set = x; q_result = result } :: !log;
    result
  in
  ({ Iface.query }, log)

let phi_y sim ~y ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  querier_of sim ~y ~behavior ~seed ~perpetual:true

let ephi_y sim ~y ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  querier_of sim ~y ~behavior ~seed ~perpetual:false

let psi_y sim ~y ?(behavior = Behavior.stormy ~gst:50.0) ?(seed = 0x5EED) () =
  let ({ Iface.query = base }, log) = phi_y sim ~y ~behavior ~seed () in
  let used : Pidset.t list ref = ref [] in
  let query i x =
    List.iter
      (fun x' ->
        if not (Pidset.subset x x' || Pidset.subset x' x) then
          raise (Psi_containment_violation (x, x')))
      !used;
    if not (List.exists (Pidset.equal x) !used) then used := x :: !used;
    base i x
  in
  ({ Iface.query }, log)
