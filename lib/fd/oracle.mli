(** Ground-truth oracle implementations of every failure-detector class in
    the paper's grid (Figure 1).

    An oracle reads the simulator's crash schedule (the run's ground truth)
    and a {!Behavior.t}, and produces a history that provably belongs to the
    class — including, when the behaviour says so, the nastiest histories
    the class admits.  This is the honest substitute for "a failure detector
    module of class C": the classes are axiomatic, and any real
    implementation's history is one of the histories these oracles can
    produce (checkers in {!Check} verify membership independently). *)

open Setagree_util
open Setagree_dsys

type scope_info = {
  scope : Pidset.t;  (** The set Q of the limited-scope accuracy property. *)
  protected : Pid.t;  (** The correct process of Q never suspected by Q. *)
}

(** {1 Real-runtime override}

    A runtime node (one OCaml domain per process, [Setagree_rt]) extracts
    its failure detector from message timing.  Installing the extraction
    as this domain's {!external_source} makes every oracle constructor
    below return ifaces backed by it — same protocol [install] code on
    both substrates.  The hook is {e domain-local} ([Domain.DLS]): the
    simulator-driven main domain, with no source installed, keeps the
    ground-truth oracles byte-identically. *)

type external_source = {
  ext_suspected : Pid.t -> Pidset.t;  (** suspector classes (◇S_x, ◇P) *)
  ext_trusted : z:int -> Pid.t -> Pidset.t;  (** leader classes (Ω_z) *)
  ext_query : y:int -> Pid.t -> Pidset.t -> bool;  (** query classes (φ_y) *)
}

val set_external : external_source option -> unit
(** Install ([Some]) or clear ([None]) the calling domain's override. *)

val external_source : unit -> external_source option

(** {1 Suspector classes} *)

val es_x :
  Sim.t -> x:int -> ?behavior:Behavior.t -> ?seed:int -> unit ->
  Iface.suspector * scope_info
(** ◇S_x: strong completeness + limited-scope {e eventual} weak accuracy.
    Pre-gst output is arbitrary; post-gst, crashed processes are suspected,
    the x processes of [scope] never suspect [protected], and every other
    correct process may still be slandered (legal!).  [x = n] gives ◇S. *)

val s_x :
  Sim.t -> x:int -> ?behavior:Behavior.t -> ?seed:int -> unit ->
  Iface.suspector * scope_info
(** S_x: as {!es_x} but the accuracy protection holds from time 0
    (perpetual); completeness remains eventual. *)

val perfect_p : Sim.t -> Iface.suspector
(** P: suspects exactly the currently crashed processes. *)

val eventually_p :
  Sim.t -> ?behavior:Behavior.t -> ?seed:int -> unit -> Iface.suspector
(** ◇P: arbitrary pre-gst, exact afterwards. *)

(** {1 Leader classes} *)

val omega_z :
  Sim.t -> z:int -> ?behavior:Behavior.t -> ?seed:int -> unit ->
  Iface.leader * Pidset.t
(** Ω_z: eventually all correct processes trust the same set of at most [z]
    processes, at least one of them correct.  Returns the eventual set (it
    may legally contain crashed processes alongside a correct one).
    Pre-gst, each process sees churning arbitrary sets.  [z = 1] is Ω. *)

(** {1 Query classes} *)

type query_event = {
  q_time : float;
  q_pid : Pid.t;
  q_set : Pidset.t;
  q_result : bool;
}

type query_log = query_event list ref
(** Chronological once reversed; {!Check} consumes it. *)

val phi_y :
  Sim.t -> y:int -> ?behavior:Behavior.t -> ?seed:int -> unit ->
  Iface.querier * query_log
(** φ_y: triviality (|X| <= t-y ⇒ true; |X| > t ⇒ false), perpetual safety
    (true ⇒ all of X crashed, in the meaningful window), liveness (all
    crashed ⇒ eventually always true; pre-gst noise may delay it). *)

val ephi_y :
  Sim.t -> y:int -> ?behavior:Behavior.t -> ?seed:int -> unit ->
  Iface.querier * query_log
(** ◇φ_y: safety is only eventual — pre-gst the oracle may claim a region
    crashed while it still contains correct processes. *)

exception Psi_containment_violation of Pidset.t * Pidset.t

val psi_y :
  Sim.t -> y:int -> ?behavior:Behavior.t -> ?seed:int -> unit ->
  Iface.querier * query_log
(** Ψ_y: φ_y restricted to nested query arguments; raises
    {!Psi_containment_violation} if a client ever queries two incomparable
    sets (that would be a mis-use of the class, i.e. a client bug). *)
