open Setagree_util
open Setagree_net

type t = {
  n : int;
  initial : float;
  factor : float;
  cap : float;
  jitter : float;
  rng : Rng.t;
  (* (observer, subject) matrices; own slot never consulted. *)
  last_heard : float array array;
  current : float array array;
  bumps : int array array;
  mutable false_suspicions : int;
}

let create ?(initial = 3.0) ?(factor = 1.5) ?(cap = 60.0) ?(jitter = 0.1) ~rng
    ~n () =
  if initial <= 0.0 then invalid_arg "Timeout.create: initial must be > 0";
  if factor < 1.0 then invalid_arg "Timeout.create: factor must be >= 1";
  if cap < initial then invalid_arg "Timeout.create: cap must be >= initial";
  {
    n;
    initial;
    factor;
    cap;
    jitter;
    (* Jitter draws live on their own named split, never on the caller's
       stream: creating a Timeout on (say) the simulator's root RNG and
       exercising it — what the runtime backend's instrumentation does —
       must not advance the shared stream and shift the delay draws of a
       fault-free execution. *)
    rng = Rng.split_named rng "timeout:jitter";
    last_heard = Array.make_matrix n n 0.0;
    current = Array.make_matrix n n initial;
    bumps = Array.make_matrix n n 0;
    false_suspicions = 0;
  }

let expired t i j ~now = now -. t.last_heard.(i).(j) > t.current.(i).(j)

let heard t i j ~now =
  (* Evidence arriving after the silence threshold means the suspicion in
     effect was false: back the threshold off (exponentially, capped,
     jittered) so a merely slow or stalled-then-resumed peer is trusted
     again and suspected less eagerly next time. *)
  let gap = now -. t.last_heard.(i).(j) in
  if gap > t.current.(i).(j) then begin
    t.false_suspicions <- t.false_suspicions + 1;
    t.bumps.(i).(j) <- t.bumps.(i).(j) + 1;
    let target =
      Delay.backoff_interval ~base:t.initial ~factor:t.factor ~cap:t.cap
        ~jitter:t.jitter ~rng:t.rng ~attempt:t.bumps.(i).(j)
    in
    t.current.(i).(j) <- Float.max t.current.(i).(j) (Float.min t.cap target)
  end;
  t.last_heard.(i).(j) <- now

let current t i j = t.current.(i).(j)
let last_heard t i j = t.last_heard.(i).(j)
let bumps t i j = t.bumps.(i).(j)
let false_suspicions t = t.false_suspicions
