(** Adaptive per-(observer, subject) silence thresholds: capped
    exponential backoff with deterministic jitter.

    The policy behind {!Impl}'s heartbeat detector, factored out so it
    can be tested in isolation and reused.  An observer suspects a
    subject once the silence gap exceeds the current threshold
    ({!expired}).  When evidence later arrives ({!heard}) after the
    threshold — the suspicion was false, e.g. the subject was stalled,
    not crashed — the threshold backs off along
    [min cap (initial * factor^bumps)] with ±[jitter] seed-derived noise
    ({!Setagree_net.Delay.backoff_interval}), so a stalled-then-resumed
    process is re-trusted immediately on its next heartbeat and
    suspected less eagerly afterwards.  The cap keeps detection latency
    bounded: unlike the earlier unbounded multiplicative growth, one
    very long stall cannot make the detector blind to a real crash for
    the rest of the run.

    Under partial synchrony each pair's threshold is bumped finitely
    often (gaps are eventually bounded), so suspicions are eventually
    exact — the classic ◇P argument, now with a cap. *)

open Setagree_util

type t

val create :
  ?initial:float ->
  ?factor:float ->
  ?cap:float ->
  ?jitter:float ->
  rng:Rng.t ->
  n:int ->
  unit ->
  t
(** Defaults: [initial] 3.0, [factor] 1.5, [cap] 60.0, [jitter] 0.1
    (±10%).  All thresholds start at [initial]; [last_heard] starts
    at 0.

    [rng] is only a parent: the jitter draws come from a
    [Rng.split_named rng "timeout:jitter"] child, so neither creating
    nor exercising a Timeout ever advances the caller's stream —
    attaching runtime instrumentation to a shared (even root) RNG
    cannot shift a fault-free simulation (the byte-identical regression
    in [test/test_faults.ml] pins this down). *)

val expired : t -> Pid.t -> Pid.t -> now:float -> bool
(** [expired t i j ~now]: has [j] been silent towards [i] beyond the
    current threshold? *)

val heard : t -> Pid.t -> Pid.t -> now:float -> unit
(** Record evidence of life from [j] at [i]; backs off the threshold
    first if the suspicion in effect was false. *)

val current : t -> Pid.t -> Pid.t -> float
val last_heard : t -> Pid.t -> Pid.t -> float

val bumps : t -> Pid.t -> Pid.t -> int
(** False-suspicion backoffs applied to the pair so far. *)

val false_suspicions : t -> int
(** Total false suspicions disproven across all pairs. *)
