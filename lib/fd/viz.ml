open Setagree_util
open Setagree_dsys

let letter_of k =
  if k < 26 then Char.chr (Char.code 'a' + k)
  else if k < 52 then Char.chr (Char.code 'A' + k - 26)
  else '#'

let timeline sim mon ?(width = 60) ?until () =
  let n = Sim.n sim in
  let until = Option.value until ~default:(Sim.now sim) in
  let until = if until <= 0.0 then 1.0 else until in
  let legend : (Pidset.t * char) list ref = ref [] in
  let char_of v =
    match List.find_opt (fun (s, _) -> Pidset.equal s v) !legend with
    | Some (_, c) -> c
    | None ->
        let c = letter_of (List.length !legend) in
        legend := !legend @ [ (v, c) ];
        c
  in
  let buf = Buffer.create 1024 in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%-4s " (Pid.to_string i));
    for b = 0 to width - 1 do
      let tm = float_of_int b /. float_of_int width *. until in
      let dead =
        match Sim.crash_time sim i with Some ct -> ct <= tm | None -> false
      in
      if dead then Buffer.add_char buf 'x'
      else
        match Monitor.value_in_effect mon i ~at:tm with
        | None -> Buffer.add_char buf '.'
        | Some v -> Buffer.add_char buf (char_of v)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    (Printf.sprintf "     0%*s%.1f\n" (width - 1) "t=" until);
  List.iter
    (fun (v, c) ->
      Buffer.add_string buf (Printf.sprintf "  %c = %s\n" c (Pidset.to_string v)))
    !legend;
  Buffer.contents buf
