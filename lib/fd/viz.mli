(** ASCII timelines of failure-detector outputs.

    Render a {!Monitor} as one row per process over a bucketed time axis:
    each distinct output value gets a letter, crashed stretches show as
    ['x'], time before the first sample as ['.'].  A legend maps letters
    back to pid-sets.  Useful in demos and when debugging a transformation
    whose checker verdict alone does not show {e where} a run went wrong. *)

open Setagree_dsys

val timeline : Sim.t -> Monitor.t -> ?width:int -> ?until:float -> unit -> string
(** [timeline sim mon ()] renders the monitored history up to [until]
    (default: the current virtual time) in [width] (default 60) buckets.
    Call after {!Sim.run}. *)
