open Setagree_util

type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Psync of { gst : float; bound : float; pre_spread : float }
  | Fn of (rng:Rng.t -> src:Pid.t -> dst:Pid.t -> now:float -> float)

let sample t ~rng ~src ~dst ~now =
  let d =
    match t with
    | Constant c -> c
    | Uniform (lo, hi) -> Rng.uniform_in rng lo hi
    | Exponential mean -> Rng.exponential rng ~mean
    | Psync { gst; bound; pre_spread } ->
        if now < gst then
          (* The adversary may park a pre-gst message until after gst, but
             never beyond gst + bound (messages are not lost). *)
          let d = Rng.uniform_in rng 0.0 pre_spread in
          Float.min d (gst +. bound -. now)
        else Rng.uniform_in rng 0.0 bound
    | Fn f -> f ~rng ~src ~dst ~now
  in
  Float.max 0.0 d

let default = Uniform (0.5, 1.5)

(* Shared by the stubborn transport's resend loop and the adaptive
   failure-detector timeouts: capped exponential backoff with
   deterministic jitter.  attempt 0 is the base interval. *)
let backoff_interval ~base ~factor ~cap ~jitter ~rng ~attempt =
  let attempt = max 0 attempt in
  let raw = base *. (factor ** float_of_int attempt) in
  let capped = Float.min cap raw in
  let j =
    if jitter <= 0.0 then 0.0
    else Rng.uniform_in rng (-.jitter) jitter *. capped
  in
  Float.max (0.01 *. base) (capped +. j)
