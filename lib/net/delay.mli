(** Message-delay models.

    The asynchronous model puts no bound on transfer delays; a delay model is
    simply the (deterministic, seeded) adversary choosing them.  [Fn] gives
    experiments complete control — e.g. the indistinguishability scenarios
    of the irreducibility theorems delay all messages from a region [E]
    until a chosen time. *)

open Setagree_util

type t =
  | Constant of float
  | Uniform of float * float  (** [Uniform (lo, hi)], uniform in [lo, hi). *)
  | Exponential of float  (** Mean delay; heavy spread stresses asynchrony. *)
  | Psync of { gst : float; bound : float; pre_spread : float }
      (** Partial synchrony: before [gst] delays are uniform in
          [0, pre_spread) (arbitrarily bad, adversary's pick); from [gst]
          on, every delay is uniform in (0, bound] — the model under which
          timeout-based failure detectors are implementable. *)
  | Fn of (rng:Rng.t -> src:Pid.t -> dst:Pid.t -> now:float -> float)
      (** Arbitrary adversary. *)

val sample : t -> rng:Rng.t -> src:Pid.t -> dst:Pid.t -> now:float -> float
(** Draw a delay (>= 0, clamped). *)

val default : t
(** [Uniform (0.5, 1.5)] — a mild spread around 1 time unit. *)

val backoff_interval :
  base:float ->
  factor:float ->
  cap:float ->
  jitter:float ->
  rng:Rng.t ->
  attempt:int ->
  float
(** Capped exponential backoff with deterministic jitter:
    [min cap (base * factor^attempt)], then perturbed multiplicatively by
    a uniform draw in [±jitter] (e.g. [jitter = 0.2] gives ±20%), clamped
    away from zero.  Shared by the stubborn transport's resend schedule
    and the adaptive failure-detector timeouts, so both stay reproducible
    from the run seed. *)
