open Setagree_util
open Setagree_dsys

module Link = struct
  type 'm t = {
    sim : Sim.t;
    tag : string;
    delay : Delay.t;
    rng : Rng.t;
    loss : float;
    mutable handlers : (src:Pid.t -> dst:Pid.t -> 'm -> unit) list;
    mutable sent : int;
    mutable dropped : int;
    mutable delivered : int;
    h_sent : Trace.counter; (* pre-resolved [tag ^ ".link.sent"] *)
  }

  let create sim ?(tag = "lossy") ?(delay = Delay.default) ~loss () =
    if loss < 0.0 || loss >= 1.0 then invalid_arg "Lossy.Link.create: loss in [0,1)";
    {
      sim;
      tag;
      delay;
      rng = Rng.split_named (Sim.rng sim) ("lossy:" ^ tag);
      loss;
      handlers = [];
      sent = 0;
      dropped = 0;
      delivered = 0;
      h_sent = Trace.counter_handle (Sim.trace sim) (tag ^ ".link.sent");
    }

  let send t ~src ~dst payload =
    if not (Sim.is_crashed t.sim src) then begin
      t.sent <- t.sent + 1;
      Trace.bump t.h_sent 1;
      if Rng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
      else begin
        let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now:(Sim.now t.sim) in
        Sim.schedule t.sim ~delay:d (fun () ->
            if not (Sim.is_crashed t.sim dst) then begin
              t.delivered <- t.delivered + 1;
              List.iter (fun h -> h ~src ~dst payload) (List.rev t.handlers)
            end)
      end
    end

  let on_deliver t h = t.handlers <- h :: t.handlers
  let sent t = t.sent
  let dropped t = t.dropped
  let delivered t = t.delivered
end

module Transport = struct
  type 'm packet = Data of { seq : int; body : 'm } | Ack of { seq : int }

  type 'm pend = { pd_dst : Pid.t; pd_body : 'm; mutable pd_attempt : int }

  type 'm t = {
    sim : Sim.t;
    link : 'm packet Link.t;
    (* Backoff schedule: resend intervals grow by [factor] per attempt up
       to [cap], each perturbed by deterministic jitter from [brng] so
       retransmission bursts from different senders decorrelate. *)
    base : float;
    factor : float;
    cap : float;
    jitter : float;
    brng : Rng.t;
    metrics : Metrics.t;
    (* Per sender: next sequence number and the unacknowledged queue. *)
    next_seq : int array;
    unacked : (int, 'm pend) Hashtbl.t array;
    (* Per receiver: seen (src, seq) pairs and the delivered list. *)
    seen : (Pid.t * int, unit) Hashtbl.t array;
    inboxes : (Pid.t * 'm) list array;
    mutable handlers : (src:Pid.t -> dst:Pid.t -> 'm -> unit) list;
  }

  (* Per-message retransmission timer.  Still stubborn — a message is
     resent until acked, preserving the reliable-channel emulation — but
     the interval backs off exponentially to [cap] instead of hammering
     at a fixed period, and a successful ack from a destination pulls its
     other pending messages back to the base interval. *)
  let rec arm t ~src seq =
    match Hashtbl.find_opt t.unacked.(src) seq with
    | None -> ()
    | Some p ->
        let interval =
          Delay.backoff_interval ~base:t.base ~factor:t.factor ~cap:t.cap
            ~jitter:t.jitter ~rng:t.brng ~attempt:p.pd_attempt
        in
        Sim.schedule t.sim ~delay:interval (fun () ->
            match Hashtbl.find_opt t.unacked.(src) seq with
            | None -> ()
            | Some p when Sim.is_crashed t.sim src -> ignore p
            | Some p -> (
                match Sim.stall_end t.sim src with
                | Some resume_at ->
                    (* A stalled sender is frozen: hold off, recheck at
                       the end of the stall window. *)
                    Sim.at t.sim ~time:resume_at (fun () -> arm t ~src seq)
                | None ->
                    p.pd_attempt <- p.pd_attempt + 1;
                    Metrics.incr t.metrics "net.retransmits";
                    Trace.incr (Sim.trace t.sim) "net.retransmits";
                    Link.send t.link ~src ~dst:p.pd_dst
                      (Data { seq; body = p.pd_body });
                    arm t ~src seq))

  let create sim ?(tag = "transport") ?(delay = Delay.default)
      ?(retransmit_every = 1.0) ?(backoff_factor = 2.0) ?backoff_cap
      ?(backoff_jitter = 0.2) ~loss () =
    if retransmit_every <= 0.0 then
      invalid_arg "Lossy.Transport.create: retransmit_every must be > 0";
    if backoff_factor < 1.0 then
      invalid_arg "Lossy.Transport.create: backoff_factor must be >= 1";
    let cap =
      match backoff_cap with
      | Some c -> c
      | None -> 8.0 *. retransmit_every
    in
    let n = Sim.n sim in
    let t =
      {
        sim;
        link = Link.create sim ~tag ~delay ~loss ();
        base = retransmit_every;
        factor = backoff_factor;
        cap;
        jitter = backoff_jitter;
        brng = Rng.split_named (Sim.rng sim) ("backoff:" ^ tag);
        metrics = Metrics.create ();
        next_seq = Array.make n 0;
        unacked = Array.init n (fun _ -> Hashtbl.create 32);
        seen = Array.init n (fun _ -> Hashtbl.create 64);
        inboxes = Array.make n [];
        handlers = [];
      }
    in
    Link.on_deliver t.link (fun ~src ~dst packet ->
        match packet with
        | Data { seq; body } ->
            (* Always re-ack: the previous ack may have been lost. *)
            Link.send t.link ~src:dst ~dst:src (Ack { seq });
            if not (Hashtbl.mem t.seen.(dst) (src, seq)) then begin
              Hashtbl.add t.seen.(dst) (src, seq) ();
              t.inboxes.(dst) <- (src, body) :: t.inboxes.(dst);
              List.iter (fun h -> h ~src ~dst body) (List.rev t.handlers)
            end
        | Ack { seq } -> (
            (* [dst] is the original sender here (acks flow backwards). *)
            match Hashtbl.find_opt t.unacked.(dst) seq with
            | None -> ()
            | Some p ->
                Hashtbl.remove t.unacked.(dst) seq;
                (* Fresh evidence the path to [p.pd_dst] works: pull its
                   other backed-off messages back to the base interval. *)
                Hashtbl.iter
                  (fun _ q ->
                    if q.pd_dst = p.pd_dst && q.pd_attempt > 0 then begin
                      q.pd_attempt <- 0;
                      Metrics.incr t.metrics "net.backoff_resets";
                      Trace.incr (Sim.trace t.sim) "net.backoff_resets"
                    end)
                  t.unacked.(dst)));
    t

  let send t ~src ~dst body =
    if not (Sim.is_crashed t.sim src) then begin
      let seq = t.next_seq.(src) in
      t.next_seq.(src) <- seq + 1;
      Hashtbl.replace t.unacked.(src) seq
        { pd_dst = dst; pd_body = body; pd_attempt = 0 };
      Link.send t.link ~src ~dst (Data { seq; body });
      arm t ~src seq
    end

  let inbox t pid = List.rev t.inboxes.(pid)
  let on_deliver t h = t.handlers <- h :: t.handlers
  let pending t pid = Hashtbl.length t.unacked.(pid)
  let link_sent t = Link.sent t.link
  let metrics t = t.metrics
end
