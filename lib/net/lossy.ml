open Setagree_util
open Setagree_dsys

module Link = struct
  type 'm t = {
    sim : Sim.t;
    tag : string;
    delay : Delay.t;
    rng : Rng.t;
    loss : float;
    mutable handlers : (src:Pid.t -> dst:Pid.t -> 'm -> unit) list;
    mutable sent : int;
    mutable dropped : int;
    mutable delivered : int;
  }

  let create sim ?(tag = "lossy") ?(delay = Delay.default) ~loss () =
    if loss < 0.0 || loss >= 1.0 then invalid_arg "Lossy.Link.create: loss in [0,1)";
    {
      sim;
      tag;
      delay;
      rng = Rng.split_named (Sim.rng sim) ("lossy:" ^ tag);
      loss;
      handlers = [];
      sent = 0;
      dropped = 0;
      delivered = 0;
    }

  let send t ~src ~dst payload =
    if not (Sim.is_crashed t.sim src) then begin
      t.sent <- t.sent + 1;
      Trace.incr (Sim.trace t.sim) (t.tag ^ ".link.sent");
      if Rng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
      else begin
        let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now:(Sim.now t.sim) in
        Sim.schedule t.sim ~delay:d (fun () ->
            if not (Sim.is_crashed t.sim dst) then begin
              t.delivered <- t.delivered + 1;
              List.iter (fun h -> h ~src ~dst payload) (List.rev t.handlers)
            end)
      end
    end

  let on_deliver t h = t.handlers <- h :: t.handlers
  let sent t = t.sent
  let dropped t = t.dropped
  let delivered t = t.delivered
end

module Transport = struct
  type 'm packet = Data of { seq : int; body : 'm } | Ack of { seq : int }

  type 'm t = {
    sim : Sim.t;
    link : 'm packet Link.t;
    (* Per sender: next sequence number and the unacknowledged queue
       (seq, dst, body). *)
    next_seq : int array;
    unacked : (int, Pid.t * 'm) Hashtbl.t array;
    (* Per receiver: seen (src, seq) pairs and the delivered list. *)
    seen : (Pid.t * int, unit) Hashtbl.t array;
    inboxes : (Pid.t * 'm) list array;
    mutable handlers : (src:Pid.t -> dst:Pid.t -> 'm -> unit) list;
  }

  let create sim ?(tag = "transport") ?(delay = Delay.default)
      ?(retransmit_every = 1.0) ~loss () =
    let n = Sim.n sim in
    let t =
      {
        sim;
        link = Link.create sim ~tag ~delay ~loss ();
        next_seq = Array.make n 0;
        unacked = Array.init n (fun _ -> Hashtbl.create 32);
        seen = Array.init n (fun _ -> Hashtbl.create 64);
        inboxes = Array.make n [];
        handlers = [];
      }
    in
    Link.on_deliver t.link (fun ~src ~dst packet ->
        match packet with
        | Data { seq; body } ->
            (* Always re-ack: the previous ack may have been lost. *)
            Link.send t.link ~src:dst ~dst:src (Ack { seq });
            if not (Hashtbl.mem t.seen.(dst) (src, seq)) then begin
              Hashtbl.add t.seen.(dst) (src, seq) ();
              t.inboxes.(dst) <- (src, body) :: t.inboxes.(dst);
              List.iter (fun h -> h ~src ~dst body) (List.rev t.handlers)
            end
        | Ack { seq } -> Hashtbl.remove t.unacked.(dst) seq);
    (* One stubborn retransmission task per process. *)
    for i = 0 to n - 1 do
      Sim.spawn sim ~pid:i (fun () ->
          while true do
            Hashtbl.iter
              (fun seq (dst, body) -> Link.send t.link ~src:i ~dst (Data { seq; body }))
              t.unacked.(i);
            Sim.sleep retransmit_every
          done)
    done;
    t

  let send t ~src ~dst body =
    if not (Sim.is_crashed t.sim src) then begin
      let seq = t.next_seq.(src) in
      t.next_seq.(src) <- seq + 1;
      Hashtbl.replace t.unacked.(src) seq (dst, body);
      Link.send t.link ~src ~dst (Data { seq; body })
    end

  let inbox t pid = List.rev t.inboxes.(pid)
  let on_deliver t h = t.handlers <- h :: t.handlers
  let pending t pid = Hashtbl.length t.unacked.(pid)
  let link_sent t = Link.sent t.link
end
