(** Fair-lossy links and a reliable transport built over them.

    The paper assumes reliable channels.  This module shows that assumption
    is implementable from a strictly weaker substrate: {!Link} delivers
    each message with probability [1 - loss] (fair-lossy: of infinitely
    many sends, infinitely many get through), and {!Transport} recovers
    reliable, no-duplication delivery with the classic
    stubborn-retransmission + acknowledgement + sequence-number scheme.
    A sender that crashes stops retransmitting, so messages it sent may be
    lost — exactly the "unless it fails" proviso of §2.1.

    [Net] remains the substrate used by the algorithms (one hop fewer in
    every simulation); {!Transport} exists to validate the model and to
    let experiments run the whole stack over lossy links if desired. *)

open Setagree_util
open Setagree_dsys

module Link : sig
  type 'm t

  val create :
    Sim.t -> ?tag:string -> ?delay:Delay.t -> loss:float -> unit -> 'm t
  (** Each copy is dropped with probability [loss] (deterministically, from
      the simulation seed), independently. *)

  val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit
  val on_deliver : 'm t -> (src:Pid.t -> dst:Pid.t -> 'm -> unit) -> unit
  val sent : 'm t -> int
  val dropped : 'm t -> int
  val delivered : 'm t -> int
end

module Transport : sig
  type 'm t

  val create :
    Sim.t ->
    ?tag:string ->
    ?delay:Delay.t ->
    ?retransmit_every:float ->
    loss:float ->
    unit ->
    'm t
  (** Reliable transport over a fresh fair-lossy link: sequence numbers for
      deduplication, acks to stop the per-process retransmission task
      (period [retransmit_every], default 1.0). *)

  val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit
  (** Queue for reliable delivery.  Must be called while [src] is alive;
      delivery is guaranteed if both ends are correct. *)

  val inbox : 'm t -> Pid.t -> (Pid.t * 'm) list
  (** [(src, payload)] in delivery order, duplicates already removed. *)

  val on_deliver : 'm t -> (src:Pid.t -> dst:Pid.t -> 'm -> unit) -> unit

  val pending : 'm t -> Pid.t -> int
  (** Unacknowledged messages a process is still retransmitting. *)

  val link_sent : 'm t -> int
  (** Raw link-level copies consumed (retransmissions + acks). *)
end
