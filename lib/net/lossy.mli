(** Fair-lossy links and a reliable transport built over them.

    The paper assumes reliable channels.  This module shows that assumption
    is implementable from a strictly weaker substrate: {!Link} delivers
    each message with probability [1 - loss] (fair-lossy: of infinitely
    many sends, infinitely many get through), and {!Transport} recovers
    reliable, no-duplication delivery with the classic
    stubborn-retransmission + acknowledgement + sequence-number scheme.
    A sender that crashes stops retransmitting, so messages it sent may be
    lost — exactly the "unless it fails" proviso of §2.1.

    [Net] remains the substrate used by the algorithms (one hop fewer in
    every simulation); {!Transport} exists to validate the model and to
    let experiments run the whole stack over lossy links if desired. *)

open Setagree_util
open Setagree_dsys

module Link : sig
  type 'm t

  val create :
    Sim.t -> ?tag:string -> ?delay:Delay.t -> loss:float -> unit -> 'm t
  (** Each copy is dropped with probability [loss] (deterministically, from
      the simulation seed), independently. *)

  val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit
  val on_deliver : 'm t -> (src:Pid.t -> dst:Pid.t -> 'm -> unit) -> unit
  val sent : 'm t -> int
  val dropped : 'm t -> int
  val delivered : 'm t -> int
end

module Transport : sig
  type 'm t

  val create :
    Sim.t ->
    ?tag:string ->
    ?delay:Delay.t ->
    ?retransmit_every:float ->
    ?backoff_factor:float ->
    ?backoff_cap:float ->
    ?backoff_jitter:float ->
    loss:float ->
    unit ->
    'm t
  (** Reliable transport over a fresh fair-lossy link: sequence numbers
      for deduplication, acks to retire per-message retransmission
      timers.  Retransmission is stubborn (a message is resent until
      acked — reliability needs nothing less) but paced by capped
      exponential backoff: the first resend comes after
      [retransmit_every] (default 1.0), each further one [backoff_factor]
      (default 2.0) later than the last up to [backoff_cap] (default
      [8 * retransmit_every]), all perturbed by ±[backoff_jitter]
      (default 0.2, i.e. ±20%) of deterministic seed-derived jitter via
      {!Delay.backoff_interval}.  An ack from a destination resets the
      backoff of its other pending messages (fresh evidence the path
      works).  [net.retransmits] and [net.backoff_resets] are recorded in
      {!metrics} and mirrored as trace counters. *)

  val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit
  (** Queue for reliable delivery.  Must be called while [src] is alive;
      delivery is guaranteed if both ends are correct. *)

  val inbox : 'm t -> Pid.t -> (Pid.t * 'm) list
  (** [(src, payload)] in delivery order, duplicates already removed. *)

  val on_deliver : 'm t -> (src:Pid.t -> dst:Pid.t -> 'm -> unit) -> unit

  val pending : 'm t -> Pid.t -> int
  (** Unacknowledged messages a process is still retransmitting. *)

  val link_sent : 'm t -> int
  (** Raw link-level copies consumed (retransmissions + acks). *)

  val metrics : 'm t -> Metrics.t
  (** The transport's metrics registry: [net.retransmits] counts resent
      data packets, [net.backoff_resets] counts pending messages pulled
      back to the base interval by an ack on the same path. *)
end
