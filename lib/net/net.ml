open Setagree_util
open Setagree_dsys

type 'm envelope = {
  src : Pid.t;
  dst : Pid.t;
  sent_at : float;
  delivered_at : float;
  payload : 'm;
}

(* Per-(destination, key) aggregate maintained incrementally at delivery
   time, so blocked-predicate readiness checks are O(1) lookups instead of
   whole-mailbox rescans. *)
type 'm keyslot = {
  mutable k_count : int;
  mutable k_senders : Pidset.t;
  mutable k_nsenders : int; (* = cardinal k_senders, maintained here *)
  mutable k_envs : 'm envelope list; (* newest-first; accessor reverses *)
}

type 'm t = {
  sim : Sim.t;
  tag : string;
  delay : Delay.t;
  rng : Rng.t;
  (* Fault decisions draw from their own named stream so that attaching a
     [Faults] spec (or not) never perturbs the delay draws of the run. *)
  frng : Rng.t;
  retain : bool;
  classify : ('m -> int) option;
  (* When present, sends travel through the stubborn transport over a
     fair-lossy link instead of the direct channel. *)
  transport : (float * 'm) Lossy.Transport.t option;
  (* Mailboxes are append-only logs in delivery order. *)
  boxes : 'm envelope Vec.t array;
  (* Keyed index storage: protocol classify keys are small dense ints
     (round/phase coordinates), so the common case is a direct array slot
     read; rare out-of-range keys (negative, or past the dense bound) fall
     back to a hashtable.  Looked up once per delivery and once per
     blocked-predicate evaluation, which is what rules out a generic-hash
     [Hashtbl.find] here. *)
  kdense : 'm keyslot option array array; (* per dst, key-indexed *)
  (* Distinct-sender counts mirrored out of the keyslots into flat int
     rows (grown in lockstep with [kdense]): the quorum predicates reading
     [keyed_nsenders] run on every blocked-predicate evaluation, and two
     flat array reads replace the option + record pointer chase. *)
  knsend : int array array;
  keyed_ovf : (int, 'm keyslot) Hashtbl.t array;
  conds : Sim.cond array;
  (* Quorum watches: one per destination, registered by [quorum_cond].
     The indexer signals the watch only when the watched key's distinct-
     sender count crosses the registered threshold, so a quorum wait costs
     one int compare per delivery instead of a predicate re-evaluation —
     deliveries that cannot satisfy the wait never wake it.  [min_int]
     means "no watch". *)
  watch_key : int array;
  watch_q : int array;
  watch_conds : Sim.cond array;
  mutable handlers : ('m envelope -> unit) list; (* registration order *)
  mutable sent : int;
  mutable delivered : int;
  (* Pre-resolved trace counters (one hash at create, O(1) per message). *)
  h_sent : Trace.counter;
  h_delivered : Trace.counter;
  h_deferred : Trace.counter;
  (* Flat in-flight store: one row per scheduled message, chained into
     per-(dst, time) batches so all envelopes reaching one mailbox at one
     instant cost a single queue event.  [r_next] doubles as the batch
     chain (live rows) and the free list (free rows). *)
  mutable disp : int; (* our dispatcher id in the simulator *)
  mutable r_src : int array;
  mutable r_dst : int array;
  mutable r_sent : float array;
  mutable r_pay : 'm option array;
  mutable r_next : int array;
  mutable r_free : int; (* free-list head, -1 = none *)
  (* The open (= still-queued, still-appendable) batch per destination:
     head/tail row of the chain and the batch's delivery time.  Cleared by
     the dispatcher when the tracked batch fires. *)
  open_slot : int array; (* arena slot of the queued event, -1 = none *)
  open_head : int array;
  open_tail : int array;
  open_time : float array;
}

let kdense_max = 1 lsl 16

let fresh_keyslot () =
  { k_count = 0; k_senders = Pidset.empty; k_nsenders = 0; k_envs = [] }

(* Get-or-create the slot for [key] at [dst]. *)
let keyslot_get t dst key =
  if key >= 0 && key < kdense_max then begin
    let row = t.kdense.(dst) in
    let len = Array.length row in
    if key < len then
      match row.(key) with
      | Some s -> s
      | None ->
          let s = fresh_keyslot () in
          row.(key) <- Some s;
          s
    else begin
      let nlen = ref (max 16 (2 * len)) in
      while key >= !nlen do
        nlen := 2 * !nlen
      done;
      let row' = Array.make !nlen None in
      Array.blit row 0 row' 0 len;
      t.kdense.(dst) <- row';
      let kn' = Array.make !nlen 0 in
      Array.blit t.knsend.(dst) 0 kn' 0 len;
      t.knsend.(dst) <- kn';
      let s = fresh_keyslot () in
      row'.(key) <- Some s;
      s
    end
  end
  else
    match Hashtbl.find t.keyed_ovf.(dst) key with
    | s -> s
    | exception Not_found ->
        let s = fresh_keyslot () in
        Hashtbl.add t.keyed_ovf.(dst) key s;
        s

(* The slot for [key] at [pid], if any delivery created it. *)
let keyslot_find t pid key =
  if key >= 0 && key < kdense_max then
    let row = t.kdense.(pid) in
    if key < Array.length row then row.(key) else None
  else Hashtbl.find_opt t.keyed_ovf.(pid) key

let index t ~dst (env : 'm envelope) key =
  let slot = keyslot_get t dst key in
  slot.k_count <- slot.k_count + 1;
  if not (Pidset.mem env.src slot.k_senders) then begin
    slot.k_senders <- Pidset.add env.src slot.k_senders;
    slot.k_nsenders <- slot.k_nsenders + 1;
    if key >= 0 && key < kdense_max then
      t.knsend.(dst).(key) <- slot.k_nsenders;
    (* Counts only increment by one, so [=] fires exactly at the crossing
       (a watch registered at-or-above its threshold is resolved by the
       await's immediate first evaluation instead). *)
    if t.watch_key.(dst) = key && slot.k_nsenders = t.watch_q.(dst) then
      Sim.Cond.signal t.watch_conds.(dst)
  end;
  slot.k_envs <- env :: slot.k_envs

let rec deliver t ~src ~dst ~sent_at payload () =
  if not (Sim.is_crashed t.sim dst) then begin
    match Sim.stall_end t.sim dst with
    | Some resume_at ->
        (* A stalled process is frozen: the channel holds the message and
           re-presents it when the stall window closes. *)
        Trace.bump t.h_deferred 1;
        Sim.at t.sim ~time:resume_at (deliver t ~src ~dst ~sent_at payload)
    | None -> deliver_now t ~src ~dst ~sent_at payload
  end

and deliver_now t ~src ~dst ~sent_at payload =
  begin
    let env = { src; dst; sent_at; delivered_at = Sim.now t.sim; payload } in
    if t.retain then Vec.push t.boxes.(dst) env;
    (match t.classify with Some f -> index t ~dst env (f payload) | None -> ());
    t.delivered <- t.delivered + 1;
    Trace.bump t.h_delivered 1;
    let tr = Sim.trace t.sim in
    if Trace.records_full tr then
      Trace.record tr ~time:env.delivered_at
        (Trace.Deliver { src; dst; tag = t.tag });
    (* Match form: no closure capture when the common cases (no handler,
       one handler) run on every delivery. *)
    (match t.handlers with
    | [] -> ()
    | [ h ] -> h env
    | hs -> List.iter (fun h -> h env) hs);
    Sim.Cond.signal t.conds.(dst)
  end

(* ---- Flat rows and batched dispatch ---- *)

let row_grow t =
  let cap = Array.length t.r_src in
  let ncap = max 16 (2 * cap) in
  let copy a fill =
    let a' = Array.make ncap fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.r_src <- copy t.r_src 0;
  t.r_dst <- copy t.r_dst 0;
  t.r_sent <- copy t.r_sent 0.0;
  t.r_pay <- copy t.r_pay None;
  t.r_next <- copy t.r_next (-1);
  for i = cap to ncap - 1 do
    t.r_next.(i) <- (if i + 1 < ncap then i + 1 else t.r_free)
  done;
  t.r_free <- cap

let row_alloc t ~src ~dst ~sent_at payload =
  if t.r_free = -1 then row_grow t;
  let r = t.r_free in
  t.r_free <- t.r_next.(r);
  t.r_src.(r) <- src;
  t.r_dst.(r) <- dst;
  t.r_sent.(r) <- sent_at;
  t.r_pay.(r) <- Some payload;
  t.r_next.(r) <- -1;
  r

let row_free t r =
  t.r_pay.(r) <- None;
  t.r_next.(r) <- t.r_free;
  t.r_free <- r

(* Fire one batch: deliver the chained rows in append (= send) order.
   Each row still gets the per-message crash/stall treatment — a stalled
   destination's messages are re-presented individually at the stall
   end. *)
let dispatch t head =
  let dst = t.r_dst.(head) in
  if t.open_head.(dst) = head then begin
    t.open_slot.(dst) <- -1;
    t.open_head.(dst) <- -1;
    t.open_tail.(dst) <- -1;
    t.open_time.(dst) <- neg_infinity
  end;
  let row = ref head in
  while !row >= 0 do
    let r = !row in
    let src = t.r_src.(r) and sent_at = t.r_sent.(r) in
    let payload = match t.r_pay.(r) with Some p -> p | None -> assert false in
    row := t.r_next.(r);
    (* Free before delivering: handlers may send, reusing this row; all
       fields are already read out. *)
    row_free t r;
    deliver t ~src ~dst ~sent_at payload ()
  done

(* Schedule a message for delivery at an absolute time.  Arena engine:
   append to the destination's open batch when one is queued for exactly
   this instant, else open a new batch (one event, one future mailbox
   drain for the whole batch).  Legacy engine: one closure event per
   message, the historical behavior. *)
let schedule_delivery t ~src ~dst ~sent_at ~deliver_at payload =
  if Sim.legacy_queue t.sim then
    Sim.at t.sim ~time:deliver_at (deliver t ~src ~dst ~sent_at payload)
  else begin
    let r = row_alloc t ~src ~dst ~sent_at payload in
    if t.open_head.(dst) >= 0 && t.open_time.(dst) = deliver_at then begin
      t.r_next.(t.open_tail.(dst)) <- r;
      t.open_tail.(dst) <- r
    end
    else begin
      let slot =
        Sim.schedule_dispatch t.sim ~time:deliver_at ~disp:t.disp ~row:r
      in
      t.open_slot.(dst) <- slot;
      t.open_head.(dst) <- r;
      t.open_tail.(dst) <- r;
      t.open_time.(dst) <- deliver_at
    end
  end

(* Real-runtime ingress: a message that already traveled the wire is
   handed to the local simulator as an immediate delivery event, so all
   mailbox/index/condition updates happen inside the event loop (the next
   [Sim.advance] tick), exactly like a locally sent message would. *)
let inject t ~src payload =
  match Sim.local t.sim with
  | None -> invalid_arg "Net.inject: simulator is not in real-runtime mode"
  | Some dst ->
      let sent_at = Sim.now t.sim in
      Sim.schedule t.sim ~delay:0.0 (deliver t ~src ~dst ~sent_at payload)

let create sim ?(tag = "net") ?(delay = Delay.default) ?(retain = true) ?classify
    ?loss () =
  let transport =
    Option.map (fun loss -> Lossy.Transport.create sim ~tag:(tag ^ ".l") ~delay ~loss ()) loss
  in
  let n = Sim.n sim in
  let tr = Sim.trace sim in
  let t =
    {
      sim;
      tag;
      delay;
      rng = Rng.split_named (Sim.rng sim) ("net:" ^ tag);
      frng = Rng.split_named (Sim.rng sim) ("fault:" ^ tag);
      retain;
      classify;
      transport;
      boxes = Array.init n (fun _ -> Vec.create ());
      kdense = Array.make n [||];
      knsend = Array.make n [||];
      keyed_ovf = Array.init n (fun _ -> Hashtbl.create 4);
      conds = Array.init n (fun _ -> Sim.Cond.create sim);
      watch_key = Array.make n min_int;
      watch_q = Array.make n 0;
      watch_conds = Array.init n (fun _ -> Sim.Cond.create sim);
      handlers = [];
      sent = 0;
      delivered = 0;
      h_sent = Trace.counter_handle tr (tag ^ ".sent");
      h_delivered = Trace.counter_handle tr (tag ^ ".delivered");
      h_deferred = Trace.counter_handle tr "fault.deferred";
      disp = -1;
      r_src = [||];
      r_dst = [||];
      r_sent = [||];
      r_pay = [||];
      r_next = [||];
      r_free = -1;
      open_slot = Array.make n (-1);
      open_head = Array.make n (-1);
      open_tail = Array.make n (-1);
      open_time = Array.make n neg_infinity;
    }
  in
  t.disp <- Sim.register_dispatcher sim (fun head -> dispatch t head);
  Option.iter
    (fun tr ->
      Lossy.Transport.on_deliver tr (fun ~src ~dst (sent_at, payload) ->
          deliver t ~src ~dst ~sent_at payload ()))
    transport;
  (* Real-runtime mode: the tag names this network's decoder in the node's
     inbound dispatch. *)
  (match Sim.local sim with
  | Some _ ->
      Sim.register_inlet sim ~tag (fun ~src ~bytes ->
          let payload : 'm = Marshal.from_bytes bytes 0 in
          inject t ~src payload)
  | None -> ());
  t

let sim t = t.sim
let cond t pid = t.conds.(pid)

let quorum_cond t pid ~key ~q =
  t.watch_key.(pid) <- key;
  t.watch_q.(pid) <- q;
  t.watch_conds.(pid)

let note_sent t ~src ~dst =
  t.sent <- t.sent + 1;
  Trace.bump t.h_sent 1;
  let tr = Sim.trace t.sim in
  if Trace.records_full tr then
    Trace.record tr ~time:(Sim.now t.sim) (Trace.Send { src; dst; tag = t.tag })

let send_at t ~src ~dst ~deliver_at payload =
  if not (Sim.is_crashed t.sim src) then begin
    note_sent t ~src ~dst;
    let sent_at = Sim.now t.sim in
    schedule_delivery t ~src ~dst ~sent_at
      ~deliver_at:(Float.max deliver_at sent_at)
      payload
  end

let send t ~src ~dst payload =
  if not (Sim.is_crashed t.sim src) then begin
    match (Sim.router t.sim, Sim.local t.sim) with
    (* Real-runtime egress: a send to a remote process leaves the
       simulator entirely — serialized, tagged, handed to the node's
       transport.  Self-sends stay on the local delivery path (with a
       sampled delay), so a process's own messages keep sim semantics. *)
    | Some route, Some l when dst <> l ->
        note_sent t ~src ~dst;
        route ~tag:t.tag ~src ~dst (Marshal.to_bytes payload [])
    | _ -> (
    match t.transport with
    (* Under a chooser the adversary owns delivery order: hand the
       delivery thunk to the pending pool instead of sampling a delay
       (no RNG draw, so controlled runs don't perturb uncontrolled
       replays of the same seed). *)
    | None when Sim.controlled t.sim ->
        note_sent t ~src ~dst;
        let sent_at = Sim.now t.sim in
        Sim.offer t.sim ~src ~dst (deliver t ~src ~dst ~sent_at payload)
    | None ->
        let now = Sim.now t.sim in
        if Sim.faults_none t.sim then
          let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
          send_at t ~src ~dst ~deliver_at:(now +. d) payload
        else begin
          let fa = Sim.faults t.sim in
          let plan = Faults.send_plan fa t.frng ~src ~dst ~now in
          let tr = Sim.trace t.sim in
          match plan.Faults.park with
          | Some until ->
              (* Parked, not lost: the link resumes service when the fault
                 window closes and the message then takes a normal hop. *)
              Trace.incr tr "fault.parked";
              let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
              send_at t ~src ~dst ~deliver_at:(until +. d) payload
          | None ->
              if plan.Faults.copies > 1 then
                Trace.add_to tr "fault.dup" (plan.Faults.copies - 1);
              if plan.Faults.extra > 0.0 then Trace.incr tr "fault.reorder";
              if plan.Faults.inflate <> 1.0 then Trace.incr tr "fault.inflated";
              for _copy = 1 to plan.Faults.copies do
                let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
                let d = (d *. plan.Faults.inflate) +. plan.Faults.extra in
                send_at t ~src ~dst ~deliver_at:(now +. d) payload
              done
        end
    | Some tr ->
        note_sent t ~src ~dst;
        Lossy.Transport.send tr ~src ~dst (Sim.now t.sim, payload))
  end

let broadcast t ~src payload =
  for dst = 0 to Sim.n t.sim - 1 do
    send t ~src ~dst payload
  done

let broadcast_staggered t ~src ~step payload =
  let n = Sim.n t.sim in
  let rec go dst =
    if dst < n then begin
      if not (Sim.is_crashed t.sim src) then begin
        send t ~src ~dst payload;
        Sim.schedule t.sim ~delay:step (fun () -> go (dst + 1))
      end
    end
  in
  go 0

let inbox t pid = Vec.to_list t.boxes.(pid)
let recv_filter t pid f = List.filter f (inbox t pid)

let recv_count t pid f =
  Vec.fold_left (fun acc e -> if f e then acc + 1 else acc) 0 t.boxes.(pid)

let distinct_senders t pid f =
  Vec.fold_left
    (fun acc e -> if f e then Pidset.add e.src acc else acc)
    Pidset.empty t.boxes.(pid)

let mail_cursor t pid = Vec.length t.boxes.(pid)
let recv_since t pid ~cursor = Vec.list_from t.boxes.(pid) ~cursor

let keyed_count t pid key =
  match keyslot_find t pid key with Some s -> s.k_count | None -> 0

(* The per-event quorum predicate: two flat reads off the mirror rows. *)
let keyed_nsenders t pid key =
  if key >= 0 && key < kdense_max then begin
    let row = t.knsend.(pid) in
    if key < Array.length row then row.(key) else 0
  end
  else match keyslot_find t pid key with Some s -> s.k_nsenders | None -> 0

let keyed_senders t pid key =
  match keyslot_find t pid key with
  | Some s -> s.k_senders
  | None -> Pidset.empty

let keyed_envs t pid key =
  match keyslot_find t pid key with
  | Some s -> List.rev s.k_envs
  | None -> []

let keyed_fold t pid key ~init ~f =
  match keyslot_find t pid key with
  | Some s -> List.fold_left f init s.k_envs
  | None -> init

let keyed_drop t pid key =
  if key >= 0 && key < kdense_max then begin
    let row = t.kdense.(pid) in
    if key < Array.length row then begin
      row.(key) <- None;
      t.knsend.(pid).(key) <- 0
    end
  end
  else Hashtbl.remove t.keyed_ovf.(pid) key

let on_deliver t h = t.handlers <- t.handlers @ [ h ]
let sent_count t = t.sent
let delivered_count t = t.delivered
