open Setagree_util
open Setagree_dsys

type 'm envelope = {
  src : Pid.t;
  dst : Pid.t;
  sent_at : float;
  delivered_at : float;
  payload : 'm;
}

(* Per-(destination, key) aggregate maintained incrementally at delivery
   time, so blocked-predicate readiness checks are O(1) lookups instead of
   whole-mailbox rescans. *)
type 'm keyslot = {
  mutable k_count : int;
  mutable k_senders : Pidset.t;
  mutable k_envs : 'm envelope list; (* newest-first; accessor reverses *)
}

type 'm t = {
  sim : Sim.t;
  tag : string;
  delay : Delay.t;
  rng : Rng.t;
  (* Fault decisions draw from their own named stream so that attaching a
     [Faults] spec (or not) never perturbs the delay draws of the run. *)
  frng : Rng.t;
  retain : bool;
  classify : ('m -> int) option;
  (* When present, sends travel through the stubborn transport over a
     fair-lossy link instead of the direct channel. *)
  transport : (float * 'm) Lossy.Transport.t option;
  (* Mailboxes are append-only logs in delivery order. *)
  boxes : 'm envelope Vec.t array;
  keyed : (int, 'm keyslot) Hashtbl.t array;
  conds : Sim.cond array;
  mutable handlers : ('m envelope -> unit) list; (* registration order *)
  mutable sent : int;
  mutable delivered : int;
}

let index t ~dst (env : 'm envelope) key =
  let slot =
    match Hashtbl.find_opt t.keyed.(dst) key with
    | Some s -> s
    | None ->
        let s = { k_count = 0; k_senders = Pidset.empty; k_envs = [] } in
        Hashtbl.add t.keyed.(dst) key s;
        s
  in
  slot.k_count <- slot.k_count + 1;
  slot.k_senders <- Pidset.add env.src slot.k_senders;
  slot.k_envs <- env :: slot.k_envs

let rec deliver t ~src ~dst ~sent_at payload () =
  if not (Sim.is_crashed t.sim dst) then begin
    match Sim.stall_end t.sim dst with
    | Some resume_at ->
        (* A stalled process is frozen: the channel holds the message and
           re-presents it when the stall window closes. *)
        Trace.incr (Sim.trace t.sim) "fault.deferred";
        Sim.at t.sim ~time:resume_at (deliver t ~src ~dst ~sent_at payload)
    | None -> deliver_now t ~src ~dst ~sent_at payload
  end

and deliver_now t ~src ~dst ~sent_at payload =
  begin
    let env = { src; dst; sent_at; delivered_at = Sim.now t.sim; payload } in
    if t.retain then Vec.push t.boxes.(dst) env;
    (match t.classify with Some f -> index t ~dst env (f payload) | None -> ());
    t.delivered <- t.delivered + 1;
    let tr = Sim.trace t.sim in
    Trace.incr tr (t.tag ^ ".delivered");
    if Trace.records_full tr then
      Trace.record tr ~time:env.delivered_at
        (Trace.Deliver { src; dst; tag = t.tag });
    List.iter (fun h -> h env) t.handlers;
    Sim.Cond.signal t.conds.(dst)
  end

(* Real-runtime ingress: a message that already traveled the wire is
   handed to the local simulator as an immediate delivery event, so all
   mailbox/index/condition updates happen inside the event loop (the next
   [Sim.advance] tick), exactly like a locally sent message would. *)
let inject t ~src payload =
  match Sim.local t.sim with
  | None -> invalid_arg "Net.inject: simulator is not in real-runtime mode"
  | Some dst ->
      let sent_at = Sim.now t.sim in
      Sim.schedule t.sim ~delay:0.0 (deliver t ~src ~dst ~sent_at payload)

let create sim ?(tag = "net") ?(delay = Delay.default) ?(retain = true) ?classify
    ?loss () =
  let transport =
    Option.map (fun loss -> Lossy.Transport.create sim ~tag:(tag ^ ".l") ~delay ~loss ()) loss
  in
  let n = Sim.n sim in
  let t =
    {
      sim;
      tag;
      delay;
      rng = Rng.split_named (Sim.rng sim) ("net:" ^ tag);
      frng = Rng.split_named (Sim.rng sim) ("fault:" ^ tag);
      retain;
      classify;
      transport;
      boxes = Array.init n (fun _ -> Vec.create ());
      keyed = Array.init n (fun _ -> Hashtbl.create 16);
      conds = Array.init n (fun _ -> Sim.Cond.create sim);
      handlers = [];
      sent = 0;
      delivered = 0;
    }
  in
  Option.iter
    (fun tr ->
      Lossy.Transport.on_deliver tr (fun ~src ~dst (sent_at, payload) ->
          deliver t ~src ~dst ~sent_at payload ()))
    transport;
  (* Real-runtime mode: the tag names this network's decoder in the node's
     inbound dispatch. *)
  (match Sim.local sim with
  | Some _ ->
      Sim.register_inlet sim ~tag (fun ~src ~bytes ->
          let payload : 'm = Marshal.from_bytes bytes 0 in
          inject t ~src payload)
  | None -> ());
  t

let sim t = t.sim
let cond t pid = t.conds.(pid)

let note_sent t ~src ~dst =
  t.sent <- t.sent + 1;
  let tr = Sim.trace t.sim in
  Trace.incr tr (t.tag ^ ".sent");
  if Trace.records_full tr then
    Trace.record tr ~time:(Sim.now t.sim) (Trace.Send { src; dst; tag = t.tag })

let send_at t ~src ~dst ~deliver_at payload =
  if not (Sim.is_crashed t.sim src) then begin
    note_sent t ~src ~dst;
    let sent_at = Sim.now t.sim in
    Sim.at t.sim ~time:(Float.max deliver_at sent_at)
      (deliver t ~src ~dst ~sent_at payload)
  end

let send t ~src ~dst payload =
  if not (Sim.is_crashed t.sim src) then begin
    match (Sim.router t.sim, Sim.local t.sim) with
    (* Real-runtime egress: a send to a remote process leaves the
       simulator entirely — serialized, tagged, handed to the node's
       transport.  Self-sends stay on the local delivery path (with a
       sampled delay), so a process's own messages keep sim semantics. *)
    | Some route, Some l when dst <> l ->
        note_sent t ~src ~dst;
        route ~tag:t.tag ~src ~dst (Marshal.to_bytes payload [])
    | _ -> (
    match t.transport with
    (* Under a chooser the adversary owns delivery order: hand the
       delivery thunk to the pending pool instead of sampling a delay
       (no RNG draw, so controlled runs don't perturb uncontrolled
       replays of the same seed). *)
    | None when Sim.controlled t.sim ->
        note_sent t ~src ~dst;
        let sent_at = Sim.now t.sim in
        Sim.offer t.sim ~src ~dst (deliver t ~src ~dst ~sent_at payload)
    | None ->
        let now = Sim.now t.sim in
        let fa = Sim.faults t.sim in
        if Faults.is_none fa then
          let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
          send_at t ~src ~dst ~deliver_at:(now +. d) payload
        else begin
          let plan = Faults.send_plan fa t.frng ~src ~dst ~now in
          let tr = Sim.trace t.sim in
          match plan.Faults.park with
          | Some until ->
              (* Parked, not lost: the link resumes service when the fault
                 window closes and the message then takes a normal hop. *)
              Trace.incr tr "fault.parked";
              let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
              send_at t ~src ~dst ~deliver_at:(until +. d) payload
          | None ->
              if plan.Faults.copies > 1 then
                Trace.add_to tr "fault.dup" (plan.Faults.copies - 1);
              if plan.Faults.extra > 0.0 then Trace.incr tr "fault.reorder";
              if plan.Faults.inflate <> 1.0 then Trace.incr tr "fault.inflated";
              for _copy = 1 to plan.Faults.copies do
                let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
                let d = (d *. plan.Faults.inflate) +. plan.Faults.extra in
                send_at t ~src ~dst ~deliver_at:(now +. d) payload
              done
        end
    | Some tr ->
        note_sent t ~src ~dst;
        Lossy.Transport.send tr ~src ~dst (Sim.now t.sim, payload))
  end

let broadcast t ~src payload =
  for dst = 0 to Sim.n t.sim - 1 do
    send t ~src ~dst payload
  done

let broadcast_staggered t ~src ~step payload =
  let n = Sim.n t.sim in
  let rec go dst =
    if dst < n then begin
      if not (Sim.is_crashed t.sim src) then begin
        send t ~src ~dst payload;
        Sim.schedule t.sim ~delay:step (fun () -> go (dst + 1))
      end
    end
  in
  go 0

let inbox t pid = Vec.to_list t.boxes.(pid)
let recv_filter t pid f = List.filter f (inbox t pid)

let recv_count t pid f =
  Vec.fold_left (fun acc e -> if f e then acc + 1 else acc) 0 t.boxes.(pid)

let distinct_senders t pid f =
  Vec.fold_left
    (fun acc e -> if f e then Pidset.add e.src acc else acc)
    Pidset.empty t.boxes.(pid)

let mail_cursor t pid = Vec.length t.boxes.(pid)
let recv_since t pid ~cursor = Vec.list_from t.boxes.(pid) ~cursor

let keyed_count t pid key =
  match Hashtbl.find_opt t.keyed.(pid) key with Some s -> s.k_count | None -> 0

let keyed_senders t pid key =
  match Hashtbl.find_opt t.keyed.(pid) key with
  | Some s -> s.k_senders
  | None -> Pidset.empty

let keyed_envs t pid key =
  match Hashtbl.find_opt t.keyed.(pid) key with
  | Some s -> List.rev s.k_envs
  | None -> []

let on_deliver t h = t.handlers <- t.handlers @ [ h ]
let sent_count t = t.sent
let delivered_count t = t.delivered
