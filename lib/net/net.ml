open Setagree_util
open Setagree_dsys

type 'm envelope = {
  src : Pid.t;
  dst : Pid.t;
  sent_at : float;
  delivered_at : float;
  payload : 'm;
}

type 'm t = {
  sim : Sim.t;
  tag : string;
  delay : Delay.t;
  rng : Rng.t;
  retain : bool;
  (* When present, sends travel through the stubborn transport over a
     fair-lossy link instead of the direct channel. *)
  transport : (float * 'm) Lossy.Transport.t option;
  (* Mailboxes store envelopes most-recent-first; [inbox] reverses. *)
  mutable mailboxes : 'm envelope list array;
  mutable handlers : ('m envelope -> unit) list;
  mutable sent : int;
  mutable delivered : int;
}

let deliver t ~src ~dst ~sent_at payload () =
  if not (Sim.is_crashed t.sim dst) then begin
    let env = { src; dst; sent_at; delivered_at = Sim.now t.sim; payload } in
    if t.retain then t.mailboxes.(dst) <- env :: t.mailboxes.(dst);
    t.delivered <- t.delivered + 1;
    Trace.incr (Sim.trace t.sim) (t.tag ^ ".delivered");
    List.iter (fun h -> h env) (List.rev t.handlers)
  end

let create sim ?(tag = "net") ?(delay = Delay.default) ?(retain = true) ?loss () =
  let transport =
    Option.map (fun loss -> Lossy.Transport.create sim ~tag:(tag ^ ".l") ~delay ~loss ()) loss
  in
  let t =
    {
      sim;
      tag;
      delay;
      rng = Rng.split_named (Sim.rng sim) ("net:" ^ tag);
      retain;
      transport;
      mailboxes = Array.make (Sim.n sim) [];
      handlers = [];
      sent = 0;
      delivered = 0;
    }
  in
  Option.iter
    (fun tr ->
      Lossy.Transport.on_deliver tr (fun ~src ~dst (sent_at, payload) ->
          deliver t ~src ~dst ~sent_at payload ()))
    transport;
  t

let sim t = t.sim

let send_at t ~src ~dst ~deliver_at payload =
  if not (Sim.is_crashed t.sim src) then begin
    t.sent <- t.sent + 1;
    Trace.incr (Sim.trace t.sim) (t.tag ^ ".sent");
    let sent_at = Sim.now t.sim in
    Sim.at t.sim ~time:(Float.max deliver_at sent_at)
      (deliver t ~src ~dst ~sent_at payload)
  end

let send t ~src ~dst payload =
  if not (Sim.is_crashed t.sim src) then begin
    match t.transport with
    | None ->
        let now = Sim.now t.sim in
        let d = Delay.sample t.delay ~rng:t.rng ~src ~dst ~now in
        send_at t ~src ~dst ~deliver_at:(now +. d) payload
    | Some tr ->
        t.sent <- t.sent + 1;
        Trace.incr (Sim.trace t.sim) (t.tag ^ ".sent");
        Lossy.Transport.send tr ~src ~dst (Sim.now t.sim, payload)
  end

let broadcast t ~src payload =
  for dst = 0 to Sim.n t.sim - 1 do
    send t ~src ~dst payload
  done

let broadcast_staggered t ~src ~step payload =
  let n = Sim.n t.sim in
  let rec go dst =
    if dst < n then begin
      if not (Sim.is_crashed t.sim src) then begin
        send t ~src ~dst payload;
        Sim.schedule t.sim ~delay:step (fun () -> go (dst + 1))
      end
    end
  in
  go 0

let inbox t pid = List.rev t.mailboxes.(pid)
let recv_filter t pid f = List.filter f (inbox t pid)

let recv_count t pid f =
  List.fold_left (fun acc e -> if f e then acc + 1 else acc) 0 t.mailboxes.(pid)

let distinct_senders t pid f =
  List.fold_left
    (fun acc e -> if f e then Pidset.add e.src acc else acc)
    Pidset.empty t.mailboxes.(pid)

let on_deliver t h = t.handlers <- h :: t.handlers
let sent_count t = t.sent
let delivered_count t = t.delivered
