(** Point-to-point asynchronous reliable channels (paper §2.1).

    Channels connect every pair of processes; they do not create, alter or
    lose messages, and are {e not} FIFO — each message gets an independent
    delay.  A message sent to a process that has crashed by delivery time is
    dropped (equivalently: delivered to a dead process).

    One ['m t] carries one protocol's message type; layered protocols (e.g.
    the two wheels under a k-set agreement) each create their own network
    over the same simulator, mirroring the paper's module structure.

    {b Mailboxes are indexed.}  Each destination owns an append-only log
    read either whole ({!inbox}), incrementally ({!recv_since} with a
    cursor), or through per-key aggregates maintained at delivery time
    when a {!create}-time [classify] function maps payloads to integer
    keys: {!keyed_count}, {!keyed_senders} and {!keyed_envs} are O(1)/
    O(matches) lookups, never mailbox rescans.  Every delivery to [dst]
    signals {!cond}[ t dst], which is what {!Setagree_dsys.Sim.Cond.await}
    predicates over this network subscribe to. *)

open Setagree_util
open Setagree_dsys

type 'm envelope = {
  src : Pid.t;
  dst : Pid.t;
  sent_at : float;
  delivered_at : float;
  payload : 'm;
}

type 'm t

val create :
  Sim.t ->
  ?tag:string ->
  ?delay:Delay.t ->
  ?retain:bool ->
  ?classify:('m -> int) ->
  ?loss:float ->
  unit ->
  'm t
(** [create sim ~tag ~delay ()] — [tag] names the protocol in traces and
    counters (default ["net"]); [delay] defaults to {!Delay.default}.
    Delay draws come from an RNG split off the simulator's root with the
    tag as key, so adding another network does not perturb this one.
    [retain] (default true): keep delivered envelopes in mailboxes for
    {!inbox}-style reads; protocols that consume messages purely through
    {!on_deliver} callbacks should pass [false] so unbounded runs stay in
    bounded memory.
    [classify]: map each payload to an integer key maintained in the
    per-(destination, key) delivery index — the protocol's round/phase
    structure, typically.  Classification happens on every delivery even
    with [retain = false].
    [loss]: when given, every {!send} travels through a stubborn reliable
    transport over a fair-lossy link dropping that fraction of copies
    ({!Lossy.Transport}) — same delivery guarantees between correct
    processes, higher latency and raw-link traffic.  {!send_at} stays
    direct (it is the adversary's injection primitive, not a channel). *)

val sim : 'm t -> Sim.t

val cond : 'm t -> Pid.t -> Sim.cond
(** The destination's delivery condition: signalled on every delivery to
    the process.  Subscribe {!Sim.Cond.await} predicates that read this
    process's mailbox state to it. *)

val quorum_cond : 'm t -> Pid.t -> key:int -> q:int -> Sim.cond
(** Threshold form of {!cond} for the quorum waits that dominate round
    structure: registers (replacing the process's previous registration)
    a watch on the keyed delivery index and returns a condition signalled
    {e only} when the distinct-sender count for [key] at the process
    crosses [q].  A predicate of the shape
    [decided || keyed_nsenders t pid key >= q] subscribed to this (plus
    whatever signals [decided]) is re-evaluated once at the crossing
    delivery instead of at every delivery — same wakeup instant, since
    the count is monotone and only grows at deliveries of [key].  One
    watch per process per net: registering for a new round supersedes the
    old watch, matching protocols that hold at most one quorum wait at a
    time. *)

val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> unit
(** Asynchronous send; returns immediately.  No-op if [src] already
    crashed (a dead process takes no step).  When a {!Sim} chooser is
    installed ([Sim.controlled]) and the net has no lossy transport, the
    delivery is offered to the chooser's pending pool instead of being
    scheduled after a sampled delay — the explorer picks the order.

    {b Fault injection.}  When the simulator carries a fault spec
    ([Sim.faults] not [Faults.none]) and the net is neither controlled
    nor transport-backed, each send is evaluated against the spec
    ([Faults.send_plan], on a dedicated rng stream): partitioned or
    dropped messages are parked until their fault window closes and then
    take a normal hop, duplicated messages get extra copies with
    independent delays, and reorder/inflation faults stretch the sampled
    delay.  Deliveries to a currently {e stalled} destination are held by
    the channel and re-presented when the stall window ends (applies on
    every path, including {!send_at} and transport-backed nets).
    Controlled runs skip the spec — the chooser owns nondeterminism —
    and transport-backed nets already model their own link faults. *)

val send_at : 'm t -> src:Pid.t -> dst:Pid.t -> deliver_at:float -> 'm -> unit
(** Adversarial variant: deliver at an absolute virtual time. *)

val broadcast : 'm t -> src:Pid.t -> 'm -> unit
(** The paper's [Broadcast m]: send to every process including the sender.
    Executes atomically at the current instant (each copy still gets its own
    delay); use {!broadcast_staggered} when crash-interrupted partial
    broadcasts must be possible. *)

val broadcast_staggered : 'm t -> src:Pid.t -> step:float -> 'm -> unit
(** Sends to destinations one by one, [step] time units apart, stopping if
    the sender crashes in between — the failure mode reliable broadcast
    exists to mask. *)

val inbox : 'm t -> Pid.t -> 'm envelope list
(** All messages delivered to the process so far, in delivery order. *)

val recv_filter : 'm t -> Pid.t -> ('m envelope -> bool) -> 'm envelope list

val recv_count : 'm t -> Pid.t -> ('m envelope -> bool) -> int

val distinct_senders : 'm t -> Pid.t -> ('m envelope -> bool) -> Pidset.t
(** Senders of matching delivered messages — the "received from n-t
    processes" guards count distinct senders. *)

val mail_cursor : 'm t -> Pid.t -> int
(** Current length of the process's mailbox log; pass to {!recv_since}
    later to read only what arrived in between. *)

val recv_since : 'm t -> Pid.t -> cursor:int -> 'm envelope list
(** Envelopes appended at positions [>= cursor], in delivery order. *)

(** {1 Keyed delivery index} (requires [classify] at {!create}) *)

val keyed_count : 'm t -> Pid.t -> int -> int
(** Deliveries to the process whose payload classified to the key. *)

val keyed_senders : 'm t -> Pid.t -> int -> Pidset.t
(** Distinct senders among them — the O(1) form of the "received PHASE1(r)
    from n-t processes" readiness checks. *)

val keyed_nsenders : 'm t -> Pid.t -> int -> int
(** [cardinal (keyed_senders t pid key)] without the popcount — an int
    maintained at delivery, for quorum predicates evaluated per event. *)

val keyed_envs : 'm t -> Pid.t -> int -> 'm envelope list
(** The matching envelopes, in delivery order (copies the stored list). *)

val keyed_fold :
  'm t -> Pid.t -> int -> init:'a -> f:('a -> 'm envelope -> 'a) -> 'a
(** Fold over the matching envelopes, newest first — no copy.  For the
    per-wakeup scans on the protocol hot path whose result is
    order-independent (tallies, minima, quorum contents). *)

val keyed_drop : 'm t -> Pid.t -> int -> unit
(** Retire the aggregate for a key the process will never read again (a
    finished round): its envelopes become garbage instead of retained
    history, keeping a long run's live heap bounded by the round window.
    A late delivery for a dropped key starts a fresh, empty aggregate —
    harmless as long as the protocol really is done with the key. *)

val inject : 'm t -> src:Pid.t -> 'm -> unit
(** Real-runtime ingress: deliver a message that already traveled the
    wire to the {!Setagree_dsys.Sim.local} pid, as an immediate delivery
    event of the local simulator (mailbox append, keyed index, handlers
    and condition signal all happen inside the next [Sim.advance] tick).
    Raises [Invalid_argument] on a simulator without [local].  The
    inverse direction is automatic: on a [local] simulator, {!create}
    registers an inlet under the net's tag that decodes and injects, and
    {!send} routes remote-bound messages through [Sim.set_router]. *)

val on_deliver : 'm t -> ('m envelope -> unit) -> unit
(** Register a callback run at each delivery (after the mailbox append and
    only if the destination is alive).  Callbacks run in registration
    order.  Used for the paper's "when m is delivered" tasks. *)

val sent_count : 'm t -> int
(** Total messages sent through this network. *)

val delivered_count : 'm t -> int
