open Setagree_util
open Setagree_dsys

type 'm delivery = { origin : Pid.t; body : 'm; at : float }
type 'm tagged = { torigin : Pid.t; uid : int; body : 'm }

type 'm t = {
  sim : Sim.t;
  net : 'm tagged Net.t;
  stagger : float option;
  seen : (Pid.t * int, unit) Hashtbl.t array;
  (* R-deliveries per process, an append-only log in delivery order. *)
  rdelivered : 'm delivery Vec.t array;
  conds : Sim.cond array;
  mutable next_uid : int array;
  mutable handlers : (Pid.t -> 'm delivery -> unit) list; (* registration order *)
}

let relay t ~src msg =
  match t.stagger with
  | None -> Net.broadcast t.net ~src msg
  | Some step -> Net.broadcast_staggered t.net ~src ~step msg

let rdeliver t pid (msg : 'm tagged) at =
  let d = { origin = msg.torigin; body = msg.body; at } in
  Vec.push t.rdelivered.(pid) d;
  List.iter (fun h -> h pid d) t.handlers;
  Sim.Cond.signal t.conds.(pid)

(* First receipt: relay before delivering, so that if this process is
   correct, everyone eventually gets the message (Termination). *)
let on_first t pid (msg : 'm tagged) =
  if not (Hashtbl.mem t.seen.(pid) (msg.torigin, msg.uid)) then begin
    Hashtbl.add t.seen.(pid) (msg.torigin, msg.uid) ();
    relay t ~src:pid msg;
    rdeliver t pid msg (Sim.now t.sim)
  end

let create sim ?(tag = "rbcast") ?(delay = Delay.default) ?stagger ?loss () =
  let n = Sim.n sim in
  let t =
    {
      sim;
      net = Net.create sim ~tag ~delay ?loss ();
      stagger;
      seen = Array.init n (fun _ -> Hashtbl.create 64);
      rdelivered = Array.init n (fun _ -> Vec.create ());
      conds = Array.init n (fun _ -> Sim.Cond.create sim);
      next_uid = Array.make n 0;
      handlers = [];
    }
  in
  Net.on_deliver t.net (fun env -> on_first t env.Net.dst env.Net.payload);
  t

let sim t = t.sim
let cond t pid = t.conds.(pid)

let broadcast t ~src body =
  if not (Sim.is_crashed t.sim src) then begin
    let uid = t.next_uid.(src) in
    t.next_uid.(src) <- uid + 1;
    let msg = { torigin = src; uid; body } in
    (* The origin marks, relays, and delivers locally — it "receives" its own
       message first. *)
    Hashtbl.add t.seen.(src) (src, uid) ();
    relay t ~src msg;
    rdeliver t src msg (Sim.now t.sim)
  end

let delivered t pid = Vec.to_list t.rdelivered.(pid)

let delivered_count t pid f =
  Vec.fold_left (fun acc d -> if f d then acc + 1 else acc) 0 t.rdelivered.(pid)

let on_deliver t h = t.handlers <- t.handlers @ [ h ]
let underlying_sent t = Net.sent_count t.net
