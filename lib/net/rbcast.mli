(** Reliable broadcast (paper §2.1), implemented — not assumed — over the
    point-to-point channels, by echo relay:

    - to R-broadcast [m], the origin tags it with a fresh uid and sends it to
      everybody (possibly staggered, so a crash can cut the loop short);
    - on first receipt of a tagged message, a process first relays it to
      everybody and then R-delivers it.

    This yields Validity (no spurious messages), Integrity (at most one
    delivery per message, via the uid), and Termination (a correct process
    that R-delivers has already relayed, so every correct process
    R-delivers).  Non-FIFO, as required: uids order nothing. *)

open Setagree_util
open Setagree_dsys

type 'm delivery = { origin : Pid.t; body : 'm; at : float }

type 'm t

val create :
  Sim.t -> ?tag:string -> ?delay:Delay.t -> ?stagger:float -> ?loss:float -> unit -> 'm t
(** [stagger] (default [None] ⇒ atomic send loops) spaces the individual
    sends of the origin's initial broadcast and of relays, making partial
    broadcasts (crash mid-loop) possible — the case the relay masks.
    [loss] routes the underlying channels over the lossy-link transport
    (see {!Net.create}). *)

val sim : 'm t -> Sim.t

val cond : 'm t -> Pid.t -> Sim.cond
(** The process's R-delivery condition: signalled at each of its
    R-deliveries.  Subscribe {!Sim.Cond.await} predicates that read state
    updated by this process's {!on_deliver} callbacks (e.g. a "decided"
    flag) to it. *)

val broadcast : 'm t -> src:Pid.t -> 'm -> unit
(** R-broadcast.  No-op if [src] has crashed. *)

val delivered : 'm t -> Pid.t -> 'm delivery list
(** Messages R-delivered by the process so far, in delivery order. *)

val delivered_count : 'm t -> Pid.t -> ('m delivery -> bool) -> int

val on_deliver : 'm t -> (Pid.t -> 'm delivery -> unit) -> unit
(** Callback at each R-delivery (pid is the delivering process). *)

val underlying_sent : 'm t -> int
(** Point-to-point messages consumed by the implementation. *)
