open Setagree_util
open Setagree_fd

let phi_floor = 1e-4 (* caps phi at 4: "later than every observed gap" *)

type peer = {
  gaps : float array; (* ring buffer of inter-arrival gaps *)
  mutable count : int; (* gaps recorded, <= window *)
  mutable next : int; (* ring write index *)
  mutable last : float; (* last arrival time; nan before the first *)
  mutable accrual_suspected : bool; (* last suspicion verdict from the warm path *)
  mutable accrual_false : int;
}

type t = {
  self : Pid.t;
  n : int;
  window : int;
  threshold : float;
  min_samples : int;
  peers : peer array;
  tm : Timeout.t; (* bootstrap detector while histograms are cold *)
}

let create ?(window = 200) ?(threshold = 2.0) ?(min_samples = 5) ?(timeout_initial = 0.1)
    ?(timeout_factor = 1.5) ?(timeout_cap = 2.0) ~rng ~self ~n () =
  if window < 1 then invalid_arg "Accrual.create: window";
  if min_samples < 1 then invalid_arg "Accrual.create: min_samples";
  if self < 0 || self >= n then invalid_arg "Accrual.create: self out of range";
  {
    self;
    n;
    window;
    threshold;
    min_samples;
    peers =
      Array.init n (fun _ ->
          {
            gaps = Array.make window 0.0;
            count = 0;
            next = 0;
            last = Float.nan;
            accrual_suspected = false;
            accrual_false = 0;
          });
    tm =
      Timeout.create ~initial:timeout_initial ~factor:timeout_factor ~cap:timeout_cap ~rng ~n
        ();
  }

let warm t p = p.count >= t.min_samples

(* P[a heartbeat still arrives after this much silence], estimated from the
   window; floored so phi stays finite past the observed maximum. *)
let p_later p ~elapsed =
  let later = ref 0 in
  for k = 0 to p.count - 1 do
    if p.gaps.(k) >= elapsed then incr later
  done;
  Float.max phi_floor (float_of_int !later /. float_of_int p.count)

let phi t j ~now =
  if j = t.self || j < 0 || j >= t.n then 0.0
  else begin
    let p = t.peers.(j) in
    if warm t p then
      if Float.is_nan p.last then 0.0
      else -.Float.log10 (p_later p ~elapsed:(now -. p.last))
    else if Timeout.expired t.tm t.self j ~now then t.threshold
    else 0.0
  end

let suspects t j ~now = j <> t.self && j >= 0 && j < t.n && phi t j ~now >= t.threshold

(* Track warm-path verdicts so disproven suspicions are counted even after
   the Timeout bootstrap stops being consulted. *)
let note_verdict t j ~now =
  let p = t.peers.(j) in
  if warm t p then p.accrual_suspected <- phi t j ~now >= t.threshold

let heartbeat t j ~now =
  if j <> t.self && j >= 0 && j < t.n then begin
    let p = t.peers.(j) in
    if warm t p && p.accrual_suspected then begin
      p.accrual_false <- p.accrual_false + 1;
      p.accrual_suspected <- false
    end;
    if not (Float.is_nan p.last) then begin
      let gap = now -. p.last in
      p.gaps.(p.next) <- gap;
      p.next <- (p.next + 1) mod t.window;
      if p.count < t.window then p.count <- p.count + 1
    end;
    p.last <- now;
    (* Timeout.heard counts its own disproven suspicions (bootstrap phase). *)
    Timeout.heard t.tm t.self j ~now
  end

let suspected t ~now =
  let s = ref Pidset.empty in
  for j = 0 to t.n - 1 do
    if j <> t.self then begin
      note_verdict t j ~now;
      if suspects t j ~now then s := Pidset.add j !s
    end
  done;
  !s

(* Same deterministic extraction as [Impl.omega]: the z smallest currently
   unsuspected pids, never empty. *)
let trusted t ~z ~now =
  let sus = suspected t ~now in
  let out = ref Pidset.empty in
  let taken = ref 0 in
  for j = 0 to t.n - 1 do
    if !taken < z && not (Pidset.mem j sus) then begin
      out := Pidset.add j !out;
      incr taken
    end
  done;
  if Pidset.is_empty !out then Pidset.add t.self Pidset.empty else !out

(* Same shape as [Impl.querier]: triviality short-circuits; meaningful
   window answers from current suspicions. *)
let query t ~t_bound ~y x ~now =
  let c = Pidset.cardinal x in
  if c <= t_bound - y then true
  else if c > t_bound then false
  else Pidset.subset x (suspected t ~now)

let samples t j = if j >= 0 && j < t.n then t.peers.(j).count else 0

let false_suspicions t =
  Timeout.false_suspicions t.tm
  + Array.fold_left (fun acc p -> acc + p.accrual_false) 0 t.peers
