(** Adaptive accrual failure detection over heartbeat inter-arrival
    histograms (Satzger et al. style), with a {!Setagree_fd.Timeout}
    bootstrap while a pair's histogram is still cold.

    Per subject, the observer keeps a sliding window of the last [window]
    inter-arrival gaps.  The suspicion level for a silence of [elapsed]
    seconds is

    {[ phi = -log10 (max floor (gaps >= elapsed / gaps)) ]}

    — the empirical probability that a heartbeat still arrives this late,
    floored so phi is defined beyond the observed maximum.  [phi] is
    nondecreasing while a subject stays silent and collapses to ~0 on the
    next heartbeat; a subject is {e suspected} once [phi >= threshold].
    With the default threshold the rule effectively reads "silent longer
    than every gap the pair has ever exhibited", which self-calibrates to
    the deployment's real jitter instead of hard-coding a timeout.

    Before [min_samples] gaps have been observed the histogram says
    nothing, so suspicion falls back to {!Setagree_fd.Timeout}'s capped
    exponential backoff (which also tracks disproven suspicions across
    both phases).

    From [suspected] the three oracle surfaces of the paper's grid are
    extracted (see {!trusted} and {!query}); the mapping mirrors
    {!Setagree_fd.Impl} so simulator and runtime detectors share one
    notion of "z-leader" and "region-dead". *)

open Setagree_util

type t

val create :
  ?window:int ->
  ?threshold:float ->
  ?min_samples:int ->
  ?timeout_initial:float ->
  ?timeout_factor:float ->
  ?timeout_cap:float ->
  rng:Rng.t ->
  self:Pid.t ->
  n:int ->
  unit ->
  t
(** Defaults: [window] 200, [threshold] 2.0, [min_samples] 5,
    [timeout_initial] 0.1 (s), [timeout_factor] 1.5, [timeout_cap] 2.0.
    [rng] seeds only the bootstrap Timeout jitter (via a named split —
    the caller's stream is never advanced). *)

val heartbeat : t -> Pid.t -> now:float -> unit
(** Evidence of life from a subject: record the gap since its previous
    arrival (once warm) and reset its suspicion. *)

val phi : t -> Pid.t -> now:float -> float
(** Current suspicion level; 0 for [self].  During bootstrap: 0, or
    [threshold] once the Timeout expires. *)

val suspects : t -> Pid.t -> now:float -> bool

val suspected : t -> now:float -> Pidset.t
(** The suspector-class surface: all subjects with [phi >= threshold]. *)

val trusted : t -> z:int -> now:float -> Pidset.t
(** The Ω_z surface: the [z] smallest currently unsuspected pids — the
    deterministic rule every observer converges on once suspicions agree
    with the crash pattern.  Falls back to [{self}] when everything is
    suspected (never empty, as {!Setagree_fd.Impl.omega} does). *)

val query : t -> t_bound:int -> y:int -> Pidset.t -> now:float -> bool
(** The φ_y surface: triviality short-circuits ([|X| <= t-y] true,
    [|X| > t] false); in the meaningful window, true iff every member is
    currently suspected. *)

val samples : t -> Pid.t -> int
(** Gaps recorded for the subject (window-capped). *)

val false_suspicions : t -> int
(** Suspicions later disproven by a heartbeat, both phases. *)
