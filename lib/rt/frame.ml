open Setagree_util

type kind =
  | Heartbeat
  | Payload of { tag : string; body : Bytes.t }

type t = { src : Pid.t; dst : Pid.t; seq : int; kind : kind }

let magic0 = '\xFD'
let magic1 = '\x4B' (* "FD K(it)" *)
let header_len = 11 (* magic 2 + src 2 + dst 2 + seq 4 + kind 1 *)
let max_body = 16 * 1024 * 1024

let encode fr =
  if fr.src < 0 || fr.src > 0xFFFF then invalid_arg "Frame.encode: src";
  if fr.dst < 0 || fr.dst > 0xFFFF then invalid_arg "Frame.encode: dst";
  let size =
    header_len
    +
    match fr.kind with
    | Heartbeat -> 0
    | Payload { tag; body } ->
        if String.length tag > 0xFFFF then invalid_arg "Frame.encode: tag too long";
        if Bytes.length body > max_body then invalid_arg "Frame.encode: body too large";
        2 + String.length tag + 4 + Bytes.length body
  in
  let b = Bytes.create size in
  Bytes.set b 0 magic0;
  Bytes.set b 1 magic1;
  Bytes.set_uint16_be b 2 fr.src;
  Bytes.set_uint16_be b 4 fr.dst;
  Bytes.set_int32_be b 6 (Int32.of_int (fr.seq land 0x7FFFFFFF));
  (match fr.kind with
  | Heartbeat -> Bytes.set b 10 '\x00'
  | Payload { tag; body } ->
      Bytes.set b 10 '\x01';
      let tl = String.length tag in
      Bytes.set_uint16_be b 11 tl;
      Bytes.blit_string tag 0 b 13 tl;
      Bytes.set_int32_be b (13 + tl) (Int32.of_int (Bytes.length body));
      Bytes.blit body 0 b (17 + tl) (Bytes.length body));
  b

(* Try to parse one frame at [pos] in [b.(0..limit)].  Returns:
   [`Frame (fr, next)] on success, [`Need_more] when the bytes so far are a
   valid prefix of a frame, [`Bad] when [pos] cannot start a frame. *)
let parse_at b ~pos ~limit =
  let avail = limit - pos in
  if avail < 2 then
    if avail >= 1 && Bytes.get b pos <> magic0 then `Bad else `Need_more
  else if Bytes.get b pos <> magic0 || Bytes.get b (pos + 1) <> magic1 then `Bad
  else if avail < header_len then `Need_more
  else begin
    let src = Bytes.get_uint16_be b (pos + 2) in
    let dst = Bytes.get_uint16_be b (pos + 4) in
    let seq = Int32.to_int (Bytes.get_int32_be b (pos + 6)) in
    match Bytes.get b (pos + 10) with
    | '\x00' -> `Frame ({ src; dst; seq; kind = Heartbeat }, pos + header_len)
    | '\x01' ->
        if avail < header_len + 2 then `Need_more
        else begin
          let tl = Bytes.get_uint16_be b (pos + 11) in
          if avail < header_len + 2 + tl + 4 then `Need_more
          else begin
            let bl = Int32.to_int (Bytes.get_int32_be b (pos + 13 + tl)) in
            if bl < 0 || bl > max_body then `Bad
            else if avail < header_len + 2 + tl + 4 + bl then `Need_more
            else begin
              let tag = Bytes.sub_string b (pos + 13) tl in
              let body = Bytes.sub b (pos + 17 + tl) bl in
              `Frame ({ src; dst; seq; kind = Payload { tag; body } }, pos + 17 + tl + bl)
            end
          end
        end
    | _ -> `Bad
  end

let decode_packet b ~len =
  let out = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < len do
    match parse_at b ~pos:!pos ~limit:len with
    | `Frame (fr, next) ->
        out := fr :: !out;
        pos := next
    | `Bad -> incr pos
    | `Need_more -> stop := true (* trailing partial: datagrams are atomic, drop *)
  done;
  List.rev !out

module Decoder = struct
  type dec = { mutable buf : Bytes.t; mutable len : int; mutable skipped : int }

  let create () = { buf = Bytes.create 256; len = 0; skipped = 0 }
  let skipped d = d.skipped
  let pending d = d.len

  let ensure d extra =
    let need = d.len + extra in
    if Bytes.length d.buf < need then begin
      let cap = ref (Bytes.length d.buf * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.buf 0 nb 0 d.len;
      d.buf <- nb
    end

  let feed d ?(off = 0) ?len b =
    let len = match len with Some l -> l | None -> Bytes.length b - off in
    ensure d len;
    Bytes.blit b off d.buf d.len len;
    d.len <- d.len + len;
    let out = ref [] in
    let pos = ref 0 in
    let stop = ref false in
    while (not !stop) && !pos < d.len do
      match parse_at d.buf ~pos:!pos ~limit:d.len with
      | `Frame (fr, next) ->
          out := fr :: !out;
          pos := next
      | `Bad ->
          incr pos;
          d.skipped <- d.skipped + 1
      | `Need_more -> stop := true
    done;
    if !pos > 0 then begin
      Bytes.blit d.buf !pos d.buf 0 (d.len - !pos);
      d.len <- d.len - !pos
    end;
    List.rev !out
end
