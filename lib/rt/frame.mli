(** Wire framing for the real-runtime backend.

    Every unit exchanged between runtime nodes is a {e frame}: a small
    binary record carrying source, destination, a per-(src, dst) sequence
    number, and either a liveness heartbeat or an opaque protocol payload
    tagged with the {!Setagree_net.Net} channel it belongs to.  Frames are
    self-delimiting (length-prefixed fields behind a two-byte magic), so
    the same codec serves both datagram transports (one or more whole
    frames per packet) and byte-stream transports (frames may arrive
    split or coalesced — {!Decoder} reassembles them). *)

open Setagree_util

type kind =
  | Heartbeat
  | Payload of { tag : string; body : Bytes.t }
      (** [tag] names the {!Setagree_net.Net} channel ([Sim.inlet] key);
          [body] is the marshalled message. *)

type t = { src : Pid.t; dst : Pid.t; seq : int; kind : kind }

val encode : t -> Bytes.t
(** Layout: magic (2) | src (2) | dst (2) | seq (4) | kind (1), then for
    payloads tag-length (2) | tag | body-length (4) | body; all integers
    big-endian.  @raise Invalid_argument on out-of-range fields (pids
    beyond 16 bits, tags beyond 65535 bytes, bodies beyond 16 MiB). *)

val decode_packet : Bytes.t -> len:int -> t list
(** Parse a datagram holding zero or more whole frames.  Garbage between
    frames is skipped by scanning for the magic; a trailing partial frame
    is dropped (datagrams are atomic — a partial frame means corruption,
    not fragmentation). *)

(** Incremental decoder for byte-stream transports: bytes may arrive in
    any fragmentation — half a frame, three frames at once — and [feed]
    returns each frame exactly once, in order, as soon as its last byte
    is in. *)
module Decoder : sig
  type dec

  val create : unit -> dec

  val feed : dec -> ?off:int -> ?len:int -> Bytes.t -> t list
  (** Append [len] bytes of [b] starting at [off] (defaults: the whole
      buffer) and return every newly completed frame.  Bytes that cannot
      start a frame (bad magic) are skipped and counted. *)

  val skipped : dec -> int
  (** Total garbage bytes discarded while resynchronizing. *)

  val pending : dec -> int
  (** Bytes buffered awaiting the rest of a frame. *)
end
