open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core
open Setagree_runner

type config = {
  pk : Protocol.packed;
  params : Protocol.params;
  timescale : float;
  hb_period_s : float;
  horizon_s : float;
  linger_s : float;
  sample_every_s : float;
  accrual_window : int;
  accrual_threshold : float;
  accrual_min_samples : int;
  crash_at_s : float option;
}

type result = {
  r_pid : Pid.t;
  r_crashed_at_s : float option;
  r_decisions : (Pid.t * int * int * float) list;
  r_history : Qos.sample list;
  r_phi : Qos.phi_point list;
  r_counters : (string * int) list;
  r_events : int;
  r_end_s : float;
}

(* Bounds the per-node phi series a long run brings home; overwritten
   samples are surfaced as the [rt.phi_dropped] counter rather than
   silently lost. *)
let phi_series_cap = 512

let run eps ~self cfg =
  let p = cfg.params in
  let (module P : Protocol.S) = cfg.pk in
  let tp = Transport.attach eps ~self in
  (* The local simulator never crashes anybody: real crashes are real
     domain exits, observed only through silence.  Trace level is forced
     to Default so own decisions are recorded regardless of params. *)
  let sim =
    Sim.create
      ~horizon:((cfg.horizon_s *. cfg.timescale) +. 1.0)
      ~trace_level:Trace.Default ~local:self ~n:p.n ~t:p.t ~seed:p.seed ()
  in
  Sim.set_router sim (fun ~tag ~src:_ ~dst bytes ->
      Transport.send tp ~dst (Frame.Payload { tag; body = bytes }));
  let acc =
    Accrual.create ~window:cfg.accrual_window ~threshold:cfg.accrual_threshold
      ~min_samples:cfg.accrual_min_samples ~timeout_initial:(4.0 *. cfg.hb_period_s)
      ~timeout_cap:(25.0 *. cfg.hb_period_s)
      ~rng:(Rng.split_named (Sim.rng sim) "rt:accrual")
      ~self ~n:p.n ()
  in
  let t0 = Unix.gettimeofday () in
  let now_s () = Unix.gettimeofday () -. t0 in
  Oracle.set_external
    (Some
       {
         (* Oracle reads for other pids can occur (protocol-internal
            monitors poll every process); only self's reads are backed by
            the extraction — remote placeholders are never sampled. *)
         Oracle.ext_suspected =
           (fun i ->
             if i = self then Accrual.suspected acc ~now:(now_s ()) else Pidset.empty);
         ext_trusted =
           (fun ~z i ->
             if i = self then Accrual.trusted acc ~z ~now:(now_s ())
             else Pidset.add i Pidset.empty);
         ext_query =
           (fun ~y i x ->
             if i = self then Accrual.query acc ~t_bound:p.t ~y x ~now:(now_s ())
             else Pidset.cardinal x <= p.t - y);
       });
  let finish crashed_at =
    Oracle.set_external None;
    crashed_at
  in
  let st = P.install sim p in
  ignore (st : P.t);
  let tick_s = Float.min (cfg.hb_period_s /. 2.0) 0.002 in
  let next_hb = ref 0.0 in
  let next_sample = ref cfg.sample_every_s in
  let history = ref [] in
  let phi_series = Ringbuf.create ~cap:phi_series_cap in
  let decided_at = ref None in
  let events = ref 0 in
  let running = ref true in
  let crashed_at = ref None in
  while !running do
    let now = now_s () in
    match cfg.crash_at_s with
    | Some c when now >= c ->
        (* Real crash: stop everything, silently.  The socket stays open
           (the orchestrator closes endpoints after the join) so peers
           see pure silence, not errors. *)
        crashed_at := Some now;
        running := false
    | _ ->
        if now >= !next_hb then begin
          for j = 0 to p.n - 1 do
            if j <> self then Transport.send tp ~dst:j Frame.Heartbeat
          done;
          next_hb := now +. cfg.hb_period_s
        end;
        Transport.poll tp (fun ~src kind ->
            (* Any frame is evidence of life, not just heartbeats. *)
            Accrual.heartbeat acc src ~now:(now_s ());
            match kind with
            | Frame.Heartbeat -> ()
            | Frame.Payload { tag; body } -> (
                match Sim.inlet sim ~tag with
                | Some inject -> inject ~src ~bytes:body
                | None -> ()));
        events := !events + Sim.advance sim ~upto:(now *. cfg.timescale);
        if now >= !next_sample then begin
          history :=
            {
              Qos.s_time = now;
              s_suspected = Accrual.suspected acc ~now;
              s_trusted = Accrual.trusted acc ~z:p.z ~now;
            }
            :: !history;
          let phi =
            Array.init p.n (fun j ->
                if j = self then 0.0 else Accrual.phi acc j ~now)
          in
          Ringbuf.push phi_series { Qos.p_time = now; p_phi = phi };
          (* Publish-only: the Live board is read by telemetry snapshots
             alone, so this cannot perturb the run (one boolean read when
             no telemetry consumer is attached). *)
          if Runner.Live.is_active () then begin
            Runner.Live.set_gauge
              (Printf.sprintf "rt.phi_max.p%d" self)
              (Array.fold_left Float.max 0.0 phi);
            Runner.Live.incr "rt.phi_samples"
          end;
          next_sample := now +. cfg.sample_every_s
        end;
        (match !decided_at with
        | None ->
            if
              cfg.crash_at_s = None
              && List.exists (fun (pid, _, _, _) -> pid = self)
                   (Trace.decisions (Sim.trace sim))
            then decided_at := Some now
        | Some d -> if now -. d >= cfg.linger_s then running := false);
        if now >= cfg.horizon_s then running := false;
        if !running then Unix.sleepf tick_s
  done;
  let crashed_at = finish !crashed_at in
  let decisions =
    List.filter_map
      (fun (pid, v, round, vt) ->
        if pid = self then Some (pid, v, round, vt /. cfg.timescale) else None)
      (Trace.decisions (Sim.trace sim))
  in
  {
    r_pid = self;
    r_crashed_at_s = crashed_at;
    r_decisions = decisions;
    r_history = List.rev !history;
    r_phi = Ringbuf.to_list phi_series;
    r_counters =
      Transport.counters tp
      @ [
          ("rt.false_suspicions", Accrual.false_suspicions acc);
          ("rt.phi_dropped", Ringbuf.dropped phi_series);
        ];
    r_events = !events;
    r_end_s = now_s ();
  }
