(** One runtime node: an OCaml domain driving one process of the
    deployment.

    The node owns a {e local} simulator ({!Setagree_dsys.Sim.create}
    with [~local:self]) on which the unchanged protocol [install] code
    runs: fibers for other pids are discarded, outbound sends leave
    through the transport (router hook), inbound datagrams re-enter
    through the per-tag inlets.  Virtual time is slaved to the wall
    clock — each tick calls [Sim.advance ~upto:(elapsed * timescale)] —
    so protocol sleeps and delays become real milliseconds.

    The oracle reads the protocol makes are served by an {!Accrual}
    detector fed from heartbeat timing (installed as the domain's
    {!Setagree_fd.Oracle.set_external} source); the node samples that
    detector's suspected/trusted outputs on a fixed cadence and brings
    the history home for {!Setagree_fd.Check} and {!Qos}.

    A node with [crash_at_s] set {e actually dies}: the domain stops
    sending, receiving and stepping at that wall time and returns — a
    real silent crash, detected by the other nodes' accrual detectors
    with no shared ground truth. *)

open Setagree_util
open Setagree_core

type config = {
  pk : Protocol.packed;
  params : Protocol.params;
  timescale : float;  (** virtual units per wall second *)
  hb_period_s : float;
  horizon_s : float;  (** wall-clock budget *)
  linger_s : float;
      (** keep relaying/heartbeating/sampling this long after own
          decision, so slower peers finish and crash detection completes *)
  sample_every_s : float;  (** FD-history sampling cadence *)
  accrual_window : int;
  accrual_threshold : float;
  accrual_min_samples : int;
  crash_at_s : float option;  (** this node's own real crash, if any *)
}

type result = {
  r_pid : Pid.t;
  r_crashed_at_s : float option;  (** actual wall time the node died *)
  r_decisions : (Pid.t * int * int * float) list;
      (** own decisions, wall-stamped (virtual time / timescale) *)
  r_history : Qos.sample list;  (** chronological FD samples *)
  r_phi : Qos.phi_point list;
      (** per-peer accrual phi on the same cadence, last 512 samples
          (ring-buffered; overwrites surface as [rt.phi_dropped]).
          While a telemetried campaign runs, each sample also publishes
          a [rt.phi_max.p<pid>] gauge on the
          {!Setagree_runner.Runner.Live} board *)
  r_counters : (string * int) list;  (** transport [rt.*] + node counters *)
  r_events : int;  (** local simulator events processed *)
  r_end_s : float;  (** wall time the node stopped *)
}

val run : Transport.endpoints -> self:Pid.t -> config -> result
(** Body of [Domain.spawn].  Never raises on transport errors; protocol
    exceptions propagate (a broken protocol should fail the run). *)
