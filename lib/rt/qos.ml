open Setagree_util
open Setagree_fd

type sample = { s_time : float; s_suspected : Pidset.t; s_trusted : Pidset.t }

type report = {
  detection_time_s : float option;
  undetected : int;
  mistake_rate_hz : float;
  mistake_duration_s : float option;
  query_accuracy : float;
  observers : int;
  samples : int;
}

let crashed_by (g : Check.ground) time =
  List.fold_left
    (fun acc (p, tm) -> if tm <= time then Pidset.add p acc else acc)
    Pidset.empty g.Check.g_crashes

(* First sample time from which [subject] is suspected in every later
   sample (stable suspicion), or None. *)
let stable_from samples subject =
  List.fold_left
    (fun acc s ->
      if Pidset.mem subject s.s_suspected then
        match acc with Some _ -> acc | None -> Some s.s_time
      else None)
    None samples

let compute ~(ground : Check.ground) histories =
  let g = ground in
  let obs =
    List.filter (fun (i, s) -> Pidset.mem i g.Check.g_correct && s <> []) histories
  in
  let detections = ref [] in
  let undetected = ref 0 in
  let mistakes = ref [] in
  let pair_seconds = ref 0.0 in
  let safe_samples = ref 0 in
  let total_samples = ref 0 in
  List.iter
    (fun ((observer : Pid.t), samples) ->
      let h_end = List.fold_left (fun acc s -> Float.max acc s.s_time) 0.0 samples in
      let h_start = List.fold_left (fun acc s -> Float.min acc s.s_time) h_end samples in
      (* detection per crashed subject *)
      List.iter
        (fun (subject, crash_time) ->
          if subject <> observer && crash_time <= h_end then
            match stable_from samples subject with
            | Some tm -> detections := Float.max 0.0 (tm -. crash_time) :: !detections
            | None ->
                incr undetected;
                detections := Float.max 0.0 (h_end -. crash_time) :: !detections)
        g.Check.g_crashes;
      (* mistakes: maximal runs of samples where a then-live subject is
         suspected.  Interval length is measured sample-to-sample; an open
         run at the end of the history closes at [h_end]. *)
      for subject = 0 to g.Check.g_n - 1 do
        if subject <> observer then begin
          pair_seconds := !pair_seconds +. (h_end -. h_start);
          let open_at = ref None in
          List.iter
            (fun s ->
              let live = not (Pidset.mem subject (crashed_by g s.s_time)) in
              let sus = Pidset.mem subject s.s_suspected in
              match (!open_at, live && sus) with
              | None, true -> open_at := Some s.s_time
              | Some t0, false ->
                  mistakes := (s.s_time -. t0) :: !mistakes;
                  open_at := None
              | _ -> ())
            samples;
          match !open_at with
          | Some t0 -> mistakes := (h_end -. t0) :: !mistakes
          | None -> ()
        end
      done;
      (* query accuracy: a sample is safe when nothing live is suspected *)
      List.iter
        (fun s ->
          incr total_samples;
          if Pidset.subset s.s_suspected (crashed_by g s.s_time) then incr safe_samples)
        samples)
    obs;
  let mean = function
    | [] -> None
    | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))
  in
  {
    detection_time_s = mean !detections;
    undetected = !undetected;
    mistake_rate_hz =
      (if !pair_seconds > 0.0 then float_of_int (List.length !mistakes) /. !pair_seconds
       else 0.0);
    mistake_duration_s = mean !mistakes;
    query_accuracy =
      (if !total_samples = 0 then 1.0
       else float_of_int !safe_samples /. float_of_int !total_samples);
    observers = List.length obs;
    samples = !total_samples;
  }

(* -- time-series -------------------------------------------------------- *)

type phi_point = { p_time : float; p_phi : float array }

let windowed ~(ground : Check.ground) ~window_s histories =
  let w = Float.max window_s 1e-6 in
  let have_samples = List.exists (fun (_, ss) -> ss <> []) histories in
  if not have_samples then []
  else begin
    let t_max =
      List.fold_left
        (fun acc (_, ss) ->
          List.fold_left (fun a s -> Float.max a s.s_time) acc ss)
        0.0 histories
    in
    let nwin = int_of_float (Float.floor (t_max /. w)) + 1 in
    List.filter_map
      (fun k ->
        let lo = float_of_int k *. w in
        let hi = lo +. w in
        let sliced =
          List.map
            (fun (i, ss) ->
              (i, List.filter (fun s -> s.s_time >= lo && s.s_time < hi) ss))
            histories
        in
        if List.for_all (fun (_, ss) -> ss = []) sliced then None
        else Some (lo, compute ~ground sliced))
      (List.init nwin Fun.id)
  end

let to_metrics r =
  List.concat
    [
      (match r.detection_time_s with
      | Some v -> [ ("qos.detection_time_s", v) ]
      | None -> []);
      [ ("qos.undetected", float_of_int r.undetected) ];
      [ ("qos.mistake_rate_hz", r.mistake_rate_hz) ];
      (match r.mistake_duration_s with
      | Some v -> [ ("qos.mistake_duration_s", v) ]
      | None -> []);
      [ ("qos.query_accuracy", r.query_accuracy) ];
      [ ("qos.observers", float_of_int r.observers) ];
      [ ("qos.samples", float_of_int r.samples) ];
    ]

let record m r =
  (match r.detection_time_s with
  | Some v -> Metrics.observe m "qos.detection_time_s" v
  | None -> ());
  (match r.mistake_duration_s with
  | Some v -> Metrics.observe m "qos.mistake_duration_s" v
  | None -> ());
  Metrics.incr m ~by:r.undetected "qos.undetected";
  Metrics.incr m ~by:r.samples "qos.samples";
  Metrics.set_gauge m "qos.mistake_rate_hz" r.mistake_rate_hz;
  Metrics.set_gauge m "qos.query_accuracy" r.query_accuracy
