(** QoS metrics for recorded failure-detector histories (Chen/Toueg/
    Aguilera's primary metrics, adapted to sampled histories).

    Inputs are the per-observer chronological samples each node brought
    home plus the run's ground truth ({!Setagree_fd.Check.ground}); all
    times are wall seconds.  Per (correct observer, subject) pair:

    - {e detection time}: crash time to the first sample from which the
      subject stays suspected to the end of the observer's history;
      undetected crashes are counted separately and penalized with the
      observer's remaining window.
    - {e mistakes}: maximal sample intervals during which a then-live
      subject is suspected; their count yields the mistake rate (per
      observer-pair second), their lengths the average mistake duration.
    - {e query accuracy}: fraction of samples whose suspected set
      contains no then-live process — the probability that a φ_y-style
      "is this region dead" extraction answers safely. *)

open Setagree_util
open Setagree_fd

type sample = { s_time : float; s_suspected : Pidset.t; s_trusted : Pidset.t }

type report = {
  detection_time_s : float option;  (** mean over detected crashes *)
  undetected : int;  (** (observer, crash) pairs never stably suspected *)
  mistake_rate_hz : float;  (** false-suspicion intervals per pair-second *)
  mistake_duration_s : float option;  (** mean length of those intervals *)
  query_accuracy : float;  (** fraction of safe samples; 1.0 when no samples *)
  observers : int;
  samples : int;
}

val compute : ground:Check.ground -> (Pid.t * sample list) list -> report
(** Observers not in [ground.g_correct] are ignored (a crashed node's
    partial history carries no obligation). *)

(** {1 Time-series}

    The live-telemetry view of the same data: instead of one end-of-run
    scalar per metric, the run keeps ring-buffered series and the
    orchestrator slices the recorded histories into fixed windows. *)

type phi_point = { p_time : float; p_phi : float array }
(** One accrual sample: suspicion level per peer (0 for self) at a wall
    time — what {!Setagree_rt.Node} pushes into its ring buffer on the
    sampling cadence. *)

val windowed :
  ground:Check.ground ->
  window_s:float ->
  (Pid.t * sample list) list ->
  (float * report) list
(** [(window_start, report)] per window of [window_s] wall seconds,
    oldest first; each window re-evaluates {!compute} on just the
    samples falling inside it (detection times are window-relative),
    and windows with no samples at all are dropped.  Empty when no
    observer recorded anything. *)

val to_metrics : report -> (string * float) list
(** [qos.*] key-value pairs, ready for a metrics registry or a summary
    table.  Optional means are omitted when undefined. *)

val record : Metrics.t -> report -> unit
(** Observe the report into a registry: histograms for the means
    ([qos.detection_time_s], [qos.mistake_duration_s]), gauges for rates
    and accuracy, counters for totals. *)
