open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

type cfg = {
  transport : [ `Udp | `Chan ];
  timescale : float;
  hb_period_s : float;
  horizon_s : float;
  linger_s : float;
  sample_every_s : float;
  accrual_window : int;
  accrual_threshold : float;
  accrual_min_samples : int;
  crash_at_s : float;
  crash_spread_s : float;
  detect_slack_s : float;
  qos_window_s : float;
}

let default_cfg =
  {
    transport = `Udp;
    timescale = 150.0;
    hb_period_s = 0.02;
    horizon_s = 0.0;
    linger_s = 1.5;
    sample_every_s = 0.05;
    accrual_window = 200;
    accrual_threshold = 2.0;
    accrual_min_samples = 5;
    crash_at_s = 0.25;
    crash_spread_s = 0.15;
    detect_slack_s = 0.8;
    qos_window_s = 0.5;
  }

type result = {
  o_protocol : string;
  o_params : Protocol.params;
  o_crashes : (Pid.t * float) list;
  o_decisions : (Pid.t * int * int * float) list;
  o_safety : Check.verdict;
  o_fd : Check.verdict;
  o_qos : Qos.report;
  o_qos_windows : (float * Qos.report) list;
  o_phi : (Pid.t * Qos.phi_point list) list;
  o_metrics : (string * float) list;
  o_registry : Metrics.t;
  o_node_events : int;
  o_wall_s : float;
}

let ok r = r.o_safety.Check.ok && r.o_fd.Check.ok

(* What the pooled decisions owe us: the protocol's agreement degree, or
   nothing for the FD-transformation protocols (their whole output is the
   detector history). *)
let agreement_k (p : Protocol.params) name =
  match name with
  | "kset" -> Some p.k
  | "consensus_s" -> Some 1
  | "reduce" ->
      Some
        (match p.variant with
        | "es" -> Bounds.z_of_addition ~t:p.t ~x:p.x ~y:0
        | "phi" -> Bounds.z_of_addition ~t:p.t ~x:1 ~y:p.y
        | "psi" -> p.t + 1 - p.y
        | _ -> p.t + 1)
  | _ -> None

let wall_horizon cfg ~decides =
  if cfg.horizon_s > 0.0 then cfg.horizon_s else if decides then 8.0 else 3.0

(* Victims come from the same seeded ["crash"] split the simulator uses;
   the schedule's virtual times only fix the order, the wall times are the
   runtime's own (early enough to precede decisions, late enough for the
   accrual histograms to be warm). *)
let plan_crashes (p : Protocol.params) cfg =
  let rng = Rng.split_named (Rng.create p.seed) "crash" in
  let base = Crash.generate p.crashes ~n:p.n ~t:p.t rng in
  let ordered = List.sort (fun (_, a) (_, b) -> Float.compare a b) base in
  List.mapi
    (fun k (pid, _) -> (pid, cfg.crash_at_s +. (float_of_int k *. cfg.crash_spread_s)))
    ordered

let make_endpoints cfg ~n =
  match cfg.transport with `Udp -> Transport.udp ~n | `Chan -> Transport.chan ~n

let sum_counters per_node =
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))))
    per_node;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let verdict_of_notes notes = { Check.ok = notes = []; notes }

(* Merge counter totals and the QoS report into both shapes callers want:
   a flat metric alist and a mergeable registry. *)
let build_metrics ~counters ~(qos : Qos.report) ~wall_s ~events =
  let reg = Metrics.create () in
  List.iter (fun (k, v) -> Metrics.incr reg ~by:v k) counters;
  Metrics.incr reg ~by:events "rt.events";
  Metrics.set_gauge reg "rt.wall_s" wall_s;
  Qos.record reg qos;
  let flat =
    List.map (fun (k, v) -> (k, float_of_int v)) counters
    @ [ ("rt.events", float_of_int events); ("rt.wall_s", wall_s) ]
    @ Qos.to_metrics qos
  in
  (flat, reg)

let run_protocol pk (p : Protocol.params) ?(cfg = default_cfg) () =
  let (module P : Protocol.S) = pk in
  let n = p.n in
  let k_opt = agreement_k p P.name in
  let horizon_s = wall_horizon cfg ~decides:(k_opt <> None) in
  let crashes = plan_crashes p cfg in
  let eps = make_endpoints cfg ~n in
  let node_cfg self =
    {
      Node.pk;
      params = p;
      timescale = cfg.timescale;
      hb_period_s = cfg.hb_period_s;
      horizon_s;
      linger_s = cfg.linger_s;
      sample_every_s = cfg.sample_every_s;
      accrual_window = cfg.accrual_window;
      accrual_threshold = cfg.accrual_threshold;
      accrual_min_samples = cfg.accrual_min_samples;
      crash_at_s = List.assoc_opt self crashes;
    }
  in
  let wall0 = Unix.gettimeofday () in
  let results =
    Fun.protect
      ~finally:(fun () -> Transport.close eps)
      (fun () ->
        let domains =
          Array.init n (fun i ->
              Domain.spawn (fun () -> Node.run eps ~self:i (node_cfg i)))
        in
        Array.map Domain.join domains)
  in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let victims = Pidset.of_list (List.map fst crashes) in
  let correct = Pidset.diff (Pidset.full ~n) victims in
  let actual_crashes =
    Array.to_list results
    |> List.filter_map (fun (r : Node.result) ->
           Option.map (fun tm -> (r.Node.r_pid, tm)) r.Node.r_crashed_at_s)
  in
  let g_end =
    Array.fold_left
      (fun acc (r : Node.result) -> Float.max acc r.Node.r_end_s)
      0.0 results
  in
  let ground =
    { Check.g_n = n; g_correct = correct; g_crashes = actual_crashes; g_end }
  in
  let decisions =
    Array.to_list results
    |> List.concat_map (fun (r : Node.result) -> r.Node.r_decisions)
  in
  let histories sel =
    Array.to_list results
    |> List.map (fun (r : Node.result) ->
           ( r.Node.r_pid,
             List.map (fun s -> (s.Qos.s_time, sel s)) r.Node.r_history ))
  in
  let safety =
    match k_opt with
    | None -> { Check.ok = true; notes = [ P.name ^ ": liveness-only protocol" ] }
    | Some k ->
        let proposals = Protocol.proposals_of p in
        let notes = Protocol.kset_safety ~k ~proposals decisions in
        let decided = List.map (fun (pid, _, _, _) -> pid) decisions in
        let missing = Pidset.filter (fun i -> not (List.mem i decided)) correct in
        let notes =
          if Pidset.is_empty missing then notes
          else
            notes
            @ [
                Printf.sprintf "termination: correct %s never decided"
                  (Pidset.to_string missing);
              ]
        in
        verdict_of_notes notes
  in
  let last_crash =
    List.fold_left (fun acc (_, tm) -> Float.max acc tm) 0.0 actual_crashes
  in
  let deadline = last_crash +. cfg.detect_slack_s in
  let fd_omega =
    Check.omega_z_history ground ~z:p.z ~deadline
      (histories (fun s -> s.Qos.s_trusted))
  in
  let suspected_hist = histories (fun s -> s.Qos.s_suspected) in
  let fd =
    if actual_crashes = [] then fd_omega
    else begin
      (* Completeness needs samples at/after its deadline: clamp to the
         earliest correct observer's last sample so short-lived deciding
         runs are judged on the window they actually recorded. *)
      let min_last =
        List.fold_left
          (fun acc (i, s) ->
            if Pidset.mem i correct then
              match List.rev s with (tm, _) :: _ -> Float.min acc tm | [] -> acc
            else acc)
          Float.infinity suspected_hist
      in
      let cdeadline = Float.min deadline min_last in
      Check.all_of
        [
          fd_omega;
          Check.strong_completeness_history ground ~deadline:cdeadline suspected_hist;
        ]
    end
  in
  let full_hist =
    Array.to_list results
    |> List.map (fun (r : Node.result) -> (r.Node.r_pid, r.Node.r_history))
  in
  let qos = Qos.compute ~ground full_hist in
  let qos_windows = Qos.windowed ~ground ~window_s:cfg.qos_window_s full_hist in
  let phi_series =
    Array.to_list results
    |> List.map (fun (r : Node.result) -> (r.Node.r_pid, r.Node.r_phi))
  in
  let counters =
    sum_counters
      (Array.to_list results |> List.map (fun (r : Node.result) -> r.Node.r_counters))
  in
  let events =
    Array.fold_left (fun acc (r : Node.result) -> acc + r.Node.r_events) 0 results
  in
  let metrics, registry = build_metrics ~counters ~qos ~wall_s ~events in
  let metrics =
    metrics
    @ [
        ("rt.decided", float_of_int (List.length decisions));
        ("qos.windows", float_of_int (List.length qos_windows));
      ]
  in
  {
    o_protocol = P.name;
    o_params = p;
    o_crashes = crashes;
    o_decisions = decisions;
    o_safety = safety;
    o_fd = fd;
    o_qos = qos;
    o_qos_windows = qos_windows;
    o_phi = phi_series;
    o_metrics = metrics;
    o_registry = registry;
    o_node_events = events;
    o_wall_s = wall_s;
  }

(* ---- heartbeat-only probe (bench QoS sweeps) ---- *)

type probe_node = {
  pr_pid : Pid.t;
  pr_history : Qos.sample list;
  pr_counters : (string * int) list;
  pr_crashed_at_s : float option;
  pr_end_s : float;
}

let probe_body eps ~self ~n ~seed ~crash_at_s ~horizon_s cfg =
  let tp = Transport.attach eps ~self in
  let acc =
    Accrual.create ~window:cfg.accrual_window ~threshold:cfg.accrual_threshold
      ~min_samples:cfg.accrual_min_samples ~timeout_initial:(4.0 *. cfg.hb_period_s)
      ~timeout_cap:(25.0 *. cfg.hb_period_s)
      ~rng:(Rng.split_named (Rng.create seed) ("probe:" ^ string_of_int self))
      ~self ~n ()
  in
  let t0 = Unix.gettimeofday () in
  let now_s () = Unix.gettimeofday () -. t0 in
  let tick_s = Float.min (cfg.hb_period_s /. 2.0) 0.002 in
  let next_hb = ref 0.0 in
  let next_sample = ref cfg.sample_every_s in
  let history = ref [] in
  let crashed_at = ref None in
  let running = ref true in
  while !running do
    let now = now_s () in
    match crash_at_s with
    | Some c when now >= c ->
        crashed_at := Some now;
        running := false
    | _ ->
        if now >= !next_hb then begin
          for j = 0 to n - 1 do
            if j <> self then Transport.send tp ~dst:j Frame.Heartbeat
          done;
          next_hb := now +. cfg.hb_period_s
        end;
        Transport.poll tp (fun ~src _kind -> Accrual.heartbeat acc src ~now:(now_s ()));
        if now >= !next_sample then begin
          history :=
            {
              Qos.s_time = now;
              s_suspected = Accrual.suspected acc ~now;
              s_trusted = Accrual.trusted acc ~z:1 ~now;
            }
            :: !history;
          next_sample := now +. cfg.sample_every_s
        end;
        if now >= horizon_s then running := false;
        if !running then Unix.sleepf tick_s
  done;
  {
    pr_pid = self;
    pr_history = List.rev !history;
    pr_counters =
      Transport.counters tp
      @ [ ("rt.false_suspicions", Accrual.false_suspicions acc) ];
    pr_crashed_at_s = !crashed_at;
    pr_end_s = now_s ();
  }

let fd_probe ~n ~crashes ~seed ?(cfg = default_cfg) () =
  let horizon_s = if cfg.horizon_s > 0.0 then cfg.horizon_s else 2.5 in
  let planned =
    if crashes = 0 then []
    else begin
      let rng = Rng.split_named (Rng.create seed) "crash" in
      let base =
        Crash.generate
          (Crash.Exactly { crashes; window = (0.0, 1.0) })
          ~n ~t:crashes rng
      in
      List.mapi
        (fun k (pid, _) ->
          (pid, cfg.crash_at_s +. (float_of_int k *. cfg.crash_spread_s)))
        (List.sort (fun (_, a) (_, b) -> Float.compare a b) base)
    end
  in
  let eps = make_endpoints cfg ~n in
  let results =
    Fun.protect
      ~finally:(fun () -> Transport.close eps)
      (fun () ->
        let domains =
          Array.init n (fun i ->
              Domain.spawn (fun () ->
                  probe_body eps ~self:i ~n ~seed
                    ~crash_at_s:(List.assoc_opt i planned)
                    ~horizon_s cfg))
        in
        Array.map Domain.join domains)
  in
  let victims = Pidset.of_list (List.map fst planned) in
  let actual_crashes =
    Array.to_list results
    |> List.filter_map (fun r -> Option.map (fun tm -> (r.pr_pid, tm)) r.pr_crashed_at_s)
  in
  let ground =
    {
      Check.g_n = n;
      g_correct = Pidset.diff (Pidset.full ~n) victims;
      g_crashes = actual_crashes;
      g_end = Array.fold_left (fun acc r -> Float.max acc r.pr_end_s) 0.0 results;
    }
  in
  let qos =
    Qos.compute ~ground
      (Array.to_list results |> List.map (fun r -> (r.pr_pid, r.pr_history)))
  in
  let counters =
    sum_counters (Array.to_list results |> List.map (fun r -> r.pr_counters))
  in
  let metrics, _ = build_metrics ~counters ~qos ~wall_s:ground.Check.g_end ~events:0 in
  (qos, metrics)

let pp_result fmt r =
  Format.fprintf fmt "@[<v>rt %s: n=%d t=%d seed=%d transport=real@," r.o_protocol
    r.o_params.Protocol.n r.o_params.Protocol.t r.o_params.Protocol.seed;
  Format.fprintf fmt "  crashes: %s@,"
    (if r.o_crashes = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun (pid, tm) -> Printf.sprintf "%s@%.2fs" (Pid.to_string pid) tm)
            r.o_crashes));
  Format.fprintf fmt "  decisions: %d  wall: %.2fs  events: %d@,"
    (List.length r.o_decisions) r.o_wall_s r.o_node_events;
  Format.fprintf fmt "  safety: %a@,  fd(omega_z): %a@," Check.pp_verdict r.o_safety
    Check.pp_verdict r.o_fd;
  (match r.o_qos.Qos.detection_time_s with
  | Some d -> Format.fprintf fmt "  qos: detection %.3fs" d
  | None -> Format.fprintf fmt "  qos: detection n/a");
  Format.fprintf fmt "  mistakes %.4f/s  accuracy %.3f  samples %d@,"
    r.o_qos.Qos.mistake_rate_hz r.o_qos.Qos.query_accuracy r.o_qos.Qos.samples;
  let phi_points =
    List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 r.o_phi
  in
  Format.fprintf fmt "  series: %d qos windows  %d phi points@]"
    (List.length r.o_qos_windows) phi_points
