(** Orchestration of a real-runtime execution: spawn one domain per
    process ({!Node}), join them, and judge what actually happened —
    agreement safety on the pooled decisions, FD-class membership on the
    recorded accrual histories, QoS on the same samples.

    The contrast with [Protocol.run] is deliberate: the simulator run
    checks against ground truth it owns; the runtime run has no shared
    ground truth beyond the crash plan the orchestrator injected, and
    every other judgement is reconstructed from what the nodes brought
    home — the same position a real deployment is in. *)

open Setagree_util
open Setagree_fd
open Setagree_core

type cfg = {
  transport : [ `Udp | `Chan ];
  timescale : float;  (** virtual units per wall second *)
  hb_period_s : float;
  horizon_s : float;  (** wall budget; 0 = per-protocol default *)
  linger_s : float;
  sample_every_s : float;
  accrual_window : int;
  accrual_threshold : float;
  accrual_min_samples : int;
  crash_at_s : float;  (** wall time of the first injected crash *)
  crash_spread_s : float;  (** gap between consecutive crashes *)
  detect_slack_s : float;  (** FD deadline = last crash + this slack *)
  qos_window_s : float;  (** window size of the {!Qos.windowed} series *)
}

val default_cfg : cfg
(** Udp transport, timescale 150, heartbeats every 20 ms, 8 s horizon
    (liveness protocols: trimmed inside), 1.5 s linger, 50 ms sampling,
    window 200 / threshold 2.0 / min 5 samples, first crash at 0.25 s,
    0.15 s spread, 0.8 s detection slack, 0.5 s QoS windows. *)

type result = {
  o_protocol : string;
  o_params : Protocol.params;
  o_crashes : (Pid.t * float) list;  (** planned wall-time crash schedule *)
  o_decisions : (Pid.t * int * int * float) list;  (** pooled, wall-stamped *)
  o_safety : Check.verdict;
      (** k-set safety + termination for deciding protocols (k from the
          protocol: [params.k], 1 for consensus, the computed z for
          reduce); vacuous pass for FD-transformation protocols *)
  o_fd : Check.verdict;
      (** {!Check.omega_z_history} on the accrual trusted histories
          (z = [params.z]) + {!Check.strong_completeness_history} on the
          suspected histories when the run had crashes *)
  o_qos : Qos.report;
  o_qos_windows : (float * Qos.report) list;
      (** the same QoS metrics re-evaluated per [qos_window_s] window —
          the time-series the telemetry plane renders, where the
          end-of-run report is one scalar *)
  o_phi : (Pid.t * Qos.phi_point list) list;
      (** per-node accrual phi series (ring-buffered, newest 512) *)
  o_metrics : (string * float) list;  (** [rt.*] totals + [qos.*] *)
  o_registry : Metrics.t;
  o_node_events : int;
  o_wall_s : float;
}

val ok : result -> bool
(** Both verdicts. *)

val agreement_k : Protocol.params -> string -> int option
(** The agreement degree the named protocol's pooled decisions owe
    ([params.k] for kset, 1 for consensus, the additivity bound for
    reduce), or [None] for the FD-transformation protocols whose whole
    output is the detector history. *)

val run_protocol : Protocol.packed -> Protocol.params -> ?cfg:cfg -> unit -> result
(** Plan crashes from [params.crashes] (victims via the same seeded
    ["crash"] split the simulator uses; times remapped onto the wall
    schedule of [cfg]), spawn [params.n] domains, join, judge. *)

val fd_probe :
  n:int ->
  crashes:int ->
  seed:int ->
  ?cfg:cfg ->
  unit ->
  Qos.report * (string * float) list
(** Heartbeat-only deployment (no protocol): every node runs transport +
    accrual and samples its detector — the direct QoS measurement the
    bench sweeps over heartbeat periods.  Returns the report and the
    merged [rt.*]/[qos.*] metrics. *)

val pp_result : Format.formatter -> result -> unit
