open Setagree_util

type chan_link = { mu : Mutex.t; q : Bytes.t Queue.t }

type endpoints =
  | Udp of { socks : Unix.file_descr array; addrs : Unix.sockaddr array }
  | Chan of { links : chan_link array array (* links.(src).(dst) *) }

let udp ~n =
  let socks =
    Array.init n (fun _ ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.set_nonblock s;
        s)
  in
  let addrs = Array.map Unix.getsockname socks in
  Udp { socks; addrs }

let chan ~n =
  Chan
    {
      links =
        Array.init n (fun _ ->
            Array.init n (fun _ -> { mu = Mutex.create (); q = Queue.create () }));
    }

let n = function
  | Udp { socks; _ } -> Array.length socks
  | Chan { links } -> Array.length links

let close = function
  | Udp { socks; _ } -> Array.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) socks
  | Chan _ -> ()

type stats = {
  mutable sent : int;
  mutable received : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable dup_drops : int;
  mutable send_errors : int;
}

type t = {
  eps : endpoints;
  self : Pid.t;
  next_seq : int array; (* per dst *)
  seen : (int, unit) Hashtbl.t array; (* per src: delivered seqs *)
  decoders : Frame.Decoder.dec array; (* per src, chan streams only *)
  recv_buf : Bytes.t;
  st : stats;
}

let attach eps ~self =
  let nn = n eps in
  if self < 0 || self >= nn then invalid_arg "Transport.attach: self out of range";
  {
    eps;
    self;
    next_seq = Array.make nn 0;
    seen = Array.init nn (fun _ -> Hashtbl.create 64);
    decoders = Array.init nn (fun _ -> Frame.Decoder.create ());
    recv_buf = Bytes.create 65536;
    st = { sent = 0; received = 0; bytes_out = 0; bytes_in = 0; dup_drops = 0; send_errors = 0 };
  }

let send t ~dst kind =
  let nn = n t.eps in
  if dst < 0 || dst >= nn then invalid_arg "Transport.send: dst out of range";
  let seq = t.next_seq.(dst) in
  t.next_seq.(dst) <- seq + 1;
  let b = Frame.encode { src = t.self; dst; seq; kind } in
  let len = Bytes.length b in
  (match t.eps with
  | Udp { socks; addrs } -> (
      try
        ignore (Unix.sendto socks.(t.self) b 0 len [] addrs.(dst));
        t.st.sent <- t.st.sent + 1;
        t.st.bytes_out <- t.st.bytes_out + len
      with Unix.Unix_error _ -> t.st.send_errors <- t.st.send_errors + 1)
  | Chan { links } ->
      let link = links.(t.self).(dst) in
      Mutex.lock link.mu;
      (* Split larger frames in two so stream reassembly is genuinely
         exercised; the split point wanders with the sequence number. *)
      if len > 16 then begin
        let cut = 8 + (seq mod (len - 15)) in
        Queue.push (Bytes.sub b 0 cut) link.q;
        Queue.push (Bytes.sub b cut (len - cut)) link.q
      end
      else Queue.push b link.q;
      Mutex.unlock link.mu;
      t.st.sent <- t.st.sent + 1;
      t.st.bytes_out <- t.st.bytes_out + len)

let deliver t f (fr : Frame.t) =
  if fr.dst = t.self then begin
    let tbl = t.seen.(fr.src) in
    if Hashtbl.mem tbl fr.seq then t.st.dup_drops <- t.st.dup_drops + 1
    else begin
      Hashtbl.replace tbl fr.seq ();
      t.st.received <- t.st.received + 1;
      f ~src:fr.src fr.kind
    end
  end

let poll t f =
  match t.eps with
  | Udp { socks; _ } ->
      let continue_loop = ref true in
      while !continue_loop do
        match Unix.recvfrom socks.(t.self) t.recv_buf 0 (Bytes.length t.recv_buf) [] with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            continue_loop := false
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
            (* Linux reports a peer's closed port on the next recv; ignore. *)
            ()
        | 0, _ -> continue_loop := false
        | len, _ ->
            t.st.bytes_in <- t.st.bytes_in + len;
            List.iter (deliver t f) (Frame.decode_packet t.recv_buf ~len)
      done
  | Chan { links } ->
      let nn = Array.length links in
      for src = 0 to nn - 1 do
        let link = links.(src).(t.self) in
        let chunks = ref [] in
        Mutex.lock link.mu;
        while not (Queue.is_empty link.q) do
          chunks := Queue.pop link.q :: !chunks
        done;
        Mutex.unlock link.mu;
        List.iter
          (fun chunk ->
            t.st.bytes_in <- t.st.bytes_in + Bytes.length chunk;
            List.iter (deliver t f) (Frame.Decoder.feed t.decoders.(src) chunk))
          (List.rev !chunks)
      done

let counters t =
  let resync = Array.fold_left (fun acc d -> acc + Frame.Decoder.skipped d) 0 t.decoders in
  [
    ("rt.sent", t.st.sent);
    ("rt.received", t.st.received);
    ("rt.bytes_out", t.st.bytes_out);
    ("rt.bytes_in", t.st.bytes_in);
    ("rt.dup_drops", t.st.dup_drops);
    ("rt.send_errors", t.st.send_errors);
    ("rt.resync_bytes", resync);
  ]
