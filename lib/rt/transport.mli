(** Datagram transports for runtime nodes.

    An {!endpoints} value is the shared wiring for an [n]-node run,
    created once by the orchestrator before spawning domains; each domain
    then {!attach}es as one pid and gets a private handle for sending and
    polling.  Two transports implement the same surface:

    - [udp]: one UDP socket per node bound to [127.0.0.1:0] (the kernel
      picks free ports), non-blocking; real loopback datagrams, so the
      run is subject to genuine OS scheduling and (under pressure)
      genuine loss.
    - [chan]: in-process per-(src, dst) byte queues under mutexes; loss-
      free and port-free, the CI fallback.  Bytes are deliberately
      re-chunked on delivery to exercise {!Frame.Decoder} reassembly.

    Duplicate suppression is per-(src, dst) via the frame sequence
    numbers; counters come back through {!counters} as [rt.*] metrics. *)

open Setagree_util

type endpoints

val udp : n:int -> endpoints
(** @raise Unix.Unix_error when sockets cannot be created or bound. *)

val chan : n:int -> endpoints

val n : endpoints -> int
val close : endpoints -> unit
(** Close sockets (no-op for [chan]).  Call once, after all domains
    attached to these endpoints have been joined. *)

type t

val attach : endpoints -> self:Pid.t -> t
(** One attach per pid per run; handles are domain-private. *)

val send : t -> dst:Pid.t -> Frame.kind -> unit
(** Frame and transmit.  Best-effort on [udp]: transient send errors
    (full buffers, unreachable port) drop the datagram and bump
    [rt.send_errors] — exactly the fair-lossy link the detector layer is
    built to live on. *)

val poll : t -> (src:Pid.t -> Frame.kind -> unit) -> unit
(** Drain everything currently receivable, invoking the callback per
    fresh frame in arrival order.  Misaddressed frames and duplicates
    (seen (src, seq)) are dropped and counted; never blocks. *)

val counters : t -> (string * int) list
(** [rt.sent], [rt.received], [rt.bytes_out], [rt.bytes_in],
    [rt.dup_drops], [rt.send_errors], [rt.resync_bytes]. *)
