open Setagree_util

type body = {
  ok : bool;
  notes : string list;
  metrics : (string * float) list;
  row : string;
  extra : Json.t;
}

type job = {
  exp : string;
  label : string;
  params : (string * Json.t) list;
  seed : int;
  replay : string option;
  key : string option;
  run : unit -> body;
}

let job ?label ?(params = []) ?replay ?key ~exp ~seed run =
  let label = match label with Some l -> l | None -> Printf.sprintf "%s/seed=%d" exp seed in
  { exp; label; params; seed; replay; key; run }

let body ?(notes = []) ?(metrics = []) ?(row = "") ?(extra = Json.Null) ok =
  { ok; notes; metrics; row; extra }

type result = {
  r_exp : string;
  r_label : string;
  r_params : (string * Json.t) list;
  r_seed : int;
  r_replay : string option;
  r_ok : bool;
  r_notes : string list;
  r_metrics : (string * float) list;
  r_row : string;
  r_extra : Json.t;
  r_error : string option;
  r_wall_s : float;
}

type campaign = {
  c_exp : string;
  c_workers : int;
  c_results : result array;
  c_wall_s : float;
  c_throughput : float;
  c_cache_hits : int;
  c_executed : int;
  c_cache_skipped : int;
  c_cache_corrupt : int;
  c_cache_write_failed : int;
  c_cancelled : bool;
}

type progress = {
  pr_result : result;
  pr_cached : bool;
  pr_done : int;
  pr_total : int;
}

type telemetry = {
  te_seq : int;
  te_wall_s : float;
  te_done : int;
  te_total : int;
  te_cached : int;
  te_cache_skipped : int;
  te_last_label : string;
  te_rate_jobs_per_s : float;
  te_events_per_s : float;
  te_gc_minor_words : float;
  te_gc_promoted_words : float;
  te_counters : Metrics.t;
  te_delta : Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Live board: an ambient, mutex-guarded registry that in-flight job
   bodies may publish to mid-run (the rt nodes push accrual phi and
   sample counts through it).  It is strictly write-only telemetry —
   nothing in the engine or any job reads it back — so publishing can
   never perturb a result.  Publishers check [is_active] first: when no
   telemetry consumer enabled the board, a publish is one bool read.   *)
(* ------------------------------------------------------------------ *)

module Live = struct
  let m = Mutex.create ()
  let reg = ref (Metrics.create ())
  let active = ref false

  let enable () =
    Mutex.lock m;
    reg := Metrics.create ();
    active := true;
    Mutex.unlock m

  let disable () =
    Mutex.lock m;
    active := false;
    reg := Metrics.create ();
    Mutex.unlock m

  let is_active () = !active

  let set_gauge name v =
    if !active then begin
      Mutex.lock m;
      if !active then Metrics.set_gauge !reg name v;
      Mutex.unlock m
    end

  let incr ?by name =
    if !active then begin
      Mutex.lock m;
      if !active then Metrics.incr !reg ?by name;
      Mutex.unlock m
    end

  let snapshot () =
    Mutex.lock m;
    let s = Metrics.snapshot !reg in
    Mutex.unlock m;
    s
end

(* ------------------------------------------------------------------ *)
(* Bounded work queue (indices into the job array).  The producer (the
   calling domain) blocks when the queue is full, workers block when it
   is empty; [close] wakes everyone up for shutdown.                   *)
(* ------------------------------------------------------------------ *)

module Bqueue = struct
  type 'a t = {
    items : 'a Queue.t;
    cap : int;
    mutex : Mutex.t;
    nonfull : Condition.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    {
      items = Queue.create ();
      cap = max 1 cap;
      mutex = Mutex.create ();
      nonfull = Condition.create ();
      nonempty = Condition.create ();
      closed = false;
    }

  let push t v =
    Mutex.lock t.mutex;
    while Queue.length t.items >= t.cap && not t.closed do
      Condition.wait t.nonfull t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Bqueue.push: closed"
    end;
    Queue.push v t.items;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex

  (* [None] once the queue is closed and drained. *)
  let pop t =
    Mutex.lock t.mutex;
    let rec loop () =
      match Queue.take_opt t.items with
      | Some v ->
          Condition.signal t.nonfull;
          Mutex.unlock t.mutex;
          Some v
      | None ->
          if t.closed then begin
            Mutex.unlock t.mutex;
            None
          end
          else begin
            Condition.wait t.nonempty t.mutex;
            loop ()
          end
    in
    loop ()
end

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let default_jobs () =
  match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j -> max 1 j | None -> 1)
  | None -> max 1 (Domain.recommended_domain_count ())

let run_job j =
  let t0 = Unix.gettimeofday () in
  let ok, notes, metrics, row, extra, error =
    match j.run () with
    | b -> (b.ok, b.notes, b.metrics, b.row, b.extra, None)
    | exception e ->
        let msg = Printexc.to_string e in
        (false, [ "raised: " ^ msg ], [], j.label ^ "  RAISED " ^ msg, Json.Null, Some msg)
  in
  {
    r_exp = j.exp;
    r_label = j.label;
    r_params = j.params;
    r_seed = j.seed;
    r_replay = j.replay;
    r_ok = ok;
    r_notes = notes;
    r_metrics = metrics;
    r_row = row;
    r_extra = extra;
    r_error = error;
    r_wall_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Result serialization (artifacts + cache entries)                    *)
(* ------------------------------------------------------------------ *)

let opt_string = function None -> Json.Null | Some s -> Json.String s

let result_json ?(timing = true) r =
  Json.Obj
    ([
       ("label", Json.String r.r_label);
       ("seed", Json.Int r.r_seed);
       ("params", Json.Obj r.r_params);
       ("ok", Json.Bool r.r_ok);
       ("notes", Json.List (List.map (fun n -> Json.String n) r.r_notes));
       ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.r_metrics));
       ("row", Json.String r.r_row);
       ("extra", r.r_extra);
       ("error", opt_string r.r_error);
       ("replay", opt_string r.r_replay);
     ]
    @ if timing then [ ("wall_s", Json.Float r.r_wall_s) ] else [])

(* Inverse of [result_json ~timing:false] plus the experiment id; the
   round-trip must be exact (the [signature] of a cache-replayed
   campaign is byte-identical to the cold one — test-pinned). *)
let result_of_json j =
  match j with
  | Json.Obj fields ->
      let find name = List.assoc_opt name fields in
      let str name d = match find name with Some (Json.String s) -> s | _ -> d in
      let opt name =
        match find name with Some (Json.String s) -> Some s | _ -> None
      in
      let notes =
        match find "notes" with
        | Some (Json.List l) ->
            List.filter_map (function Json.String s -> Some s | _ -> None) l
        | _ -> []
      in
      let metrics =
        match find "metrics" with
        | Some (Json.Obj l) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v))
              l
        | _ -> []
      in
      let params = match find "params" with Some (Json.Obj l) -> l | _ -> [] in
      Some
        {
          r_exp = str "exp" "";
          r_label = str "label" "";
          r_params = params;
          r_seed = (match find "seed" with Some (Json.Int i) -> i | _ -> 0);
          r_replay = opt "replay";
          r_ok = (match find "ok" with Some (Json.Bool b) -> b | _ -> false);
          r_notes = notes;
          r_metrics = metrics;
          r_row = str "row" "";
          r_extra = (match find "extra" with Some e -> e | None -> Json.Null);
          r_error = opt "error";
          r_wall_s = 0.0;
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Content-addressed result cache.  Entries are keyed by an opaque hex
   digest the caller derives from everything the job's outcome depends
   on (code fingerprint, protocol, params, seed, fault spec, backend);
   the stored value is the interleaving-independent part of the result
   (no wall clock), so replaying from cache preserves [signature]
   byte-for-byte.  Entries are sharded two-hex-chars deep and written
   atomically (tmp + rename), so worker domains can store concurrently
   without locking the directory.                                      *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type t = {
    dir : string;
    mutable hits : int;
    mutable misses : int;
    mutable stores : int;
    mutable corrupt : int;
    mutable write_failed : int;
    m : Mutex.t;
  }

  let default_dir = Filename.concat "_results" "cache"

  let rec mkdir_p dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
    end

  let create ?(dir = default_dir) () =
    mkdir_p dir;
    {
      dir;
      hits = 0;
      misses = 0;
      stores = 0;
      corrupt = 0;
      write_failed = 0;
      m = Mutex.create ();
    }

  let dir t = t.dir
  let hits t = t.hits
  let misses t = t.misses
  let stores t = t.stores
  let corrupt t = t.corrupt
  let write_failed t = t.write_failed

  let reset_stats t =
    Mutex.lock t.m;
    t.hits <- 0;
    t.misses <- 0;
    t.stores <- 0;
    t.corrupt <- 0;
    t.write_failed <- 0;
    Mutex.unlock t.m

  let bump t field =
    Mutex.lock t.m;
    (match field with
    | `Hit -> t.hits <- t.hits + 1
    | `Miss -> t.misses <- t.misses + 1
    | `Store -> t.stores <- t.stores + 1
    | `Corrupt -> t.corrupt <- t.corrupt + 1
    | `WriteFailed -> t.write_failed <- t.write_failed + 1);
    Mutex.unlock t.m

  (* MD5 over the NUL-joined parts: stable, dependency-free, and not
     security-sensitive (the cache is a local build artifact). *)
  let key ~parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

  let path_of t k =
    let shard = if String.length k >= 2 then String.sub k 0 2 else "xx" in
    Filename.concat (Filename.concat t.dir shard) (k ^ ".json")

  (* Entries carry a content checksum so a truncated, bit-flipped, or
     otherwise mangled file is detected on read instead of being half
     trusted: the checksum is MD5 over the minified payload rendered
     WITHOUT the checksum field, and it is recomputed on every [find]. *)
  let payload_checksum fields =
    Digest.to_hex (Digest.string (Json.to_string ~minify:true (Json.Obj fields)))

  let entry_json k r =
    let payload =
      [ ("cache_key", Json.String k); ("exp", Json.String r.r_exp) ]
      @ Stamp.fields ()
      @
      match result_json ~timing:false r with
      | Json.Obj fields -> fields
      | j -> [ ("result", j) ]
    in
    Json.Obj (("checksum", Json.String (payload_checksum payload)) :: payload)

  (* A corrupt entry is a counted miss, never an exception: bump both
     counters, unlink the bad file so the slot heals on the next store,
     and let the caller re-execute the job. *)
  let corrupt_entry t path =
    bump t `Corrupt;
    bump t `Miss;
    (try Sys.remove path with Sys_error _ -> ());
    None

  let verify_checksum j =
    match j with
    | Json.Obj fields -> (
        match List.assoc_opt "checksum" fields with
        | Some (Json.String sum) ->
            let payload = List.filter (fun (k, _) -> k <> "checksum") fields in
            String.equal sum (payload_checksum payload)
        | _ -> false (* missing or non-string checksum: pre-checksum or mangled *))
    | _ -> false

  let find t k =
    let path = path_of t k in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ ->
        bump t `Miss;
        None
    | contents -> (
        match Json.of_string contents with
        | Error _ -> corrupt_entry t path
        | Ok j -> (
            if not (verify_checksum j) then corrupt_entry t path
            else
              match result_of_json j with
              | Some r ->
                  bump t `Hit;
                  Some r
              | None -> corrupt_entry t path))

  let store t k r =
    let path = path_of t k in
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    (try
       Json.write_file tmp (entry_json k r);
       Sys.rename tmp path;
       bump t `Store
     with Sys_error _ ->
       bump t `WriteFailed;
       (try Sys.remove tmp with Sys_error _ -> ()))
end

let sink : campaign list ref = ref []
let sink_mutex = Mutex.create ()

let note_campaign c =
  Mutex.lock sink_mutex;
  sink := c :: !sink;
  Mutex.unlock sink_mutex

let noted_campaigns () =
  Mutex.lock sink_mutex;
  let l = List.rev !sink in
  Mutex.unlock sink_mutex;
  l

let reset_sink () =
  Mutex.lock sink_mutex;
  sink := [];
  Mutex.unlock sink_mutex

let run ?jobs ?cache ?on_progress ?on_telemetry ?(telemetry_every_s = 0.25)
    ?stop ~exp joblist =
  let workers = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs_a = Array.of_list joblist in
  let total = Array.length jobs_a in
  let workers = min workers (max 1 total) in
  let out = Array.make total None in
  let cached = Array.make total false in
  let done_count = ref 0 in
  let emit_mutex = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  (* Robustness counters are reported per campaign as deltas over the
     (possibly shared) cache, so a long-lived daemon attributes corrupt
     reads / failed writes to the run that observed them. *)
  let corrupt0 = match cache with Some c -> Cache.corrupt c | None -> 0 in
  let write_failed0 =
    match cache with Some c -> Cache.write_failed c | None -> 0
  in
  (* Telemetry accumulators, all guarded by [emit_mutex].  The board
     collects counter-shaped r_metrics of completed jobs; snapshots go
     out as cumulative registry + since-last delta (Metrics.snapshot /
     Metrics.delta), so a subscriber can either read the latest frame or
     fold the deltas with the merge law.  Strictly read-side: telemetry
     observes results, it never feeds back into a job. *)
  let skipped = ref 0 in
  let last_label = ref "" in
  let gc_minor = ref 0.0 in
  let gc_promoted = ref 0.0 in
  let board = Metrics.create () in
  let te_prev = ref (Metrics.create ()) in
  let te_seq = ref 0 in
  let counted_prefixes = [ "sched."; "net."; "fault."; "rt."; "obs." ] in
  let counted name =
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      counted_prefixes
  in
  (* Call with [emit_mutex] held. *)
  let emit_telemetry f =
    let wall = Unix.gettimeofday () -. t0 in
    let cum = Metrics.merge (Metrics.snapshot board) (Live.snapshot ()) in
    let delta = Metrics.delta ~base:!te_prev cum in
    te_prev := cum;
    incr te_seq;
    let events =
      Metrics.counter cum "sched.events" + Metrics.counter cum "rt.events"
    in
    let cached_n = Array.fold_left (fun n b -> if b then n + 1 else n) 0 cached in
    f
      {
        te_seq = !te_seq;
        te_wall_s = wall;
        te_done = !done_count;
        te_total = total;
        te_cached = cached_n;
        te_cache_skipped = !skipped;
        te_last_label = !last_label;
        te_rate_jobs_per_s = float_of_int !done_count /. Float.max wall 1e-9;
        te_events_per_s = float_of_int events /. Float.max wall 1e-9;
        te_gc_minor_words = !gc_minor;
        te_gc_promoted_words = !gc_promoted;
        te_counters = cum;
        te_delta = delta;
      }
  in
  (* Progress callbacks fire from worker domains too; serialize them and
     the completion counter under one lock. *)
  let emit i r was_cached =
    Mutex.lock emit_mutex;
    incr done_count;
    out.(i) <- Some r;
    cached.(i) <- was_cached;
    last_label := r.r_label;
    if on_telemetry <> None then
      List.iter
        (fun (k, v) ->
          if counted k then Metrics.incr board ~by:(int_of_float v) k)
        r.r_metrics;
    (match on_progress with
    | None -> ()
    | Some f ->
        f { pr_result = r; pr_cached = was_cached; pr_done = !done_count; pr_total = total });
    Mutex.unlock emit_mutex
  in
  let stopped = match stop with None -> fun () -> false | Some f -> f in
  let cancelled = ref false in
  if on_telemetry <> None then Live.enable ();
  (* Cache pre-pass on the calling domain: hits are resolved up front
     (and reported in job order), only misses are scheduled.  Keyless
     jobs bypass the cache entirely (rt outcomes are wall-clock
     dependent) — count them so campaign tables can surface the bypass
     instead of letting it read as a miss. *)
  let misses =
    match cache with
    | None -> List.init total Fun.id
    | Some cache ->
        let misses = ref [] in
        Array.iteri
          (fun i j ->
            match j.key with
            | None ->
                skipped := !skipped + 1;
                misses := i :: !misses
            | Some k -> (
                match Cache.find cache k with
                | Some r -> emit i { r with r_exp = j.exp } true
                | None -> misses := i :: !misses))
          jobs_a;
        List.rev !misses
  in
  let execute i =
    let j = jobs_a.(i) in
    let g0 = Gc.quick_stat () in
    let r = run_job j in
    let g1 = Gc.quick_stat () in
    (match (cache, j.key) with
    | Some cache, Some k when r.r_error = None -> Cache.store cache k r
    | Some _, Some _ (* raised: never cached *) ->
        Mutex.lock emit_mutex;
        skipped := !skipped + 1;
        Mutex.unlock emit_mutex
    | _ -> ());
    Mutex.lock emit_mutex;
    gc_minor := !gc_minor +. (g1.Gc.minor_words -. g0.Gc.minor_words);
    gc_promoted := !gc_promoted +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    Mutex.unlock emit_mutex;
    emit i r false
  in
  (* Periodic snapshots come from a dedicated ticker domain so a single
     long job still produces live frames; one final snapshot after the
     joins guarantees every telemetried campaign emits at least once. *)
  let ticker_stop = ref false in
  let ticker =
    match on_telemetry with
    | None -> None
    | Some f ->
        Some
          (Domain.spawn (fun () ->
               let period = Float.max 0.02 telemetry_every_s in
               while not !ticker_stop do
                 Unix.sleepf period;
                 if not !ticker_stop then begin
                   Mutex.lock emit_mutex;
                   (try emit_telemetry f with _ -> ());
                   Mutex.unlock emit_mutex
                 end
               done))
  in
  let executed = ref 0 in
  if workers <= 1 then
    List.iter
      (fun i ->
        if not !cancelled then
          if stopped () then cancelled := true
          else begin
            execute i;
            incr executed
          end)
      misses
  else begin
    let q = Bqueue.create (2 * workers) in
    let worker () =
      let rec loop () =
        match Bqueue.pop q with
        | None -> ()
        | Some i ->
            (* Distinct slots per worker; the final read happens after
               [Domain.join], which synchronizes. *)
            execute i;
            loop ()
      in
      loop ()
    in
    let domains = List.init workers (fun _ -> Domain.spawn worker) in
    (* Cancellation is producer-side: stop feeding the queue and let the
       in-flight jobs finish, so slots are either complete or untouched. *)
    List.iter
      (fun i ->
        if not !cancelled then
          if stopped () then cancelled := true
          else begin
            Bqueue.push q i;
            incr executed
          end)
      misses;
    Bqueue.close q;
    List.iter Domain.join domains
  end;
  (match (ticker, on_telemetry) with
  | Some d, Some f ->
      ticker_stop := true;
      Domain.join d;
      Mutex.lock emit_mutex;
      (try emit_telemetry f with _ -> ());
      Mutex.unlock emit_mutex
  | _ -> ());
  if on_telemetry <> None then Live.disable ();
  let wall = Unix.gettimeofday () -. t0 in
  let results =
    Array.to_list out |> List.filter_map Fun.id |> Array.of_list
  in
  let hits = Array.fold_left (fun n b -> if b then n + 1 else n) 0 cached in
  let c =
    {
      c_exp = exp;
      c_workers = workers;
      c_results = results;
      c_wall_s = wall;
      c_throughput = (float_of_int (Array.length results) /. Float.max wall 1e-9);
      c_cache_hits = hits;
      c_executed = !executed;
      c_cache_skipped = !skipped;
      c_cache_corrupt =
        (match cache with Some c -> Cache.corrupt c - corrupt0 | None -> 0);
      c_cache_write_failed =
        (match cache with
        | Some c -> Cache.write_failed c - write_failed0
        | None -> 0);
      c_cancelled = !cancelled;
    }
  in
  note_campaign c;
  c

let failures c = List.filter (fun r -> not r.r_ok) (Array.to_list c.c_results)

let rows c =
  Array.to_list c.c_results
  |> List.filter_map (fun r -> if r.r_row = "" then None else Some r.r_row)

let metric_summaries c =
  let names = ref [] in
  Array.iter
    (fun r ->
      List.iter
        (fun (k, _) -> if not (List.mem k !names) then names := k :: !names)
        r.r_metrics)
    c.c_results;
  List.rev !names
  |> List.filter_map (fun name ->
         let samples =
           Array.to_list c.c_results
           |> List.filter_map (fun r -> List.assoc_opt name r.r_metrics)
         in
         Option.map (fun s -> (name, s)) (Stats.summarize_opt samples))

(* Per-metric fixed-bucket histograms: one [Metrics.t] registry per
   result, merged in canonical job order.  [Metrics.merge] is
   associative and commutative, so the fold is independent of which
   domain produced which result — the [-j1] ≡ [-jN] contract extends to
   the histogram aggregates (the signature test pins it down). *)
let metric_histograms c =
  Array.to_list c.c_results
  |> List.map (fun r ->
         let m = Metrics.create () in
         List.iter (fun (name, v) -> Metrics.observe m name v) r.r_metrics;
         m)
  |> List.fold_left Metrics.merge (Metrics.create ())

(* ------------------------------------------------------------------ *)
(* JSON artifacts                                                      *)
(* ------------------------------------------------------------------ *)

let summary_json (s : Stats.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("stddev", Json.Float s.stddev);
      ("min", Json.Float s.min);
      ("p50", Json.Float s.p50);
      ("p95", Json.Float s.p95);
      ("max", Json.Float s.max);
    ]

let campaign_json c =
  Json.Obj
    (Stamp.fields ()
    @ [
      ("experiment", Json.String c.c_exp);
      ("workers", Json.Int c.c_workers);
      ("jobs", Json.Int (Array.length c.c_results));
      ("failed", Json.Int (List.length (failures c)));
      ("cache_hits", Json.Int c.c_cache_hits);
      ("executed", Json.Int c.c_executed);
      ("cache_skipped", Json.Int c.c_cache_skipped);
      ("cache_corrupt", Json.Int c.c_cache_corrupt);
      ("cache_write_failed", Json.Int c.c_cache_write_failed);
      ("cancelled", Json.Bool c.c_cancelled);
      ("wall_s", Json.Float c.c_wall_s);
      ("throughput_jobs_per_s", Json.Float c.c_throughput);
      ( "aggregates",
        Json.Obj (List.map (fun (k, s) -> (k, summary_json s)) (metric_summaries c)) );
      ("histograms", Metrics.to_json (metric_histograms c));
      ("results", Json.List (Array.to_list (Array.map result_json c.c_results)));
    ])

(* Telemetry snapshots rendered for the wire (the daemon's "telemetry"
   frames reuse this verbatim, so clients and tests see one schema). *)
let telemetry_json te =
  Json.Obj
    [
      ("seq", Json.Int te.te_seq);
      ("wall_s", Json.Float te.te_wall_s);
      ("done", Json.Int te.te_done);
      ("total", Json.Int te.te_total);
      ("cached", Json.Int te.te_cached);
      ("cache_skipped", Json.Int te.te_cache_skipped);
      ("label", Json.String te.te_last_label);
      ("rate_jobs_per_s", Json.Float te.te_rate_jobs_per_s);
      ("events_per_s", Json.Float te.te_events_per_s);
      ("gc_minor_words", Json.Float te.te_gc_minor_words);
      ("gc_promoted_words", Json.Float te.te_gc_promoted_words);
      ("counters", Metrics.to_json te.te_counters);
      ("delta", Metrics.to_json te.te_delta);
    ]

let signature c =
  Json.to_string ~minify:true
    (Json.Obj
       [
         ("experiment", Json.String c.c_exp);
         ( "results",
           Json.List
             (Array.to_list (Array.map (fun r -> result_json ~timing:false r) c.c_results))
         );
       ])

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()

let write_artifact ?(dir = "_results") c =
  ensure_dir dir;
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" c.c_exp) in
  Json.write_file path (campaign_json c);
  path

let failure_json r =
  Json.Obj
    [
      ("experiment", Json.String r.r_exp);
      ("label", Json.String r.r_label);
      ("seed", Json.Int r.r_seed);
      ("params", Json.Obj r.r_params);
      ("notes", Json.List (List.map (fun n -> Json.String n) r.r_notes));
      ("error", opt_string r.r_error);
      ("replay", opt_string r.r_replay);
    ]

let flush_failures ?(dir = "_results") () =
  ensure_dir dir;
  let all = List.concat_map failures (noted_campaigns ()) in
  Json.write_file
    (Filename.concat dir "failures.json")
    (Json.Obj
       (Stamp.fields ()
       @ [
           ("failures", Json.Int (List.length all));
           ("triage", Json.List (List.map failure_json all));
         ]));
  List.length all
