(** Multicore campaign engine for seeded simulator sweeps.

    Every experiment of the bench harness (DESIGN.md §4) has the same
    shape: a sweep of independent [(experiment, params, seed)] jobs,
    each of which builds its own simulator from its seed, runs it, and
    checks a class/agreement property.  This module shards such sweeps
    across OCaml 5 [Domain]s through a bounded work queue while
    preserving byte-for-byte determinism:

    - a job closure must derive {e all} of its randomness from its own
      seed (build a fresh [Rng]/[Sim.t] inside [run]; never read
      ambient mutable state), and must not print — it returns a
      pre-rendered [row] instead;
    - results are merged into an array indexed by canonical job order
      (the order of the submitted list), so the merged output is
      independent of domain interleaving.  [signature] exposes exactly
      the interleaving-independent part; the sequential-vs-parallel
      equality test in [test/test_runner.ml] pins it down.

    A campaign also emits structured JSON artifacts
    ([_results/BENCH_<exp>.json]) so the perf trajectory accumulates
    per PR, and turns every failing job into a {e triage record} —
    seed, parameters and a ready-to-paste replay command — collected
    into [_results/failures.json]. *)

open Setagree_util

(** {1 Jobs} *)

type body = {
  ok : bool;  (** the job's checker verdict *)
  notes : string list;  (** checker notes shown in triage records *)
  metrics : (string * float) list;
      (** named samples (rounds, msgs, latency, ...) aggregated across
          the campaign via [Util.Stats] *)
  row : string;  (** pre-rendered table row, printed in canonical order *)
  extra : Json.t;
      (** arbitrary structured payload carried verbatim into the result
          (e.g. [Explore] counterexamples); part of {!signature}, so it
          must be interleaving-independent — no timing *)
}

type job = {
  exp : string;  (** experiment id, e.g. ["e5"] — names the artifact *)
  label : string;  (** human-readable cell label *)
  params : (string * Json.t) list;  (** parameters recorded in artifacts *)
  seed : int;
  replay : string option;  (** ready-to-paste [fdkit] command reproducing it *)
  key : string option;
      (** content-address for the result cache ([None] = never cached,
          e.g. wall-clock-dependent rt-backend jobs); derive it with
          {!Cache.key} from everything the outcome depends on *)
  run : unit -> body;
      (** must be self-contained and re-runnable: fresh [Sim.t] from
          [seed] on every call *)
}

val job :
  ?label:string ->
  ?params:(string * Json.t) list ->
  ?replay:string ->
  ?key:string ->
  exp:string ->
  seed:int ->
  (unit -> body) ->
  job
(** [label] defaults to ["<exp>/seed=<seed>"]. *)

val body :
  ?notes:string list ->
  ?metrics:(string * float) list ->
  ?row:string ->
  ?extra:Json.t ->
  bool ->
  body
(** [extra] defaults to [Json.Null]. *)

(** {1 Results} *)

type result = {
  r_exp : string;
  r_label : string;
  r_params : (string * Json.t) list;
  r_seed : int;
  r_replay : string option;
  r_ok : bool;
  r_notes : string list;
  r_metrics : (string * float) list;
  r_row : string;
  r_extra : Json.t;  (** the body's structured payload ([Json.Null] if none) *)
  r_error : string option;  (** an escaped exception, if the job raised *)
  r_wall_s : float;  (** per-job wall clock (timing-dependent!) *)
}

type campaign = {
  c_exp : string;
  c_workers : int;  (** domains actually used *)
  c_results : result array;  (** canonical job order *)
  c_wall_s : float;
  c_throughput : float;  (** jobs per second of wall clock *)
  c_cache_hits : int;  (** jobs resolved from the result cache *)
  c_executed : int;  (** jobs actually scheduled (misses before cancel) *)
  c_cache_skipped : int;
      (** jobs that bypassed the cache while one was in use: keyless
          jobs (rt-backend outcomes are wall-clock-dependent) plus jobs
          that raised (never stored); 0 when no cache was configured *)
  c_cache_corrupt : int;
      (** corrupt cache entries (truncated / garbage / bad checksum)
          detected during this run — each was unlinked and re-executed *)
  c_cache_write_failed : int;
      (** cache stores that failed (disk full, permissions, …) during
          this run; the campaign result itself is unaffected *)
  c_cancelled : bool;  (** [stop] fired before every job was scheduled *)
}

type progress = {
  pr_result : result;
  pr_cached : bool;  (** came from the cache, not an execution *)
  pr_done : int;  (** completed so far, including this one *)
  pr_total : int;
}

(** {1 Live telemetry}

    Periodic snapshots of an in-flight campaign.  A dedicated ticker
    domain samples the accumulators every [telemetry_every_s] (plus one
    final snapshot after the last join, so short campaigns still emit),
    entirely on the read side: telemetry observes completed results and
    the {!Live} board, it never feeds anything back into a job — -j1 ≡
    -jN signatures and replay fingerprints are byte-identical with
    telemetry on or off. *)

type telemetry = {
  te_seq : int;  (** 1-based snapshot sequence number *)
  te_wall_s : float;  (** since campaign start *)
  te_done : int;
  te_total : int;
  te_cached : int;
  te_cache_skipped : int;
  te_last_label : string;  (** most recently completed job; [""] if none *)
  te_rate_jobs_per_s : float;
  te_events_per_s : float;
      (** cumulative [sched.events] + [rt.events] per wall second *)
  te_gc_minor_words : float;
      (** summed over completed jobs (sampled per job on its worker
          domain); cache hits allocate nothing *)
  te_gc_promoted_words : float;
  te_counters : Metrics.t;
      (** cumulative [sched.*]/[net.*]/[fault.*]/[rt.*]/[obs.*] counters
          of completed jobs merged with the {!Live} board *)
  te_delta : Metrics.t;  (** since the previous snapshot ({!Metrics.delta}) *)
}

val telemetry_json : telemetry -> Json.t
(** The wire rendering used by the daemon's [telemetry] frames. *)

(** Ambient publish-only board for mid-run signals from inside job
    bodies (e.g. rt nodes pushing accrual phi while a single long job
    runs).  Enabled by {!run} only when a telemetry consumer is
    attached; publishing when inactive is one boolean read.  Nothing
    ever reads the board except telemetry snapshots, so publishing
    cannot perturb results. *)
module Live : sig
  val is_active : unit -> bool
  val set_gauge : string -> float -> unit
  val incr : ?by:int -> string -> unit

  val snapshot : unit -> Metrics.t
  (** Copy of the current board (empty when inactive). *)

  val enable : unit -> unit
  (** Reset and activate; {!run} manages this around telemetried
      campaigns — call it directly only in tests. *)

  val disable : unit -> unit
end

(** {1 Result cache}

    Content-addressed store under [_results/cache/] (sharded
    [ab/<hex>.json], atomic tmp+rename writes).  Keys are opaque hex
    digests over everything a job's outcome depends on — code
    fingerprint, protocol, canonical params, seed, fault spec, backend;
    [Core.Job] derives them.  The stored value is the
    interleaving-independent part of the result (no wall clock), so a
    warm campaign's {!signature} is byte-identical to the cold one. *)

module Cache : sig
  type t

  val default_dir : string
  (** [_results/cache] *)

  val create : ?dir:string -> unit -> t
  (** Creates [dir] (and parents) if missing. *)

  val dir : t -> string

  val key : parts:string list -> string
  (** MD5 hex over the NUL-joined parts; order-sensitive. *)

  val find : t -> string -> result option
  (** [None] on absent, unreadable, or malformed entries (all counted
      as misses).  Entries carry a content checksum; a truncated,
      garbage, or checksum-mismatched entry is additionally counted via
      {!corrupt} and unlinked so the slot heals on the next store —
      corruption is never an exception.  Loaded results have
      [r_wall_s = 0.]. *)

  val store : t -> string -> result -> unit
  (** Atomic (tmp + rename); safe from concurrent worker domains.
      Entries are written with a content checksum over the minified
      payload.  A failed write is counted via {!write_failed} (and the
      temp file removed) rather than raised — the job's result is
      already in hand, only reuse is lost. *)

  val hits : t -> int
  val misses : t -> int
  val stores : t -> int

  val corrupt : t -> int
  (** Corrupt entries detected (and unlinked) by {!find}; each is also
      counted as a miss. *)

  val write_failed : t -> int
  (** Stores that failed with a filesystem error. *)

  val reset_stats : t -> unit
end

(** {1 Running} *)

val default_jobs : unit -> int
(** [BENCH_JOBS] env var if set, else [Domain.recommended_domain_count].
    Never below 1. *)

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?on_progress:(progress -> unit) ->
  ?on_telemetry:(telemetry -> unit) ->
  ?telemetry_every_s:float ->
  ?stop:(unit -> bool) ->
  exp:string ->
  job list ->
  campaign
(** Execute every job and merge results in canonical order.  [jobs]
    (default {!default_jobs}) is the worker-domain count; [jobs = 1]
    runs inline on the calling domain.  A job that raises is captured
    as a failed result ([r_error]), never aborting the campaign.  The
    campaign is recorded in the process-wide triage sink (see
    {!flush_failures}).

    With [cache], jobs whose [key] is found are resolved up front, in
    job order, without executing ([pr_cached = true] in progress
    events); misses execute and are stored on success (jobs that raised
    are never cached).  With [on_progress], the callback fires once per
    completed job — possibly from a worker domain, serialized under an
    internal lock, in completion (not canonical) order.  With [stop],
    the predicate is polled on the calling domain between job
    submissions; once it returns [true], no further jobs start
    ([c_cancelled = true]) but in-flight jobs finish and completed
    slots are kept — [c_results] then holds fewer rows than were
    submitted, still in canonical order.

    With [on_telemetry], a ticker domain delivers a {!telemetry}
    snapshot every [telemetry_every_s] (default 0.25, clamped to
    >= 0.02) plus one final snapshot, serialized under the same lock as
    [on_progress]; the {!Live} board is enabled for the campaign's
    duration.  Telemetry is read-only — results, signatures and replay
    fingerprints are byte-identical with it on or off. *)

val failures : campaign -> result list

val signature : campaign -> string
(** Canonical rendering of everything interleaving-independent (labels,
    seeds, verdicts, notes, metrics, rows, errors — {e not} wall-clock
    fields).  Equal signatures at [-j 1] and [-j N] is the determinism
    contract. *)

val rows : campaign -> string list
(** The non-empty pre-rendered rows, in canonical order. *)

val metric_summaries : campaign -> (string * Stats.summary) list
(** Per-metric aggregates over all jobs that reported the metric, in
    order of first appearance.  Metrics with zero samples are dropped
    (via [Stats.summarize_opt]). *)

val metric_histograms : campaign -> Metrics.t
(** One fixed-bucket histogram per metric: per-result registries merged
    in canonical job order ([Metrics.merge] is associative/commutative,
    so the result is identical for [-j 1] and [-j N]).  Rendered into
    {!campaign_json} under ["histograms"] with p50/p90/p95/p99
    estimates per metric. *)

(** {1 JSON artifacts} *)

val result_json : ?timing:bool -> result -> Json.t
(** One result as an artifact object; [~timing:false] (default [true])
    drops the wall-clock field — the cache/signature form. *)

val result_of_json : Json.t -> result option
(** Inverse of [result_json ~timing:false] (plus the ["exp"] field as
    written in cache entries); [r_wall_s] loads as [0.]. *)

val campaign_json : campaign -> Json.t

val write_artifact : ?dir:string -> campaign -> string
(** Write [<dir>/BENCH_<exp>.json] (default dir [_results], created if
    missing) and return the path. *)

val failure_json : result -> Json.t
(** The triage record: experiment, label, seed, params, notes, error,
    and the replay command. *)

(** {1 Triage sink}

    [run] appends every campaign to a process-wide sink (guarded by a
    mutex) so a multi-experiment harness can report all failing seeds
    at the end without threading campaign values through each
    experiment. *)

val noted_campaigns : unit -> campaign list
(** Campaigns recorded since start (or last [reset_sink]), in
    completion order. *)

val reset_sink : unit -> unit

val flush_failures : ?dir:string -> unit -> int
(** Write every failing job of every noted campaign to
    [<dir>/failures.json] (default [_results]) as triage records and
    return the failure count.  With zero failures the file is still
    written (an empty list), so a previous run's failures never
    linger. *)
