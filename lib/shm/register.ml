open Setagree_util
open Setagree_dsys

type 'a t = {
  sim : Sim.t;
  writer : Pid.t;
  access_time : float;
  mutable value : 'a;
  mutable writes : int;
}

let create sim ~writer ?(access_time = 0.1) init =
  { sim; writer; access_time; value = init; writes = 0 }

let write t ~by v =
  if by <> t.writer then invalid_arg "Register.write: not the writer";
  (* The write takes effect at the end of the access interval. *)
  Sim.sleep t.access_time;
  if not (Sim.is_crashed t.sim by) then begin
    t.value <- v;
    t.writes <- t.writes + 1
  end

let read t ~by =
  ignore by;
  Sim.sleep t.access_time;
  t.value

let peek t = t.value
let write_count t = t.writes
