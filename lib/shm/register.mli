(** Single-writer multi-reader atomic registers (the shared-memory model of
    the paper's Appendix B).

    The simulator executes at most one event at a time, so reads and writes
    are trivially linearizable: each operation takes effect at the instant
    it executes.  What the substrate adds is the {e cost model} (an access
    takes non-zero virtual time, so register scans interleave with crashes
    and with other processes' writes) and writer enforcement. *)

open Setagree_util
open Setagree_dsys

type 'a t

val create : Sim.t -> writer:Pid.t -> ?access_time:float -> 'a -> 'a t
(** [create sim ~writer init] — only [writer] may write.  [access_time]
    (default 0.1) is the virtual duration of one read or write; operations
    must be called from fiber context (they {!Sim.sleep}). *)

val write : 'a t -> by:Pid.t -> 'a -> unit
(** @raise Invalid_argument if [by] is not the registered writer. *)

val read : 'a t -> by:Pid.t -> 'a

val peek : 'a t -> 'a
(** Zero-time read for checkers and monitors (not part of the model). *)

val write_count : 'a t -> int
