let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

(* Subsets of {0..n-1} of cardinality [size], as ascending element lists,
   lexicographic order.  Unranking: the subsets whose smallest element is the
   current pool element number C(remaining_pool - 1, size - 1); skip whole
   blocks until the rank falls inside one. *)
let unrank_positions ~n ~size r =
  if size < 0 || size > n then invalid_arg "Combi.unrank: bad size";
  let total = binomial n size in
  if r < 0 || r >= total then invalid_arg "Combi.unrank: rank out of range";
  let rec go r elt remaining acc =
    if remaining = 0 then List.rev acc
    else
      let c = binomial (n - elt - 1) (remaining - 1) in
      if r < c then go r (elt + 1) (remaining - 1) (elt :: acc)
      else go (r - c) (elt + 1) remaining acc
  in
  go r 0 size []

let rank_positions ~n positions =
  let size = List.length positions in
  let rec go r elt remaining = function
    | [] -> r
    | p :: rest ->
        if p = elt then go r (elt + 1) (remaining - 1) rest
        else go (r + binomial (n - elt - 1) (remaining - 1)) (elt + 1) remaining (p :: rest)
  in
  ignore size;
  go 0 0 (List.length positions) positions

let unrank ~n ~size r = Pidset.of_list (unrank_positions ~n ~size r)
let rank ~n s = rank_positions ~n (Pidset.to_list s)

let unrank_in ~base ~size r =
  let elems = Array.of_list (Pidset.to_list base) in
  let nb = Array.length elems in
  let positions = unrank_positions ~n:nb ~size r in
  Pidset.of_list (List.map (fun i -> elems.(i)) positions)

let rank_in ~base s =
  let elems = Array.of_list (Pidset.to_list base) in
  let nb = Array.length elems in
  let index_of p =
    let rec go i = if elems.(i) = p then i else go (i + 1) in
    go 0
  in
  rank_positions ~n:nb (List.map index_of (Pidset.to_list s))

let enumerate ~n ~size =
  let total = binomial n size in
  Seq.init total (fun r -> unrank ~n ~size r)
