(** Combinatorics of fixed-size subsets.

    The two-wheels transformation (paper §4) scans logical rings built from
    {e all} x-subsets of [Pi] (lower wheel) and all (t-y+1)-subsets with their
    z-subsets (upper wheel).  Every process must enumerate these families in
    the same order, so the order must be canonical: we use lexicographic
    order on the ascending element lists (the combinatorial number system),
    with O(size) ranking and unranking. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n, k); 0 when [k < 0] or [k > n].  Uses exact integer
    arithmetic; callers keep n small enough (n <= 62) that no overflow can
    occur for the sizes used here. *)

val unrank : n:int -> size:int -> int -> Pidset.t
(** [unrank ~n ~size r] is the [r]-th (0-based) subset of [{0..n-1}] of
    cardinality [size] in lexicographic order.
    @raise Invalid_argument if [r] is out of range. *)

val rank : n:int -> Pidset.t -> int
(** [rank ~n s] is the lexicographic rank of [s] among the subsets of
    [{0..n-1}] with cardinality [cardinal s]. *)

val unrank_in : base:Pidset.t -> size:int -> int -> Pidset.t
(** [unrank_in ~base ~size r] is the [r]-th subset of [base] of the given
    cardinality, in lexicographic order on positions within [base]'s
    ascending element list. *)

val rank_in : base:Pidset.t -> Pidset.t -> int
(** Inverse of {!unrank_in} (for subsets of [base]). *)

val enumerate : n:int -> size:int -> Pidset.t Seq.t
(** All subsets of [{0..n-1}] of the given size, lexicographic order. *)
