(* Flat int-indexed event arena: a timing wheel in front of a 4-ary
   min-heap, both over struct-of-arrays slots.  One slot holds
   (time, seq, kind, arg); entries are ordered by (time, seq), seq being a
   monotonic insertion counter so that ties at one instant preserve
   insertion order — the same contract the scheduler previously got from a
   [Pqueue.t] of closure records.

   The point of the layout is the steady state: [add] recycles slots off a
   free list threaded through [arg], [pop] releases the popped slot back,
   and all comparisons are inline int/float array reads — no per-event
   record, no closure, no comparator call.  A long-running simulation
   reaches a fixed arena size and then allocates nothing per event.

   Why a wheel: a simulation keeps tens of thousands of deliveries in
   flight, and a comparison-based heap pays log4 of that in cache-missing
   levels on every pop.  Near-future events — the overwhelming majority,
   message delays being small and bounded — instead hash into one of [nb]
   time buckets of width [bw]: a pop finds the first occupied bucket
   through a two-level bitmap and scans its short unsorted chain for the
   exact (time, seq) minimum.  Events beyond the wheel window, or behind
   the pop frontier, go to the heap; the true minimum is whichever of
   (first-bucket min, heap top) is smaller, so ordering stays exact, not
   approximate.  When in-flight counts outgrow the resolution (a scanned
   chain passes [chain_limit]) the wheel rebuilds with half the bucket
   width, so chains stay short at any scale.

   [hpos] maps a live slot to its place (heap index, or the wheel marker),
   giving true removal for [cancel] — the queue length stays exact. *)

type t = {
  mutable time : float array; (* per slot *)
  mutable seq : int array;
  mutable kind : int array;
  mutable arg : int array; (* free slots: next free slot id, or -1 *)
  mutable hpos : int array; (* slot -> heap index; in wheel = -2; free = -1 *)
  (* Overflow heap of slot ids, with (time, seq) mirrored at heap positions
     so sift comparisons read sequentially (a 4-child probe is one cache
     line of [h_time]) instead of chasing heap.(i) -> time.(slot) into a
     large scattered array. *)
  mutable heap : int array;
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable hsize : int; (* live heap entries *)
  (* Timing wheel. *)
  mutable bnext : int array; (* slot -> next slot in its bucket chain *)
  buckets : int array; (* bucket -> chain head slot, -1 = empty *)
  bits : int array; (* bucket occupancy bitmap, 32 buckets per word *)
  summary : int array; (* word occupancy of [bits], 32 words per entry *)
  mutable bw_inv : float; (* 1 / bucket width *)
  mutable floor_ab : int; (* absolute bucket number of the pop frontier *)
  mutable last_pop : float; (* pop frontier time, for rebuilds *)
  mutable wcount : int; (* live wheel entries *)
  (* Cached minimum: peek and the following pop share one bucket scan, and
     adds maintain it incrementally instead of invalidating. *)
  mutable cm_valid : bool;
  mutable cm_slot : int;
  mutable cm_wheel : bool;
  mutable cm_prev : int; (* chain predecessor for O(1) unlink, -1 = head *)
  mutable cm_bucket : int;
  mutable free : int; (* free-list head, -1 = none *)
  mutable next_seq : int;
  (* Slot popped but not yet recycled: the free list is threaded through
     [arg], so releasing immediately would clobber the very field the
     caller is about to read.  [add]/[pop] flush it first. *)
  mutable pending : int;
}

let nb = 16384 (* buckets; power of two *)
let nb_mask = nb - 1
let bits_len = nb / 32
let summary_len = bits_len / 32
let chain_limit = 24 (* rebuild with bw/2 when a scanned chain exceeds this *)
let max_bw_inv = 1e12 (* narrowing fuse: equal-time pileups can't split *)
let initial_bw_inv = float_of_int nb /. 4.0 (* window starts 4 time units *)

let create ?(initial = 64) () =
  let cap = max 4 initial in
  {
    time = Array.make cap 0.0;
    seq = Array.make cap 0;
    kind = Array.make cap 0;
    arg = Array.init cap (fun i -> if i + 1 < cap then i + 1 else -1);
    hpos = Array.make cap (-1);
    heap = Array.make cap 0;
    h_time = Array.make cap 0.0;
    h_seq = Array.make cap 0;
    hsize = 0;
    bnext = Array.make cap (-1);
    buckets = Array.make nb (-1);
    bits = Array.make bits_len 0;
    summary = Array.make summary_len 0;
    bw_inv = initial_bw_inv;
    floor_ab = 0;
    last_pop = 0.0;
    wcount = 0;
    cm_valid = false;
    cm_slot = -1;
    cm_wheel = false;
    cm_prev = -1;
    cm_bucket = 0;
    free = 0;
    next_seq = 0;
    pending = -1;
  }

let length t = t.hsize + t.wcount
let is_empty t = t.hsize = 0 && t.wcount = 0

let grow t =
  let cap = Array.length t.time in
  let ncap = 2 * cap in
  let copy a fill =
    let a' = Array.make ncap fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.time <- copy t.time 0.0;
  t.seq <- copy t.seq 0;
  t.kind <- copy t.kind 0;
  t.arg <- copy t.arg 0;
  t.hpos <- copy t.hpos (-1);
  t.heap <- copy t.heap 0;
  t.h_time <- copy t.h_time 0.0;
  t.h_seq <- copy t.h_seq 0;
  t.bnext <- copy t.bnext (-1);
  (* Thread the new slots onto the free list. *)
  for i = cap to ncap - 1 do
    t.arg.(i) <- (if i + 1 < ncap then i + 1 else t.free)
  done;
  t.free <- cap

(* ---- Overflow heap ---- *)

(* Both sifts move a hole: the entry being placed rides in (immutable,
   unboxed) locals, displaced entries are copied once in the hole's
   direction, and the entry is written exactly once at its final position.
   (time, seq) order throughout: strictly earlier, or same instant and
   inserted first. *)
let sift_up t i0 =
  let slot = t.heap.(i0) in
  let tm = t.h_time.(i0) and sq = t.h_seq.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 4 in
    if tm < t.h_time.(p) || (tm = t.h_time.(p) && sq < t.h_seq.(p)) then begin
      let sp = t.heap.(p) in
      t.heap.(!i) <- sp;
      t.h_time.(!i) <- t.h_time.(p);
      t.h_seq.(!i) <- t.h_seq.(p);
      t.hpos.(sp) <- !i;
      i := p
    end
    else continue := false
  done;
  if !i <> i0 then begin
    t.heap.(!i) <- slot;
    t.h_time.(!i) <- tm;
    t.h_seq.(!i) <- sq;
    t.hpos.(slot) <- !i
  end

let sift_down t i0 =
  let slot = t.heap.(i0) in
  let tm = t.h_time.(i0) and sq = t.h_seq.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let first = (4 * !i) + 1 in
    if first >= t.hsize then continue := false
    else begin
      (* Smallest of up to four children: adjacent heap positions, so the
         probes stay within one or two cache lines of [h_time]. *)
      let best = ref first in
      let last = min (first + 3) (t.hsize - 1) in
      for c = first + 1 to last do
        if
          t.h_time.(c) < t.h_time.(!best)
          || (t.h_time.(c) = t.h_time.(!best) && t.h_seq.(c) < t.h_seq.(!best))
        then best := c
      done;
      let b = !best in
      if t.h_time.(b) < tm || (t.h_time.(b) = tm && t.h_seq.(b) < sq) then begin
        let sb = t.heap.(b) in
        t.heap.(!i) <- sb;
        t.h_time.(!i) <- t.h_time.(b);
        t.h_seq.(!i) <- t.h_seq.(b);
        t.hpos.(sb) <- !i;
        i := b
      end
      else continue := false
    end
  done;
  if !i <> i0 then begin
    t.heap.(!i) <- slot;
    t.h_time.(!i) <- tm;
    t.h_seq.(!i) <- sq;
    t.hpos.(slot) <- !i
  end

let heap_insert t slot ~time ~sq =
  let i = t.hsize in
  t.hsize <- i + 1;
  t.heap.(i) <- slot;
  t.h_time.(i) <- time;
  t.h_seq.(i) <- sq;
  t.hpos.(slot) <- i;
  sift_up t i

(* Remove the heap entry at index [i]; the slot stays live (caller decides
   whether to release it). *)
let heap_remove_at t i =
  let last = t.hsize - 1 in
  t.hsize <- last;
  if i < last then begin
    let moved = t.heap.(last) in
    t.heap.(i) <- moved;
    t.h_time.(i) <- t.h_time.(last);
    t.h_seq.(i) <- t.h_seq.(last);
    t.hpos.(moved) <- i;
    (* The filler can need either direction relative to position [i]. *)
    sift_up t i;
    sift_down t t.hpos.(moved)
  end

(* ---- Wheel ---- *)

let bit_set t b =
  let w = b lsr 5 in
  t.bits.(w) <- t.bits.(w) lor (1 lsl (b land 31));
  t.summary.(w lsr 5) <- t.summary.(w lsr 5) lor (1 lsl (w land 31))

let bit_clear t b =
  let w = b lsr 5 in
  let v = t.bits.(w) land lnot (1 lsl (b land 31)) in
  t.bits.(w) <- v;
  if v = 0 then
    t.summary.(w lsr 5) <- t.summary.(w lsr 5) land lnot (1 lsl (w land 31))

(* Index of the lowest set bit of a nonzero 32-bit word. *)
let lsb w =
  let w = w land -w in
  let r = ref 0 in
  if w land 0xFFFF0000 <> 0 then r := !r + 16;
  if w land 0xFF00FF00 <> 0 then r := !r + 8;
  if w land 0xF0F0F0F0 <> 0 then r := !r + 4;
  if w land 0xCCCCCCCC <> 0 then r := !r + 2;
  if w land 0xAAAAAAAA <> 0 then r := !r + 1;
  !r

(* First occupied bucket at or circularly after [from] (a bucket index, the
   frontier's); -1 when the wheel is empty.  Live wheel entries span less
   than a full rotation, so circular order from the frontier is ascending
   bucket-number order.  Scans bitmap words, skipping empty 32-word groups
   via the summary. *)
let next_occupied t from =
  if t.wcount = 0 then -1
  else begin
    let fw = from lsr 5 in
    let first = t.bits.(fw) land lnot ((1 lsl (from land 31)) - 1) in
    if first <> 0 then (fw lsl 5) lor lsb first
    else begin
      let found = ref (-1) in
      let w = ref (fw + 1) in
      let steps = ref 0 in
      while !found < 0 && !steps < bits_len do
        let wi = !w land (bits_len - 1) in
        if wi land 31 = 0 && t.summary.(wi lsr 5) = 0 then begin
          w := !w + 32;
          steps := !steps + 32
        end
        else if t.bits.(wi) <> 0 then found := wi
        else begin
          incr w;
          incr steps
        end
      done;
      if !found < 0 then -1 else (!found lsl 5) lor lsb t.bits.(!found)
    end
  end

let wheel_insert t slot ~time ~ab =
  let b = ab land nb_mask in
  let head = t.buckets.(b) in
  t.bnext.(slot) <- head;
  t.buckets.(b) <- slot;
  if head = -1 then bit_set t b;
  t.hpos.(slot) <- -2;
  t.wcount <- t.wcount + 1;
  (* Keep the cached minimum exact: a strictly earlier entry replaces it
     (equal times lose — larger seq), and a head insert in the cached
     bucket becomes the cached head's new predecessor. *)
  if t.cm_valid then begin
    if time < t.time.(t.cm_slot) then begin
      t.cm_slot <- slot;
      t.cm_wheel <- true;
      t.cm_prev <- -1;
      t.cm_bucket <- b
    end
    else if t.cm_wheel && t.cm_bucket = b && t.cm_prev = -1 then
      t.cm_prev <- slot
  end

(* Unlink a wheel entry given its bucket and chain predecessor. *)
let wheel_unlink t slot ~bucket ~prev =
  (if prev = -1 then begin
     t.buckets.(bucket) <- t.bnext.(slot);
     if t.bnext.(slot) = -1 then bit_clear t bucket
   end
   else t.bnext.(prev) <- t.bnext.(slot));
  t.bnext.(slot) <- -1;
  t.wcount <- t.wcount - 1

(* Route a live slot into the wheel or the heap.  Wheel-eligible: a finite
   nonnegative time whose bucket number lands in the window
   [floor_ab, floor_ab + nb) (the float guard keeps the int conversion in
   range even after rebuild narrowing).  Entries behind the pop frontier
   or beyond the window take the heap. *)
let route t slot ~time ~sq =
  let abf = time *. t.bw_inv in
  let wheeled =
    time >= 0.0
    && abf < 4.0e18
    &&
    let ab = int_of_float abf in
    if ab >= t.floor_ab && ab - t.floor_ab < nb then begin
      wheel_insert t slot ~time ~ab;
      true
    end
    else if t.wcount = 0 && ab >= t.floor_ab then begin
      (* Empty wheel: re-base the window so a jump forward in time (or a
         freshly cleared arena) still gets bucketed. *)
      t.floor_ab <- ab;
      wheel_insert t slot ~time ~ab;
      true
    end
    else false
  in
  if not wheeled then begin
    heap_insert t slot ~time ~sq;
    if t.cm_valid && time < t.time.(t.cm_slot) then begin
      t.cm_slot <- slot;
      t.cm_wheel <- false
    end
  end

(* Halve the bucket width and re-route every wheel entry.  Triggered when a
   scanned chain exceeds [chain_limit]: the in-flight population outgrew
   the current resolution.  Geometric, so a run settles after a handful of
   rebuilds; entries now beyond the narrower window spill to the heap. *)
let rebuild_narrower t =
  t.bw_inv <- t.bw_inv *. 2.0;
  t.floor_ab <- int_of_float (t.last_pop *. t.bw_inv);
  t.cm_valid <- false;
  let stack = ref [] in
  for b = 0 to nb - 1 do
    let s = ref t.buckets.(b) in
    while !s >= 0 do
      stack := !s :: !stack;
      s := t.bnext.(!s)
    done;
    t.buckets.(b) <- -1
  done;
  Array.fill t.bits 0 bits_len 0;
  Array.fill t.summary 0 summary_len 0;
  t.wcount <- 0;
  List.iter
    (fun slot ->
      t.bnext.(slot) <- -1;
      route t slot ~time:t.time.(slot) ~sq:t.seq.(slot))
    !stack

exception Narrowed

(* Establish the cached minimum: exact (time, seq) min of the first
   occupied bucket's chain (predecessor recorded for O(1) unlink) against
   the heap top.  Raises [Narrowed] after an in-place rebuild; the caller
   retries. *)
let find_min t =
  if not t.cm_valid then begin
    let wb = next_occupied t (t.floor_ab land nb_mask) in
    let wslot = ref (-1) and wprev = ref (-1) in
    (if wb >= 0 then begin
       let chain_len = ref 0 in
       let prev = ref (-1) in
       let s = ref t.buckets.(wb) in
       let best = ref (-1) and best_prev = ref (-1) in
       while !s >= 0 do
         incr chain_len;
         (if
            !best < 0
            || t.time.(!s) < t.time.(!best)
            || (t.time.(!s) = t.time.(!best) && t.seq.(!s) < t.seq.(!best))
          then begin
            best := !s;
            best_prev := !prev
          end);
         prev := !s;
         s := t.bnext.(!s)
       done;
       if !chain_len > chain_limit && t.bw_inv < max_bw_inv then begin
         rebuild_narrower t;
         raise Narrowed
       end;
       wslot := !best;
       wprev := !best_prev
     end);
    let ws = !wslot in
    let pick_wheel =
      ws >= 0
      && (t.hsize = 0
         || t.time.(ws) < t.h_time.(0)
         || (t.time.(ws) = t.h_time.(0) && t.seq.(ws) < t.h_seq.(0)))
    in
    if pick_wheel then begin
      t.cm_slot <- ws;
      t.cm_wheel <- true;
      t.cm_prev <- !wprev;
      t.cm_bucket <- wb
    end
    else begin
      t.cm_slot <- t.heap.(0);
      t.cm_wheel <- false
    end;
    t.cm_valid <- true
  end

let rec find_min_retry t =
  try find_min t with Narrowed -> find_min_retry t

let release t slot =
  t.hpos.(slot) <- -1;
  t.arg.(slot) <- t.free;
  t.free <- slot

let flush_pending t =
  if t.pending >= 0 then begin
    release t t.pending;
    t.pending <- -1
  end

let add t ~time ~kind ~arg =
  flush_pending t;
  if t.free = -1 then grow t;
  let slot = t.free in
  t.free <- t.arg.(slot);
  let sq = t.next_seq in
  t.next_seq <- sq + 1;
  t.time.(slot) <- time;
  t.seq.(slot) <- sq;
  t.kind.(slot) <- kind;
  t.arg.(slot) <- arg;
  route t slot ~time ~sq;
  slot

let time_of t slot = t.time.(slot)
let seq_of t slot = t.seq.(slot)
let kind_of t slot = t.kind.(slot)
let arg_of t slot = t.arg.(slot)
let mem t slot = slot >= 0 && slot < Array.length t.hpos && t.hpos.(slot) <> -1

let peek_time t =
  if is_empty t then infinity
  else begin
    find_min_retry t;
    t.time.(t.cm_slot)
  end

let pop t =
  flush_pending t;
  if is_empty t then -1
  else begin
    find_min_retry t;
    let slot = t.cm_slot in
    (if t.cm_wheel then begin
       wheel_unlink t slot ~bucket:t.cm_bucket ~prev:t.cm_prev;
       (* The popped entry held the minimal live bucket number, so the
          frontier advances to it; entries sharing the bucket keep
          [ab >= floor_ab]. *)
       t.floor_ab <- int_of_float (t.time.(slot) *. t.bw_inv)
     end
     else heap_remove_at t t.hpos.(slot));
    t.last_pop <- t.time.(slot);
    t.cm_valid <- false;
    (* Field reads stay valid until the next [add] or [pop]: recycling is
       deferred because the free list lives in [arg]. *)
    t.hpos.(slot) <- -1;
    t.pending <- slot;
    slot
  end

let cancel t slot =
  if not (mem t slot) then false
  else begin
    (if t.hpos.(slot) = -2 then begin
       (* Wheel entry: walk its chain for the predecessor, then unlink. *)
       let b = int_of_float (t.time.(slot) *. t.bw_inv) land nb_mask in
       let prev = ref (-1) in
       let s = ref t.buckets.(b) in
       while !s <> slot do
         prev := !s;
         s := t.bnext.(!s)
       done;
       wheel_unlink t slot ~bucket:b ~prev:!prev
     end
     else heap_remove_at t t.hpos.(slot));
    t.cm_valid <- false;
    release t slot;
    true
  end

let clear t =
  for i = 0 to t.hsize - 1 do
    release t t.heap.(i)
  done;
  t.hsize <- 0;
  for b = 0 to nb - 1 do
    let s = ref t.buckets.(b) in
    while !s >= 0 do
      let nxt = t.bnext.(!s) in
      t.bnext.(!s) <- -1;
      release t !s;
      s := nxt
    done;
    t.buckets.(b) <- -1
  done;
  Array.fill t.bits 0 bits_len 0;
  Array.fill t.summary 0 summary_len 0;
  t.wcount <- 0;
  t.cm_valid <- false

let to_sorted_list t =
  let out = ref [] in
  for i = 0 to t.hsize - 1 do
    let s = t.heap.(i) in
    out := (t.time.(s), t.seq.(s), t.kind.(s), t.arg.(s)) :: !out
  done;
  for b = 0 to nb - 1 do
    let s = ref t.buckets.(b) in
    while !s >= 0 do
      out := (t.time.(!s), t.seq.(!s), t.kind.(!s), t.arg.(!s)) :: !out;
      s := t.bnext.(!s)
    done
  done;
  List.sort
    (fun (ta, sa, _, _) (tb, sb, _, _) ->
      let c = Float.compare ta tb in
      if c <> 0 then c else Int.compare sa sb)
    !out

let capacity t = Array.length t.time
