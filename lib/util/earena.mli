(** Flat int-indexed event arena: the discrete-event scheduler's queue.

    Struct-of-arrays storage: each {e slot} carries
    [(time, seq, kind, arg)] where [seq] is an internal monotonic
    insertion counter, so entries are ordered by [(time, seq)] — ties at
    one instant resolve in insertion order, the invariant every
    deterministic replay in this repository rests on.

    Internally a timing wheel fronts an overflow 4-ary min-heap: events
    landing inside the wheel's moving window hash to a bucket in O(1)
    and the next event is found by a bitmap scan from the frontier;
    everything else (far future, huge or negative times) takes the
    O(log n) heap.  The wheel narrows its bucket width adaptively when
    chains pile up, so ordering stays {e exact} — the wheel is an index,
    never an approximation.

    [kind]/[arg] are opaque ints owned by the caller (the simulator's
    event-kind table).  Slots are recycled through a free list, so a
    simulation in steady state pushes and pops events without allocating;
    [cancel] is a true removal on both paths (bucket unlink or heap
    delete via a slot → position map). *)

type t

val create : ?initial:int -> unit -> t
(** Empty arena; [initial] (default 64) is the starting slot capacity. *)

val length : t -> int
val is_empty : t -> bool

val add : t -> time:float -> kind:int -> arg:int -> int
(** Insert an event and return its slot id (valid until popped or
    cancelled).  The entry is sequenced after every earlier [add]. *)

val pop : t -> int
(** Remove and return the slot id of the earliest event, or [-1] when
    empty.  The popped slot's fields ({!time_of}, {!kind_of}, {!arg_of},
    {!seq_of}) remain readable {b until the next [add] or [pop]} — the
    slot is recycled lazily (the free list is threaded through the arg
    field). *)

val peek_time : t -> float
(** Time of the earliest event; [infinity] when empty (no option
    allocation on the hot path). *)

val cancel : t -> int -> bool
(** Remove the event in the given slot, if still queued.  Returns
    whether anything was removed; stale slot ids are safely refused. *)

val time_of : t -> int -> float
val seq_of : t -> int -> int
val kind_of : t -> int -> int
val arg_of : t -> int -> int

val mem : t -> int -> bool
(** Whether the slot currently holds a queued event. *)

val clear : t -> unit

val to_sorted_list : t -> (float * int * int * int) list
(** Snapshot [(time, seq, kind, arg)] in ascending [(time, seq)] order
    (test/debug helper; allocates). *)

val capacity : t -> int
(** Current slot capacity (sizing diagnostics). *)
