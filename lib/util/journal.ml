(* Append-only JSONL journal with fsync'd writes and a
   corruption-tolerant loader — the write-ahead log under the campaign
   daemon's crash recovery (Core.Serve), generic enough for any
   "replay my state after a kill -9" consumer.

   Durability contract: [append] writes one complete minified line
   (value + '\n') with a single [Unix.write] and then fsyncs, so after a
   crash the file is always a sequence of complete lines followed by at
   most one partial line (the append that was in flight).  [load] drops
   that partial tail (and any mid-file garbage line) without failing:
   recovery always sees a prefix-consistent subset of what was
   appended. *)

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : bool;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let meta_entry () = Json.Obj (("type", Json.String "meta") :: Stamp.fields ())

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let line j = Json.to_string ~minify:true j ^ "\n"

let append t j =
  write_all t.fd (line j);
  if t.fsync then Unix.fsync t.fd

let append_open ?(fsync = true) path =
  mkdir_p (Filename.dirname path);
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let t = { path; fd; fsync } in
  (* A fresh (empty) journal opens with a schema-stamped meta line so
     replaying code can detect foreign builds. *)
  if Unix.lseek fd 0 Unix.SEEK_END = 0 then append t (meta_entry ());
  t

let path t = t.path
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type loaded = {
  entries : Json.t list;
  dropped_lines : int;
  dropped_bytes : int;
}

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> { entries = []; dropped_lines = 0; dropped_bytes = 0 }
  | contents ->
      let n = String.length contents in
      let entries = ref [] and dropped_lines = ref 0 in
      let rec go start =
        if start >= n then 0
        else
          match String.index_from_opt contents start '\n' with
          | None -> n - start (* partial tail: the append a crash cut short *)
          | Some nl ->
              let l = String.sub contents start (nl - start) in
              (if String.trim l <> "" then
                 match Json.of_string l with
                 | Ok j -> entries := j :: !entries
                 | Error _ -> incr dropped_lines);
              go (nl + 1)
      in
      let dropped_bytes = go 0 in
      { entries = List.rev !entries; dropped_lines = !dropped_lines; dropped_bytes }

let rewrite path entries =
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (String.concat "" (List.map line (meta_entry () :: entries)));
  Unix.fsync fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Sys.rename tmp path
