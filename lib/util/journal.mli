(** Append-only JSONL journal with fsync'd writes and a
    corruption-tolerant loader — the write-ahead log behind the campaign
    daemon's crash recovery (DESIGN.md §13).

    Durability contract: {!append} writes one complete minified line
    with a single [write(2)] and then [fsync]s, so after a crash the
    file is a sequence of complete lines followed by at most one partial
    line.  {!load} drops that partial tail — and skips any mid-file
    garbage line — without failing, so recovery always sees a
    prefix-consistent subset of what was appended (qcheck-pinned in
    [test/test_util.ml] and [test/test_job.ml]). *)

type t

val append_open : ?fsync:bool -> string -> t
(** Open for appending (creating the file and parent directories if
    needed).  A fresh journal starts with a schema-stamped meta line
    [{"type":"meta","schema_version":..,"code_fingerprint":..}].
    [fsync] (default [true]) syncs after every append — turn it off only
    in tests that fabricate journals in bulk. *)

val append : t -> Json.t -> unit
(** Write one value as a minified line and fsync. *)

val path : t -> string
val close : t -> unit

type loaded = {
  entries : Json.t list;  (** complete, parseable lines, meta included *)
  dropped_lines : int;  (** complete lines that failed to parse (garbage) *)
  dropped_bytes : int;  (** trailing bytes of a partial last line *)
}

val load : string -> loaded
(** Read a journal back; a missing file loads as empty.  Never raises on
    truncated or corrupt content. *)

val rewrite : string -> Json.t list -> unit
(** Atomically replace the journal (tmp + fsync + rename) with a fresh
    meta line followed by [entries] — startup compaction, so replayed
    history does not grow the file across restarts. *)

val meta_entry : unit -> Json.t
(** The stamped meta line (exposed for tests). *)
