type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips, always containing
   a '.' or exponent so the value reads back as a float. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let shortest =
      let s15 = Printf.sprintf "%.15g" f in
      if float_of_string s15 = f then s15
      else
        let s16 = Printf.sprintf "%.16g" f in
        if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') shortest then shortest
    else shortest ^ ".0"

let add buf ~minify v =
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) item)
          items;
        nl indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if minify then "\":" else "\": ");
            go (indent + 2) item)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  add buf ~minify v;
  Buffer.contents buf

let to_channel ?(minify = false) oc v =
  let buf = Buffer.create 256 in
  add buf ~minify v;
  Buffer.output_buffer oc buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* Encode a decoded \uXXXX codepoint as UTF-8 bytes. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              add_utf8 buf cp;
              loop ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer overflow: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false
