type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips, always containing
   a '.' or exponent so the value reads back as a float. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let shortest =
      let s15 = Printf.sprintf "%.15g" f in
      if float_of_string s15 = f then s15
      else
        let s16 = Printf.sprintf "%.16g" f in
        if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') shortest then shortest
    else shortest ^ ".0"

let add buf ~minify v =
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) item)
          items;
        nl indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if minify then "\":" else "\": ");
            go (indent + 2) item)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  add buf ~minify v;
  Buffer.contents buf

let to_channel ?(minify = false) oc v =
  let buf = Buffer.create 256 in
  add buf ~minify v;
  Buffer.output_buffer oc buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type error = { offset : int; message : string; incomplete : bool }

let error_to_string e =
  Printf.sprintf "%s at offset %d%s" e.message e.offset
    (if e.incomplete then " (incomplete input)" else "")

exception Err of error

(* Parse one JSON value starting at [pos]; returns the value and the
   offset one past it.  Failures caused by running out of bytes (rather
   than by malformed bytes) are flagged [incomplete] so a streaming
   caller can distinguish "feed me more" from a hard error. *)
let parse_prefix ?(pos = 0) s =
  let len = String.length s in
  let pos = ref pos in
  let fail ?(incomplete = false) msg =
    raise (Err { offset = !pos; message = msg; incomplete })
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some _ -> fail (Printf.sprintf "expected %C" c)
    | None -> fail ~incomplete:true (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let wlen = String.length word in
    if !pos + wlen <= len && String.sub s !pos wlen = word then begin
      pos := !pos + wlen;
      v
    end
    else if
      (* The bytes present agree with the literal but the buffer ends
         before it does: incomplete, not malformed. *)
      !pos + wlen > len
      && String.sub s !pos (len - !pos) = String.sub word 0 (len - !pos)
    then fail ~incomplete:true (Printf.sprintf "expected %s" word)
    else fail (Printf.sprintf "expected %s" word)
  in
  (* Encode a decoded \uXXXX codepoint as UTF-8 bytes. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail ~incomplete:true "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail ~incomplete:true "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              add_utf8 buf cp;
              loop ()
          | None -> fail ~incomplete:true "bad escape"
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer overflow: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail ~incomplete:true "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match parse_value () with
  | v -> Ok (v, !pos)
  | exception Err e -> Error e

let ws_only s ~from ~until =
  let ok = ref true in
  for i = from to until - 1 do
    match s.[i] with ' ' | '\t' | '\n' | '\r' -> () | _ -> ok := false
  done;
  !ok

let of_string s =
  match parse_prefix s with
  | Error e -> Error (error_to_string e)
  | Ok (v, stop) ->
      (* A bare number at the very end of a complete document is a
         complete number; only a streaming caller must treat it as
         possibly-unfinished (the NDJSON decoder frames on newlines, so
         it never faces the ambiguity). *)
      let len = String.length s in
      let rec skip i =
        if i < len && (match s.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
        then skip (i + 1)
        else i
      in
      let stop = skip stop in
      if stop <> len then
        Error
          (error_to_string
             { offset = stop; message = "trailing garbage"; incomplete = false })
      else Ok v

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Incremental NDJSON decoding                                         *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  type decoder = {
    mutable data : string;  (** bytes fed but not yet consumed *)
    mutable start : int;  (** cursor into [data] *)
    mutable consumed : int;  (** absolute offset of [data.[start]] *)
  }

  let decoder () = { data = ""; start = 0; consumed = 0 }

  let feed d chunk =
    if chunk <> "" then
      if d.start = 0 then d.data <- d.data ^ chunk
      else begin
        (* Compact: drop consumed bytes before appending. *)
        d.data <- String.sub d.data d.start (String.length d.data - d.start) ^ chunk;
        d.start <- 0
      end

  let consumed d = d.consumed
  let pending d = String.length d.data - d.start

  let take_line d =
    match String.index_from_opt d.data d.start '\n' with
    | None -> None
    | Some nl ->
        let line = String.sub d.data d.start (nl - d.start) in
        let line_off = d.consumed in
        d.consumed <- d.consumed + (nl - d.start) + 1;
        d.start <- nl + 1;
        Some (line, line_off)

  let rec next d =
    match take_line d with
    | None -> `Await
    | Some (line, line_off) ->
        if ws_only line ~from:0 ~until:(String.length line) then next d
        else begin
          match parse_prefix line with
          | Error e -> `Error { e with offset = line_off + e.offset }
          | Ok (v, stop) ->
              if ws_only line ~from:stop ~until:(String.length line) then `Value v
              else
                `Error
                  {
                    offset = line_off + stop;
                    message = "trailing garbage on frame";
                    incomplete = false;
                  }
        end
end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false
