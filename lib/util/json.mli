(** Minimal dependency-free JSON, for the benchmark/campaign artifacts
    ([_results/BENCH_<exp>.json], [_results/failures.json]).

    The writer emits strict RFC-8259 JSON: strings are escaped, floats
    are printed in shortest round-trip form (never ["3."], which OCaml's
    [Float.to_string] would produce), and non-finite floats become
    [null] (JSON has no representation for them).  The reader is a small
    recursive-descent parser — enough to read our own artifacts back
    (trend comparison, tests), not a general validator. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Writing} *)

val to_string : ?minify:bool -> t -> string
(** Render; 2-space indentation unless [minify] (default [false]). *)

val to_channel : ?minify:bool -> out_channel -> t -> unit

val write_file : string -> t -> unit
(** Write the value (pretty, with a trailing newline) to the given
    path, truncating any existing file. *)

val escape : string -> string
(** The writer's string escaping, without the surrounding quotes
    (exposed for tests). *)

(** {1 Reading} *)

type error = {
  offset : int;  (** byte offset of the failure (absolute for {!Stream}) *)
  message : string;
  incomplete : bool;
      (** [true] when the failure is "ran out of bytes mid-value" rather
          than malformed input — a streaming caller should feed more *)
}

val error_to_string : error -> string

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] carries an offset. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

val parse_prefix : ?pos:int -> string -> (t * int, error) result
(** Parse one JSON value starting at [pos] (default 0); on success
    returns the value and the offset one past it — trailing bytes are
    left for the caller.  Errors caused by the buffer ending mid-value
    are flagged [incomplete].  A number that runs to the end of the
    buffer is returned as complete (only a framing layer can know
    whether more digits follow; see {!Stream}). *)

(** Incremental newline-delimited JSON (the [fdkit serve] socket
    protocol): feed arbitrary chunks, pop one value per complete
    non-blank line.  Partial frames are held until their newline
    arrives; parse errors carry absolute byte offsets into the overall
    stream. *)
module Stream : sig
  type decoder

  val decoder : unit -> decoder

  val feed : decoder -> string -> unit
  (** Append a chunk (any framing: split, coalesced, byte-at-a-time). *)

  val next : decoder -> [ `Value of t | `Await | `Error of error ]
  (** Pop the next complete frame. [`Await] = no complete line buffered.
      After [`Error] the bad frame has been consumed; decoding can
      continue with the next line. *)

  val consumed : decoder -> int
  (** Absolute byte offset of the decode cursor. *)

  val pending : decoder -> int
  (** Bytes buffered but not yet consumed (a partial frame). *)
end

(** {1 Accessors (for reading artifacts back)} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val equal : t -> t -> bool
(** Structural equality, with [Int i] and [Float f] distinct. *)
