(** Minimal dependency-free JSON, for the benchmark/campaign artifacts
    ([_results/BENCH_<exp>.json], [_results/failures.json]).

    The writer emits strict RFC-8259 JSON: strings are escaped, floats
    are printed in shortest round-trip form (never ["3."], which OCaml's
    [Float.to_string] would produce), and non-finite floats become
    [null] (JSON has no representation for them).  The reader is a small
    recursive-descent parser — enough to read our own artifacts back
    (trend comparison, tests), not a general validator. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Writing} *)

val to_string : ?minify:bool -> t -> string
(** Render; 2-space indentation unless [minify] (default [false]). *)

val to_channel : ?minify:bool -> out_channel -> t -> unit

val write_file : string -> t -> unit
(** Write the value (pretty, with a trailing newline) to the given
    path, truncating any existing file. *)

val escape : string -> string
(** The writer's string escaping, without the surrounding quotes
    (exposed for tests). *)

(** {1 Reading} *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] carries an offset. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

(** {1 Accessors (for reading artifacts back)} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val equal : t -> t -> bool
(** Structural equality, with [Int i] and [Float f] distinct. *)
