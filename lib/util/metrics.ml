type hist = {
  bounds : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float; (* +inf when empty *)
  mutable h_max : float; (* -inf when empty *)
}

type value = Counter of int ref | Gauge of float ref | Hist of hist
type t = { items : (string, value) Hashtbl.t }

let default_bounds =
  (* 1-2-5 per decade, 1e-3 .. 1e6 *)
  let decades = [ 1e-3; 1e-2; 1e-1; 1.; 1e1; 1e2; 1e3; 1e4; 1e5; 1e6 ] in
  Array.of_list
    (List.concat_map (fun d -> [ 1. *. d; 2. *. d; 5. *. d ]) decades)

let hist_create ?(bounds = default_bounds) () =
  let ok = ref (Array.length bounds > 0) in
  for i = 0 to Array.length bounds - 2 do
    if not (bounds.(i) < bounds.(i + 1)) then ok := false
  done;
  if not !ok then
    invalid_arg "Metrics.hist_create: bounds must be strictly increasing";
  {
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0.;
    h_min = infinity;
    h_max = neg_infinity;
  }

(* First bucket whose upper bound is >= v; overflow bucket otherwise. *)
let bucket_of h v =
  let n = Array.length h.bounds in
  if v > h.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let hist_record h v =
  let i = bucket_of h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_min h = if h.h_count = 0 then None else Some h.h_min
let hist_max h = if h.h_count = 0 then None else Some h.h_max

let hist_percentile h p =
  if h.h_count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int h.h_count)) in
      max 1 (min h.h_count r)
    in
    let n = Array.length h.counts in
    let i = ref 0 and cum = ref h.counts.(0) in
    while !cum < rank && !i < n - 1 do
      incr i;
      cum := !cum + h.counts.(!i)
    done;
    let est =
      if !i >= Array.length h.bounds then h.h_max else h.bounds.(!i)
    in
    (* the estimate can't leave the observed range *)
    Float.max h.h_min (Float.min h.h_max est)
  end

let hist_merge a b =
  if a.bounds <> b.bounds then
    invalid_arg "Metrics.hist_merge: incompatible bounds";
  let h =
    {
      bounds = Array.copy a.bounds;
      counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
      h_count = a.h_count + b.h_count;
      h_sum = a.h_sum +. b.h_sum;
      h_min = Float.min a.h_min b.h_min;
      h_max = Float.max a.h_max b.h_max;
    }
  in
  h

let hist_equal a b =
  a.bounds = b.bounds && a.counts = b.counts && a.h_count = b.h_count
  && a.h_sum = b.h_sum
  && (a.h_count = 0 || (a.h_min = b.h_min && a.h_max = b.h_max))

let hist_copy h =
  {
    bounds = Array.copy h.bounds;
    counts = Array.copy h.counts;
    h_count = h.h_count;
    h_sum = h.h_sum;
    h_min = h.h_min;
    h_max = h.h_max;
  }

let hist_json h =
  let buckets =
    let out = ref [] in
    for i = Array.length h.counts - 1 downto 0 do
      if h.counts.(i) > 0 then
        out :=
          Json.Obj
            [
              ( "le",
                if i < Array.length h.bounds then Json.Float h.bounds.(i)
                else Json.Null );
              ("n", Json.Int h.counts.(i));
            ]
          :: !out
    done;
    !out
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", if h.h_count = 0 then Json.Null else Json.Float h.h_min);
      ("max", if h.h_count = 0 then Json.Null else Json.Float h.h_max);
      ("p50", Json.Float (hist_percentile h 0.50));
      ("p90", Json.Float (hist_percentile h 0.90));
      ("p95", Json.Float (hist_percentile h 0.95));
      ("p99", Json.Float (hist_percentile h 0.99));
      ("buckets", Json.List buckets);
    ]

let create () = { items = Hashtbl.create 32 }

(* Pre-registered handles: the string name is hashed once, at registration;
   every bump/observe after that is a direct ref/array update.  Handles
   alias the named instrument, so exports, merge laws and [-j1 ≡ -jN]
   artifacts see exactly the registry they always did. *)

type counter_handle = int ref
type hist_handle = hist

let counter_handle t name =
  match Hashtbl.find_opt t.items name with
  | Some (Counter r) -> r
  | Some _ -> invalid_arg ("Metrics.counter_handle: " ^ name ^ " is not a counter")
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.items name (Counter r);
      r

let bump ?(by = 1) (h : counter_handle) = h := !h + by

let hist_handle t ?bounds name =
  match Hashtbl.find_opt t.items name with
  | Some (Hist h) -> h
  | Some _ -> invalid_arg ("Metrics.hist_handle: " ^ name ^ " is not a histogram")
  | None ->
      let h = hist_create ?bounds () in
      Hashtbl.replace t.items name (Hist h);
      h

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.items name with
  | Some (Counter r) -> r := !r + by
  | Some _ -> invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")
  | None -> Hashtbl.replace t.items name (Counter (ref by))

let counter t name =
  match Hashtbl.find_opt t.items name with
  | Some (Counter r) -> !r
  | _ -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.items name with
  | Some (Gauge r) -> r := v
  | Some _ -> invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")
  | None -> Hashtbl.replace t.items name (Gauge (ref v))

let gauge t name =
  match Hashtbl.find_opt t.items name with
  | Some (Gauge r) -> Some !r
  | _ -> None

let observe t ?bounds name v =
  match Hashtbl.find_opt t.items name with
  | Some (Hist h) -> hist_record h v
  | Some _ -> invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")
  | None ->
      let h = hist_create ?bounds () in
      hist_record h v;
      Hashtbl.replace t.items name (Hist h)

let hist t name =
  match Hashtbl.find_opt t.items name with
  | Some (Hist h) -> Some h
  | _ -> None

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.items []
  |> List.sort String.compare

(* Sorted, not Hashtbl fold order: exports and debug dumps must be
   deterministic without every caller re-sorting. *)
let keys = names

let merge a b =
  let out = create () in
  let copy_into name v =
    let v' =
      match v with
      | Counter r -> Counter (ref !r)
      | Gauge r -> Gauge (ref !r)
      | Hist h -> Hist (hist_copy h)
    in
    Hashtbl.replace out.items name v'
  in
  Hashtbl.iter copy_into a.items;
  Hashtbl.iter
    (fun name v ->
      match (Hashtbl.find_opt out.items name, v) with
      | None, _ -> copy_into name v
      | Some (Counter r), Counter r' -> r := !r + !r'
      | Some (Gauge r), Gauge r' -> r := Float.max !r !r'
      | Some (Hist h), Hist h' -> Hashtbl.replace out.items name (Hist (hist_merge h h'))
      | Some _, _ ->
          invalid_arg ("Metrics.merge: instrument kind mismatch for " ^ name))
    b.items;
  out

(* Snapshot/delta encoding: [snapshot] freezes a registry, [delta]
   renders what happened since.  The contract mirrors [merge]:

     merge base (delta ~base cur)  ==  cur

   for counters and histogram counts whenever [base] is an earlier
   snapshot of [cur] (every instrument monotone in between).  Gauges
   carry the current value — under the max-merge law the round trip
   holds for monotone gauges.  This is what lets telemetry publish
   cheap incremental frames whose concatenation replays to the final
   registry. *)

let snapshot t = merge t (create ())

let hist_delta ~base cur =
  if base.bounds <> cur.bounds then
    invalid_arg "Metrics.delta: incompatible bounds";
  let d_count = cur.h_count - base.h_count in
  {
    bounds = Array.copy cur.bounds;
    counts = Array.mapi (fun i c -> c - base.counts.(i)) cur.counts;
    h_count = d_count;
    (* An empty delta must be a merge identity (+inf/-inf sentinels); a
       non-empty one reuses the cumulative extrema, which the min/max
       merge law absorbs exactly when [cur] extends [base]. *)
    h_sum = cur.h_sum -. base.h_sum;
    h_min = (if d_count = 0 then infinity else cur.h_min);
    h_max = (if d_count = 0 then neg_infinity else cur.h_max);
  }

let delta ~base cur =
  let out = create () in
  Hashtbl.iter
    (fun name v ->
      let v' =
        match (v, Hashtbl.find_opt base.items name) with
        | Counter r, Some (Counter r0) -> Counter (ref (!r - !r0))
        | Counter r, None -> Counter (ref !r)
        | Gauge r, (Some (Gauge _) | None) -> Gauge (ref !r)
        | Hist h, Some (Hist h0) -> Hist (hist_delta ~base:h0 h)
        | Hist h, None -> Hist (hist_copy h)
        | _, Some _ ->
            invalid_arg ("Metrics.delta: instrument kind mismatch for " ^ name)
      in
      Hashtbl.replace out.items name v')
    cur.items;
  out

let to_json t =
  Json.Obj
    (List.map
       (fun name ->
         ( name,
           match Hashtbl.find t.items name with
           | Counter r -> Json.Int !r
           | Gauge r -> Json.Float !r
           | Hist h -> hist_json h ))
       (names t))
