(** Metrics registry: counters, gauges, and fixed-bucket histograms.

    Everything records in O(1) (histograms via binary search over a
    fixed bound array) and merges associatively/commutatively, so the
    campaign engine can fold per-job registries in canonical job order
    and get identical aggregates for [-j1] and [-jN]:

    - counters merge by addition;
    - gauges merge by [max] (order-insensitive, used for high-water
      marks);
    - histograms merge bucket-wise (same bounds required).

    No wall-clock anywhere: callers decide what a sample means
    (sim-time, a count, a ratio).  JSON rendering goes through
    [Util.Json] and is byte-stable. *)

type t
type hist

(** {1 Registry} *)

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use).  [by] defaults to 1. *)

val counter : t -> string -> int
(** Current counter value; 0 when absent. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge.  Merging keeps the max, so use gauges for
    high-water-mark style readings. *)

val gauge : t -> string -> float option

val observe : t -> ?bounds:float array -> string -> float -> unit
(** Record a sample into the named histogram, creating it with
    [bounds] (default {!default_bounds}) on first use.  [bounds]
    is ignored on later calls. *)

val hist : t -> string -> hist option

val names : t -> string list
(** All registered instrument names, sorted. *)

val keys : t -> string list
(** Alias of {!names}: sorted instrument names, {e never} raw Hashtbl
    fold order — exports and debug dumps stay deterministic without
    callers re-sorting. *)

(** {1 Pre-registered handles (hot paths)}

    A handle resolves the instrument name once; bumps through it are a
    single O(1) update with no hashing.  Handles alias the named
    instrument in the registry, so {!merge}, {!names} and {!to_json}
    are oblivious to how an instrument was updated — merge laws and
    byte-identical [-j1 ≡ -jN] artifacts hold unchanged. *)

type counter_handle

val counter_handle : t -> string -> counter_handle
(** Register (or look up) the named counter and return its handle.
    @raise Invalid_argument if the name is bound to another kind. *)

val bump : ?by:int -> counter_handle -> unit
(** O(1) counter bump; [by] defaults to 1. *)

type hist_handle = hist

val hist_handle : t -> ?bounds:float array -> string -> hist_handle
(** Register (or look up) the named histogram; record through it with
    {!hist_record}.  [bounds] applies only on first registration.
    @raise Invalid_argument if the name is bound to another kind. *)

val merge : t -> t -> t
(** Pointwise merge (see above); inputs are not mutated.
    @raise Invalid_argument when the same name maps to different
    instrument kinds or histograms with different bounds. *)

val to_json : t -> Json.t
(** Object keyed by sorted instrument name: counters render as [Int],
    gauges as [Float], histograms via {!hist_json}. *)

(** {1 Snapshot/delta encoding (live telemetry)}

    [snapshot] freezes a registry; [delta ~base cur] encodes what
    happened since, such that

    {[ merge base (delta ~base cur) == cur ]}

    exactly for counters and histogram bucket counts whenever [base] is
    an earlier snapshot of [cur] (all instruments monotone in between);
    gauges carry the current reading, which the max-merge law absorbs
    for monotone gauges.  Telemetry publishers snapshot on each tick
    and ship only the delta; subscribers replay by folding [merge]. *)

val snapshot : t -> t
(** Deep copy; later updates to the source do not affect it. *)

val delta : base:t -> t -> t
(** [delta ~base cur]: per instrument of [cur], counters subtract,
    histogram buckets/counts/sums subtract (extrema are carried from
    [cur], or the merge-identity sentinels when the delta is empty),
    gauges carry [cur]'s value.  Instruments absent from [base] are
    copied whole.
    @raise Invalid_argument on instrument-kind or bound mismatches. *)

(** {1 Histograms} *)

val default_bounds : float array
(** 1–2–5 series upper bounds spanning 1e-3 … 1e6 (30 buckets plus
    overflow): coarse but monotone, fits round counts, message counts
    and sim-time latencies alike. *)

val hist_create : ?bounds:float array -> unit -> hist
(** [bounds] must be strictly increasing.
    @raise Invalid_argument otherwise. *)

val hist_record : hist -> float -> unit

val hist_count : hist -> int
val hist_sum : hist -> float

val hist_min : hist -> float option
(** Smallest recorded sample ([None] when empty); exact, not
    bucket-quantized.  Same for {!hist_max}. *)

val hist_max : hist -> float option

val hist_percentile : hist -> float -> float
(** Nearest-rank percentile estimated from bucket upper bounds, clamped
    to the exact [min]/[max]; [p] in [0,1].  0 on an empty histogram. *)

val hist_merge : hist -> hist -> hist
(** @raise Invalid_argument on differing bounds. *)

val hist_equal : hist -> hist -> bool

val hist_json : hist -> Json.t
(** [{count, sum, min, max, p50, p90, p95, p99, buckets}] with
    [buckets] a list of [{le, n}] (overflow bucket has [le: null]);
    empty buckets are omitted to keep artifacts small. *)
