type t = int

let pp fmt p = Format.fprintf fmt "p%d" (p + 1)
let to_string p = Printf.sprintf "p%d" (p + 1)
let compare = Int.compare
let equal = Int.equal
let all ~n = List.init n (fun i -> i)
