(** Process identities.

    The paper's system is [Pi = {p_1, ..., p_n}]; we identify process [p_i]
    with the integer [i - 1], i.e. pids are [0 .. n-1].  Keeping pids as a
    private alias of [int] lets them index arrays directly while the [.mli]
    documents intent. *)

type t = int
(** A process identity in [0 .. n-1]. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt p] prints ["p3"] style identities (1-based, as in the paper). *)

val to_string : t -> string

val compare : t -> t -> int

val equal : t -> t -> bool

val all : n:int -> t list
(** [all ~n] is [[0; 1; ...; n-1]]. *)
