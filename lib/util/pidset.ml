type t = int

let max_size = Sys.int_size - 1
let empty = 0
let is_empty s = s = 0

let full ~n =
  assert (n >= 0 && n <= max_size);
  if n = 0 then 0 else (1 lsl n) - 1

let singleton p = 1 lsl p
let add p s = s lor (1 lsl p)
let remove p s = s land lnot (1 lsl p)
let mem p s = s land (1 lsl p) <> 0

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + 1) (s land (s - 1)) in
  go 0 s

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0
let equal (a : int) b = a = b
let compare = Int.compare
let of_list l = List.fold_left (fun s p -> add p s) empty l

(* Index of the lowest set bit of a non-zero word. *)
let lowest_bit s =
  let low = s land -s in
  let rec tz i v = if v land 1 = 1 then i else tz (i + 1) (v lsr 1) in
  tz 0 low

(* Folds in ascending pid order. *)
let fold f s init =
  let rec loop acc s =
    if s = 0 then acc
    else
      let p = lowest_bit s in
      loop (f p acc) (s land (s - 1))
  in
  loop init s

let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])
let elements = to_list
let iter f s = fold (fun p () -> f p) s ()
let for_all f s = fold (fun p acc -> acc && f p) s true
let exists f s = fold (fun p acc -> acc || f p) s false
let filter f s = fold (fun p acc -> if f p then add p acc else acc) s empty
let min_elt s = if s = 0 then raise Not_found else lowest_bit s
let min_elt_opt s = if s = 0 then None else Some (lowest_bit s)
let max_elt_opt s = fold (fun p _ -> Some p) s None
let choose_opt = min_elt_opt

let random rng ~n ~size =
  assert (size >= 0 && size <= n);
  (* Floyd's algorithm for a uniform size-subset of {0..n-1}. *)
  let s = ref empty in
  for j = n - size to n - 1 do
    let r = Rng.int rng (j + 1) in
    if mem r !s then s := add j !s else s := add r !s
  done;
  !s

let pp fmt s =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map Pid.to_string (to_list s)))

let to_string s = Format.asprintf "%a" pp s

let hash (s : t) = s
