(* Multi-word bitset: little-endian array of word-sized chunks, kept
   canonical (no trailing zero words) so that structural equality and the
   polymorphic order remain meaningful.  The single-word fast paths keep
   the n <= 62 regime (every paper-scale run) allocation-light, while the
   general case lifts the old hard cap so campaign sweeps can exercise
   n = 64, 128, ... processes. *)

type t = int array

let word = Sys.int_size - 1 (* usable bits per chunk; avoids sign games *)
let max_size = 1024

let empty = [||]
let is_empty s = Array.length s = 0

(* Canonicalize in place conceptually: return the prefix without trailing
   zero words (shares the array when already canonical). *)
let trim s =
  let len = Array.length s in
  let rec top i = if i >= 0 && s.(i) = 0 then top (i - 1) else i in
  let t = top (len - 1) in
  if t = len - 1 then s else Array.sub s 0 (t + 1)

let full ~n =
  assert (n >= 0 && n <= max_size);
  if n = 0 then empty
  else begin
    let words = ((n - 1) / word) + 1 in
    let s = Array.make words 0 in
    for i = 0 to words - 2 do
      s.(i) <- (1 lsl word) - 1
    done;
    let rem = n - ((words - 1) * word) in
    s.(words - 1) <- (1 lsl rem) - 1;
    s
  end

let singleton p =
  let i = p / word in
  let s = Array.make (i + 1) 0 in
  s.(i) <- 1 lsl (p mod word);
  s

let mem p s =
  let i = p / word in
  i < Array.length s && s.(i) land (1 lsl (p mod word)) <> 0

let add p s =
  let i = p / word in
  let len = Array.length s in
  if i < len then begin
    let b = 1 lsl (p mod word) in
    if s.(i) land b <> 0 then s
    else begin
      let s' = Array.copy s in
      s'.(i) <- s'.(i) lor b;
      s'
    end
  end
  else begin
    let s' = Array.make (i + 1) 0 in
    Array.blit s 0 s' 0 len;
    s'.(i) <- 1 lsl (p mod word);
    s'
  end

let remove p s =
  let i = p / word in
  if i >= Array.length s then s
  else begin
    let b = 1 lsl (p mod word) in
    if s.(i) land b = 0 then s
    else begin
      let s' = Array.copy s in
      s'.(i) <- s'.(i) land lnot b;
      trim s'
    end
  end

(* 16-bit-chunk table popcount: constant work per word regardless of how
   many bits are set (the bit-clearing loop was O(members), which made
   [cardinal] on large quorum sets a hot-path cost). *)
let pop16 =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v land (v - 1)) in
    Bytes.unsafe_set t i (Char.chr (go 0 i))
  done;
  t

let popcount x =
  let b i = Char.code (Bytes.unsafe_get pop16 ((x lsr i) land 0xffff)) in
  b 0 + b 16 + b 32 + b 48

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let long, short = if la >= lb then (a, b) else (b, a) in
    let s = Array.copy long in
    Array.iteri (fun i w -> s.(i) <- s.(i) lor w) short;
    s
  end

let inter a b =
  let l = min (Array.length a) (Array.length b) in
  if l = 0 then empty
  else trim (Array.init l (fun i -> a.(i) land b.(i)))

let diff a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then a
  else
    trim
      (Array.init la (fun i -> if i < lb then a.(i) land lnot b.(i) else a.(i)))

let subset a b =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let disjoint a b =
  let l = min (Array.length a) (Array.length b) in
  let rec go i = i >= l || (a.(i) land b.(i) = 0 && go (i + 1)) in
  go 0

let equal (a : t) b =
  a == b
  || (Array.length a = Array.length b
     &&
     let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
     go (Array.length a - 1))
let compare (a : t) b = Stdlib.compare a b
let of_list l = List.fold_left (fun s p -> add p s) empty l

(* Index of the lowest set bit of a non-zero word. *)
let lowest_bit w =
  let low = w land -w in
  let rec tz i v = if v land 1 = 1 then i else tz (i + 1) (v lsr 1) in
  tz 0 low

(* Folds in ascending pid order. *)
let fold f s init =
  let acc = ref init in
  Array.iteri
    (fun i w0 ->
      let w = ref w0 in
      while !w <> 0 do
        acc := f ((i * word) + lowest_bit !w) !acc;
        w := !w land (!w - 1)
      done)
    s;
  !acc

let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])
let elements = to_list
let iter f s = fold (fun p () -> f p) s ()
let for_all f s = fold (fun p acc -> acc && f p) s true
let exists f s = fold (fun p acc -> acc || f p) s false
let filter f s = fold (fun p acc -> if f p then add p acc else acc) s empty

let min_elt s =
  if is_empty s then raise Not_found
  else begin
    let rec go i = if s.(i) <> 0 then (i * word) + lowest_bit s.(i) else go (i + 1) in
    go 0
  end

let min_elt_opt s = if is_empty s then None else Some (min_elt s)
let max_elt_opt s = fold (fun p _ -> Some p) s None
let choose_opt = min_elt_opt

let random rng ~n ~size =
  assert (size >= 0 && size <= n);
  (* Floyd's algorithm for a uniform size-subset of {0..n-1}. *)
  let s = ref empty in
  for j = n - size to n - 1 do
    let r = Rng.int rng (j + 1) in
    if mem r !s then s := add j !s else s := add r !s
  done;
  !s

let pp fmt s =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map Pid.to_string (to_list s)))

let to_string s = Format.asprintf "%a" pp s

let hash (s : t) = Array.fold_left (fun h w -> (h * 1_000_003) lxor w) 0 s
