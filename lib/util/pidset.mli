(** Sets of process identities, backed by a multi-word bitset.

    All the paper's algorithms manipulate subsets of [Pi] (suspected sets,
    trusted sets, the query regions of [phi_y], the wheel sets [X], [Y],
    [L]).  Small universes (n up to one machine word) stay a single-chunk
    bitset with O(1) set operations; larger universes — the campaign
    engine sweeps n = 64, 128 processes — spill into further chunks.  The
    representation is canonical (no trailing zero chunks), so structural
    equality and a total order hold — which the wheel rings rely on. *)

type t
(** An immutable set of pids.  Structural equality and [compare] are
    meaningful (sets are canonical). *)

val max_size : int
(** Largest supported universe size (1024). *)

val empty : t

val is_empty : t -> bool

val full : n:int -> t
(** [full ~n] is [{0, ..., n-1}]. *)

val singleton : Pid.t -> t

val add : Pid.t -> t -> t

val remove : Pid.t -> t -> t

val mem : Pid.t -> t -> bool

val cardinal : t -> int

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order; on equal-cardinality sets of a fixed universe it coincides
    with neither lexicographic-on-elements nor colex in general — use
    {!Combi} for the ring orders.  It is only used for keys in maps. *)

val of_list : Pid.t list -> t

val to_list : t -> Pid.t list
(** Ascending order. *)

val elements : t -> Pid.t list
(** Alias of {!to_list}. *)

val iter : (Pid.t -> unit) -> t -> unit

val fold : (Pid.t -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (Pid.t -> bool) -> t -> bool

val exists : (Pid.t -> bool) -> t -> bool

val filter : (Pid.t -> bool) -> t -> t

val min_elt : t -> Pid.t
(** Smallest pid.  @raise Not_found on the empty set. *)

val min_elt_opt : t -> Pid.t option

val max_elt_opt : t -> Pid.t option

val choose_opt : t -> Pid.t option

val random : Rng.t -> n:int -> size:int -> t
(** [random rng ~n ~size] draws a uniformly random subset of [{0..n-1}] of
    cardinality [size]. *)

val pp : Format.formatter -> t -> unit
(** Prints [{p1,p4,p5}]. *)

val to_string : t -> string

val hash : t -> int
(** A hash usable as a deterministic noise-draw coordinate. *)
