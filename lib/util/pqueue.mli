(** Mutable binary-heap priority queue.

    Used by the discrete-event scheduler: elements are events, priorities are
    (virtual time, sequence number) pairs so that ties at the same instant
    are broken deterministically by insertion order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty queue ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the current contents in ascending [cmp] order — the
    order a pop-until-empty loop would produce (equal elements keep
    their heap-internal relative order, which is unspecified). *)
