module Lower = struct
  type t = { n : int; x : int; nb_x : int; cache : (int, Pidset.t) Hashtbl.t }

  let create ~n ~x =
    if x < 1 || x > n then invalid_arg "Ring.Lower.create";
    { n; x; nb_x = Combi.binomial n x; cache = Hashtbl.create 64 }

  let total t = t.nb_x * t.x

  let subset t k =
    match Hashtbl.find_opt t.cache k with
    | Some s -> s
    | None ->
        let s = Combi.unrank ~n:t.n ~size:t.x k in
        Hashtbl.add t.cache k s;
        s

  let decode t p =
    let p = p mod total t in
    let k = p / t.x and j = p mod t.x in
    let xset = subset t k in
    (List.nth (Pidset.to_list xset) j, xset)

  let start _ = 0
  let next t p = (p + 1) mod total t
end

module Upper = struct
  type t = {
    n : int;
    ysize : int;
    lsize : int;
    nb_y : int;
    nb_l : int;
    cache : (int, Pidset.t) Hashtbl.t;
  }

  let create ~n ~ysize ~lsize =
    if lsize < 1 || lsize > ysize || ysize > n then invalid_arg "Ring.Upper.create";
    {
      n;
      ysize;
      lsize;
      nb_y = Combi.binomial n ysize;
      nb_l = Combi.binomial ysize lsize;
      cache = Hashtbl.create 64;
    }

  let total t = t.nb_y * t.nb_l

  let yset t k =
    match Hashtbl.find_opt t.cache k with
    | Some s -> s
    | None ->
        let s = Combi.unrank ~n:t.n ~size:t.ysize k in
        Hashtbl.add t.cache k s;
        s

  let decode t p =
    let p = p mod total t in
    let k = p / t.nb_l and r = p mod t.nb_l in
    let y = yset t k in
    (Combi.unrank_in ~base:y ~size:t.lsize r, y)

  let start _ = 0
  let next t p = (p + 1) mod total t
end
