(** The logical rings scanned by the two wheels (paper Figure 4 and §4.2).

    Both wheels walk an infinite cyclic sequence known in advance by every
    process.  We represent a position as an integer in [0, total); the
    decoded pair is what the algorithms exchange in messages.

    {b Lower ring} (Figure 4): the sequence
    [l^1_1,...,l^1_x, l^2_1,...,l^2_x, ..., l^{nb_x}_x] pairing each element
    of each x-subset [X[k]] of [Pi] with its set.  Position [p] decodes to
    [(j-th element of X[k], X[k])] where [k = p / x], [j = p mod x].

    {b Upper ring} (§4.2): for each (t-y+1)-subset [Y[k]] of [Pi], all its
    z-subsets [L^k_1..L^k_{nb_L}]; position [p] decodes to
    [(L^k_r, Y[k])] with [k = p / nb_L], [r = p mod nb_L]. *)

module Lower : sig
  type t

  val create : n:int -> x:int -> t
  (** Ring of all x-subsets of [{0..n-1}], each unrolled element by element.
      Requires [1 <= x <= n]. *)

  val total : t -> int
  (** Ring length: [C(n,x) * x]. *)

  val decode : t -> int -> Pid.t * Pidset.t
  (** [decode t p] is the pair [(lx, X)] at position [p mod total]. *)

  val start : t -> int
  (** Initial position 0, i.e. the pair [(l^1_1, X[1])]. *)

  val next : t -> int -> int
  (** Successor position (wraps). *)
end

module Upper : sig
  type t

  val create : n:int -> ysize:int -> lsize:int -> t
  (** Ring of all [ysize]-subsets of [{0..n-1}], each unrolled into its
      [lsize]-subsets.  Requires [1 <= lsize <= ysize <= n]. *)

  val total : t -> int
  (** Ring length: [C(n,ysize) * C(ysize,lsize)]. *)

  val decode : t -> int -> Pidset.t * Pidset.t
  (** [decode t p] is the pair [(L, Y)] at position [p mod total]. *)

  val start : t -> int

  val next : t -> int -> int
end
