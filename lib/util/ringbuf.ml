(* Fixed-capacity overwrite-oldest ring buffer.  Not to be confused with
   [Ring], the combinatorial wheels ring: this one is a plain bounded
   history buffer (QoS time-series, telemetry windows). *)

type 'a t = {
  data : 'a option array;
  cap : int;
  mutable next : int; (* write index *)
  mutable len : int; (* live elements, <= cap *)
  mutable dropped : int; (* overwritten since creation/clear *)
}

let create ~cap =
  if cap < 1 then invalid_arg "Ringbuf.create: cap must be >= 1";
  { data = Array.make cap None; cap; next = 0; len = 0; dropped = 0 }

let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped
let is_empty t = t.len = 0

let clear t =
  Array.fill t.data 0 t.cap None;
  t.next <- 0;
  t.len <- 0;
  t.dropped <- 0

let push t x =
  if t.len = t.cap then t.dropped <- t.dropped + 1;
  t.data.(t.next) <- Some x;
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1

(* Oldest live element sits [len] slots behind the write index. *)
let oldest_index t = (t.next - t.len + t.cap) mod t.cap

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ringbuf.get: index out of bounds";
  match t.data.((oldest_index t + i) mod t.cap) with
  | Some x -> x
  | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.init t.len (fun i -> get t i)

let newest t = if t.len = 0 then None else Some (get t (t.len - 1))
let peek_oldest t = if t.len = 0 then None else Some (get t 0)
