(** Fixed-capacity ring buffer that overwrites the oldest element when
    full — a bounded history window for time-series (QoS phi samples,
    telemetry snapshots).

    Distinct from {!Ring}, which is the combinatorial wheels ring of the
    protocol layer; this module is a plain container.  All operations
    are O(1) except the traversals. *)

type 'a t

val create : cap:int -> 'a t
(** [cap >= 1] or [Invalid_argument]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Live elements, [<= capacity]. *)

val dropped : 'a t -> int
(** Elements overwritten since creation (or the last {!clear}) — lets a
    consumer report "window covers the last [length] of
    [length + dropped] samples" instead of silently truncating. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append; overwrites (and counts) the oldest element when full. *)

val get : 'a t -> int -> 'a
(** [get t 0] is the oldest live element, [get t (length t - 1)] the
    newest; out of range raises [Invalid_argument]. *)

val newest : 'a t -> 'a option
val peek_oldest : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
