type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let hash_string s =
  (* FNV-1a, 64-bit. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let split_named t name = { state = mix64 (Int64.logxor t.state (hash_string name)) }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let uniform_in t lo hi = lo +. float t (hi -. lo)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
