(** Deterministic pseudo-random number generation (splitmix64).

    Every source of randomness in a simulation run — message delays, failure
    detector noise, crash schedules, workload generation — is derived from a
    single seed through this module, so a run is reproducible from its seed
    alone.  [split] derives statistically independent child generators, which
    keeps subsystems decoupled: adding one more draw in the delay model does
    not perturb the crash schedule. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val copy : t -> t

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    independent of [t]'s subsequent output. *)

val split_named : t -> string -> t
(** [split_named t name] derives a child keyed by [name]; unlike {!split} it
    does not depend on call order, only on the parent seed and [name]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [lo, hi). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation. *)
