(* Artifact stamping: every _results/*.json artifact carries the schema
   version and the code fingerprint that produced it, so stale artifacts
   are detectable (fdkit trace --check warns on mismatch) and the result
   cache can key on the same fingerprint.

   The fingerprint itself is computed by Setagree_core.Fingerprint (it
   knows the source layout); this module only holds the process-wide
   value so that layers below core (Runner, Export) can stamp their
   artifacts without a dependency cycle. *)

let schema_version = 1
let unstamped = "unstamped"
let fp = ref unstamped

let set_fingerprint s = fp := s
let fingerprint () = !fp
let is_stamped () = !fp <> unstamped

let fields () =
  [
    ("schema_version", Json.Int schema_version);
    ("code_fingerprint", Json.String !fp);
  ]
