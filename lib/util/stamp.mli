(** Artifact version stamp: schema version + code fingerprint.

    Every [_results/*.json] artifact (campaign artifacts, failure triage
    records, counterexamples, trace exports) embeds these two fields so
    a stale artifact — produced by a different schema or a different
    build of the code — is detectable ([fdkit trace --check] warns on a
    fingerprint mismatch).

    The fingerprint value is owned by [Setagree_core.Fingerprint], which
    calls {!set_fingerprint} at startup ([Fingerprint.install]); this
    module is only the process-wide cell, placed in [Setagree_util] so
    layers below core can read it without a dependency cycle.  Until
    installed, the fingerprint reads ["unstamped"]. *)

val schema_version : int
(** Bumped when the shape of the JSON artifacts changes. *)

val set_fingerprint : string -> unit
val fingerprint : unit -> string

val is_stamped : unit -> bool
(** [false] until {!set_fingerprint} has been called. *)

val fields : unit -> (string * Json.t) list
(** [[("schema_version", ...); ("code_fingerprint", ...)]] — prepend to
    artifact objects. *)
