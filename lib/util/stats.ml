type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] -> invalid_arg "Stats.stddev: empty"
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let percentile xs p =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      List.nth sorted idx

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let sorted = List.sort Float.compare xs in
      {
        count = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = List.hd sorted;
        p50 = percentile xs 0.5;
        p95 = percentile xs 0.95;
        max = List.nth sorted (List.length sorted - 1);
      }

let summarize_opt = function [] -> None | xs -> Some (summarize xs)

let pp_summary fmt s =
  Format.fprintf fmt "mean %.1f ± %.1f (p50 %.1f, p95 %.1f, range %.1f-%.1f, n=%d)"
    s.mean s.stddev s.p50 s.p95 s.min s.max s.count
