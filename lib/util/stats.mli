(** Descriptive statistics for experiment harnesses (means, spread,
    percentiles over per-seed measurements). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val summarize_opt : float list -> summary option
(** Total version of {!summarize}: [None] on the empty list.  Use it
    wherever a sweep can legitimately produce zero samples (all jobs
    skipped or failed), so a campaign report never dies mid-print. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 1]: nearest-rank on the sorted
    sample. *)

val mean : float list -> float
val stddev : float list -> float

val pp_summary : Format.formatter -> summary -> unit
(** ["mean 42.1 ± 3.2 (p50 41.8, p95 48.0, range 37.2-49.9, n=30)"]. *)
