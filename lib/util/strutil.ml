let find s ~sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then Some 0
  else if m > n then None
  else begin
    let c0 = String.unsafe_get sub 0 in
    let limit = n - m in
    let rec at i j =
      (* sub.[0..j-1] already matched at position i *)
      if j = m then true
      else if String.unsafe_get s (i + j) = String.unsafe_get sub j then
        at i (j + 1)
      else false
    in
    let rec scan i =
      if i > limit then None
      else if String.unsafe_get s i = c0 && at i 1 then Some i
      else scan (i + 1)
    in
    scan 0
  end

let contains s ~sub = find s ~sub <> None
