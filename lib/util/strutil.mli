(** Small string helpers shared across the tree.

    Byte-level semantics throughout: OCaml strings are byte sequences,
    so [contains] matches UTF-8 encoded text at the byte level (a match
    can start inside a multi-byte scalar; callers that need
    character-level semantics must decode first). *)

val contains : string -> sub:string -> bool
(** [contains s ~sub] is [true] iff [sub] occurs in [s] as a contiguous
    byte substring.  The empty needle matches everywhere (including in
    the empty string).  Allocation-free, O(|s| * |sub|) worst case but
    with a first-byte fast path — unlike the previous
    [String.sub]-per-position scan this never copies. *)

val find : string -> sub:string -> int option
(** Index of the first occurrence, if any. *)
