type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let cap' = max 8 (2 * cap) in
    let data' = Array.make cap' x in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let list_from t ~cursor =
  let from = max 0 cursor in
  if from >= t.len then [] else List.init (t.len - from) (fun i -> t.data.(from + i))
