(** Append-only growable vector (amortized O(1) push, O(1) random access).

    The network layer's mailboxes are append-only logs read through
    cursors; a dynamic array keeps appends O(1) and "everything since
    index i" reads O(new items), where the previous list-based mailboxes
    paid a full reverse-and-rescan per read. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_list : 'a t -> 'a list
(** In append order. *)

val list_from : 'a t -> cursor:int -> 'a list
(** Elements at indices [>= cursor], in append order — the cursor-based
    "new since last read" primitive. *)
