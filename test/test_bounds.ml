(* Tests for the paper's parameter arithmetic (Core.Bounds): unit values
   straight from the paper's statements plus qcheck invariants tying the
   formulas together. *)

open Setagree_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_validity_ranges () =
  check "x=1 ok" true (Bounds.valid_x ~n:5 ~x:1);
  check "x=n ok" true (Bounds.valid_x ~n:5 ~x:5);
  check "x=0 bad" false (Bounds.valid_x ~n:5 ~x:0);
  check "x=n+1 bad" false (Bounds.valid_x ~n:5 ~x:6);
  check "y=0 ok" true (Bounds.valid_y ~t:3 ~y:0);
  check "y=t ok" true (Bounds.valid_y ~t:3 ~y:3);
  check "y=t+1 bad" false (Bounds.valid_y ~t:3 ~y:4);
  check "z=1 ok" true (Bounds.valid_z ~n:5 ~z:1);
  check "z=0 bad" false (Bounds.valid_z ~n:5 ~z:0)

let test_addition_theorem8 () =
  (* x + y + z >= t + 2 *)
  check "boundary holds" true (Bounds.addition_possible ~t:3 ~x:2 ~y:1 ~z:2);
  check "below boundary" false (Bounds.addition_possible ~t:3 ~x:2 ~y:1 ~z:1);
  check "slack holds" true (Bounds.addition_possible ~t:3 ~x:4 ~y:3 ~z:3)

let test_z_of_addition_values () =
  (* Figure 2: z = (t+1-(x-1)) - y. *)
  check_int "t=3 x=2 y=1" 2 (Bounds.z_of_addition ~t:3 ~x:2 ~y:1);
  check_int "headline: x=t y=1 -> consensus" 1 (Bounds.z_of_addition ~t:3 ~x:3 ~y:1);
  check_int "clamped at 1" 1 (Bounds.z_of_addition ~t:2 ~x:3 ~y:3)

let test_headline_example () =
  (* ◇S_t solves 2-set not consensus; ◇φ_1 solves t-set not (t-1)-set; their
     addition solves consensus. *)
  let t = 4 in
  check_int "◇S_t -> 2-set" 2 (Bounds.kset_from_es ~t ~x:t);
  check_int "◇φ_1 -> t-set" t (Bounds.kset_from_phi ~t ~y:1);
  check_int "addition -> consensus" 1 (Bounds.z_of_addition ~t ~x:t ~y:1)

let test_single_class_reductions () =
  (* Corollaries: ◇φ_y -> Ω_z iff y+z >= t+1; ◇S_x -> Ω_z iff x+z >= t+2. *)
  check "phi boundary" true (Bounds.phi_to_omega_possible ~t:3 ~y:2 ~z:2);
  check "phi below" false (Bounds.phi_to_omega_possible ~t:3 ~y:2 ~z:1);
  check "es boundary" true (Bounds.es_to_omega_possible ~t:3 ~x:3 ~z:2);
  check "es below" false (Bounds.es_to_omega_possible ~t:3 ~x:3 ~z:1);
  check_int "omega_from_es" 2 (Bounds.omega_from_es ~t:3 ~x:3);
  check_int "omega_from_phi" 2 (Bounds.omega_from_phi ~t:3 ~y:2)

let test_kset_with_omega_theorem5 () =
  (* t < n/2 and z <= k. *)
  check "ok" true (Bounds.kset_with_omega ~n:7 ~t:3 ~z:2 ~k:2);
  check "z > k" false (Bounds.kset_with_omega ~n:7 ~t:3 ~z:3 ~k:2);
  check "t = n/2 fails" false (Bounds.kset_with_omega ~n:6 ~t:3 ~z:1 ~k:1);
  check "k > z ok" true (Bounds.kset_with_omega ~n:9 ~t:4 ~z:1 ~k:3)

let test_grid_figure1 () =
  (* Row z of the grid: S_{t-z+2}, Ω_z, φ_{t-z+1}. *)
  let t = 3 in
  let top = Bounds.grid_row ~t ~z:1 in
  check_int "z=1 sx = t+1" (t + 1) top.sx;
  check_int "z=1 phiy = t" t top.phiy;
  let bottom = Bounds.grid_row ~t ~z:(t + 1) in
  check_int "z=t+1 sx = 1 (no info)" 1 bottom.sx;
  check_int "z=t+1 phiy = 0 (no info)" 0 bottom.phiy;
  check_int "grid has t+1 rows" (t + 1) (List.length (Bounds.grid ~t))

let test_grid_rows_consistent_with_kset () =
  (* Every class in row z solves z-set agreement: the per-class k formulas
     evaluated at the row's parameters give exactly z. *)
  let t = 5 in
  List.iter
    (fun (row : Bounds.row) ->
      check_int "es class solves z-set" row.z (Bounds.kset_from_es ~t ~x:row.sx);
      check_int "phi class solves z-set" row.z (Bounds.kset_from_phi ~t ~y:row.phiy))
    (Bounds.grid ~t)

let test_wheels_admissible () =
  check "typical" true (Bounds.wheels_admissible ~n:7 ~t:3 ~x:2 ~y:1);
  check "x+y = t+1 boundary" true (Bounds.wheels_admissible ~n:7 ~t:3 ~x:3 ~y:1);
  check "x+y > t+1" false (Bounds.wheels_admissible ~n:7 ~t:3 ~x:3 ~y:2);
  check "y > t" false (Bounds.wheels_admissible ~n:7 ~t:3 ~x:1 ~y:4);
  check "x = 0" false (Bounds.wheels_admissible ~n:7 ~t:3 ~x:0 ~y:1)

let test_upper_y_size () =
  check_int "t=3 y=1 -> 3" 3 (Bounds.upper_y_size ~t:3 ~y:1);
  check_int "y=0 -> t+1" 4 (Bounds.upper_y_size ~t:3 ~y:0)

let test_strengthen_boundary () =
  check "x+y = t+1" true (Bounds.strengthen_possible ~t:3 ~x:2 ~y:2);
  check "x+y = t" false (Bounds.strengthen_possible ~t:3 ~x:2 ~y:1)

let test_psi_chain_length () =
  check_int "n=7 z=3" 5 (Bounds.psi_chain_length ~n:7 ~z:3);
  check_int "z=n" 1 (Bounds.psi_chain_length ~n:7 ~z:7)

let qcheck_props =
  let gen_params =
    QCheck.Gen.(
      let* t = int_range 1 8 in
      let* x = int_range 1 (t + 2) in
      let* y = int_range 0 t in
      let* z = int_range 1 (t + 2) in
      return (t, x, y, z))
  in
  let arb = QCheck.make ~print:(fun (t, x, y, z) -> Printf.sprintf "t=%d x=%d y=%d z=%d" t x y z) gen_params in
  [
    QCheck.Test.make ~name:"constructive z satisfies theorem 8" ~count:500 arb
      (fun (t, x, y, _) ->
        let z = Bounds.z_of_addition ~t ~x ~y in
        (* Clamping may push above the theoretical best but never below. *)
        Bounds.addition_possible ~t ~x ~y ~z || x + y > t + 1);
    QCheck.Test.make ~name:"addition monotone in z" ~count:500 arb (fun (t, x, y, z) ->
        (not (Bounds.addition_possible ~t ~x ~y ~z))
        || Bounds.addition_possible ~t ~x ~y ~z:(z + 1));
    QCheck.Test.make ~name:"grid row round-trips z" ~count:500
      (QCheck.make QCheck.Gen.(pair (int_range 1 8) (int_range 1 8)))
      (fun (t, z0) ->
        let z = 1 + (z0 mod (t + 1)) in
        let row = Bounds.grid_row ~t ~z in
        row.sx + z = t + 2 && row.phiy + z = t + 1);
    QCheck.Test.make ~name:"single-class formulas = theorem 8 specializations" ~count:500
      arb (fun (t, x, y, z) ->
        Bool.equal
          (Bounds.es_to_omega_possible ~t ~x ~z)
          (Bounds.addition_possible ~t ~x ~y:0 ~z)
        && Bool.equal
             (Bounds.phi_to_omega_possible ~t ~y ~z)
             (Bounds.addition_possible ~t ~x:1 ~y ~z));
    QCheck.Test.make ~name:"kset formulas consistent with omega widths" ~count:500 arb
      (fun (t, x, y, _) ->
        Bounds.kset_from_es ~t ~x = Bounds.omega_from_es ~t ~x
        && Bounds.kset_from_phi ~t ~y = Bounds.omega_from_phi ~t ~y);
  ]

let () =
  Alcotest.run "bounds"
    [
      ( "unit",
        [
          Alcotest.test_case "validity ranges" `Quick test_validity_ranges;
          Alcotest.test_case "theorem 8" `Quick test_addition_theorem8;
          Alcotest.test_case "z of addition" `Quick test_z_of_addition_values;
          Alcotest.test_case "headline example" `Quick test_headline_example;
          Alcotest.test_case "single-class reductions" `Quick test_single_class_reductions;
          Alcotest.test_case "theorem 5" `Quick test_kset_with_omega_theorem5;
          Alcotest.test_case "grid figure 1" `Quick test_grid_figure1;
          Alcotest.test_case "grid rows solve z-set" `Quick test_grid_rows_consistent_with_kset;
          Alcotest.test_case "wheels admissible" `Quick test_wheels_admissible;
          Alcotest.test_case "upper Y size" `Quick test_upper_y_size;
          Alcotest.test_case "strengthen boundary" `Quick test_strengthen_boundary;
          Alcotest.test_case "psi chain length" `Quick test_psi_chain_length;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) qcheck_props);
    ]
