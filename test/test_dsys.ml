(* Tests for the discrete-event kernel: event ordering, fibers (sleep /
   yield / poll-cond waits), crash semantics, determinism, budgets,
   traces. *)

open Setagree_util
open Setagree_dsys

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Poll-cadence wait: re-evaluated after every event, no signal
   discipline needed — what the old [Sim.wait_until] shim did. *)
let wait_until sim pred = Sim.Cond.await [ Sim.Cond.poll sim ] pred

let mk ?(horizon = 1000.0) ?(n = 4) ?(t = 1) ?(seed = 1) () =
  Sim.create ~horizon ~n ~t ~seed ()

let test_create_validation () =
  check "n >= 2" true
    (try ignore (Sim.create ~n:1 ~t:0 ~seed:0 ()); false with Invalid_argument _ -> true);
  check "t < n" true
    (try ignore (Sim.create ~n:3 ~t:3 ~seed:0 ()); false with Invalid_argument _ -> true)

let test_time_starts_at_zero () =
  let sim = mk () in
  Alcotest.(check (float 0.0)) "t0" 0.0 (Sim.now sim)

let test_schedule_order () =
  let sim = mk () in
  let log = ref [] in
  Sim.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log);
  let o = Sim.run sim in
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check "quiescent" true (o.reason = Sim.Quiescent);
  check_int "events" 3 o.events

let test_same_time_fifo () =
  let sim = mk () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "insertion order at same instant"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_at_absolute () =
  let sim = mk () in
  let seen = ref 0.0 in
  Sim.at sim ~time:5.5 (fun () -> seen := Sim.now sim);
  ignore (Sim.run sim);
  Alcotest.(check (float 0.001)) "at time" 5.5 !seen

let test_at_past_rejected () =
  let sim = mk () in
  Sim.schedule sim ~delay:10.0 (fun () ->
      check "past at raises" true
        (try Sim.at sim ~time:1.0 (fun () -> ()); false with Invalid_argument _ -> true));
  ignore (Sim.run sim)

let test_negative_delay_rejected () =
  let sim = mk () in
  check "negative delay" true
    (try Sim.schedule sim ~delay:(-1.0) (fun () -> ()); false
     with Invalid_argument _ -> true)

let test_sleep_advances_time () =
  let sim = mk () in
  let wake = ref 0.0 in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.sleep 4.25;
      wake := Sim.now sim);
  ignore (Sim.run sim);
  Alcotest.(check (float 0.001)) "wake time" 4.25 !wake

let test_sleep_sequence () =
  let sim = mk () in
  let times = ref [] in
  Sim.spawn sim ~pid:0 (fun () ->
      for _ = 1 to 3 do
        Sim.sleep 1.0;
        times := Sim.now sim :: !times
      done);
  ignore (Sim.run sim);
  Alcotest.(check (list (float 0.001))) "sleep accumulates" [ 1.0; 2.0; 3.0 ] (List.rev !times)

let test_yield_same_time () =
  let sim = mk () in
  let order = ref [] in
  Sim.spawn sim ~pid:0 (fun () ->
      order := "a1" :: !order;
      Sim.yield ();
      order := "a2" :: !order);
  Sim.spawn sim ~pid:1 (fun () -> order := "b" :: !order);
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "yield interleaves" [ "a1"; "b"; "a2" ] (List.rev !order)

let test_wait_until_immediate () =
  let sim = mk () in
  let passed = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      wait_until sim (fun () -> true);
      passed := true);
  ignore (Sim.run sim);
  check "immediate wait passes" true !passed

let test_wait_until_wakes () =
  let sim = mk () in
  let flag = ref false in
  let woke_at = ref 0.0 in
  Sim.spawn sim ~pid:0 (fun () ->
      wait_until sim (fun () -> !flag);
      woke_at := Sim.now sim);
  Sim.schedule sim ~delay:7.0 (fun () -> flag := true);
  ignore (Sim.run sim);
  Alcotest.(check (float 0.001)) "woke when flag set" 7.0 !woke_at

let test_wait_until_chain () =
  (* Fiber B waits on a flag set by fiber A waking from its own wait:
     zero-time causality chains must resolve within one event. *)
  let sim = mk () in
  let f1 = ref false and f2 = ref false and done2 = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      wait_until sim (fun () -> !f1);
      f2 := true);
  Sim.spawn sim ~pid:1 (fun () ->
      wait_until sim (fun () -> !f2);
      done2 := true);
  Sim.schedule sim ~delay:1.0 (fun () -> f1 := true);
  ignore (Sim.run sim);
  check "chain resolved" true !done2

let test_crash_stops_fiber () =
  let sim = mk () in
  Sim.install_crashes sim [ (0, 5.0) ];
  let steps = ref 0 in
  Sim.spawn sim ~pid:0 (fun () ->
      while true do
        incr steps;
        Sim.sleep 2.0
      done);
  ignore (Sim.run sim);
  (* Steps at 0, 2, 4; crash at 5 kills the resume at 6. *)
  check_int "steps before crash" 3 !steps;
  check "is_crashed" true (Sim.is_crashed sim 0)

let test_crash_drops_waiter () =
  let sim = mk () in
  Sim.install_crashes sim [ (0, 2.0) ];
  let flag = ref false and woke = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      wait_until sim (fun () -> !flag);
      woke := true);
  Sim.schedule sim ~delay:5.0 (fun () -> flag := true);
  ignore (Sim.run sim);
  check "crashed waiter never wakes" false !woke

let test_crash_bound_enforced () =
  let sim = mk ~n:4 ~t:1 () in
  check "too many crashes" true
    (try Sim.install_crashes sim [ (0, 1.0); (1, 2.0) ]; false
     with Invalid_argument _ -> true)

let test_ground_truth_sets () =
  let sim = mk ~n:4 ~t:2 () in
  Sim.install_crashes sim [ (1, 3.0); (2, 8.0) ];
  check "correct set" true
    (Pidset.equal (Sim.correct_set sim) (Pidset.of_list [ 0; 3 ]));
  Alcotest.(check (option (float 0.001))) "crash_time" (Some 3.0) (Sim.crash_time sim 1);
  check "alive at 5" true
    (Pidset.equal (Sim.alive_at sim 5.0) (Pidset.of_list [ 0; 2; 3 ]));
  check "alive at 10" true (Pidset.equal (Sim.alive_at sim 10.0) (Pidset.of_list [ 0; 3 ]));
  ignore (Sim.run sim);
  check "crashed set after run" true
    (Pidset.equal (Sim.crashed_set sim) (Pidset.of_list [ 1; 2 ]))

let test_spawn_on_crashed_discarded () =
  let sim = mk () in
  Sim.install_crashes sim [ (0, 1.0) ];
  let ran = ref false in
  Sim.schedule sim ~delay:2.0 (fun () -> Sim.spawn sim ~pid:0 (fun () -> ran := true));
  ignore (Sim.run sim);
  check "not run" false !ran

let test_horizon_stops () =
  let sim = mk ~horizon:10.0 () in
  Sim.spawn sim ~pid:0 (fun () ->
      while true do
        Sim.sleep 1.0
      done);
  let o = Sim.run sim in
  check "horizon reason" true (o.reason = Sim.Horizon);
  check "end_time <= horizon" true (o.end_time <= 10.0 +. 1e-9)

let test_budget_stops () =
  let sim = mk ~horizon:1e9 () in
  let sim_budget = Sim.create ~horizon:1e9 ~max_events:50 ~n:4 ~t:1 ~seed:1 () in
  ignore sim;
  Sim.spawn sim_budget ~pid:0 (fun () ->
      while true do
        Sim.sleep 1.0
      done);
  let o = Sim.run sim_budget in
  check "budget reason" true (o.reason = Sim.Budget);
  check_int "events = budget" 50 o.events

let test_stop_when () =
  let sim = mk () in
  let count = ref 0 in
  Sim.spawn sim ~pid:0 (fun () ->
      while true do
        incr count;
        Sim.sleep 1.0
      done);
  let o = Sim.run ~stop_when:(fun () -> !count >= 5) sim in
  check "stopped reason" true (o.reason = Sim.Stopped);
  check_int "stopped at 5" 5 !count

let test_determinism_same_seed () =
  let observe seed =
    let sim = mk ~seed () in
    let rng = Rng.split_named (Sim.rng sim) "test" in
    let log = ref [] in
    for pid = 0 to 3 do
      Sim.spawn sim ~pid (fun () ->
          for _ = 1 to 5 do
            Sim.sleep (Rng.uniform_in rng 0.5 1.5);
            log := (pid, Sim.now sim) :: !log
          done)
    done;
    ignore (Sim.run sim);
    List.rev !log
  in
  check "same seed same run" true (observe 42 = observe 42);
  check "diff seed diff run" true (observe 42 <> observe 43)

let test_ticker_drives_clock () =
  let sim = mk ~horizon:10.0 () in
  Sim.ticker sim ~every:1.0;
  let o = Sim.run sim in
  check "clock reached horizon region" true (o.end_time >= 9.0)

let test_ticker_wakes_time_predicate () =
  let sim = mk ~horizon:100.0 () in
  Sim.ticker sim ~every:1.0;
  let woke = ref 0.0 in
  Sim.spawn sim ~pid:0 (fun () ->
      wait_until sim (fun () -> Sim.now sim >= 42.0);
      woke := Sim.now sim);
  ignore (Sim.run ~stop_when:(fun () -> !woke > 0.0) sim);
  check "woken by ticker" true (!woke >= 42.0 && !woke < 44.0)

let test_zero_time_livelock_detected () =
  (* Two fibers that keep enabling each other at the same instant: the
     scheduler's fixpoint guard must detect the livelock and fail loudly
     instead of hanging. *)
  let sim = mk () in
  let ping = ref true and pong = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      while true do
        wait_until sim (fun () -> !ping);
        ping := false;
        pong := true
      done);
  Sim.spawn sim ~pid:1 (fun () ->
      while true do
        wait_until sim (fun () -> !pong);
        pong := false;
        ping := true
      done);
  check "livelock detected" true
    (try
       ignore (Sim.run sim);
       false
     with Failure msg -> String.length msg > 0)

let test_multiple_fibers_per_pid () =
  let sim = mk () in
  let a = ref false and b = ref false in
  Sim.spawn sim ~pid:0 (fun () -> a := true);
  Sim.spawn sim ~pid:0 (fun () -> b := true);
  ignore (Sim.run sim);
  check "both tasks ran" true (!a && !b)

(* Crash schedules *)

let test_crash_now_dynamic () =
  let sim = mk ~n:4 ~t:2 () in
  let steps = ref 0 in
  Sim.spawn sim ~pid:1 (fun () ->
      while true do
        incr steps;
        Sim.sleep 1.0
      done);
  (* A reactive adversary kills p2 after its third step. *)
  Sim.spawn sim ~pid:0 (fun () ->
      wait_until sim (fun () -> !steps >= 3);
      Sim.crash_now sim 1);
  ignore (Sim.run sim);
  check_int "stopped at third step" 3 !steps;
  check "ground truth updated" true (Sim.is_crashed sim 1);
  check "correct set updated" true (not (Pidset.mem 1 (Sim.correct_set sim)))

let test_crash_now_idempotent_and_scheduled () =
  let sim = mk ~n:4 ~t:1 () in
  Sim.install_crashes sim [ (2, 10.0) ];
  (* Crashing the process that already has the scheduled crash does not
     consume extra budget. *)
  Sim.schedule sim ~delay:1.0 (fun () ->
      Sim.crash_now sim 2;
      Sim.crash_now sim 2);
  ignore (Sim.run sim);
  check "crashed early" true (Sim.is_crashed sim 2)

let test_crash_spec_none () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "no crashes" 0
    (List.length (Crash.generate Crash.No_crashes ~n:5 ~t:2 rng))

let test_crash_spec_initial () =
  let rng = Rng.create 1 in
  let cs = Crash.generate (Crash.Initial [ 1; 3 ]) ~n:5 ~t:2 rng in
  check "times zero" true (List.for_all (fun (_, tm) -> tm = 0.0) cs);
  check "victims" true (Pidset.equal (Crash.victims cs) (Pidset.of_list [ 1; 3 ]))

let test_crash_spec_exactly () =
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    let cs = Crash.generate (Crash.Exactly { crashes = 2; window = (1.0, 5.0) }) ~n:6 ~t:3 rng in
    check_int "two crashes" 2 (List.length cs);
    check "window" true (List.for_all (fun (_, tm) -> tm >= 1.0 && tm < 5.0) cs);
    check_int "distinct victims" 2 (Pidset.cardinal (Crash.victims cs))
  done

let test_crash_spec_random_capped () =
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    let cs =
      Crash.generate (Crash.Random_up_to { max_crashes = 10; window = (0.0, 1.0) }) ~n:6
        ~t:2 rng
    in
    check "capped by t" true (List.length cs <= 2)
  done

let test_crash_spec_explicit_checked () =
  let rng = Rng.create 4 in
  check "explicit over t rejected" true
    (try
       ignore (Crash.generate (Crash.Explicit [ (0, 1.0); (1, 1.0) ]) ~n:4 ~t:1 rng);
       false
     with Invalid_argument _ -> true)

(* Trace *)

let test_trace_counters () =
  let tr = Trace.create () in
  Trace.incr tr "a";
  Trace.incr tr "a";
  Trace.add_to tr "b" 5;
  check_int "a" 2 (Trace.counter tr "a");
  check_int "b" 5 (Trace.counter tr "b");
  check_int "missing" 0 (Trace.counter tr "zzz");
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 2); ("b", 5) ] (Trace.counters tr)

let test_trace_entries () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 (Trace.Crash 2);
  Trace.record tr ~time:2.0 (Trace.Decide { pid = 0; value = 7; round = 3 });
  Trace.record tr ~time:3.0 (Trace.Note { pid = None; text = "hello world" });
  check_int "entries" 3 (List.length (Trace.entries tr));
  Alcotest.(check (list (pair int (float 0.001)))) "crashes" [ (2, 1.0) ] (Trace.crashes tr);
  (match Trace.decisions tr with
  | [ (0, 7, 3, tm) ] -> Alcotest.(check (float 0.001)) "decide time" 2.0 tm
  | _ -> Alcotest.fail "decisions");
  check_int "note found" 1 (List.length (Trace.find_notes tr "world"));
  check_int "note missing" 0 (List.length (Trace.find_notes tr "absent"))

let () =
  Alcotest.run "dsys"
    [
      ( "scheduler",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "time zero" `Quick test_time_starts_at_zero;
          Alcotest.test_case "event order" `Quick test_schedule_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "absolute at" `Quick test_at_absolute;
          Alcotest.test_case "at past" `Quick test_at_past_rejected;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "horizon" `Quick test_horizon_stops;
          Alcotest.test_case "budget" `Quick test_budget_stops;
          Alcotest.test_case "stop_when" `Quick test_stop_when;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
          Alcotest.test_case "ticker clock" `Quick test_ticker_drives_clock;
          Alcotest.test_case "ticker wakes" `Quick test_ticker_wakes_time_predicate;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "sleep advances" `Quick test_sleep_advances_time;
          Alcotest.test_case "sleep sequence" `Quick test_sleep_sequence;
          Alcotest.test_case "yield" `Quick test_yield_same_time;
          Alcotest.test_case "wait immediate" `Quick test_wait_until_immediate;
          Alcotest.test_case "wait wakes" `Quick test_wait_until_wakes;
          Alcotest.test_case "wait chain" `Quick test_wait_until_chain;
          Alcotest.test_case "livelock guard" `Quick test_zero_time_livelock_detected;
          Alcotest.test_case "two fibers one pid" `Quick test_multiple_fibers_per_pid;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "stops fiber" `Quick test_crash_stops_fiber;
          Alcotest.test_case "drops waiter" `Quick test_crash_drops_waiter;
          Alcotest.test_case "bound enforced" `Quick test_crash_bound_enforced;
          Alcotest.test_case "ground truth" `Quick test_ground_truth_sets;
          Alcotest.test_case "spawn on crashed" `Quick test_spawn_on_crashed_discarded;
          Alcotest.test_case "crash_now dynamic" `Quick test_crash_now_dynamic;
          Alcotest.test_case "crash_now idempotent" `Quick test_crash_now_idempotent_and_scheduled;
          Alcotest.test_case "spec none" `Quick test_crash_spec_none;
          Alcotest.test_case "spec initial" `Quick test_crash_spec_initial;
          Alcotest.test_case "spec exactly" `Quick test_crash_spec_exactly;
          Alcotest.test_case "spec random capped" `Quick test_crash_spec_random_capped;
          Alcotest.test_case "spec explicit checked" `Quick test_crash_spec_explicit_checked;
        ] );
      ( "trace",
        [
          Alcotest.test_case "counters" `Quick test_trace_counters;
          Alcotest.test_case "entries" `Quick test_trace_entries;
        ] );
    ]
