(* Tests for the schedule explorer stack: Crash.spec / Schedule JSON
   round-trips, the protocol-blind Explore kernel on toy instances where
   the full branch structure is checkable by hand (sleep-set pruning,
   first-deviation DFS, delta-debugging minimization, crash injection),
   and the campaign-shaped Explorer on the E2 misuse configuration
   (Omega_z with z > k must yield a replayable counterexample; z <= k
   must come up dry — Lemma 2) including the -j 1 == -j N determinism
   contract. *)

open Setagree_util
open Setagree_dsys
open Setagree_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- JSON round-trips --- *)

let gen_spec =
  QCheck.Gen.(
    let pid = int_range 0 7 in
    let time = map float_of_int (int_range 0 50) in
    let window = map (fun a -> (float_of_int a, float_of_int (a + 20))) (int_range 0 30) in
    int_range 0 4 >>= function
    | 0 -> return Crash.No_crashes
    | 1 -> map (fun l -> Crash.Explicit l) (list_size (int_range 0 3) (pair pid time))
    | 2 -> map (fun l -> Crash.Initial l) (list_size (int_range 0 3) pid)
    | 3 ->
        map2
          (fun m w -> Crash.Random_up_to { max_crashes = m; window = w })
          (int_range 0 4) window
    | _ ->
        map2 (fun c w -> Crash.Exactly { crashes = c; window = w }) (int_range 0 4) window)

let qcheck_crash_spec_roundtrip =
  QCheck.Test.make ~name:"Crash.spec_of_json (spec_to_json s) = Ok s" ~count:200
    (QCheck.make gen_spec)
    (fun spec -> Crash.spec_of_json (Crash.spec_to_json spec) = Ok spec)

let gen_choice =
  QCheck.Gen.(
    bool >>= function
    | true -> map (fun i -> Schedule.Deliver i) (int_range 0 20)
    | false -> map (fun p -> Schedule.Crash p) (int_range 0 7))

let gen_schedule =
  QCheck.Gen.(
    map2
      (fun (choices, spec) violation ->
        {
          Schedule.protocol = "kset";
          params = Protocol.params_to_json Protocol.default;
          crashes = spec;
          choices;
          violation;
        })
      (pair (list_size (int_range 0 12) gen_choice) gen_spec)
      (list_size (int_range 0 2) (return "agreement: 2 > k distinct decisions")))

let qcheck_schedule_roundtrip =
  QCheck.Test.make ~name:"Schedule.of_json (to_json s) = Ok s" ~count:200
    (QCheck.make gen_schedule)
    (fun s -> Schedule.of_json (Schedule.to_json s) = Ok s)

let test_schedule_file_roundtrip () =
  let s =
    {
      Schedule.protocol = "kset";
      params = Protocol.params_to_json { Protocol.default with Protocol.z = 2 };
      crashes = Crash.Exactly { crashes = 2; window = (0.0, 20.0) };
      choices = [ Schedule.Deliver 3; Schedule.Crash 1; Schedule.Deliver 0 ];
      violation = [ "agreement: 2 > k distinct decisions" ];
    }
  in
  let path = Filename.temp_file "schedule" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule.save path s;
      match Schedule.load path with
      | Ok s' -> check "save/load round-trip" true (s = s')
      | Error e -> Alcotest.failf "load failed: %s" e)

(* --- Toy instances: the kernel's branch structure by hand --- *)

(* Three messages offered at the same boundary: 1->0, 2->0, 2->1.  The
   "protocol" is violated iff process 0's FIRST message comes from 2.
   FIFO is safe; exactly one reordering (Deliver 1 at point 0) breaks it;
   2->1 commutes with both (different destination), so branching on it is
   pruned. *)
let make_race () =
  let sim = Sim.create ~horizon:50.0 ~n:3 ~t:1 ~seed:1 () in
  let log = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () ->
      Sim.offer sim ~src:1 ~dst:0 (fun () -> log := !log @ [ 1 ]);
      Sim.offer sim ~src:2 ~dst:0 (fun () -> log := !log @ [ 2 ]);
      Sim.offer sim ~src:2 ~dst:1 (fun () -> ()));
  {
    Explore.i_sim = sim;
    i_stop = (fun () -> false);
    i_violation = (fun () -> match !log with 2 :: _ -> [ "src 2 overtook src 1" ] | _ -> []);
    i_crashable = [];
  }

let test_default_exec_is_fifo_and_safe () =
  let stats = Explore.new_stats () in
  let e = Explore.default_exec ~make:make_race ~stats ~depth:8 in
  check "FIFO run is safe" true (e.Explore.ex_violation = []);
  check_int "three choice points" 3 e.Explore.ex_points;
  check_int "all-default choices" 0 (Explore.deviations e.Explore.ex_choices)

let test_dfs_finds_race_with_pruning () =
  let stats = Explore.new_stats () in
  let base = Explore.default_exec ~make:make_race ~stats ~depth:8 in
  let roots =
    List.concat_map
      (Explore.alternatives_at stats base)
      (List.init (Array.length base.Explore.ex_options) Fun.id)
  in
  (* Point 0: Deliver 1 branches (same dst as Deliver 0), Deliver 2 is
     pruned (dst 1 commutes).  Point 1: the only reordering commutes.
     Point 2: singleton.  So exactly one root, >= 2 prunes. *)
  check_int "one non-commuting root" 1 (List.length roots);
  check "commuting branches pruned" true (stats.Explore.prunes >= 2);
  let found = Explore.dfs ~make:make_race ~stats ~depth:8 ~delays:2 ~max_runs:50 roots in
  (match found with
  | [ (prefix, notes) ] ->
      check_int "one deviation suffices" 1 (Explore.deviations prefix);
      check "the recorded violation" true (notes = [ "src 2 overtook src 1" ])
  | l -> Alcotest.failf "expected exactly one violation, got %d" (List.length l));
  check "violations counted" true (stats.Explore.violations >= 1)

let test_shrink_race_to_single_reorder () =
  let stats = Explore.new_stats () in
  let base = Explore.default_exec ~make:make_race ~stats ~depth:8 in
  let roots = Explore.alternatives_at stats base 0 in
  let found = Explore.dfs ~make:make_race ~stats ~depth:8 ~delays:2 ~max_runs:50 roots in
  let choices, notes = Explore.shrink ~make:make_race ~stats (List.hd found) in
  check "minimized to the one reordering" true (choices = [ Schedule.Deliver 1 ]);
  check "violation preserved" true (notes = [ "src 2 overtook src 1" ]);
  (* Replay of the minimized schedule exhibits the same violation. *)
  let e = Explore.run_schedule ~make:make_race choices in
  check "minimized schedule replays" true (e.Explore.ex_violation = notes)

let test_run_schedule_deterministic () =
  let run () =
    let e = Explore.run_schedule ~make:make_race ~depth:8 [ Schedule.Deliver 1 ] in
    (e.Explore.ex_choices, e.Explore.ex_violation, e.Explore.ex_outcome.Sim.events)
  in
  check "same choices, same execution" true (run () = run ())

(* Violated iff the adversary crashes process 1 — delivery order is
   irrelevant.  DFS must discover it via crash injection and shrink must
   keep exactly [Crash 1]. *)
let make_crashable () =
  let sim = Sim.create ~horizon:50.0 ~n:3 ~t:1 ~seed:1 () in
  Sim.schedule sim ~delay:1.0 (fun () -> Sim.offer sim ~src:2 ~dst:0 (fun () -> ()));
  {
    Explore.i_sim = sim;
    i_stop = (fun () -> false);
    i_violation =
      (fun () ->
        if Pidset.mem 1 (Sim.correct_set sim) then [] else [ "pid 1 was crashed" ]);
    i_crashable = [ 0; 1; 2 ];
  }

let test_dfs_injects_crash_and_shrinks () =
  let stats = Explore.new_stats () in
  let base = Explore.default_exec ~make:make_crashable ~stats ~depth:8 in
  check "default run safe" true (base.Explore.ex_violation = []);
  let roots =
    List.concat_map
      (Explore.alternatives_at stats base)
      (List.init (Array.length base.Explore.ex_options) Fun.id)
  in
  let found =
    Explore.dfs ~make:make_crashable ~stats ~depth:8 ~delays:2 ~max_runs:100 roots
  in
  check "found the crash violation" true
    (List.exists (fun (_, notes) -> notes = [ "pid 1 was crashed" ]) found);
  let fv = List.find (fun (_, notes) -> notes = [ "pid 1 was crashed" ]) found in
  let choices, notes = Explore.shrink ~make:make_crashable ~stats fv in
  check "minimized to the one crash" true (choices = [ Schedule.Crash 1 ]);
  check "violation preserved" true (notes = [ "pid 1 was crashed" ])

(* --- Explorer on the registry: E2 misuse end-to-end --- *)

let bounds =
  {
    Explorer.default_bounds with
    Explorer.depth = 8;
    delays = 1;
    walks = 8;
    max_runs_per_job = 100;
    shrink_budget = 100;
  }

let params z =
  {
    Protocol.default with
    Protocol.n = 7;
    t = 2;
    seed = 1;
    z;
    k = 1;
    adversarial = true;
    horizon = 300.0;
    crashes = Crash.No_crashes;
  }

let test_misuse_finds_and_replays () =
  let o = Explorer.explore ~jobs:1 ~protocol:"kset" (params 2) bounds in
  check "z > k yields a counterexample" true (o.Explorer.o_ces <> []);
  let ce = List.hd o.Explorer.o_ces in
  check "violation recorded" true (ce.Schedule.violation <> []);
  match Explorer.replay ce with
  | Ok (_, reproduced) -> check "replay reproduces the violation" true reproduced
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_explorer_jobs_deterministic () =
  let o1 = Explorer.explore ~jobs:1 ~protocol:"kset" (params 2) bounds in
  let o2 = Explorer.explore ~jobs:2 ~protocol:"kset" (params 2) bounds in
  Alcotest.(check string)
    "campaign signatures agree across -j"
    (Setagree_runner.Runner.signature o1.Explorer.o_campaign)
    (Setagree_runner.Runner.signature o2.Explorer.o_campaign);
  check "identical counterexample lists" true
    (List.map Schedule.to_json o1.Explorer.o_ces
    = List.map Schedule.to_json o2.Explorer.o_ces)

let test_safe_config_comes_up_dry () =
  let o = Explorer.explore ~jobs:1 ~protocol:"kset" (params 1) bounds in
  check "z <= k: no schedule violates (Lemma 2)" true (o.Explorer.o_ces = [])

let () =
  Alcotest.run "explore"
    [
      ( "json",
        [
          Alcotest.test_case "schedule file round-trip" `Quick test_schedule_file_roundtrip;
        ]
        @ List.map
            (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]))
            [ qcheck_crash_spec_roundtrip; qcheck_schedule_roundtrip ] );
      ( "kernel",
        [
          Alcotest.test_case "default exec is FIFO" `Quick test_default_exec_is_fifo_and_safe;
          Alcotest.test_case "dfs finds race, prunes commuting" `Quick
            test_dfs_finds_race_with_pruning;
          Alcotest.test_case "shrink to single reorder" `Quick
            test_shrink_race_to_single_reorder;
          Alcotest.test_case "run_schedule deterministic" `Quick
            test_run_schedule_deterministic;
          Alcotest.test_case "crash injection + shrink" `Quick
            test_dfs_injects_crash_and_shrinks;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "misuse finds + replays" `Quick test_misuse_finds_and_replays;
          Alcotest.test_case "-j1 == -j2" `Quick test_explorer_jobs_deterministic;
          Alcotest.test_case "safe config dry" `Quick test_safe_config_comes_up_dry;
        ] );
    ]
