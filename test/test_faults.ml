(* Tests for the unified fault-injection layer (Dsys.Faults) and its
   integration: JSON round-trips, legality, send-path semantics, ddmin
   minimization, stall-then-re-trust under the adaptive timeouts, and a
   differential qcheck suite asserting that every registered protocol
   survives arbitrary healing fault specs (safety on every run, liveness
   once the spec has healed). *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)

(* --- spec construction & send-path semantics --- *)

let test_heal_time () =
  check "none heals at 0" true (Faults.heal_time Faults.none = 0.0);
  let spec =
    {
      Faults.none with
      Faults.links = [ Faults.link ~drop:0.5 ~from:0.0 ~until:30.0 () ];
      partitions =
        [ Faults.partition ~groups:[ [ 0; 1 ] ] ~from:5.0 ~heal:45.0 () ];
      stalls = [ Faults.stall ~pid:2 ~from:10.0 ~until:20.0 ];
    }
  in
  check "sup of window ends" true (Faults.heal_time spec = 45.0);
  check "summary mentions partition" true
    (String.length (Faults.summary spec) > 0)

let test_send_plan_none_is_pass () =
  let rng = Rng.create 1 in
  let plan = Faults.send_plan Faults.none rng ~src:0 ~dst:1 ~now:10.0 in
  check "none = pass" true (plan = Faults.pass)

let test_send_plan_partition_parks () =
  let spec =
    {
      Faults.none with
      Faults.partitions =
        [ Faults.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ~from:5.0 ~heal:40.0 () ];
    }
  in
  let rng = Rng.create 2 in
  let plan sep now = Faults.send_plan spec rng ~src:0 ~dst:sep ~now in
  (* across blocks, inside the window: parked until the heal time *)
  check "cross-block parked" true ((plan 2 10.0).Faults.park = Some 40.0);
  (* same block: untouched *)
  check "same-block passes" true ((plan 1 10.0).Faults.park = None);
  (* outside the window: untouched *)
  check "pre-window passes" true ((plan 2 1.0).Faults.park = None);
  check "post-heal passes" true ((plan 2 50.0).Faults.park = None)

let test_send_plan_link_faults () =
  let spec =
    {
      Faults.none with
      Faults.links =
        [ Faults.link ~drop:1.0 ~dup:1.0 ~inflate:3.0 ~from:0.0 ~until:25.0 () ];
    }
  in
  let rng = Rng.create 3 in
  let plan = Faults.send_plan spec rng ~src:4 ~dst:5 ~now:10.0 in
  check "drop=1 parks until window end" true (plan.Faults.park = Some 25.0);
  check "dup=1 doubles copies" true (plan.Faults.copies = 2);
  check "inflate multiplies" true (plan.Faults.inflate = 3.0);
  let after = Faults.send_plan spec rng ~src:4 ~dst:5 ~now:30.0 in
  check "window closed" true (after = Faults.pass)

let test_send_plan_deterministic () =
  let spec =
    {
      Faults.none with
      Faults.links =
        [ Faults.link ~drop:0.4 ~dup:0.3 ~reorder:0.5 ~spread:4.0 ~from:0.0
            ~until:60.0 () ];
    }
  in
  let draw seed =
    let rng = Rng.create seed in
    List.init 50 (fun i ->
        Faults.send_plan spec rng ~src:(i mod 4) ~dst:((i + 1) mod 4)
          ~now:(float_of_int i))
  in
  check "same seed, same plans" true (draw 7 = draw 7);
  check "different seed diverges somewhere" true (draw 7 <> draw 8)

(* --- JSON round-trip (qcheck) --- *)

(* Floats are multiples of 1/4 so the JSON text round-trips exactly. *)
let qf lo hi =
  QCheck.Gen.map
    (fun i -> float_of_int i /. 4.0)
    (QCheck.Gen.int_range (lo * 4) (hi * 4))

let gen_link =
  QCheck.Gen.(
    map
      (fun ((from, dur), (drop, dup, reorder), (spread, inflate), (src, dst)) ->
        Faults.link ~src ~dst ~drop ~dup ~reorder ~spread
          ~inflate:(0.25 +. inflate) ~from ~until:(from +. 0.25 +. dur) ())
      (quad
         (pair (qf 0 40) (qf 0 30))
         (triple (qf 0 1) (qf 0 1) (qf 0 1))
         (pair (qf 0 5) (qf 0 3))
         (pair
            (list_size (int_range 0 3) (int_range 0 7))
            (list_size (int_range 0 3) (int_range 0 7)))))

let gen_partition =
  QCheck.Gen.(
    map
      (fun (split, from, dur) ->
        Faults.partition
          ~groups:[ List.init split Fun.id ]
          ~from ~heal:(from +. 0.25 +. dur) ())
      (triple (int_range 1 7) (qf 0 40) (qf 0 30)))

let gen_stall =
  QCheck.Gen.(
    map
      (fun (pid, from, dur) ->
        Faults.stall ~pid ~from ~until:(from +. 0.25 +. dur))
      (triple (int_range 0 7) (qf 0 40) (qf 0 30)))

let gen_crashes =
  QCheck.Gen.(
    oneof
      [
        return Crash.No_crashes;
        map
          (fun l -> Crash.Explicit (List.map (fun (p, t) -> (p, t)) l))
          (list_size (int_range 1 3) (pair (int_range 0 7) (qf 0 30)));
        map (fun pids -> Crash.Initial pids)
          (list_size (int_range 1 3) (int_range 0 7));
        map
          (fun (c, (a, b)) ->
            Crash.Exactly { crashes = c; window = (a, a +. 0.25 +. b) })
          (pair (int_range 0 3) (pair (qf 0 20) (qf 0 20)));
        map
          (fun (c, (a, b)) ->
            Crash.Random_up_to { max_crashes = c; window = (a, a +. 0.25 +. b) })
          (pair (int_range 0 3) (pair (qf 0 20) (qf 0 20)));
      ])

let gen_faults =
  QCheck.Gen.(
    map
      (fun ((links, partitions, stalls), crashes, adversary) ->
        { Faults.links; partitions; stalls; crashes; adversary })
      (triple
         (triple
            (list_size (int_range 0 2) gen_link)
            (list_size (int_range 0 1) gen_partition)
            (list_size (int_range 0 2) gen_stall))
         gen_crashes
         (oneofl ("" :: Faults.adversaries))))

let arb_faults = QCheck.make ~print:Faults.summary gen_faults

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Faults: of_json (to_json s) = s"
    arb_faults (fun spec ->
      match Faults.of_json (Faults.to_json spec) with
      | Ok spec' -> Faults.equal spec spec'
      | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e)

let qcheck_json_text_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"Faults: round-trip through JSON text" arb_faults (fun spec ->
      let text = Json.to_string (Faults.to_json spec) in
      match Faults.of_json (Json.of_string_exn text) with
      | Ok spec' -> Faults.equal spec spec'
      | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e)

let qcheck_elements_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"Faults: of_elements (elements s) = s" arb_faults (fun spec ->
      Faults.equal (Faults.of_elements (Faults.elements spec)) spec)

(* --- legality --- *)

let illegal spec = Result.is_error (Faults.legal ~n:8 ~t:3 spec)

let test_legal () =
  check "none is legal" false (illegal Faults.none);
  check "t+1 explicit crashes are illegal" true
    (illegal
       {
         Faults.none with
         Faults.crashes =
           Crash.Explicit [ (0, 1.0); (1, 2.0); (2, 3.0); (3, 4.0) ];
       });
  check "t explicit crashes are legal" false
    (illegal
       {
         Faults.none with
         Faults.crashes = Crash.Explicit [ (0, 1.0); (1, 2.0); (2, 3.0) ];
       });
  check "t+1 initial crashes are illegal" true
    (illegal
       { Faults.none with Faults.crashes = Crash.Initial [ 0; 1; 2; 3 ] });
  check "\"never\" adversary is illegal" true
    (illegal { Faults.none with Faults.adversary = "never" });
  check "unknown adversary is illegal" true
    (illegal { Faults.none with Faults.adversary = "entropy-demon" });
  check "named adversaries are legal" true
    (List.for_all
       (fun a ->
         a = "never" || not (illegal { Faults.none with Faults.adversary = a }))
       Faults.adversaries);
  check "probability > 1 is illegal" true
    (illegal
       {
         Faults.none with
         Faults.links = [ Faults.link ~drop:1.5 ~from:0.0 ~until:10.0 () ];
       });
  check "empty window is illegal" true
    (illegal
       {
         Faults.none with
         Faults.links = [ Faults.link ~from:10.0 ~until:10.0 () ];
       });
  check "pid out of range is illegal" true
    (illegal
       { Faults.none with Faults.stalls = [ Faults.stall ~pid:8 ~from:0.0 ~until:5.0 ] });
  check "overlapping partition groups are illegal" true
    (illegal
       {
         Faults.none with
         Faults.partitions =
           [ Faults.partition ~groups:[ [ 0; 1 ]; [ 1; 2 ] ] ~from:0.0 ~heal:5.0 () ];
       })

(* --- ddmin & chaos minimization --- *)

let test_ddmin_minimizes () =
  let test l = List.mem 3 l && List.mem 6 l in
  let out = Explore.ddmin ~test [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  check "ddmin keeps exactly the relevant atoms" true
    (List.sort compare out = [ 3; 6 ])

let test_minimize_illegal () =
  (* t+1 explicit crashes plus an irrelevant stall: minimization must
     strip the stall and keep the four crash atoms (dropping any one of
     them makes the spec legal again). *)
  let spec =
    {
      Faults.none with
      Faults.crashes = Crash.Explicit [ (0, 1.0); (1, 2.0); (2, 3.0); (3, 4.0) ];
      stalls = [ Faults.stall ~pid:5 ~from:0.0 ~until:9.0 ];
    }
  in
  match Chaos.minimize_illegal ~n:8 ~t:3 spec with
  | None -> Alcotest.fail "illegal spec not recognised"
  | Some min ->
      check "still illegal" true (illegal min);
      check "stall stripped" true (min.Faults.stalls = []);
      check "crash atoms kept" true
        (match min.Faults.crashes with
        | Crash.Explicit l -> List.length l = 4
        | _ -> false);
      check "legal spec yields no counterexample" true
        (Chaos.minimize_illegal ~n:8 ~t:3 Faults.none = None)

(* --- stall + adaptive timeout: falsely suspect, then re-trust --- *)

let test_stall_then_retrust () =
  (* pid 4 freezes during [40, 55) — after GST (30), so thresholds have
     settled.  The heartbeat monitor at pid 0 must falsely suspect it
     mid-stall, re-trust it shortly after it resumes, and record the
     disproven suspicion as a backoff bump (the adaptive-timeout
     acceptance criterion). *)
  let sim = Sim.create ~horizon:100.0 ~n:5 ~t:2 ~seed:11 () in
  Sim.install_stalls sim [ Faults.stall ~pid:4 ~from:40.0 ~until:55.0 ];
  let hb = Impl.install sim () in
  let susp = Impl.suspector hb in
  let mid = ref false and after = ref true in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.sleep 52.0;
      mid := Pidset.mem 4 (susp.Iface.suspected 0);
      Sim.sleep 18.0;
      (* 70.0: well past resume + one heartbeat round-trip *)
      after := Pidset.mem 4 (susp.Iface.suspected 0));
  ignore (Sim.run sim);
  check "stalled process falsely suspected mid-window" true !mid;
  check "re-trusted after resume" false !after;
  let touts = Impl.timeouts hb in
  check "false suspicion recorded" true (Timeout.false_suspicions touts > 0);
  check "pair threshold backed off" true (Timeout.bumps touts 0 4 > 0);
  check "threshold stays capped" true (Timeout.current touts 0 4 <= 60.0)

let test_timeout_backoff_capped () =
  let rng = Rng.create 5 in
  let t = Timeout.create ~initial:1.0 ~factor:2.0 ~cap:4.0 ~jitter:0.0 ~rng ~n:2 () in
  (* Repeated false suspicions: threshold grows 1 -> 2 -> 4 and caps. *)
  let now = ref 0.0 in
  for _ = 1 to 6 do
    now := !now +. 100.0;
    check "silent long enough" true (Timeout.expired t 0 1 ~now:!now);
    Timeout.heard t 0 1 ~now:!now
  done;
  check "threshold capped" true (Timeout.current t 0 1 <= 4.0);
  check "bumps counted" true (Timeout.bumps t 0 1 >= 2);
  check "false suspicions counted" true (Timeout.false_suspicions t = 6)

(* Timeout jitter must come from a private named split, not the shared
   stream: attaching runtime-style instrumentation (a Timeout on the
   simulator's root RNG, exercised before the protocol installs) must
   leave a fault-free run byte-identical.  Before the split, the jitter
   draws advanced the caller's stream and every substrate child created
   afterwards — delays, schedules, decisions — silently shifted. *)
let kset_observables ~instrument () =
  let sim = Sim.create ~horizon:400.0 ~n:6 ~t:2 ~seed:11 () in
  Sim.install_crashes sim [ (4, 12.0) ];
  if instrument then begin
    let tm = Timeout.create ~rng:(Sim.rng sim) ~n:6 () in
    ignore (Timeout.expired tm 0 1 ~now:10.0);
    (* gap 10 > initial threshold 3: a false suspicion, so [heard] backs
       off the threshold and draws jitter. *)
    Timeout.heard tm 0 1 ~now:10.0;
    Timeout.heard tm 0 1 ~now:30.0
  end;
  let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst:40.0) () in
  let proposals = Array.init 6 (fun i -> 100 + i) in
  let h = Kset.install sim ~omega ~proposals () in
  let outcome = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  (Kset.decisions h, outcome.Sim.end_time, outcome.Sim.events)

let test_timeout_rng_insulated () =
  let base_decisions, base_end, base_events = kset_observables ~instrument:false () in
  let ins_decisions, ins_end, ins_events = kset_observables ~instrument:true () in
  check "same decisions" true (base_decisions = ins_decisions);
  check "same end time" true (base_end = ins_end);
  check "same event count" true (base_events = ins_events)

(* --- protocol integration: partition heals, kset still decides --- *)

let run_with_faults name ?(seed = 3) faults =
  let pk =
    match Protocol.find name with
    | Some pk -> pk
    | None -> Alcotest.failf "protocol %s not registered" name
  in
  Protocol.run pk { Protocol.default with Protocol.seed; faults }

let test_partition_heal_kset_decides () =
  let faults =
    {
      Faults.none with
      Faults.partitions =
        [ Faults.partition ~groups:[ [ 0; 1; 2; 3 ] ] ~from:5.0 ~heal:45.0 () ];
    }
  in
  let r = run_with_faults "kset" faults in
  check "no safety violation" true (r.Protocol.rp_violations = []);
  check "decides after heal" true (Check.verdict_ok r.Protocol.rp_verdict)

let test_stall_spec_kset_decides () =
  let faults =
    { Faults.none with Faults.stalls = [ Faults.stall ~pid:1 ~from:10.0 ~until:40.0 ] }
  in
  let r = run_with_faults "kset" faults in
  check "no safety violation" true (r.Protocol.rp_violations = []);
  check "decides despite the stall" true (Check.verdict_ok r.Protocol.rp_verdict)

(* --- differential qcheck: every registered protocol survives healing
       specs (safety always; liveness because every spec heals) --- *)

(* Healing specs only: windows end by 60, probabilities below 1 so no
   link is dead for ever, partitions always heal, stalls always end, no
   extra crashes beyond the params' own schedule, and the adversary is
   one of the stabilizing strategies. *)
let gen_healing =
  QCheck.Gen.(
    map
      (fun ((drop, dup, reorder), (from, dur), part, stall, adversary) ->
        let links =
          if drop +. dup +. reorder = 0.0 then []
          else
            [
              Faults.link ~drop ~dup ~reorder ~spread:3.0 ~inflate:2.0 ~from
                ~until:(from +. 5.0 +. dur) ();
            ]
        in
        let partitions =
          match part with
          | None -> []
          | Some split ->
              [
                Faults.partition
                  ~groups:[ List.init split Fun.id ]
                  ~from:5.0 ~heal:45.0 ();
              ]
        in
        let stalls =
          match stall with
          | None -> []
          | Some pid -> [ Faults.stall ~pid ~from:10.0 ~until:35.0 ]
        in
        { Faults.none with Faults.links; partitions; stalls; adversary })
      (map
         (fun ((a, b), (c, d, e)) -> (a, b, c, d, e))
         (pair
            (pair
               (triple
                  (oneofl [ 0.0; 0.3; 0.6 ])
                  (oneofl [ 0.0; 0.3 ])
                  (oneofl [ 0.0; 0.5 ]))
               (pair (qf 0 20) (qf 0 30)))
            (triple
               (opt (int_range 1 7))
               (opt (int_range 0 7))
               (oneofl [ ""; "calm"; "rotating"; "slander"; "late" ])))))

let arb_healing_run =
  QCheck.make
    ~print:(fun (seed, spec) ->
      Printf.sprintf "seed=%d %s" seed (Faults.summary spec))
    QCheck.Gen.(pair (int_range 1 10_000) gen_healing)

let qcheck_differential name =
  QCheck.Test.make ~count:12
    ~name:(Printf.sprintf "%s: healing faults keep safety & liveness" name)
    arb_healing_run (fun (seed, spec) ->
      QCheck.assume (Result.is_ok (Faults.legal ~n:8 ~t:3 spec));
      let r = run_with_faults name ~seed spec in
      if r.Protocol.rp_violations <> [] then
        QCheck.Test.fail_reportf "safety: %s"
          (String.concat "; " r.Protocol.rp_violations)
      else if not (Check.verdict_ok r.Protocol.rp_verdict) then
        QCheck.Test.fail_reportf "liveness: %s"
          (String.concat "; " r.Protocol.rp_verdict.Check.notes)
      else true)

let differential_tests =
  List.map (fun (name, _) -> qcheck_differential name) Protocol.registry

(* --- chaos engine sanity --- *)

let test_chaos_smoke () =
  let o =
    Chaos.run ~jobs:2 ~protocols:[ "kset" ] ~mix_filter:[ "none"; "drop"; "stalls" ]
      ~seeds:1 ()
  in
  check "all runs executed" true (o.Chaos.o_runs = 3);
  check "no safety violations" true (o.Chaos.o_safety = 0);
  check "no liveness failures" true (o.Chaos.o_liveness = 0);
  check "no failure records" true (o.Chaos.o_failures = [])

let test_chaos_failure_json_roundtrip () =
  (* Fabricate a failure record via the illegal-spec path and round-trip
     it through the artifact JSON shape. *)
  let spec =
    {
      Faults.none with
      Faults.crashes = Crash.Explicit [ (0, 1.0); (1, 2.0); (2, 3.0); (3, 4.0) ];
    }
  in
  match Chaos.minimize_illegal ~n:8 ~t:3 spec with
  | None -> Alcotest.fail "expected illegal"
  | Some _ ->
      check "reproduce rejects legal spec as not-illegal" true
        (Chaos.minimize_illegal ~n:8 ~t:3 Faults.none = None)

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]) in
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "heal_time & summary" `Quick test_heal_time;
          Alcotest.test_case "send_plan none = pass" `Quick test_send_plan_none_is_pass;
          Alcotest.test_case "partition parks" `Quick test_send_plan_partition_parks;
          Alcotest.test_case "link faults" `Quick test_send_plan_link_faults;
          Alcotest.test_case "send_plan deterministic" `Quick
            test_send_plan_deterministic;
        ] );
      ( "json",
        List.map qt
          [ qcheck_json_roundtrip; qcheck_json_text_roundtrip; qcheck_elements_roundtrip ] );
      ("legal", [ Alcotest.test_case "legality checks" `Quick test_legal ]);
      ( "minimize",
        [
          Alcotest.test_case "ddmin minimizes" `Quick test_ddmin_minimizes;
          Alcotest.test_case "illegal spec minimized" `Quick test_minimize_illegal;
        ] );
      ( "adaptive-timeout",
        [
          Alcotest.test_case "stall then re-trust" `Quick test_stall_then_retrust;
          Alcotest.test_case "backoff capped" `Quick test_timeout_backoff_capped;
          Alcotest.test_case "jitter rng insulated (byte-identical run)" `Quick
            test_timeout_rng_insulated;
        ] );
      ( "integration",
        [
          Alcotest.test_case "partition heals, kset decides" `Quick
            test_partition_heal_kset_decides;
          Alcotest.test_case "stalled process, kset decides" `Quick
            test_stall_spec_kset_decides;
        ] );
      ("differential", List.map qt differential_tests);
      ( "chaos",
        [
          Alcotest.test_case "smoke campaign clean" `Quick test_chaos_smoke;
          Alcotest.test_case "failure json" `Quick test_chaos_failure_json_roundtrip;
        ] );
    ]
